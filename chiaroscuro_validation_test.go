package chiaroscuro_test

import (
	"testing"

	"chiaroscuro"
)

// TestConfigValidationErrors pins the exact error text of every public
// Config validation path — the messages are part of the API surface
// users script against, so a wording change should be a conscious one.
func TestConfigValidationErrors(t *testing.T) {
	series, _, _, err := chiaroscuro.SyntheticCERErr(20, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		cfg  chiaroscuro.Config
		want string
	}{
		{
			name: "unknown engine",
			cfg:  chiaroscuro.Config{K: 3, Epsilon: 1, Engine: "warp"},
			want: `chiaroscuro: unknown engine "warp" (want cycles, sharded or async)`,
		},
		{
			name: "malformed faults clause",
			cfg:  chiaroscuro.Config{K: 3, Epsilon: 1, Faults: "bogus"},
			want: `chiaroscuro: Config.Faults: simnet: clause "bogus" is not key=value`,
		},
		{
			name: "fault probability out of range",
			cfg:  chiaroscuro.Config{K: 3, Epsilon: 1, Faults: "drop=2"},
			want: `chiaroscuro: Config.Faults: simnet: bad probability "2"`,
		},
		{
			name: "missing K",
			cfg:  chiaroscuro.Config{Epsilon: 1},
			want: "chiaroscuro: Config.K is required",
		},
		{
			name: "negative epsilon",
			cfg:  chiaroscuro.Config{K: 3, Epsilon: -0.5},
			want: "chiaroscuro: Config.Epsilon must be positive",
		},
		{
			name: "zero epsilon",
			cfg:  chiaroscuro.Config{K: 3},
			want: "chiaroscuro: Config.Epsilon must be positive",
		},
		{
			name: "initial centroid dimension mismatch",
			cfg: chiaroscuro.Config{K: 3, Epsilon: 1,
				InitialCentroids: [][]float64{{1, 2}, {3, 4}, {5, 6}}},
			want: "core: initial centroid 0 has dim 2, want 8",
		},
		{
			name: "initial centroid count mismatch",
			cfg: chiaroscuro.Config{K: 3, Epsilon: 1,
				InitialCentroids: [][]float64{{0.1, 0.2}}},
			want: "core: 1 initial centroids, want 3",
		},
		{
			name: "negative workers",
			cfg:  chiaroscuro.Config{K: 3, Epsilon: 1, Workers: -2},
			want: "chiaroscuro: Config.Workers must be non-negative, got -2",
		},
		{
			name: "churn on the async engine",
			cfg:  chiaroscuro.Config{K: 3, Epsilon: 1, Engine: "async", ChurnCrashProb: 0.1},
			want: "chiaroscuro: churn (Config.ChurnCrashProb/ChurnRejoinProb) is not supported by the async engine — use the cycles or sharded engine, or model failures with Config.Faults",
		},
		{
			name: "rejoin-only churn on the async engine",
			cfg:  chiaroscuro.Config{K: 3, Epsilon: 1, Engine: "async", ChurnRejoinProb: 0.3},
			want: "chiaroscuro: churn (Config.ChurnCrashProb/ChurnRejoinProb) is not supported by the async engine — use the cycles or sharded engine, or model failures with Config.Faults",
		},
		{
			name: "unknown strategy",
			cfg:  chiaroscuro.Config{K: 3, Epsilon: 1, Strategy: "nope"},
			want: `dp: unknown budget strategy "nope"`,
		},
		{
			name: "unknown smoothing method",
			cfg:  chiaroscuro.Config{K: 3, Epsilon: 1, Smoothing: chiaroscuro.Smoothing{Method: "box"}},
			want: `chiaroscuro: unknown smoothing method "box"`,
		},
		{
			name: "unknown backend",
			cfg:  chiaroscuro.Config{K: 3, Epsilon: 1, Backend: "rot13"},
			want: `chiaroscuro: unknown backend "rot13"`,
		},
		{
			name: "lifetime epsilon on one-shot",
			cfg:  chiaroscuro.Config{K: 3, Epsilon: 1, LifetimeEpsilon: 8},
			want: "chiaroscuro: Config.LifetimeEpsilon is a streaming option — use OpenStream",
		},
		{
			name: "windows on one-shot",
			cfg:  chiaroscuro.Config{K: 3, Epsilon: 1, Windows: 4},
			want: "chiaroscuro: Config.Windows is a streaming option — use OpenStream",
		},
		{
			name: "warm start on one-shot",
			cfg:  chiaroscuro.Config{K: 3, Epsilon: 1, WarmStart: true},
			want: "chiaroscuro: Config.WarmStart is a streaming option — use OpenStream",
		},
		{
			name: "budget strategy on one-shot",
			cfg:  chiaroscuro.Config{K: 3, Epsilon: 1, BudgetStrategy: "uniform"},
			want: "chiaroscuro: Config.BudgetStrategy is a streaming option — use OpenStream",
		},
		{
			name: "drift threshold on one-shot",
			cfg:  chiaroscuro.Config{K: 3, Epsilon: 1, DriftThreshold: 0.1},
			want: "chiaroscuro: Config.DriftThreshold is a streaming option — use OpenStream",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := chiaroscuro.Cluster(series, tc.cfg)
			if err == nil {
				t.Fatalf("want error %q, got success", tc.want)
			}
			if err.Error() != tc.want {
				t.Fatalf("error text:\n  got:  %s\n  want: %s", err, tc.want)
			}
		})
	}
}

// TestStreamConfigValidationErrors pins the exact error text of every
// OpenStream validation path, in the same spirit as the one-shot table
// above: the streaming fields are new public API, and their refusals
// are part of the contract.
func TestStreamConfigValidationErrors(t *testing.T) {
	series, _, _, err := chiaroscuro.SyntheticCERErr(20, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		cfg  chiaroscuro.Config
		want string
	}{
		{
			name: "epsilon set on stream",
			cfg:  chiaroscuro.Config{K: 3, Epsilon: 1, LifetimeEpsilon: 8},
			want: "chiaroscuro: streaming draws each window's epsilon from Config.LifetimeEpsilon — leave Config.Epsilon zero",
		},
		{
			name: "missing lifetime epsilon",
			cfg:  chiaroscuro.Config{K: 3},
			want: "chiaroscuro: Config.LifetimeEpsilon must be positive for streaming",
		},
		{
			name: "negative lifetime epsilon",
			cfg:  chiaroscuro.Config{K: 3, LifetimeEpsilon: -2},
			want: "chiaroscuro: Config.LifetimeEpsilon must be positive for streaming",
		},
		{
			name: "negative windows",
			cfg:  chiaroscuro.Config{K: 3, LifetimeEpsilon: 8, Windows: -1},
			want: "chiaroscuro: Config.Windows must be non-negative, got -1",
		},
		{
			name: "negative drift threshold",
			cfg:  chiaroscuro.Config{K: 3, LifetimeEpsilon: 8, BudgetStrategy: "threshold", DriftThreshold: -0.1},
			want: "chiaroscuro: Config.DriftThreshold must be non-negative, got -0.1",
		},
		{
			name: "drift threshold without threshold strategy",
			cfg:  chiaroscuro.Config{K: 3, LifetimeEpsilon: 8, DriftThreshold: 0.1},
			want: `chiaroscuro: Config.DriftThreshold applies to the "threshold" budget strategy only`,
		},
		{
			name: "unknown budget strategy",
			cfg:  chiaroscuro.Config{K: 3, LifetimeEpsilon: 8, BudgetStrategy: "lavish"},
			want: `dp: unknown spend strategy "lavish" (want uniform, decaying or threshold)`,
		},
		{
			name: "async engine",
			cfg:  chiaroscuro.Config{K: 3, LifetimeEpsilon: 8, Engine: "async"},
			want: `chiaroscuro: streaming requires a deterministic engine — use "cycles" or "sharded"`,
		},
		{
			name: "unknown engine",
			cfg:  chiaroscuro.Config{K: 3, LifetimeEpsilon: 8, Engine: "warp"},
			want: `chiaroscuro: unknown engine "warp" (want cycles, sharded or async)`,
		},
		{
			name: "faults on stream",
			cfg:  chiaroscuro.Config{K: 3, LifetimeEpsilon: 8, Faults: "drop=0.05"},
			want: "chiaroscuro: Config.Faults is not supported in streaming sessions yet",
		},
		{
			name: "churn on stream",
			cfg:  chiaroscuro.Config{K: 3, LifetimeEpsilon: 8, ChurnCrashProb: 0.1},
			want: "chiaroscuro: churn is not supported in streaming sessions yet",
		},
		{
			name: "missing K",
			cfg:  chiaroscuro.Config{LifetimeEpsilon: 8},
			want: "chiaroscuro: Config.K is required",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sess, err := chiaroscuro.OpenStream(series, tc.cfg)
			if err == nil {
				sess.Close()
				t.Fatalf("want error %q, got success", tc.want)
			}
			if err.Error() != tc.want {
				t.Fatalf("error text:\n  got:  %s\n  want: %s", err, tc.want)
			}
		})
	}
}

// TestChurnStillSupportedOnCycleEngines guards the flip side of the
// async-churn rejection: the cycle-driven engines keep accepting churn.
func TestChurnStillSupportedOnCycleEngines(t *testing.T) {
	series, _, _, err := chiaroscuro.SyntheticCERErr(30, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		t.Fatal(err)
	}
	for _, engine := range []string{"cycles", "sharded"} {
		res, err := chiaroscuro.Cluster(series, chiaroscuro.Config{
			K: 2, Epsilon: 20, Iterations: 2, Seed: 5, Engine: engine,
			GossipRounds: 8, DecryptThreshold: 3,
			ChurnCrashProb: 0.01, ChurnRejoinProb: 0.3,
		})
		if err != nil {
			t.Fatalf("%s engine with churn: %v", engine, err)
		}
		if len(res.Centroids) != 2 {
			t.Fatalf("%s engine: got %d centroids, want 2", engine, len(res.Centroids))
		}
	}
}

// TestSyntheticErrVariants covers the error-returning dataset
// generators and their panicking wrappers.
func TestSyntheticErrVariants(t *testing.T) {
	if _, _, _, err := chiaroscuro.SyntheticCERErr(0, 24, 1); err == nil {
		t.Fatal("SyntheticCERErr must reject n=0")
	}
	if _, _, _, err := chiaroscuro.SyntheticTumorGrowthErr(-3, 20, 1); err == nil {
		t.Fatal("SyntheticTumorGrowthErr must reject n<1")
	}
	series, labels, names, err := chiaroscuro.SyntheticCERErr(5, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 || len(labels) != 5 || len(names) == 0 || len(series[0]) != 12 {
		t.Fatalf("SyntheticCERErr shape: %d series, %d labels, %d names, dim %d",
			len(series), len(labels), len(names), len(series[0]))
	}
	// The old signatures remain as thin wrappers: same data, panic on
	// invalid options.
	s2, l2, n2 := chiaroscuro.SyntheticCER(5, 12, 1)
	if len(s2) != 5 || len(l2) != 5 || len(n2) != len(names) {
		t.Fatal("SyntheticCER wrapper disagrees with SyntheticCERErr")
	}
	for i := range s2[0] {
		if s2[0][i] != series[0][i] {
			t.Fatal("wrapper and Err variant generated different data")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SyntheticCER(0, ...) must panic")
		}
	}()
	chiaroscuro.SyntheticCER(0, 24, 1)
}
