package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"chiaroscuro"
	"chiaroscuro/internal/benchcfg"
	"chiaroscuro/internal/core"
)

// scaleHotPath is the steady-state gossip allocation measurement of the
// BENCH_scale.json artifact: allocations and bytes per network cycle on
// the accounted hot path, measured by internal/core.MeasureGossipAllocs
// at a small fixed population (the property is population-independent —
// the in-core AllocsPerRun tests prove the same zero).
type scaleHotPath struct {
	Population     int
	WarmCycles     int
	MeasuredCycles int
	AllocsPerCycle float64
	BytesPerCycle  float64
}

// scaleRunEntry is one timed large-population run in the artifact.
type scaleRunEntry struct {
	Name       string
	Engine     string
	N          int
	Dim        int
	K          int
	Iterations int

	Elapsed             time.Duration
	AllocBytes          uint64 // total heap bytes allocated by the run
	AllocObjects        uint64 // total heap objects allocated by the run
	BytesPerParticipant float64
	MessagesSent        int
	BytesSent           int64
	Cycles              int
	Completed           int
}

// scaleBenchResult is the BENCH_scale.json schema ("chiaroscuro-bench-
// scale/v1"): the committed copy at the repository root is the baseline
// the CI allocation-regression gate compares against; per-push copies
// are uploaded as artifacts for the perf trajectory.
type scaleBenchResult struct {
	Schema    string          `json:"Schema"`
	Timestamp string          `json:"Timestamp"`
	HotPath   scaleHotPath    `json:"HotPath"`
	Runs      []scaleRunEntry `json:"Runs"`
}

// scaleHotPathPopulation is small on purpose: MeasureGossipAllocs
// preallocates O(n²) queue hints to make the zero provable, and the
// allocs-per-cycle property does not depend on n.
const scaleHotPathPopulation = 512

// runBenchScale measures the large-population memory profile: the
// hot-path allocations-per-cycle figure and a full accounted sharded
// run at population n. With a non-empty out path it writes the JSON
// artifact; with a non-empty baseline path it compares the hot-path
// allocation figure against the committed baseline and returns an error
// (failing CI) on regression.
func runBenchScale(n int, out, baseline string) error {
	res := scaleBenchResult{
		Schema:    "chiaroscuro-bench-scale/v1",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}

	// 1. Hot-path allocation measurement.
	const warm, measure = 25, 25
	hotSeries, _, _, err := chiaroscuro.SyntheticCERErr(scaleHotPathPopulation, 4, 3)
	if err != nil {
		return err
	}
	if _, _, err := chiaroscuro.Normalize01(hotSeries); err != nil {
		return err
	}
	rep, err := core.MeasureGossipAllocs(hotSeries, core.Params{
		K: 2, Epsilon: 50, Iterations: 1, Seed: 11,
		GossipRounds: warm + measure + 8, DecryptThreshold: 3,
	}, warm, measure)
	if err != nil {
		return err
	}
	res.HotPath = scaleHotPath{
		Population:     rep.Population,
		WarmCycles:     warm,
		MeasuredCycles: rep.Cycles,
		AllocsPerCycle: rep.AllocsPerCycle,
		BytesPerCycle:  rep.BytesPerCycle,
	}
	fmt.Printf("hot path: %.2f allocs/cycle, %.1f B/cycle (n=%d, %d measured cycles, accounted backend)\n",
		rep.AllocsPerCycle, rep.BytesPerCycle, rep.Population, rep.Cycles)

	// 2. Full accounted sharded run at scale — the same workload as
	// BenchmarkClusterScale* by construction (internal/benchcfg pins the
	// shape for both, so the committed baseline and the Go benchmark
	// stay comparable).
	series, _, _, err := chiaroscuro.SyntheticCERErr(n, benchcfg.ScaleDim, benchcfg.ScaleSeed)
	if err != nil {
		return err
	}
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		return err
	}
	cfg := chiaroscuro.Config{
		K: benchcfg.ScaleK, Epsilon: benchcfg.ScaleEpsilon,
		Iterations: benchcfg.ScaleIterations, Seed: benchcfg.ScaleSeed,
		GossipRounds: benchcfg.ScaleGossipRounds, DecryptThreshold: benchcfg.ScaleDecryptThreshold,
		Engine: benchcfg.ScaleEngine,
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	r, err := chiaroscuro.Cluster(series, cfg)
	if err != nil {
		return fmt.Errorf("bench-scale run at n=%d: %w", n, err)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	entry := scaleRunEntry{
		Name:                fmt.Sprintf("accounted-sharded-%d", n),
		Engine:              benchcfg.ScaleEngine,
		N:                   n,
		Dim:                 len(series[0]),
		K:                   cfg.K,
		Iterations:          cfg.Iterations,
		Elapsed:             elapsed,
		AllocBytes:          after.TotalAlloc - before.TotalAlloc,
		AllocObjects:        after.Mallocs - before.Mallocs,
		BytesPerParticipant: float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
		MessagesSent:        r.Network.MessagesSent,
		BytesSent:           r.Network.BytesSent,
		Cycles:              r.Network.Cycles,
		Completed:           r.Completed,
	}
	res.Runs = append(res.Runs, entry)
	fmt.Printf("%s: %s wall, %.2f GB allocated (%.0f B/participant), %d objects, %d cycles, %d/%d completed\n",
		entry.Name, entry.Elapsed.Round(time.Millisecond),
		float64(entry.AllocBytes)/1e9, entry.BytesPerParticipant,
		entry.AllocObjects, entry.Cycles, entry.Completed, n)

	if out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if baseline != "" {
		if err := checkScaleBaseline(res, baseline); err != nil {
			return err
		}
	}
	return nil
}

// scaleAllocSlack absorbs measurement jitter in the regression gate: the
// committed baseline is 0 allocs/cycle, so anything persistent shows up
// far above this threshold.
const scaleAllocSlack = 0.5

// checkScaleBaseline fails when the measured hot-path allocations per
// cycle exceed the committed baseline (BENCH_scale.json at the repo
// root) beyond jitter — the CI gate that keeps the zero-allocation
// gossip cycle from silently regressing.
func checkScaleBaseline(res scaleBenchResult, path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench-scale baseline: %w", err)
	}
	var base scaleBenchResult
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("bench-scale baseline %s: %w", path, err)
	}
	if base.Schema != "chiaroscuro-bench-scale/v1" {
		return fmt.Errorf("bench-scale baseline %s: unexpected schema %q", path, base.Schema)
	}
	if res.HotPath.AllocsPerCycle > base.HotPath.AllocsPerCycle+scaleAllocSlack {
		return fmt.Errorf("allocation regression: hot path now allocates %.2f objects/cycle, committed baseline is %.2f (gate: baseline+%.1f) — the accounted gossip cycle must stay allocation-free",
			res.HotPath.AllocsPerCycle, base.HotPath.AllocsPerCycle, scaleAllocSlack)
	}
	fmt.Printf("baseline check: %.2f allocs/cycle vs committed %.2f — ok\n",
		res.HotPath.AllocsPerCycle, base.HotPath.AllocsPerCycle)
	return nil
}
