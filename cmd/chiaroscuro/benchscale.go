package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"chiaroscuro"
	"chiaroscuro/internal/benchcfg"
	"chiaroscuro/internal/core"
)

// scaleHotPath is the steady-state gossip allocation measurement of the
// BENCH_scale.json artifact: allocations and bytes per network cycle on
// the accounted hot path, measured by internal/core.MeasureGossipAllocs
// at a small fixed population (the property is population-independent —
// the in-core AllocsPerRun tests prove the same zero).
type scaleHotPath struct {
	Population     int
	WarmCycles     int
	MeasuredCycles int
	AllocsPerCycle float64
	BytesPerCycle  float64
}

// scaleDecryptPhase is the decrypt-phase allocation measurement: a
// complete accounted run at a small fixed population, with MemStats
// deltas accumulated over the decrypt-classified cycles only
// (internal/core.MeasureDecryptAllocs). Unlike the gossip hot path the
// figure is not zero — quorum assembly and Combine allocate — so the CI
// gate compares it against the committed baseline with relative slack.
type scaleDecryptPhase struct {
	Population     int
	DecryptCycles  int
	AllocsPerCycle float64
	BytesPerCycle  float64
}

// scaleRunEntry is one timed large-population run in the artifact. The
// Decrypt* columns break the decrypt phase out of the totals: cycles
// classified decrypt-dominant, their wall clock, and the phase's wire
// traffic (requests sent; request + response bytes).
type scaleRunEntry struct {
	Name       string
	Engine     string
	N          int
	Dim        int
	K          int
	Iterations int
	Packed     bool

	Elapsed             time.Duration
	AllocBytes          uint64 // total heap bytes allocated by the run
	AllocObjects        uint64 // total heap objects allocated by the run
	BytesPerParticipant float64
	MessagesSent        int
	BytesSent           int64
	Cycles              int
	Completed           int

	DecryptCycles   int
	DecryptWall     time.Duration
	DecryptRequests int
	DecryptBytes    int64
}

// scaleBenchResult is the BENCH_scale.json schema ("chiaroscuro-bench-
// scale/v2"; v1 lacked the DecryptPhase section, the per-run decrypt
// columns and the packed run): the committed copy at the repository
// root is the baseline the CI regression gates compare against;
// per-push copies are uploaded as artifacts for the perf trajectory.
type scaleBenchResult struct {
	Schema       string            `json:"Schema"`
	Timestamp    string            `json:"Timestamp"`
	HotPath      scaleHotPath      `json:"HotPath"`
	DecryptPhase scaleDecryptPhase `json:"DecryptPhase,omitempty"`
	Runs         []scaleRunEntry   `json:"Runs"`
}

const (
	scaleSchemaV1 = "chiaroscuro-bench-scale/v1"
	scaleSchemaV2 = "chiaroscuro-bench-scale/v2"
)

// scaleHotPathPopulation is small on purpose: MeasureGossipAllocs
// preallocates O(n²) queue hints to make the zero provable, and the
// allocs-per-cycle property does not depend on n. The decrypt-phase
// measurement reuses the same population for comparability.
const scaleHotPathPopulation = 512

// runBenchScale measures the large-population memory profile: the
// hot-path and decrypt-phase allocation figures plus full accounted
// sharded runs (unpacked and packed) at population n. With a non-empty
// out path it writes the JSON artifact; with a non-empty baseline path
// it compares the allocation figures against the committed baseline and
// returns an error (failing CI) on regression.
func runBenchScale(n int, out, baseline string) error {
	res := scaleBenchResult{
		Schema:    scaleSchemaV2,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}

	// 1. Hot-path allocation measurement.
	const warm, measure = 25, 25
	hotSeries, _, _, err := chiaroscuro.SyntheticCERErr(scaleHotPathPopulation, 4, 3)
	if err != nil {
		return err
	}
	if _, _, err := chiaroscuro.Normalize01(hotSeries); err != nil {
		return err
	}
	rep, err := core.MeasureGossipAllocs(hotSeries, core.Params{
		K: 2, Epsilon: 50, Iterations: 1, Seed: 11,
		GossipRounds: warm + measure + 8, DecryptThreshold: 3,
	}, warm, measure)
	if err != nil {
		return err
	}
	res.HotPath = scaleHotPath{
		Population:     rep.Population,
		WarmCycles:     warm,
		MeasuredCycles: rep.Cycles,
		AllocsPerCycle: rep.AllocsPerCycle,
		BytesPerCycle:  rep.BytesPerCycle,
	}
	fmt.Printf("hot path: %.2f allocs/cycle, %.1f B/cycle (n=%d, %d measured cycles, accounted backend)\n",
		rep.AllocsPerCycle, rep.BytesPerCycle, rep.Population, rep.Cycles)

	// 1b. Decrypt-phase allocation measurement, on the same population
	// with the scale workload's quorum shape.
	drep, err := core.MeasureDecryptAllocs(hotSeries, core.Params{
		K: benchcfg.ScaleK, Epsilon: benchcfg.ScaleEpsilon,
		Iterations: benchcfg.ScaleIterations, Seed: 11,
		GossipRounds:     benchcfg.ScaleGossipRounds,
		DecryptThreshold: benchcfg.ScaleDecryptThreshold,
	})
	if err != nil {
		return err
	}
	res.DecryptPhase = scaleDecryptPhase{
		Population:     drep.Population,
		DecryptCycles:  drep.DecryptCycles,
		AllocsPerCycle: drep.AllocsPerCycle,
		BytesPerCycle:  drep.BytesPerCycle,
	}
	fmt.Printf("decrypt phase: %.0f allocs/cycle, %.0f B/cycle (n=%d, %d decrypt cycles)\n",
		drep.AllocsPerCycle, drep.BytesPerCycle, drep.Population, drep.DecryptCycles)

	// 2. Full accounted sharded runs at scale, unpacked and packed — the
	// same workload as BenchmarkClusterScale* by construction
	// (internal/benchcfg pins the shape for both, so the committed
	// baseline and the Go benchmark stay comparable).
	series, _, _, err := chiaroscuro.SyntheticCERErr(n, benchcfg.ScaleDim, benchcfg.ScaleSeed)
	if err != nil {
		return err
	}
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		return err
	}
	for _, packed := range []bool{false, true} {
		cfg := chiaroscuro.Config{
			K: benchcfg.ScaleK, Epsilon: benchcfg.ScaleEpsilon,
			Iterations: benchcfg.ScaleIterations, Seed: benchcfg.ScaleSeed,
			GossipRounds: benchcfg.ScaleGossipRounds, DecryptThreshold: benchcfg.ScaleDecryptThreshold,
			Engine: benchcfg.ScaleEngine, Packed: packed,
		}
		name := fmt.Sprintf("accounted-sharded-%d", n)
		if packed {
			name = fmt.Sprintf("accounted-sharded-packed-%d", n)
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		r, err := chiaroscuro.Cluster(series, cfg)
		if err != nil {
			return fmt.Errorf("bench-scale run %s: %w", name, err)
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		entry := scaleRunEntry{
			Name:                name,
			Engine:              benchcfg.ScaleEngine,
			N:                   n,
			Dim:                 len(series[0]),
			K:                   cfg.K,
			Iterations:          cfg.Iterations,
			Packed:              packed,
			Elapsed:             elapsed,
			AllocBytes:          after.TotalAlloc - before.TotalAlloc,
			AllocObjects:        after.Mallocs - before.Mallocs,
			BytesPerParticipant: float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
			MessagesSent:        r.Network.MessagesSent,
			BytesSent:           r.Network.BytesSent,
			Cycles:              r.Network.Cycles,
			Completed:           r.Completed,
			DecryptCycles:       r.Decrypt.Cycles,
			DecryptWall:         r.Decrypt.Wall,
			DecryptRequests:     r.Decrypt.Requests,
			DecryptBytes:        r.Decrypt.Bytes,
		}
		res.Runs = append(res.Runs, entry)
		fmt.Printf("%s: %s wall (%s decrypt over %d cycles), %.2f GB allocated (%.0f B/participant), %d objects, %d cycles, %d/%d completed, %d decrypt requests (%.2f GB)\n",
			entry.Name, entry.Elapsed.Round(time.Millisecond),
			entry.DecryptWall.Round(time.Millisecond), entry.DecryptCycles,
			float64(entry.AllocBytes)/1e9, entry.BytesPerParticipant,
			entry.AllocObjects, entry.Cycles, entry.Completed, n,
			entry.DecryptRequests, float64(entry.DecryptBytes)/1e9)
	}

	if out != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	if baseline != "" {
		if err := checkScaleBaseline(res, baseline); err != nil {
			return err
		}
	}
	return nil
}

// scaleAllocSlack absorbs measurement jitter in the hot-path regression
// gate: the committed baseline is 0 allocs/cycle, so anything persistent
// shows up far above this threshold.
const scaleAllocSlack = 0.5

// scaleDecryptSlack is the relative headroom of the decrypt-phase gate:
// the baseline figure is non-zero (big.Int quorum work allocates), so
// the gate is multiplicative — fail only when allocs/cycle exceed the
// committed baseline by more than 30%.
const scaleDecryptSlack = 1.30

// checkScaleBaseline fails when the measured hot-path or decrypt-phase
// allocations per cycle exceed the committed baseline (BENCH_scale.json
// at the repo root) beyond slack — the CI gates that keep the
// zero-allocation gossip cycle and the decrypt-phase alloc profile from
// silently regressing. A v1 baseline (no DecryptPhase section) gates
// the hot path only.
func checkScaleBaseline(res scaleBenchResult, path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench-scale baseline: %w", err)
	}
	var base scaleBenchResult
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("bench-scale baseline %s: %w", path, err)
	}
	if base.Schema != scaleSchemaV1 && base.Schema != scaleSchemaV2 {
		return fmt.Errorf("bench-scale baseline %s: unexpected schema %q", path, base.Schema)
	}
	if res.HotPath.AllocsPerCycle > base.HotPath.AllocsPerCycle+scaleAllocSlack {
		return fmt.Errorf("allocation regression: hot path now allocates %.2f objects/cycle, committed baseline is %.2f (gate: baseline+%.1f) — the accounted gossip cycle must stay allocation-free",
			res.HotPath.AllocsPerCycle, base.HotPath.AllocsPerCycle, scaleAllocSlack)
	}
	fmt.Printf("baseline check: %.2f allocs/cycle vs committed %.2f — ok\n",
		res.HotPath.AllocsPerCycle, base.HotPath.AllocsPerCycle)
	if base.DecryptPhase.DecryptCycles > 0 {
		limit := base.DecryptPhase.AllocsPerCycle * scaleDecryptSlack
		if res.DecryptPhase.AllocsPerCycle > limit {
			return fmt.Errorf("allocation regression: decrypt phase now allocates %.0f objects/cycle, committed baseline is %.0f (gate: baseline×%.2f)",
				res.DecryptPhase.AllocsPerCycle, base.DecryptPhase.AllocsPerCycle, scaleDecryptSlack)
		}
		fmt.Printf("decrypt baseline check: %.0f allocs/cycle vs committed %.0f — ok\n",
			res.DecryptPhase.AllocsPerCycle, base.DecryptPhase.AllocsPerCycle)
	} else {
		fmt.Println("decrypt baseline check: skipped (v1 baseline has no DecryptPhase section)")
	}
	return nil
}
