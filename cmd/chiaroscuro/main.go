// Command chiaroscuro runs the full privacy-preserving clustering
// protocol on a chosen workload and prints the per-iteration log the
// demonstration GUI renders (centroid evolution, noise impact, quality
// and cost measures), plus a final comparison against centralized
// k-means.
//
// Examples:
//
//	go run ./cmd/chiaroscuro
//	go run ./cmd/chiaroscuro -dataset tumor -n 1000 -k 4 -epsilon 1
//	go run ./cmd/chiaroscuro -backend damgard-jurik -n 20 -modulus 256
//	go run ./cmd/chiaroscuro -churn 0.02 -strategy geo-increasing
//
// The -bench-crypto mode skips the protocol entirely and measures the
// Damgård–Jurik per-operation timings on this machine, naive reference
// versus precomputed fast path (docs/CRYPTO.md), optionally writing the
// profiles as JSON for trend tracking (CI uploads BENCH_crypto.json):
//
//	go run ./cmd/chiaroscuro -bench-crypto
//	go run ./cmd/chiaroscuro -bench-crypto -modulus 512 -bench-reps 16 -bench-crypto-out BENCH_crypto.json
//
// The -bench-core mode times whole protocol runs — the engine comparison
// on the accounted backend and fully encrypted end-to-end runs, packed
// and unpacked — and optionally writes them as JSON (CI uploads
// BENCH_core.json next to BENCH_crypto.json, so the perf trajectory of
// the engines and of slot packing is tracked per push):
//
//	go run ./cmd/chiaroscuro -bench-core
//	go run ./cmd/chiaroscuro -bench-core -bench-core-out BENCH_core.json
//
// The -faults flag injects a deterministic fault scenario (simnet
// grammar; see docs/ARCHITECTURE.md "The simnet fault layer") into a
// normal run, and -bench-faults runs the E11 scenario table (CI uploads
// BENCH_faults.json so fault-resilience regressions show up as row
// diffs):
//
//	go run ./cmd/chiaroscuro -faults 'drop=0.1;outage@10+8=1,2:reset'
//	go run ./cmd/chiaroscuro -bench-faults -bench-faults-out BENCH_faults.json
//
// The -bench-scale mode measures the large-population memory profile:
// the steady-state gossip hot path's allocations per cycle (zero on the
// accounted backend — the arena layout of internal/vecpool) and one
// full accounted sharded run at -bench-scale-n participants. CI runs it
// at N=100k, uploads BENCH_scale.json, and fails the build if the
// hot-path figure regresses past the committed baseline:
//
//	go run ./cmd/chiaroscuro -bench-scale
//	go run ./cmd/chiaroscuro -bench-scale -bench-scale-n 100000 \
//	    -bench-scale-out BENCH_scale_ci.json -bench-scale-baseline BENCH_scale.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"chiaroscuro"
	"chiaroscuro/internal/core"
	"chiaroscuro/internal/costmodel"
	"chiaroscuro/internal/experiments"
)

func main() {
	var (
		dataset   = flag.String("dataset", "cer", "workload: cer | tumor")
		n         = flag.Int("n", 600, "number of participants (simulated devices)")
		k         = flag.Int("k", 5, "number of clusters")
		epsilon   = flag.Float64("epsilon", 1.0, "privacy budget ε at the target population")
		targetPop = flag.Int("target-pop", 1000000, "target deployment size ε refers to (demo scaling rule); 0 = use ε as-is")
		iters     = flag.Int("iterations", 6, "k-means iterations")
		rounds    = flag.Int("gossip-rounds", 0, "gossip exchanges per participant per aggregation (0 = auto)")
		threshold = flag.Int("threshold", 0, "partial decryptions needed (0 = auto)")
		strategy  = flag.String("strategy", "uniform", "budget strategy: uniform | geo-increasing | geo-decreasing | final-boost")
		smoothing = flag.String("smoothing", "moving-average", "perturbed-mean smoothing: none | moving-average | exponential")
		backend   = flag.String("backend", "accounted", "cipher backend: accounted | damgard-jurik")
		engine    = flag.String("engine", "cycles", "execution engine: cycles | sharded | async (sharded is bit-identical to cycles, parallelized)")
		workers   = flag.Int("workers", 0, "shard workers for -engine sharded (0 = GOMAXPROCS)")
		packed    = flag.Bool("packed", false, "pack multiple coordinates per ciphertext on the encrypted side (slot packing)")
		modulus   = flag.Int("modulus", 0, "key size in bits (0 = default)")
		seed      = flag.Int64("seed", 2016, "random seed (whole run is deterministic)")
		churn     = flag.Float64("churn", 0, "per-cycle crash probability")
		faults    = flag.String("faults", "", "deterministic fault scenario, e.g. 'drop=0.05;delay=0.2x3;outage@10+8=1,2:reset;garble=7' (see docs/ARCHITECTURE.md)")
		quiet     = flag.Bool("quiet", false, "suppress the per-iteration log")

		benchCrypto    = flag.Bool("bench-crypto", false, "measure Damgård–Jurik op timings (naive vs fast path) and exit")
		benchCryptoOut = flag.String("bench-crypto-out", "", "with -bench-crypto: also write the profiles as JSON to this file")
		benchReps      = flag.Int("bench-reps", 8, "with -bench-crypto: repetitions per measured operation")
		benchCore      = flag.Bool("bench-core", false, "time full protocol runs (engines, packed vs unpacked end-to-end) and exit")
		benchCoreOut   = flag.String("bench-core-out", "", "with -bench-core: also write the results as JSON to this file")
		benchFaults    = flag.Bool("bench-faults", false, "run the E11 fault-injection scenario table at quick scale and exit")
		benchFaultsOut = flag.String("bench-faults-out", "", "with -bench-faults: also write the table as JSON to this file")

		benchScale         = flag.Bool("bench-scale", false, "measure the large-population memory profile (hot-path allocs/cycle + full sharded run) and exit")
		benchScaleN        = flag.Int("bench-scale-n", 100000, "with -bench-scale: population of the timed sharded run")
		benchScaleOut      = flag.String("bench-scale-out", "", "with -bench-scale: also write the results as JSON to this file")
		benchScaleBaseline = flag.String("bench-scale-baseline", "", "with -bench-scale: fail if hot-path allocs/cycle regress past this committed BENCH_scale.json")

		stream          = flag.Bool("stream", false, "streaming mode: cluster a sliding window of the workload repeatedly, drawing each window's ε from -lifetime-epsilon")
		windows         = flag.Int("windows", 8, "with -stream: number of windows to run (also the budget strategy's planning horizon)")
		windowSlide     = flag.Int("window-slide", 4, "with -stream: samples appended (and evicted) per window advance")
		warmStart       = flag.Bool("warm-start", false, "with -stream: seed each window's centroids from the previous window's disclosure")
		lifetimeEpsilon = flag.Float64("lifetime-epsilon", 8, "with -stream: longitudinal privacy budget across all windows")
		budgetStrategy  = flag.String("budget-strategy", "uniform", "with -stream: per-window ε spend policy: uniform | decaying | threshold")
		driftThreshold  = flag.Float64("drift-threshold", 0, "with -stream and -budget-strategy threshold: re-cluster only when centroid drift exceeds this (0 = default 0.05)")
		converge        = flag.Float64("converge", 0, "early-stop threshold on centroid displacement (0 = disabled)")

		benchStream    = flag.Bool("bench-stream", false, "measure warm-start vs cold re-clustering over a drifting stream and exit")
		benchStreamN   = flag.Int("bench-stream-n", 10000, "with -bench-stream: population size")
		benchStreamOut = flag.String("bench-stream-out", "", "with -bench-stream: also write the results as JSON to this file")
	)
	flag.Parse()

	if *benchCrypto {
		if err := runBenchCrypto(*modulus, *benchReps, *benchCryptoOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchCore {
		if err := runBenchCore(*benchCoreOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchFaults {
		if err := runBenchFaults(*benchFaultsOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchScale {
		if err := runBenchScale(*benchScaleN, *benchScaleOut, *benchScaleBaseline); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *benchStream {
		if err := runBenchStream(*benchStreamN, *benchStreamOut); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *stream {
		err := runStream(streamOptions{
			dataset:          *dataset,
			n:                *n,
			k:                *k,
			lifetimeEpsilon:  *lifetimeEpsilon,
			windows:          *windows,
			slide:            *windowSlide,
			warmStart:        *warmStart,
			budgetStrategy:   *budgetStrategy,
			driftThreshold:   *driftThreshold,
			iterations:       *iters,
			converge:         *converge,
			gossipRounds:     *rounds,
			decryptThreshold: *threshold,
			engine:           *engine,
			workers:          *workers,
			seed:             *seed,
			quiet:            *quiet,
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	series, _, archetypes, err := load(*dataset, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		log.Fatal(err)
	}
	dim := len(series[0])

	eps := *epsilon
	if *targetPop > 0 {
		eps, err = chiaroscuro.ScaleEpsilonForPopulation(*epsilon, *targetPop, *n)
		if err != nil {
			log.Fatal(err)
		}
	}

	init := chiaroscuro.LevelInit(*k, dim)
	cfg := chiaroscuro.Config{
		Faults:           *faults,
		K:                *k,
		Epsilon:          eps,
		Iterations:       *iters,
		GossipRounds:     *rounds,
		DecryptThreshold: *threshold,
		Backend:          chiaroscuro.Backend(*backend),
		Engine:           *engine,
		Workers:          *workers,
		Packed:           *packed,
		ModulusBits:      *modulus,
		Strategy:         *strategy,
		Smoothing:        chiaroscuro.Smoothing{Method: *smoothing},
		InitialCentroids: init,
		Seed:             *seed,
		ChurnCrashProb:   *churn,
	}
	if *churn > 0 {
		cfg.ChurnRejoinProb = 0.3
	}

	fmt.Printf("chiaroscuro: %s workload, %d participants, k=%d, ε=%.4g", *dataset, *n, *k, eps)
	if *targetPop > 0 {
		fmt.Printf(" (ε=%.2g at %d devices)", *epsilon, *targetPop)
	}
	fmt.Printf(", backend=%s, engine=%s", *backend, *engine)
	if *packed {
		fmt.Printf(", packed")
	}
	fmt.Println()
	fmt.Printf("archetypes in the generator: %v\n\n", archetypes)

	res, err := chiaroscuro.Cluster(series, cfg)
	if err != nil {
		log.Fatal(err)
	}

	if !*quiet {
		fmt.Println("iter   ε_i      noise RMSE   cluster sizes (perturbed, relative)")
		for _, it := range res.Trace {
			fmt.Printf("%4d   %-8.4g %-12.4f %v\n", it.Index+1, it.Epsilon, it.NoiseRMSE, compact(it.Counts))
		}
		fmt.Println()
	}

	base, err := chiaroscuro.CentralizedKMeans(series, *k, 40, *seed, init)
	if err != nil {
		log.Fatal(err)
	}
	ratio, rmse, ari, err := chiaroscuro.CompareToBaseline(res, base)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("quality:  inertia %.3f (centralized %.3f, ratio %.3f)   centroid RMSE %.4f   ARI %.3f\n",
		res.Inertia, base.Inertia, ratio, rmse, ari)
	fmt.Printf("privacy:  ε spent %.4g over %d disclosures   gossip distortion %.2e\n",
		res.Privacy.EpsilonSpent, res.Privacy.Disclosures, res.Privacy.GossipRelErr)
	fmt.Printf("network:  %d messages (%.1f MB), %d dropped, %d cycles\n",
		res.Network.MessagesSent, float64(res.Network.BytesSent)/1e6,
		res.Network.MessagesDropped, res.Network.Cycles)
	if *faults != "" {
		fmt.Printf("faults:   %d dropped, %d duplicated, %d delayed by scenario; %d/%d participants completed\n",
			res.Network.FaultDropped, res.Network.Duplicated, res.Network.Delayed,
			res.Completed, *n)
	}
	fmt.Printf("crypto:   %d enc, %d add, %d halve, %d partial-dec, %d combine (%s)\n",
		res.Crypto.Encrypts, res.Crypto.Adds, res.Crypto.Halvings,
		res.Crypto.PartialDecrypts, res.Crypto.Combines, *backend)
	if res.DecryptFailures > 0 {
		fmt.Printf("warning:  %d decryption quorum failures (degraded iterations)\n", res.DecryptFailures)
	}
	if res.ConvergedAtIteration >= 0 {
		fmt.Printf("converged after iteration %d\n", res.ConvergedAtIteration+1)
	}
	fmt.Printf("elapsed:  %s\n", res.Elapsed.Round(1e6))
	os.Exit(0)
}

// cryptoBenchEntry is one key size's measurements in the JSON artifact.
type cryptoBenchEntry struct {
	*costmodel.CryptoProfile
	Speedups map[string]float64 `json:"Speedups"`
	// KeyCeremony is the wall-clock of one full in-memory distributed
	// key generation (every party's state machine, fresh genesis) at
	// this modulus size — the one-time cost a deployment pays to run
	// without a trusted dealer.
	KeyCeremony time.Duration `json:"KeyCeremony"`
}

// cryptoBenchResult is the BENCH_crypto.json schema: stable enough that
// CI artifacts from successive commits can be diffed for perf trends.
type cryptoBenchResult struct {
	Schema    string             `json:"Schema"` // "chiaroscuro-bench-crypto/v1"
	Timestamp string             `json:"Timestamp"`
	Parties   int                `json:"Parties"`
	Threshold int                `json:"Threshold"`
	Reps      int                `json:"Reps"`
	Profiles  []cryptoBenchEntry `json:"Profiles"`
}

// runBenchCrypto measures naive vs fast-path crypto timings at the given
// modulus size (0 = the 512/1024 pair) and prints a table; with a
// non-empty out path it also writes the JSON artifact.
func runBenchCrypto(modulus, reps int, out string) error {
	sizes := []int{512, 1024}
	if modulus != 0 {
		sizes = []int{modulus}
	}
	const parties, threshold = 8, 5
	res := cryptoBenchResult{
		Schema:    "chiaroscuro-bench-crypto/v1",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Parties:   parties,
		Threshold: threshold,
		Reps:      reps,
	}
	fmt.Printf("damgård–jurik op timings, naive vs fast path (s=1, %d-of-%d, %d reps)\n\n", threshold, parties, reps)
	fmt.Println("bits   op               naive        fast         speedup")
	for _, bits := range sizes {
		p, err := costmodel.MeasureProfile(bits, 1, parties, threshold, reps)
		if err != nil {
			return err
		}
		sp := p.Speedups()
		rows := []struct {
			name        string
			naive, fast time.Duration
		}{
			{"encrypt", p.Encrypt, p.FastEncrypt},
			{"decrypt", p.Decrypt, p.FastDecrypt},
			{"partial-decrypt", p.PartialDecrypt, p.FastPartialDecrypt},
			{"combine", p.Combine, p.FastCombine},
			{"rerandomize", p.Rerandomize, p.FastRerandomize},
		}
		for _, r := range rows {
			fmt.Printf("%-6d %-16s %-12s %-12s %.2fx\n",
				bits, r.name, r.naive.Round(time.Microsecond), r.fast.Round(time.Microsecond), sp[r.name])
		}
		fmt.Printf("%-6d %-16s %-12s %-12s\n", bits, "hom-add", p.Add.Round(time.Nanosecond), "-")
		start := time.Now()
		if _, err := core.RunDJKeyCeremony(bits, 1, parties, threshold, 1, nil); err != nil {
			return err
		}
		ceremony := time.Since(start)
		fmt.Printf("%-6d %-16s %-12s %-12s\n", bits, "key-ceremony", ceremony.Round(time.Microsecond), "-")
		fmt.Println()
		res.Profiles = append(res.Profiles, cryptoBenchEntry{CryptoProfile: p, Speedups: sp, KeyCeremony: ceremony})
	}
	if out == "" {
		return nil
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// coreBenchEntry is one timed protocol run in the BENCH_core.json
// artifact: configuration, wall-clock, and the homomorphic-operation and
// network totals that make packing regressions visible in a diff.
type coreBenchEntry struct {
	Name       string
	Backend    string
	Engine     string
	Packed     bool
	N          int
	Dim        int
	K          int
	Iterations int

	Elapsed      time.Duration
	Encrypts     int64
	Halvings     int64
	PartialDecs  int64
	Combines     int64
	MessagesSent int
	BytesSent    int64
}

// coreBenchResult is the BENCH_core.json schema: stable enough that CI
// artifacts from successive commits can be diffed for perf trends,
// companion to BENCH_crypto.json's per-operation view.
type coreBenchResult struct {
	Schema    string           `json:"Schema"` // "chiaroscuro-bench-core/v1"
	Timestamp string           `json:"Timestamp"`
	Runs      []coreBenchEntry `json:"Runs"`
}

// runBenchCore times full protocol runs: the engine comparison on the
// accounted backend and fully encrypted end-to-end runs, packed and
// unpacked, and prints a table; with a non-empty out path it also writes
// the JSON artifact.
func runBenchCore(out string) error {
	res := coreBenchResult{
		Schema:    "chiaroscuro-bench-core/v1",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	run := func(name string, series [][]float64, cfg chiaroscuro.Config) error {
		start := time.Now()
		r, err := chiaroscuro.Cluster(series, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		engine := cfg.Engine
		if engine == "" {
			engine = "cycles"
		}
		backend := string(cfg.Backend)
		if backend == "" {
			backend = string(chiaroscuro.BackendAccounted)
		}
		res.Runs = append(res.Runs, coreBenchEntry{
			Name:         name,
			Backend:      backend,
			Engine:       engine,
			Packed:       cfg.Packed,
			N:            len(series),
			Dim:          len(series[0]),
			K:            cfg.K,
			Iterations:   cfg.Iterations,
			Elapsed:      time.Since(start),
			Encrypts:     r.Crypto.Encrypts,
			Halvings:     r.Crypto.Halvings,
			PartialDecs:  r.Crypto.PartialDecrypts,
			Combines:     r.Crypto.Combines,
			MessagesSent: r.Network.MessagesSent,
			BytesSent:    r.Network.BytesSent,
		})
		return nil
	}

	// Engine comparison: the accounted backend at a CI-friendly
	// population, sequential vs sharded (bit-identical traces), then the
	// packed accounted run (bit-identical disclosures, fewer ring ops).
	acc, _, _ := chiaroscuro.SyntheticCER(600, 12, 1)
	if _, _, err := chiaroscuro.Normalize01(acc); err != nil {
		return err
	}
	accCfg := chiaroscuro.Config{K: 3, Epsilon: 50, Iterations: 2, Seed: 1, GossipRounds: 10, DecryptThreshold: 4}
	for _, engine := range []string{"cycles", "sharded"} {
		cfg := accCfg
		cfg.Engine = engine
		if err := run("accounted-"+engine, acc, cfg); err != nil {
			return err
		}
	}
	{
		cfg := accCfg
		cfg.Packed = true
		if err := run("accounted-cycles-packed", acc, cfg); err != nil {
			return err
		}
	}

	// End-to-end real crypto, unpacked vs packed: the slot-packing
	// speedup measured on genuine homomorphic arithmetic.
	dj, _, _ := chiaroscuro.SyntheticTumorGrowth(16, 10, 1)
	if _, _, err := chiaroscuro.Normalize01(dj); err != nil {
		return err
	}
	djCfg := chiaroscuro.Config{
		K: 2, Epsilon: 100, Iterations: 2, Seed: 1,
		Backend: chiaroscuro.BackendDamgardJurik, ModulusBits: 256,
		DecryptThreshold: 4, GossipRounds: 8,
	}
	if err := run("damgard-jurik-unpacked", dj, djCfg); err != nil {
		return err
	}
	djCfg.Packed = true
	if err := run("damgard-jurik-packed", dj, djCfg); err != nil {
		return err
	}

	fmt.Println("run                        elapsed      encrypts  halvings  partial-dec  bytes")
	for _, e := range res.Runs {
		fmt.Printf("%-26s %-12s %-9d %-9d %-12d %.2f MB\n",
			e.Name, e.Elapsed.Round(time.Millisecond), e.Encrypts, e.Halvings, e.PartialDecs,
			float64(e.BytesSent)/1e6)
	}
	if out == "" {
		return nil
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// faultsBenchResult is the BENCH_faults.json schema: the E11 scenario
// table verbatim (scenarios are deterministic, so successive CI
// artifacts diff cleanly — a changed row is a behaviour change).
type faultsBenchResult struct {
	Schema    string     `json:"Schema"` // "chiaroscuro-bench-faults/v1"
	Timestamp string     `json:"Timestamp"`
	Header    []string   `json:"Header"`
	Rows      [][]string `json:"Rows"`
}

// runBenchFaults runs the E11 fault-injection experiment at quick scale
// and prints the table; with a non-empty out path it also writes the
// JSON artifact CI uploads next to the other bench artifacts.
func runBenchFaults(out string) error {
	tab, err := experiments.E11FaultInjection(experiments.Quick)
	if err != nil {
		return err
	}
	fmt.Println(tab.Markdown())
	if out == "" {
		return nil
	}
	res := faultsBenchResult{
		Schema:    "chiaroscuro-bench-faults/v1",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Header:    tab.Header,
		Rows:      tab.Rows,
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func load(name string, n int, seed int64) ([][]float64, []int, []string, error) {
	switch name {
	case "cer":
		s, l, a := chiaroscuro.SyntheticCER(n, 24, seed)
		return s, l, a, nil
	case "tumor":
		s, l, a := chiaroscuro.SyntheticTumorGrowth(n, 20, seed)
		return s, l, a, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown dataset %q (want cer or tumor)", name)
	}
}

func compact(counts []float64) []string {
	out := make([]string, len(counts))
	for i, c := range counts {
		out[i] = fmt.Sprintf("%.3f", c)
	}
	return out
}
