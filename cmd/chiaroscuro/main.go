// Command chiaroscuro runs the full privacy-preserving clustering
// protocol on a chosen workload and prints the per-iteration log the
// demonstration GUI renders (centroid evolution, noise impact, quality
// and cost measures), plus a final comparison against centralized
// k-means.
//
// Examples:
//
//	go run ./cmd/chiaroscuro
//	go run ./cmd/chiaroscuro -dataset tumor -n 1000 -k 4 -epsilon 1
//	go run ./cmd/chiaroscuro -backend damgard-jurik -n 20 -modulus 256
//	go run ./cmd/chiaroscuro -churn 0.02 -strategy geo-increasing
//
// The -bench-crypto mode skips the protocol entirely and measures the
// Damgård–Jurik per-operation timings on this machine, naive reference
// versus precomputed fast path (docs/CRYPTO.md), optionally writing the
// profiles as JSON for trend tracking (CI uploads BENCH_crypto.json):
//
//	go run ./cmd/chiaroscuro -bench-crypto
//	go run ./cmd/chiaroscuro -bench-crypto -modulus 512 -bench-reps 16 -bench-crypto-out BENCH_crypto.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"chiaroscuro"
	"chiaroscuro/internal/costmodel"
)

func main() {
	var (
		dataset   = flag.String("dataset", "cer", "workload: cer | tumor")
		n         = flag.Int("n", 600, "number of participants (simulated devices)")
		k         = flag.Int("k", 5, "number of clusters")
		epsilon   = flag.Float64("epsilon", 1.0, "privacy budget ε at the target population")
		targetPop = flag.Int("target-pop", 1000000, "target deployment size ε refers to (demo scaling rule); 0 = use ε as-is")
		iters     = flag.Int("iterations", 6, "k-means iterations")
		rounds    = flag.Int("gossip-rounds", 0, "gossip exchanges per participant per aggregation (0 = auto)")
		threshold = flag.Int("threshold", 0, "partial decryptions needed (0 = auto)")
		strategy  = flag.String("strategy", "uniform", "budget strategy: uniform | geo-increasing | geo-decreasing | final-boost")
		smoothing = flag.String("smoothing", "moving-average", "perturbed-mean smoothing: none | moving-average | exponential")
		backend   = flag.String("backend", "accounted", "cipher backend: accounted | damgard-jurik")
		engine    = flag.String("engine", "cycles", "execution engine: cycles | sharded | async (sharded is bit-identical to cycles, parallelized)")
		workers   = flag.Int("workers", 0, "shard workers for -engine sharded (0 = GOMAXPROCS)")
		modulus   = flag.Int("modulus", 0, "key size in bits (0 = default)")
		seed      = flag.Int64("seed", 2016, "random seed (whole run is deterministic)")
		churn     = flag.Float64("churn", 0, "per-cycle crash probability")
		quiet     = flag.Bool("quiet", false, "suppress the per-iteration log")

		benchCrypto    = flag.Bool("bench-crypto", false, "measure Damgård–Jurik op timings (naive vs fast path) and exit")
		benchCryptoOut = flag.String("bench-crypto-out", "", "with -bench-crypto: also write the profiles as JSON to this file")
		benchReps      = flag.Int("bench-reps", 8, "with -bench-crypto: repetitions per measured operation")
	)
	flag.Parse()

	if *benchCrypto {
		if err := runBenchCrypto(*modulus, *benchReps, *benchCryptoOut); err != nil {
			log.Fatal(err)
		}
		return
	}

	series, _, archetypes, err := load(*dataset, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		log.Fatal(err)
	}
	dim := len(series[0])

	eps := *epsilon
	if *targetPop > 0 {
		eps, err = chiaroscuro.ScaleEpsilonForPopulation(*epsilon, *targetPop, *n)
		if err != nil {
			log.Fatal(err)
		}
	}

	init := chiaroscuro.LevelInit(*k, dim)
	cfg := chiaroscuro.Config{
		K:                *k,
		Epsilon:          eps,
		Iterations:       *iters,
		GossipRounds:     *rounds,
		DecryptThreshold: *threshold,
		Backend:          chiaroscuro.Backend(*backend),
		Engine:           *engine,
		Workers:          *workers,
		ModulusBits:      *modulus,
		Strategy:         *strategy,
		Smoothing:        chiaroscuro.Smoothing{Method: *smoothing},
		InitialCentroids: init,
		Seed:             *seed,
		ChurnCrashProb:   *churn,
	}
	if *churn > 0 {
		cfg.ChurnRejoinProb = 0.3
	}

	fmt.Printf("chiaroscuro: %s workload, %d participants, k=%d, ε=%.4g", *dataset, *n, *k, eps)
	if *targetPop > 0 {
		fmt.Printf(" (ε=%.2g at %d devices)", *epsilon, *targetPop)
	}
	fmt.Printf(", backend=%s, engine=%s\n", *backend, *engine)
	fmt.Printf("archetypes in the generator: %v\n\n", archetypes)

	res, err := chiaroscuro.Cluster(series, cfg)
	if err != nil {
		log.Fatal(err)
	}

	if !*quiet {
		fmt.Println("iter   ε_i      noise RMSE   cluster sizes (perturbed, relative)")
		for _, it := range res.Trace {
			fmt.Printf("%4d   %-8.4g %-12.4f %v\n", it.Index+1, it.Epsilon, it.NoiseRMSE, compact(it.Counts))
		}
		fmt.Println()
	}

	base, err := chiaroscuro.CentralizedKMeans(series, *k, 40, *seed, init)
	if err != nil {
		log.Fatal(err)
	}
	ratio, rmse, ari, err := chiaroscuro.CompareToBaseline(res, base)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("quality:  inertia %.3f (centralized %.3f, ratio %.3f)   centroid RMSE %.4f   ARI %.3f\n",
		res.Inertia, base.Inertia, ratio, rmse, ari)
	fmt.Printf("privacy:  ε spent %.4g over %d disclosures   gossip distortion %.2e\n",
		res.Privacy.EpsilonSpent, res.Privacy.Disclosures, res.Privacy.GossipRelErr)
	fmt.Printf("network:  %d messages (%.1f MB), %d dropped, %d cycles\n",
		res.Network.MessagesSent, float64(res.Network.BytesSent)/1e6,
		res.Network.MessagesDropped, res.Network.Cycles)
	fmt.Printf("crypto:   %d enc, %d add, %d halve, %d partial-dec, %d combine (%s)\n",
		res.Crypto.Encrypts, res.Crypto.Adds, res.Crypto.Halvings,
		res.Crypto.PartialDecrypts, res.Crypto.Combines, *backend)
	if res.DecryptFailures > 0 {
		fmt.Printf("warning:  %d decryption quorum failures (degraded iterations)\n", res.DecryptFailures)
	}
	if res.ConvergedAtIteration >= 0 {
		fmt.Printf("converged after iteration %d\n", res.ConvergedAtIteration+1)
	}
	fmt.Printf("elapsed:  %s\n", res.Elapsed.Round(1e6))
	os.Exit(0)
}

// cryptoBenchEntry is one key size's measurements in the JSON artifact.
type cryptoBenchEntry struct {
	*costmodel.CryptoProfile
	Speedups map[string]float64 `json:"Speedups"`
}

// cryptoBenchResult is the BENCH_crypto.json schema: stable enough that
// CI artifacts from successive commits can be diffed for perf trends.
type cryptoBenchResult struct {
	Schema    string             `json:"Schema"` // "chiaroscuro-bench-crypto/v1"
	Timestamp string             `json:"Timestamp"`
	Parties   int                `json:"Parties"`
	Threshold int                `json:"Threshold"`
	Reps      int                `json:"Reps"`
	Profiles  []cryptoBenchEntry `json:"Profiles"`
}

// runBenchCrypto measures naive vs fast-path crypto timings at the given
// modulus size (0 = the 512/1024 pair) and prints a table; with a
// non-empty out path it also writes the JSON artifact.
func runBenchCrypto(modulus, reps int, out string) error {
	sizes := []int{512, 1024}
	if modulus != 0 {
		sizes = []int{modulus}
	}
	const parties, threshold = 8, 5
	res := cryptoBenchResult{
		Schema:    "chiaroscuro-bench-crypto/v1",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Parties:   parties,
		Threshold: threshold,
		Reps:      reps,
	}
	fmt.Printf("damgård–jurik op timings, naive vs fast path (s=1, %d-of-%d, %d reps)\n\n", threshold, parties, reps)
	fmt.Println("bits   op               naive        fast         speedup")
	for _, bits := range sizes {
		p, err := costmodel.MeasureProfile(bits, 1, parties, threshold, reps)
		if err != nil {
			return err
		}
		sp := p.Speedups()
		rows := []struct {
			name        string
			naive, fast time.Duration
		}{
			{"encrypt", p.Encrypt, p.FastEncrypt},
			{"decrypt", p.Decrypt, p.FastDecrypt},
			{"partial-decrypt", p.PartialDecrypt, p.FastPartialDecrypt},
			{"combine", p.Combine, p.FastCombine},
			{"rerandomize", p.Rerandomize, p.FastRerandomize},
		}
		for _, r := range rows {
			fmt.Printf("%-6d %-16s %-12s %-12s %.2fx\n",
				bits, r.name, r.naive.Round(time.Microsecond), r.fast.Round(time.Microsecond), sp[r.name])
		}
		fmt.Printf("%-6d %-16s %-12s %-12s\n", bits, "hom-add", p.Add.Round(time.Nanosecond), "-")
		fmt.Println()
		res.Profiles = append(res.Profiles, cryptoBenchEntry{CryptoProfile: p, Speedups: sp})
	}
	if out == "" {
		return nil
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

func load(name string, n int, seed int64) ([][]float64, []int, []string, error) {
	switch name {
	case "cer":
		s, l, a := chiaroscuro.SyntheticCER(n, 24, seed)
		return s, l, a, nil
	case "tumor":
		s, l, a := chiaroscuro.SyntheticTumorGrowth(n, 20, seed)
		return s, l, a, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown dataset %q (want cer or tumor)", name)
	}
}

func compact(counts []float64) []string {
	out := make([]string, len(counts))
	for i, c := range counts {
		out[i] = fmt.Sprintf("%.3f", c)
	}
	return out
}
