package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"chiaroscuro"
)

// writeJSON writes v as indented JSON with a trailing newline — the
// shape of every BENCH_*.json artifact.
func writeJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// streamOptions collects the -stream mode's flag values.
type streamOptions struct {
	dataset          string
	n, k             int
	lifetimeEpsilon  float64
	windows, slide   int
	warmStart        bool
	budgetStrategy   string
	driftThreshold   float64
	iterations       int
	converge         float64
	gossipRounds     int
	decryptThreshold int
	engine           string
	workers          int
	seed             int64
	quiet            bool
}

// loadStream generates a workload long enough for the whole stream —
// window width dim plus (windows−1)·slide extra samples per series —
// and splits it into the initial window and the per-window slides.
func loadStream(o streamOptions, dim int) (initial [][]float64, steps [][][]float64, err error) {
	total := dim + (o.windows-1)*o.slide
	var series [][]float64
	switch o.dataset {
	case "cer":
		series, _, _, err = chiaroscuro.SyntheticCERErr(o.n, total, o.seed)
	case "tumor":
		series, _, _, err = chiaroscuro.SyntheticTumorGrowthErr(o.n, total, o.seed)
	default:
		err = fmt.Errorf("unknown dataset %q (want cer or tumor)", o.dataset)
	}
	if err != nil {
		return nil, nil, err
	}
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		return nil, nil, err
	}
	initial = make([][]float64, o.n)
	for i := range initial {
		initial[i] = append([]float64(nil), series[i][:dim]...)
	}
	steps = make([][][]float64, o.windows-1)
	for w := range steps {
		steps[w] = make([][]float64, o.n)
		for i := range steps[w] {
			steps[w][i] = append([]float64(nil), series[i][dim+w*o.slide:dim+(w+1)*o.slide]...)
		}
	}
	return initial, steps, nil
}

// runStream is the -stream mode: a streaming session over a sliding
// window of the chosen workload, one protocol run (or budget-strategy
// skip) per window, with the longitudinal ledger printed as it drains.
func runStream(o streamOptions) error {
	if o.windows < 1 {
		return fmt.Errorf("-windows must be at least 1, got %d", o.windows)
	}
	if o.slide < 1 {
		return fmt.Errorf("-window-slide must be at least 1, got %d", o.slide)
	}
	dim := 24
	if o.dataset == "tumor" {
		dim = 20
	}
	initial, steps, err := loadStream(o, dim)
	if err != nil {
		return err
	}
	sess, err := chiaroscuro.OpenStream(initial, chiaroscuro.Config{
		K:                 o.k,
		LifetimeEpsilon:   o.lifetimeEpsilon,
		Windows:           o.windows,
		WarmStart:         o.warmStart,
		BudgetStrategy:    o.budgetStrategy,
		DriftThreshold:    o.driftThreshold,
		Iterations:        o.iterations,
		ConvergeThreshold: o.converge,
		GossipRounds:      o.gossipRounds,
		DecryptThreshold:  o.decryptThreshold,
		Engine:            o.engine,
		Workers:           o.workers,
		Seed:              o.seed,
	})
	if err != nil {
		return err
	}
	defer sess.Close()

	fmt.Printf("chiaroscuro stream: %s workload, %d participants, k=%d, %d windows (slide %d), lifetime ε=%.4g, strategy=%s",
		o.dataset, o.n, o.k, o.windows, o.slide, o.lifetimeEpsilon, orDefault(o.budgetStrategy, "uniform"))
	if o.warmStart {
		fmt.Printf(", warm-start")
	}
	fmt.Println()
	if !o.quiet {
		fmt.Println("\nwindow  ε drawn   iters  drift     inertia     ε remaining")
	}
	for w := 0; w < o.windows; w++ {
		var pts [][]float64
		if w > 0 {
			pts = steps[w-1]
		}
		res, err := sess.Advance(pts)
		if err != nil {
			return fmt.Errorf("window %d: %w", w, err)
		}
		if o.quiet {
			continue
		}
		st := res.Stream
		if st.Skipped {
			fmt.Printf("%6d  %-9s %-6s %-9.4f %-11s %.4g\n",
				w, "skip", "-", st.Drift, "-", st.Budget.Remaining)
			continue
		}
		drift := "-"
		if !math.IsNaN(st.Drift) {
			drift = fmt.Sprintf("%.4f", st.Drift)
		}
		fmt.Printf("%6d  %-9.4g %-6d %-9s %-11.4f %.4g\n",
			w, st.EpsilonDrawn, len(res.Trace), drift, res.Inertia, st.Budget.Remaining)
	}
	b := sess.Budget()
	fmt.Printf("\nledger:   ε %.4g of %.4g spent over %d windows (%d skipped), %.4g remaining\n",
		b.SpentEpsilon, b.LifetimeEpsilon, b.Windows, b.Skips, b.Remaining)
	return nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// streamBenchEntry is one mode (warm or cold) of the BENCH_stream.json
// artifact: total k-means iterations actually run across the stream —
// the quantity warm-starting exists to shrink — plus wall-clock and
// quality, so a regression in any of the three shows up as a row diff.
type streamBenchEntry struct {
	Mode                string // "warm" | "cold"
	N, Dim, K           int
	Windows, Slide      int
	LifetimeEpsilon     float64
	TotalIterations     int
	IterationsPerWindow []int
	MeanInertia         float64
	Elapsed             time.Duration
}

// streamBenchResult is the BENCH_stream.json schema.
type streamBenchResult struct {
	Schema    string             `json:"Schema"` // "chiaroscuro-bench-stream/v1"
	Timestamp string             `json:"Timestamp"`
	Entries   []streamBenchEntry `json:"Entries"`
}

// runBenchStream measures warm-start against cold restarts on a
// drifting stream at bench scale (default N=10k over 8 windows): total
// iterations to converge, wall-clock, and mean inertia. With a
// non-empty out path it also writes the JSON artifact CI uploads.
func runBenchStream(n int, out string) error {
	const dim, windows, slide, k = 8, 8, 2, 3
	total := dim + (windows-1)*slide
	// A drifting well-separated blob population: the regime where early
	// stopping makes iteration counts comparable (CER's overlapping
	// archetypes keep the disclosed centroids wobbling above any usable
	// convergence threshold).
	full := make([][]float64, n)
	for i := range full {
		base := 0.12 + 0.72*float64(i%k)/k
		s := make([]float64, total)
		for t := range s {
			v := base + 0.05*math.Sin(2*math.Pi*(float64(t)/float64(total)+float64(i%5)/5)) +
				0.015*float64((i*7+t*3)%5-2)/5
			s[t] = math.Min(1, math.Max(0, v))
		}
		full[i] = s
	}
	initial := make([][]float64, n)
	for i := range initial {
		initial[i] = append([]float64(nil), full[i][:dim]...)
	}
	steps := make([][][]float64, windows-1)
	for w := range steps {
		steps[w] = make([][]float64, n)
		for i := range steps[w] {
			steps[w][i] = append([]float64(nil), full[i][dim+w*slide:dim+(w+1)*slide]...)
		}
	}

	res := streamBenchResult{
		Schema:    "chiaroscuro-bench-stream/v1",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	for _, warm := range []bool{true, false} {
		mode := "cold"
		if warm {
			mode = "warm"
		}
		start := time.Now()
		sess, err := chiaroscuro.OpenStream(initial, chiaroscuro.Config{
			K:                 k,
			Iterations:        10,
			ConvergeThreshold: 0.08,
			LifetimeEpsilon:   4000,
			Windows:           windows,
			WarmStart:         warm,
			Engine:            "sharded",
			GossipRounds:      10,
			DecryptThreshold:  8,
			Seed:              9,
		})
		if err != nil {
			return err
		}
		entry := streamBenchEntry{
			Mode: mode, N: n, Dim: dim, K: k,
			Windows: windows, Slide: slide, LifetimeEpsilon: 4000,
		}
		for w := 0; w < windows; w++ {
			var pts [][]float64
			if w > 0 {
				pts = steps[w-1]
			}
			r, err := sess.Advance(pts)
			if err != nil {
				sess.Close()
				return fmt.Errorf("%s window %d: %w", mode, w, err)
			}
			entry.TotalIterations += len(r.Trace)
			entry.IterationsPerWindow = append(entry.IterationsPerWindow, len(r.Trace))
			entry.MeanInertia += r.Inertia / windows
		}
		sess.Close()
		entry.Elapsed = time.Since(start)
		res.Entries = append(res.Entries, entry)
	}

	fmt.Printf("stream re-cluster, N=%d, %d windows (slide %d), early stop at 0.08\n\n", n, windows, slide)
	fmt.Println("mode   total iters  per window               mean inertia  elapsed")
	for _, e := range res.Entries {
		fmt.Printf("%-6s %-12d %-24s %-13.4f %s\n",
			e.Mode, e.TotalIterations, fmt.Sprint(e.IterationsPerWindow), e.MeanInertia,
			e.Elapsed.Round(time.Millisecond))
	}
	warmE, coldE := res.Entries[0], res.Entries[1]
	if warmE.TotalIterations >= coldE.TotalIterations {
		return fmt.Errorf("warm start ran %d total iterations, cold %d — warm must be strictly fewer",
			warmE.TotalIterations, coldE.TotalIterations)
	}
	fmt.Printf("\nwarm start saved %d of %d iterations (%.0f%%)\n",
		coldE.TotalIterations-warmE.TotalIterations, coldE.TotalIterations,
		100*float64(coldE.TotalIterations-warmE.TotalIterations)/float64(coldE.TotalIterations))
	if out == "" {
		return nil
	}
	if err := writeJSON(out, res); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
