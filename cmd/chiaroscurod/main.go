// Command chiaroscurod runs one Chiaroscuro participant as a networked
// daemon process. A population of n daemons launched with identical
// protocol flags (and -id 0..n-1) forms a full TCP mesh, runs the
// clustering to completion under the coordinator-free epoch clock, and
// discloses the exact centroid trajectory the in-process sequential
// engine discloses at the same seed. See docs/ARCHITECTURE.md
// ("Running as a daemon").
package main

import (
	"os"

	"chiaroscuro/internal/transport"
)

func main() {
	os.Exit(transport.DaemonMain(os.Args[1:], os.Stdout, os.Stderr))
}
