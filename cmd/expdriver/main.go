// Command expdriver regenerates every experiment table of EXPERIMENTS.md
// (the reproduction of the paper's figures and claims; see DESIGN.md §3
// for the experiment index).
//
// Usage:
//
//	go run ./cmd/expdriver            # all experiments, full scale
//	go run ./cmd/expdriver -exp E4    # one experiment
//	go run ./cmd/expdriver -quick     # reduced sizes (smoke run)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"chiaroscuro/internal/experiments"
)

// experimentIDs derives the -exp usage string from the registry, so the
// flag help can never go stale when an experiment is added.
func experimentIDs() string {
	var ids []string
	for _, e := range experiments.Registry() {
		ids = append(ids, e.ID)
	}
	return strings.Join(ids, ", ")
}

func main() {
	exp := flag.String("exp", "", "run a single experiment by id ("+experimentIDs()+")")
	quick := flag.Bool("quick", false, "reduced population/iterations for a fast smoke run")
	pop := flag.Int("population", 0, "override the simulated population")
	flag.Parse()

	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}
	if *pop > 0 {
		scale.Population = *pop
	}

	run := func(id string, r experiments.Runner) {
		start := time.Now()
		table, err := r(scale)
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Println(table.Markdown())
		fmt.Fprintf(os.Stderr, "[%s done in %s]\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *exp != "" {
		r, err := experiments.ByID(*exp)
		if err != nil {
			log.Fatal(err)
		}
		run(*exp, r)
		return
	}
	for _, e := range experiments.Registry() {
		run(e.ID, e.Run)
	}
}
