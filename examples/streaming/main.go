// Streaming: re-cluster an evolving population over sliding windows,
// warm-starting each window from the previous disclosure and drawing
// every window's privacy budget from one lifetime ledger.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math"

	"chiaroscuro"
)

func main() {
	// 300 households streaming hourly readings. Each session window
	// clusters the most recent day; every 6 hours the window slides.
	const (
		n, window  = 300, 24
		windows    = 4
		slide      = 6
		totalHours = window + (windows-1)*slide
	)
	series, _, _ := chiaroscuro.SyntheticCER(n, totalHours, 42)
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		log.Fatal(err)
	}
	initial := make([][]float64, n)
	for i := range initial {
		initial[i] = series[i][:window]
	}

	// One lifetime budget for the whole stream: each window draws from
	// it (uniform strategy: lifetime/windows per window) and the session
	// refuses to run once it is exhausted.
	sess, err := chiaroscuro.OpenStream(initial, chiaroscuro.Config{
		K:               5,
		LifetimeEpsilon: 4 * 2000, // four windows at the one-shot quickstart's ε
		Windows:         windows,
		WarmStart:       true, // resume from the previous window's public centroids
		Iterations:      6,
		Seed:            1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	for w := 0; w < windows; w++ {
		// Windows after the first append the next slide hours per series
		// (and evict the oldest) before clustering.
		var pts [][]float64
		if w > 0 {
			pts = make([][]float64, n)
			for i := range pts {
				pts[i] = series[i][window+(w-1)*slide : window+w*slide]
			}
		}
		res, err := sess.Advance(pts)
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stream
		drift := "-"
		if !math.IsNaN(st.Drift) {
			drift = fmt.Sprintf("%.4f", st.Drift)
		}
		fmt.Printf("window %d: ε %.0f drawn, %d iterations, inertia %.3f, drift vs previous %s (warm-started: %v)\n",
			st.Window, st.EpsilonDrawn, len(res.Trace), res.Inertia, drift, st.WarmStarted)
	}

	b := sess.Budget()
	fmt.Printf("\nledger: ε %.0f of %.0f spent over %d windows, %.0f remaining\n",
		b.SpentEpsilon, b.LifetimeEpsilon, b.Windows, b.Remaining)
}
