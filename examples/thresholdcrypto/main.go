// Thresholdcrypto: the encryption substrate in isolation — a
// Damgård–Jurik threshold deployment where five parties share the key,
// values are summed under encryption, and any three parties open the
// perturbed result collaboratively (Sec. II.A's "collaborative
// decryption").
//
//	go run ./examples/thresholdcrypto
package main

import (
	"fmt"
	"log"
	"math/big"

	"chiaroscuro/internal/crypto/damgardjurik"
)

func main() {
	const (
		parties   = 5
		threshold = 3
		keyBits   = 512
	)
	fmt.Printf("dealing a %d-bit threshold key: %d parties, any %d can decrypt\n",
		keyBits, parties, threshold)
	tk, shares, err := damgardjurik.FixtureThresholdKey(keyBits, 1, parties, threshold)
	if err != nil {
		log.Fatal(err)
	}

	// Each party contributes a private reading, encrypted under the
	// common public key.
	readings := []int64{220, 310, 150, 480, 95}
	var acc *big.Int
	for i, r := range readings {
		c, err := tk.Encrypt(nil, big.NewInt(r))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  party %d encrypts %d -> %s...\n", i+1, r, c.Text(16)[:24])
		if acc == nil {
			acc = c
		} else if acc, err = tk.Add(acc, c); err != nil {
			log.Fatal(err)
		}
	}

	// Nobody can decrypt alone: two partials are not enough.
	p1, _ := tk.PartialDecrypt(shares[0], acc)
	p4, _ := tk.PartialDecrypt(shares[3], acc)
	if _, err := tk.Combine([]damgardjurik.PartialDecryption{p1, p4}); err != nil {
		fmt.Printf("\n2 partial decryptions: %v (as intended)\n", err)
	}

	// Any three parties succeed.
	p5, _ := tk.PartialDecrypt(shares[4], acc)
	sum, err := tk.Combine([]damgardjurik.PartialDecryption{p1, p4, p5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3 partial decryptions (parties 1, 4, 5): sum = %s\n", sum)

	var want int64
	for _, r := range readings {
		want += r
	}
	fmt.Printf("cleartext check: %d — %v\n", want, sum.Int64() == want)
	fmt.Println("\nno party ever saw another party's reading, and no single")
	fmt.Println("party (or any two) could have opened the aggregate.")
}
