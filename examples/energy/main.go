// Energy: the demo paper's motivating electricity use case — cluster
// household consumption curves without centralizing them, then identify
// the low-consumption profiles an individual could compare against
// ("discover the equipments that could be replaced to improve the
// electrical consumption", Sec. I).
//
//	go run ./examples/energy
package main

import (
	"fmt"
	"log"
	"sort"

	"chiaroscuro"
)

func main() {
	const (
		households = 800
		samples    = 48 // half-hourly, as the CER trial records
		k          = 6
	)
	series, labels, names := chiaroscuro.SyntheticCER(households, samples, 7)

	// Keep raw copies: the protocol works on normalized data, but the
	// final profiles are more readable in kW.
	raw := make([][]float64, len(series))
	for i, s := range series {
		raw[i] = append([]float64(nil), s...)
	}
	offset, scale, err := chiaroscuro.Normalize01(series)
	if err != nil {
		log.Fatal(err)
	}

	// Both systems start from the same public, data-independent
	// centroids so the comparison isolates the protocol's noise.
	init := chiaroscuro.LevelInit(k, samples)
	res, err := chiaroscuro.Cluster(series, chiaroscuro.Config{
		K:                k,
		Epsilon:          mustScale(3, 100000, households),
		Iterations:       6,
		Strategy:         "geo-increasing", // spend most budget on the final profiles
		Smoothing:        chiaroscuro.Smoothing{Method: "moving-average", Window: 3},
		InitialCentroids: init,
		Seed:             99,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Compare against the centralized (non-private) baseline the demo
	// GUI shows side by side.
	base, err := chiaroscuro.CentralizedKMeans(series, k, 30, 99, init)
	if err != nil {
		log.Fatal(err)
	}
	ratio, rmse, ari, err := chiaroscuro.CompareToBaseline(res, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quality vs centralized k-means: inertia ratio %.3f, centroid RMSE %.4f, ARI %.3f\n",
		ratio, rmse, ari)

	// Rank profiles by average consumption (denormalized back to kW).
	type profile struct {
		id      int
		members int
		avgKW   float64
	}
	profs := make([]profile, k)
	for j := range profs {
		profs[j].id = j
		var sum float64
		for _, v := range res.Centroids[j] {
			sum += v/scale + offset
		}
		profs[j].avgKW = sum / float64(samples)
	}
	for _, a := range res.Assignments {
		profs[a].members++
	}
	sort.Slice(profs, func(a, b int) bool { return profs[a].avgKW < profs[b].avgKW })

	fmt.Println("\nprofiles by average consumption:")
	for rank, p := range profs {
		marker := ""
		if rank == 0 {
			marker = "  <- low-consumption group"
		}
		fmt.Printf("  profile %d: %3d homes, avg %.2f kW%s\n", p.id, p.members, p.avgKW, marker)
	}

	// How well do the recovered profiles reflect the hidden archetypes?
	archetypeOfProfile := dominantArchetypes(res.Assignments, labels, k)
	fmt.Println("\ndominant true archetype per profile:")
	for j, a := range archetypeOfProfile {
		fmt.Printf("  profile %d ~ %s\n", j, names[a])
	}
}

// dominantArchetypes maps each predicted cluster to its most frequent
// ground-truth archetype.
func dominantArchetypes(assign, labels []int, k int) []int {
	counts := make([]map[int]int, k)
	for j := range counts {
		counts[j] = map[int]int{}
	}
	for i, a := range assign {
		counts[a][labels[i]]++
	}
	out := make([]int, k)
	for j, m := range counts {
		best, bestN := 0, -1
		for l, n := range m {
			if n > bestN {
				best, bestN = l, n
			}
		}
		out[j] = best
	}
	return out
}

// mustScale applies the demo's population-scaling rule for ε (Sec. III.B
// point 4): the simulated population stands in for a larger deployment.
func mustScale(epsTarget float64, targetPop, simPop int) float64 {
	eps, err := chiaroscuro.ScaleEpsilonForPopulation(epsTarget, targetPop, simPop)
	if err != nil {
		log.Fatal(err)
	}
	return eps
}
