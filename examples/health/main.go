// Health: the demonstration's second use case and its interactive finale —
// tumor-growth time-series over twenty weeks are clustered privately, and
// then "Bob", a participant, selects a subsequence of his own series and
// finds the closest published profiles (Fig. 3 panels 4 and 6).
//
//	go run ./examples/health
package main

import (
	"fmt"
	"log"

	"chiaroscuro"
)

func main() {
	const (
		patients = 600
		weeks    = 20
		k        = 4
	)
	series, _, names := chiaroscuro.SyntheticTumorGrowth(patients, weeks, 2016)
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		log.Fatal(err)
	}

	// Bob is participant 17; keep his series for the interactive part.
	bob := append([]float64(nil), series[17]...)

	res, err := chiaroscuro.Cluster(series, chiaroscuro.Config{
		K:          k,
		Epsilon:    mustScale(2, 100000, patients),
		Iterations: 6,
		Smoothing:  chiaroscuro.Smoothing{Method: "exponential", Alpha: 0.5},
		Seed:       4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("built %d tumor-evolution profiles from %d patients (ε=%.1f spent)\n",
		k, patients, res.Privacy.EpsilonSpent)
	fmt.Println("\nprofile shapes (normalized size, weeks 1..20):")
	for j, c := range res.Centroids {
		fmt.Printf("  profile %d: %s\n", j, sparkline(c))
	}
	fmt.Printf("\n(archetypes in the generator: %v)\n", names)

	// --- Fig. 3 panel 4: Bob's closest centroid across iterations -----
	fmt.Println("\nBob's closest profile along the iterations:")
	for _, it := range res.Trace {
		best, _ := nearest(it.Centroids, bob)
		fmt.Printf("  iteration %d (ε_i=%.3f, noise RMSE %.4f): profile %d\n",
			it.Index, it.Epsilon, it.NoiseRMSE, best)
	}

	// --- Fig. 3 panel 6: subsequence search ---------------------------
	// Bob selects weeks 5..11 of his own series and asks which profiles
	// evolve most similarly on any aligned window.
	sub := bob[5:12]
	matches, err := chiaroscuro.FindClosestProfiles(res.Centroids, sub, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nclosest profiles to Bob's weeks 5-11 subsequence:")
	for rank, m := range matches {
		fmt.Printf("  #%d: profile %d (aligned at week %d, distance %.4f)\n",
			rank+1, m.Profile, m.Offset, m.Distance)
	}
	fmt.Println("\nBob can now investigate the trajectories of the groups whose")
	fmt.Println("tumors evolved like his — without anyone having seen his data.")
}

func nearest(centroids [][]float64, s []float64) (int, float64) {
	best, bestSq := 0, -1.0
	for j, c := range centroids {
		var acc float64
		for t := range s {
			d := s[t] - c[t]
			acc += d * d
		}
		if bestSq < 0 || acc < bestSq {
			best, bestSq = j, acc
		}
	}
	return best, bestSq
}

func sparkline(v []float64) string {
	ticks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := v[0], v[0]
	for _, x := range v {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	out := make([]rune, len(v))
	for i, x := range v {
		idx := 0
		if hi > lo {
			idx = int((x - lo) / (hi - lo) * 7.999)
		}
		out[i] = ticks[idx]
	}
	return string(out)
}

// mustScale applies the demo's population-scaling rule for ε (Sec. III.B
// point 4): the simulated population stands in for a larger deployment.
func mustScale(epsTarget float64, targetPop, simPop int) float64 {
	eps, err := chiaroscuro.ScaleEpsilonForPopulation(epsTarget, targetPop, simPop)
	if err != nil {
		log.Fatal(err)
	}
	return eps
}
