// Quickstart: cluster synthetic household electricity series with privacy
// guarantees, in a dozen lines of API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"chiaroscuro"
)

func main() {
	// 500 households, one day of hourly readings each. In a real
	// deployment each series lives on its owner's device; here the slice
	// index plays the participant.
	series, _, _ := chiaroscuro.SyntheticCER(500, 24, 42)

	// The privacy analysis needs a bounded value domain.
	if _, _, err := chiaroscuro.Normalize01(series); err != nil {
		log.Fatal(err)
	}

	// We simulate 500 devices standing in for a 100 000-device
	// deployment at ε=2, so ε is rescaled to keep the noise-to-
	// population ratio of the target (the demo paper's Sec. III.B rule).
	eps, err := chiaroscuro.ScaleEpsilonForPopulation(2.0, 100000, len(series))
	if err != nil {
		log.Fatal(err)
	}
	res, err := chiaroscuro.Cluster(series, chiaroscuro.Config{
		K:          5, // five consumption profiles
		Epsilon:    eps,
		Iterations: 6,
		Seed:       1,
		Smoothing:  chiaroscuro.Smoothing{Method: "moving-average", Window: 3},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clustered %d households into %d profiles\n", len(res.Assignments), len(res.Centroids))
	fmt.Printf("inertia: %.3f   privacy spent: ε=%.2f over %d disclosures (gossip err %.1e)\n",
		res.Inertia, res.Privacy.EpsilonSpent, res.Privacy.Disclosures, res.Privacy.GossipRelErr)
	fmt.Printf("network: %d messages, %.1f MB total, %d cycles\n",
		res.Network.MessagesSent, float64(res.Network.BytesSent)/1e6, res.Network.Cycles)
	fmt.Printf("crypto ops (accounted): %d encrypts, %d adds, %d partial decryptions\n",
		res.Crypto.Encrypts, res.Crypto.Adds, res.Crypto.PartialDecrypts)

	sizes := make([]int, len(res.Centroids))
	for _, a := range res.Assignments {
		sizes[a]++
	}
	for j, c := range res.Centroids {
		fmt.Printf("profile %d (%3d members): first hours %.2f ...\n", j, sizes[j], c[:6])
	}
}
