// Gossipdemo: the distribution substrate in isolation — watch push-sum
// estimates converge to the true average exponentially fast (the premise
// of Sec. II.A), with and without message loss.
//
//	go run ./examples/gossipdemo
package main

import (
	"fmt"
	"log"
	"math/rand"

	"chiaroscuro/internal/gossip"
)

func main() {
	const n = 1000
	rng := rand.New(rand.NewSource(1))
	values := make([][]float64, n)
	var truth float64
	for i := range values {
		values[i] = []float64{rng.Float64() * 100}
		truth += values[i][0]
	}
	truth /= n

	fmt.Printf("%d peers, true average %.4f\n\n", n, truth)
	fmt.Println("rounds   max rel error (no loss)   max rel error (5% loss)")
	clean, err := gossip.SimulatePushSum(values, 30, 0, rand.New(rand.NewSource(2)))
	if err != nil {
		log.Fatal(err)
	}
	lossy, err := gossip.SimulatePushSum(values, 30, 0.05, rand.New(rand.NewSource(2)))
	if err != nil {
		log.Fatal(err)
	}
	for r := 4; r < 30; r += 5 {
		fmt.Printf("%6d   %23.2e   %23.2e\n", r+1, clean.MaxRelErr[r], lossy.MaxRelErr[r])
	}
	fmt.Printf("\nmessages exchanged: %d (clean), %d (lossy)\n", clean.Messages, lossy.Messages)
	fmt.Println("\nerror decays exponentially in the number of exchanges —")
	fmt.Println("this is what lets Chiaroscuro keep gossip rounds ~log(population).")
}
