package gossip

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewStateValidation(t *testing.T) {
	ring := FloatRing{}
	if _, err := NewState[float64](nil, []float64{1}, 1); err == nil {
		t.Fatal("nil ring should error")
	}
	if _, err := NewState[float64](ring, nil, 1); err == nil {
		t.Fatal("empty values should error")
	}
	if _, err := NewState[float64](ring, []float64{1}, -1); err == nil {
		t.Fatal("negative weight should error")
	}
}

func TestEmitHalvesAndConservesMass(t *testing.T) {
	ring := FloatRing{}
	st, err := NewState[float64](ring, []float64{8, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	msg := st.Emit()
	if msg.W != 0.5 || st.Weight() != 0.5 {
		t.Fatalf("weights after emit: msg=%v state=%v", msg.W, st.Weight())
	}
	v := st.Values()
	if v[0] != 4 || v[1] != 2 || msg.V[0] != 4 || msg.V[1] != 2 {
		t.Fatalf("values after emit: state=%v msg=%v", v, msg.V)
	}
}

func TestAbsorbAddsMass(t *testing.T) {
	ring := FloatRing{}
	a, _ := NewState[float64](ring, []float64{1, 2}, 1)
	b, _ := NewState[float64](ring, []float64{3, 4}, 1)
	msg := a.Emit()
	if err := b.Absorb(msg); err != nil {
		t.Fatal(err)
	}
	v := b.Values()
	if v[0] != 3.5 || v[1] != 5 || b.Weight() != 1.5 {
		t.Fatalf("after absorb: v=%v w=%v", v, b.Weight())
	}
}

func TestAbsorbValidation(t *testing.T) {
	ring := FloatRing{}
	st, _ := NewState[float64](ring, []float64{1}, 1)
	if err := st.Absorb(nil); err == nil {
		t.Fatal("nil message should error")
	}
	if err := st.Absorb(&Message[float64]{V: []float64{1, 2}, W: 1}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestValuesReturnsCopy(t *testing.T) {
	ring := FloatRing{}
	st, _ := NewState[float64](ring, []float64{1}, 1)
	v := st.Values()
	v[0] = 99
	if st.Values()[0] == 99 {
		t.Fatal("Values aliases internal state")
	}
}

func TestStateDoesNotAliasInput(t *testing.T) {
	ring := FloatRing{}
	in := []float64{1, 2}
	st, _ := NewState[float64](ring, in, 1)
	in[0] = 42
	if st.Values()[0] == 42 {
		t.Fatal("state aliases caller slice")
	}
}

func TestPairMassConservation(t *testing.T) {
	// state + emitted message == previous state, exactly, for dyadics.
	ring := FloatRing{}
	st, _ := NewState[float64](ring, []float64{5, 3}, 1)
	msg := st.Emit()
	if st.Values()[0]+msg.V[0] != 5 || st.Values()[1]+msg.V[1] != 3 {
		t.Fatal("mass not conserved across emit")
	}
	if st.Weight()+msg.W != 1 {
		t.Fatal("weight not conserved across emit")
	}
}

func TestModRing(t *testing.T) {
	M := big.NewInt(101) // odd
	r, err := NewModRing(M)
	if err != nil {
		t.Fatal(err)
	}
	a := big.NewInt(100)
	b := big.NewInt(2)
	if got := r.Add(a, b); got.Int64() != 1 {
		t.Fatalf("(100+2) mod 101 = %v", got)
	}
	// Halving an even value is plain division.
	if got := r.Halve(big.NewInt(10)); got.Int64() != 5 {
		t.Fatalf("halve(10) = %v", got)
	}
	// Halving an odd value x gives y with 2y ≡ x.
	y := r.Halve(big.NewInt(7))
	two := big.NewInt(2)
	back := new(big.Int).Mul(y, two)
	back.Mod(back, M)
	if back.Int64() != 7 {
		t.Fatalf("2·halve(7) = %v, want 7", back)
	}
	if r.Zero().Sign() != 0 {
		t.Fatal("zero is not zero")
	}
	c := r.Clone(a)
	c.SetInt64(5)
	if a.Int64() != 100 {
		t.Fatal("clone aliases")
	}
}

func TestModRingValidation(t *testing.T) {
	if _, err := NewModRing(nil); err == nil {
		t.Fatal("nil modulus should error")
	}
	if _, err := NewModRing(big.NewInt(100)); err == nil {
		t.Fatal("even modulus should error")
	}
	if _, err := NewModRing(big.NewInt(-3)); err == nil {
		t.Fatal("negative modulus should error")
	}
}

func TestModRingHalveInverseProperty(t *testing.T) {
	M := new(big.Int).Lsh(big.NewInt(1), 61)
	M.Sub(M, big.NewInt(1))
	r, err := NewModRing(M)
	if err != nil {
		t.Fatal(err)
	}
	two := big.NewInt(2)
	f := func(raw int64) bool {
		v := new(big.Int).SetInt64(raw)
		v.Mod(v, M)
		h := r.Halve(v)
		back := new(big.Int).Mul(h, two)
		back.Mod(back, M)
		return back.Cmp(v) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatAndModRingAgreeOnPreScaledGossip(t *testing.T) {
	// The core protocol guarantee: running the same exchange schedule on
	// floats and on pre-scaled ring residues gives the same result.
	M := new(big.Int).Lsh(big.NewInt(1), 80)
	M.Sub(M, big.NewInt(1))
	ring, err := NewModRing(M)
	if err != nil {
		t.Fatal(err)
	}
	const preScale = 12 // enough for the halvings below
	encode := func(x int64) *big.Int {
		return new(big.Int).Lsh(big.NewInt(x), preScale)
	}
	fa, _ := NewState[float64](FloatRing{}, []float64{48}, 1)
	fb, _ := NewState[float64](FloatRing{}, []float64{16}, 1)
	ma, _ := NewState[*big.Int](ring, []*big.Int{encode(48)}, 1)
	mb, _ := NewState[*big.Int](ring, []*big.Int{encode(16)}, 1)

	// A fixed exchange schedule: a->b, b->a, a->b.
	_ = fb.Absorb(fa.Emit())
	_ = mb.Absorb(ma.Emit())
	_ = fa.Absorb(fb.Emit())
	_ = ma.Absorb(mb.Emit())
	_ = fb.Absorb(fa.Emit())
	_ = mb.Absorb(ma.Emit())

	for name, pair := range map[string]struct {
		f *State[float64]
		m *State[*big.Int]
	}{"a": {fa, ma}, "b": {fb, mb}} {
		fEst := pair.f.Values()[0] / pair.f.Weight()
		raw := pair.m.Values()[0]
		mEst := float64(raw.Int64()) / math.Ldexp(1, preScale) / pair.m.Weight()
		if math.Abs(fEst-mEst) > 1e-9 {
			t.Fatalf("%s: float est %v != ring est %v", name, fEst, mEst)
		}
	}
}

func TestUniformPeerExcludesSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		p := uniformPeer(rng, 5, 2)
		if p == 2 || p < 0 || p > 4 {
			t.Fatalf("uniformPeer returned %d", p)
		}
	}
}
