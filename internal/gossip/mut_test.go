package gossip

import (
	"math/big"
	"math/rand"
	"testing"

	"chiaroscuro/internal/vecpool"
)

// testModulus is an odd 320-bit modulus matching the accounted backend's
// plaintext ring width.
func testModulus() *big.Int {
	m := new(big.Int).Lsh(big.NewInt(1), 320)
	return m.Sub(m, big.NewInt(1))
}

// mutStates builds two identical two-node states over ModRing — one
// immutable, one in-place over arena residues — from the same residue
// seeds.
func mutStates(t *testing.T, ring *ModRing, seeds []int64) (plain, mut *State[*big.Int]) {
	t.Helper()
	vals := make([]*big.Int, len(seeds))
	for i, s := range seeds {
		vals[i] = new(big.Int).Mod(big.NewInt(s), ring.M)
	}
	plain, err := NewState[*big.Int](ring, vals, 1)
	if err != nil {
		t.Fatal(err)
	}
	arena, err := vecpool.NewResidueArena(len(seeds), ring.M.BitLen())
	if err != nil {
		t.Fatal(err)
	}
	mvals := make([]*big.Int, len(seeds))
	for i := range seeds {
		mvals[i] = arena.Int(i)
		mvals[i].Set(vals[i])
	}
	mut, err = NewState[*big.Int](ring, mvals, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !mut.SetMutable() {
		t.Fatal("ModRing must support the in-place path")
	}
	return plain, mut
}

// TestMutStateBitIdentical drives an immutable and an in-place state
// through the same randomized emit/absorb/absorb-batch schedule and
// requires identical values and weights at every step — the contract
// that lets internal/core flip the hot path on without disturbing any
// golden trajectory.
func TestMutStateBitIdentical(t *testing.T) {
	ring, err := NewModRing(testModulus())
	if err != nil {
		t.Fatal(err)
	}
	plain, mut := mutStates(t, ring, []int64{123456789, -987654321, 42})
	rng := rand.New(rand.NewSource(7))

	// Prepared reusable buffer for the mutable emitter; the immutable
	// side emits fresh messages.
	arena, err := vecpool.NewResidueArena(len(mut.V), ring.M.BitLen())
	if err != nil {
		t.Fatal(err)
	}
	dst := &Message[*big.Int]{V: make([]*big.Int, len(mut.V))}
	for i := range dst.V {
		dst.V[i] = arena.Int(i)
	}

	check := func(step int) {
		t.Helper()
		if plain.Weight() != mut.Weight() {
			t.Fatalf("step %d: weight %v != %v", step, plain.Weight(), mut.Weight())
		}
		for i := range plain.V {
			if plain.V[i].Cmp(mut.V[i]) != 0 {
				t.Fatalf("step %d coord %d: %v != %v", step, i, plain.V[i], mut.V[i])
			}
		}
	}
	for step := 0; step < 200; step++ {
		switch rng.Intn(3) {
		case 0: // emit
			mp := plain.Emit()
			mm := mut.EmitInto(dst)
			for i := range mp.V {
				if mp.V[i].Cmp(mm.V[i]) != 0 {
					t.Fatalf("step %d: emitted coord %d differs", step, i)
				}
			}
			if mp.W != mm.W {
				t.Fatalf("step %d: emitted weight differs", step)
			}
		case 1: // absorb one message
			m := randomMessage(rng, ring, len(plain.V))
			if err := plain.Absorb(m); err != nil {
				t.Fatal(err)
			}
			if err := mut.Absorb(m); err != nil {
				t.Fatal(err)
			}
		case 2: // absorb a batch
			batch := make([]*Message[*big.Int], 2+rng.Intn(4))
			for j := range batch {
				batch[j] = randomMessage(rng, ring, len(plain.V))
			}
			if err := plain.AbsorbAll(batch); err != nil {
				t.Fatal(err)
			}
			if err := mut.AbsorbAll(batch); err != nil {
				t.Fatal(err)
			}
		}
		check(step)
	}
}

func randomMessage(rng *rand.Rand, ring *ModRing, n int) *Message[*big.Int] {
	v := make([]*big.Int, n)
	for i := range v {
		v[i] = new(big.Int).Rand(rng, ring.M)
	}
	return &Message[*big.Int]{V: v, W: rng.Float64()}
}

// TestMutStateEmitNotAliased pins the anti-aliasing property of the
// in-place emit: the emitted values equal the state's but live in the
// destination's own storage, so later state mutations cannot corrupt an
// in-flight message.
func TestMutStateEmitNotAliased(t *testing.T) {
	ring, err := NewModRing(testModulus())
	if err != nil {
		t.Fatal(err)
	}
	_, mut := mutStates(t, ring, []int64{1 << 40})
	arena, err := vecpool.NewResidueArena(1, ring.M.BitLen())
	if err != nil {
		t.Fatal(err)
	}
	dst := &Message[*big.Int]{V: []*big.Int{arena.Int(0)}}
	m := mut.EmitInto(dst)
	want := new(big.Int).Set(m.V[0])
	mut.Absorb(&Message[*big.Int]{V: []*big.Int{big.NewInt(99)}, W: 0.1})
	if m.V[0].Cmp(want) != 0 {
		t.Fatal("state mutation leaked into the emitted message")
	}
	if mut.V[0].Cmp(want) == 0 {
		t.Fatal("absorb did not mutate the state")
	}
}

// TestMutStateEmitUnpreparedNotAliased covers the fallthrough the
// prepared-buffer fast path skips: Emit (and EmitInto with a wrong-
// length destination) on a mutable state must also hand out values the
// state's later in-place mutations cannot reach — even over a ring
// whose Clone shares (the cipher rings; ModRing's deep Clone would mask
// the bug, so this pins the SetInPlace-copy-back behaviour directly).
func TestMutStateEmitUnpreparedNotAliased(t *testing.T) {
	ring, err := NewModRing(testModulus())
	if err != nil {
		t.Fatal(err)
	}
	_, mut := mutStates(t, ring, []int64{1 << 40, 12345})
	m := mut.Emit() // nil destination: the unprepared path
	want0 := new(big.Int).Set(m.V[0])
	if m.V[0] == mut.V[0] || m.V[1] == mut.V[1] {
		t.Fatal("unprepared emit aliased the message with the state")
	}
	mut.Absorb(&Message[*big.Int]{V: []*big.Int{big.NewInt(3), big.NewInt(4)}, W: 0.1})
	if m.V[0].Cmp(want0) != 0 {
		t.Fatal("in-place absorb leaked into a previously emitted message")
	}
}

// TestMutStateZeroAllocCycle is the package-level allocation contract:
// a warmed emit/absorb cycle on an in-place state allocates nothing.
func TestMutStateZeroAllocCycle(t *testing.T) {
	ring, err := NewModRing(testModulus())
	if err != nil {
		t.Fatal(err)
	}
	_, mut := mutStates(t, ring, []int64{123456789, -42, 7, 1 << 50})
	arena, err := vecpool.NewResidueArena(len(mut.V), ring.M.BitLen())
	if err != nil {
		t.Fatal(err)
	}
	dst := &Message[*big.Int]{V: make([]*big.Int, len(mut.V))}
	for i := range dst.V {
		dst.V[i] = arena.Int(i)
	}
	// A self-absorbing loop: emit into the prepared buffer, absorb it
	// back (batch of 2 exercises the column scratch), forever touching
	// only preallocated storage.
	inArena, err := vecpool.NewResidueArena(len(mut.V), ring.M.BitLen())
	if err != nil {
		t.Fatal(err)
	}
	in := &Message[*big.Int]{V: make([]*big.Int, len(mut.V)), W: 0.25}
	for i := range in.V {
		in.V[i] = inArena.Int(i)
		in.V[i].SetInt64(int64(i + 1))
	}
	batch := []*Message[*big.Int]{in, in}
	cycle := func() {
		mut.EmitInto(dst)
		if err := mut.AbsorbAll(batch); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm the column scratch and arena limb slabs
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("in-place gossip cycle allocates %.1f objects, want 0", allocs)
	}
}
