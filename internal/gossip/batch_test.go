package gossip

import (
	"math/big"
	"math/rand"
	"testing"
)

// TestAbsorbAllMatchesSequentialFloat pins the batched-exchange
// contract on the non-associative float ring: AbsorbAll must reproduce
// one-by-one absorption bit for bit, including the weight fold order.
func TestAbsorbAllMatchesSequentialFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := func() []float64 {
		v := make([]float64, 5)
		for i := range v {
			v[i] = rng.Float64()
		}
		return v
	}
	seq, err := NewState[float64](FloatRing{}, vals(), 1)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := NewState[float64](FloatRing{}, append([]float64(nil), seq.V...), 1)
	if err != nil {
		t.Fatal(err)
	}
	var ms []*Message[float64]
	for k := 0; k < 7; k++ {
		other, _ := NewState[float64](FloatRing{}, vals(), 1)
		ms = append(ms, other.Emit())
	}
	for _, m := range ms {
		if err := seq.Absorb(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := bat.AbsorbAll(ms); err != nil {
		t.Fatal(err)
	}
	if seq.W != bat.W {
		t.Fatalf("weights diverge: %v vs %v", seq.W, bat.W)
	}
	for i := range seq.V {
		if seq.V[i] != bat.V[i] {
			t.Fatalf("coordinate %d diverges: %v vs %v", i, seq.V[i], bat.V[i])
		}
	}
}

// TestAbsorbAllMatchesSequentialMod pins the same contract on the
// modular ring (the accounted backend's arithmetic), where AddAll uses
// the single-accumulator conditional-subtraction fold.
func TestAbsorbAllMatchesSequentialMod(t *testing.T) {
	m := new(big.Int).Lsh(big.NewInt(1), 61)
	m.Sub(m, big.NewInt(1))
	ring, err := NewModRing(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	vals := func() []*big.Int {
		v := make([]*big.Int, 4)
		for i := range v {
			v[i] = new(big.Int).Rand(rng, m)
		}
		return v
	}
	start := vals()
	seq, err := NewState[*big.Int](ring, start, 1)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := NewState[*big.Int](ring, start, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ms []*Message[*big.Int]
	for k := 0; k < 6; k++ {
		other, _ := NewState[*big.Int](ring, vals(), 1)
		ms = append(ms, other.Emit())
	}
	for _, msg := range ms {
		if err := seq.Absorb(msg); err != nil {
			t.Fatal(err)
		}
	}
	if err := bat.AbsorbAll(ms); err != nil {
		t.Fatal(err)
	}
	if seq.W != bat.W {
		t.Fatalf("weights diverge: %v vs %v", seq.W, bat.W)
	}
	for i := range seq.V {
		if seq.V[i].Cmp(bat.V[i]) != 0 {
			t.Fatalf("coordinate %d diverges: %v vs %v", i, seq.V[i], bat.V[i])
		}
	}
}

// TestAbsorbAllValidatesBeforeMutating checks the all-or-nothing
// property: a malformed message anywhere in the batch must leave the
// state untouched.
func TestAbsorbAllValidatesBeforeMutating(t *testing.T) {
	st, err := NewState[float64](FloatRing{}, []float64{1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	good := &Message[float64]{V: []float64{1, 1, 1}, W: 0.5}
	bad := &Message[float64]{V: []float64{1}, W: 0.5}
	if err := st.AbsorbAll([]*Message[float64]{good, bad}); err == nil {
		t.Fatal("dimension mismatch not rejected")
	}
	if st.V[0] != 1 || st.W != 1 {
		t.Fatalf("state mutated by rejected batch: %+v", st)
	}
	if err := st.AbsorbAll([]*Message[float64]{good, nil}); err == nil {
		t.Fatal("nil message not rejected")
	}
	if err := st.AbsorbAll(nil); err != nil {
		t.Fatalf("empty batch should be a no-op, got %v", err)
	}
}

// TestEmitIntoReusesBuffer checks buffer recycling and that EmitInto is
// arithmetically the same as Emit.
func TestEmitIntoReusesBuffer(t *testing.T) {
	a, _ := NewState[float64](FloatRing{}, []float64{8, 4}, 1)
	b, _ := NewState[float64](FloatRing{}, []float64{8, 4}, 1)
	buf := &Message[float64]{V: make([]float64, 0, 2)}
	want := a.Emit()
	got := b.EmitInto(buf)
	if got != buf {
		t.Fatal("EmitInto did not return the provided buffer")
	}
	if got.W != want.W || got.V[0] != want.V[0] || got.V[1] != want.V[1] {
		t.Fatalf("EmitInto diverges from Emit: %+v vs %+v", got, want)
	}
	// Second emission into the same buffer must not allocate a new V.
	prev := &got.V[0]
	got2 := b.EmitInto(buf)
	if &got2.V[0] != prev {
		t.Fatal("EmitInto reallocated a reusable buffer")
	}
	if got2.V[0] != 2 { // 8 -> emitted 4, kept 4 -> emitted 2
		t.Fatalf("second emission value %v, want 2", got2.V[0])
	}
}
