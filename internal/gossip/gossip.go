// Package gossip implements the push-sum gossip aggregation protocol of
// Kempe, Dobra and Gehrke (FOCS 2003), the distribution substrate of
// Chiaroscuro (demo paper, Sec. II.A): lightweight, fully decentralized,
// approximate aggregation by periodical point-to-point exchanges whose
// error converges to zero exponentially fast in the number of exchanges.
//
// Chiaroscuro needs the sum protocol twice per iteration — once over
// additively-homomorphic ciphertexts (the encrypted means) and once for
// the encrypted Laplace noise shares. To serve both, the protocol state is
// generic over a Ring: the value type only needs addition and exact
// halving. Two rings are provided here (float64 and *big.Int residues);
// internal/core adds the Damgård–Jurik ciphertext ring.
//
// # Exact halving over encrypted integers
//
// Halving a ciphertext is the homomorphic scalar multiplication by
// 2^{-1} mod n^s, which is exact ring arithmetic. For the final decrypted
// value to decode back to the intended rational, every plaintext is
// pre-scaled by 2^T before the protocol starts (T = total number of
// halvings a contribution can undergo, i.e. the number of rounds); each
// contribution's coefficient then stays a non-negative integer multiple
// of 2^{T-rounds} and the ring element never wraps into "fake negatives".
// See internal/fixedpoint.PreScale.
package gossip

import (
	"errors"
	"fmt"
	"math/rand"
)

// Ring is the additive structure push-sum requires of its values.
// Implementations must not mutate their arguments.
type Ring[T any] interface {
	// Zero returns the additive identity.
	Zero() T
	// Add returns a + b.
	Add(a, b T) T
	// Halve returns the exact half of a (for modular rings, a·2^{-1}).
	Halve(a T) T
	// Clone returns an independent copy of a.
	Clone(a T) T
}

// BatchRing is an optional Ring extension for batched exchanges: AddAll
// folds a whole column of message values into an accumulator in one
// pass, sparing the intermediate results Add would allocate. The
// arithmetic must be identical to left-folding Add over vs (same
// operand order), so batched and sequential absorbs stay bit-identical.
type BatchRing[T any] interface {
	Ring[T]
	// AddAll returns acc + vs[0] + vs[1] + ..., evaluated left to right,
	// without mutating acc or any element of vs.
	AddAll(acc T, vs []T) T
}

// MutRing is an optional Ring extension for rings whose values are
// mutable handles (e.g. preallocated big.Int residues from
// internal/vecpool): the push-sum state can then run its per-cycle hot
// loops — halve-and-emit, absorb — entirely in place, allocating
// nothing in steady state. Every operation must be value-identical to
// its immutable counterpart (HalveInPlace to Halve, AddInPlace to Add,
// AddAllInPlace to a left fold of Add), so enabling the in-place path
// never changes a trajectory, only its allocation profile.
//
// The path is opt-in per State (see State.SetMutable) because it
// changes the aliasing contract: an in-place state mutates its own
// values, so they must be exclusively owned — never shared with callers
// the way Ring.Clone-style sharing otherwise allows.
type MutRing[T any] interface {
	Ring[T]
	// HalveInPlace replaces a's value with its exact half.
	HalveInPlace(a T)
	// AddInPlace sets acc = acc + v. Only acc is mutated.
	AddInPlace(acc, v T)
	// AddAllInPlace sets acc = acc + vs[0] + vs[1] + ..., evaluated left
	// to right. Only acc is mutated.
	AddAllInPlace(acc T, vs []T)
	// SetInPlace copies src's value into dst, reusing dst's storage.
	SetInPlace(dst, src T)
}

// Message is the half-share a node pushes to a peer: the value vector and
// the accompanying push-sum weight.
type Message[T any] struct {
	V []T
	W float64
}

// State is one node's push-sum accumulator: a vector of ring values plus
// the scalar weight. The running estimate of the network-wide average of
// coordinate j is V[j]/W (decoded by the caller; for ciphertext rings the
// division happens after decryption).
type State[T any] struct {
	ring Ring[T]
	V    []T
	W    float64
	// mut, when non-nil, routes the hot loops through the ring's
	// in-place operations (see SetMutable).
	mut MutRing[T]
	// col is the AbsorbAll column scratch, retained across batches so a
	// steady-state cycle reuses it instead of allocating.
	col []T
}

// NewState initializes a node's state with its own contribution and
// initial weight (1 for averaging; see package doc of internal/core for
// how Chiaroscuro derives cluster means from averages so that the
// population size cancels).
func NewState[T any](ring Ring[T], values []T, weight float64) (*State[T], error) {
	if ring == nil {
		return nil, errors.New("gossip: nil ring")
	}
	if len(values) == 0 {
		return nil, errors.New("gossip: empty value vector")
	}
	if weight < 0 {
		return nil, fmt.Errorf("gossip: negative weight %v", weight)
	}
	v := make([]T, len(values))
	for i := range values {
		v[i] = ring.Clone(values[i])
	}
	return &State[T]{ring: ring, V: v, W: weight}, nil
}

// SetMutable enables the in-place hot path when the ring implements
// MutRing, and reports whether it did. The caller thereby asserts the
// state's values are exclusively owned (NewState's Clone did not share
// them with anyone who will observe later mutations) — internal/core
// arranges this by building each participant's contribution in its own
// arena. Has no effect on rings without MutRing.
func (s *State[T]) SetMutable() bool {
	if mr, ok := s.ring.(MutRing[T]); ok {
		s.mut = mr
		return true
	}
	return false
}

// Emit halves the node's state and returns the outgoing half as a
// message. The remaining half stays in the state. Push-sum's mass
// conservation invariant: state + message = previous state.
func (s *State[T]) Emit() *Message[T] {
	return s.EmitInto(nil)
}

// EmitInto is Emit writing into a caller-owned message, reusing its
// value buffer when the capacity allows (nil behaves like Emit). Reuse
// is only sound once the previous occupant of dst has been absorbed —
// e.g. the synchronous-round pattern of SimulatePushSum, or any schedule
// where a message is consumed before its sender emits again.
//
// On a mutable state (SetMutable) whose dst arrives fully prepared —
// value vector already the state's length, every slot holding a
// caller-owned mutable value — the emission is allocation-free: the
// state's values are halved in place and copied into dst's existing
// storage. The emitted values are then equal to, but never aliased
// with, the state's (each side mutates only its own storage
// afterwards).
func (s *State[T]) EmitInto(dst *Message[T]) *Message[T] {
	if dst == nil {
		dst = &Message[T]{}
	}
	if s.mut != nil {
		if len(dst.V) == len(s.V) {
			dst.W = s.W / 2
			for i := range s.V {
				s.mut.HalveInPlace(s.V[i])
				s.mut.SetInPlace(dst.V[i], s.V[i])
			}
			s.W /= 2
			return dst
		}
		// Unprepared destination on a mutable state: the immutable
		// fallthrough below would be unsound here, because a sharing
		// Clone (the cipher rings') would alias the emitted message
		// with state values that later in-place operations mutate.
		// Instead, halve into a fresh value for the message and copy it
		// back into the state's own storage — allocating, never
		// aliasing, value- and accounting-identical either way.
		if cap(dst.V) >= len(s.V) {
			dst.V = dst.V[:len(s.V)]
		} else {
			dst.V = make([]T, len(s.V))
		}
		dst.W = s.W / 2
		for i := range s.V {
			h := s.ring.Halve(s.V[i])
			s.mut.SetInPlace(s.V[i], h)
			dst.V[i] = h
		}
		s.W /= 2
		return dst
	}
	if cap(dst.V) >= len(s.V) {
		dst.V = dst.V[:len(s.V)]
	} else {
		dst.V = make([]T, len(s.V))
	}
	dst.W = s.W / 2
	for i := range s.V {
		h := s.ring.Halve(s.V[i])
		s.V[i] = h
		dst.V[i] = s.ring.Clone(h)
	}
	s.W /= 2
	return dst
}

// Absorb merges a received message into the state. On a mutable state
// the fold happens in place (the message values are only read).
func (s *State[T]) Absorb(m *Message[T]) error {
	if m == nil {
		return errors.New("gossip: nil message")
	}
	if len(m.V) != len(s.V) {
		return fmt.Errorf("gossip: message dimension %d != state dimension %d", len(m.V), len(s.V))
	}
	if s.mut != nil {
		for i := range s.V {
			s.mut.AddInPlace(s.V[i], m.V[i])
		}
		s.W += m.W
		return nil
	}
	for i := range s.V {
		s.V[i] = s.ring.Add(s.V[i], m.V[i])
	}
	s.W += m.W
	return nil
}

// AbsorbAll merges a batch of received messages in one pass — the
// batched exchange a shard worker performs when several same-iteration
// messages are waiting in a node's inbox. When the ring implements
// BatchRing, each coordinate is folded with a single accumulator
// (allocation-free inner loop); otherwise it falls back to repeated
// Adds. Either way the result is bit-identical to absorbing the
// messages one by one in order, and the whole batch is validated before
// any state is touched (all-or-nothing on malformed input).
func (s *State[T]) AbsorbAll(ms []*Message[T]) error {
	for _, m := range ms {
		if m == nil {
			return errors.New("gossip: nil message")
		}
		if len(m.V) != len(s.V) {
			return fmt.Errorf("gossip: message dimension %d != state dimension %d", len(m.V), len(s.V))
		}
	}
	switch len(ms) {
	case 0:
		return nil
	case 1:
		return s.Absorb(ms[0])
	}
	switch {
	case s.mut != nil:
		col := s.column(ms)
		for i := range s.V {
			for j, m := range ms {
				col[j] = m.V[i]
			}
			s.mut.AddAllInPlace(s.V[i], col)
		}
		s.releaseColumn(col)
	default:
		if br, ok := s.ring.(BatchRing[T]); ok {
			col := s.column(ms)
			for i := range s.V {
				for j, m := range ms {
					col[j] = m.V[i]
				}
				s.V[i] = br.AddAll(s.V[i], col)
			}
			s.releaseColumn(col)
		} else {
			for _, m := range ms {
				for i := range s.V {
					s.V[i] = s.ring.Add(s.V[i], m.V[i])
				}
			}
		}
	}
	for _, m := range ms {
		s.W += m.W
	}
	return nil
}

// ReserveBatch grows the batch scratch to hold n-message columns, so an
// allocation-measurement harness can rule out scratch growth entirely
// (ordinary runs let the scratch converge to its working capacity).
func (s *State[T]) ReserveBatch(n int) {
	if cap(s.col) < n {
		s.col = make([]T, 0, n)
	}
}

// column hands out the batch scratch sized for ms, reusing the retained
// buffer when its capacity allows (a steady-state cycle then performs no
// scratch allocation at all).
func (s *State[T]) column(ms []*Message[T]) []T {
	if cap(s.col) >= len(ms) {
		return s.col[:len(ms)]
	}
	s.col = make([]T, len(ms))
	return s.col
}

// releaseColumn zeroes the scratch's value references so the retained
// buffer does not pin absorbed message values until the next batch.
func (s *State[T]) releaseColumn(col []T) {
	var zero T
	for i := range col {
		col[i] = zero
	}
}

// Weight returns the current push-sum weight.
func (s *State[T]) Weight() float64 { return s.W }

// Values returns a copy of the current value vector.
func (s *State[T]) Values() []T {
	out := make([]T, len(s.V))
	for i := range s.V {
		out[i] = s.ring.Clone(s.V[i])
	}
	return out
}

// FloatRing is the cleartext ring over float64, used by the baseline
// simulations and by the accounted (non-encrypted) cipher backend.
type FloatRing struct{}

// Zero implements Ring.
func (FloatRing) Zero() float64 { return 0 }

// Add implements Ring.
func (FloatRing) Add(a, b float64) float64 { return a + b }

// Halve implements Ring.
func (FloatRing) Halve(a float64) float64 { return a / 2 }

// Clone implements Ring.
func (FloatRing) Clone(a float64) float64 { return a }

// AddAll implements BatchRing. Float addition is not associative, so the
// left-to-right order is load-bearing for bit-identity with sequential
// absorbs.
func (FloatRing) AddAll(acc float64, vs []float64) float64 {
	for _, v := range vs {
		acc += v
	}
	return acc
}

var _ BatchRing[float64] = FloatRing{}

// uniformPeer draws a random peer for node i among n nodes, excluding i.
func uniformPeer(rng *rand.Rand, n, i int) int {
	j := rng.Intn(n - 1)
	if j >= i {
		j++
	}
	return j
}
