package gossip

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/rand"
)

// SimResult captures a standalone push-sum simulation: the per-round
// worst-case relative estimation error (the quantity whose exponential
// decay the paper's Sec. II.A invokes) and the final per-node estimates.
type SimResult struct {
	// MaxRelErr[r] is the maximum over nodes of the relative L2 error of
	// the node's average estimate after round r+1.
	MaxRelErr []float64
	// MeanRelErr[r] is the mean over nodes of the same quantity.
	MeanRelErr []float64
	// Estimates[i] is node i's final estimate of the coordinate-wise
	// network average.
	Estimates [][]float64
	// Messages is the total number of point-to-point messages exchanged.
	Messages int
}

// SimulatePushSum runs synchronous push-sum averaging over the given
// per-node value vectors for the given number of rounds: in each round
// every alive node halves its state and pushes one half to a uniformly
// random peer. failProb is the per-node-per-round probability that a
// node's outgoing message is lost (models crashed/unreachable peers; the
// mass it carried is lost, which is exactly the distortion the paper's
// probabilistic-DP analysis must absorb). Deterministic given rng.
func SimulatePushSum(values [][]float64, rounds int, failProb float64, rng *rand.Rand) (*SimResult, error) {
	n := len(values)
	if n < 2 {
		return nil, errors.New("gossip: need at least 2 nodes")
	}
	if rounds < 1 {
		return nil, fmt.Errorf("gossip: rounds %d < 1", rounds)
	}
	if failProb < 0 || failProb > 1 {
		return nil, fmt.Errorf("gossip: failure probability %v outside [0,1]", failProb)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	dim := len(values[0])
	truth := make([]float64, dim)
	states := make([]*State[float64], n)
	ring := FloatRing{}
	for i, v := range values {
		if len(v) != dim {
			return nil, fmt.Errorf("gossip: node %d dimension %d != %d", i, len(v), dim)
		}
		st, err := NewState[float64](ring, v, 1)
		if err != nil {
			return nil, err
		}
		states[i] = st
		for j, x := range v {
			truth[j] += x
		}
	}
	for j := range truth {
		truth[j] /= float64(n)
	}
	truthNorm := l2norm(truth)

	res := &SimResult{}
	// Per-node reusable message buffers: within a synchronous round every
	// emitted message is absorbed (or lost) before its sender emits
	// again, so EmitInto can recycle the buffers across rounds and the
	// round loop performs no per-message allocations.
	bufs := make([]*Message[float64], n)
	type send struct {
		to  int
		msg *Message[float64]
	}
	sends := make([]send, 0, n)
	for r := 0; r < rounds; r++ {
		// Synchronous round: all sends computed first, then delivered.
		sends = sends[:0]
		for i := 0; i < n; i++ {
			msg := states[i].EmitInto(bufs[i])
			bufs[i] = msg
			if rng.Float64() < failProb {
				continue // message (and its mass) lost
			}
			sends = append(sends, send{to: uniformPeer(rng, n, i), msg: msg})
		}
		for _, s := range sends {
			if err := states[s.to].Absorb(s.msg); err != nil {
				return nil, err
			}
			res.Messages++
		}
		maxErr, sumErr := 0.0, 0.0
		for i := 0; i < n; i++ {
			e := relErr(states[i], truth, truthNorm)
			if e > maxErr {
				maxErr = e
			}
			sumErr += e
		}
		res.MaxRelErr = append(res.MaxRelErr, maxErr)
		res.MeanRelErr = append(res.MeanRelErr, sumErr/float64(n))
	}
	res.Estimates = make([][]float64, n)
	for i := 0; i < n; i++ {
		res.Estimates[i] = estimate(states[i])
	}
	return res, nil
}

func estimate(s *State[float64]) []float64 {
	out := make([]float64, len(s.V))
	if s.W == 0 {
		return out
	}
	for j, v := range s.V {
		out[j] = v / s.W
	}
	return out
}

func relErr(s *State[float64], truth []float64, truthNorm float64) float64 {
	est := estimate(s)
	var acc float64
	for j := range truth {
		d := est[j] - truth[j]
		acc += d * d
	}
	if truthNorm == 0 {
		return math.Sqrt(acc)
	}
	return math.Sqrt(acc) / truthNorm
}

func l2norm(v []float64) float64 {
	var acc float64
	for _, x := range v {
		acc += x * x
	}
	return math.Sqrt(acc)
}

// ModRing is the ring of residues mod M with exact halving by 2^{-1}
// mod M (M must be odd). It is the plaintext-space mirror of the
// ciphertext ring and backs the accounted (crypto-disabled) backend so
// that both backends execute bit-identical gossip arithmetic.
type ModRing struct {
	M    *big.Int
	inv2 *big.Int
}

// NewModRing builds a ModRing for odd modulus M.
func NewModRing(M *big.Int) (*ModRing, error) {
	if M == nil || M.Sign() <= 0 || M.Bit(0) == 0 {
		return nil, errors.New("gossip: modulus must be positive and odd")
	}
	inv2 := new(big.Int).ModInverse(big.NewInt(2), M)
	if inv2 == nil {
		return nil, errors.New("gossip: 2 not invertible mod M")
	}
	return &ModRing{M: new(big.Int).Set(M), inv2: inv2}, nil
}

// Zero implements Ring.
func (r *ModRing) Zero() *big.Int { return new(big.Int) }

// Add implements Ring.
func (r *ModRing) Add(a, b *big.Int) *big.Int {
	out := new(big.Int).Add(a, b)
	return out.Mod(out, r.M)
}

// Halve implements Ring: multiplication by 2^{-1} mod M, computed in its
// division-free form (even residues shift right; odd residues become
// (a+M)/2, exact because M is odd).
func (r *ModRing) Halve(a *big.Int) *big.Int {
	out := new(big.Int)
	if a.Bit(0) == 0 {
		return out.Rsh(a, 1)
	}
	out.Add(a, r.M)
	return out.Rsh(out, 1)
}

// Clone implements Ring.
func (r *ModRing) Clone(a *big.Int) *big.Int { return new(big.Int).Set(a) }

// AddAll implements BatchRing with a single accumulator: operands are
// reduced residues, so each step needs only a conditional subtraction,
// and the whole fold allocates one big.Int instead of one per addend.
func (r *ModRing) AddAll(acc *big.Int, vs []*big.Int) *big.Int {
	out := new(big.Int).Set(acc)
	for _, v := range vs {
		out.Add(out, v)
		if out.Cmp(r.M) >= 0 {
			out.Sub(out, r.M)
		}
	}
	return out
}

// HalveInPlace implements MutRing: the same division-free halving as
// Halve, written into a's own storage.
func (r *ModRing) HalveInPlace(a *big.Int) {
	if a.Bit(0) != 0 {
		a.Add(a, r.M)
	}
	a.Rsh(a, 1)
}

// AddInPlace implements MutRing. Operands must be reduced residues (the
// State invariant), so the conditional subtraction is value-identical
// to Add's full reduction.
func (r *ModRing) AddInPlace(acc, v *big.Int) {
	acc.Add(acc, v)
	if acc.Cmp(r.M) >= 0 {
		acc.Sub(acc, r.M)
	}
}

// AddAllInPlace implements MutRing: AddAll folded into acc's storage.
func (r *ModRing) AddAllInPlace(acc *big.Int, vs []*big.Int) {
	for _, v := range vs {
		acc.Add(acc, v)
		if acc.Cmp(r.M) >= 0 {
			acc.Sub(acc, r.M)
		}
	}
}

// SetInPlace implements MutRing.
func (r *ModRing) SetInPlace(dst, src *big.Int) { dst.Set(src) }

var (
	_ BatchRing[*big.Int] = (*ModRing)(nil)
	_ MutRing[*big.Int]   = (*ModRing)(nil)
)
