package gossip

import (
	"math"
	"math/rand"
	"testing"
)

func randomValues(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.Float64() * 10
		}
		out[i] = v
	}
	return out
}

func TestSimulatePushSumConvergesToAverage(t *testing.T) {
	values := randomValues(100, 3, 1)
	truth := make([]float64, 3)
	for _, v := range values {
		for j, x := range v {
			truth[j] += x
		}
	}
	for j := range truth {
		truth[j] /= float64(len(values))
	}
	res, err := SimulatePushSum(values, 40, 0, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	finalErr := res.MaxRelErr[len(res.MaxRelErr)-1]
	if finalErr > 1e-4 {
		t.Fatalf("final max relative error = %v", finalErr)
	}
	for i, est := range res.Estimates {
		for j := range truth {
			if math.Abs(est[j]-truth[j]) > 1e-3 {
				t.Fatalf("node %d estimate[%d] = %v, want %v", i, j, est[j], truth[j])
			}
		}
	}
}

func TestSimulatePushSumErrorDecaysExponentially(t *testing.T) {
	// The paper's Sec. II.A premise: error converges to zero
	// exponentially fast in the number of exchanges. Check that the mean
	// error drops by at least ~100x between round 10 and round 40.
	values := randomValues(200, 2, 7)
	res, err := SimulatePushSum(values, 40, 0, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	e10, e40 := res.MeanRelErr[9], res.MeanRelErr[39]
	if e40 >= e10/100 {
		t.Fatalf("error not decaying exponentially: round10=%v round40=%v", e10, e40)
	}
	// And weakly decreasing overall trend: final < first.
	if res.MeanRelErr[39] >= res.MeanRelErr[0] {
		t.Fatalf("error increased: %v -> %v", res.MeanRelErr[0], res.MeanRelErr[39])
	}
}

func TestSimulatePushSumMessagesCount(t *testing.T) {
	values := randomValues(50, 1, 5)
	res, err := SimulatePushSum(values, 10, 0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 50*10 {
		t.Fatalf("messages = %d, want 500", res.Messages)
	}
}

func TestSimulatePushSumWithFailuresStillUsable(t *testing.T) {
	values := randomValues(100, 2, 11)
	clean, err := SimulatePushSum(values, 30, 0, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := SimulatePushSum(values, 30, 0.10, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Messages >= clean.Messages {
		t.Fatalf("failures should drop messages: %d vs %d", lossy.Messages, clean.Messages)
	}
	// Estimates remain close to the truth despite 10% loss: push-sum
	// estimates are self-normalizing weighted averages.
	finalErr := lossy.MaxRelErr[len(lossy.MaxRelErr)-1]
	if finalErr > 0.05 {
		t.Fatalf("10%% loss error = %v, want < 5%%", finalErr)
	}
}

func TestSimulatePushSumValidation(t *testing.T) {
	if _, err := SimulatePushSum([][]float64{{1}}, 5, 0, nil); err == nil {
		t.Fatal("single node should error")
	}
	if _, err := SimulatePushSum(randomValues(5, 1, 1), 0, 0, nil); err == nil {
		t.Fatal("zero rounds should error")
	}
	if _, err := SimulatePushSum(randomValues(5, 1, 1), 5, 1.5, nil); err == nil {
		t.Fatal("failProb > 1 should error")
	}
	bad := [][]float64{{1, 2}, {3}}
	if _, err := SimulatePushSum(bad, 5, 0, nil); err == nil {
		t.Fatal("ragged input should error")
	}
}

func TestSimulatePushSumDeterministic(t *testing.T) {
	values := randomValues(30, 2, 9)
	a, _ := SimulatePushSum(values, 15, 0.05, rand.New(rand.NewSource(8)))
	b, _ := SimulatePushSum(values, 15, 0.05, rand.New(rand.NewSource(8)))
	for i := range a.MaxRelErr {
		if a.MaxRelErr[i] != b.MaxRelErr[i] {
			t.Fatalf("round %d differs: %v vs %v", i, a.MaxRelErr[i], b.MaxRelErr[i])
		}
	}
}

func TestSimulatePushSumNilRNGDefaults(t *testing.T) {
	if _, err := SimulatePushSum(randomValues(10, 1, 2), 5, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMoreRoundsNeverWorse(t *testing.T) {
	// Weak monotonicity: error after 2x rounds must be <= error after x
	// rounds (same seed, prefix property of the simulation).
	values := randomValues(80, 2, 13)
	res, err := SimulatePushSum(values, 40, 0, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxRelErr[39] > res.MaxRelErr[19] {
		t.Fatalf("error grew with rounds: %v -> %v", res.MaxRelErr[19], res.MaxRelErr[39])
	}
}
