package fixedpoint

import (
	"errors"
	"fmt"
	"math/big"
)

// SlotLayout packs several fixed-point coordinates into one plaintext of
// the additively-homomorphic ring, the batching lever of homomorphically
// outsourced clustering: every homomorphic operation on a packed
// plaintext acts on all of its slots at once, so encrypts, halvings,
// partial decryptions and wire bytes all shrink by the packing factor.
//
// Layout. A plaintext of plainBits usable bits is split into
// slots = ⌊plainBits/slotBits⌋ fields of slotBits bits each; coordinate j
// of a group occupies bits [j·slotBits, (j+1)·slotBits). Slot widths are
// sized by the caller from the protocol's headroom budget:
//
//	slotBits = magBits + 1 + headBits
//
// where 2^magBits strictly bounds the magnitude of one contribution's
// signed scaled value and headBits is the aggregation headroom (population
// bits plus guard bits) that keeps slot-wise sums from carrying into the
// neighbouring slot.
//
// Signs. The ring has no negative numbers and a packed field cannot use
// the residue-above-M/2 convention (only the top slot would see it), so
// every slot stores v + bias with bias = 2^magBits > |v|: a non-negative
// field whatever the sign of v. Bias bookkeeping under aggregation is
// exact — a push-sum state holds Σᵢ cᵢ·(vᵢ + bias) per slot, where the
// dyadic coefficients cᵢ sum to the state's weight w, so the decoder
// subtracts bias·w (an exact integer whenever the weight's dyadic
// denominator divides the bias; see Unbias).
//
// Halving exactness. The gossip primitive multiplies by 2⁻¹ mod M, which
// only equals integer halving when the true value is even. A slot's
// per-contribution value is v + bias where v carries ≥ PreScaleBits
// factors of two (the fixedpoint.PreScale contract) and bias = 2^magBits
// with magBits ≥ PreScaleBits, so every slot — and hence the whole packed
// integer — stays even for the full pre-scale budget, and the existing
// Halve is exact and slot-aligned with no crypto-layer changes.
type SlotLayout struct {
	slotBits uint
	magBits  uint
	slots    int
	bias     *big.Int // 2^magBits
	mask     *big.Int // 2^slotBits - 1
	limit    *big.Int // 2^(slots·slotBits): packed values must stay below
}

// ErrSlotOverflow is returned when a value does not fit its slot budget:
// a coordinate at/above the bias on Pack, or a packed plaintext that has
// carried beyond the top slot on Unpack.
var ErrSlotOverflow = errors.New("fixedpoint: slot overflow")

// NewSlotLayout builds a packing of plaintexts with plainBits usable
// bits into slots of magBits magnitude bits (bias = 2^magBits) plus one
// sign-bias bit plus headBits of aggregation headroom. It fails when not
// even one slot fits.
func NewSlotLayout(plainBits int, magBits, headBits uint) (*SlotLayout, error) {
	if plainBits < 1 {
		return nil, fmt.Errorf("fixedpoint: plaintext capacity %d bits", plainBits)
	}
	slotBits := magBits + 1 + headBits
	slots := plainBits / int(slotBits)
	if slots < 1 {
		return nil, fmt.Errorf("fixedpoint: plaintext of %d bits cannot fit one %d-bit slot (magnitude %d + sign 1 + headroom %d)",
			plainBits, slotBits, magBits, headBits)
	}
	one := big.NewInt(1)
	return &SlotLayout{
		slotBits: slotBits,
		magBits:  magBits,
		slots:    slots,
		bias:     new(big.Int).Lsh(one, magBits),
		mask:     new(big.Int).Sub(new(big.Int).Lsh(one, slotBits), one),
		limit:    new(big.Int).Lsh(one, uint(slots)*slotBits),
	}, nil
}

// Slots reports how many coordinates fit one plaintext.
func (l *SlotLayout) Slots() int { return l.slots }

// SlotBits reports the width of one slot.
func (l *SlotLayout) SlotBits() uint { return l.slotBits }

// Bias returns the per-slot sign bias 2^magBits (a fresh copy).
func (l *SlotLayout) Bias() *big.Int { return new(big.Int).Set(l.bias) }

// Groups reports how many packed plaintexts carry coords coordinates:
// ⌈coords/slots⌉.
func (l *SlotLayout) Groups(coords int) int {
	return (coords + l.slots - 1) / l.slots
}

// Pack maps per-coordinate signed scaled integers into packed plaintexts:
// plaintext g holds vs[g·slots+j] + bias in slot j. Each |v| must be
// strictly below the bias (overflow accounting: a violation means the
// caller's magnitude budget was wrong, not a recoverable input). Slots
// beyond len(vs) in the last group are zero — they never held a bias and
// decode must not read them.
func (l *SlotLayout) Pack(vs []*big.Int) ([]*big.Int, error) {
	if len(vs) == 0 {
		return nil, nil
	}
	out := make([]*big.Int, l.Groups(len(vs)))
	field := new(big.Int)
	for g := range out {
		packed := new(big.Int)
		lo := g * l.slots
		hi := lo + l.slots
		if hi > len(vs) {
			hi = len(vs)
		}
		for j, v := range vs[lo:hi] {
			if v == nil {
				return nil, fmt.Errorf("fixedpoint: nil coordinate %d", lo+j)
			}
			if v.CmpAbs(l.bias) >= 0 {
				return nil, fmt.Errorf("%w: |coordinate %d| >= 2^%d", ErrSlotOverflow, lo+j, l.magBits)
			}
			field.Add(v, l.bias)
			field.Lsh(field, uint(j)*l.slotBits)
			packed.Add(packed, field)
		}
		out[g] = packed
	}
	return out, nil
}

// Unpack splits packed plaintexts back into coords raw slot fields, bias
// still included (the aggregated bias is weight-dependent; see Unbias).
// It fails when a plaintext has overflowed past its top slot — the only
// carry the layout can detect; carries between interior slots are caught
// by the caller's plausibility bound on the decoded values.
func (l *SlotLayout) Unpack(packed []*big.Int, coords int) ([]*big.Int, error) {
	if need := l.Groups(coords); len(packed) != need {
		return nil, fmt.Errorf("fixedpoint: %d packed plaintexts for %d coordinates, want %d", len(packed), coords, need)
	}
	out := make([]*big.Int, coords)
	for g, p := range packed {
		if p == nil || p.Sign() < 0 {
			return nil, fmt.Errorf("fixedpoint: invalid packed plaintext %d", g)
		}
		if p.Cmp(l.limit) >= 0 {
			return nil, fmt.Errorf("%w: packed plaintext %d beyond %d slots", ErrSlotOverflow, g, l.slots)
		}
		lo := g * l.slots
		for j := 0; lo+j < coords && j < l.slots; j++ {
			f := new(big.Int).Rsh(p, uint(j)*l.slotBits)
			out[lo+j] = f.And(f, l.mask)
		}
	}
	return out, nil
}

// Unbias removes the aggregated sign bias from a raw slot field: the slot
// holds trueSum + bias·biasWeight, where biasWeight is the sum of the
// dyadic push-sum coefficients of every biased contribution folded into
// the slot (the state's weight, times the number of biased vectors added
// slot-wise — e.g. 2 after the means+noise addition). The product
// bias·biasWeight is computed exactly over rationals; a non-integer
// product means a contribution was halved more often than the bias has
// factors of two — the same budget breach the pre-scale contract guards
// against — and is reported as an error rather than rounded.
func (l *SlotLayout) Unbias(raw *big.Int, biasWeight float64) (*big.Int, error) {
	if raw == nil || raw.Sign() < 0 {
		return nil, errors.New("fixedpoint: invalid raw slot field")
	}
	r := new(big.Rat).SetFloat64(biasWeight)
	if r == nil || r.Sign() < 0 {
		return nil, fmt.Errorf("fixedpoint: invalid bias weight %v", biasWeight)
	}
	r.Mul(r, new(big.Rat).SetInt(l.bias))
	if !r.IsInt() {
		return nil, fmt.Errorf("fixedpoint: bias weight %v exceeds the bias' halving budget", biasWeight)
	}
	return new(big.Int).Sub(raw, r.Num()), nil
}
