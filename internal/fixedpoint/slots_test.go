package fixedpoint

import (
	"math/big"
	"math/rand"
	"testing"
)

func mustLayout(t *testing.T, plainBits int, magBits, headBits uint) *SlotLayout {
	t.Helper()
	l, err := NewSlotLayout(plainBits, magBits, headBits)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestSlotLayoutGeometry(t *testing.T) {
	l := mustLayout(t, 320, 40, 9) // slotBits = 50
	if l.SlotBits() != 50 {
		t.Fatalf("slotBits = %d, want 50", l.SlotBits())
	}
	if l.Slots() != 6 {
		t.Fatalf("slots = %d, want 6", l.Slots())
	}
	for _, tc := range []struct{ coords, groups int }{
		{1, 1}, {6, 1}, {7, 2}, {12, 2}, {13, 3},
	} {
		if g := l.Groups(tc.coords); g != tc.groups {
			t.Fatalf("Groups(%d) = %d, want %d", tc.coords, g, tc.groups)
		}
	}
	if _, err := NewSlotLayout(40, 40, 9); err == nil {
		t.Fatal("plaintext smaller than one slot must fail")
	}
	if _, err := NewSlotLayout(0, 4, 2); err == nil {
		t.Fatal("zero plaintext capacity must fail")
	}
}

// TestSlotPackUnpackRoundTrip packs signed values across the sign and
// magnitude edges and checks Unpack+Unbias(1) recovers them exactly.
func TestSlotPackUnpackRoundTrip(t *testing.T) {
	l := mustLayout(t, 512, 32, 8)
	bias := l.Bias()
	edge := new(big.Int).Sub(bias, big.NewInt(1))
	vs := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(-1),
		new(big.Int).Set(edge),
		new(big.Int).Neg(edge),
		big.NewInt(123456789),
		big.NewInt(-987654321),
	}
	packed, err := l.Pack(vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) != l.Groups(len(vs)) {
		t.Fatalf("%d groups, want %d", len(packed), l.Groups(len(vs)))
	}
	raw, err := l.Unpack(packed, len(vs))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range raw {
		got, err := l.Unbias(r, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(vs[i]) != 0 {
			t.Fatalf("coordinate %d: %s, want %s", i, got, vs[i])
		}
	}
}

// TestSlotPackRandomized is the property test: random signed vectors of
// random lengths round-trip through Pack/Unpack/Unbias, and slot-wise
// sums of packed vectors equal the pack of the sums (the additive
// homomorphism packing must preserve).
func TestSlotPackRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := mustLayout(t, 1023, 48, 12)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(3*l.Slots())
		vs := make([]*big.Int, n)
		sum := make([]*big.Int, n)
		adds := 1 + rng.Intn(4)
		acc := make([]*big.Int, l.Groups(n))
		for a := range acc {
			acc[a] = new(big.Int)
		}
		for rep := 0; rep < adds; rep++ {
			for i := range vs {
				v := new(big.Int).Rand(rng, l.Bias())
				if rng.Intn(2) == 0 {
					v.Neg(v)
				}
				vs[i] = v
				if rep == 0 {
					sum[i] = new(big.Int).Set(v)
				} else {
					sum[i].Add(sum[i], v)
				}
			}
			packed, err := l.Pack(vs)
			if err != nil {
				t.Fatal(err)
			}
			for g := range packed {
				acc[g].Add(acc[g], packed[g])
			}
		}
		raw, err := l.Unpack(acc, n)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range raw {
			got, err := l.Unbias(r, float64(adds))
			if err != nil {
				t.Fatal(err)
			}
			if got.Cmp(sum[i]) != 0 {
				t.Fatalf("trial %d coordinate %d: %s, want %s", trial, i, got, sum[i])
			}
		}
	}
}

// TestSlotHalvingExactness checks the core contract: values carrying
// preScale factors of two stay slot-aligned under up to preScale integer
// halvings of the whole packed plaintext, and Unbias with the halved
// weight recovers the halved values — the reason gossip's ×2⁻¹ needs no
// crypto-layer change for packed ciphertexts.
func TestSlotHalvingExactness(t *testing.T) {
	const preScale = 12
	l := mustLayout(t, 640, 40, 10)
	rng := rand.New(rand.NewSource(7))
	max := big.NewInt(1 << 20)
	vs := make([]*big.Int, l.Slots()+2)
	for i := range vs {
		v := new(big.Int).Rand(rng, max)
		if i%2 == 1 {
			v.Neg(v)
		}
		vs[i] = v.Lsh(v, preScale) // the PreScale contract
	}
	packed, err := l.Pack(vs)
	if err != nil {
		t.Fatal(err)
	}
	weight := 1.0
	for round := 1; round <= preScale; round++ {
		for g := range packed {
			if packed[g].Bit(0) != 0 {
				t.Fatalf("round %d: packed plaintext %d odd — halving would wrap", round, g)
			}
			packed[g].Rsh(packed[g], 1) // what ×2⁻¹ mod M does to an even value
		}
		weight /= 2
		raw, err := l.Unpack(packed, len(vs))
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range raw {
			got, err := l.Unbias(r, weight)
			if err != nil {
				t.Fatal(err)
			}
			want := new(big.Int).Rsh(vs[i], uint(round))
			if got.Cmp(want) != 0 {
				t.Fatalf("round %d coordinate %d: %s, want %s", round, i, got, want)
			}
		}
	}
}

func TestSlotOverflowAccounting(t *testing.T) {
	l := mustLayout(t, 256, 16, 6)

	// Pack rejects magnitudes at the bias.
	if _, err := l.Pack([]*big.Int{l.Bias()}); err == nil {
		t.Fatal("Pack must reject |v| >= bias")
	}
	if _, err := l.Pack([]*big.Int{new(big.Int).Neg(l.Bias())}); err == nil {
		t.Fatal("Pack must reject |v| >= bias (negative)")
	}
	if _, err := l.Pack([]*big.Int{nil}); err == nil {
		t.Fatal("Pack must reject nil coordinates")
	}

	// Unpack rejects group-count mismatches and top-slot overflow.
	if _, err := l.Unpack([]*big.Int{big.NewInt(1)}, 2*l.Slots()); err == nil {
		t.Fatal("Unpack must reject a group-count mismatch")
	}
	over := new(big.Int).Lsh(big.NewInt(1), uint(l.Slots())*l.SlotBits())
	if _, err := l.Unpack([]*big.Int{over}, 1); err == nil {
		t.Fatal("Unpack must reject values past the top slot")
	}
	if _, err := l.Unpack([]*big.Int{big.NewInt(-1)}, 1); err == nil {
		t.Fatal("Unpack must reject negative plaintexts")
	}

	// Unbias rejects weights whose dyadic denominator exceeds the bias'
	// halving budget, and invalid fields.
	tiny := 1.0
	for i := 0; i < 20; i++ { // 2^-20 < 2^-16 = 1/bias
		tiny /= 2
	}
	if _, err := l.Unbias(big.NewInt(1), tiny); err == nil {
		t.Fatal("Unbias must reject weights beyond the bias' factors of two")
	}
	if _, err := l.Unbias(nil, 1); err == nil {
		t.Fatal("Unbias must reject nil fields")
	}
	if _, err := l.Unbias(big.NewInt(1), -0.5); err == nil {
		t.Fatal("Unbias must reject negative weights")
	}

	// Empty input packs to nothing.
	if out, err := l.Pack(nil); err != nil || out != nil {
		t.Fatalf("Pack(nil) = %v, %v", out, err)
	}
}
