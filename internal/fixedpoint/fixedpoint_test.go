package fixedpoint

import (
	"errors"
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(129); err == nil {
		t.Fatal("fracBits > 128 should error")
	}
	if c, err := New(0); err != nil || c.FracBits() != 0 {
		t.Fatalf("fracBits 0 should be allowed: %v", err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(200) should panic")
		}
	}()
	MustNew(200)
}

func TestEncodeDecodeExactValues(t *testing.T) {
	c := MustNew(16)
	for _, x := range []float64{0, 1, -1, 0.5, -0.25, 1234.0625} {
		v, err := c.Encode(x)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Decode(v); got != x {
			t.Fatalf("roundtrip(%v) = %v", x, got)
		}
	}
}

func TestEncodeRejectsNonFinite(t *testing.T) {
	c := MustNew(8)
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := c.Encode(x); !errors.Is(err, ErrNotFinite) {
			t.Fatalf("Encode(%v): err = %v", x, err)
		}
	}
}

func TestRoundTripPrecisionProperty(t *testing.T) {
	c := MustNew(30)
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			return true
		}
		v, err := c.Encode(x)
		if err != nil {
			return false
		}
		back := c.Decode(v)
		return math.Abs(back-x) <= math.Ldexp(1, -30)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeAdditivityProperty(t *testing.T) {
	// encode(a) + encode(b) decodes to ~(a+b): the property the
	// homomorphic aggregation relies on.
	c := MustNew(24)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		a := rng.NormFloat64() * 100
		b := rng.NormFloat64() * 100
		va, _ := c.Encode(a)
		vb, _ := c.Encode(b)
		sum := new(big.Int).Add(va, vb)
		if got := c.Decode(sum); math.Abs(got-(a+b)) > math.Ldexp(2, -24) {
			t.Fatalf("decode(enc(%v)+enc(%v)) = %v", a, b, got)
		}
	}
}

func TestWrapUnwrapSigned(t *testing.T) {
	M := big.NewInt(1000)
	for _, v := range []int64{0, 1, -1, 499, -499} {
		w, err := WrapSigned(big.NewInt(v), M)
		if err != nil {
			t.Fatalf("wrap(%d): %v", v, err)
		}
		if w.Sign() < 0 || w.Cmp(M) >= 0 {
			t.Fatalf("wrap(%d) = %v not reduced", v, w)
		}
		u, err := UnwrapSigned(w, M)
		if err != nil {
			t.Fatal(err)
		}
		if u.Int64() != v {
			t.Fatalf("unwrap(wrap(%d)) = %v", v, u)
		}
	}
}

func TestWrapSignedOverflow(t *testing.T) {
	M := big.NewInt(1000)
	if _, err := WrapSigned(big.NewInt(500), M); !errors.Is(err, ErrOverflow) {
		t.Fatalf("wrap(M/2): err = %v", err)
	}
	if _, err := WrapSigned(big.NewInt(-500), M); !errors.Is(err, ErrOverflow) {
		t.Fatalf("wrap(-M/2): err = %v", err)
	}
	if _, err := WrapSigned(big.NewInt(1), big.NewInt(-5)); err == nil {
		t.Fatal("negative modulus should error")
	}
}

func TestUnwrapSignedValidation(t *testing.T) {
	M := big.NewInt(1000)
	if _, err := UnwrapSigned(big.NewInt(-1), M); err == nil {
		t.Fatal("negative residue should error")
	}
	if _, err := UnwrapSigned(big.NewInt(1000), M); err == nil {
		t.Fatal("residue >= M should error")
	}
	if _, err := UnwrapSigned(big.NewInt(0), big.NewInt(0)); err == nil {
		t.Fatal("zero modulus should error")
	}
}

// TestWrapUnwrapInPlaceAgreement pins the in-place cached-half variants
// to the allocating originals across the sign boundaries — the
// single-convention guarantee the protocol hot path relies on.
func TestWrapUnwrapInPlaceAgreement(t *testing.T) {
	M := big.NewInt(1001) // odd, like the protocol rings
	half := new(big.Int).Rsh(M, 1)
	for v := int64(-520); v <= 520; v++ {
		want, wantErr := WrapSigned(big.NewInt(v), M)
		got := big.NewInt(v)
		gotErr := WrapSignedInPlace(got, M, half)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("wrap(%d): error disagreement: %v vs %v", v, wantErr, gotErr)
		}
		if wantErr != nil {
			if !errors.Is(gotErr, ErrOverflow) {
				t.Fatalf("wrap(%d): in-place error %v is not ErrOverflow", v, gotErr)
			}
			continue
		}
		if want.Cmp(got) != 0 {
			t.Fatalf("wrap(%d): %v vs %v", v, want, got)
		}
	}
	for r := int64(0); r < 1001; r++ {
		want, err := UnwrapSigned(big.NewInt(r), M)
		if err != nil {
			t.Fatalf("unwrap(%d): %v", r, err)
		}
		got := big.NewInt(r)
		if err := UnwrapSignedInPlace(got, M, half); err != nil {
			t.Fatalf("unwrap in place(%d): %v", r, err)
		}
		if want.Cmp(got) != 0 {
			t.Fatalf("unwrap(%d): %v vs %v", r, want, got)
		}
	}
	if err := UnwrapSignedInPlace(big.NewInt(-1), M, half); err == nil {
		t.Fatal("in-place unwrap must reject unreduced input")
	}
	if err := UnwrapSignedInPlace(big.NewInt(1001), M, half); err == nil {
		t.Fatal("in-place unwrap must reject residue >= M")
	}
}

func TestModRoundTripProperty(t *testing.T) {
	c := MustNew(20)
	M := new(big.Int).Lsh(big.NewInt(1), 64)
	M.Sub(M, big.NewInt(59)) // arbitrary odd modulus
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
			return true
		}
		w, err := c.EncodeMod(x, M)
		if err != nil {
			return false
		}
		back, err := c.DecodeMod(w, M)
		if err != nil {
			return false
		}
		return math.Abs(back-x) <= math.Ldexp(1, -20)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestModularAdditionWithSigns(t *testing.T) {
	// Mixed-sign sums must decode correctly through the ring.
	c := MustNew(16)
	M := big.NewInt(1 << 40)
	M.Sub(M, big.NewInt(1))
	a, _ := c.EncodeMod(100.5, M)
	b, _ := c.EncodeMod(-40.25, M)
	sum := new(big.Int).Add(a, b)
	sum.Mod(sum, M)
	got, err := c.DecodeMod(sum, M)
	if err != nil {
		t.Fatal(err)
	}
	if got != 60.25 {
		t.Fatalf("(-40.25 + 100.5) via ring = %v", got)
	}
}

func TestEncodeDecodeSeries(t *testing.T) {
	c := MustNew(12)
	xs := []float64{1.5, -2.25, 0}
	vs, err := c.EncodeSeries(xs)
	if err != nil {
		t.Fatal(err)
	}
	back := c.DecodeSeries(vs)
	for i := range xs {
		if back[i] != xs[i] {
			t.Fatalf("series roundtrip = %v", back)
		}
	}
	if _, err := c.EncodeSeries([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN in series should error")
	}
}

func TestPreScalePostScaleInverse(t *testing.T) {
	for _, v := range []int64{0, 7, -7, 123456} {
		for _, bits := range []uint{0, 1, 8, 30} {
			up := PreScale(big.NewInt(v), bits)
			down := PostScale(up, bits)
			if down.Int64() != v {
				t.Fatalf("postScale(preScale(%d, %d)) = %v", v, bits, down)
			}
		}
	}
}

func TestPostScaleRounds(t *testing.T) {
	// 5/4 rounds to 1, 7/4 rounds to 2, -5/4 rounds to -1.
	if got := PostScale(big.NewInt(5), 2).Int64(); got != 1 {
		t.Fatalf("PostScale(5,2) = %d", got)
	}
	if got := PostScale(big.NewInt(7), 2).Int64(); got != 2 {
		t.Fatalf("PostScale(7,2) = %d", got)
	}
	if got := PostScale(big.NewInt(-5), 2).Int64(); got != -1 {
		t.Fatalf("PostScale(-5,2) = %d", got)
	}
}

func TestHeadroomBits(t *testing.T) {
	M := new(big.Int).Lsh(big.NewInt(1), 100)
	if got := HeadroomBits(M, 60); got != 40 {
		t.Fatalf("headroom = %d, want 40", got)
	}
	if got := HeadroomBits(M, 120); got >= 0 {
		t.Fatalf("overflowing bound should be negative, got %d", got)
	}
}

func TestExtremeMagnitudeEncode(t *testing.T) {
	// Exercise the big.Float slow path.
	c := MustNew(64)
	x := 1e30
	v, err := c.Encode(x)
	if err != nil {
		t.Fatal(err)
	}
	back := c.Decode(v)
	if math.Abs(back-x)/x > 1e-12 {
		t.Fatalf("extreme roundtrip: %v vs %v", back, x)
	}
}
