// Package fixedpoint encodes float64 values as scaled integers so that
// time-series can live in the additively-homomorphic plaintext space
// Z_{n^s} of the Damgård–Jurik cryptosystem.
//
// Two concerns are handled here:
//
//  1. Fractional precision: a value x is stored as round(x * 2^FracBits).
//  2. Signs in a modular ring: Z_M has no negative numbers, so negative
//     encodings are wrapped as M - |v|, and decoding treats any residue
//     above M/2 as negative. Callers must ensure |values| stay far below
//     M/2 (the protocol's plaintext-headroom budget, documented in
//     internal/core).
//
// The codec additionally supports power-of-two pre-scaling (PreScaleBits):
// the gossip push-sum protocol repeatedly halves values, and halving in
// Z_M is exact ring arithmetic but only decodes back to the intended
// rational if the initial encoding carries enough factors of two. See
// internal/gossip for the contract.
package fixedpoint

import (
	"errors"
	"fmt"
	"math"
	"math/big"
)

// Codec converts between float64 and scaled big.Int representations.
// The zero value is unusable; use New.
type Codec struct {
	fracBits uint
	scale    *big.Int // 2^fracBits
	scaleF   float64  // float64(2^fracBits)
}

// ErrNotFinite is returned when encoding NaN or ±Inf.
var ErrNotFinite = errors.New("fixedpoint: value is not finite")

// ErrOverflow is returned when a decoded magnitude cannot be represented.
var ErrOverflow = errors.New("fixedpoint: overflow")

// New returns a Codec with the given number of fractional bits.
// fracBits must be in [0, 128].
func New(fracBits uint) (*Codec, error) {
	if fracBits > 128 {
		return nil, fmt.Errorf("fixedpoint: fracBits %d > 128", fracBits)
	}
	scale := new(big.Int).Lsh(big.NewInt(1), fracBits)
	return &Codec{
		fracBits: fracBits,
		scale:    scale,
		scaleF:   math.Ldexp(1, int(fracBits)),
	}, nil
}

// MustNew is New but panics on error; for use with constant arguments.
func MustNew(fracBits uint) *Codec {
	c, err := New(fracBits)
	if err != nil {
		panic(err)
	}
	return c
}

// FracBits reports the codec's fractional precision.
func (c *Codec) FracBits() uint { return c.fracBits }

// Encode converts x into a signed scaled integer round(x * 2^fracBits).
func (c *Codec) Encode(x float64) (*big.Int, error) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return nil, fmt.Errorf("%w: %v", ErrNotFinite, x)
	}
	scaled := x * c.scaleF
	// For magnitudes within int64, the fast path is exact enough.
	if math.Abs(scaled) < (1 << 62) {
		return big.NewInt(int64(math.RoundToEven(scaled))), nil
	}
	// Slow path via big.Float for extreme magnitudes.
	f := new(big.Float).SetPrec(256).SetFloat64(x)
	f.Mul(f, new(big.Float).SetInt(c.scale))
	out, _ := f.Int(nil)
	return out, nil
}

// Decode converts a signed scaled integer back to float64.
func (c *Codec) Decode(v *big.Int) float64 {
	f := new(big.Float).SetPrec(256).SetInt(v)
	f.Quo(f, new(big.Float).SetInt(c.scale))
	out, _ := f.Float64()
	return out
}

// EncodeMod encodes x into the ring Z_M, wrapping negatives as M - |v|.
// It fails if the magnitude reaches M/2 (no unambiguous sign).
func (c *Codec) EncodeMod(x float64, M *big.Int) (*big.Int, error) {
	v, err := c.Encode(x)
	if err != nil {
		return nil, err
	}
	return WrapSigned(v, M)
}

// DecodeMod decodes a ring element of Z_M produced by EncodeMod (or by
// homomorphic arithmetic on such encodings) back to float64.
func (c *Codec) DecodeMod(v, M *big.Int) (float64, error) {
	s, err := UnwrapSigned(v, M)
	if err != nil {
		return 0, err
	}
	return c.Decode(s), nil
}

// WrapSigned maps a signed integer v into Z_M (negatives become M-|v|).
// |v| must be < M/2 so the sign stays recoverable.
func WrapSigned(v, M *big.Int) (*big.Int, error) {
	if M.Sign() <= 0 {
		return nil, errors.New("fixedpoint: modulus must be positive")
	}
	out := new(big.Int).Set(v)
	if err := WrapSignedInPlace(out, M, new(big.Int).Rsh(M, 1)); err != nil {
		return nil, err
	}
	return out, nil
}

// UnwrapSigned maps a ring element of Z_M back to a signed integer,
// interpreting residues above M/2 as negative.
func UnwrapSigned(v, M *big.Int) (*big.Int, error) {
	if M.Sign() <= 0 {
		return nil, errors.New("fixedpoint: modulus must be positive")
	}
	out := new(big.Int).Set(v)
	if err := UnwrapSignedInPlace(out, M, new(big.Int).Rsh(M, 1)); err != nil {
		return nil, err
	}
	return out, nil
}

// WrapSignedInPlace is WrapSigned mutating v with a caller-cached
// half = M >> 1: the allocation-light form the protocol hot path uses
// (one sign wrap per encoded coordinate). The sign convention — reject
// |v| >= M/2, map negatives to M-|v| — is defined here, next to
// WrapSigned, so the two can never diverge.
func WrapSignedInPlace(v, M, half *big.Int) error {
	if v.CmpAbs(half) >= 0 {
		// The error path may allocate: report the magnitude without a
		// stray sign inside the absolute-value bars.
		return fmt.Errorf("%w: |%s| >= M/2", ErrOverflow, new(big.Int).Abs(v).String())
	}
	if v.Sign() < 0 {
		v.Add(v, M)
	}
	return nil
}

// UnwrapSignedInPlace is UnwrapSigned mutating v with a caller-cached
// half = M >> 1 (residues strictly above M/2 become negative).
func UnwrapSignedInPlace(v, M, half *big.Int) error {
	if v.Sign() < 0 || v.Cmp(M) >= 0 {
		return fmt.Errorf("fixedpoint: %s not reduced mod M", v.String())
	}
	if v.Cmp(half) > 0 {
		v.Sub(v, M)
	}
	return nil
}

// EncodeSeries encodes each element of xs (signed representation).
func (c *Codec) EncodeSeries(xs []float64) ([]*big.Int, error) {
	out := make([]*big.Int, len(xs))
	for i, x := range xs {
		v, err := c.Encode(x)
		if err != nil {
			return nil, fmt.Errorf("fixedpoint: element %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// DecodeSeries decodes a slice of signed scaled integers.
func (c *Codec) DecodeSeries(vs []*big.Int) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = c.Decode(v)
	}
	return out
}

// PreScale multiplies v by 2^bits (in place on a copy), providing the
// factors of two that gossip halving will consume.
func PreScale(v *big.Int, bits uint) *big.Int {
	return new(big.Int).Lsh(v, bits)
}

// PostScale divides v by 2^bits with round-to-nearest, undoing PreScale
// after all halvings are accounted for.
func PostScale(v *big.Int, bits uint) *big.Int {
	if bits == 0 {
		return new(big.Int).Set(v)
	}
	half := new(big.Int).Lsh(big.NewInt(1), bits-1)
	out := new(big.Int).Set(v)
	if out.Sign() >= 0 {
		out.Add(out, half)
	} else {
		out.Sub(out, half)
	}
	return out.Quo(out, new(big.Int).Lsh(big.NewInt(1), bits))
}

// HeadroomBits reports how many bits of |value| headroom remain below M/2
// for an encoding with the given worst-case magnitude bound. It helps the
// protocol validate that population * bound * 2^(frac+prescale) fits the
// plaintext space. Returns a negative number if the bound already
// overflows.
func HeadroomBits(M *big.Int, boundBits int) int {
	return M.BitLen() - 1 - boundBits
}
