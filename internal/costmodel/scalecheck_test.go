package costmodel

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"chiaroscuro/internal/benchcfg"
	"chiaroscuro/internal/core"
)

// scaleArtifact mirrors the BENCH_scale.json v2 fields the cross-check
// needs (the full schema lives in cmd/chiaroscuro/benchscale.go).
type scaleArtifact struct {
	Schema string
	Runs   []struct {
		Name            string
		Engine          string
		N               int
		Dim             int
		K               int
		Iterations      int
		Packed          bool
		MessagesSent    int
		BytesSent       int64
		DecryptRequests int
		DecryptBytes    int64
	}
}

// TestProjectionMatchesMeasuredScaleRun is experiment E5b's cross-check:
// the cost projection, fed the exact benchcfg workload shape, must land
// within a tolerance band of the real simulator's measured N=100k run
// (the committed BENCH_scale.json v2) — messages and decrypt requests
// exactly, bytes within 10% (see the package doc's drift note for where
// the residual envelope-overhead difference comes from).
func TestProjectionMatchesMeasuredScaleRun(t *testing.T) {
	buf, err := os.ReadFile("../../BENCH_scale.json")
	if err != nil {
		t.Skipf("no committed BENCH_scale.json: %v", err)
	}
	var art scaleArtifact
	if err := json.Unmarshal(buf, &art); err != nil {
		t.Fatal(err)
	}
	if art.Schema != "chiaroscuro-bench-scale/v2" {
		t.Skipf("artifact schema %q, cross-check pins v2", art.Schema)
	}

	// The accounted backend simulates 1024-bit Damgård–Jurik at s=1:
	// ciphertexts live mod n², i.e. 2048 bits on the wire.
	const modulusBits = 1024
	prof := &CryptoProfile{KeyBits: modulusBits, CiphertextBytes: 2 * modulusBits / 8}
	// The accounted backend's actual plaintext ring is NewPlainSuite's
	// fixed 320-bit modulus (the key size only drives the wire-size
	// accounting), so the measured run packed against 319 usable bits.
	const plainBits = 320 - 1

	within := func(t *testing.T, name string, got, want, tol float64) {
		t.Helper()
		if want == 0 {
			t.Fatalf("%s: measured value is zero", name)
		}
		rel := math.Abs(got-want) / want
		t.Logf("%s: projected %.4g vs measured %.4g (drift %.2f%%)", name, got, want, 100*rel)
		if rel > tol {
			t.Errorf("%s: projection %.4g drifted %.1f%% from measured %.4g (band %.0f%%)",
				name, got, 100*rel, want, 100*tol)
		}
	}

	checked := 0
	for _, run := range art.Runs {
		if run.Engine != benchcfg.ScaleEngine || run.N < 100000 {
			continue
		}
		w := Workload{
			Participants:     run.N,
			K:                run.K,
			Dim:              run.Dim,
			Iterations:       run.Iterations,
			GossipRounds:     benchcfg.ScaleGossipRounds,
			DecryptThreshold: benchcfg.ScaleDecryptThreshold,
		}
		if run.Packed {
			// Derive the packing factor from the identical rule the run
			// itself used.
			slots, err := core.PackedSlots(plainBits, run.N, run.Dim, core.Params{
				K:                run.K,
				Epsilon:          benchcfg.ScaleEpsilon,
				Iterations:       run.Iterations,
				Seed:             benchcfg.ScaleSeed,
				GossipRounds:     benchcfg.ScaleGossipRounds,
				DecryptThreshold: benchcfg.ScaleDecryptThreshold,
			})
			if err != nil {
				t.Fatal(err)
			}
			w.Slots = slots
		}
		rep, err := Project(prof, w)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(run.Name, func(t *testing.T) {
			n := float64(run.N)
			// Structural counts are exact: any deviation means the
			// projection and the simulator disagree about the protocol.
			if got, want := rep.MessagesSent*run.N, run.MessagesSent; got != want {
				t.Errorf("messages: projected %d, measured %d", got, want)
			}
			if got, want := rep.DecryptRequests*run.N, run.DecryptRequests; got != want {
				t.Errorf("decrypt requests: projected %d, measured %d", got, want)
			}
			// Byte totals absorb per-message envelope overhead the
			// projection only approximates — held to a 10% band.
			within(t, "bytes sent", float64(rep.BytesSent)*n, float64(run.BytesSent), 0.10)
			within(t, "decrypt bytes", float64(rep.DecryptBytes)*n, float64(run.DecryptBytes), 0.10)
		})
		checked++
	}
	if checked == 0 {
		t.Skip("no ≥100k sharded runs in the artifact")
	}
}
