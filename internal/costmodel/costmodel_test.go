package costmodel

import (
	"testing"
	"time"
)

func measureSmall(t *testing.T) *CryptoProfile {
	t.Helper()
	p, err := MeasureProfile(128, 1, 5, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMeasureProfilePopulatesEverything(t *testing.T) {
	p := measureSmall(t)
	if p.KeyBits != 128 || p.Degree != 1 {
		t.Fatalf("profile identity: %+v", p)
	}
	for name, d := range map[string]time.Duration{
		"Encrypt": p.Encrypt, "Decrypt": p.Decrypt, "Add": p.Add,
		"ScalarMul": p.ScalarMul, "PartialDecrypt": p.PartialDecrypt, "Combine": p.Combine,
	} {
		if d <= 0 {
			t.Errorf("%s duration = %v, want > 0", name, d)
		}
	}
	if p.CiphertextBytes != 32 {
		t.Errorf("ciphertext bytes = %d, want 32 for 128-bit s=1", p.CiphertextBytes)
	}
}

func TestMeasureProfilePopulatesFastPaths(t *testing.T) {
	p := measureSmall(t)
	for name, d := range map[string]time.Duration{
		"Rerandomize": p.Rerandomize, "FastEncrypt": p.FastEncrypt,
		"FastDecrypt": p.FastDecrypt, "FastPartialDecrypt": p.FastPartialDecrypt,
		"FastCombine": p.FastCombine, "FastRerandomize": p.FastRerandomize,
	} {
		if d <= 0 {
			t.Errorf("%s duration = %v, want > 0", name, d)
		}
	}
	sp := p.Speedups()
	for _, op := range []string{"encrypt", "decrypt", "partial-decrypt", "combine", "rerandomize"} {
		if sp[op] <= 0 {
			t.Errorf("speedup for %s missing: %v", op, sp)
		}
	}
}

func TestProjectReportsBothNaiveAndFastCosts(t *testing.T) {
	p := measureSmall(t)
	r, err := Project(p, baseWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if r.CPUTimeFast <= 0 || r.DecryptLatencyFast <= 0 {
		t.Fatalf("fast projections missing: cpu %v latency %v", r.CPUTimeFast, r.DecryptLatencyFast)
	}
	// A profile without fast measurements degrades to the naive numbers.
	naiveOnly := *p
	naiveOnly.FastEncrypt, naiveOnly.FastDecrypt = 0, 0
	naiveOnly.FastPartialDecrypt, naiveOnly.FastCombine, naiveOnly.FastRerandomize = 0, 0, 0
	r2, err := Project(&naiveOnly, baseWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if r2.CPUTimeFast != r2.CPUTime || r2.DecryptLatencyFast != r2.DecryptLatency {
		t.Fatal("fast projection should fall back to naive timings when unmeasured")
	}
}

func TestMeasureProfileUnknownFixture(t *testing.T) {
	if _, err := MeasureProfile(333, 1, 3, 2, 1); err == nil {
		t.Fatal("unknown fixture size should error")
	}
}

func baseWorkload() Workload {
	return Workload{
		Participants:     1000,
		K:                5,
		Dim:              24,
		Iterations:       8,
		GossipRounds:     20,
		DecryptThreshold: 10,
	}
}

func TestProjectOperationCounts(t *testing.T) {
	p := measureSmall(t)
	w := baseWorkload()
	r, err := Project(p, w)
	if err != nil {
		t.Fatal(err)
	}
	meanLen := w.K * (w.Dim + 1) // 125
	vecLen := 2 * meanLen        // 250
	if w.VectorLen() != vecLen {
		t.Fatalf("VectorLen = %d, want %d", w.VectorLen(), vecLen)
	}
	if r.EncryptOps != w.Iterations*2*meanLen {
		t.Fatalf("encrypts = %d", r.EncryptOps)
	}
	if r.ScalarOps != w.Iterations*w.GossipRounds*vecLen {
		t.Fatalf("scalar ops = %d", r.ScalarOps)
	}
	if r.RerandomizeOps != r.ScalarOps {
		t.Fatalf("rerandomize ops = %d, want %d (one per halving)", r.RerandomizeOps, r.ScalarOps)
	}
	if r.AddOps != w.Iterations*(w.GossipRounds*vecLen+meanLen) {
		t.Fatalf("add ops = %d", r.AddOps)
	}
	if r.PartialDecryptOps != w.Iterations*w.DecryptThreshold*meanLen {
		t.Fatalf("partial decrypts = %d", r.PartialDecryptOps)
	}
	if r.CombineOps != w.Iterations*meanLen {
		t.Fatalf("combines = %d", r.CombineOps)
	}
	if r.CPUTime <= 0 {
		t.Fatal("CPU time should be positive")
	}
	if r.MessagesSent != w.Iterations*(w.GossipRounds+2*w.DecryptThreshold) {
		t.Fatalf("messages = %d", r.MessagesSent)
	}
	if r.BytesSent <= 0 || r.BytesReceived != r.BytesSent {
		t.Fatalf("bytes: sent %d received %d", r.BytesSent, r.BytesReceived)
	}
}

// TestProjectPackedWorkload checks the slot-packed projection: every
// per-ciphertext operation and byte count divides by the packing factor
// (here an exact divisor of the side length, so ratios are exact), and
// Slots 0/1 are the unpacked projection.
func TestProjectPackedWorkload(t *testing.T) {
	p := measureSmall(t)
	w := baseWorkload()
	base, err := Project(p, w)
	if err != nil {
		t.Fatal(err)
	}
	pw := w
	pw.Slots = 5 // divides SideLen = 125 exactly
	if got := pw.SideCiphers(); got != 25 {
		t.Fatalf("SideCiphers = %d, want 25", got)
	}
	packed, err := Project(p, pw)
	if err != nil {
		t.Fatal(err)
	}
	if packed.EncryptOps*5 != base.EncryptOps ||
		packed.ScalarOps*5 != base.ScalarOps ||
		packed.PartialDecryptOps*5 != base.PartialDecryptOps ||
		packed.CombineOps*5 != base.CombineOps {
		t.Fatalf("packed op counts not 1/5th of unpacked: %+v vs %+v", packed, base)
	}
	if packed.MessagesSent != base.MessagesSent {
		t.Fatalf("packing must not change message counts: %d vs %d", packed.MessagesSent, base.MessagesSent)
	}
	if packed.BytesSent >= base.BytesSent {
		t.Fatalf("packed bytes %d not below unpacked %d", packed.BytesSent, base.BytesSent)
	}
	for _, slots := range []int{0, 1} {
		uw := w
		uw.Slots = slots
		r, err := Project(p, uw)
		if err != nil {
			t.Fatal(err)
		}
		if r.EncryptOps != base.EncryptOps || r.BytesSent != base.BytesSent {
			t.Fatalf("Slots=%d must project the unpacked protocol", slots)
		}
	}
	bad := w
	bad.Slots = -1
	if _, err := Project(p, bad); err == nil {
		t.Fatal("negative Slots must be rejected")
	}
}

func TestProjectScalesLinearlyInIterations(t *testing.T) {
	p := measureSmall(t)
	w := baseWorkload()
	r1, err := Project(p, w)
	if err != nil {
		t.Fatal(err)
	}
	w.Iterations *= 2
	r2, err := Project(p, w)
	if err != nil {
		t.Fatal(err)
	}
	if r2.EncryptOps != 2*r1.EncryptOps || r2.BytesSent != 2*r1.BytesSent {
		t.Fatalf("doubling iterations: %d->%d encrypts, %d->%d bytes",
			r1.EncryptOps, r2.EncryptOps, r1.BytesSent, r2.BytesSent)
	}
}

func TestProjectIndependentOfPopulation(t *testing.T) {
	// Per-participant costs must NOT grow with the population — the
	// scalability claim of the paper (costs depend on k, d, rounds, t).
	p := measureSmall(t)
	w := baseWorkload()
	r1, err := Project(p, w)
	if err != nil {
		t.Fatal(err)
	}
	w.Participants = 1000000
	r2, err := Project(p, w)
	if err != nil {
		t.Fatal(err)
	}
	if r1.BytesSent != r2.BytesSent || r1.CPUTime != r2.CPUTime {
		t.Fatal("per-participant cost changed with population size")
	}
}

func TestProjectValidation(t *testing.T) {
	p := measureSmall(t)
	bad := baseWorkload()
	bad.K = 0
	if _, err := Project(p, bad); err == nil {
		t.Fatal("invalid workload should error")
	}
	if _, err := Project(nil, baseWorkload()); err == nil {
		t.Fatal("nil profile should error")
	}
}

func TestDecryptLatency(t *testing.T) {
	p := measureSmall(t)
	r, err := Project(p, baseWorkload())
	if err != nil {
		t.Fatal(err)
	}
	meanLen := 5 * 25
	want := time.Duration(meanLen)*p.PartialDecrypt + time.Duration(meanLen)*p.Combine
	if r.DecryptLatency != want {
		t.Fatalf("latency = %v, want %v", r.DecryptLatency, want)
	}
}

func TestLargerKeysCostMore(t *testing.T) {
	small, err := MeasureProfile(128, 1, 3, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	big, err := MeasureProfile(512, 1, 3, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if big.CiphertextBytes <= small.CiphertextBytes {
		t.Fatalf("512-bit ciphertexts (%dB) not larger than 128-bit (%dB)",
			big.CiphertextBytes, small.CiphertextBytes)
	}
	// Timings are noisy on shared machines, but a 4x modulus must not be
	// faster at encryption by more than measurement jitter.
	if big.Encrypt < small.Encrypt/2 {
		t.Fatalf("512-bit encrypt (%v) implausibly faster than 128-bit (%v)", big.Encrypt, small.Encrypt)
	}
}
