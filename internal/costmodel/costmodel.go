// Package costmodel reproduces the demonstration's cost methodology
// (Sec. III.B): the demo runs with homomorphic operations disabled and
// displays "the performance overhead that would be due to homomorphic
// operations and to a larger population size ... based on actual average
// measures performed beforehand (e.g., of encryption/decryption/addition
// times)".
//
// Accordingly, this package (1) measures real per-operation timings of the
// Damgård–Jurik implementation on the current machine, and (2) projects
// them — together with message and byte counts derived from the protocol
// structure — onto arbitrary population sizes, key sizes and parameter
// choices.
//
// # Known drift against the simulator (E5b cross-check)
//
// scalecheck_test.go compares the projection against a real measured
// N=100k run (the committed BENCH_scale.json v2). The structural counts
// — messages per participant and decrypt requests — are exact. The byte
// totals under-project slightly: the projection charges 8 bytes of
// envelope per gossip message (the push-sum weight) and none per
// decrypt request/response, while the simulator's wire format carries
// ~80 bytes per gossip message and 8 per decrypt message of
// weight-plus-header overhead. At the benchmark shape (20-ciphertext
// gossip vectors of 256-byte ciphertexts) that is ~1% on total bytes;
// packing shrinks the ciphertext payload while the envelope stays
// fixed, so the packed run drifts more (~3% gossip, ~1% decrypt at
// slots=4). A second subtlety: the accounted backend's plaintext ring
// is NewPlainSuite's fixed 320-bit modulus regardless of the declared
// key size, so packing factors must be derived from 319 usable bits,
// not from the key's nominal plaintext space. The cross-check pins the
// drift inside a 10% band so a structural change in either side
// surfaces as a test failure rather than silently invalidating the
// projections.
package costmodel

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"time"

	"chiaroscuro/internal/crypto/damgardjurik"
)

// CryptoProfile holds measured per-operation averages for one key
// configuration. Every operation that has a precomputed fast path
// (docs/CRYPTO.md) is measured twice: the retained naive reference
// (Encrypt, Decrypt, PartialDecrypt, Combine, Rerandomize) and the
// fast-path counterpart (Fast*), so accounted-mode reports can surface
// both the historical naive projection and what the current
// implementation actually costs.
type CryptoProfile struct {
	KeyBits int
	Degree  int // Damgård–Jurik s

	// Naive reference timings.
	Encrypt        time.Duration
	Decrypt        time.Duration
	Add            time.Duration
	ScalarMul      time.Duration // full-width exponent (gossip halving)
	PartialDecrypt time.Duration
	Combine        time.Duration
	Rerandomize    time.Duration

	// Fast-path timings: fixed-base table encryption, CRT decryption and
	// partial decryption, batched multi-exponentiation combine, pooled
	// rerandomization.
	FastEncrypt        time.Duration
	FastDecrypt        time.Duration
	FastPartialDecrypt time.Duration
	FastCombine        time.Duration
	FastRerandomize    time.Duration

	CiphertextBytes int
}

// Speedups reports naive/fast ratios per accelerated operation (values
// > 1 mean the fast path wins); operations without both measurements
// are omitted.
func (p *CryptoProfile) Speedups() map[string]float64 {
	out := make(map[string]float64, 5)
	pairs := []struct {
		name        string
		naive, fast time.Duration
	}{
		{"encrypt", p.Encrypt, p.FastEncrypt},
		{"decrypt", p.Decrypt, p.FastDecrypt},
		{"partial-decrypt", p.PartialDecrypt, p.FastPartialDecrypt},
		{"combine", p.Combine, p.FastCombine},
		{"rerandomize", p.Rerandomize, p.FastRerandomize},
	}
	for _, pr := range pairs {
		if pr.naive > 0 && pr.fast > 0 {
			out[pr.name] = float64(pr.naive) / float64(pr.fast)
		}
	}
	return out
}

// MeasureProfile times the real implementation over reps repetitions per
// operation, using fixture moduli (so the measurement is instant to set
// up). parties/threshold configure the threshold operations. Both the
// naive references and the precomputed fast paths are measured; the
// one-time fixed-base table construction happens outside the timed
// regions (the protocol amortizes it across a whole run), and the fast
// randomized ops are timed synchronously — the RandomizerPool only
// shifts that work off the latency path, it does not shrink the CPU
// cost a projection must charge.
func MeasureProfile(keyBits, degree, parties, threshold, reps int) (*CryptoProfile, error) {
	if reps < 1 {
		reps = 8
	}
	tk, shares, err := damgardjurik.FixtureThresholdKey(keyBits, degree, parties, threshold)
	if err != nil {
		return nil, err
	}
	sk, err := damgardjurik.FixturePrivateKey(keyBits, degree)
	if err != nil {
		return nil, err
	}
	ec, err := tk.NewEncContext(rand.Reader)
	if err != nil {
		return nil, err
	}
	prof := &CryptoProfile{
		KeyBits:         keyBits,
		Degree:          degree,
		CiphertextBytes: tk.CiphertextBytes(),
	}

	msg := big.NewInt(123456789)
	half := new(big.Int).ModInverse(big.NewInt(2), tk.PlaintextModulus())

	avg := func(f func(i int) error) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < reps; i++ {
			if err := f(i); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(reps), nil
	}

	// Encrypt: naive full-width randomizer vs fixed-base table + pool.
	var cts []*big.Int
	prof.Encrypt, err = avg(func(int) error {
		c, err := tk.Encrypt(rand.Reader, msg)
		cts = append(cts, c)
		return err
	})
	if err != nil {
		return nil, err
	}
	if prof.FastEncrypt, err = avg(func(int) error {
		_, err := ec.Encrypt(rand.Reader, msg)
		return err
	}); err != nil {
		return nil, err
	}

	// Add.
	acc := cts[0]
	if prof.Add, err = avg(func(i int) error {
		acc, err = tk.Add(acc, cts[i%len(cts)])
		return err
	}); err != nil {
		return nil, err
	}

	// ScalarMul (halving-style full-width exponent).
	if prof.ScalarMul, err = avg(func(i int) error {
		_, err := tk.ScalarMul(cts[i%len(cts)], half)
		return err
	}); err != nil {
		return nil, err
	}

	// Rerandomize: fresh exponentiation vs pooled precomputed factor.
	if prof.Rerandomize, err = avg(func(i int) error {
		_, err := tk.Rerandomize(rand.Reader, cts[i%len(cts)])
		return err
	}); err != nil {
		return nil, err
	}
	if prof.FastRerandomize, err = avg(func(i int) error {
		_, err := ec.Rerandomize(rand.Reader, cts[i%len(cts)])
		return err
	}); err != nil {
		return nil, err
	}

	// Single-holder decrypt: naive vs CRT.
	ct, err := sk.Encrypt(rand.Reader, msg)
	if err != nil {
		return nil, err
	}
	if prof.Decrypt, err = avg(func(int) error {
		_, err := sk.DecryptNaive(ct)
		return err
	}); err != nil {
		return nil, err
	}
	if prof.FastDecrypt, err = avg(func(int) error {
		_, err := sk.Decrypt(ct)
		return err
	}); err != nil {
		return nil, err
	}

	// Partial decryption: naive vs CRT.
	if prof.PartialDecrypt, err = avg(func(i int) error {
		_, err := tk.PartialDecryptNaive(shares[i%threshold], cts[0])
		return err
	}); err != nil {
		return nil, err
	}
	if prof.FastPartialDecrypt, err = avg(func(i int) error {
		_, err := tk.PartialDecrypt(shares[i%threshold], cts[0])
		return err
	}); err != nil {
		return nil, err
	}

	// Combine: per-partial exponentiations vs batched multi-exponentiation.
	parts := make([]damgardjurik.PartialDecryption, threshold)
	for i := 0; i < threshold; i++ {
		parts[i], err = tk.PartialDecrypt(shares[i], cts[0])
		if err != nil {
			return nil, err
		}
	}
	if prof.Combine, err = avg(func(int) error {
		_, err := tk.CombineNaive(parts)
		return err
	}); err != nil {
		return nil, err
	}
	if prof.FastCombine, err = avg(func(int) error {
		_, err := tk.Combine(parts)
		return err
	}); err != nil {
		return nil, err
	}

	return prof, nil
}

// Workload describes one Chiaroscuro deployment for cost projection.
type Workload struct {
	Participants     int
	K                int // clusters
	Dim              int // series length
	Iterations       int
	GossipRounds     int // exchanges per participant per gossip phase
	DecryptThreshold int // partial decryptions needed

	// Slots is the number of coordinates packed per ciphertext on the
	// encrypted side (core.PackedSlots derives it from the key size and
	// the headroom budget); 0 or 1 projects the unpacked protocol.
	Slots int
}

func (w Workload) validate() error {
	if w.Participants < 2 || w.K < 1 || w.Dim < 1 || w.Iterations < 1 || w.GossipRounds < 1 || w.DecryptThreshold < 1 || w.Slots < 0 {
		return fmt.Errorf("costmodel: invalid workload %+v", w)
	}
	return nil
}

// SideLen is the number of coordinates per side of the fused vector: per
// cluster, the d-dimensional sum plus the count.
func (w Workload) SideLen() int {
	return w.K * (w.Dim + 1)
}

// SideCiphers is the number of ciphertexts actually carrying one side:
// SideLen unpacked, ⌈SideLen/Slots⌉ packed.
func (w Workload) SideCiphers() int {
	side := w.SideLen()
	if w.Slots > 1 {
		return (side + w.Slots - 1) / w.Slots
	}
	return side
}

// VectorLen is the number of ciphertexts gossiped per message: the means
// side and the noise side of the fused vector.
func (w Workload) VectorLen() int {
	return 2 * w.SideCiphers()
}

// Report is the projected per-participant cost of a full run — the
// numbers the demo GUI surfaces as "network and encryption costs".
type Report struct {
	Workload Workload

	// Per-participant operation counts over the whole run. Every gossip
	// halving rerandomizes the halved ciphertext (the traffic-analysis
	// defence of the real backend), so RerandomizeOps equals ScalarOps.
	EncryptOps        int
	AddOps            int
	ScalarOps         int
	RerandomizeOps    int
	PartialDecryptOps int
	CombineOps        int

	// Per-participant totals. CPUTime is projected from the naive
	// reference timings (the historical baseline the demo scaled up
	// from); CPUTimeFast projects the same operation counts through the
	// precomputed fast paths — what the current implementation would
	// actually spend.
	CPUTime       time.Duration
	CPUTimeFast   time.Duration
	MessagesSent  int
	BytesSent     int64
	BytesReceived int64

	// DecryptLatency is the wall-clock of one collaborative decryption
	// (t partial decryptions, serialized on the requester, plus combine);
	// DecryptLatencyFast is its fast-path counterpart.
	DecryptLatency     time.Duration
	DecryptLatencyFast time.Duration

	// DecryptRequests and DecryptBytes are the decrypt-phase slice of
	// the per-participant message and byte totals (requests sent plus
	// responses served) — the columns the simulator records in
	// BENCH_scale.json v2, broken out so the projection can be
	// cross-checked against a real measured run (see
	// scalecheck_test.go).
	DecryptRequests int
	DecryptBytes    int64
}

// Project derives the per-participant cost report of the workload under
// the measured profile. Counting (per participant, per iteration):
//
//   - assignment: encrypt the K·(Dim+1) mean entries + K·(Dim+1) noise
//     shares — one ciphertext per coordinate, or per Slots-coordinate
//     group when the workload is packed;
//   - gossip: GossipRounds rounds; each round halves the full vector
//     (VectorLen scalar multiplications, each followed by a
//     rerandomization so the half cannot be traced across hops), sends
//     it (1 message of VectorLen ciphertexts), and absorbs an expected
//     1 incoming message (VectorLen additions);
//   - collaborative decryption: the participant asks DecryptThreshold
//     peers (request carries the SideCiphers perturbed-mean
//     ciphertexts, response the same volume), serves on average
//     DecryptThreshold requests from others (each costing SideCiphers
//     partial decryptions), and combines its own (SideCiphers combine
//     ops).
//
// Every per-ciphertext count scales down by the packing factor, which is
// how slot packing compounds across the whole projection.
func Project(p *CryptoProfile, w Workload) (*Report, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("costmodel: nil profile")
	}
	meanLen := w.SideCiphers() // ciphertexts holding means (or noise)
	vecLen := w.VectorLen()

	r := &Report{Workload: w}
	it := w.Iterations
	r.EncryptOps = it * 2 * meanLen
	r.ScalarOps = it * w.GossipRounds * vecLen
	r.RerandomizeOps = r.ScalarOps                    // every halving is refreshed before it travels
	r.AddOps = it * (w.GossipRounds*vecLen + meanLen) // gossip merges + noise-to-mean addition
	r.PartialDecryptOps = it * w.DecryptThreshold * meanLen
	r.CombineOps = it * meanLen

	r.CPUTime = time.Duration(r.EncryptOps)*p.Encrypt +
		time.Duration(r.ScalarOps)*p.ScalarMul +
		time.Duration(r.RerandomizeOps)*p.Rerandomize +
		time.Duration(r.AddOps)*p.Add +
		time.Duration(r.PartialDecryptOps)*p.PartialDecrypt +
		time.Duration(r.CombineOps)*p.Combine
	r.CPUTimeFast = time.Duration(r.EncryptOps)*orElse(p.FastEncrypt, p.Encrypt) +
		time.Duration(r.ScalarOps)*p.ScalarMul +
		time.Duration(r.RerandomizeOps)*orElse(p.FastRerandomize, p.Rerandomize) +
		time.Duration(r.AddOps)*p.Add +
		time.Duration(r.PartialDecryptOps)*orElse(p.FastPartialDecrypt, p.PartialDecrypt) +
		time.Duration(r.CombineOps)*orElse(p.FastCombine, p.Combine)

	cb := int64(p.CiphertextBytes)
	gossipMsgs := it * w.GossipRounds
	gossipBytes := int64(gossipMsgs) * (int64(vecLen)*cb + 8) // +8: push-sum weight
	decReqMsgs := it * w.DecryptThreshold
	decReqBytes := int64(decReqMsgs) * int64(meanLen) * cb
	decRespMsgs := it * w.DecryptThreshold // served for others
	decRespBytes := int64(decRespMsgs) * int64(meanLen) * cb

	r.MessagesSent = gossipMsgs + decReqMsgs + decRespMsgs
	r.BytesSent = gossipBytes + decReqBytes + decRespBytes
	r.BytesReceived = gossipBytes + decReqBytes + decRespBytes // symmetric in expectation
	r.DecryptRequests = decReqMsgs
	r.DecryptBytes = decReqBytes + decRespBytes

	r.DecryptLatency = time.Duration(meanLen)*p.PartialDecrypt + time.Duration(meanLen)*p.Combine
	r.DecryptLatencyFast = time.Duration(meanLen)*orElse(p.FastPartialDecrypt, p.PartialDecrypt) +
		time.Duration(meanLen)*orElse(p.FastCombine, p.Combine)
	return r, nil
}

// orElse substitutes the naive measurement when a fast-path one is
// absent (hand-built profiles), so fast projections degrade gracefully.
func orElse(fast, naive time.Duration) time.Duration {
	if fast > 0 {
		return fast
	}
	return naive
}
