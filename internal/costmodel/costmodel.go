// Package costmodel reproduces the demonstration's cost methodology
// (Sec. III.B): the demo runs with homomorphic operations disabled and
// displays "the performance overhead that would be due to homomorphic
// operations and to a larger population size ... based on actual average
// measures performed beforehand (e.g., of encryption/decryption/addition
// times)".
//
// Accordingly, this package (1) measures real per-operation timings of the
// Damgård–Jurik implementation on the current machine, and (2) projects
// them — together with message and byte counts derived from the protocol
// structure — onto arbitrary population sizes, key sizes and parameter
// choices.
package costmodel

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"time"

	"chiaroscuro/internal/crypto/damgardjurik"
)

// CryptoProfile holds measured per-operation averages for one key
// configuration.
type CryptoProfile struct {
	KeyBits int
	Degree  int // Damgård–Jurik s

	Encrypt        time.Duration
	Decrypt        time.Duration
	Add            time.Duration
	ScalarMul      time.Duration // full-width exponent (gossip halving)
	PartialDecrypt time.Duration
	Combine        time.Duration

	CiphertextBytes int
}

// MeasureProfile times the real implementation over reps repetitions per
// operation, using fixture moduli (so the measurement is instant to set
// up). parties/threshold configure the threshold operations.
func MeasureProfile(keyBits, degree, parties, threshold, reps int) (*CryptoProfile, error) {
	if reps < 1 {
		reps = 8
	}
	tk, shares, err := damgardjurik.FixtureThresholdKey(keyBits, degree, parties, threshold)
	if err != nil {
		return nil, err
	}
	sk, err := damgardjurik.FixturePrivateKey(keyBits, degree)
	if err != nil {
		return nil, err
	}
	prof := &CryptoProfile{
		KeyBits:         keyBits,
		Degree:          degree,
		CiphertextBytes: tk.CiphertextBytes(),
	}

	msg := big.NewInt(123456789)
	half := new(big.Int).ModInverse(big.NewInt(2), tk.PlaintextModulus())

	// Encrypt.
	var cts []*big.Int
	start := time.Now()
	for i := 0; i < reps; i++ {
		c, err := tk.Encrypt(rand.Reader, msg)
		if err != nil {
			return nil, err
		}
		cts = append(cts, c)
	}
	prof.Encrypt = time.Since(start) / time.Duration(reps)

	// Add.
	start = time.Now()
	acc := cts[0]
	for i := 0; i < reps; i++ {
		acc, err = tk.Add(acc, cts[i%len(cts)])
		if err != nil {
			return nil, err
		}
	}
	prof.Add = time.Since(start) / time.Duration(reps)

	// ScalarMul (halving-style full-width exponent).
	start = time.Now()
	for i := 0; i < reps; i++ {
		if _, err = tk.ScalarMul(cts[i%len(cts)], half); err != nil {
			return nil, err
		}
	}
	prof.ScalarMul = time.Since(start) / time.Duration(reps)

	// Single-holder decrypt (for reference / the non-threshold path).
	ct, err := sk.Encrypt(rand.Reader, msg)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		if _, err = sk.Decrypt(ct); err != nil {
			return nil, err
		}
	}
	prof.Decrypt = time.Since(start) / time.Duration(reps)

	// Partial decryption.
	start = time.Now()
	for i := 0; i < reps; i++ {
		if _, err = tk.PartialDecrypt(shares[i%threshold], cts[0]); err != nil {
			return nil, err
		}
	}
	prof.PartialDecrypt = time.Since(start) / time.Duration(reps)

	// Combine.
	parts := make([]damgardjurik.PartialDecryption, threshold)
	for i := 0; i < threshold; i++ {
		parts[i], err = tk.PartialDecrypt(shares[i], cts[0])
		if err != nil {
			return nil, err
		}
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		if _, err = tk.Combine(parts); err != nil {
			return nil, err
		}
	}
	prof.Combine = time.Since(start) / time.Duration(reps)

	return prof, nil
}

// Workload describes one Chiaroscuro deployment for cost projection.
type Workload struct {
	Participants     int
	K                int // clusters
	Dim              int // series length
	Iterations       int
	GossipRounds     int // exchanges per participant per gossip phase
	DecryptThreshold int // partial decryptions needed
}

func (w Workload) validate() error {
	if w.Participants < 2 || w.K < 1 || w.Dim < 1 || w.Iterations < 1 || w.GossipRounds < 1 || w.DecryptThreshold < 1 {
		return fmt.Errorf("costmodel: invalid workload %+v", w)
	}
	return nil
}

// VectorLen is the number of ciphertexts gossiped per message: per
// cluster, the d-dimensional sum plus the count, twice (means and noise).
func (w Workload) VectorLen() int {
	return 2 * w.K * (w.Dim + 1)
}

// Report is the projected per-participant cost of a full run — the
// numbers the demo GUI surfaces as "network and encryption costs".
type Report struct {
	Workload Workload

	// Per-participant operation counts over the whole run.
	EncryptOps        int
	AddOps            int
	ScalarOps         int
	PartialDecryptOps int
	CombineOps        int

	// Per-participant totals.
	CPUTime       time.Duration
	MessagesSent  int
	BytesSent     int64
	BytesReceived int64

	// DecryptLatency is the wall-clock of one collaborative decryption
	// (t partial decryptions, serialized on the requester, plus combine).
	DecryptLatency time.Duration
}

// Project derives the per-participant cost report of the workload under
// the measured profile. Counting (per participant, per iteration):
//
//   - assignment: encrypt K·(Dim+1) mean entries + K·(Dim+1) noise
//     shares;
//   - gossip: GossipRounds rounds; each round halves the full vector
//     (VectorLen scalar multiplications), sends it (1 message of
//     VectorLen ciphertexts), and absorbs an expected 1 incoming message
//     (VectorLen additions);
//   - collaborative decryption: the participant asks DecryptThreshold
//     peers (request carries the K·(Dim+1) perturbed-mean ciphertexts,
//     response the same volume), serves on average DecryptThreshold
//     requests from others (each costing K·(Dim+1) partial
//     decryptions), and combines its own (K·(Dim+1) combine ops).
func Project(p *CryptoProfile, w Workload) (*Report, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("costmodel: nil profile")
	}
	perCluster := w.Dim + 1
	meanLen := w.K * perCluster // ciphertexts holding means (or noise)
	vecLen := w.VectorLen()

	r := &Report{Workload: w}
	it := w.Iterations
	r.EncryptOps = it * 2 * meanLen
	r.ScalarOps = it * w.GossipRounds * vecLen
	r.AddOps = it * (w.GossipRounds*vecLen + meanLen) // gossip merges + noise-to-mean addition
	r.PartialDecryptOps = it * w.DecryptThreshold * meanLen
	r.CombineOps = it * meanLen

	r.CPUTime = time.Duration(r.EncryptOps)*p.Encrypt +
		time.Duration(r.ScalarOps)*p.ScalarMul +
		time.Duration(r.AddOps)*p.Add +
		time.Duration(r.PartialDecryptOps)*p.PartialDecrypt +
		time.Duration(r.CombineOps)*p.Combine

	cb := int64(p.CiphertextBytes)
	gossipMsgs := it * w.GossipRounds
	gossipBytes := int64(gossipMsgs) * (int64(vecLen)*cb + 8) // +8: push-sum weight
	decReqMsgs := it * w.DecryptThreshold
	decReqBytes := int64(decReqMsgs) * int64(meanLen) * cb
	decRespMsgs := it * w.DecryptThreshold // served for others
	decRespBytes := int64(decRespMsgs) * int64(meanLen) * cb

	r.MessagesSent = gossipMsgs + decReqMsgs + decRespMsgs
	r.BytesSent = gossipBytes + decReqBytes + decRespBytes
	r.BytesReceived = gossipBytes + decReqBytes + decRespBytes // symmetric in expectation

	r.DecryptLatency = time.Duration(meanLen)*p.PartialDecrypt + time.Duration(meanLen)*p.Combine
	return r, nil
}
