// Package kmeans implements centralized Lloyd's k-means (Lloyd, 1982),
// the clustering algorithm Chiaroscuro distributes and the quality
// baseline the demonstration compares against ("the quality reached ...
// compared to a centralized k-means", demo paper Sec. III.C).
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// InitMethod selects how initial centroids are chosen.
type InitMethod int

const (
	// InitRandom picks k distinct data points uniformly at random — the
	// paper's "chosen at random" default.
	InitRandom InitMethod = iota
	// InitKMeansPP uses the k-means++ D² weighting.
	InitKMeansPP
	// InitProvided uses Options.Initial as given.
	InitProvided
)

// EmptyPolicy selects the reaction to a cluster losing all its members.
type EmptyPolicy int

const (
	// EmptyKeep keeps the previous centroid (Chiaroscuro's behaviour:
	// a perturbed mean over zero members is pure noise, so the core
	// protocol keeps the old centroid instead).
	EmptyKeep EmptyPolicy = iota
	// EmptyReseed moves the centroid onto the point farthest from its
	// assigned centroid.
	EmptyReseed
)

// Options configures a run.
type Options struct {
	K         int
	MaxIter   int
	Tolerance float64 // stop when max centroid displacement (L2) <= Tolerance
	Init      InitMethod
	Initial   [][]float64 // used by InitProvided
	Empty     EmptyPolicy
	Seed      int64
}

// Result is the outcome of a run.
type Result struct {
	Centroids   [][]float64
	Assignments []int
	Inertia     float64 // within-cluster sum of squared distances
	Iterations  int
	Converged   bool
	// InertiaTrace[i] is the inertia after iteration i+1 (useful for the
	// demo's per-iteration quality graphs).
	InertiaTrace []float64
	// CentroidTrace[i] is a deep copy of the centroids after iteration
	// i+1.
	CentroidTrace [][][]float64
}

// Common errors.
var (
	ErrNoData      = errors.New("kmeans: no data")
	ErrBadK        = errors.New("kmeans: k must be in [1, len(data)]")
	ErrDimMismatch = errors.New("kmeans: inconsistent dimensions")
)

// Run executes Lloyd's algorithm.
func Run(data [][]float64, opt Options) (*Result, error) {
	if len(data) == 0 {
		return nil, ErrNoData
	}
	dim := len(data[0])
	for i, p := range data {
		if len(p) != dim {
			return nil, fmt.Errorf("%w: point %d has dim %d, want %d", ErrDimMismatch, i, len(p), dim)
		}
	}
	if opt.K < 1 || opt.K > len(data) {
		return nil, fmt.Errorf("%w: k=%d, n=%d", ErrBadK, opt.K, len(data))
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 100
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	centroids, err := initialize(data, opt, rng)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	assign := make([]int, len(data))
	for iter := 0; iter < opt.MaxIter; iter++ {
		// Assignment step.
		inertia := AssignAll(data, centroids, assign)
		// Computation step.
		next, counts := Means(data, assign, opt.K, dim)
		for j := range next {
			if counts[j] > 0 {
				continue
			}
			switch opt.Empty {
			case EmptyReseed:
				far := farthestPoint(data, centroids, assign)
				copy(next[j], data[far])
			default:
				copy(next[j], centroids[j])
			}
		}
		// Convergence step.
		moved := maxDisplacement(centroids, next)
		centroids = next
		res.Iterations = iter + 1
		res.InertiaTrace = append(res.InertiaTrace, inertia)
		res.CentroidTrace = append(res.CentroidTrace, deepCopy(centroids))
		if moved <= opt.Tolerance {
			res.Converged = true
			break
		}
	}
	res.Inertia = AssignAll(data, centroids, assign)
	res.Centroids = centroids
	res.Assignments = assign
	return res, nil
}

// AssignAll assigns every point to its closest centroid, filling assign
// (which must have len(data) entries) and returning the total inertia.
func AssignAll(data, centroids [][]float64, assign []int) float64 {
	var inertia float64
	for i, p := range data {
		best, bestSq := 0, math.Inf(1)
		for j, c := range centroids {
			sq := sqDist(p, c)
			if sq < bestSq {
				best, bestSq = j, sq
			}
		}
		assign[i] = best
		inertia += bestSq
	}
	return inertia
}

// Means computes per-cluster mean vectors and member counts.
func Means(data [][]float64, assign []int, k, dim int) ([][]float64, []int) {
	sums := make([][]float64, k)
	for j := range sums {
		sums[j] = make([]float64, dim)
	}
	counts := make([]int, k)
	for i, p := range data {
		j := assign[i]
		counts[j]++
		for t, v := range p {
			sums[j][t] += v
		}
	}
	for j := range sums {
		if counts[j] == 0 {
			continue
		}
		inv := 1 / float64(counts[j])
		for t := range sums[j] {
			sums[j][t] *= inv
		}
	}
	return sums, counts
}

func initialize(data [][]float64, opt Options, rng *rand.Rand) ([][]float64, error) {
	switch opt.Init {
	case InitProvided:
		if len(opt.Initial) != opt.K {
			return nil, fmt.Errorf("kmeans: provided %d initial centroids, want %d", len(opt.Initial), opt.K)
		}
		for i, c := range opt.Initial {
			if len(c) != len(data[0]) {
				return nil, fmt.Errorf("%w: initial centroid %d", ErrDimMismatch, i)
			}
		}
		return deepCopy(opt.Initial), nil
	case InitKMeansPP:
		return kmeansPP(data, opt.K, rng), nil
	default:
		idx := rng.Perm(len(data))[:opt.K]
		out := make([][]float64, opt.K)
		for i, id := range idx {
			out[i] = append([]float64(nil), data[id]...)
		}
		return out, nil
	}
}

func kmeansPP(data [][]float64, k int, rng *rand.Rand) [][]float64 {
	out := make([][]float64, 0, k)
	first := rng.Intn(len(data))
	out = append(out, append([]float64(nil), data[first]...))
	d2 := make([]float64, len(data))
	for len(out) < k {
		var total float64
		for i, p := range data {
			best := math.Inf(1)
			for _, c := range out {
				if sq := sqDist(p, c); sq < best {
					best = sq
				}
			}
			d2[i] = best
			total += best
		}
		if total == 0 {
			// All remaining points coincide with centroids; fill randomly.
			out = append(out, append([]float64(nil), data[rng.Intn(len(data))]...))
			continue
		}
		r := rng.Float64() * total
		acc := 0.0
		pick := len(data) - 1
		for i, w := range d2 {
			acc += w
			if acc >= r {
				pick = i
				break
			}
		}
		out = append(out, append([]float64(nil), data[pick]...))
	}
	return out
}

func farthestPoint(data, centroids [][]float64, assign []int) int {
	worst, worstSq := 0, -1.0
	for i, p := range data {
		sq := sqDist(p, centroids[assign[i]])
		if sq > worstSq {
			worst, worstSq = i, sq
		}
	}
	return worst
}

func maxDisplacement(a, b [][]float64) float64 {
	var max float64
	for j := range a {
		d := math.Sqrt(sqDist(a[j], b[j]))
		if d > max {
			max = d
		}
	}
	return max
}

func sqDist(a, b []float64) float64 {
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return acc
}

func deepCopy(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i := range m {
		out[i] = append([]float64(nil), m[i]...)
	}
	return out
}
