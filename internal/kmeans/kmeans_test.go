package kmeans

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// threeBlobs builds an obviously separable dataset: three tight clusters
// around (0,0), (5,5), (10,0).
func threeBlobs(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {5, 5}, {10, 0}}
	data := make([][]float64, n)
	labels := make([]int, n)
	for i := range data {
		c := i % 3
		labels[i] = c
		data[i] = []float64{
			centers[c][0] + 0.2*rng.NormFloat64(),
			centers[c][1] + 0.2*rng.NormFloat64(),
		}
	}
	return data, labels
}

func TestRunRecoversBlobs(t *testing.T) {
	data, labels := threeBlobs(150, 1)
	res, err := Run(data, Options{K: 3, MaxIter: 50, Tolerance: 1e-9, Init: InitKMeansPP, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge on trivially separable data")
	}
	// Each true cluster must map to exactly one predicted cluster.
	mapping := map[int]int{}
	for i, l := range labels {
		if prev, ok := mapping[l]; ok {
			if prev != res.Assignments[i] {
				t.Fatalf("true cluster %d split across predicted clusters", l)
			}
		} else {
			mapping[l] = res.Assignments[i]
		}
	}
	if len(mapping) != 3 {
		t.Fatalf("mapping = %v", mapping)
	}
	if res.Inertia > 30 {
		t.Fatalf("inertia = %v, too high for tight blobs", res.Inertia)
	}
}

func TestInertiaTraceNonIncreasing(t *testing.T) {
	data, _ := threeBlobs(120, 3)
	res, err := Run(data, Options{K: 3, MaxIter: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.InertiaTrace); i++ {
		if res.InertiaTrace[i] > res.InertiaTrace[i-1]+1e-9 {
			t.Fatalf("inertia increased at iteration %d: %v", i, res.InertiaTrace)
		}
	}
}

func TestProvidedInit(t *testing.T) {
	data, _ := threeBlobs(30, 5)
	initial := [][]float64{{0, 0}, {5, 5}, {10, 0}}
	res, err := Run(data, Options{K: 3, Init: InitProvided, Initial: initial, MaxIter: 10, Tolerance: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("perfect init should converge immediately")
	}
	if res.Iterations > 3 {
		t.Fatalf("took %d iterations from a perfect init", res.Iterations)
	}
	// Provided centroids must not be mutated.
	if initial[0][0] != 0 || initial[1][0] != 5 {
		t.Fatal("initial centroids were mutated")
	}
}

func TestProvidedInitValidation(t *testing.T) {
	data, _ := threeBlobs(10, 6)
	if _, err := Run(data, Options{K: 3, Init: InitProvided, Initial: [][]float64{{0, 0}}}); err == nil {
		t.Fatal("wrong number of provided centroids should error")
	}
	if _, err := Run(data, Options{K: 1, Init: InitProvided, Initial: [][]float64{{0}}}); !errors.Is(err, ErrDimMismatch) {
		t.Fatal("provided centroid dim mismatch should error")
	}
}

func TestInputValidation(t *testing.T) {
	if _, err := Run(nil, Options{K: 1}); !errors.Is(err, ErrNoData) {
		t.Fatalf("err = %v", err)
	}
	data := [][]float64{{1, 2}, {3, 4}}
	if _, err := Run(data, Options{K: 0}); !errors.Is(err, ErrBadK) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Run(data, Options{K: 3}); !errors.Is(err, ErrBadK) {
		t.Fatalf("err = %v", err)
	}
	ragged := [][]float64{{1, 2}, {3}}
	if _, err := Run(ragged, Options{K: 1}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestKEqualsN(t *testing.T) {
	data := [][]float64{{0, 0}, {1, 1}, {2, 2}}
	res, err := Run(data, Options{K: 3, MaxIter: 10, Tolerance: 1e-9, Init: InitKMeansPP, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-12 {
		t.Fatalf("k=n should give zero inertia, got %v", res.Inertia)
	}
}

func TestKOne(t *testing.T) {
	data := [][]float64{{0, 0}, {2, 0}, {4, 0}}
	res, err := Run(data, Options{K: 1, MaxIter: 10, Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centroids[0][0]-2) > 1e-9 || math.Abs(res.Centroids[0][1]) > 1e-9 {
		t.Fatalf("k=1 centroid = %v, want the mean (2,0)", res.Centroids[0])
	}
}

func TestEmptyClusterKeepPolicy(t *testing.T) {
	// Two coincident points + far centroid: one cluster will be empty.
	data := [][]float64{{0, 0}, {0, 0}, {0, 0}}
	initial := [][]float64{{0, 0}, {100, 100}}
	res, err := Run(data, Options{K: 2, Init: InitProvided, Initial: initial, MaxIter: 5, Empty: EmptyKeep})
	if err != nil {
		t.Fatal(err)
	}
	// The empty cluster's centroid must remain where it was.
	if res.Centroids[1][0] != 100 || res.Centroids[1][1] != 100 {
		t.Fatalf("empty cluster centroid moved: %v", res.Centroids[1])
	}
}

func TestEmptyClusterReseedPolicy(t *testing.T) {
	data := [][]float64{{0, 0}, {0.1, 0}, {10, 10}}
	initial := [][]float64{{0, 0}, {100, 100}}
	res, err := Run(data, Options{K: 2, Init: InitProvided, Initial: initial, MaxIter: 10, Tolerance: 1e-9, Empty: EmptyReseed})
	if err != nil {
		t.Fatal(err)
	}
	// Reseeding should move centroid 1 onto the farthest point (10,10).
	if res.Centroids[1][0] != 10 || res.Centroids[1][1] != 10 {
		t.Fatalf("reseed centroid = %v, want (10,10)", res.Centroids[1])
	}
}

func TestDeterminismGivenSeed(t *testing.T) {
	data, _ := threeBlobs(60, 8)
	a, _ := Run(data, Options{K: 3, Seed: 42, MaxIter: 20})
	b, _ := Run(data, Options{K: 3, Seed: 42, MaxIter: 20})
	if a.Inertia != b.Inertia {
		t.Fatalf("same seed, different inertia: %v vs %v", a.Inertia, b.Inertia)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed, different assignments")
		}
	}
}

func TestKMeansPPBeatsRandomOnAverage(t *testing.T) {
	// k-means++ should rarely be (much) worse than random init. Compare
	// averaged inertia over a few seeds.
	data, _ := threeBlobs(90, 9)
	var ppTotal, rndTotal float64
	for seed := int64(0); seed < 5; seed++ {
		pp, err := Run(data, Options{K: 3, Init: InitKMeansPP, Seed: seed, MaxIter: 30})
		if err != nil {
			t.Fatal(err)
		}
		rnd, err := Run(data, Options{K: 3, Init: InitRandom, Seed: seed, MaxIter: 30})
		if err != nil {
			t.Fatal(err)
		}
		ppTotal += pp.Inertia
		rndTotal += rnd.Inertia
	}
	if ppTotal > rndTotal*1.5 {
		t.Fatalf("k-means++ much worse than random: %v vs %v", ppTotal, rndTotal)
	}
}

func TestAssignAllAndMeans(t *testing.T) {
	data := [][]float64{{0}, {1}, {10}, {11}}
	centroids := [][]float64{{0.5}, {10.5}}
	assign := make([]int, len(data))
	inertia := AssignAll(data, centroids, assign)
	want := []int{0, 0, 1, 1}
	for i := range want {
		if assign[i] != want[i] {
			t.Fatalf("assign = %v", assign)
		}
	}
	if math.Abs(inertia-1.0) > 1e-12 {
		t.Fatalf("inertia = %v, want 1.0", inertia)
	}
	means, counts := Means(data, assign, 2, 1)
	if means[0][0] != 0.5 || means[1][0] != 10.5 {
		t.Fatalf("means = %v", means)
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestMeansWithEmptyCluster(t *testing.T) {
	data := [][]float64{{1}, {3}}
	assign := []int{0, 0}
	means, counts := Means(data, assign, 2, 1)
	if counts[1] != 0 {
		t.Fatalf("counts = %v", counts)
	}
	if means[1][0] != 0 {
		t.Fatalf("empty mean should be zero vector, got %v", means[1])
	}
	if means[0][0] != 2 {
		t.Fatalf("mean = %v", means[0])
	}
}

func TestCentroidTraceRecorded(t *testing.T) {
	data, _ := threeBlobs(30, 10)
	res, err := Run(data, Options{K: 3, MaxIter: 7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CentroidTrace) != res.Iterations {
		t.Fatalf("trace length %d != iterations %d", len(res.CentroidTrace), res.Iterations)
	}
	// Trace entries are deep copies: mutating one must not affect final.
	res.CentroidTrace[0][0][0] = 12345
	if res.Centroids[0][0] == 12345 {
		t.Fatal("trace aliases final centroids")
	}
}

func TestMaxIterDefaultApplied(t *testing.T) {
	data, _ := threeBlobs(30, 11)
	res, err := Run(data, Options{K: 3, Seed: 1}) // MaxIter 0 -> 100
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 1 || res.Iterations > 100 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}
