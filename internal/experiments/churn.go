package experiments

import (
	"fmt"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/datasets"
)

// E8ChurnResilience reproduces the fault-tolerance side of the paper's
// challenge statement (Sec. I: "massive distribution of the execution
// over possibly faulty computing nodes"): the protocol must degrade
// gracefully, not fail, when nodes crash and rejoin mid-run.
func E8ChurnResilience(sc Scale) (*Table, error) {
	ds, err := datasets.CER(datasets.CEROptions{N: sc.Population, Dim: 24, Seed: 41})
	if err != nil {
		return nil, err
	}
	ds.NormalizeTo01()
	t := &Table{
		ID:    "E8",
		Title: "Fault tolerance — quality under per-cycle crash probability (rejoin prob 0.3, state kept)",
		Header: []string{"crash prob / cycle", "crashes", "messages dropped",
			"decrypt failures", "final noise RMSE", "inertia ratio"},
	}
	for _, crash := range []float64{0, 0.01, 0.03, 0.05} {
		pt, tr, err := runQualityPointWithTrace(ds, 5, core.Params{
			Epsilon:         scaledEps(1.0, sc.Population),
			Iterations:      sc.Iterations,
			Seed:            41,
			ChurnCrashProb:  crash,
			ChurnRejoinProb: 0.3,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", crash),
			d(tr.NetStats.Crashes),
			d(tr.NetStats.MessagesDropped),
			d(tr.DecryptFailures),
			f4(tr.Iterations[len(tr.Iterations)-1].NoiseRMSE),
			f3(pt.inertiaRatio),
		})
	}
	t.Notes = append(t.Notes,
		"crashes lose in-flight gossip mass and may delay decryption quorums, but push-sum estimates are self-normalizing weighted averages, so quality degrades smoothly instead of collapsing — the property that lets Chiaroscuro avoid non-fault-tolerant cryptographic alternatives (Sec. I).")
	return t, nil
}
