package experiments

import "fmt"

// Runner is one experiment entry point.
type Runner func(Scale) (*Table, error)

// Registry lists every experiment in DESIGN.md order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"E1", E1CentroidEvolution},
		{"E2", E2NoiseImpact},
		{"E3", E3ProfileSearch},
		{"E4", E4QualityVsPrivacy},
		{"E5a", E5CryptoCosts},
		{"E5b", E5CostProjection},
		{"E6", E6GossipConvergence},
		{"E7", E7HeuristicsAblation},
		{"E8", E8ChurnResilience},
		{"E9", E9NoisePopulationScaling},
		{"E10", E10GossipMessageBudget},
		{"E11", E11FaultInjection},
		{"E13", E13StreamingRecluster},
	}
}

// ByID resolves one experiment.
func ByID(id string) (Runner, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}
