package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// tiny is an even smaller scale than Quick, for test speed.
var tiny = Scale{Population: 100, Iterations: 3, Repeats: 1}

func checkTable(t *testing.T, tab *Table, wantID string) {
	t.Helper()
	if tab.ID != wantID {
		t.Fatalf("table id = %q, want %q", tab.ID, wantID)
	}
	if tab.Title == "" {
		t.Fatal("empty title")
	}
	if len(tab.Header) < 2 {
		t.Fatalf("header too small: %v", tab.Header)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %d has %d cells, header has %d", i, len(row), len(tab.Header))
		}
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| --- |") && !strings.Contains(md, "--- |") {
		t.Fatal("markdown separator missing")
	}
	if !strings.Contains(md, tab.Title) {
		t.Fatal("markdown missing title")
	}
}

func TestE1(t *testing.T) {
	tab, err := E1CentroidEvolution(tiny)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, "E1")
	if len(tab.Rows) != tiny.Iterations {
		t.Fatalf("rows = %d, want one per iteration", len(tab.Rows))
	}
	// Every assignment cell must name a centroid c0..c3.
	for _, row := range tab.Rows {
		for _, cell := range row[2:] {
			if !strings.HasPrefix(cell, "c") {
				t.Fatalf("assignment cell %q", cell)
			}
		}
	}
}

func TestE2(t *testing.T) {
	tab, err := E2NoiseImpact(tiny)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, "E2")
	// Column-wise: noise for ε=0.1 must exceed noise for ε=2 on every
	// iteration row (columns 1 and 4).
	for _, row := range tab.Rows {
		lo, err1 := strconv.ParseFloat(row[1], 64)
		hi, err2 := strconv.ParseFloat(row[4], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparsable cells in %v", row)
		}
		if lo <= hi {
			t.Fatalf("ε=0.1 noise (%v) not above ε=2 noise (%v)", lo, hi)
		}
	}
}

func TestE3(t *testing.T) {
	tab, err := E3ProfileSearch(tiny)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, "E3")
}

func TestE4(t *testing.T) {
	sc := tiny
	tab, err := E4QualityVsPrivacy(sc)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, "E4")
	// 2 datasets × 4 ε × 2 variants.
	if len(tab.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		ratio, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("ratio cell %q", row[3])
		}
		if ratio < 0.3 || ratio > 500 {
			t.Fatalf("implausible inertia ratio %v in %v", ratio, row)
		}
	}
}

func TestE5(t *testing.T) {
	tab, err := E5CryptoCosts(tiny)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, "E5a")
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want one per key size", len(tab.Rows))
	}
	proj, err := E5CostProjection(tiny)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, proj, "E5b")
}

func TestE6(t *testing.T) {
	tab, err := E6GossipConvergence(tiny)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, "E6")
	// Error must decrease across the row (5 -> 40 rounds).
	for _, row := range tab.Rows {
		first, _ := strconv.ParseFloat(row[1], 64)
		last, _ := strconv.ParseFloat(row[len(row)-1], 64)
		if last >= first {
			t.Fatalf("error did not decay: %v", row)
		}
	}
}

func TestE7(t *testing.T) {
	tab, err := E7HeuristicsAblation(tiny)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, "E7")
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d, want 4 strategies × 3 smoothings", len(tab.Rows))
	}
}

func TestE8(t *testing.T) {
	tab, err := E8ChurnResilience(tiny)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, "E8")
	// First row is churn-free: zero crashes.
	if tab.Rows[0][1] != "0" {
		t.Fatalf("churn-free row reports crashes: %v", tab.Rows[0])
	}
	// Last row (5% churn) must report crashes.
	if tab.Rows[len(tab.Rows)-1][1] == "0" {
		t.Fatalf("5%% churn row reports no crashes: %v", tab.Rows[len(tab.Rows)-1])
	}
}

func TestE9(t *testing.T) {
	tab, err := E9NoisePopulationScaling(tiny)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, "E9")
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Noise RMSE must stay within one order of magnitude across
	// populations (that is the point of the scaling rule).
	lo, hi := 1e9, 0.0
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("cell %q", row[2])
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > lo*10 {
		t.Fatalf("noise RMSE varies too much across populations: [%v, %v]", lo, hi)
	}
}

func TestE10(t *testing.T) {
	tab, err := E10GossipMessageBudget(tiny)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, "E10")
	// The 30-round run must aggregate more faithfully than the 6-round
	// run (aggregation distortion column).
	first, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	last, _ := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][2], 64)
	if last >= first {
		t.Fatalf("30 rounds (%v) not better than 6 rounds (%v)", last, first)
	}
}

func TestRegistryAndByID(t *testing.T) {
	reg := Registry()
	if len(reg) != 13 {
		t.Fatalf("registry has %d entries", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if _, err := ByID(e.ID); err != nil {
			t.Fatalf("ByID(%s): %v", e.ID, err)
		}
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestMarkdownEscapesNothingButRenders(t *testing.T) {
	tab := &Table{
		ID:     "EX",
		Title:  "title",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"note"},
	}
	md := tab.Markdown()
	for _, want := range []string{"### EX — title", "| a | b |", "| 1 | 2 |", "> note"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestLevelInit(t *testing.T) {
	init := levelInit(4, 3)
	if len(init) != 4 || len(init[0]) != 3 {
		t.Fatalf("shape: %v", init)
	}
	if init[0][0] != 0.125 || init[3][2] != 0.875 {
		t.Fatalf("levels: %v", init)
	}
}

func TestScaledEps(t *testing.T) {
	if got := scaledEps(1, 1000); got != 1000 {
		t.Fatalf("scaledEps = %v", got)
	}
}

func TestE11(t *testing.T) {
	tab, err := E11FaultInjection(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 14 {
		t.Fatalf("want 14 scenario rows, got %d", len(tab.Rows))
	}
	// The fault-free baseline must inject nothing and keep everyone live.
	base := tab.Rows[0]
	if base[1] != "0" || base[2] != "0" || base[3] != "0" || base[4] != "0" {
		t.Fatalf("fault-free row injected faults: %v", base)
	}
	if base[7] != "1.00" {
		t.Fatalf("fault-free liveness %q, want 1.00", base[7])
	}
	// Link-fault scenarios must actually drop messages, outages must
	// crash nodes, and byzantine malform must be rejected on the wire.
	if tab.Rows[1][1] == "0" {
		t.Fatalf("loss scenario dropped nothing: %v", tab.Rows[1])
	}
	if tab.Rows[3][4] == "0" {
		t.Fatalf("outage scenario crashed nobody: %v", tab.Rows[3])
	}
	if tab.Rows[7][6] == "0" {
		t.Fatalf("malform scenario rejected nothing: %v", tab.Rows[7])
	}
	// Byzantine-dealer rows: the clean-dealer baseline names no expelled
	// dealer, each fault row names exactly the scripted one (dealer id =
	// node id + 1), and every one keeps full liveness and the baseline's
	// quality — a corrupted ceremony restarts, the clustering never sees it.
	dealerRows := tab.Rows[10:]
	if strings.Contains(dealerRows[0][0], "expelled") {
		t.Fatalf("clean-dealer row expelled someone: %v", dealerRows[0])
	}
	for i, want := range []string{"dealer 2", "dealer 3", "dealer 4"} {
		row := dealerRows[i+1]
		if !strings.Contains(row[0], "expelled "+want) {
			t.Fatalf("dealer row %q did not expel %s", row[0], want)
		}
		if row[7] != "1.00" {
			t.Fatalf("dealer row %q liveness %q, want 1.00", row[0], row[7])
		}
		if row[8] != dealerRows[0][8] || row[9] != dealerRows[0][9] {
			t.Fatalf("dealer row %q quality (%s, %s) diverges from clean-dealer baseline (%s, %s)",
				row[0], row[8], row[9], dealerRows[0][8], dealerRows[0][9])
		}
	}
	// Replaying E11 must reproduce the identical table (deterministic
	// fault trajectories).
	again, err := E11FaultInjection(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		for j := range tab.Rows[i] {
			if tab.Rows[i][j] != again.Rows[i][j] {
				t.Fatalf("row %d col %d not reproducible: %q vs %q", i, j, tab.Rows[i][j], again.Rows[i][j])
			}
		}
	}
}

func TestE13(t *testing.T) {
	tab, err := E13StreamingRecluster(tiny)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, "E13")
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want one per budget strategy", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		warm, _ := strconv.Atoi(row[4])
		cold, _ := strconv.Atoi(row[5])
		if warm <= 0 || cold <= 0 {
			t.Fatalf("strategy %s: iteration counts %q / %q not positive", row[0], row[4], row[5])
		}
		// Warm-starting must not cost iterations on the drifting-blob
		// stream (the savings claim E13 exists to table).
		if warm > cold {
			t.Fatalf("strategy %s: warm %d iterations exceeds cold %d", row[0], warm, cold)
		}
	}
	// The threshold strategy must actually skip on this stream (its row
	// is what demonstrates budget savings), and spend less than uniform.
	thr := tab.Rows[2]
	if !strings.Contains(thr[1], "+") || strings.HasSuffix(thr[1], "+0") {
		t.Fatalf("threshold strategy skipped no windows: run+skip %q", thr[1])
	}
	// Deterministic: replaying reproduces the identical table.
	again, err := E13StreamingRecluster(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		for j := range tab.Rows[i] {
			if tab.Rows[i][j] != again.Rows[i][j] {
				t.Fatalf("row %d col %d not reproducible: %q vs %q", i, j, tab.Rows[i][j], again.Rows[i][j])
			}
		}
	}
}
