package experiments

import (
	"fmt"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/kmeans"
	"chiaroscuro/internal/quality"
)

// qualityPoint runs Chiaroscuro and the centralized baseline from the
// same public init and reports the comparison.
type qualityPoint struct {
	inertiaRatio float64
	ari          float64
	noiseRMSE    float64 // final iteration
}

func runQualityPoint(ds *datasets.Dataset, k int, params core.Params) (*qualityPoint, error) {
	pt, _, err := runQualityPointWithTrace(ds, k, params)
	return pt, err
}

func runQualityPointWithTrace(ds *datasets.Dataset, k int, params core.Params) (*qualityPoint, *core.Trace, error) {
	init := levelInit(k, ds.Dim)
	params.K = k
	params.InitialCentroids = init
	tr, err := core.Run(ds.Series, params)
	if err != nil {
		return nil, nil, err
	}
	base, err := kmeans.Run(ds.Series, kmeans.Options{
		K: k, MaxIter: 40, Tolerance: 1e-6,
		Init: kmeans.InitProvided, Initial: init,
	})
	if err != nil {
		return nil, nil, err
	}
	pt := &qualityPoint{noiseRMSE: tr.Iterations[len(tr.Iterations)-1].NoiseRMSE}
	if base.Inertia > 0 {
		pt.inertiaRatio = tr.Inertia / base.Inertia
	} else {
		pt.inertiaRatio = 1
	}
	pt.ari, err = quality.ARI(tr.Assignments, base.Assignments)
	if err != nil {
		return nil, nil, err
	}
	return pt, tr, nil
}

// E4QualityVsPrivacy reproduces the demo's central claim (Sec. I claim 2
// and the "privacy vs quality" trade-off): clustering quality relative to
// a centralized k-means across privacy levels, with the heuristics on and
// off, on both use cases.
func E4QualityVsPrivacy(sc Scale) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Quality vs privacy — Chiaroscuro relative to centralized k-means (same public init)",
		Header: []string{"dataset", "ε (target@10^6)", "heuristics",
			"inertia ratio", "ARI vs centralized", "final noise RMSE"},
	}
	type variant struct {
		name string
		mut  func(*core.Params)
	}
	variants := []variant{
		{"off", func(p *core.Params) {}},
		{"on (geo-incr + smoothing)", func(p *core.Params) {
			p.Strategy = strategyByNameOrDie("geo-increasing")
			p.Smoothing = core.SmoothingSpec{Method: core.SmoothingMovingAverage, Window: 3}
		}},
	}
	for _, dsName := range []string{"cer", "tumor"} {
		for _, epsT := range []float64{0.1, 0.5, 1, 2} {
			for _, v := range variants {
				var ratioSum, ariSum, noiseSum float64
				for rep := 0; rep < sc.Repeats; rep++ {
					seed := int64(100*rep + 17)
					ds, err := datasets.ByName(dsName, sc.Population, seed)
					if err != nil {
						return nil, err
					}
					ds.NormalizeTo01()
					params := core.Params{
						Epsilon:    scaledEps(epsT, sc.Population),
						Iterations: sc.Iterations,
						Seed:       seed,
					}
					v.mut(&params)
					k := 5
					if dsName == "tumor" {
						k = 4
					}
					pt, err := runQualityPoint(ds, k, params)
					if err != nil {
						return nil, err
					}
					ratioSum += pt.inertiaRatio
					ariSum += pt.ari
					noiseSum += pt.noiseRMSE
				}
				n := float64(sc.Repeats)
				t.Rows = append(t.Rows, []string{
					dsName, fmt.Sprintf("%.1f", epsT), v.name,
					f3(ratioSum / n), f3(ariSum / n), f4(noiseSum / n),
				})
			}
		}
	}
	t.Notes = append(t.Notes,
		"inertia ratio 1.0 = centralized quality (the paper's claim 2: \"similar to the quality of centralized clustering results\"); quality approaches parity as ε grows and the heuristics consistently improve the noisy regimes.",
		fmt.Sprintf("averaged over %d seeds; ε values are target levels for a 10^6-device deployment, rescaled for the %d-node simulation per Sec. III.B(4).", sc.Repeats, sc.Population))
	return t, nil
}

// E7HeuristicsAblation isolates the two quality-enhancing heuristic
// families of Sec. II.B: budget-distribution strategy × smoothing.
func E7HeuristicsAblation(sc Scale) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "Quality-enhancing heuristics ablation (CER-like, ε_target=0.2, k=5)",
		Header: []string{"budget strategy", "smoothing",
			"inertia ratio", "final noise RMSE"},
	}
	strategies := []string{"uniform", "geo-increasing", "geo-decreasing", "final-boost"}
	smoothings := []struct {
		name string
		spec core.SmoothingSpec
	}{
		{"none", core.SmoothingSpec{}},
		{"moving-average(3)", core.SmoothingSpec{Method: core.SmoothingMovingAverage, Window: 3}},
		{"exponential(0.35)", core.SmoothingSpec{Method: core.SmoothingExponential, Alpha: 0.35}},
	}
	for _, strat := range strategies {
		for _, sm := range smoothings {
			var ratioSum, noiseSum float64
			for rep := 0; rep < sc.Repeats; rep++ {
				seed := int64(7*rep + 29)
				ds, err := datasets.CER(datasets.CEROptions{N: sc.Population, Dim: 24, Seed: seed})
				if err != nil {
					return nil, err
				}
				ds.NormalizeTo01()
				pt, err := runQualityPoint(ds, 5, core.Params{
					Epsilon:    scaledEps(0.2, sc.Population),
					Iterations: sc.Iterations,
					Seed:       seed,
					Strategy:   strategyByNameOrDie(strat),
					Smoothing:  sm.spec,
				})
				if err != nil {
					return nil, err
				}
				ratioSum += pt.inertiaRatio
				noiseSum += pt.noiseRMSE
			}
			n := float64(sc.Repeats)
			t.Rows = append(t.Rows, []string{strat, sm.name, f3(ratioSum / n), f4(noiseSum / n)})
		}
	}
	t.Notes = append(t.Notes,
		"both heuristic families act as the paper describes: smoothing cuts the per-centroid noise, and non-uniform budget schedules trade intermediate fidelity for final fidelity.")
	return t, nil
}

// E9NoisePopulationScaling verifies Sec. III.B point 4: scaling ε with
// 1/population keeps the noise-to-signal ratio (and hence quality)
// unchanged, which is what justifies demonstrating with 10^3 instead of
// 10^6 devices.
func E9NoisePopulationScaling(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  "Population scaling at constant noise/population ratio (CER-like, ε_target=1 @ 10^6 devices)",
		Header: []string{"simulated population", "ε_sim", "final noise RMSE", "inertia ratio"},
	}
	pops := []int{sc.Population / 2, sc.Population, sc.Population * 2}
	for _, n := range pops {
		ds, err := datasets.CER(datasets.CEROptions{N: n, Dim: 24, Seed: 53})
		if err != nil {
			return nil, err
		}
		ds.NormalizeTo01()
		eps := scaledEps(1.0, n)
		pt, err := runQualityPoint(ds, 5, core.Params{
			Epsilon:    eps,
			Iterations: sc.Iterations,
			Seed:       53,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{d(n), fmt.Sprintf("%.0f", eps), f4(pt.noiseRMSE), f3(pt.inertiaRatio)})
	}
	t.Notes = append(t.Notes,
		"the noise impact stays of the same order across population sizes when ε_sim · population is held constant — the demo's justification for simulating 10^3 instead of 10^6 participants.")
	return t, nil
}
