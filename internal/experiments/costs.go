package experiments

import (
	"fmt"
	"time"

	"chiaroscuro/internal/costmodel"
)

// E5CryptoCosts reproduces the demonstration's cost methodology
// (Sec. III.B): measure the real per-operation Damgård–Jurik timings on
// this machine ("actual average measures performed beforehand") and
// project them to full deployments.
func E5CryptoCosts(sc Scale) (*Table, error) {
	reps := 4 * sc.Repeats
	t := &Table{
		ID:    "E5a",
		Title: "Measured Damgård–Jurik per-operation times (this machine, s=1)",
		Header: []string{"key bits", "encrypt", "encrypt (fast)", "hom. add", "scalar mul",
			"partial dec", "partial dec (fast)", "combine", "combine (batched)", "ciphertext"},
	}
	keyBits := []int{512, 1024, 2048}
	profiles := map[int]*costmodel.CryptoProfile{}
	for _, bits := range keyBits {
		p, err := costmodel.MeasureProfile(bits, 1, 8, 5, reps)
		if err != nil {
			return nil, err
		}
		profiles[bits] = p
		t.Rows = append(t.Rows, []string{
			d(bits),
			p.Encrypt.Round(time.Microsecond).String(),
			p.FastEncrypt.Round(time.Microsecond).String(),
			p.Add.Round(time.Microsecond).String(),
			p.ScalarMul.Round(time.Microsecond).String(),
			p.PartialDecrypt.Round(time.Microsecond).String(),
			p.FastPartialDecrypt.Round(time.Microsecond).String(),
			p.Combine.Round(time.Microsecond).String(),
			p.FastCombine.Round(time.Microsecond).String(),
			fmt.Sprintf("%d B", p.CiphertextBytes),
		})
	}
	t.Notes = append(t.Notes,
		"these are the \"encryption/decryption/addition times\" the demo GUI scales up from (Sec. III.B point 2); threshold configuration 5-of-8.",
		"\"fast\" columns are the precomputed paths of docs/CRYPTO.md: fixed-base table encryption, CRT partial decryption, batched multi-exponentiation combine — decrypt- resp. bit-identical to the naive reference.")
	return t, nil
}

// E5CostProjection projects the measured profiles onto the full protocol
// (the demo's per-participant cost displays).
func E5CostProjection(sc Scale) (*Table, error) {
	reps := 4 * sc.Repeats
	t := &Table{
		ID:    "E5b",
		Title: "Projected per-participant cost of a full run (k=5, 24 samples, 8 iterations, 20 gossip rounds, threshold 10)",
		Header: []string{"key bits", "crypto CPU / participant", "crypto CPU (fast path)",
			"network / participant", "messages / participant",
			"collaborative-decryption latency", "latency (fast path)"},
	}
	w := costmodel.Workload{
		Participants:     1000000,
		K:                5,
		Dim:              24,
		Iterations:       8,
		GossipRounds:     20,
		DecryptThreshold: 10,
	}
	for _, bits := range []int{512, 1024, 2048} {
		p, err := costmodel.MeasureProfile(bits, 1, 8, 5, reps)
		if err != nil {
			return nil, err
		}
		r, err := costmodel.Project(p, w)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			d(bits),
			r.CPUTime.Round(time.Millisecond).String(),
			r.CPUTimeFast.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f MB", float64(r.BytesSent)/1e6),
			d(r.MessagesSent),
			r.DecryptLatency.Round(time.Millisecond).String(),
			r.DecryptLatencyFast.Round(time.Millisecond).String(),
		})
	}
	t.Notes = append(t.Notes,
		"per-participant costs are independent of the population size (they depend on k, d, rounds and the decryption threshold) — the scalability property behind the paper's claim 3 (\"costs remain affordable given the resources of today's personal devices\").")
	return t, nil
}
