package experiments

import (
	"errors"
	"fmt"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/costmodel"
)

// The E5 demo workload (Sec. III.B cost displays), shared by E5a's
// packing-factor column and E5b's projection so the two tables cannot
// drift apart.
const (
	e5Participants = 1000000
	e5K            = 5
	e5Dim          = 24
	e5Iterations   = 8
	e5GossipRounds = 20
	e5Threshold    = 10
)

// e5DemoParams is the demo workload as core Params, used to derive the
// slot-packing factor per key size from the same headroom rule a packed
// run applies.
func e5DemoParams() core.Params {
	return core.Params{K: e5K, Epsilon: 1, Iterations: e5Iterations, GossipRounds: e5GossipRounds}
}

// e5PackedSlots is the packing factor at the given key size (s=1: the
// plaintext space is the key modulus) for the demo workload. Packing
// being infeasible at a small key is an expected outcome and projects
// as the unpacked protocol (1 slot); any other failure is a real
// configuration error and propagates, so a drifting e5DemoParams cannot
// silently publish unpacked numbers in the packed columns.
func e5PackedSlots(keyBits int) (int, error) {
	slots, err := core.PackedSlots(keyBits-1, e5Participants, e5Dim, e5DemoParams())
	if errors.Is(err, core.ErrPackingInfeasible) {
		return 1, nil
	}
	if err != nil {
		return 0, err
	}
	return slots, nil
}

// E5CryptoCosts reproduces the demonstration's cost methodology
// (Sec. III.B): measure the real per-operation Damgård–Jurik timings on
// this machine ("actual average measures performed beforehand") and
// project them to full deployments.
func E5CryptoCosts(sc Scale) (*Table, error) {
	reps := 4 * sc.Repeats
	t := &Table{
		ID:    "E5a",
		Title: "Measured Damgård–Jurik per-operation times (this machine, s=1)",
		Header: []string{"key bits", "encrypt", "encrypt (fast)", "hom. add", "scalar mul",
			"partial dec", "partial dec (fast)", "combine", "combine (batched)", "ciphertext", "packed slots/ct"},
	}
	keyBits := []int{512, 1024, 2048}
	profiles := map[int]*costmodel.CryptoProfile{}
	for _, bits := range keyBits {
		p, err := costmodel.MeasureProfile(bits, 1, 8, 5, reps)
		if err != nil {
			return nil, err
		}
		profiles[bits] = p
		slots, err := e5PackedSlots(bits)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			d(bits),
			p.Encrypt.Round(time.Microsecond).String(),
			p.FastEncrypt.Round(time.Microsecond).String(),
			p.Add.Round(time.Microsecond).String(),
			p.ScalarMul.Round(time.Microsecond).String(),
			p.PartialDecrypt.Round(time.Microsecond).String(),
			p.FastPartialDecrypt.Round(time.Microsecond).String(),
			p.Combine.Round(time.Microsecond).String(),
			p.FastCombine.Round(time.Microsecond).String(),
			fmt.Sprintf("%d B", p.CiphertextBytes),
			d(slots),
		})
	}
	t.Notes = append(t.Notes,
		"these are the \"encryption/decryption/addition times\" the demo GUI scales up from (Sec. III.B point 2); threshold configuration 5-of-8.",
		"\"fast\" columns are the precomputed paths of docs/CRYPTO.md: fixed-base table encryption, CRT partial decryption, batched multi-exponentiation combine — decrypt- resp. bit-identical to the naive reference.",
		"\"packed slots/ct\" is how many fused-vector coordinates slot packing fits per ciphertext at that key size for the E5b workload (docs/CRYPTO.md, \"Slot packing\") — every per-ciphertext cost divides by it.")
	return t, nil
}

// E5CostProjection projects the measured profiles onto the full protocol
// (the demo's per-participant cost displays), unpacked and packed.
func E5CostProjection(sc Scale) (*Table, error) {
	reps := 4 * sc.Repeats
	t := &Table{
		ID:    "E5b",
		Title: "Projected per-participant cost of a full run (k=5, 24 samples, 8 iterations, 20 gossip rounds, threshold 10)",
		Header: []string{"key bits", "crypto CPU / participant", "crypto CPU (fast path)", "crypto CPU (packed+fast)",
			"network / participant", "network (packed)", "messages / participant",
			"collaborative-decryption latency", "latency (packed+fast)"},
	}
	w := costmodel.Workload{
		Participants:     e5Participants,
		K:                e5K,
		Dim:              e5Dim,
		Iterations:       e5Iterations,
		GossipRounds:     e5GossipRounds,
		DecryptThreshold: e5Threshold,
	}
	for _, bits := range []int{512, 1024, 2048} {
		p, err := costmodel.MeasureProfile(bits, 1, 8, 5, reps)
		if err != nil {
			return nil, err
		}
		r, err := costmodel.Project(p, w)
		if err != nil {
			return nil, err
		}
		pw := w
		pw.Slots, err = e5PackedSlots(bits)
		if err != nil {
			return nil, err
		}
		pr, err := costmodel.Project(p, pw)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			d(bits),
			r.CPUTime.Round(time.Millisecond).String(),
			r.CPUTimeFast.Round(time.Millisecond).String(),
			pr.CPUTimeFast.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f MB", float64(r.BytesSent)/1e6),
			fmt.Sprintf("%.1f MB", float64(pr.BytesSent)/1e6),
			d(r.MessagesSent),
			r.DecryptLatency.Round(time.Millisecond).String(),
			pr.DecryptLatencyFast.Round(time.Millisecond).String(),
		})
	}
	t.Notes = append(t.Notes,
		"per-participant costs are independent of the population size (they depend on k, d, rounds and the decryption threshold) — the scalability property behind the paper's claim 3 (\"costs remain affordable given the resources of today's personal devices\").",
		"\"packed\" columns project the slot-packed encrypted side (E5a's slots/ct at each key size): the same protocol with every per-ciphertext operation and byte divided by the packing factor.")
	return t, nil
}
