package experiments

import (
	"fmt"
	"time"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/dp"
	"chiaroscuro/internal/timeseries"
)

// levelInit builds k constant-level centroids in [0,1]^dim (public,
// data-independent).
func levelInit(k, dim int) [][]float64 {
	out := make([][]float64, k)
	for j := range out {
		level := (float64(j) + 0.5) / float64(k)
		c := make([]float64, dim)
		for t := range c {
			c[t] = level
		}
		out[j] = c
	}
	return out
}

// scaledEps applies the demo's population-scaling rule for a target
// deployment of 10^6 devices (Sec. III.B point 4).
func scaledEps(epsTarget float64, simPop int) float64 {
	const targetPop = 1e6
	return epsTarget * targetPop / float64(simPop)
}

// tumorRun executes one protocol run over the NUMED-like workload.
func tumorRun(sc Scale, epsTarget float64, seed int64) (*core.Trace, *datasets.Dataset, error) {
	ds, err := datasets.TumorGrowth(datasets.TumorOptions{N: sc.Population, Weeks: 20, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	ds.NormalizeTo01()
	tr, err := core.Run(ds.Series, core.Params{
		K:                4,
		Epsilon:          scaledEps(epsTarget, sc.Population),
		Iterations:       sc.Iterations,
		Seed:             seed,
		InitialCentroids: levelInit(4, ds.Dim),
		Smoothing:        core.SmoothingSpec{Method: core.SmoothingMovingAverage, Window: 3},
	})
	return tr, ds, err
}

// E1CentroidEvolution reproduces Fig. 3 panel 4: for a random subset of
// four participants, the evolution of their closest centroid along the
// iterations (tumor-growth use case, twenty weeks).
func E1CentroidEvolution(sc Scale) (*Table, error) {
	tr, ds, err := tumorRun(sc, 1.0, 160)
	if err != nil {
		return nil, err
	}
	// Four deterministic "random" participants, as the GUI samples four.
	picks := []int{7, 42, 99, 123}
	for i := range picks {
		picks[i] %= sc.Population
	}
	t := &Table{
		ID:     "E1",
		Title:  "Fig. 3 panel 4 — evolution of participants' closest centroid across iterations (NUMED-like, k=4, 20 weeks)",
		Header: []string{"iteration", "ε_i"},
	}
	for _, p := range picks {
		t.Header = append(t.Header, fmt.Sprintf("participant %d", p))
	}
	for _, it := range tr.Iterations {
		row := []string{d(it.Iteration + 1), f4(it.Epsilon)}
		for _, p := range picks {
			best, _, err := timeseries.NearestSeries(toSeries(it.PerturbedCentroids), ds.Series[p])
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("c%d", best))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("population %d, ε_target=1.0 scaled for a 10^6-device deployment; assignments stabilize as centroids converge, as the demo's slide-bar graphs show.", sc.Population))
	return t, nil
}

// E2NoiseImpact reproduces Fig. 3 panel 5: the impact of the noise on the
// centroids along the iterations, for several privacy levels.
func E2NoiseImpact(sc Scale) (*Table, error) {
	ds, err := datasets.CER(datasets.CEROptions{N: sc.Population, Dim: 24, Seed: 7})
	if err != nil {
		return nil, err
	}
	ds.NormalizeTo01()
	epsTargets := []float64{0.1, 0.5, 1, 2}
	t := &Table{
		ID:     "E2",
		Title:  "Fig. 3 panel 5 — noise impact on centroids per iteration: RMSE(perturbed, exact) by ε (CER-like, k=5)",
		Header: []string{"iteration"},
	}
	for _, e := range epsTargets {
		t.Header = append(t.Header, fmt.Sprintf("ε=%.1f", e))
	}
	cols := make([][]float64, len(epsTargets))
	for c, epsT := range epsTargets {
		tr, err := core.Run(ds.Series, core.Params{
			K:                5,
			Epsilon:          scaledEps(epsT, sc.Population),
			Iterations:       sc.Iterations,
			Seed:             11,
			InitialCentroids: levelInit(5, ds.Dim),
		})
		if err != nil {
			return nil, err
		}
		cols[c] = make([]float64, sc.Iterations)
		for i, it := range tr.Iterations {
			cols[c][i] = it.NoiseRMSE
		}
	}
	for i := 0; i < sc.Iterations; i++ {
		row := []string{d(i + 1)}
		for c := range epsTargets {
			row = append(row, f4(cols[c][i]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"noise magnitude scales as 1/ε: each halving of the privacy budget roughly doubles the centroid distortion — the trade-off the demo's slide bar makes tangible.")
	return t, nil
}

// E3ProfileSearch reproduces Fig. 3 panel 6: Bob selects a subsequence of
// his own series and retrieves the closest profiles.
func E3ProfileSearch(sc Scale) (*Table, error) {
	tr, ds, err := tumorRun(sc, 2.0, 31)
	if err != nil {
		return nil, err
	}
	bob := ds.Series[17%sc.Population]
	t := &Table{
		ID:     "E3",
		Title:  "Fig. 3 panel 6 — closest profiles for a subsequence of Bob's series (top-2 by aligned distance)",
		Header: []string{"query weeks", "best profile", "offset", "distance", "runner-up", "search time"},
	}
	for _, span := range [][2]int{{5, 9}, {5, 12}, {2, 14}, {0, 16}} {
		if span[1] > len(bob) {
			span[1] = len(bob)
		}
		query := bob[span[0]:span[1]]
		start := time.Now()
		matches, err := timeseries.ClosestProfiles(toSeries(tr.FinalCentroids), query, 2)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d-%d", span[0]+1, span[1]),
			fmt.Sprintf("c%d", matches[0].Profile),
			d(matches[0].Offset),
			f4(matches[0].Distance),
			fmt.Sprintf("c%d", matches[1].Profile),
			elapsed.Round(time.Microsecond).String(),
		})
	}
	t.Notes = append(t.Notes,
		"the interactive use of the result: sub-second best-alignment search over the published profiles, entirely client-side on Bob's device.")
	return t, nil
}

func toSeries(m [][]float64) []timeseries.Series {
	out := make([]timeseries.Series, len(m))
	for i := range m {
		out[i] = timeseries.Series(m[i])
	}
	return out
}

// strategyByNameOrDie keeps table-driven experiment code terse.
func strategyByNameOrDie(name string) dp.Strategy {
	s, err := dp.StrategyByName(name)
	if err != nil {
		panic(err)
	}
	return s
}
