package experiments

import (
	"fmt"
	"math"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/dp"
)

// streamBlobSeries builds a drifting well-separated blob population: k
// archetype levels whose series drift sinusoidally over the stream with
// small per-participant jitter. The separation matters — it is the
// regime where per-window early stopping makes warm-vs-cold iteration
// counts comparable (the CER archetypes overlap enough that disclosed
// centroids keep wobbling above any usable convergence threshold).
func streamBlobSeries(n, k, total int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		base := 0.12 + 0.72*float64(i%k)/float64(k)
		s := make([]float64, total)
		for t := range s {
			v := base + 0.05*math.Sin(2*math.Pi*(float64(t)/float64(total)+float64(i%5)/5)) +
				0.015*float64((i*7+t*3)%5-2)/5
			s[t] = math.Min(1, math.Max(0, v))
		}
		out[i] = s
	}
	return out
}

// streamOutcome aggregates one full streaming session.
type streamOutcome struct {
	ran, skipped int
	spent        float64
	lifetime     float64
	meanDrift    float64 // over windows with a defined drift signal
	totalIters   int
}

// runStreamSession drives one session over the sliding windows of the
// blob population and aggregates its ledger and iteration counts.
func runStreamSession(full [][]float64, dim, windows, slide int, spend dp.SpendStrategy, warm bool, lifetime float64) (*streamOutcome, error) {
	n := len(full)
	initial := make([][]float64, n)
	for i := range initial {
		initial[i] = full[i][:dim]
	}
	sess, err := core.NewRunSession(initial, core.SessionParams{
		// GossipRounds stays at its population-scaled default: the early
		// stop compares disclosed centroids across iterations, so gossip
		// aggregation distortion shows up as centroid wobble that never
		// crosses the convergence threshold.
		Base: core.Params{
			K: 3, Iterations: 10, Seed: 9,
			DecryptThreshold:  4,
			ConvergeThreshold: 0.08,
		},
		LifetimeEpsilon: lifetime,
		Windows:         windows,
		Spend:           spend,
		WarmStart:       warm,
	})
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	out := &streamOutcome{lifetime: lifetime}
	driftWindows := 0
	for w := 0; w < windows; w++ {
		var pts [][]float64
		if w > 0 {
			pts = make([][]float64, n)
			for i := range pts {
				pts[i] = full[i][dim+(w-1)*slide : dim+w*slide]
			}
		}
		res, err := sess.Advance(pts)
		if err != nil {
			return nil, err
		}
		if res.Skipped {
			out.skipped++
		} else {
			out.ran++
			out.totalIters += len(res.Trace.Iterations)
		}
		if !math.IsNaN(res.Drift) {
			out.meanDrift += res.Drift
			driftWindows++
		}
		out.spent = res.Ledger.SpentEpsilon
	}
	if driftWindows > 0 {
		out.meanDrift /= float64(driftWindows)
	} else {
		out.meanDrift = math.NaN()
	}
	return out, nil
}

// E13StreamingRecluster is the streaming quality/budget experiment: a
// drifting population re-clustered over a sliding window under each
// budget spend strategy, warm-started and cold, reporting how the
// lifetime epsilon drains, how far the disclosed centroids drift
// between windows, and how many k-means iterations warm-starting saves
// at the same convergence threshold.
func E13StreamingRecluster(sc Scale) (*Table, error) {
	const dim, slide, k = 8, 2, 3
	windows := 6
	n := sc.Population
	full := streamBlobSeries(n, k, dim+(windows-1)*slide)
	// Ample per-window budget at the demo's population-scaling rule, so
	// iteration counts reflect convergence rather than noise starvation.
	lifetime := float64(windows) * scaledEps(1.0, n)

	t := &Table{
		ID:    "E13",
		Title: fmt.Sprintf("Streaming re-clustering over %d windows (drifting blobs, n=%d, slide %d, early stop at 0.08)", windows, n, slide),
		Header: []string{"budget strategy", "windows run+skip", "ε spent / lifetime",
			"mean disclosed drift", "iters (warm)", "iters (cold)", "saved by warm-start"},
	}
	for _, name := range []string{"uniform", "decaying", "threshold"} {
		spend, err := dp.SpendStrategyByName(name, 0.05)
		if err != nil {
			return nil, err
		}
		warm, err := runStreamSession(full, dim, windows, slide, spend, true, lifetime)
		if err != nil {
			return nil, err
		}
		cold, err := runStreamSession(full, dim, windows, slide, spend, false, lifetime)
		if err != nil {
			return nil, err
		}
		saved := "-"
		if cold.totalIters > warm.totalIters {
			saved = fmt.Sprintf("%d (%.0f%%)", cold.totalIters-warm.totalIters,
				100*float64(cold.totalIters-warm.totalIters)/float64(cold.totalIters))
		}
		drift := "-"
		if !math.IsNaN(warm.meanDrift) {
			drift = f4(warm.meanDrift)
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%d+%d", warm.ran, warm.skipped),
			fmt.Sprintf("%.0f / %.0f", warm.spent, warm.lifetime),
			drift,
			d(warm.totalIters), d(cold.totalIters), saved,
		})
	}
	t.Notes = append(t.Notes,
		"warm-started windows resume from the previous window's disclosed centroids (already-public data), so they re-converge in fewer iterations than cold restarts from the public level init; every saved iteration is also a saved run of the full gossip+decrypt pipeline.",
		"the threshold strategy skips re-clustering while the disclosed drift stays under its bound (0.05 here), spending no ε on those windows — the ledger column shows the resulting budget savings.",
		fmt.Sprintf("lifetime ε provisioned as %d windows at the demo's population-scaled per-window budget (ε_target=1 @ 10^6 devices).", windows))
	return t, nil
}
