package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/simnet"
)

// E11FaultInjection drives the simnet fault layer across escalating
// adversity: link-level loss/duplication/reordering, scheduled outages
// and laggards, and byzantine senders — the scenario-diversity leg of
// the paper's resilience claim (Sec. I: "possibly faulty computing
// nodes"). Each row is one replayable scenario (the spec column is the
// exact internal/simnet grammar string) tabulating quorum liveness and
// clustering quality against the fault-free baseline.
func E11FaultInjection(sc Scale) (*Table, error) {
	ds, err := datasets.CER(datasets.CEROptions{N: sc.Population, Dim: 24, Seed: 47})
	if err != nil {
		return nil, err
	}
	ds.NormalizeTo01()
	n := sc.Population
	tenth := n / 10
	if tenth < 1 {
		tenth = 1
	}
	twentieth := n / 20
	if twentieth < 1 {
		twentieth = 1
	}
	scenarios := []struct {
		name string
		spec string
	}{
		{"fault-free", ""},
		{"loss 5%", "drop=0.05"},
		{"loss 15% + dup + reorder", "drop=0.15;dup=0.05;delay=0.2x3"},
		{"outage 10% (state kept)", fmt.Sprintf("outage@6+10=%s", idRange(0, tenth))},
		{"outage 10% (state lost)", fmt.Sprintf("outage@6+10=%s:reset", idRange(0, tenth))},
		{"laggards 10%", fmt.Sprintf("lag@4+12=%s", idRange(0, tenth))},
		{"byz garble 5%", fmt.Sprintf("garble=%s", idRange(0, twentieth))},
		{"byz malform 5%", fmt.Sprintf("malform=%s", idRange(0, twentieth))},
		{"byz noise x50 5%", fmt.Sprintf("noise*50=%s", idRange(0, twentieth))},
		{"kitchen sink", fmt.Sprintf("drop=0.05;dup=0.03;delay=0.15x3;outage@6+8=%s:reset;lag@4+8=%s;garble=%s;malform=%s",
			idRange(0, twentieth), idRange(twentieth, 2*twentieth),
			idRange(2*twentieth, 2*twentieth+2), idRange(2*twentieth+2, 2*twentieth+4))},
	}
	t := &Table{
		ID:    "E11",
		Title: "Fault injection — quorum liveness and quality across simnet scenarios (CER-like, deterministic replay per spec)",
		Header: []string{"scenario", "fault drops", "dups", "delayed", "crashes",
			"decrypt fail", "stale/rejected", "liveness", "final noise RMSE", "inertia ratio"},
	}
	for _, scn := range scenarios {
		plan, err := simnet.ParsePlan(scn.spec)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", scn.name, err)
		}
		pt, tr, err := runQualityPointWithTrace(ds, 5, core.Params{
			Epsilon:    scaledEps(1.0, n),
			Iterations: sc.Iterations,
			Seed:       47,
			Faults:     plan,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", scn.name, err)
		}
		t.Rows = append(t.Rows, []string{
			scn.name,
			d(tr.NetStats.FaultDrops),
			d(tr.NetStats.Duplicates),
			d(tr.NetStats.Delayed),
			d(tr.NetStats.Crashes),
			d(tr.DecryptFailures),
			d(tr.StaleDrops),
			fmt.Sprintf("%.2f", float64(tr.Completed)/float64(n)),
			f4(tr.Iterations[len(tr.Iterations)-1].NoiseRMSE),
			f3(pt.inertiaRatio),
		})
	}
	t.Notes = append(t.Notes,
		"every scenario is deterministic: the same spec + seed replays the identical fault trajectory at any worker count, so a degraded row is a replayable regression test (pass the spec to -faults).",
		"'stale/rejected' counts messages dropped before absorption: ordinary stale-iteration drops plus, in byzantine scenarios, wire-validation rejections of malformed ciphertexts; garbled-but-valid ciphertexts instead degrade into decrypt failures, which the protocol absorbs by keeping the previous centroids.")
	return t, nil
}

// idRange renders the node ids [lo, hi) as the grammar's comma list.
func idRange(lo, hi int) string {
	ids := make([]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		ids = append(ids, strconv.Itoa(i))
	}
	return strings.Join(ids, ",")
}
