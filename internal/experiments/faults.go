package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/simnet"
)

// E11FaultInjection drives the simnet fault layer across escalating
// adversity: link-level loss/duplication/reordering, scheduled outages
// and laggards, and byzantine senders — the scenario-diversity leg of
// the paper's resilience claim (Sec. I: "possibly faulty computing
// nodes"). Each row is one replayable scenario (the spec column is the
// exact internal/simnet grammar string) tabulating quorum liveness and
// clustering quality against the fault-free baseline.
func E11FaultInjection(sc Scale) (*Table, error) {
	ds, err := datasets.CER(datasets.CEROptions{N: sc.Population, Dim: 24, Seed: 47})
	if err != nil {
		return nil, err
	}
	ds.NormalizeTo01()
	n := sc.Population
	tenth := n / 10
	if tenth < 1 {
		tenth = 1
	}
	twentieth := n / 20
	if twentieth < 1 {
		twentieth = 1
	}
	scenarios := []struct {
		name string
		spec string
	}{
		{"fault-free", ""},
		{"loss 5%", "drop=0.05"},
		{"loss 15% + dup + reorder", "drop=0.15;dup=0.05;delay=0.2x3"},
		{"outage 10% (state kept)", fmt.Sprintf("outage@6+10=%s", idRange(0, tenth))},
		{"outage 10% (state lost)", fmt.Sprintf("outage@6+10=%s:reset", idRange(0, tenth))},
		{"laggards 10%", fmt.Sprintf("lag@4+12=%s", idRange(0, tenth))},
		{"byz garble 5%", fmt.Sprintf("garble=%s", idRange(0, twentieth))},
		{"byz malform 5%", fmt.Sprintf("malform=%s", idRange(0, twentieth))},
		{"byz noise x50 5%", fmt.Sprintf("noise*50=%s", idRange(0, twentieth))},
		{"kitchen sink", fmt.Sprintf("drop=0.05;dup=0.03;delay=0.15x3;outage@6+8=%s:reset;lag@4+8=%s;garble=%s;malform=%s",
			idRange(0, twentieth), idRange(twentieth, 2*twentieth),
			idRange(2*twentieth, 2*twentieth+2), idRange(2*twentieth+2, 2*twentieth+4))},
	}
	t := &Table{
		ID:    "E11",
		Title: "Fault injection — quorum liveness and quality across simnet scenarios (CER-like, deterministic replay per spec)",
		Header: []string{"scenario", "fault drops", "dups", "delayed", "crashes",
			"decrypt fail", "stale/rejected", "liveness", "final noise RMSE", "inertia ratio"},
	}
	for _, scn := range scenarios {
		plan, err := simnet.ParsePlan(scn.spec)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", scn.name, err)
		}
		pt, tr, err := runQualityPointWithTrace(ds, 5, core.Params{
			Epsilon:    scaledEps(1.0, n),
			Iterations: sc.Iterations,
			Seed:       47,
			Faults:     plan,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", scn.name, err)
		}
		t.Rows = append(t.Rows, []string{
			scn.name,
			d(tr.NetStats.FaultDrops),
			d(tr.NetStats.Duplicates),
			d(tr.NetStats.Delayed),
			d(tr.NetStats.Crashes),
			d(tr.DecryptFailures),
			d(tr.StaleDrops),
			fmt.Sprintf("%.2f", float64(tr.Completed)/float64(n)),
			f4(tr.Iterations[len(tr.Iterations)-1].NoiseRMSE),
			f3(pt.inertiaRatio),
		})
	}
	// Byzantine dealers strike before the first ciphertext exists: they
	// corrupt the key ceremony itself. These rows run the DKG-keyed
	// Damgård–Jurik backend at a reduced population (threshold crypto
	// per row), scripting each dealer-fault kind from the same grammar;
	// the verdicts are deterministic, the ceremony restarts among the
	// qualified founders, and the disclosed run must stay fault-free —
	// liveness 1.00 and the same quality as the clean-dealer row. The
	// population and iteration count are fixed small (the homomorphic
	// run, not the ceremony, dominates the cost; the ceremony verdicts
	// only need one dealer per fault kind).
	const djPop, djThreshold, djBits, djIters = 12, 3, 128, 2
	djDS, err := datasets.CER(datasets.CEROptions{N: djPop, Dim: 24, Seed: 47})
	if err != nil {
		return nil, err
	}
	djDS.NormalizeTo01()
	dealerScenarios := []struct {
		name string
		spec string
	}{
		{"dkg dealer fault-free", ""},
		{"dkg dealer badshare", "badshare=1"},
		{"dkg dealer equivocate", "equivocate=2"},
		{"dkg dealer silent", "silentdealer=3"},
	}
	for _, scn := range dealerScenarios {
		plan, err := simnet.ParsePlan(scn.spec)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", scn.name, err)
		}
		m, err := core.RunDJKeyCeremony(djBits, 1, djPop, djThreshold, 47, plan)
		if err != nil {
			return nil, fmt.Errorf("scenario %q ceremony: %w", scn.name, err)
		}
		name := scn.name
		if len(m.Disqualified) > 0 {
			name = fmt.Sprintf("%s (expelled dealer %s)", scn.name, idList(m.Disqualified))
		}
		pt, tr, err := runQualityPointWithTrace(djDS, 5, core.Params{
			Epsilon:          scaledEps(1.0, djPop),
			Iterations:       djIters,
			Seed:             47,
			Backend:          core.BackendDamgardJurik,
			ModulusBits:      djBits,
			DecryptThreshold: djThreshold,
			DKG:              true,
			Faults:           plan,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", scn.name, err)
		}
		t.Rows = append(t.Rows, []string{
			name,
			d(tr.NetStats.FaultDrops),
			d(tr.NetStats.Duplicates),
			d(tr.NetStats.Delayed),
			d(tr.NetStats.Crashes),
			d(tr.DecryptFailures),
			d(tr.StaleDrops),
			fmt.Sprintf("%.2f", float64(tr.Completed)/float64(djPop)),
			f4(tr.Iterations[len(tr.Iterations)-1].NoiseRMSE),
			f3(pt.inertiaRatio),
		})
	}
	t.Notes = append(t.Notes,
		"every scenario is deterministic: the same spec + seed replays the identical fault trajectory at any worker count, so a degraded row is a replayable regression test (pass the spec to -faults).",
		fmt.Sprintf("'dkg dealer' rows run the Damgård–Jurik backend keyed by the distributed ceremony at population %d (threshold %d, %d-bit modulus): the scripted dealer is expelled by the deterministic broadcast verdict, the genesis exponent is re-split among the qualified founders, and the re-keyed run discloses with full liveness — a byzantine dealer costs a ceremony restart, never the clustering.", djPop, djThreshold, djBits),
		"'stale/rejected' counts messages dropped before absorption: ordinary stale-iteration drops plus, in byzantine scenarios, wire-validation rejections of malformed ciphertexts; garbled-but-valid ciphertexts instead degrade into decrypt failures, which the protocol absorbs by keeping the previous centroids.")
	return t, nil
}

// idRange renders the node ids [lo, hi) as the grammar's comma list.
func idRange(lo, hi int) string {
	ids := make([]string, 0, hi-lo)
	for i := lo; i < hi; i++ {
		ids = append(ids, strconv.Itoa(i))
	}
	return strings.Join(ids, ",")
}

// idList renders explicit ids as a comma list.
func idList(ids []int) string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = strconv.Itoa(id)
	}
	return strings.Join(out, ",")
}
