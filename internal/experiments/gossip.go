package experiments

import (
	"fmt"
	"math/rand"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/gossip"
)

// E6GossipConvergence reproduces the Sec. II.A premise: the gossip
// approximation error converges to zero exponentially fast in the number
// of exchanges, across population sizes.
func E6GossipConvergence(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "Push-sum gossip convergence — max relative error by exchanges per participant",
		Header: []string{"population", "5 rounds", "10 rounds", "20 rounds", "30 rounds", "40 rounds"},
	}
	pops := []int{sc.Population / 2, sc.Population, sc.Population * 5}
	for _, n := range pops {
		rng := rand.New(rand.NewSource(int64(n)))
		values := make([][]float64, n)
		for i := range values {
			values[i] = []float64{rng.Float64() * 100}
		}
		res, err := gossip.SimulatePushSum(values, 40, 0, rand.New(rand.NewSource(5)))
		if err != nil {
			return nil, err
		}
		row := []string{d(n)}
		for _, r := range []int{5, 10, 20, 30, 40} {
			row = append(row, e2(res.MaxRelErr[r-1]))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"error decays exponentially with the number of exchanges and degrades only logarithmically with population size — the property that keeps per-participant gossip cost at O(log n) rounds (Kempe et al., FOCS'03).")
	return t, nil
}

// E10GossipMessageBudget reproduces Sec. III.B point 3: the demo keeps
// the approximation error representative of a larger population by
// adjusting the number of messages per participant. This table exposes
// the trade: fewer rounds = cheaper but noisier aggregation, and its
// knock-on effect on clustering quality.
func E10GossipMessageBudget(sc Scale) (*Table, error) {
	ds, err := datasets.CER(datasets.CEROptions{N: sc.Population, Dim: 24, Seed: 71})
	if err != nil {
		return nil, err
	}
	ds.NormalizeTo01()
	t := &Table{
		ID:    "E10",
		Title: "Gossip message budget vs aggregation fidelity and quality (CER-like)",
		Header: []string{"gossip rounds / participant", "messages / participant / iteration",
			"aggregation distortion (noise-free RMSE)", "inertia ratio @ ε_target=1"},
	}
	for _, rounds := range []int{6, 10, 15, 20, 30} {
		// Fidelity run: ε so large the Laplace noise vanishes, leaving
		// only the gossip approximation in the centroid distortion.
		_, trClean, err := runQualityPointWithTrace(ds, 5, core.Params{
			Epsilon:      scaledEps(1000, sc.Population),
			Iterations:   sc.Iterations,
			Seed:         71,
			GossipRounds: rounds,
		})
		if err != nil {
			return nil, err
		}
		distortion := trClean.Iterations[len(trClean.Iterations)-1].NoiseRMSE
		// Quality run at a realistic privacy level.
		pt, tr, err := runQualityPointWithTrace(ds, 5, core.Params{
			Epsilon:      scaledEps(1.0, sc.Population),
			Iterations:   sc.Iterations,
			Seed:         71,
			GossipRounds: rounds,
		})
		if err != nil {
			return nil, err
		}
		perIter := rounds + 2*tr.Params.DecryptThreshold
		t.Rows = append(t.Rows, []string{
			d(rounds), d(perIter), e2(distortion), f3(pt.inertiaRatio),
		})
	}
	t.Notes = append(t.Notes,
		"aggregation distortion = final-iteration RMSE(disclosed, exact) of a noise-free run, isolating the push-sum approximation error; it decays exponentially with the round budget while the ε=1 quality saturates once gossip error drops below the DP noise floor — the trade the demo exploits to emulate larger populations with fewer messages (Sec. III.B point 3).",
		fmt.Sprintf("population %d; message counts include the collaborative-decryption requests/responses.", sc.Population))
	return t, nil
}
