// Package experiments implements the reproduction harness: one function
// per experiment row of DESIGN.md §3 (E1–E11), each regenerating the
// corresponding artefact of the demonstration paper — the Fig. 3 panels,
// the quality-vs-centralized comparison, the cost measures, and the
// gossip/churn/scaling behaviours the demo narrates.
//
// Each experiment returns a Table that cmd/expdriver prints as markdown
// (the source of EXPERIMENTS.md) and that bench_test.go regenerates under
// `go test -bench`.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result in paper-table form.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if len(t.Notes) > 0 {
		b.WriteString("\n")
		for _, n := range t.Notes {
			b.WriteString("> " + n + "\n")
		}
	}
	return b.String()
}

// Scale reduces experiment sizes for quick runs (benchmarks use Quick).
type Scale struct {
	// Population is the simulated population for protocol runs.
	Population int
	// Iterations is the number of k-means iterations.
	Iterations int
	// Repeats averages stochastic metrics over this many seeds.
	Repeats int
}

// Full is the scale used to produce EXPERIMENTS.md.
var Full = Scale{Population: 500, Iterations: 6, Repeats: 2}

// Quick is the scale used by benchmarks and smoke runs.
var Quick = Scale{Population: 200, Iterations: 4, Repeats: 1}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func e2(v float64) string { return fmt.Sprintf("%.2e", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
