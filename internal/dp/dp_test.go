package dp

import (
	"math"
	"math/rand"
	"testing"
)

func TestLaplaceScale(t *testing.T) {
	b, err := LaplaceScale(10, 2)
	if err != nil || b != 5 {
		t.Fatalf("scale = %v, err = %v", b, err)
	}
	if _, err := LaplaceScale(-1, 1); err == nil {
		t.Fatal("negative sensitivity should error")
	}
	if _, err := LaplaceScale(1, 0); err == nil {
		t.Fatal("epsilon 0 should error")
	}
	if _, err := LaplaceScale(1, -2); err == nil {
		t.Fatal("negative epsilon should error")
	}
}

func TestLaplaceMoments(t *testing.T) {
	// Laplace(b): mean 0, variance 2b².
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	const b = 3.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := Laplace(rng, b)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-2*b*b)/(2*b*b) > 0.05 {
		t.Fatalf("variance = %v, want ~%v", variance, 2*b*b)
	}
}

func TestLaplaceZeroScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if Laplace(rng, 0) != 0 || Laplace(rng, -1) != 0 {
		t.Fatal("non-positive scale should give 0")
	}
}

func TestGammaMoments(t *testing.T) {
	// Gamma(shape, scale): mean = shape·scale, var = shape·scale².
	rng := rand.New(rand.NewSource(7))
	cases := []struct{ shape, scale float64 }{
		{0.1, 2.0}, {0.5, 1.0}, {1.0, 3.0}, {2.5, 0.5}, {9.0, 1.5},
	}
	for _, tc := range cases {
		const n = 100000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := Gamma(rng, tc.shape, tc.scale)
			if x < 0 {
				t.Fatalf("Gamma(%v,%v) produced negative %v", tc.shape, tc.scale, x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantMean := tc.shape * tc.scale
		wantVar := tc.shape * tc.scale * tc.scale
		if math.Abs(mean-wantMean)/wantMean > 0.05 {
			t.Errorf("Gamma(%v,%v): mean %v, want %v", tc.shape, tc.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar)/wantVar > 0.10 {
			t.Errorf("Gamma(%v,%v): var %v, want %v", tc.shape, tc.scale, variance, wantVar)
		}
	}
}

func TestGammaDegenerateInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if Gamma(rng, 0, 1) != 0 || Gamma(rng, 1, 0) != 0 || Gamma(rng, -1, 1) != 0 {
		t.Fatal("degenerate gamma parameters should give 0")
	}
}

func TestNoiseSharesSumToLaplace(t *testing.T) {
	// The paper's decomposition: Σ_{i=1..n}(G1_i - G2_i) with
	// G ~ Gamma(1/n, b) must be Laplace(b): mean 0, variance 2b².
	rng := rand.New(rand.NewSource(99))
	const trials = 20000
	const parties = 25
	const b = 2.0
	var sum, sumSq float64
	for trial := 0; trial < trials; trial++ {
		var total float64
		for p := 0; p < parties; p++ {
			total += NoiseShare(rng, parties, b)
		}
		sum += total
		sumSq += total * total
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.1 {
		t.Fatalf("share-sum mean = %v, want ~0", mean)
	}
	if math.Abs(variance-2*b*b)/(2*b*b) > 0.1 {
		t.Fatalf("share-sum variance = %v, want ~%v", variance, 2*b*b)
	}
}

func TestNoiseShareDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if NoiseShare(rng, 0, 1) != 0 || NoiseShare(rng, 5, 0) != 0 {
		t.Fatal("degenerate share parameters should give 0")
	}
}

func TestNoiseShareVector(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := NoiseShareVector(rng, 10, 7, 1.5)
	if len(v) != 7 {
		t.Fatalf("len = %d", len(v))
	}
	allZero := true
	for _, x := range v {
		if x != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("vector of shares should not be all zeros")
	}
}

func TestSumSensitivity(t *testing.T) {
	if got := SumSensitivity(24, 1); got != 25 {
		t.Fatalf("sensitivity = %v, want 25", got)
	}
	if got := SumSensitivity(10, 0.5); got != 6 {
		t.Fatalf("sensitivity = %v, want 6", got)
	}
	if got := SumSensitivity(-1, 1); got != 0 {
		t.Fatalf("negative dim = %v, want 0", got)
	}
	if got := SumSensitivity(3, -1); got != 0 {
		t.Fatalf("negative bound = %v, want 0", got)
	}
}

func TestNoiseShareDeterministicGivenSeed(t *testing.T) {
	a := NoiseShare(rand.New(rand.NewSource(5)), 10, 1)
	b := NoiseShare(rand.New(rand.NewSource(5)), 10, 1)
	if a != b {
		t.Fatalf("same seed gave %v and %v", a, b)
	}
}
