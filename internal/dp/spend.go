package dp

import (
	"fmt"
	"math"
)

// SpendState is the public information a SpendStrategy decides from
// before a streaming window runs. Everything in it is already disclosed
// (or configuration): strategies never see raw data, so the decision
// itself leaks nothing beyond what the ledger and previous disclosures
// already did.
type SpendState struct {
	// Remaining is the unspent lifetime budget.
	Remaining float64
	// Window is the 0-based index of the window about to run.
	Window int
	// PlannedWindows is the session's provisioning horizon (how many
	// windows the budget is meant to last).
	PlannedWindows int
	// Drift is the maximum centroid displacement between the last two
	// disclosed windows (NaN until two windows have been disclosed) —
	// the public signal threshold-triggered re-clustering keys on.
	Drift float64
	// ConsecutiveSkips counts the windows skipped in a row immediately
	// before this one.
	ConsecutiveSkips int
}

// SpendDecision is a SpendStrategy's verdict for one window: either
// re-cluster with the given epsilon, or skip (keep the previous
// centroids, spend nothing).
type SpendDecision struct {
	Epsilon float64
	Skip    bool
}

// SpendStrategy decides the per-window epsilon draw of a streaming
// session against its lifetime budget — the longitudinal counterpart of
// Strategy (which splits one window's epsilon across its k-means
// iterations). Decide must be deterministic in its argument: the
// session's bit-reproducibility contract extends to budget decisions.
type SpendStrategy interface {
	// Name identifies the strategy in logs and experiment tables.
	Name() string
	// Decide picks the window's draw (or skip) from the public state.
	Decide(s SpendState) (SpendDecision, error)
}

// SpendUniform divides the remaining budget evenly over the remaining
// planned windows: ε_w = remaining / (planned − w). The budget is
// exhausted exactly at the planning horizon, after which the session
// refuses further windows — the hard stop a bounded lifetime guarantee
// needs.
type SpendUniform struct{}

// Name implements SpendStrategy.
func (SpendUniform) Name() string { return "uniform" }

// Decide implements SpendStrategy.
func (SpendUniform) Decide(s SpendState) (SpendDecision, error) {
	left := s.PlannedWindows - s.Window
	if left < 1 {
		left = 1
	}
	return SpendDecision{Epsilon: s.Remaining / float64(left)}, nil
}

// SpendDecaying draws a fixed fraction of the remaining budget each
// window: ε_w = remaining · Factor. Early windows get the most fidelity
// and the budget asymptotically never exhausts — the open-ended-stream
// trade-off (each window is noisier than the last).
type SpendDecaying struct {
	// Factor is the fraction of the remaining budget drawn per window,
	// in (0, 1). Default 0.5.
	Factor float64
}

// Name implements SpendStrategy.
func (d SpendDecaying) Name() string { return fmt.Sprintf("decaying(%.2f)", d.factor()) }

func (d SpendDecaying) factor() float64 {
	if d.Factor <= 0 || d.Factor >= 1 {
		return 0.5
	}
	return d.Factor
}

// Decide implements SpendStrategy.
func (d SpendDecaying) Decide(s SpendState) (SpendDecision, error) {
	return SpendDecision{Epsilon: s.Remaining * d.factor()}, nil
}

// SpendThreshold re-clusters only when the population appears to have
// moved: while the disclosed centroid drift between the last two
// windows stays at or below Drift, windows are skipped (previous
// centroids kept, nothing spent), bounded by MaxSkips consecutive skips
// so a slowly drifting population cannot evade re-clustering forever.
// Windows that do run draw via Inner (default SpendUniform).
//
// The drift signal is computed from already-disclosed centroids only,
// so the skip decision leaks nothing new.
type SpendThreshold struct {
	// Drift is the displacement bound at or below which a window is
	// skipped. Must be positive (a zero bound would never skip and
	// should just use Inner directly).
	Drift float64
	// MaxSkips bounds consecutive skips. Default 3.
	MaxSkips int
	// Inner draws the epsilon of windows that do run. Default
	// SpendUniform.
	Inner SpendStrategy
}

// Name implements SpendStrategy.
func (t SpendThreshold) Name() string {
	return fmt.Sprintf("threshold(%.3g,max%d,%s)", t.Drift, t.maxSkips(), t.inner().Name())
}

func (t SpendThreshold) maxSkips() int {
	if t.MaxSkips < 1 {
		return 3
	}
	return t.MaxSkips
}

func (t SpendThreshold) inner() SpendStrategy {
	if t.Inner == nil {
		return SpendUniform{}
	}
	return t.Inner
}

// Decide implements SpendStrategy.
func (t SpendThreshold) Decide(s SpendState) (SpendDecision, error) {
	if t.Drift <= 0 || math.IsNaN(t.Drift) {
		return SpendDecision{}, fmt.Errorf("dp: threshold strategy needs a positive drift bound, got %v", t.Drift)
	}
	if !math.IsNaN(s.Drift) && s.Drift <= t.Drift && s.ConsecutiveSkips < t.maxSkips() {
		return SpendDecision{Skip: true}, nil
	}
	return t.inner().Decide(s)
}

// SpendStrategyByName resolves the spend-strategy names used by the
// public Config, CLI flags and the experiment driver. driftBound
// parameterizes the threshold strategy (ignored by the others).
func SpendStrategyByName(name string, driftBound float64) (SpendStrategy, error) {
	switch name {
	case "", "uniform":
		return SpendUniform{}, nil
	case "decaying":
		return SpendDecaying{}, nil
	case "threshold":
		return SpendThreshold{Drift: driftBound}, nil
	default:
		return nil, fmt.Errorf("dp: unknown spend strategy %q (want uniform, decaying or threshold)", name)
	}
}
