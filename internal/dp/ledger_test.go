package dp

import (
	"errors"
	"math"
	"testing"
)

func TestLedgerDrawSettleRefund(t *testing.T) {
	l, err := NewLedger(10)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Draw(0, 4); err != nil {
		t.Fatal(err)
	}
	if got := l.Spent(); got != 4 {
		t.Fatalf("spent = %v, want 4", got)
	}
	// Early convergence: the window only disclosed 2.5 of its 4.
	l.Settle(0, 2.5)
	if got := l.Spent(); got != 2.5 {
		t.Fatalf("after settle, spent = %v, want 2.5", got)
	}
	if got := l.Remaining(); got != 7.5 {
		t.Fatalf("remaining = %v, want 7.5", got)
	}
	// Settling above the reservation clamps: budget is returned, never
	// retroactively granted.
	if err := l.Draw(1, 2); err != nil {
		t.Fatal(err)
	}
	l.Settle(1, 99)
	if got := l.Spent(); got != 4.5 {
		t.Fatalf("after clamped settle, spent = %v, want 4.5", got)
	}
	draws := l.Draws()
	if len(draws) != 2 || draws[0].Spent != 2.5 || draws[1].Spent != 2 {
		t.Fatalf("draws = %+v", draws)
	}
}

func TestLedgerRefusesOverrun(t *testing.T) {
	l, err := NewLedger(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Draw(0, 0.75); err != nil {
		t.Fatal(err)
	}
	if err := l.Draw(1, 0.5); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("overrun draw: err = %v, want ErrBudgetExhausted", err)
	}
	// The refused draw recorded nothing.
	if got := l.Spent(); got != 0.75 {
		t.Fatalf("spent = %v, want 0.75", got)
	}
	if len(l.Draws()) != 1 {
		t.Fatalf("draws = %+v, want 1 entry", l.Draws())
	}
	// Exact exhaustion is allowed (the uniform strategy lands here).
	if err := l.Draw(1, 0.25); err != nil {
		t.Fatalf("exact-exhaustion draw: %v", err)
	}
	if got := l.Remaining(); got != 0 {
		t.Fatalf("remaining = %v, want 0", got)
	}
}

func TestLedgerZeroRemainingRefusesAnyDraw(t *testing.T) {
	l, err := NewLedger(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Draw(0, 2); err != nil {
		t.Fatal(err)
	}
	// Zero remaining budget: every further positive draw must be a hard
	// refusal, however small.
	for _, eps := range []float64{2, 0.1, 1e-6} {
		if err := l.Draw(1, eps); !errors.Is(err, ErrBudgetExhausted) {
			t.Fatalf("draw %v on exhausted ledger: err = %v, want ErrBudgetExhausted", eps, err)
		}
	}
	if err := l.Draw(1, -1); err == nil || errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("non-positive draw: err = %v, want a plain validation error", err)
	}
}

func TestLedgerSkipsAndReport(t *testing.T) {
	l, err := NewLedger(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Draw(0, 2); err != nil {
		t.Fatal(err)
	}
	l.RecordSkip(1)
	l.RecordSkip(2)
	if err := l.Draw(3, 2); err != nil {
		t.Fatal(err)
	}
	rep := l.Report()
	if rep.Windows != 2 || rep.Skips != 2 {
		t.Fatalf("report = %+v, want 2 windows / 2 skips", rep)
	}
	if rep.SpentEpsilon != 4 || rep.Remaining != 4 || rep.LifetimeEpsilon != 8 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestNewLedgerRejectsBadBudgets(t *testing.T) {
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewLedger(bad); err == nil {
			t.Fatalf("NewLedger(%v) must fail", bad)
		}
	}
}

func TestSpendUniformExhaustsAtHorizon(t *testing.T) {
	l, _ := NewLedger(8)
	var s SpendStrategy = SpendUniform{}
	for w := 0; w < 4; w++ {
		dec, err := s.Decide(SpendState{Remaining: l.Remaining(), Window: w, PlannedWindows: 4})
		if err != nil {
			t.Fatal(err)
		}
		if dec.Skip {
			t.Fatalf("window %d: uniform never skips", w)
		}
		if math.Abs(dec.Epsilon-2) > 1e-12 {
			t.Fatalf("window %d: eps = %v, want 2", w, dec.Epsilon)
		}
		if err := l.Draw(w, dec.Epsilon); err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
	}
	// Past the horizon the remaining budget is ~0: the proposed epsilon
	// collapses to (floating-point) zero, which the session layer maps
	// to a hard refusal.
	dec, err := s.Decide(SpendState{Remaining: l.Remaining(), Window: 4, PlannedWindows: 4})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Epsilon > 8*1e-9 {
		t.Fatalf("past-horizon eps = %v, want ~0", dec.Epsilon)
	}
}

func TestSpendDecayingHalvesRemaining(t *testing.T) {
	s := SpendDecaying{}
	dec, err := s.Decide(SpendState{Remaining: 8})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Epsilon != 4 {
		t.Fatalf("eps = %v, want 4", dec.Epsilon)
	}
	s2 := SpendDecaying{Factor: 0.25}
	dec, _ = s2.Decide(SpendState{Remaining: 8})
	if dec.Epsilon != 2 {
		t.Fatalf("eps = %v, want 2", dec.Epsilon)
	}
}

func TestSpendThresholdSkipsAndBounds(t *testing.T) {
	s := SpendThreshold{Drift: 0.1, MaxSkips: 2}
	// No drift signal yet (first window): run.
	dec, err := s.Decide(SpendState{Remaining: 8, PlannedWindows: 4, Drift: math.NaN()})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Skip {
		t.Fatal("first window must run (no drift signal yet)")
	}
	// Small drift: skip.
	dec, _ = s.Decide(SpendState{Remaining: 8, Window: 1, PlannedWindows: 4, Drift: 0.05})
	if !dec.Skip {
		t.Fatal("drift below bound must skip")
	}
	// Skip streak at the bound: forced re-cluster.
	dec, _ = s.Decide(SpendState{Remaining: 8, Window: 3, PlannedWindows: 4, Drift: 0.05, ConsecutiveSkips: 2})
	if dec.Skip {
		t.Fatal("MaxSkips consecutive skips must force a re-cluster")
	}
	// Large drift: run.
	dec, _ = s.Decide(SpendState{Remaining: 8, Window: 1, PlannedWindows: 4, Drift: 0.5})
	if dec.Skip {
		t.Fatal("drift above bound must run")
	}
	// Unparameterized threshold strategy is a configuration error.
	if _, err := (SpendThreshold{}).Decide(SpendState{Remaining: 8}); err == nil {
		t.Fatal("zero drift bound must error")
	}
}

func TestSpendStrategyByName(t *testing.T) {
	for name, want := range map[string]string{
		"":          "uniform",
		"uniform":   "uniform",
		"decaying":  "decaying(0.50)",
		"threshold": "threshold(0.05,max3,uniform)",
	} {
		s, err := SpendStrategyByName(name, 0.05)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if s.Name() != want {
			t.Fatalf("%q: Name() = %q, want %q", name, s.Name(), want)
		}
	}
	if _, err := SpendStrategyByName("unifrom", 0); err == nil {
		t.Fatal("typo must error")
	} else if got, want := err.Error(), `dp: unknown spend strategy "unifrom" (want uniform, decaying or threshold)`; got != want {
		t.Fatalf("error text:\n  got:  %s\n  want: %s", got, want)
	}
}
