package dp

import (
	"math"
	"testing"
	"testing/quick"
)

func sumsToTotal(t *testing.T, s Strategy, total float64, iters int) []float64 {
	t.Helper()
	alloc, err := s.Allocate(total, iters)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	if len(alloc) != iters {
		t.Fatalf("%s: %d slices, want %d", s.Name(), len(alloc), iters)
	}
	var sum float64
	for i, e := range alloc {
		if e <= 0 {
			t.Fatalf("%s: slice %d = %v not positive", s.Name(), i, e)
		}
		sum += e
	}
	if math.Abs(sum-total) > 1e-9*total {
		t.Fatalf("%s: slices sum to %v, want %v", s.Name(), sum, total)
	}
	return alloc
}

func allStrategies() []Strategy {
	return []Strategy{
		Uniform{},
		GeometricIncreasing{},
		GeometricIncreasing{Ratio: 2},
		GeometricDecreasing{},
		GeometricDecreasing{Ratio: 3},
		FinalBoost{},
		FinalBoost{Fraction: 0.7},
	}
}

func TestAllStrategiesSumToBudget(t *testing.T) {
	for _, s := range allStrategies() {
		for _, iters := range []int{1, 2, 5, 20} {
			sumsToTotal(t, s, 1.5, iters)
		}
	}
}

func TestUniformIsUniform(t *testing.T) {
	alloc := sumsToTotal(t, Uniform{}, 2.0, 8)
	for _, e := range alloc {
		if math.Abs(e-0.25) > 1e-12 {
			t.Fatalf("uniform slice = %v, want 0.25", e)
		}
	}
}

func TestGeometricIncreasingMonotone(t *testing.T) {
	alloc := sumsToTotal(t, GeometricIncreasing{Ratio: 1.5}, 1, 6)
	for i := 1; i < len(alloc); i++ {
		if alloc[i] <= alloc[i-1] {
			t.Fatalf("not increasing at %d: %v", i, alloc)
		}
	}
	// Ratio property.
	if math.Abs(alloc[1]/alloc[0]-1.5) > 1e-9 {
		t.Fatalf("ratio = %v, want 1.5", alloc[1]/alloc[0])
	}
}

func TestGeometricDecreasingMonotone(t *testing.T) {
	alloc := sumsToTotal(t, GeometricDecreasing{Ratio: 2}, 1, 6)
	for i := 1; i < len(alloc); i++ {
		if alloc[i] >= alloc[i-1] {
			t.Fatalf("not decreasing at %d: %v", i, alloc)
		}
	}
}

func TestGeometricDefaultsOnBadRatio(t *testing.T) {
	// Ratio <= 1 silently uses the documented default 1.5.
	a1, err := GeometricIncreasing{Ratio: 0.5}.Allocate(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := GeometricIncreasing{Ratio: 1.5}.Allocate(1, 4)
	for i := range a1 {
		if math.Abs(a1[i]-a2[i]) > 1e-12 {
			t.Fatalf("bad-ratio fallback mismatch at %d", i)
		}
	}
}

func TestFinalBoostShape(t *testing.T) {
	alloc := sumsToTotal(t, FinalBoost{Fraction: 0.5}, 1, 5)
	last := alloc[len(alloc)-1]
	if math.Abs(last-0.5) > 1e-12 {
		t.Fatalf("final slice = %v, want 0.5", last)
	}
	head := alloc[0]
	for i := 1; i < len(alloc)-1; i++ {
		if math.Abs(alloc[i]-head) > 1e-12 {
			t.Fatalf("head slices not uniform: %v", alloc)
		}
	}
	// Single iteration gets everything.
	one := sumsToTotal(t, FinalBoost{}, 1, 1)
	if one[0] != 1 {
		t.Fatalf("1-iteration final-boost = %v", one)
	}
}

func TestStrategyValidation(t *testing.T) {
	for _, s := range allStrategies() {
		if _, err := s.Allocate(0, 5); err == nil {
			t.Errorf("%s: zero budget should error", s.Name())
		}
		if _, err := s.Allocate(-1, 5); err == nil {
			t.Errorf("%s: negative budget should error", s.Name())
		}
		if _, err := s.Allocate(1, 0); err == nil {
			t.Errorf("%s: zero iterations should error", s.Name())
		}
	}
}

func TestStrategyByName(t *testing.T) {
	for name, wantName := range map[string]string{
		"":               "uniform",
		"uniform":        "uniform",
		"geo-increasing": "geo-increasing(1.50)",
		"geo-decreasing": "geo-decreasing(1.50)",
		"final-boost":    "final-boost(0.50)",
	} {
		s, err := StrategyByName(name)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if s.Name() != wantName {
			t.Errorf("%q resolved to %q, want %q", name, s.Name(), wantName)
		}
	}
	if _, err := StrategyByName("nope"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestStrategySumProperty(t *testing.T) {
	// Property: any positive budget and iteration count yields a valid
	// allocation for every strategy.
	f := func(rawEps float64, rawIters uint8) bool {
		eps := math.Abs(rawEps)
		if eps < 1e-6 || eps > 1e6 || math.IsNaN(eps) || math.IsInf(eps, 0) {
			return true
		}
		iters := int(rawIters%30) + 1
		for _, s := range allStrategies() {
			alloc, err := s.Allocate(eps, iters)
			if err != nil || len(alloc) != iters {
				return false
			}
			var sum float64
			for _, e := range alloc {
				if e <= 0 {
					return false
				}
				sum += e
			}
			if math.Abs(sum-eps) > 1e-9*eps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
