// Package dp implements the differential-privacy machinery of Chiaroscuro:
//
//   - the Laplace perturbation mechanism satisfying ε-differential privacy
//     (Dwork, ICALP 2006), parameterized by the L1 sensitivity of the
//     disclosed aggregate;
//   - the decomposition of a Laplace random variable into n independently
//     generated "noise shares" based on the gamma distribution (demo
//     paper, Sec. II.A): if G1_i, G2_i ~ Gamma(1/n, b) i.i.d., then
//     Σ_i (G1_i − G2_i) ~ Laplace(b). Each participant contributes one
//     share pair, so the noise is assembled collectively and no single
//     party knows (or controls) the total noise;
//   - a privacy accountant implementing self-composition: the global
//     privacy budget ε is split across the iterations' disclosures and
//     exhausting it is an error;
//   - budget-distribution strategies (the paper's "smart privacy budget
//     distribution" quality-enhancing heuristics);
//   - the probabilistic-DP bookkeeping: gossip aggregation is approximate,
//     so the guarantee is a probabilistic variant of ε-DP. The accountant
//     records the gossip error bound δ under which the ε holds.
package dp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrBudgetExhausted is returned by the Accountant when a disclosure would
// exceed the global privacy budget.
var ErrBudgetExhausted = errors.New("dp: privacy budget exhausted")

// Laplace draws one Laplace(0, scale) variate from rng using inverse
// transform sampling.
func Laplace(rng *rand.Rand, scale float64) float64 {
	if scale <= 0 {
		return 0
	}
	u := rng.Float64() - 0.5
	if u >= 0 {
		return -scale * math.Log(1-2*u)
	}
	return scale * math.Log(1+2*u)
}

// LaplaceScale returns the noise scale b = sensitivity/epsilon of the
// Laplace mechanism for an ε-DP disclosure of a query with the given L1
// sensitivity.
func LaplaceScale(sensitivity, epsilon float64) (float64, error) {
	if sensitivity < 0 {
		return 0, fmt.Errorf("dp: negative sensitivity %v", sensitivity)
	}
	if epsilon <= 0 {
		return 0, fmt.Errorf("dp: epsilon %v must be positive", epsilon)
	}
	return sensitivity / epsilon, nil
}

// Gamma draws one Gamma(shape, scale) variate. Marsaglia–Tsang for
// shape >= 1, with the standard U^{1/shape} boosting for shape < 1.
func Gamma(rng *rand.Rand, shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		return 0
	}
	if shape < 1 {
		// Boost: if X ~ Gamma(shape+1) and U ~ Uniform(0,1), then
		// X·U^{1/shape} ~ Gamma(shape).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		return Gamma(rng, shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// NoiseShare is one participant's additive contribution to a collectively
// assembled Laplace variate: Gamma(1/n, b) − Gamma(1/n, b).
func NoiseShare(rng *rand.Rand, n int, scale float64) float64 {
	if n <= 0 || scale <= 0 {
		return 0
	}
	shape := 1 / float64(n)
	return Gamma(rng, shape, scale) - Gamma(rng, shape, scale)
}

// NoiseShareVector draws one share per coordinate for a d-dimensional
// aggregate.
func NoiseShareVector(rng *rand.Rand, n, dim int, scale float64) []float64 {
	out := make([]float64, dim)
	for i := range out {
		out[i] = NoiseShare(rng, n, scale)
	}
	return out
}

// SumSensitivity returns the L1 sensitivity of the per-cluster disclosure
// of Chiaroscuro's computation step: one individual's series (bounded per
// coordinate by maxAbs, with dim coordinates) moves between clusters, so
// a single cluster's (sum, count) pair changes by at most dim·maxAbs in
// the sum and 1 in the count. Since an individual affects exactly two
// clusters' aggregates when changing (the old and the new), the full
// query's L1 sensitivity is 2·(dim·maxAbs + 1); for the add/remove
// neighbouring-database convention it is dim·maxAbs + 1. Chiaroscuro uses
// the add/remove convention (a participant joining or leaving), which is
// what this helper computes.
func SumSensitivity(dim int, maxAbs float64) float64 {
	if dim < 0 || maxAbs < 0 {
		return 0
	}
	return float64(dim)*maxAbs + 1
}
