package dp

import (
	"fmt"
	"sync"
)

// Accountant tracks consumption of a global ε privacy budget across the
// iterations' disclosures (self-composition: the total privacy loss is the
// sum of the per-disclosure ε). It also records the probabilistic-DP slack
// introduced by gossip approximation (see RecordGossipError).
//
// Accountant is safe for concurrent use; in the simulation a single
// logical accountant audits the whole run (every participant applies the
// same schedule, so their individual ledgers are identical).
type Accountant struct {
	mu        sync.Mutex
	total     float64
	spent     float64
	ledger    []Disclosure
	maxRelErr float64 // worst observed gossip relative error
}

// Disclosure is one ledger entry.
type Disclosure struct {
	Label   string
	Epsilon float64
}

// NewAccountant creates an accountant with the given total budget.
func NewAccountant(totalEpsilon float64) (*Accountant, error) {
	if totalEpsilon <= 0 {
		return nil, fmt.Errorf("dp: total budget %v must be positive", totalEpsilon)
	}
	return &Accountant{total: totalEpsilon}, nil
}

// Spend records a disclosure of eps under label. It fails with
// ErrBudgetExhausted (and records nothing) if the budget would overrun.
// A tiny relative tolerance absorbs floating-point drift in strategies
// that split the budget into many slices.
func (a *Accountant) Spend(label string, eps float64) error {
	if eps <= 0 {
		return fmt.Errorf("dp: disclosure epsilon %v must be positive", eps)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	const tol = 1e-9
	if a.spent+eps > a.total*(1+tol) {
		return fmt.Errorf("%w: spent %.6g + %.6g > %.6g", ErrBudgetExhausted, a.spent, eps, a.total)
	}
	a.spent += eps
	a.ledger = append(a.ledger, Disclosure{Label: label, Epsilon: eps})
	return nil
}

// Remaining returns the unspent budget (never negative).
func (a *Accountant) Remaining() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := a.total - a.spent
	if r < 0 {
		return 0
	}
	return r
}

// Spent returns the consumed budget.
func (a *Accountant) Spent() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.spent
}

// Total returns the global budget.
func (a *Accountant) Total() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Ledger returns a copy of the disclosure history.
func (a *Accountant) Ledger() []Disclosure {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Disclosure, len(a.ledger))
	copy(out, a.ledger)
	return out
}

// RecordGossipError notes the relative approximation error of a gossip
// aggregation round. Because the disclosed aggregate deviates from the
// exact sum, the ε guarantee only holds up to this distortion — the
// "probabilistic variant of ε-differential privacy" of the paper. The
// accountant keeps the worst error observed.
func (a *Accountant) RecordGossipError(relErr float64) {
	if relErr < 0 {
		relErr = -relErr
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if relErr > a.maxRelErr {
		a.maxRelErr = relErr
	}
}

// Report summarizes the privacy position of a finished run.
type Report struct {
	TotalEpsilon    float64
	SpentEpsilon    float64
	Disclosures     int
	MaxGossipRelErr float64
}

// Report returns the current privacy report.
func (a *Accountant) Report() Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Report{
		TotalEpsilon:    a.total,
		SpentEpsilon:    a.spent,
		Disclosures:     len(a.ledger),
		MaxGossipRelErr: a.maxRelErr,
	}
}
