package dp

import (
	"fmt"
	"math"
)

// Strategy decides how the global privacy budget is distributed across the
// k-means iterations — the first of the paper's two quality-enhancing
// heuristic families ("smart privacy budget distribution strategies",
// Sec. II.B). Allocate must return exactly iterations positive values
// summing to totalEpsilon (up to floating point).
type Strategy interface {
	// Name identifies the strategy in logs and experiment tables.
	Name() string
	// Allocate splits totalEpsilon across the given number of iterations.
	Allocate(totalEpsilon float64, iterations int) ([]float64, error)
}

func checkAllocArgs(totalEpsilon float64, iterations int) error {
	if totalEpsilon <= 0 {
		return fmt.Errorf("dp: total epsilon %v must be positive", totalEpsilon)
	}
	if iterations < 1 {
		return fmt.Errorf("dp: iterations %d must be >= 1", iterations)
	}
	return nil
}

// Uniform splits the budget evenly: ε_i = ε/I. The baseline strategy.
type Uniform struct{}

// Name implements Strategy.
func (Uniform) Name() string { return "uniform" }

// Allocate implements Strategy.
func (Uniform) Allocate(totalEpsilon float64, iterations int) ([]float64, error) {
	if err := checkAllocArgs(totalEpsilon, iterations); err != nil {
		return nil, err
	}
	out := make([]float64, iterations)
	per := totalEpsilon / float64(iterations)
	for i := range out {
		out[i] = per
	}
	return out, nil
}

// GeometricIncreasing allocates geometrically growing slices
// ε_i ∝ Ratio^i, spending little while centroids are still moving wildly
// and most when the final centroids (the ones users actually keep) are
// disclosed. Ratio must be > 1.
type GeometricIncreasing struct {
	Ratio float64
}

// Name implements Strategy.
func (g GeometricIncreasing) Name() string { return fmt.Sprintf("geo-increasing(%.2f)", g.ratio()) }

func (g GeometricIncreasing) ratio() float64 {
	if g.Ratio <= 1 {
		return 1.5
	}
	return g.Ratio
}

// Allocate implements Strategy.
func (g GeometricIncreasing) Allocate(totalEpsilon float64, iterations int) ([]float64, error) {
	if err := checkAllocArgs(totalEpsilon, iterations); err != nil {
		return nil, err
	}
	r := g.ratio()
	out := make([]float64, iterations)
	var norm float64
	for i := range out {
		out[i] = math.Pow(r, float64(i))
		norm += out[i]
	}
	for i := range out {
		out[i] = out[i] / norm * totalEpsilon
	}
	return out, nil
}

// GeometricDecreasing allocates geometrically shrinking slices — most
// budget to the first iterations, useful when early centroid placement
// dominates final quality. Ratio must be > 1 (the decay factor).
type GeometricDecreasing struct {
	Ratio float64
}

// Name implements Strategy.
func (g GeometricDecreasing) Name() string { return fmt.Sprintf("geo-decreasing(%.2f)", g.ratio()) }

func (g GeometricDecreasing) ratio() float64 {
	if g.Ratio <= 1 {
		return 1.5
	}
	return g.Ratio
}

// Allocate implements Strategy.
func (g GeometricDecreasing) Allocate(totalEpsilon float64, iterations int) ([]float64, error) {
	inc := GeometricIncreasing{Ratio: g.ratio()}
	out, err := inc.Allocate(totalEpsilon, iterations)
	if err != nil {
		return nil, err
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, nil
}

// FinalBoost reserves a fraction of the budget for the last iteration and
// splits the rest uniformly: the disclosed end result gets high fidelity
// while intermediate centroids stay cheap. Fraction defaults to 0.5 and
// must lie in (0, 1).
type FinalBoost struct {
	Fraction float64
}

// Name implements Strategy.
func (f FinalBoost) Name() string { return fmt.Sprintf("final-boost(%.2f)", f.fraction()) }

func (f FinalBoost) fraction() float64 {
	if f.Fraction <= 0 || f.Fraction >= 1 {
		return 0.5
	}
	return f.Fraction
}

// Allocate implements Strategy.
func (f FinalBoost) Allocate(totalEpsilon float64, iterations int) ([]float64, error) {
	if err := checkAllocArgs(totalEpsilon, iterations); err != nil {
		return nil, err
	}
	out := make([]float64, iterations)
	if iterations == 1 {
		out[0] = totalEpsilon
		return out, nil
	}
	frac := f.fraction()
	head := totalEpsilon * (1 - frac) / float64(iterations-1)
	for i := 0; i < iterations-1; i++ {
		out[i] = head
	}
	out[iterations-1] = totalEpsilon * frac
	return out, nil
}

// StrategyByName resolves the strategy names used by CLI flags and the
// experiment driver.
func StrategyByName(name string) (Strategy, error) {
	switch name {
	case "", "uniform":
		return Uniform{}, nil
	case "geo-increasing":
		return GeometricIncreasing{}, nil
	case "geo-decreasing":
		return GeometricDecreasing{}, nil
	case "final-boost":
		return FinalBoost{}, nil
	default:
		return nil, fmt.Errorf("dp: unknown budget strategy %q", name)
	}
}
