package dp

import (
	"errors"
	"sync"
	"testing"
)

func TestAccountantBasicSpend(t *testing.T) {
	a, err := NewAccountant(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("x", 0.4); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("y", 0.6); err != nil {
		t.Fatal(err)
	}
	if got := a.Spent(); got != 1.0 {
		t.Fatalf("spent = %v", got)
	}
	if got := a.Remaining(); got != 0 {
		t.Fatalf("remaining = %v", got)
	}
	if got := a.Total(); got != 1.0 {
		t.Fatalf("total = %v", got)
	}
}

func TestAccountantExhaustion(t *testing.T) {
	a, _ := NewAccountant(1.0)
	if err := a.Spend("x", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := a.Spend("y", 0.2); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	// A failed spend must not consume budget.
	if got := a.Spent(); got != 0.9 {
		t.Fatalf("failed spend consumed budget: %v", got)
	}
	// Budget still available for a fitting spend.
	if err := a.Spend("z", 0.1); err != nil {
		t.Fatalf("fitting spend rejected: %v", err)
	}
}

func TestAccountantFloatingPointSlack(t *testing.T) {
	// Ten slices of eps/10 must fit despite floating-point drift.
	a, _ := NewAccountant(1.0)
	for i := 0; i < 10; i++ {
		if err := a.Spend("slice", 0.1); err != nil {
			t.Fatalf("slice %d rejected: %v", i, err)
		}
	}
}

func TestAccountantValidation(t *testing.T) {
	if _, err := NewAccountant(0); err == nil {
		t.Fatal("zero budget should error")
	}
	if _, err := NewAccountant(-1); err == nil {
		t.Fatal("negative budget should error")
	}
	a, _ := NewAccountant(1)
	if err := a.Spend("x", 0); err == nil {
		t.Fatal("zero disclosure should error")
	}
	if err := a.Spend("x", -0.1); err == nil {
		t.Fatal("negative disclosure should error")
	}
}

func TestAccountantLedger(t *testing.T) {
	a, _ := NewAccountant(2)
	_ = a.Spend("iter-0", 0.5)
	_ = a.Spend("iter-1", 0.25)
	ledger := a.Ledger()
	if len(ledger) != 2 {
		t.Fatalf("ledger entries = %d", len(ledger))
	}
	if ledger[0].Label != "iter-0" || ledger[0].Epsilon != 0.5 {
		t.Fatalf("ledger[0] = %+v", ledger[0])
	}
	// Returned ledger is a copy.
	ledger[0].Label = "mutated"
	if a.Ledger()[0].Label != "iter-0" {
		t.Fatal("ledger not copied")
	}
}

func TestAccountantGossipError(t *testing.T) {
	a, _ := NewAccountant(1)
	a.RecordGossipError(0.01)
	a.RecordGossipError(-0.05) // absolute value kept
	a.RecordGossipError(0.002)
	r := a.Report()
	if r.MaxGossipRelErr != 0.05 {
		t.Fatalf("max gossip error = %v, want 0.05", r.MaxGossipRelErr)
	}
}

func TestAccountantReport(t *testing.T) {
	a, _ := NewAccountant(3)
	_ = a.Spend("x", 1)
	r := a.Report()
	if r.TotalEpsilon != 3 || r.SpentEpsilon != 1 || r.Disclosures != 1 {
		t.Fatalf("report = %+v", r)
	}
}

func TestAccountantConcurrentSpend(t *testing.T) {
	a, _ := NewAccountant(100)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				_ = a.Spend("c", 0.5)
			}
		}()
	}
	wg.Wait()
	if got := a.Spent(); got != 100 {
		t.Fatalf("concurrent spent = %v, want exactly the budget", got)
	}
}
