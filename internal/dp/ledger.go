package dp

import (
	"fmt"
	"math"
	"sync"
)

// Ledger is the longitudinal companion of the per-run Accountant: where
// an Accountant audits the iterations of one clustering, the Ledger
// audits the windows of a streaming session against one lifetime budget.
// Re-clustering a sliding window is a fresh sequence of disclosures over
// (largely) the same people, so the per-window epsilons self-compose —
// exactly the compounding the longitudinal budget must bound. Each
// window draws its epsilon up front (refused with ErrBudgetExhausted
// when the lifetime budget would overrun) and settles down to what the
// run actually disclosed when it converges early.
//
// Ledger is safe for concurrent use (the cohort scheduler reads sibling
// cohorts' reports while windows run).
type Ledger struct {
	mu       sync.Mutex
	lifetime float64
	spent    float64
	draws    []WindowDraw
}

// WindowDraw is one ledger entry: what a window reserved and what it
// actually disclosed.
type WindowDraw struct {
	// Window is the 0-based window index.
	Window int
	// Requested is the epsilon drawn before the window ran (0 for a
	// skipped window).
	Requested float64
	// Spent is what the window's disclosures actually consumed — at most
	// Requested, less when the run converged early.
	Spent float64
	// Skipped marks a window the spend strategy elected not to
	// re-cluster (nothing disclosed, nothing spent).
	Skipped bool
}

// NewLedger creates a ledger with the given lifetime epsilon budget.
func NewLedger(lifetimeEpsilon float64) (*Ledger, error) {
	if lifetimeEpsilon <= 0 || math.IsNaN(lifetimeEpsilon) || math.IsInf(lifetimeEpsilon, 0) {
		return nil, fmt.Errorf("dp: lifetime budget %v must be positive and finite", lifetimeEpsilon)
	}
	return &Ledger{lifetime: lifetimeEpsilon}, nil
}

// Draw reserves eps for the given window. It fails with
// ErrBudgetExhausted (recording nothing) when the reservation would
// overrun the lifetime budget; the same relative tolerance as
// Accountant.Spend absorbs floating-point drift in strategies that split
// the budget into many windows.
func (l *Ledger) Draw(window int, eps float64) error {
	if eps <= 0 || math.IsNaN(eps) {
		return fmt.Errorf("dp: window %d draw %v must be positive", window, eps)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	const tol = 1e-9
	if l.spent+eps > l.lifetime*(1+tol) {
		return fmt.Errorf("%w: window %d draw %.6g would exceed lifetime %.6g (%.6g already spent)",
			ErrBudgetExhausted, window, eps, l.lifetime, l.spent)
	}
	l.spent += eps
	l.draws = append(l.draws, WindowDraw{Window: window, Requested: eps, Spent: eps})
	return nil
}

// Settle reduces the most recent draw for window to what the run
// actually disclosed, refunding the difference (early convergence leaves
// per-iteration slices unspent). Settling above the reservation is a
// protocol bug and is clamped to the reservation — budget can be
// returned, never retroactively granted.
func (l *Ledger) Settle(window int, actual float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := len(l.draws) - 1; i >= 0; i-- {
		d := &l.draws[i]
		if d.Window != window || d.Skipped {
			continue
		}
		if actual < 0 {
			actual = 0
		}
		if actual > d.Requested {
			actual = d.Requested
		}
		l.spent -= d.Spent - actual
		d.Spent = actual
		return
	}
}

// RecordSkip notes a window the spend strategy elected not to
// re-cluster: nothing disclosed, nothing spent, but the decision itself
// is part of the auditable history.
func (l *Ledger) RecordSkip(window int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.draws = append(l.draws, WindowDraw{Window: window, Skipped: true})
}

// Remaining returns the unspent lifetime budget (never negative).
func (l *Ledger) Remaining() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	r := l.lifetime - l.spent
	if r < 0 {
		return 0
	}
	return r
}

// Spent returns the consumed lifetime budget.
func (l *Ledger) Spent() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.spent
}

// Lifetime returns the total lifetime budget.
func (l *Ledger) Lifetime() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lifetime
}

// Draws returns a copy of the per-window history.
func (l *Ledger) Draws() []WindowDraw {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]WindowDraw, len(l.draws))
	copy(out, l.draws)
	return out
}

// LedgerReport summarizes the longitudinal privacy position of a
// streaming session.
type LedgerReport struct {
	LifetimeEpsilon float64
	SpentEpsilon    float64
	Remaining       float64
	Windows         int // windows that ran (drew budget)
	Skips           int // windows the strategy skipped
}

// Report returns the current longitudinal report.
func (l *Ledger) Report() LedgerReport {
	l.mu.Lock()
	defer l.mu.Unlock()
	rep := LedgerReport{
		LifetimeEpsilon: l.lifetime,
		SpentEpsilon:    l.spent,
		Remaining:       l.lifetime - l.spent,
	}
	if rep.Remaining < 0 {
		rep.Remaining = 0
	}
	for _, d := range l.draws {
		if d.Skipped {
			rep.Skips++
		} else {
			rep.Windows++
		}
	}
	return rep
}
