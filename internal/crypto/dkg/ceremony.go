package dkg

import (
	"fmt"
	"io"
	"math/big"

	"chiaroscuro/internal/crypto/damgardjurik"
)

// In-memory ceremony drivers: run every participant's state machine
// through the three phases with a fault hook per dealer. This is what
// internal/core uses for engine runs (the transport layer drives the
// same state machines over TCP instead), and what the byzantine
// scenario tests script.

// Behaviour is a dealer's scripted fault class. The three non-honest
// behaviours mirror the simnet byzantine-dealer faults and exercise
// the three disqualification paths of Finish.
type Behaviour int

const (
	// BehaviourHonest deals, responds and justifies correctly.
	BehaviourHonest Behaviour = iota
	// BehaviourBadShare corrupts the share dealt to one victim (the
	// cyclically next receiver) and withholds the justification — the
	// unanswered complaint disqualifies the dealer.
	BehaviourBadShare
	// BehaviourEquivocate sends a different commitment vector to the
	// upper half of the receivers — the digest disagreement in the
	// Response phase disqualifies the dealer.
	BehaviourEquivocate
	// BehaviourSilent deals to nobody — the unanimous missing-deal
	// verdict disqualifies the dealer.
	BehaviourSilent
)

// CeremonyResult aggregates a driven ceremony: one Result per receiver
// (index order) plus the shared verdict every node agreed on.
type CeremonyResult struct {
	Results      []*Result // nil entries only when the ceremony aborted
	Qualified    []int
	Disqualified []int
}

// RandFunc supplies each participant's coefficient randomness;
// nil means crypto/rand for everyone.
type RandFunc func(party int) io.Reader

// RunFreshCeremony drives a fresh DKG among `parties` receivers, with
// the given dealers each contributing its additive secret piece
// (secrets[dealer id]). byz scripts dealer faults (nil = all honest).
// On disqualification it returns the agreed verdict and
// ErrDisqualified; the caller re-splits the genesis among the
// qualified dealers and re-runs.
func RunFreshCeremony(pk *damgardjurik.PublicKey, parties, threshold int, dealers []int, secrets map[int]*big.Int, rnd RandFunc, byz map[int]Behaviour) (*CeremonyResult, error) {
	nodes := make([]*Node, parties)
	for j := 1; j <= parties; j++ {
		cfg := Config{
			PK: pk, Parties: parties, Threshold: threshold,
			Index: j, Dealers: dealers,
		}
		for _, d := range dealers {
			if d == j {
				cfg.DealerIndex = j
				cfg.Secret = secrets[j]
			}
		}
		if rnd != nil {
			cfg.Rand = rnd(j)
		}
		nd, err := NewNode(cfg)
		if err != nil {
			return nil, err
		}
		nodes[j-1] = nd
	}
	return driveCeremony(nodes, byz)
}

// OldKey describes the deployment being reshared.
type OldKey struct {
	Threshold int
	Delta     *big.Int // old Parties factorial
	Scale     *big.Int
}

// RunReshareCeremony re-keys onto a fresh (newParties, newThreshold)
// deployment from the surviving old shares: survivors deal their old
// share and become receivers 1..len(survivors) (ascending old index);
// remaining receivers are share-less newcomers. byz scripts dealer
// faults by OLD index. The reshare tolerates disqualification as long
// as the old threshold survives.
func RunReshareCeremony(pk *damgardjurik.PublicKey, old OldKey, survivors []damgardjurik.KeyShare, newParties, newThreshold int, rnd RandFunc, byz map[int]Behaviour) (*CeremonyResult, error) {
	if len(survivors) > newParties {
		return nil, fmt.Errorf("%w: %d survivors exceed new deployment of %d", ErrConfig, len(survivors), newParties)
	}
	dealers := make([]int, len(survivors))
	for i, s := range survivors {
		dealers[i] = s.Index
		if i > 0 && dealers[i] <= dealers[i-1] {
			return nil, fmt.Errorf("%w: survivor shares must be ascending by old index", ErrConfig)
		}
	}
	nodes := make([]*Node, newParties)
	for j := 1; j <= newParties; j++ {
		cfg := Config{
			PK: pk, Parties: newParties, Threshold: newThreshold,
			Index: j, Dealers: dealers,
			OldThreshold: old.Threshold, OldDelta: old.Delta, OldScale: old.Scale,
		}
		if j <= len(survivors) {
			cfg.DealerIndex = survivors[j-1].Index
			cfg.Secret = survivors[j-1].Value
		}
		if rnd != nil {
			cfg.Rand = rnd(j)
		}
		nd, err := NewNode(cfg)
		if err != nil {
			return nil, err
		}
		nodes[j-1] = nd
	}
	return driveCeremony(nodes, byz)
}

// driveCeremony runs the three phases across the given nodes,
// applying scripted dealer behaviours, and checks that every node
// reached the same verdict (a protocol invariant, returned as an
// error rather than assumed).
func driveCeremony(nodes []*Node, byz map[int]Behaviour) (*CeremonyResult, error) {
	parties := len(nodes)
	// Phase 1: deal, with scripted corruption.
	for _, nd := range nodes {
		deals := nd.Deals()
		if deals == nil {
			continue
		}
		dealerID := nd.cfg.DealerIndex
		switch byz[dealerID] {
		case BehaviourSilent:
			continue
		case BehaviourBadShare:
			victim := nd.cfg.Index%parties + 1
			deals[victim-1].Share = new(big.Int).Add(deals[victim-1].Share, one)
		case BehaviourEquivocate:
			for j := parties/2 + 1; j <= parties; j++ {
				forged := deals[j-1].Commits[len(deals[j-1].Commits)-1]
				forged.Mul(forged, nd.g)
				forged.Mod(forged, nd.mod)
			}
		}
		for j := 1; j <= parties; j++ {
			if err := nodes[j-1].HandleDeal(deals[j-1]); err != nil {
				return nil, fmt.Errorf("dkg: routing deal %d→%d: %w", dealerID, j, err)
			}
		}
	}
	// Phase 2: broadcast responses.
	for _, nd := range nodes {
		r := nd.Response()
		for _, peer := range nodes {
			if peer == nd {
				continue
			}
			if err := peer.HandleResponse(r); err != nil {
				return nil, fmt.Errorf("dkg: routing response from %d: %w", r.From, err)
			}
		}
	}
	// Phase 3: broadcast justifications; byzantine dealers withhold.
	for _, nd := range nodes {
		if nd.cfg.DealerIndex != 0 && byz[nd.cfg.DealerIndex] != BehaviourHonest {
			continue
		}
		j, err := nd.Justification()
		if err != nil {
			return nil, err
		}
		for _, peer := range nodes {
			if err := peer.HandleJustification(j); err != nil {
				return nil, fmt.Errorf("dkg: routing justification from %d: %w", j.Dealer, err)
			}
		}
	}
	// Finish: all nodes must agree on the verdict; any divergence is a
	// protocol-invariant break, reported rather than assumed away.
	out := &CeremonyResult{Results: make([]*Result, parties)}
	var firstErr error
	for i, nd := range nodes {
		res, err := nd.Finish()
		if res == nil {
			return nil, err
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		out.Results[i] = res
		if i == 0 {
			out.Qualified, out.Disqualified = res.Qualified, res.Disqualified
		} else if !equalInts(res.Qualified, out.Qualified) || !equalInts(res.Disqualified, out.Disqualified) {
			return nil, fmt.Errorf("dkg: verdict divergence: node %d sees qualified %v / disqualified %v, node 1 saw %v / %v",
				i+1, res.Qualified, res.Disqualified, out.Qualified, out.Disqualified)
		}
	}
	return out, firstErr
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
