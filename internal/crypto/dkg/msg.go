package dkg

import (
	"errors"
	"fmt"
	"math/big"

	"chiaroscuro/internal/wire"
)

// Wire artifacts of the three ceremony phases. Encoding follows the
// repo's wire conventions (internal/wire): a [kind, version] header,
// length-prefixed fields, uint32 counts, and strict Unmarshal
// validation — every count is bounded against the remaining buffer
// before allocation, so the fuzz targets cannot be used to provoke
// huge allocations from tiny inputs.
//
// Shares are signed integers (resharing applies signed Lagrange
// weights), so share fields carry an explicit sign byte; commitment
// values are group elements in [0, n^{s+1}) and stay unsigned.

const (
	msgVersion        = 1
	kindDeal          = 0x11
	kindResponse      = 0x12
	kindJustification = 0x13

	// maxWireParties and maxWireCommits bound Unmarshal allocations;
	// both are far above any deployment this codebase runs.
	maxWireParties = 1 << 12
	maxWireCommits = 256
)

// ErrMessage covers every malformed-artifact condition.
var ErrMessage = errors.New("dkg: malformed message")

// Deal is dealer→receiver, private: the receiver's polynomial
// evaluation plus the dealer's public coefficient commitments.
type Deal struct {
	Dealer   int // dealer id (old-deployment index when resharing)
	Receiver int // receiver index in the new deployment, 1-based
	Share    *big.Int
	Commits  []*big.Int
}

// DealerVerdict is one receiver's public statement about one dealer:
// whether it complains (bad or missing share) and the digest of the
// commitment vector it saw (all-zero = no deal received).
type DealerVerdict struct {
	Dealer    int
	Complaint bool
	Digest    [32]byte
}

// Response is a receiver's broadcast verdict list, one entry per
// expected dealer in ascending dealer order.
type Response struct {
	From     int // receiver index, 1-based
	Verdicts []DealerVerdict
}

// JustShare is one revealed share inside a justification.
type JustShare struct {
	Receiver int
	Share    *big.Int
}

// Justification is a dealer's broadcast answer to complaints: its
// commitment vector (so even receivers it never dealt to can verify)
// plus the revealed share of every complainer. Non-dealers broadcast
// an empty justification (Dealer 0) purely for wire-phase regularity.
type Justification struct {
	Dealer  int
	Commits []*big.Int
	Shares  []JustShare
}

func appendSigned(buf []byte, v *big.Int) []byte {
	if v == nil || v.Sign() == 0 {
		return wire.AppendBytes(buf, nil)
	}
	b := v.Bytes()
	field := make([]byte, 1, 1+len(b))
	if v.Sign() < 0 {
		field[0] = 1
	}
	return wire.AppendBytes(buf, append(field, b...))
}

func readSigned(fr *wire.FieldReader) (*big.Int, error) {
	b, err := fr.Bytes()
	if err != nil {
		return nil, err
	}
	if len(b) == 0 {
		return new(big.Int), nil
	}
	if b[0] > 1 {
		return nil, fmt.Errorf("%w: bad sign byte", ErrMessage)
	}
	v := new(big.Int).SetBytes(b[1:])
	if b[0] == 1 {
		v.Neg(v)
	}
	return v, nil
}

func checkCount(fr *wire.FieldReader, count uint32, max int) error {
	if int64(count) > int64(max) {
		return fmt.Errorf("%w: count %d exceeds limit %d", ErrMessage, count, max)
	}
	// Every counted element costs at least 4 bytes on the wire, which
	// bounds allocation by the actual input size.
	if int64(count)*4 > int64(len(fr.Rest())) {
		return fmt.Errorf("%w: count %d exceeds buffer", ErrMessage, count)
	}
	return nil
}

func header(kind byte) []byte { return []byte{kind, msgVersion} }

func checkHeader(buf []byte, kind byte) (*wire.FieldReader, error) {
	if len(buf) < 2 || buf[0] != kind || buf[1] != msgVersion {
		return nil, fmt.Errorf("%w: bad header", ErrMessage)
	}
	return wire.NewFieldReader(buf[2:]), nil
}

// MarshalDeal encodes a Deal.
func MarshalDeal(d *Deal) ([]byte, error) {
	if d == nil || d.Dealer < 1 || d.Receiver < 1 || len(d.Commits) == 0 || len(d.Commits) > maxWireCommits {
		return nil, fmt.Errorf("%w: invalid deal", ErrMessage)
	}
	buf := header(kindDeal)
	buf = wire.AppendUint32(buf, uint32(d.Dealer))
	buf = wire.AppendUint32(buf, uint32(d.Receiver))
	buf = appendSigned(buf, d.Share)
	buf = wire.AppendUint32(buf, uint32(len(d.Commits)))
	for _, c := range d.Commits {
		if c == nil || c.Sign() < 0 {
			return nil, fmt.Errorf("%w: invalid commitment", ErrMessage)
		}
		buf = wire.AppendBytes(buf, c.Bytes())
	}
	return buf, nil
}

// UnmarshalDeal decodes and validates a Deal.
func UnmarshalDeal(buf []byte) (*Deal, error) {
	fr, err := checkHeader(buf, kindDeal)
	if err != nil {
		return nil, err
	}
	dealer, err := fr.Uint32()
	if err != nil {
		return nil, err
	}
	receiver, err := fr.Uint32()
	if err != nil {
		return nil, err
	}
	if dealer < 1 || dealer > maxWireParties || receiver < 1 || receiver > maxWireParties {
		return nil, fmt.Errorf("%w: party index out of range", ErrMessage)
	}
	share, err := readSigned(fr)
	if err != nil {
		return nil, err
	}
	count, err := fr.Uint32()
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, fmt.Errorf("%w: deal without commitments", ErrMessage)
	}
	if err := checkCount(fr, count, maxWireCommits); err != nil {
		return nil, err
	}
	commits := make([]*big.Int, count)
	for i := range commits {
		b, err := fr.Bytes()
		if err != nil {
			return nil, err
		}
		commits[i] = new(big.Int).SetBytes(b)
	}
	if err := fr.Done(); err != nil {
		return nil, err
	}
	return &Deal{Dealer: int(dealer), Receiver: int(receiver), Share: share, Commits: commits}, nil
}

// MarshalResponse encodes a Response.
func MarshalResponse(r *Response) ([]byte, error) {
	if r == nil || r.From < 1 || len(r.Verdicts) == 0 || len(r.Verdicts) > maxWireParties {
		return nil, fmt.Errorf("%w: invalid response", ErrMessage)
	}
	buf := header(kindResponse)
	buf = wire.AppendUint32(buf, uint32(r.From))
	buf = wire.AppendUint32(buf, uint32(len(r.Verdicts)))
	for _, v := range r.Verdicts {
		if v.Dealer < 1 {
			return nil, fmt.Errorf("%w: invalid verdict dealer", ErrMessage)
		}
		buf = wire.AppendUint32(buf, uint32(v.Dealer))
		var flag uint32
		if v.Complaint {
			flag = 1
		}
		buf = wire.AppendUint32(buf, flag)
		buf = wire.AppendBytes(buf, v.Digest[:])
	}
	return buf, nil
}

// UnmarshalResponse decodes and validates a Response.
func UnmarshalResponse(buf []byte) (*Response, error) {
	fr, err := checkHeader(buf, kindResponse)
	if err != nil {
		return nil, err
	}
	from, err := fr.Uint32()
	if err != nil {
		return nil, err
	}
	if from < 1 || from > maxWireParties {
		return nil, fmt.Errorf("%w: party index out of range", ErrMessage)
	}
	count, err := fr.Uint32()
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return nil, fmt.Errorf("%w: response without verdicts", ErrMessage)
	}
	if err := checkCount(fr, count, maxWireParties); err != nil {
		return nil, err
	}
	verdicts := make([]DealerVerdict, count)
	for i := range verdicts {
		dealer, err := fr.Uint32()
		if err != nil {
			return nil, err
		}
		if dealer < 1 || dealer > maxWireParties {
			return nil, fmt.Errorf("%w: party index out of range", ErrMessage)
		}
		flag, err := fr.Uint32()
		if err != nil {
			return nil, err
		}
		if flag > 1 {
			return nil, fmt.Errorf("%w: bad verdict flag", ErrMessage)
		}
		digest, err := fr.Bytes()
		if err != nil {
			return nil, err
		}
		if len(digest) != 32 {
			return nil, fmt.Errorf("%w: digest must be 32 bytes", ErrMessage)
		}
		verdicts[i].Dealer = int(dealer)
		verdicts[i].Complaint = flag == 1
		copy(verdicts[i].Digest[:], digest)
	}
	if err := fr.Done(); err != nil {
		return nil, err
	}
	return &Response{From: int(from), Verdicts: verdicts}, nil
}

// MarshalJustification encodes a Justification (possibly empty).
func MarshalJustification(j *Justification) ([]byte, error) {
	if j == nil || j.Dealer < 0 || len(j.Commits) > maxWireCommits || len(j.Shares) > maxWireParties {
		return nil, fmt.Errorf("%w: invalid justification", ErrMessage)
	}
	if j.Dealer == 0 && (len(j.Commits) > 0 || len(j.Shares) > 0) {
		return nil, fmt.Errorf("%w: non-dealer justification must be empty", ErrMessage)
	}
	buf := header(kindJustification)
	buf = wire.AppendUint32(buf, uint32(j.Dealer))
	buf = wire.AppendUint32(buf, uint32(len(j.Commits)))
	for _, c := range j.Commits {
		if c == nil || c.Sign() < 0 {
			return nil, fmt.Errorf("%w: invalid commitment", ErrMessage)
		}
		buf = wire.AppendBytes(buf, c.Bytes())
	}
	buf = wire.AppendUint32(buf, uint32(len(j.Shares)))
	for _, s := range j.Shares {
		if s.Receiver < 1 {
			return nil, fmt.Errorf("%w: invalid justification receiver", ErrMessage)
		}
		buf = wire.AppendUint32(buf, uint32(s.Receiver))
		buf = appendSigned(buf, s.Share)
	}
	return buf, nil
}

// UnmarshalJustification decodes and validates a Justification.
func UnmarshalJustification(buf []byte) (*Justification, error) {
	fr, err := checkHeader(buf, kindJustification)
	if err != nil {
		return nil, err
	}
	dealer, err := fr.Uint32()
	if err != nil {
		return nil, err
	}
	if dealer > maxWireParties {
		return nil, fmt.Errorf("%w: party index out of range", ErrMessage)
	}
	ccount, err := fr.Uint32()
	if err != nil {
		return nil, err
	}
	if err := checkCount(fr, ccount, maxWireCommits); err != nil {
		return nil, err
	}
	commits := make([]*big.Int, ccount)
	for i := range commits {
		b, err := fr.Bytes()
		if err != nil {
			return nil, err
		}
		commits[i] = new(big.Int).SetBytes(b)
	}
	scount, err := fr.Uint32()
	if err != nil {
		return nil, err
	}
	if err := checkCount(fr, scount, maxWireParties); err != nil {
		return nil, err
	}
	shares := make([]JustShare, scount)
	for i := range shares {
		recv, err := fr.Uint32()
		if err != nil {
			return nil, err
		}
		if recv < 1 || recv > maxWireParties {
			return nil, fmt.Errorf("%w: party index out of range", ErrMessage)
		}
		share, err := readSigned(fr)
		if err != nil {
			return nil, err
		}
		shares[i] = JustShare{Receiver: int(recv), Share: share}
	}
	if err := fr.Done(); err != nil {
		return nil, err
	}
	j := &Justification{Dealer: int(dealer), Commits: commits, Shares: shares}
	if j.Dealer == 0 && (len(j.Commits) > 0 || len(j.Shares) > 0) {
		return nil, fmt.Errorf("%w: non-dealer justification must be empty", ErrMessage)
	}
	if len(commits) == 0 {
		j.Commits = nil
	}
	if len(shares) == 0 {
		j.Shares = nil
	}
	return j, nil
}
