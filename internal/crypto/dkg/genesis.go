package dkg

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"

	"chiaroscuro/internal/crypto/damgardjurik"
)

// GenesisPieces additively splits the threshold decryption exponent
// d (d ≡ 0 mod m', d ≡ 1 mod n^s) among `founders` dealers: pieces
// d_1..d_l with Σ d_i = d exactly. Each founder then Shamir-deals its
// piece in the ceremony, and the final shares reconstruct d without
// any single party ever holding it.
//
// HONESTY CAVEAT, spelled out because it bounds the claim this package
// can make: deriving d requires m' = p'q', i.e. the factorization of
// the modulus. True dealerless setup therefore needs a distributed
// RSA modulus ceremony (Boneh–Franklin style multiparty safe-prime
// generation), which is out of scope here. GenesisPieces computes d
// from the repo's PUBLIC fixture primes and stands in for that
// ceremony's output: the protocol machinery downstream — dealing,
// commitments, complaints, justifications, resharing — is genesis-
// agnostic, and a real deployment would swap only this function.
//
// The split is deterministic in (primes, s, founders, seed): pieces
// 1..l−1 are drawn uniformly from [0, 2^64·n^s·m') by a seeded
// SHA-256 stream and the last piece balances the sum (it may be
// negative; shares are signed integers throughout).
func GenesisPieces(p, q *big.Int, s, founders int, seed int64) ([]*big.Int, *damgardjurik.PublicKey, error) {
	if founders < 1 {
		return nil, nil, fmt.Errorf("%w: need at least one founder", ErrConfig)
	}
	n := new(big.Int).Mul(p, q)
	pk, err := damgardjurik.NewPublicKey(n, s)
	if err != nil {
		return nil, nil, err
	}
	ns := pk.PlaintextModulus()
	pPrime := new(big.Int).Rsh(new(big.Int).Sub(p, one), 1)
	qPrime := new(big.Int).Rsh(new(big.Int).Sub(q, one), 1)
	mPrime := new(big.Int).Mul(pPrime, qPrime)
	invM := new(big.Int).ModInverse(mPrime, ns)
	if invM == nil {
		return nil, nil, fmt.Errorf("dkg: m' not invertible mod n^s (not safe primes?)")
	}
	d := new(big.Int).Mul(mPrime, invM)

	bound := new(big.Int).Mul(ns, mPrime)
	bound.Lsh(bound, 64)
	rnd := NewDeterministicRand("chiaroscuro-dkg-genesis-v1", seed)
	pieces := make([]*big.Int, founders)
	rest := new(big.Int).Set(d)
	for i := 0; i < founders-1; i++ {
		piece, err := rand.Int(rnd, bound)
		if err != nil {
			return nil, nil, fmt.Errorf("dkg: splitting genesis: %w", err)
		}
		pieces[i] = piece
		rest.Sub(rest, piece)
	}
	pieces[founders-1] = rest
	return pieces, pk, nil
}

// detReader is a deterministic SHA-256 counter stream; it lets
// ceremonies (and their restarts after disqualification) replay
// bit-identically from a run seed, which is what keeps DKG-backed
// engine runs reproducible and simnet dealer-fault scenarios
// deterministic.
type detReader struct {
	key [32]byte
	ctr uint64
	buf []byte
}

// NewDeterministicRand returns a deterministic randomness stream keyed
// by (label, seed), suitable as the Rand of a Config or the source of
// GenesisPieces. Distinct labels give independent streams.
func NewDeterministicRand(label string, seed int64) *detReader {
	h := sha256.New()
	h.Write([]byte(label))
	var sb [8]byte
	binary.BigEndian.PutUint64(sb[:], uint64(seed))
	h.Write(sb[:])
	r := &detReader{}
	copy(r.key[:], h.Sum(nil))
	return r
}

func (r *detReader) Read(p []byte) (int, error) {
	for n := 0; n < len(p); {
		if len(r.buf) == 0 {
			h := sha256.New()
			h.Write(r.key[:])
			var cb [8]byte
			binary.BigEndian.PutUint64(cb[:], r.ctr)
			r.ctr++
			h.Write(cb[:])
			r.buf = h.Sum(nil)
		}
		c := copy(p[n:], r.buf)
		r.buf = r.buf[c:]
		n += c
	}
	return len(p), nil
}
