// Package dkg implements Pedersen-style distributed key generation and
// resharing for the threshold Damgård–Jurik deployment, following the
// three-phase structure production DKGs (drand's pedersen/dkg) use:
//
//  1. Deal — every dealer Shamir-shares its contribution as unreduced
//     integers and broadcasts Feldman-style coefficient commitments
//     (commit.go); shares travel privately, commitments publicly.
//  2. Response — every receiver broadcasts a verdict per dealer:
//     complaint (bad or missing share) plus the digest of the
//     commitment vector it saw, which is what catches equivocation.
//  3. Justification — accused dealers broadcast their commitment
//     vector and the revealed shares of their complainers; a valid
//     justification rehabilitates the dealer (and hands the complainer
//     its correct share), an absent or invalid one disqualifies it.
//
// Finish evaluates the verdict from broadcast information only, so
// every honest node reaches the same qualified set deterministically.
//
// Two ceremonies share the machinery:
//
//   - Fresh generation: the founders hold additive pieces of the
//     decryption exponent d (Σ d_i = d, see GenesisPieces) and each
//     deals its piece; final shares are sums of received shares and
//     the resulting key has scale 1. Any disqualification aborts the
//     ceremony (the pieces of a disqualified founder cannot be
//     dropped without changing the secret) — the caller re-splits d
//     among the qualified founders and re-runs, which is the
//     liveness path internal/core drives.
//   - Resharing: each surviving shareholder deals its OLD share as the
//     constant term; new shares are Lagrange-weighted sums over the
//     lowest old-threshold qualified dealers, which multiplies the
//     effective secret by Δ_old — tracked publicly as the key's Scale
//     and cancelled at Combine time. A population that lost up to
//     n−threshold−1 members re-keys onto a fresh deployment shape and
//     keeps decrypting bit-identically.
//
// What this deliberately does not do: generate the modulus itself.
// Distributed safe-prime RSA generation (Boneh–Franklin and
// descendants) is out of scope; the genesis pieces are derived from
// the fixture primes (GenesisPieces), standing in for the output of a
// modulus ceremony. Everything downstream of genesis — dealing,
// verification, disqualification, resharing — is dealer-free.
package dkg

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"

	"chiaroscuro/internal/crypto/damgardjurik"
)

// Protocol errors.
var (
	ErrConfig        = errors.New("dkg: invalid configuration")
	ErrPhase         = errors.New("dkg: phase violation")
	ErrDisqualified  = errors.New("dkg: ceremony aborted, dealers disqualified")
	ErrTooFewDealers = errors.New("dkg: fewer qualified dealers than the old threshold")
)

// coeffSlackBits pads the random-coefficient range past the magnitude
// of any dealt secret (genesis pieces are < parties·2^64·n^s·m', old
// shares are comparable), so shares statistically hide the constant
// term from honest-but-curious receivers.
const coeffSlackBits = 128

// Config describes one participant of one ceremony.
//
// Receivers are indexed 1..Parties in the NEW deployment. Dealer ids
// live in their own space: for a fresh ceremony they are founder
// receiver indices; for a reshare they are OLD deployment share
// indices. A node that only receives (a newcomer in a reshare) sets
// DealerIndex 0 and no Secret.
type Config struct {
	PK        *damgardjurik.PublicKey
	Parties   int // new deployment size (number of receivers)
	Threshold int // new decryption threshold
	Index     int // this node's receiver index, 1-based

	Dealers     []int    // ascending distinct dealer ids every node expects
	DealerIndex int      // this node's dealer id, 0 if receive-only
	Secret      *big.Int // constant term this node deals (required iff dealing)

	// Reshare parameters; all zero/nil for a fresh ceremony.
	OldThreshold int
	OldDelta     *big.Int // Δ of the deployment being reshared
	OldScale     *big.Int // Scale of the key being reshared

	Rand io.Reader // polynomial coefficients; crypto/rand.Reader if nil
}

// Result is what a node walks away with.
type Result struct {
	Key          *damgardjurik.ThresholdKey // nil when the ceremony aborted
	Share        damgardjurik.KeyShare      // this node's share (Value nil on abort)
	Qualified    []int                      // dealer ids, ascending
	Disqualified []int                      // dealer ids, ascending
}

// Node is one participant's ceremony state machine. Not safe for
// concurrent use; drive it from a single goroutine.
type Node struct {
	cfg     Config
	reshare bool
	g       *big.Int
	mod     *big.Int // n^{s+1}, the commitment group modulus

	poly      []*big.Int // dealing polynomial, constant term first; nil if receive-only
	myCommits []*big.Int

	deals     map[int]*Deal          // dealer id -> deal addressed to this node
	responses map[int]*Response      // receiver index -> response
	justs     map[int]*Justification // dealer id -> justification
}

// NewNode validates the configuration and, for dealers, samples the
// dealing polynomial and its commitments.
func NewNode(cfg Config) (*Node, error) {
	if cfg.PK == nil {
		return nil, fmt.Errorf("%w: nil public key", ErrConfig)
	}
	if cfg.Parties < 1 || cfg.Threshold < 1 || cfg.Threshold > cfg.Parties {
		return nil, fmt.Errorf("%w: parties=%d threshold=%d", ErrConfig, cfg.Parties, cfg.Threshold)
	}
	if cfg.Index < 1 || cfg.Index > cfg.Parties {
		return nil, fmt.Errorf("%w: receiver index %d", ErrConfig, cfg.Index)
	}
	if len(cfg.Dealers) == 0 {
		return nil, fmt.Errorf("%w: no dealers", ErrConfig)
	}
	for i, d := range cfg.Dealers {
		if d < 1 || (i > 0 && d <= cfg.Dealers[i-1]) {
			return nil, fmt.Errorf("%w: dealer ids must be ascending and positive", ErrConfig)
		}
	}
	reshare := cfg.OldDelta != nil
	if reshare {
		if cfg.OldThreshold < 1 || cfg.OldScale == nil || cfg.OldScale.Sign() <= 0 || cfg.OldDelta.Sign() <= 0 {
			return nil, fmt.Errorf("%w: incomplete reshare parameters", ErrConfig)
		}
		if len(cfg.Dealers) < cfg.OldThreshold {
			return nil, fmt.Errorf("%w: %d dealers cannot meet old threshold %d", ErrConfig, len(cfg.Dealers), cfg.OldThreshold)
		}
	}
	dealing := cfg.DealerIndex != 0
	if dealing {
		found := false
		for _, d := range cfg.Dealers {
			found = found || d == cfg.DealerIndex
		}
		if !found {
			return nil, fmt.Errorf("%w: own dealer id %d not in dealer set", ErrConfig, cfg.DealerIndex)
		}
		if cfg.Secret == nil {
			return nil, fmt.Errorf("%w: dealer without a secret", ErrConfig)
		}
	}
	nd := &Node{
		cfg:       cfg,
		reshare:   reshare,
		g:         generator(cfg.PK),
		mod:       cfg.PK.CiphertextModulus(),
		deals:     make(map[int]*Deal, len(cfg.Dealers)),
		responses: make(map[int]*Response, cfg.Parties),
		justs:     make(map[int]*Justification, len(cfg.Dealers)),
	}
	if dealing {
		rnd := cfg.Rand
		if rnd == nil {
			rnd = rand.Reader
		}
		bound := new(big.Int).Lsh(nd.mod, coeffSlackBits)
		nd.poly = make([]*big.Int, cfg.Threshold)
		nd.poly[0] = new(big.Int).Set(cfg.Secret)
		for k := 1; k < cfg.Threshold; k++ {
			c, err := rand.Int(rnd, bound)
			if err != nil {
				return nil, fmt.Errorf("dkg: sampling coefficients: %w", err)
			}
			nd.poly[k] = c
		}
		commits, err := commitPoly(nd.g, nd.mod, nd.poly)
		if err != nil {
			return nil, err
		}
		nd.myCommits = commits
	}
	return nd, nil
}

// evalAt evaluates this node's dealing polynomial at x over ℤ —
// unreduced on purpose (see KeyShare in damgardjurik).
func (nd *Node) evalAt(x int) *big.Int {
	out := new(big.Int)
	bx := big.NewInt(int64(x))
	for k := len(nd.poly) - 1; k >= 0; k-- {
		out.Mul(out, bx)
		out.Add(out, nd.poly[k])
	}
	return out
}

// Deals returns this dealer's private deal for every receiver
// (including itself; drivers route it back through HandleDeal so the
// self-deal takes the same validation path). Receive-only nodes get an
// empty slice.
func (nd *Node) Deals() []*Deal {
	if nd.poly == nil {
		return nil
	}
	out := make([]*Deal, nd.cfg.Parties)
	for j := 1; j <= nd.cfg.Parties; j++ {
		commits := make([]*big.Int, len(nd.myCommits))
		for k, c := range nd.myCommits {
			commits[k] = new(big.Int).Set(c)
		}
		out[j-1] = &Deal{
			Dealer:   nd.cfg.DealerIndex,
			Receiver: j,
			Share:    nd.evalAt(j),
			Commits:  commits,
		}
	}
	return out
}

// HandleDeal ingests a deal addressed to this node. Structurally
// foreign deals (wrong receiver, unknown dealer, duplicate, wrong
// commitment count) are rejected with an error; a deal whose share
// fails verification is STORED — the complaint surfaces in Response,
// which is the protocol path, not an ingestion failure.
func (nd *Node) HandleDeal(d *Deal) error {
	if d == nil || d.Receiver != nd.cfg.Index {
		return fmt.Errorf("%w: deal not addressed to receiver %d", ErrPhase, nd.cfg.Index)
	}
	if !nd.isDealer(d.Dealer) {
		return fmt.Errorf("%w: unknown dealer %d", ErrPhase, d.Dealer)
	}
	if _, dup := nd.deals[d.Dealer]; dup {
		return fmt.Errorf("%w: duplicate deal from dealer %d", ErrPhase, d.Dealer)
	}
	if len(d.Commits) != nd.cfg.Threshold {
		return fmt.Errorf("%w: deal carries %d commitments, want %d", ErrPhase, len(d.Commits), nd.cfg.Threshold)
	}
	for _, c := range d.Commits {
		if c == nil || c.Sign() <= 0 || c.Cmp(nd.mod) >= 0 {
			return fmt.Errorf("%w: commitment out of group range", ErrPhase)
		}
	}
	if d.Share == nil {
		return fmt.Errorf("%w: deal without share", ErrPhase)
	}
	nd.deals[d.Dealer] = d
	return nil
}

// Response produces this node's broadcast verdict list: one entry per
// expected dealer, ascending. Missing deals carry the zero digest and
// a complaint; present deals carry the commitment digest and a
// complaint iff the share fails verification. The own response is
// recorded so Finish sees the same broadcast set as every peer.
func (nd *Node) Response() *Response {
	r := &Response{From: nd.cfg.Index, Verdicts: make([]DealerVerdict, len(nd.cfg.Dealers))}
	for i, dealer := range nd.cfg.Dealers {
		v := DealerVerdict{Dealer: dealer}
		d, ok := nd.deals[dealer]
		if !ok {
			v.Complaint = true
		} else {
			v.Digest = commitDigest(d.Commits)
			v.Complaint = !verifyShare(nd.g, nd.mod, d.Commits, nd.cfg.Index, d.Share)
		}
		r.Verdicts[i] = v
	}
	nd.responses[nd.cfg.Index] = r
	return r
}

// HandleResponse ingests a peer's broadcast verdict list.
func (nd *Node) HandleResponse(r *Response) error {
	if r == nil || r.From < 1 || r.From > nd.cfg.Parties {
		return fmt.Errorf("%w: response from unknown receiver", ErrPhase)
	}
	if _, dup := nd.responses[r.From]; dup {
		return fmt.Errorf("%w: duplicate response from receiver %d", ErrPhase, r.From)
	}
	if len(r.Verdicts) != len(nd.cfg.Dealers) {
		return fmt.Errorf("%w: response covers %d dealers, want %d", ErrPhase, len(r.Verdicts), len(nd.cfg.Dealers))
	}
	for i, v := range r.Verdicts {
		if v.Dealer != nd.cfg.Dealers[i] {
			return fmt.Errorf("%w: verdict order mismatch at %d", ErrPhase, i)
		}
	}
	nd.responses[r.From] = r
	return nil
}

// complainers returns, from the full response set, the receiver
// indices complaining about the given dealer, ascending.
func (nd *Node) complainers(dealer int) []int {
	var out []int
	for j := 1; j <= nd.cfg.Parties; j++ {
		r := nd.responses[j]
		if r == nil {
			continue
		}
		for _, v := range r.Verdicts {
			if v.Dealer == dealer && v.Complaint {
				out = append(out, j)
			}
		}
	}
	return out
}

// Justification produces this node's round-3 broadcast. Dealers answer
// every complaint against them by revealing the complainer's correct
// share together with the commitment vector; everyone else (and
// unaccused dealers) broadcasts the empty justification, keeping the
// wire phase one-message-per-node. Requires all responses.
func (nd *Node) Justification() (*Justification, error) {
	if len(nd.responses) != nd.cfg.Parties {
		return nil, fmt.Errorf("%w: justification before all responses (%d/%d)", ErrPhase, len(nd.responses), nd.cfg.Parties)
	}
	if nd.poly == nil {
		return &Justification{}, nil
	}
	accusers := nd.complainers(nd.cfg.DealerIndex)
	if len(accusers) == 0 {
		return &Justification{}, nil
	}
	j := &Justification{
		Dealer:  nd.cfg.DealerIndex,
		Commits: make([]*big.Int, len(nd.myCommits)),
		Shares:  make([]JustShare, len(accusers)),
	}
	for k, c := range nd.myCommits {
		j.Commits[k] = new(big.Int).Set(c)
	}
	for i, a := range accusers {
		j.Shares[i] = JustShare{Receiver: a, Share: nd.evalAt(a)}
	}
	return j, nil
}

// HandleJustification ingests a dealer's broadcast justification.
// Empty justifications (Dealer 0) are the wire filler and are dropped.
func (nd *Node) HandleJustification(j *Justification) error {
	if j == nil {
		return fmt.Errorf("%w: nil justification", ErrPhase)
	}
	if j.Dealer == 0 {
		return nil
	}
	if !nd.isDealer(j.Dealer) {
		return fmt.Errorf("%w: justification from unknown dealer %d", ErrPhase, j.Dealer)
	}
	if _, dup := nd.justs[j.Dealer]; dup {
		return fmt.Errorf("%w: duplicate justification from dealer %d", ErrPhase, j.Dealer)
	}
	nd.justs[j.Dealer] = j
	return nil
}

func (nd *Node) isDealer(id int) bool {
	for _, d := range nd.cfg.Dealers {
		if d == id {
			return true
		}
	}
	return false
}

// Finish evaluates the verdict and assembles this node's share.
//
// The disqualification rule per dealer, computed from broadcast data
// only (responses + justifications), so all honest nodes agree:
//
//   - the non-zero commitment digests across all responses must be a
//     single value — zero of them means the dealer dealt to nobody
//     (silent), two or more mean it equivocated; either disqualifies;
//   - every complaint must be answered by a justification whose
//     commitment vector matches the agreed digest and whose revealed
//     share verifies; any unanswered or invalid one disqualifies.
//
// A node whose own deal was bad or missing adopts the justified share.
// Fresh ceremonies abort with ErrDisqualified if any dealer fails
// (additive pieces cannot be dropped); reshares proceed as long as the
// old threshold survives, combining over the lowest qualified dealers.
func (nd *Node) Finish() (*Result, error) {
	if len(nd.responses) != nd.cfg.Parties {
		return nil, fmt.Errorf("%w: finish before all responses (%d/%d)", ErrPhase, len(nd.responses), nd.cfg.Parties)
	}
	var zero [32]byte
	res := &Result{}
	shares := make(map[int]*big.Int, len(nd.cfg.Dealers)) // qualified dealer -> my share from it
	for _, dealer := range nd.cfg.Dealers {
		agreed, equivocated := nd.agreedDigest(dealer, zero)
		if equivocated || agreed == zero {
			res.Disqualified = append(res.Disqualified, dealer)
			continue
		}
		myShare, ok := nd.dealerShare(dealer, agreed)
		if !ok {
			res.Disqualified = append(res.Disqualified, dealer)
			continue
		}
		res.Qualified = append(res.Qualified, dealer)
		shares[dealer] = myShare
	}
	sort.Ints(res.Qualified)
	sort.Ints(res.Disqualified)

	if !nd.reshare {
		if len(res.Disqualified) > 0 {
			return res, ErrDisqualified
		}
		sum := new(big.Int)
		for _, dealer := range res.Qualified {
			sum.Add(sum, shares[dealer])
		}
		key, err := damgardjurik.NewThresholdKeyPublic(nd.cfg.PK.N, nd.cfg.PK.S, nd.cfg.Parties, nd.cfg.Threshold, one)
		if err != nil {
			return nil, err
		}
		res.Key = key
		res.Share = damgardjurik.KeyShare{Index: nd.cfg.Index, Value: sum}
		return res, nil
	}

	if len(res.Qualified) < nd.cfg.OldThreshold {
		return res, fmt.Errorf("%w: %d of %d", ErrTooFewDealers, len(res.Qualified), nd.cfg.OldThreshold)
	}
	use := res.Qualified[:nd.cfg.OldThreshold]
	sum := new(big.Int)
	for i, dealer := range use {
		lam, err := lagrangeAtZero(nd.cfg.OldDelta, use, i)
		if err != nil {
			return nil, err
		}
		sum.Add(sum, lam.Mul(lam, shares[dealer]))
	}
	scale := new(big.Int).Mul(nd.cfg.OldScale, nd.cfg.OldDelta)
	key, err := damgardjurik.NewThresholdKeyPublic(nd.cfg.PK.N, nd.cfg.PK.S, nd.cfg.Parties, nd.cfg.Threshold, scale)
	if err != nil {
		return nil, err
	}
	res.Key = key
	res.Share = damgardjurik.KeyShare{Index: nd.cfg.Index, Value: sum}
	return res, nil
}

// agreedDigest scans all responses for the dealer's commitment digest.
func (nd *Node) agreedDigest(dealer int, zero [32]byte) (agreed [32]byte, equivocated bool) {
	for j := 1; j <= nd.cfg.Parties; j++ {
		for _, v := range nd.responses[j].Verdicts {
			if v.Dealer != dealer || v.Digest == zero {
				continue
			}
			if agreed == zero {
				agreed = v.Digest
			} else if agreed != v.Digest {
				return agreed, true
			}
		}
	}
	return agreed, false
}

// dealerShare resolves this node's verified share from the given
// dealer: the dealt share when it verified, otherwise the justified
// share. It also enforces that every OTHER complaint against the
// dealer was validly answered. Returns ok=false to disqualify.
func (nd *Node) dealerShare(dealer int, agreed [32]byte) (*big.Int, bool) {
	complainers := nd.complainers(dealer)
	j := nd.justs[dealer]
	var jCommits []*big.Int
	if j != nil && len(j.Commits) == nd.cfg.Threshold && commitDigest(j.Commits) == agreed {
		ok := true
		for _, c := range j.Commits {
			ok = ok && c != nil && c.Sign() > 0 && c.Cmp(nd.mod) < 0
		}
		if ok {
			jCommits = j.Commits
		}
	}
	for _, a := range complainers {
		if jCommits == nil {
			return nil, false // complaint with no usable justification
		}
		var revealed *big.Int
		for _, s := range j.Shares {
			if s.Receiver == a {
				revealed = s.Share
				break
			}
		}
		if revealed == nil || !verifyShare(nd.g, nd.mod, jCommits, a, revealed) {
			return nil, false
		}
	}

	if d, ok := nd.deals[dealer]; ok && commitDigest(d.Commits) == agreed &&
		verifyShare(nd.g, nd.mod, d.Commits, nd.cfg.Index, d.Share) {
		return d.Share, true
	}
	// Own deal was bad, missing, or equivocated-away: adopt the
	// justified share (verified above, since we complained).
	if jCommits != nil {
		for _, s := range j.Shares {
			if s.Receiver == nd.cfg.Index {
				return s.Share, true
			}
		}
	}
	return nil, false
}

// lagrangeAtZero mirrors the integer Lagrange coefficient the
// damgardjurik package uses for combining: λ_{0,ids[i]} =
// Δ·Π_{j≠i} x_j/(x_j−x_i), integral because Δ absorbs denominators.
func lagrangeAtZero(delta *big.Int, ids []int, i int) (*big.Int, error) {
	num := new(big.Int).Set(delta)
	den := big.NewInt(1)
	xi := int64(ids[i])
	for j, xj := range ids {
		if j == i {
			continue
		}
		num.Mul(num, big.NewInt(int64(xj)))
		den.Mul(den, big.NewInt(int64(xj)-xi))
	}
	q, r := new(big.Int).QuoRem(num, den, new(big.Int))
	if r.Sign() != 0 {
		return nil, fmt.Errorf("dkg: non-integral Lagrange coefficient for ids %v", ids)
	}
	return q, nil
}
