package dkg

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"testing"

	"chiaroscuro/internal/crypto/damgardjurik"
)

// fixtureBits keeps the matrix fast; the 96-bit fixture modulus is
// plenty for protocol correctness (the crypto package's own tests
// cover large moduli) and shares the primes with the dealer oracle.
const fixtureBits = 96

// detRands gives every participant an independent deterministic
// coefficient stream, so ceremonies replay bit-identically.
func detRands(label string, seed int64) RandFunc {
	return func(party int) io.Reader {
		return NewDeterministicRand(fmt.Sprintf("%s-party-%d", label, party), seed)
	}
}

// runFresh drives an all-honest fresh ceremony over the fixture
// primes and returns every node's result.
func runFresh(t *testing.T, parties, threshold, s int, seed int64) *CeremonyResult {
	t.Helper()
	p, q, err := damgardjurik.FixturePrimes(fixtureBits)
	if err != nil {
		t.Fatalf("fixture primes: %v", err)
	}
	pieces, pk, err := GenesisPieces(p, q, s, parties, seed)
	if err != nil {
		t.Fatalf("genesis: %v", err)
	}
	dealers := make([]int, parties)
	secrets := make(map[int]*big.Int, parties)
	for i := range dealers {
		dealers[i] = i + 1
		secrets[i+1] = pieces[i]
	}
	cr, err := RunFreshCeremony(pk, parties, threshold, dealers, secrets, detRands("fresh", seed), nil)
	if err != nil {
		t.Fatalf("fresh ceremony (n=%d w=%d s=%d): %v", parties, threshold, s, err)
	}
	return cr
}

// quorums enumerates every index subset of exactly size k from 1..n.
func quorums(n, k int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i <= n; i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(1, nil)
	return out
}

// decryptWith opens c through the given key with exactly the quorum's
// shares, via both Combine and CombineNaive, asserting the two agree.
func decryptWith(t *testing.T, key *damgardjurik.ThresholdKey, shares []damgardjurik.KeyShare, quorum []int, c *big.Int) *big.Int {
	t.Helper()
	parts := make([]damgardjurik.PartialDecryption, 0, len(quorum))
	for _, idx := range quorum {
		var share damgardjurik.KeyShare
		for _, sh := range shares {
			if sh.Index == idx {
				share = sh
			}
		}
		if share.Value == nil {
			t.Fatalf("no share for quorum index %d", idx)
		}
		pd, err := key.PartialDecrypt(share, c)
		if err != nil {
			t.Fatalf("partial decrypt (index %d): %v", idx, err)
		}
		parts = append(parts, pd)
	}
	fast, err := key.Combine(parts)
	if err != nil {
		t.Fatalf("combine (quorum %v): %v", quorum, err)
	}
	naive, err := key.CombineNaive(parts)
	if err != nil {
		t.Fatalf("combine naive (quorum %v): %v", quorum, err)
	}
	if fast.Cmp(naive) != 0 {
		t.Fatalf("Combine %v != CombineNaive %v (quorum %v)", fast, naive, quorum)
	}
	return fast
}

// thresholdEdges picks the threshold matrix for a population: the two
// edges plus the smallest interesting interior value.
func thresholdEdges(n int) []int {
	set := map[int]bool{}
	var out []int
	for _, w := range []int{1, 2, n - 1} {
		if w >= 1 && w <= n && !set[w] {
			set[w] = true
			out = append(out, w)
		}
	}
	return out
}

// TestDKGOracleMatrix is the headline property: across n∈{3,5,7},
// threshold edges and s∈{1,2}, a DKG-derived key plus ANY quorum of
// its shares decrypts bit-identically — through both Combine and
// CombineNaive — to a dealer-dealt key over the same primes, and both
// recover the exact plaintext.
func TestDKGOracleMatrix(t *testing.T) {
	p, q, err := damgardjurik.FixturePrimes(fixtureBits)
	if err != nil {
		t.Fatalf("fixture primes: %v", err)
	}
	for _, n := range []int{3, 5, 7} {
		for _, w := range thresholdEdges(n) {
			for _, s := range []int{1, 2} {
				t.Run(fmt.Sprintf("n=%d/w=%d/s=%d", n, w, s), func(t *testing.T) {
					oracle, oracleShares, err := damgardjurik.NewThresholdKeyFromPrimes(nil, p, q, s, n, w)
					if err != nil {
						t.Fatalf("dealer oracle: %v", err)
					}
					cr := runFresh(t, n, w, s, int64(1000*n+10*w+s))
					key := cr.Results[0].Key
					if key.Scale().Cmp(big.NewInt(1)) != 0 {
						t.Fatalf("fresh key scale = %v, want 1", key.Scale())
					}
					shares := make([]damgardjurik.KeyShare, n)
					for i, r := range cr.Results {
						shares[i] = r.Share
					}
					ns := oracle.PlaintextModulus()
					msgs := []*big.Int{
						big.NewInt(0),
						big.NewInt(1),
						big.NewInt(424242),
						new(big.Int).Sub(ns, big.NewInt(1)),
					}
					for _, m := range msgs {
						c, err := oracle.Encrypt(nil, m)
						if err != nil {
							t.Fatalf("encrypt: %v", err)
						}
						oracleParts := make([]damgardjurik.PartialDecryption, w)
						for i := 0; i < w; i++ {
							pd, err := oracle.PartialDecrypt(oracleShares[i], c)
							if err != nil {
								t.Fatalf("oracle partial: %v", err)
							}
							oracleParts[i] = pd
						}
						want, err := oracle.Combine(oracleParts)
						if err != nil {
							t.Fatalf("oracle combine: %v", err)
						}
						if want.Cmp(new(big.Int).Mod(m, ns)) != 0 {
							t.Fatalf("oracle decrypted %v, want %v", want, m)
						}
						for _, quorum := range quorums(n, w) {
							got := decryptWith(t, key, shares, quorum, c)
							if got.Cmp(want) != 0 {
								t.Errorf("quorum %v: DKG decryption %v != oracle %v (m=%v)", quorum, got, want, m)
							}
						}
					}
				})
			}
		}
	}
}

// TestDKGDeterministicReplay: the same seed replays to bit-identical
// shares — the property core's ceremony restarts and the simnet
// scenarios rely on.
func TestDKGDeterministicReplay(t *testing.T) {
	a := runFresh(t, 5, 3, 1, 7)
	b := runFresh(t, 5, 3, 1, 7)
	for i := range a.Results {
		if a.Results[i].Share.Value.Cmp(b.Results[i].Share.Value) != 0 {
			t.Fatalf("share %d differs across replays", i+1)
		}
	}
	c := runFresh(t, 5, 3, 1, 8)
	same := true
	for i := range a.Results {
		same = same && a.Results[i].Share.Value.Cmp(c.Results[i].Share.Value) == 0
	}
	if same {
		t.Fatal("different seeds replayed identical shares")
	}
}

// reshareFrom drives an all-honest reshare and sanity-checks verdicts.
func reshareFrom(t *testing.T, pk *damgardjurik.PublicKey, old OldKey, survivors []damgardjurik.KeyShare, newParties, newThreshold int, seed int64) *CeremonyResult {
	t.Helper()
	cr, err := RunReshareCeremony(pk, old, survivors, newParties, newThreshold, detRands("reshare", seed), nil)
	if err != nil {
		t.Fatalf("reshare ceremony: %v", err)
	}
	if len(cr.Disqualified) != 0 {
		t.Fatalf("honest reshare disqualified %v", cr.Disqualified)
	}
	return cr
}

// TestReshareRoundTrip: a ciphertext encrypted before any reshare
// still decrypts to the exact plaintext after (a) a reshare from a
// DKG-derived key, (b) a chained second reshare, and (c) a reshare
// whose input is a dealer-dealt key (the oracle path). Covers the
// losing-up-to-n-threshold-1-nodes story: survivors re-key and keep
// decrypting.
func TestReshareRoundTrip(t *testing.T) {
	p, q, err := damgardjurik.FixturePrimes(fixtureBits)
	if err != nil {
		t.Fatalf("fixture primes: %v", err)
	}
	cr := runFresh(t, 5, 3, 1, 11)
	key := cr.Results[0].Key
	pk := &key.PublicKey
	m := big.NewInt(987654321)
	c, err := key.Encrypt(nil, m)
	if err != nil {
		t.Fatalf("encrypt: %v", err)
	}

	// (a) lose nodes 3 and 5 (n-threshold-1 = 1 may die with no
	// ceremony at all; with 2 dead a reshare from the >=threshold
	// survivors re-keys the population back to strength 5).
	survivors := []damgardjurik.KeyShare{cr.Results[0].Share, cr.Results[1].Share, cr.Results[3].Share}
	old := OldKey{Threshold: key.Threshold, Delta: key.Delta(), Scale: key.Scale()}
	re := reshareFrom(t, pk, old, survivors, 5, 3, 21)
	key2 := re.Results[0].Key
	wantScale := new(big.Int).Mul(key.Scale(), key.Delta())
	if key2.Scale().Cmp(wantScale) != 0 {
		t.Fatalf("reshared scale = %v, want %v", key2.Scale(), wantScale)
	}
	shares2 := make([]damgardjurik.KeyShare, len(re.Results))
	for i, r := range re.Results {
		shares2[i] = r.Share
	}
	for _, quorum := range [][]int{{1, 2, 3}, {3, 4, 5}, {1, 3, 5}} {
		if got := decryptWith(t, key2, shares2, quorum, c); got.Cmp(m) != 0 {
			t.Fatalf("after reshare, quorum %v decrypted %v, want %v", quorum, got, m)
		}
	}

	// (b) chain a second reshare onto a smaller deployment.
	old2 := OldKey{Threshold: key2.Threshold, Delta: key2.Delta(), Scale: key2.Scale()}
	survivors2 := []damgardjurik.KeyShare{shares2[1], shares2[2], shares2[4]}
	re2 := reshareFrom(t, pk, old2, survivors2, 4, 2, 31)
	key3 := re2.Results[0].Key
	shares3 := make([]damgardjurik.KeyShare, len(re2.Results))
	for i, r := range re2.Results {
		shares3[i] = r.Share
	}
	for _, quorum := range [][]int{{1, 2}, {3, 4}, {2, 4}} {
		if got := decryptWith(t, key3, shares3, quorum, c); got.Cmp(m) != 0 {
			t.Fatalf("after chained reshare, quorum %v decrypted %v, want %v", quorum, got, m)
		}
	}

	// (c) reshare a dealer-dealt key: the oracle path feeds the
	// ceremony, proving dealt and DKG'd shares are interchangeable.
	oracle, oracleShares, err := damgardjurik.NewThresholdKeyFromPrimes(nil, p, q, 1, 4, 2)
	if err != nil {
		t.Fatalf("dealer oracle: %v", err)
	}
	cOracle, err := oracle.Encrypt(nil, m)
	if err != nil {
		t.Fatalf("encrypt: %v", err)
	}
	oldO := OldKey{Threshold: oracle.Threshold, Delta: oracle.Delta(), Scale: oracle.Scale()}
	reO := reshareFrom(t, &oracle.PublicKey, oldO, oracleShares[1:3], 3, 2, 41)
	keyO := reO.Results[0].Key
	sharesO := make([]damgardjurik.KeyShare, len(reO.Results))
	for i, r := range reO.Results {
		sharesO[i] = r.Share
	}
	if got := decryptWith(t, keyO, sharesO, []int{1, 3}, cOracle); got.Cmp(m) != 0 {
		t.Fatalf("reshared dealer key decrypted %v, want %v", got, m)
	}
}

// TestByzantineDealerVerdicts: each scripted fault class produces the
// same deterministic disqualification verdict at every node, the fresh
// ceremony aborts, and the re-split re-run among the qualified dealers
// recovers a working key — the liveness path core drives.
func TestByzantineDealerVerdicts(t *testing.T) {
	p, q, err := damgardjurik.FixturePrimes(fixtureBits)
	if err != nil {
		t.Fatalf("fixture primes: %v", err)
	}
	cases := []struct {
		name string
		b    Behaviour
	}{
		{"bad-share", BehaviourBadShare},
		{"equivocate", BehaviourEquivocate},
		{"silent", BehaviourSilent},
	}
	const parties, threshold, s, seed = 5, 3, 1, 99
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pieces, pk, err := GenesisPieces(p, q, s, parties, seed)
			if err != nil {
				t.Fatalf("genesis: %v", err)
			}
			dealers := make([]int, parties)
			secrets := make(map[int]*big.Int, parties)
			for i := range dealers {
				dealers[i] = i + 1
				secrets[i+1] = pieces[i]
			}
			cr, err := RunFreshCeremony(pk, parties, threshold, dealers, secrets,
				detRands(tc.name, seed), map[int]Behaviour{2: tc.b})
			if !errors.Is(err, ErrDisqualified) {
				t.Fatalf("ceremony error = %v, want ErrDisqualified", err)
			}
			if len(cr.Disqualified) != 1 || cr.Disqualified[0] != 2 {
				t.Fatalf("disqualified = %v, want [2]", cr.Disqualified)
			}
			if len(cr.Qualified) != parties-1 {
				t.Fatalf("qualified = %v, want the other %d dealers", cr.Qualified, parties-1)
			}

			// Restart: re-split the genesis among the qualified dealers
			// only; every node (including the disqualified one) still
			// receives shares and the key decrypts.
			rePieces, _, err := GenesisPieces(p, q, s, len(cr.Qualified), seed+1)
			if err != nil {
				t.Fatalf("genesis re-split: %v", err)
			}
			reSecrets := make(map[int]*big.Int, len(cr.Qualified))
			for i, d := range cr.Qualified {
				reSecrets[d] = rePieces[i]
			}
			cr2, err := RunFreshCeremony(pk, parties, threshold, cr.Qualified, reSecrets,
				detRands(tc.name+"-retry", seed), nil)
			if err != nil {
				t.Fatalf("restarted ceremony: %v", err)
			}
			key := cr2.Results[0].Key
			shares := make([]damgardjurik.KeyShare, parties)
			for i, r := range cr2.Results {
				shares[i] = r.Share
			}
			m := big.NewInt(31337)
			c, err := key.Encrypt(nil, m)
			if err != nil {
				t.Fatalf("encrypt: %v", err)
			}
			if got := decryptWith(t, key, shares, []int{1, 2, 5}, c); got.Cmp(m) != 0 {
				t.Fatalf("restarted key decrypted %v, want %v", got, m)
			}
		})
	}
}

// TestJustificationRehabilitates: a dealer that misdeals ONE share but
// answers the complaint with a valid justification stays qualified,
// and the complainer adopts the justified share — exercised by driving
// the state machines directly (the scripted BehaviourBadShare withholds
// the justification, so this path needs a manual drive).
func TestJustificationRehabilitates(t *testing.T) {
	p, q, err := damgardjurik.FixturePrimes(fixtureBits)
	if err != nil {
		t.Fatalf("fixture primes: %v", err)
	}
	const parties, threshold, s, seed = 4, 2, 1, 55
	pieces, pk, err := GenesisPieces(p, q, s, parties, seed)
	if err != nil {
		t.Fatalf("genesis: %v", err)
	}
	dealers := []int{1, 2, 3, 4}
	nodes := make([]*Node, parties)
	for j := 1; j <= parties; j++ {
		nd, err := NewNode(Config{
			PK: pk, Parties: parties, Threshold: threshold,
			Index: j, Dealers: dealers, DealerIndex: j, Secret: pieces[j-1],
			Rand: NewDeterministicRand(fmt.Sprintf("rehab-%d", j), seed),
		})
		if err != nil {
			t.Fatalf("node %d: %v", j, err)
		}
		nodes[j-1] = nd
	}
	for _, nd := range nodes {
		deals := nd.Deals()
		if nd.cfg.DealerIndex == 2 {
			// Dealer 2 misdeals to receiver 3.
			deals[2].Share = new(big.Int).Add(deals[2].Share, big.NewInt(5))
		}
		for j := 1; j <= parties; j++ {
			if err := nodes[j-1].HandleDeal(deals[j-1]); err != nil {
				t.Fatalf("deal: %v", err)
			}
		}
	}
	for _, nd := range nodes {
		r := nd.Response()
		if nd.cfg.Index == 3 && !r.Verdicts[1].Complaint {
			t.Fatal("receiver 3 did not complain about the bad share")
		}
		for _, peer := range nodes {
			if peer != nd {
				if err := peer.HandleResponse(r); err != nil {
					t.Fatalf("response: %v", err)
				}
			}
		}
	}
	for _, nd := range nodes {
		j, err := nd.Justification()
		if err != nil {
			t.Fatalf("justification: %v", err)
		}
		for _, peer := range nodes {
			if err := peer.HandleJustification(j); err != nil {
				t.Fatalf("handle justification: %v", err)
			}
		}
	}
	shares := make([]damgardjurik.KeyShare, parties)
	var key *damgardjurik.ThresholdKey
	for i, nd := range nodes {
		res, err := nd.Finish()
		if err != nil {
			t.Fatalf("finish node %d: %v", i+1, err)
		}
		if len(res.Disqualified) != 0 {
			t.Fatalf("node %d disqualified %v despite valid justification", i+1, res.Disqualified)
		}
		shares[i] = res.Share
		key = res.Key
	}
	m := big.NewInt(2026)
	c, err := key.Encrypt(nil, m)
	if err != nil {
		t.Fatalf("encrypt: %v", err)
	}
	// The rehabilitated quorum includes receiver 3's adopted share.
	if got := decryptWith(t, key, shares, []int{2, 3}, c); got.Cmp(m) != 0 {
		t.Fatalf("decrypted %v, want %v", got, m)
	}
}
