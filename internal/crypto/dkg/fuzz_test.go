package dkg

import (
	"bytes"
	"math/big"
	"testing"
)

// The fuzz contract for every ceremony artifact: Unmarshal must never
// panic or over-allocate on adversarial bytes, and whatever it accepts
// must re-marshal to a value that round-trips stably (decode →
// encode → decode is a fixed point). Seed corpora are valid messages,
// so the mutator starts from structurally interesting inputs.

func seedDeal() *Deal {
	return &Deal{
		Dealer:   3,
		Receiver: 1,
		Share:    big.NewInt(-123456789),
		Commits:  []*big.Int{big.NewInt(5), big.NewInt(0), new(big.Int).Lsh(big.NewInt(1), 200)},
	}
}

func TestDealRoundTrip(t *testing.T) {
	d := seedDeal()
	buf, err := MarshalDeal(d)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := UnmarshalDeal(buf)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Dealer != d.Dealer || got.Receiver != d.Receiver || got.Share.Cmp(d.Share) != 0 || len(got.Commits) != len(d.Commits) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, d)
	}
	for i := range d.Commits {
		if got.Commits[i].Cmp(d.Commits[i]) != 0 {
			t.Fatalf("commit %d mismatch", i)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	r := &Response{From: 2, Verdicts: []DealerVerdict{
		{Dealer: 1, Complaint: true},
		{Dealer: 4, Digest: [32]byte{1, 2, 3}},
	}}
	buf, err := MarshalResponse(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := UnmarshalResponse(buf)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.From != r.From || len(got.Verdicts) != 2 ||
		got.Verdicts[0] != r.Verdicts[0] || got.Verdicts[1] != r.Verdicts[1] {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
	}
}

func TestJustificationRoundTrip(t *testing.T) {
	for _, j := range []*Justification{
		{}, // the empty wire filler
		{
			Dealer:  7,
			Commits: []*big.Int{big.NewInt(9)},
			Shares:  []JustShare{{Receiver: 2, Share: big.NewInt(-4)}, {Receiver: 5, Share: new(big.Int)}},
		},
	} {
		buf, err := MarshalJustification(j)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got, err := UnmarshalJustification(buf)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if got.Dealer != j.Dealer || len(got.Commits) != len(j.Commits) || len(got.Shares) != len(j.Shares) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, j)
		}
	}
}

func FuzzUnmarshalDeal(f *testing.F) {
	if buf, err := MarshalDeal(seedDeal()); err == nil {
		f.Add(buf)
	}
	f.Add([]byte{kindDeal, msgVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := UnmarshalDeal(data)
		if err != nil {
			return
		}
		buf, err := MarshalDeal(d)
		if err != nil {
			t.Fatalf("accepted deal fails to re-marshal: %v", err)
		}
		d2, err := UnmarshalDeal(buf)
		if err != nil {
			t.Fatalf("re-marshaled deal fails to decode: %v", err)
		}
		buf2, err := MarshalDeal(d2)
		if err != nil || !bytes.Equal(buf, buf2) {
			t.Fatalf("re-encoding is not a fixed point (err=%v)", err)
		}
	})
}

func FuzzUnmarshalResponse(f *testing.F) {
	if buf, err := MarshalResponse(&Response{From: 1, Verdicts: []DealerVerdict{{Dealer: 2, Complaint: true}}}); err == nil {
		f.Add(buf)
	}
	f.Add([]byte{kindResponse, msgVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalResponse(data)
		if err != nil {
			return
		}
		buf, err := MarshalResponse(r)
		if err != nil {
			t.Fatalf("accepted response fails to re-marshal: %v", err)
		}
		r2, err := UnmarshalResponse(buf)
		if err != nil {
			t.Fatalf("re-marshaled response fails to decode: %v", err)
		}
		buf2, err := MarshalResponse(r2)
		if err != nil || !bytes.Equal(buf, buf2) {
			t.Fatalf("re-encoding is not a fixed point (err=%v)", err)
		}
	})
}

func FuzzUnmarshalJustification(f *testing.F) {
	if buf, err := MarshalJustification(&Justification{
		Dealer:  1,
		Commits: []*big.Int{big.NewInt(3)},
		Shares:  []JustShare{{Receiver: 2, Share: big.NewInt(-9)}},
	}); err == nil {
		f.Add(buf)
	}
	f.Add([]byte{kindJustification, msgVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := UnmarshalJustification(data)
		if err != nil {
			return
		}
		buf, err := MarshalJustification(j)
		if err != nil {
			t.Fatalf("accepted justification fails to re-marshal: %v", err)
		}
		j2, err := UnmarshalJustification(buf)
		if err != nil {
			t.Fatalf("re-marshaled justification fails to decode: %v", err)
		}
		buf2, err := MarshalJustification(j2)
		if err != nil || !bytes.Equal(buf, buf2) {
			t.Fatalf("re-encoding is not a fixed point (err=%v)", err)
		}
	})
}
