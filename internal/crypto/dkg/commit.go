package dkg

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"

	"chiaroscuro/internal/crypto/damgardjurik"
)

// Feldman-style verifiable sharing over Z*_{n^{s+1}}: a dealer with
// polynomial f(x) = Σ c_k·x^k publishes C_k = g^{c_k} mod n^{s+1}, and
// receiver j checks its share against
//
//	g^{f(j)} ≟ Π_k C_k^{j^k} mod n^{s+1}.
//
// Because DKG shares are unreduced integers (a share holder has no
// n^s·m' to reduce by), the polynomial identity f(j) = Σ c_k·j^k holds
// over ℤ, so the check is exact — no order-of-the-group slack for a
// cheating dealer to hide in, and no smallness assumption on shares.
//
// The commitments are binding but not hiding: g^{c_k} leaks c_k up to
// discrete log, which is the classical Feldman trade-off and the one
// Pedersen's DKG makes per-dealer. For this codebase's threat model
// (honest-but-curious participants plus the byzantine-dealer fault
// classes the ceremony must survive) that is the right trade — the
// same precedent as Shoup-style verification keys. docs/CRYPTO.md
// spells out the limits.

// generatorLabel versions the hash-to-generator derivation; changing
// the derivation must change the label.
const generatorLabel = "chiaroscuro-dkg-generator-v1"

// generator deterministically derives the public commitment base g
// from the public key alone: expand SHA-256(label‖n‖s‖counter) to the
// width of n^{s+1}, reduce, square (forcing g into the squares, the
// cyclic subgroup partial decryptions live in), and retry the counter
// until gcd(g, n) = 1 and g > 1. Every participant derives the same g
// with no trusted setup.
func generator(pk *damgardjurik.PublicKey) *big.Int {
	ns1 := pk.CiphertextModulus()
	width := (ns1.BitLen()+7)/8 + 16
	seed := sha256.New()
	seed.Write([]byte(generatorLabel))
	seed.Write(pk.N.Bytes())
	var sbuf [4]byte
	binary.BigEndian.PutUint32(sbuf[:], uint32(pk.S))
	seed.Write(sbuf[:])
	base := seed.Sum(nil)
	for ctr := uint32(0); ; ctr++ {
		buf := make([]byte, 0, width+sha256.Size)
		var block [4]byte
		for i := uint32(0); len(buf) < width; i++ {
			h := sha256.New()
			h.Write(base)
			binary.BigEndian.PutUint32(sbuf[:], ctr)
			h.Write(sbuf[:])
			binary.BigEndian.PutUint32(block[:], i)
			h.Write(block[:])
			buf = h.Sum(buf)
		}
		g := new(big.Int).SetBytes(buf[:width])
		g.Mod(g, ns1)
		g.Mul(g, g)
		g.Mod(g, ns1)
		if g.Cmp(one) <= 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, g, pk.N).Cmp(one) != 0 {
			continue
		}
		return g
	}
}

// modExpSigned computes base^e mod m for a signed exponent, inverting
// the base explicitly for negative e (deterministic, and independent
// of big.Int.Exp's own negative-exponent handling).
func modExpSigned(base, e, m *big.Int) (*big.Int, error) {
	if e.Sign() >= 0 {
		return new(big.Int).Exp(base, e, m), nil
	}
	inv := new(big.Int).ModInverse(base, m)
	if inv == nil {
		return nil, fmt.Errorf("dkg: base not a unit mod commitment modulus")
	}
	return inv.Exp(inv, new(big.Int).Neg(e), m), nil
}

// commitPoly commits to every coefficient: C_k = g^{c_k} mod n^{s+1}.
func commitPoly(g, mod *big.Int, coeffs []*big.Int) ([]*big.Int, error) {
	out := make([]*big.Int, len(coeffs))
	for k, c := range coeffs {
		v, err := modExpSigned(g, c, mod)
		if err != nil {
			return nil, err
		}
		out[k] = v
	}
	return out, nil
}

// verifyShare checks g^{share} = Π_k commits[k]^{receiver^k} mod ns1.
func verifyShare(g, mod *big.Int, commits []*big.Int, receiver int, share *big.Int) bool {
	lhs, err := modExpSigned(g, share, mod)
	if err != nil {
		return false
	}
	rhs := big.NewInt(1)
	x := big.NewInt(int64(receiver))
	xk := big.NewInt(1)
	for _, c := range commits {
		t := new(big.Int).Exp(c, xk, mod)
		rhs.Mul(rhs, t)
		rhs.Mod(rhs, mod)
		xk = new(big.Int).Mul(xk, x)
	}
	return lhs.Cmp(rhs) == 0
}

// commitDigest fingerprints a commitment vector. Receivers exchange
// these digests in the Response phase; two honest receivers holding
// deals from the same dealer with different digests prove the dealer
// equivocated. The all-zero digest is reserved for "no deal received".
func commitDigest(commits []*big.Int) [32]byte {
	h := sha256.New()
	var lbuf [4]byte
	for _, c := range commits {
		b := c.Bytes()
		binary.BigEndian.PutUint32(lbuf[:], uint32(len(b)))
		h.Write(lbuf[:])
		h.Write(b)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

var one = big.NewInt(1)
