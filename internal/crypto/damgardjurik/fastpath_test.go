package damgardjurik

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
)

// crossCheckBits are the fixture sizes the fast-vs-naive cross-checks
// run at (ISSUE 2 acceptance: 64/256/1024).
var crossCheckBits = []int{64, 256, 1024}

func TestFixedBaseTableMatchesExp(t *testing.T) {
	sk := testKey(t, 128, 2)
	mod := sk.CiphertextModulus()
	rng := mrand.New(mrand.NewSource(29))
	base := new(big.Int).Rand(rng, mod)
	table := newFixedBaseTable(base, mod, 200)
	for i := 0; i < 50; i++ {
		bits := rng.Intn(200) + 1
		e := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
		want := new(big.Int).Exp(base, e, mod)
		if got := table.Exp(e); got.Cmp(want) != 0 {
			t.Fatalf("table.Exp(%v) = %v, want %v", e, got, want)
		}
	}
	// Oversized exponents fall back to big.Int.Exp.
	e := new(big.Int).Lsh(big.NewInt(3), 300)
	want := new(big.Int).Exp(base, e, mod)
	if got := table.Exp(e); got.Cmp(want) != 0 {
		t.Fatal("oversized-exponent fallback mismatch")
	}
	// Zero exponent.
	if got := table.Exp(new(big.Int)); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("table.Exp(0) = %v, want 1", got)
	}
	if table.Exp(big.NewInt(-1)) != nil {
		t.Fatal("negative exponent should return nil")
	}
}

func TestMultiExpMatchesSequentialProduct(t *testing.T) {
	sk := testKey(t, 128, 1)
	mod := sk.CiphertextModulus()
	rng := mrand.New(mrand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		k := rng.Intn(6) + 1
		bases := make([]*big.Int, k)
		exps := make([]*big.Int, k)
		want := big.NewInt(1)
		for i := 0; i < k; i++ {
			bases[i] = new(big.Int).Rand(rng, mod)
			exps[i] = new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(rng.Intn(120))))
			term := new(big.Int).Exp(bases[i], exps[i], mod)
			want.Mul(want, term)
			want.Mod(want, mod)
		}
		if got := multiExp(bases, exps, mod); got.Cmp(want) != 0 {
			t.Fatalf("trial %d: multiExp mismatch", trial)
		}
	}
	if got := multiExp(nil, nil, mod); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatal("empty multiExp should be 1")
	}
}

func TestCRTExpMatchesNaive(t *testing.T) {
	for _, s := range []int{1, 2, 3} {
		sk := testKey(t, 96, s)
		crt := sk.crt
		if crt == nil {
			t.Fatalf("s=%d: private key from primes should carry a CRT context", s)
		}
		mod := sk.CiphertextModulus()
		rng := mrand.New(mrand.NewSource(int64(37 + s)))
		for i := 0; i < 15; i++ {
			base := new(big.Int).Rand(rng, mod)
			e := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 300))
			want := new(big.Int).Exp(base, e, mod)
			if got := crt.exp(base, e); got.Cmp(want) != 0 {
				t.Fatalf("s=%d: crt.exp mismatch at trial %d", s, i)
			}
		}
		// Non-unit base (multiple of p): exponent reduction must not apply.
		base := new(big.Int).Set(sk.P)
		e := big.NewInt(12345)
		want := new(big.Int).Exp(base, e, mod)
		if got := crt.exp(base, e); got.Cmp(want) != 0 {
			t.Fatalf("s=%d: crt.exp non-unit base mismatch", s)
		}
	}
}

// TestPartialDecryptCRTBitIdentical pins the acceptance contract: the
// CRT route must produce exactly the bytes of the naive route, at every
// cross-check key size.
func TestPartialDecryptCRTBitIdentical(t *testing.T) {
	for _, bits := range crossCheckBits {
		tk, shares := testThresholdKey(t, bits, 1, 5, 3)
		if tk.crt == nil {
			t.Fatalf("%d bits: dealt key should carry a CRT context", bits)
		}
		c, err := tk.Encrypt(rand.Reader, big.NewInt(987654))
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range shares {
			fast, err := tk.PartialDecrypt(sh, c)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := tk.PartialDecryptNaive(sh, c)
			if err != nil {
				t.Fatal(err)
			}
			if fast.Value.Cmp(naive.Value) != 0 || fast.Index != naive.Index {
				t.Fatalf("%d bits, share %d: CRT partial != naive partial", bits, sh.Index)
			}
		}
	}
}

// TestCombineBatchedBitIdentical: the multi-exponentiation Combine must
// agree bit-for-bit with CombineNaive on every quorum subset.
func TestCombineBatchedBitIdentical(t *testing.T) {
	for _, bits := range crossCheckBits {
		tk, shares := testThresholdKey(t, bits, 1, 5, 3)
		m := big.NewInt(13371337)
		c, _ := tk.Encrypt(rand.Reader, m)
		for _, subset := range [][]int{{1, 2, 3}, {3, 4, 5}, {1, 3, 5}} {
			parts := make([]PartialDecryption, len(subset))
			for i, id := range subset {
				pd, err := tk.PartialDecrypt(shares[id-1], c)
				if err != nil {
					t.Fatal(err)
				}
				parts[i] = pd
			}
			fast, err := tk.Combine(parts)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := tk.CombineNaive(parts)
			if err != nil {
				t.Fatal(err)
			}
			if fast.Cmp(naive) != 0 {
				t.Fatalf("%d bits, subset %v: batched combine %v != naive %v", bits, subset, fast, naive)
			}
			if fast.Cmp(m) != 0 {
				t.Fatalf("%d bits, subset %v: combine = %v, want %v", bits, subset, fast, m)
			}
		}
	}
}

// TestFastEncryptDecryptsIdentically: the fixed-base short-exponent
// encryption is randomized, so the contract is decrypt-identity — every
// fast ciphertext must open to the same plaintext as a naive one.
func TestFastEncryptDecryptsIdentically(t *testing.T) {
	for _, bits := range crossCheckBits {
		tk, shares := testThresholdKey(t, bits, 1, 5, 3)
		ec, err := tk.NewEncContext(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		rng := mrand.New(mrand.NewSource(int64(41 + bits)))
		for i := 0; i < 5; i++ {
			m := new(big.Int).Rand(rng, tk.PlaintextModulus())
			fastCT, err := ec.Encrypt(rand.Reader, m)
			if err != nil {
				t.Fatal(err)
			}
			naiveCT, err := tk.Encrypt(rand.Reader, m)
			if err != nil {
				t.Fatal(err)
			}
			if fastCT.Cmp(naiveCT) == 0 {
				t.Fatalf("%d bits: fast and naive ciphertexts coincide (randomness broken)", bits)
			}
			for _, ct := range []*big.Int{fastCT, naiveCT} {
				if got := decryptWith(t, tk, shares, ct, []int{1, 2, 3}); got.Cmp(m) != 0 {
					t.Fatalf("%d bits: decrypt = %v, want %v", bits, got, m)
				}
			}
			// Fast ciphertexts stay homomorphically compatible with naive
			// ones: E_fast(m) · E_naive(m) = E(2m).
			sum, err := tk.Add(fastCT, naiveCT)
			if err != nil {
				t.Fatal(err)
			}
			want := new(big.Int).Lsh(m, 1)
			want.Mod(want, tk.PlaintextModulus())
			if got := decryptWith(t, tk, shares, sum, []int{2, 4, 5}); got.Cmp(want) != 0 {
				t.Fatalf("%d bits: mixed-path sum = %v, want %v", bits, got, want)
			}
		}
	}
}

func TestFastEncryptIsRandomized(t *testing.T) {
	tk, _ := testThresholdKey(t, 128, 1, 3, 2)
	ec, err := tk.NewEncContext(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	m := big.NewInt(42)
	c1, _ := ec.Encrypt(rand.Reader, m)
	c2, _ := ec.Encrypt(rand.Reader, m)
	if c1.Cmp(c2) == 0 {
		t.Fatal("two fast encryptions of the same plaintext must differ")
	}
}

func TestEncContextRerandomizePreservesPlaintext(t *testing.T) {
	tk, shares := testThresholdKey(t, 128, 1, 3, 2)
	ec, err := tk.NewEncContext(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	m := big.NewInt(5150)
	c, _ := tk.Encrypt(rand.Reader, m)
	r, err := ec.Rerandomize(rand.Reader, c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cmp(c) == 0 {
		t.Fatal("rerandomize must change the ciphertext")
	}
	if got := decryptWith(t, tk, shares, r, []int{1, 2}); got.Cmp(m) != 0 {
		t.Fatalf("rerandomized decrypt = %v, want %v", got, m)
	}
}

func TestRandomizerPool(t *testing.T) {
	tk, shares := testThresholdKey(t, 128, 1, 3, 2)
	ec, err := tk.NewEncContext(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewRandomizerPool(ec, 8, nil)
	defer pool.Close()

	m := big.NewInt(2025)
	c, _ := tk.Encrypt(rand.Reader, m)
	seen := map[string]bool{}
	for i := 0; i < 32; i++ {
		r, err := pool.Rerandomize(c)
		if err != nil {
			t.Fatal(err)
		}
		if seen[r.String()] {
			t.Fatal("pooled rerandomization repeated a ciphertext")
		}
		seen[r.String()] = true
		if got := decryptWith(t, tk, shares, r, []int{1, 3}); got.Cmp(m) != 0 {
			t.Fatalf("pooled rerandomize decrypt = %v, want %v", got, m)
		}
	}
	ct, err := pool.Encrypt(m)
	if err != nil {
		t.Fatal(err)
	}
	if got := decryptWith(t, tk, shares, ct, []int{2, 3}); got.Cmp(m) != 0 {
		t.Fatalf("pooled encrypt decrypt = %v, want %v", got, m)
	}
	hits, misses := pool.Stats()
	if hits+misses != 33 {
		t.Fatalf("stats: hits %d + misses %d != 33 draws", hits, misses)
	}
	// Close is idempotent and leaves the pool usable (synchronously).
	pool.Close()
	pool.Close()
	if _, err := pool.Rerandomize(c); err != nil {
		t.Fatalf("post-close rerandomize: %v", err)
	}
}

func TestDecryptCRTBitIdentical(t *testing.T) {
	for _, bits := range crossCheckBits {
		for _, s := range []int{1, 2} {
			if bits == 1024 && s == 2 {
				continue // s=2 at 1024 bits is slow; covered at 64/256
			}
			sk := testKey(t, bits, s)
			rng := mrand.New(mrand.NewSource(int64(43*bits + s)))
			for i := 0; i < 3; i++ {
				m := new(big.Int).Rand(rng, sk.PlaintextModulus())
				c, err := sk.Encrypt(rand.Reader, m)
				if err != nil {
					t.Fatal(err)
				}
				fast, err := sk.Decrypt(c)
				if err != nil {
					t.Fatal(err)
				}
				naive, err := sk.DecryptNaive(c)
				if err != nil {
					t.Fatal(err)
				}
				if fast.Cmp(naive) != 0 || fast.Cmp(m) != 0 {
					t.Fatalf("bits=%d s=%d: fast %v naive %v want %v", bits, s, fast, naive, m)
				}
			}
		}
	}
}

// TestFastPathsDegreeS2Threshold exercises the whole fast stack at
// degree s=2: table encryption, CRT partials, batched combine.
func TestFastPathsDegreeS2Threshold(t *testing.T) {
	tk, shares := testThresholdKey(t, 96, 2, 4, 3)
	ec, err := tk.NewEncContext(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ns := tk.PlaintextModulus()
	rng := mrand.New(mrand.NewSource(47))
	for i := 0; i < 8; i++ {
		m := new(big.Int).Rand(rng, ns)
		c, err := ec.Encrypt(rand.Reader, m)
		if err != nil {
			t.Fatal(err)
		}
		parts := make([]PartialDecryption, 3)
		for j, id := range []int{1, 2, 4} {
			fast, err := tk.PartialDecrypt(shares[id-1], c)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := tk.PartialDecryptNaive(shares[id-1], c)
			if err != nil {
				t.Fatal(err)
			}
			if fast.Value.Cmp(naive.Value) != 0 {
				t.Fatalf("s=2: CRT partial diverges from naive at share %d", id)
			}
			parts[j] = fast
		}
		got, err := tk.Combine(parts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(m) != 0 {
			t.Fatalf("s=2 fast stack: decrypt = %v, want %v", got, m)
		}
	}
}

// TestThresholdQuorumBoundaries covers the exact-quorum and
// below-quorum edges on the fast paths: w = l (every share needed),
// exactly w partials, and w−1 partials failing.
func TestThresholdQuorumBoundaries(t *testing.T) {
	tk, shares := testThresholdKey(t, 256, 1, 4, 4)
	m := big.NewInt(7777)
	c, _ := tk.Encrypt(rand.Reader, m)
	parts := make([]PartialDecryption, 4)
	for i := range shares {
		pd, err := tk.PartialDecrypt(shares[i], c)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = pd
	}
	got, err := tk.Combine(parts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(m) != 0 {
		t.Fatalf("full-quorum fast combine = %v, want %v", got, m)
	}
	for _, combine := range []func([]PartialDecryption) (*big.Int, error){tk.Combine, tk.CombineNaive} {
		if _, err := combine(parts[:3]); err == nil {
			t.Fatal("w-1 partials must not decrypt")
		}
	}
}

// TestLagrangeCacheConsistency: memoized coefficients must equal fresh
// ones for interleaved subsets.
func TestLagrangeCacheConsistency(t *testing.T) {
	tk, _ := testThresholdKey(t, 128, 1, 6, 3)
	subsets := [][]int{{1, 2, 3}, {2, 4, 6}, {1, 2, 3}, {2, 4, 6}}
	for _, sub := range subsets {
		lams, err := tk.lagrangeFor(sub)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sub {
			want, err := lagrangeAtZero(tk.delta, sub, i)
			if err != nil {
				t.Fatal(err)
			}
			if lams[i].Cmp(want) != 0 {
				t.Fatalf("subset %v, i=%d: cached %v != fresh %v", sub, i, lams[i], want)
			}
		}
	}
}
