package damgardjurik

import (
	"math/big"
	"sync"
	"testing"
)

// pool_race_test.go is the concurrency property suite of the
// RandomizerPool, designed to run under -race (CI does): many
// concurrent Encrypt/Rerandomize callers racing the background refill
// and racing Close must never panic, deadlock, produce an undecryptable
// ciphertext, or leave a filler goroutine behind.

func racePoolFixture(t *testing.T) (*PrivateKey, *EncContext) {
	t.Helper()
	sk, err := FixturePrivateKey(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := sk.Public().NewEncContext(nil)
	if err != nil {
		t.Fatal(err)
	}
	return sk, ec
}

// TestRandomizerPoolConcurrentEncryptDecryptable: concurrent pooled
// encryptions interleaved with refills stay correct — every ciphertext
// decrypts to its plaintext.
func TestRandomizerPoolConcurrentEncryptDecryptable(t *testing.T) {
	sk, ec := racePoolFixture(t)
	pool := NewRandomizerPool(ec, 8, nil)
	defer pool.Close()

	const workers, perWorker = 8, 40
	type pair struct {
		m  int64
		ct *big.Int
	}
	results := make([][]pair, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m := int64(w*perWorker + i)
				ct, err := pool.Encrypt(big.NewInt(m))
				if err != nil {
					t.Errorf("worker %d: encrypt: %v", w, err)
					return
				}
				results[w] = append(results[w], pair{m: m, ct: ct})
			}
		}(w)
	}
	wg.Wait()
	for w, ps := range results {
		for _, p := range ps {
			got, err := sk.Decrypt(p.ct)
			if err != nil {
				t.Fatalf("worker %d plaintext %d: decrypt: %v", w, p.m, err)
			}
			if got.Int64() != p.m {
				t.Fatalf("worker %d: decrypted %v, want %d", w, got, p.m)
			}
		}
	}
	hits, misses := pool.Stats()
	if hits+misses != workers*perWorker {
		t.Fatalf("stats account %d draws, want %d", hits+misses, workers*perWorker)
	}
}

// TestRandomizerPoolCloseRacesEncrypters: Close fired mid-traffic.
// Callers that lose the race must degrade to synchronous randomizers,
// never error or panic, and Close must reap the filler (wg.Wait inside
// Close would hang this test otherwise).
func TestRandomizerPoolCloseRacesEncrypters(t *testing.T) {
	sk, ec := racePoolFixture(t)
	for round := 0; round < 6; round++ {
		pool := NewRandomizerPool(ec, 4, nil)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < 6; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for i := 0; i < 25; i++ {
					m := big.NewInt(int64(i))
					ct, err := pool.Encrypt(m)
					if err != nil {
						t.Errorf("encrypt after close race: %v", err)
						return
					}
					if i == 0 && w == 0 {
						if got, err := sk.Decrypt(ct); err != nil || got.Int64() != 0 {
							t.Errorf("post-close ciphertext broken: %v %v", got, err)
						}
					}
				}
			}(w)
		}
		closer := make(chan struct{})
		go func() {
			<-start
			pool.Close()
			pool.Close() // idempotent under the same race
			close(closer)
		}()
		close(start)
		wg.Wait()
		<-closer
	}
}

// TestRandomizerPoolRefillCloseInterleaving hammers the refill
// spawn/Close handshake specifically: drain-to-empty (forcing refill
// spawns) while another goroutine closes, repeatedly.
func TestRandomizerPoolRefillCloseInterleaving(t *testing.T) {
	_, ec := racePoolFixture(t)
	for round := 0; round < 20; round++ {
		pool := NewRandomizerPool(ec, 2, nil)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := pool.Get(); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			pool.Close()
		}()
		wg.Wait()
		// After Close has returned no filler may be running: a Get must
		// still work (synchronously) and the pool must stay closed.
		if _, err := pool.Get(); err != nil {
			t.Fatalf("get after close: %v", err)
		}
	}
}
