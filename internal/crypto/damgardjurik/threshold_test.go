package damgardjurik

import (
	"crypto/rand"
	"errors"
	"math/big"
	mrand "math/rand"
	"testing"
)

// testThresholdKey deals a fixture-backed threshold key.
func testThresholdKey(t *testing.T, bits, s, parties, threshold int) (*ThresholdKey, []KeyShare) {
	t.Helper()
	tk, shares, err := FixtureThresholdKey(bits, s, parties, threshold)
	if err != nil {
		t.Fatal(err)
	}
	return tk, shares
}

func decryptWith(t *testing.T, tk *ThresholdKey, shares []KeyShare, c *big.Int, idx []int) *big.Int {
	t.Helper()
	parts := make([]PartialDecryption, len(idx))
	for i, id := range idx {
		pd, err := tk.PartialDecrypt(shares[id-1], c)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = pd
	}
	m, err := tk.Combine(parts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestThresholdRoundTrip(t *testing.T) {
	tk, shares := testThresholdKey(t, 128, 1, 5, 3)
	m := big.NewInt(99887766)
	c, err := tk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	got := decryptWith(t, tk, shares, c, []int{1, 2, 3})
	if got.Cmp(m) != 0 {
		t.Fatalf("threshold decrypt = %v, want %v", got, m)
	}
}

func TestThresholdAnySubsetWorks(t *testing.T) {
	tk, shares := testThresholdKey(t, 128, 1, 6, 3)
	m := big.NewInt(123123)
	c, _ := tk.Encrypt(rand.Reader, m)
	subsets := [][]int{{1, 2, 3}, {4, 5, 6}, {1, 3, 5}, {2, 4, 6}, {1, 5, 6}}
	for _, sub := range subsets {
		if got := decryptWith(t, tk, shares, c, sub); got.Cmp(m) != 0 {
			t.Fatalf("subset %v: got %v, want %v", sub, got, m)
		}
	}
}

func TestThresholdDegree2(t *testing.T) {
	tk, shares := testThresholdKey(t, 96, 2, 4, 2)
	ns := tk.PlaintextModulus()
	rng := mrand.New(mrand.NewSource(23))
	for i := 0; i < 10; i++ {
		m := new(big.Int).Rand(rng, ns)
		c, _ := tk.Encrypt(rand.Reader, m)
		if got := decryptWith(t, tk, shares, c, []int{2, 4}); got.Cmp(m) != 0 {
			t.Fatalf("s=2 threshold decrypt = %v, want %v", got, m)
		}
	}
}

func TestThresholdMatchesHomomorphicSum(t *testing.T) {
	// Aggregate-then-threshold-decrypt: the Chiaroscuro code path.
	tk, shares := testThresholdKey(t, 128, 1, 5, 3)
	vals := []int64{100, 250, 7, 43}
	acc, err := tk.Encrypt(rand.Reader, big.NewInt(vals[0]))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals[1:] {
		c, _ := tk.Encrypt(rand.Reader, big.NewInt(v))
		acc, err = tk.Add(acc, c)
		if err != nil {
			t.Fatal(err)
		}
	}
	got := decryptWith(t, tk, shares, acc, []int{5, 1, 3})
	if got.Int64() != 400 {
		t.Fatalf("sum decrypts to %v, want 400", got)
	}
}

func TestThresholdExtraPartialsIgnored(t *testing.T) {
	tk, shares := testThresholdKey(t, 128, 1, 5, 2)
	m := big.NewInt(5555)
	c, _ := tk.Encrypt(rand.Reader, m)
	got := decryptWith(t, tk, shares, c, []int{1, 2, 3, 4, 5})
	if got.Cmp(m) != 0 {
		t.Fatalf("with extras: %v, want %v", got, m)
	}
}

func TestThresholdNotEnoughShares(t *testing.T) {
	tk, shares := testThresholdKey(t, 128, 1, 5, 3)
	c, _ := tk.Encrypt(rand.Reader, big.NewInt(1))
	p1, _ := tk.PartialDecrypt(shares[0], c)
	p2, _ := tk.PartialDecrypt(shares[1], c)
	if _, err := tk.Combine([]PartialDecryption{p1, p2}); !errors.Is(err, ErrNotEnoughShares) {
		t.Fatalf("err = %v, want ErrNotEnoughShares", err)
	}
}

func TestThresholdDuplicateShares(t *testing.T) {
	tk, shares := testThresholdKey(t, 128, 1, 5, 3)
	c, _ := tk.Encrypt(rand.Reader, big.NewInt(1))
	p1, _ := tk.PartialDecrypt(shares[0], c)
	p2, _ := tk.PartialDecrypt(shares[1], c)
	if _, err := tk.Combine([]PartialDecryption{p1, p1, p2}); !errors.Is(err, ErrDuplicateShare) {
		t.Fatalf("err = %v, want ErrDuplicateShare", err)
	}
}

func TestThresholdShareIndexValidation(t *testing.T) {
	tk, shares := testThresholdKey(t, 128, 1, 5, 3)
	c, _ := tk.Encrypt(rand.Reader, big.NewInt(1))
	if _, err := tk.PartialDecrypt(KeyShare{Index: 0, Value: big.NewInt(1)}, c); !errors.Is(err, ErrShareOutOfRange) {
		t.Fatalf("index 0: err = %v", err)
	}
	if _, err := tk.PartialDecrypt(KeyShare{Index: 6, Value: big.NewInt(1)}, c); !errors.Is(err, ErrShareOutOfRange) {
		t.Fatalf("index 6: err = %v", err)
	}
	p1, _ := tk.PartialDecrypt(shares[0], c)
	p2, _ := tk.PartialDecrypt(shares[1], c)
	bad := PartialDecryption{Index: 99, Value: big.NewInt(1)}
	if _, err := tk.Combine([]PartialDecryption{p1, p2, bad}); !errors.Is(err, ErrShareOutOfRange) {
		t.Fatalf("combine with bad index: err = %v", err)
	}
}

func TestThresholdWrongSharesGiveWrongPlaintext(t *testing.T) {
	// Partials computed with a tampered share must not silently yield the
	// right plaintext (they will either fail dLog or give garbage).
	tk, shares := testThresholdKey(t, 128, 1, 5, 3)
	m := big.NewInt(777)
	c, _ := tk.Encrypt(rand.Reader, m)
	tampered := KeyShare{Index: 3, Value: new(big.Int).Add(shares[2].Value, big.NewInt(1))}
	p1, _ := tk.PartialDecrypt(shares[0], c)
	p2, _ := tk.PartialDecrypt(shares[1], c)
	p3, _ := tk.PartialDecrypt(tampered, c)
	got, err := tk.Combine([]PartialDecryption{p1, p2, p3})
	if err == nil && got.Cmp(m) == 0 {
		t.Fatal("tampered share still produced the correct plaintext")
	}
}

func TestThresholdOneOfOne(t *testing.T) {
	tk, shares := testThresholdKey(t, 128, 1, 1, 1)
	m := big.NewInt(31415)
	c, _ := tk.Encrypt(rand.Reader, m)
	if got := decryptWith(t, tk, shares, c, []int{1}); got.Cmp(m) != 0 {
		t.Fatalf("1-of-1 decrypt = %v", got)
	}
}

func TestThresholdFullQuorum(t *testing.T) {
	tk, shares := testThresholdKey(t, 128, 1, 4, 4)
	m := big.NewInt(2718281)
	c, _ := tk.Encrypt(rand.Reader, m)
	if got := decryptWith(t, tk, shares, c, []int{1, 2, 3, 4}); got.Cmp(m) != 0 {
		t.Fatalf("4-of-4 decrypt = %v", got)
	}
}

func TestGenerateThresholdKeyFresh(t *testing.T) {
	// Full safe-prime generation at a small size.
	tk, shares, err := GenerateThresholdKey(rand.Reader, 64, 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := big.NewInt(12345)
	c, err := tk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := tk.PartialDecrypt(shares[0], c)
	p3, _ := tk.PartialDecrypt(shares[2], c)
	got, err := tk.Combine([]PartialDecryption{p1, p3})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(m) != 0 {
		t.Fatalf("fresh key decrypt = %v", got)
	}
}

func TestNewThresholdKeyValidation(t *testing.T) {
	p, q, _ := FixturePrimes(128)
	cases := []struct {
		parties, threshold int
	}{{0, 1}, {3, 0}, {3, 4}}
	for _, tc := range cases {
		if _, _, err := NewThresholdKeyFromPrimes(nil, p, q, 1, tc.parties, tc.threshold); !errors.Is(err, ErrKeyGeneration) {
			t.Errorf("(%d,%d): err = %v", tc.parties, tc.threshold, err)
		}
	}
	// Non-safe primes rejected (fixture 128 primes ARE safe; use a plain
	// prime).
	plain, err := rand.Prime(rand.Reader, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !isSafePrime(plain) {
		if _, _, err := NewThresholdKeyFromPrimes(nil, plain, q, 1, 3, 2); !errors.Is(err, ErrKeyGeneration) {
			t.Errorf("non-safe prime: err = %v", err)
		}
	}
	if _, _, err := NewThresholdKeyFromPrimes(nil, p, p, 1, 3, 2); !errors.Is(err, ErrKeyGeneration) {
		t.Errorf("p == q: err = %v", err)
	}
}

func TestThresholdHomomorphicOpsSharedWithPublicKey(t *testing.T) {
	// The ThresholdKey embeds PublicKey: scalar ops must behave the same.
	tk, shares := testThresholdKey(t, 128, 1, 3, 2)
	c, _ := tk.Encrypt(rand.Reader, big.NewInt(21))
	c2, err := tk.ScalarMul(c, big.NewInt(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := decryptWith(t, tk, shares, c2, []int{1, 3}); got.Int64() != 42 {
		t.Fatalf("threshold scalar mul = %v", got)
	}
}

func TestLagrangeIntegrality(t *testing.T) {
	delta := factorial(6)
	indices := []int{1, 3, 6}
	for i := range indices {
		if _, err := lagrangeAtZero(delta, indices, i); err != nil {
			t.Fatalf("lagrange(%v, %d): %v", indices, i, err)
		}
	}
}

func TestLagrangeInterpolatesConstant(t *testing.T) {
	// Σ λ_{0,i}/Δ must equal 1 (interpolation of the constant poly 1).
	delta := factorial(5)
	indices := []int{2, 3, 5}
	sum := new(big.Int)
	for i := range indices {
		l, err := lagrangeAtZero(delta, indices, i)
		if err != nil {
			t.Fatal(err)
		}
		sum.Add(sum, l)
	}
	if sum.Cmp(delta) != 0 {
		t.Fatalf("Σλ = %v, want Δ = %v", sum, delta)
	}
}

func TestEvalPolyHorner(t *testing.T) {
	// f(x) = 3 + 2x + x², f(5) = 38.
	coeffs := []*big.Int{big.NewInt(3), big.NewInt(2), big.NewInt(1)}
	got := evalPoly(coeffs, big.NewInt(5), big.NewInt(1000))
	if got.Int64() != 38 {
		t.Fatalf("evalPoly = %v, want 38", got)
	}
	// Modular reduction applies.
	got = evalPoly(coeffs, big.NewInt(5), big.NewInt(7))
	if got.Int64() != 38%7 {
		t.Fatalf("evalPoly mod 7 = %v, want %d", got, 38%7)
	}
}

func TestDeltaFactorial(t *testing.T) {
	tk, _ := testThresholdKey(t, 128, 1, 5, 2)
	if tk.Delta().Int64() != 120 {
		t.Fatalf("Δ = %v, want 5! = 120", tk.Delta())
	}
}
