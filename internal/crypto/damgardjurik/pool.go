package damgardjurik

import (
	"io"
	"math/big"
	"sync"
	"sync/atomic"
)

// RandomizerPool keeps a buffer of precomputed encryption randomizers
// (H^α values from an EncContext) so that hot-path Rerandomize and
// Encrypt calls reduce to a channel receive plus one modular
// multiplication. When the buffer drains below half capacity, a single
// background filler goroutine tops it up and exits; the pool never keeps
// a goroutine alive while idle and full. A Get on an empty pool computes
// the randomizer synchronously (never blocks on the filler).
//
// The pool is safe for concurrent use by parallel shard workers; a
// caller-supplied rnd is serialized behind an internal lock, since the
// background filler and synchronous Get misses read it from different
// goroutines. Close stops any in-flight refill; using the pool after
// Close computes synchronously (still correct, just unpooled).
type RandomizerPool struct {
	ctx *EncContext
	rnd io.Reader // nil = crypto/rand.Reader

	ch      chan *big.Int
	low     int
	mu      sync.Mutex // serializes refill-spawn against Close
	filling atomic.Bool
	closed  atomic.Bool
	done    chan struct{}
	wg      sync.WaitGroup

	hits   atomic.Int64
	misses atomic.Int64
}

// NewRandomizerPool builds a pool of the given capacity over ctx and
// pre-fills it in the background. rnd supplies every α (crypto/rand if
// nil; other readers need not be thread-safe — the pool locks around
// every read). Capacity is clamped to at least 1.
func NewRandomizerPool(ctx *EncContext, capacity int, rnd io.Reader) *RandomizerPool {
	if capacity < 1 {
		capacity = 1
	}
	if rnd != nil {
		rnd = &lockedReader{r: rnd}
	}
	p := &RandomizerPool{
		ctx:  ctx,
		rnd:  rnd,
		ch:   make(chan *big.Int, capacity),
		low:  (capacity + 1) / 2,
		done: make(chan struct{}),
	}
	p.refill()
	return p
}

// lockedReader serializes a non-thread-safe io.Reader shared between
// the filler goroutine and synchronous pool misses.
type lockedReader struct {
	mu sync.Mutex
	r  io.Reader
}

func (l *lockedReader) Read(b []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Read(b)
}

// Get returns a fresh randomizer, preferring the precomputed buffer.
func (p *RandomizerPool) Get() (*big.Int, error) {
	select {
	case rz := <-p.ch:
		p.hits.Add(1)
		if len(p.ch) < p.low {
			p.refill()
		}
		return rz, nil
	default:
		p.misses.Add(1)
		p.refill()
		return p.ctx.Randomizer(p.rnd)
	}
}

// Rerandomize refreshes c with a pooled randomizer: c · H^α mod n^{s+1}.
func (p *RandomizerPool) Rerandomize(c *big.Int) (*big.Int, error) {
	if err := p.ctx.pk.checkCiphertext(c); err != nil {
		return nil, err
	}
	rz, err := p.Get()
	if err != nil {
		return nil, err
	}
	out := rz.Mul(c, rz) // rz is ours: single-use, safe to clobber
	return out.Mod(out, p.ctx.pk.ns1), nil
}

// Encrypt is pooled fast-path encryption: (1+n)^m · pooled randomizer.
// The exponent reduction lives in pooled scratch; the ciphertext is
// fresh (callers retain it).
func (p *RandomizerPool) Encrypt(m *big.Int) (*big.Int, error) {
	if m == nil {
		return nil, ErrInvalidPlaintext
	}
	rz, err := p.Get()
	if err != nil {
		return nil, err
	}
	pk := p.ctx.pk
	mm := getInt()
	mm.Mod(m, pk.ns)
	c := pk.powOnePlusN(mm)
	putInt(mm)
	c.Mul(c, rz)
	return c.Mod(c, pk.ns1), nil
}

// Stats reports pooled (hits) versus synchronously computed (misses)
// randomizer draws; surfaced by the cost instrumentation.
func (p *RandomizerPool) Stats() (hits, misses int64) {
	return p.hits.Load(), p.misses.Load()
}

// Close stops the background refill. Idempotent.
func (p *RandomizerPool) Close() {
	p.mu.Lock()
	if p.closed.CompareAndSwap(false, true) {
		close(p.done)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// refill starts the single background filler unless one is already
// running or the pool is closed. The mutex makes the closed-check and
// wg.Add atomic with respect to Close, so no filler can be spawned
// after Close's wg.Wait has returned.
func (p *RandomizerPool) refill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() || !p.filling.CompareAndSwap(false, true) {
		return
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer p.filling.Store(false)
		for {
			select {
			case <-p.done:
				return
			default:
			}
			rz, err := p.ctx.Randomizer(p.rnd)
			if err != nil {
				return // rng failure: degrade to synchronous Gets
			}
			select {
			case p.ch <- rz:
			case <-p.done:
				return
			default:
				return // full
			}
		}
	}()
}
