package damgardjurik

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// PrivateKey is the non-threshold (single-holder) secret key. Chiaroscuro
// itself uses the threshold variant (threshold.go); the single-holder key
// is used by tests, microbenchmarks and the cost-calibration harness.
type PrivateKey struct {
	PublicKey
	P, Q *big.Int

	d   *big.Int    // combined exponent: d ≡ 1 mod n^s, d ≡ 0 mod λ(n)
	crt *crtContext // fast half-modulus exponentiation (crt.go)
}

// GenerateKey creates a fresh key pair with a modulus of the given bit
// length and degree s. bits must be at least 16 (tiny keys are only
// meaningful in tests); real deployments should use >= 2048.
func GenerateKey(rnd io.Reader, bits, s int) (*PrivateKey, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	if bits < 16 {
		return nil, fmt.Errorf("%w: modulus of %d bits is too small", ErrKeyGeneration, bits)
	}
	for attempt := 0; attempt < 64; attempt++ {
		p, err := rand.Prime(rnd, bits/2)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrKeyGeneration, err)
		}
		q, err := rand.Prime(rnd, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrKeyGeneration, err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		sk, err := NewPrivateKeyFromPrimes(p, q, s)
		if err != nil {
			continue // e.g. gcd(n, λ) != 1 for pathological primes
		}
		return sk, nil
	}
	return nil, fmt.Errorf("%w: no suitable primes after 64 attempts", ErrKeyGeneration)
}

// NewPrivateKeyFromPrimes assembles a key from the two primes. It is the
// deterministic entry point used by tests and fixtures.
func NewPrivateKeyFromPrimes(p, q *big.Int, s int) (*PrivateKey, error) {
	if p == nil || q == nil || !p.ProbablyPrime(20) || !q.ProbablyPrime(20) {
		return nil, fmt.Errorf("%w: arguments are not prime", ErrKeyGeneration)
	}
	if p.Cmp(q) == 0 {
		return nil, fmt.Errorf("%w: p == q", ErrKeyGeneration)
	}
	n := new(big.Int).Mul(p, q)
	pk, err := newPublicKey(n, s)
	if err != nil {
		return nil, err
	}
	pm1 := new(big.Int).Sub(p, one)
	qm1 := new(big.Int).Sub(q, one)
	lambda := lcm(pm1, qm1)
	if new(big.Int).GCD(nil, nil, n, lambda).Cmp(one) != 0 {
		return nil, fmt.Errorf("%w: gcd(n, λ) != 1", ErrKeyGeneration)
	}
	// d ≡ 1 mod n^s and d ≡ 0 mod λ: d = λ·(λ^{-1} mod n^s).
	invLambda := new(big.Int).ModInverse(lambda, pk.ns)
	if invLambda == nil {
		return nil, fmt.Errorf("%w: λ not invertible mod n^s", ErrKeyGeneration)
	}
	d := new(big.Int).Mul(lambda, invLambda)
	sk := &PrivateKey{PublicKey: *pk, P: new(big.Int).Set(p), Q: new(big.Int).Set(q), d: d}
	if crt, err := newCRTContext(p, q, s); err == nil {
		sk.crt = crt
	}
	return sk, nil
}

// Decrypt recovers the plaintext of c: computes c^d = (1+n)^m mod n^{s+1}
// and extracts m with the discrete-log algorithm. The exponentiation
// runs through the CRT fast path (crt.go) — bit-identical to, and ~4×
// faster than, DecryptNaive.
func (sk *PrivateKey) Decrypt(c *big.Int) (*big.Int, error) {
	if sk.crt == nil {
		return sk.DecryptNaive(c)
	}
	if err := sk.checkCiphertext(c); err != nil {
		return nil, err
	}
	return sk.dLog(sk.crt.exp(c, sk.d))
}

// DecryptNaive is the retained reference implementation of Decrypt: one
// full-width exponentiation modulo n^{s+1}. Benchmark baseline and
// bit-identity oracle for the CRT route.
func (sk *PrivateKey) DecryptNaive(c *big.Int) (*big.Int, error) {
	if err := sk.checkCiphertext(c); err != nil {
		return nil, err
	}
	a := new(big.Int).Exp(c, sk.d, sk.ns1)
	m, err := sk.dLog(a)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Public returns the public key.
func (sk *PrivateKey) Public() *PublicKey {
	pk := sk.PublicKey
	return &pk
}

// Validate performs internal consistency checks (used by tests and when
// loading fixture keys).
func (sk *PrivateKey) Validate() error {
	if new(big.Int).Mul(sk.P, sk.Q).Cmp(sk.N) != 0 {
		return errors.New("damgardjurik: n != p·q")
	}
	if sk.d == nil || sk.d.Sign() <= 0 {
		return errors.New("damgardjurik: missing decryption exponent")
	}
	if new(big.Int).Mod(sk.d, sk.ns).Cmp(one) != 0 {
		return errors.New("damgardjurik: d != 1 mod n^s")
	}
	return nil
}

func lcm(a, b *big.Int) *big.Int {
	g := new(big.Int).GCD(nil, nil, a, b)
	out := new(big.Int).Div(a, g)
	return out.Mul(out, b)
}
