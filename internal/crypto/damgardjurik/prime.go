package damgardjurik

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
)

// SafePrime returns a prime p of the given bit length such that (p-1)/2 is
// also prime. The search uses an incremental sieve over random starting
// points; expect seconds at 512 bits and minutes beyond — production
// deployments should pregenerate (see Fixture).
func SafePrime(rnd io.Reader, bits int) (*big.Int, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	if bits < 5 {
		return nil, fmt.Errorf("%w: safe prime of %d bits", ErrKeyGeneration, bits)
	}
	for {
		// Draw a candidate q' for the Sophie Germain prime (bits-1 bits),
		// then test p = 2q'+1.
		qPrime, err := rand.Prime(rnd, bits-1)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrKeyGeneration, err)
		}
		p := new(big.Int).Lsh(qPrime, 1)
		p.Add(p, one)
		if p.BitLen() != bits {
			continue
		}
		// Cheap pre-filter: p mod small primes.
		if !passesSmallPrimeFilter(p) {
			continue
		}
		if p.ProbablyPrime(20) {
			return p, nil
		}
	}
}

// isSafePrime reports whether p and (p-1)/2 are both (probable) primes.
func isSafePrime(p *big.Int) bool {
	if p == nil || p.BitLen() < 3 || p.Bit(0) == 0 {
		return false
	}
	if !p.ProbablyPrime(20) {
		return false
	}
	half := new(big.Int).Rsh(new(big.Int).Sub(p, one), 1)
	return half.ProbablyPrime(20)
}

var smallPrimes = []int64{3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}

func passesSmallPrimeFilter(p *big.Int) bool {
	m := new(big.Int)
	for _, sp := range smallPrimes {
		if m.Mod(p, big.NewInt(sp)).Sign() == 0 && p.Cmp(big.NewInt(sp)) != 0 {
			return false
		}
	}
	return true
}
