// Package damgardjurik implements the Damgård–Jurik generalization of the
// Paillier public-key cryptosystem (Damgård & Jurik, PKC 2001), the
// encryption scheme used by Chiaroscuro. It provides:
//
//   - semantic security under the Decisional Composite Residuosity
//     assumption (ciphertexts are randomized);
//   - additive homomorphism: Add(E(a), E(b)) = E(a+b), ScalarMul(E(a), k)
//     = E(k·a), over the plaintext ring Z_{n^s};
//   - threshold ("collaborative") decryption following the scheme of
//     Section 4.1 of the paper (Shoup-style): the secret is Shamir-shared
//     among l parties and any w of them can decrypt by contributing
//     partial decryptions, without ever reconstructing the key.
//
// Chiaroscuro's requirements on the scheme (demo paper, Sec. II.A) are
// exactly these three properties.
//
// The degree parameter s sets the plaintext space to Z_{n^s} and the
// ciphertext space to Z*_{n^{s+1}}; s=1 recovers classic Paillier.
//
// Ciphertexts and plaintexts are *big.Int values. This implementation
// targets the honest-but-curious model of the paper: zero-knowledge
// proofs of correct partial decryption (used against active adversaries)
// are out of scope and documented as such in docs/CRYPTO.md, along with
// the scheme description, the precomputed fast paths (fixed-base
// encryption, CRT decryption, pooled rerandomization, batched share
// combination) and the remaining security caveats.
package damgardjurik

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
)

var (
	one = big.NewInt(1)
	two = big.NewInt(2)
)

// Common errors.
var (
	ErrInvalidCiphertext = errors.New("damgardjurik: invalid ciphertext")
	ErrInvalidPlaintext  = errors.New("damgardjurik: invalid plaintext")
	ErrKeyGeneration     = errors.New("damgardjurik: key generation failed")
)

// PublicKey holds the public parameters (n, s) plus cached powers of n.
type PublicKey struct {
	N *big.Int // RSA-type modulus n = p·q
	S int      // degree: plaintext space Z_{n^s}

	ns  *big.Int // n^s, the plaintext modulus
	ns1 *big.Int // n^{s+1}, the ciphertext modulus
}

// NewPublicKey builds a public key from its transportable parameters
// (n, s), validating them and rebuilding the cached moduli. Used when
// deserializing keys received from a dealer (see internal/wire).
func NewPublicKey(n *big.Int, s int) (*PublicKey, error) {
	return newPublicKey(n, s)
}

// newPublicKey builds a PublicKey and its caches.
func newPublicKey(n *big.Int, s int) (*PublicKey, error) {
	if s < 1 {
		return nil, fmt.Errorf("damgardjurik: degree s=%d < 1", s)
	}
	if n == nil || n.Sign() <= 0 || n.Bit(0) == 0 {
		return nil, errors.New("damgardjurik: modulus must be a positive odd integer")
	}
	pk := &PublicKey{N: new(big.Int).Set(n), S: s}
	pk.ns = pow(n, s)
	pk.ns1 = new(big.Int).Mul(pk.ns, n)
	return pk, nil
}

// PlaintextModulus returns n^s (a fresh copy).
func (pk *PublicKey) PlaintextModulus() *big.Int { return new(big.Int).Set(pk.ns) }

// CiphertextModulus returns n^{s+1} (a fresh copy).
func (pk *PublicKey) CiphertextModulus() *big.Int { return new(big.Int).Set(pk.ns1) }

// CiphertextBytes returns the byte length of a serialized ciphertext.
func (pk *PublicKey) CiphertextBytes() int { return (pk.ns1.BitLen() + 7) / 8 }

// Encrypt encrypts m (interpreted mod n^s) with fresh randomness from rnd
// (crypto/rand.Reader if nil): c = (1+n)^m · r^{n^s} mod n^{s+1}.
func (pk *PublicKey) Encrypt(rnd io.Reader, m *big.Int) (*big.Int, error) {
	r, err := pk.randomUnit(rnd)
	if err != nil {
		return nil, err
	}
	return pk.EncryptWithNonce(m, r)
}

// EncryptWithNonce encrypts m with the caller-chosen unit r in Z*_n.
// Deterministic given (m, r); intended for tests and derandomized
// protocols. r must satisfy 0 < r < n and gcd(r, n) = 1.
func (pk *PublicKey) EncryptWithNonce(m, r *big.Int) (*big.Int, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil", ErrInvalidPlaintext)
	}
	if r == nil || r.Sign() <= 0 || r.Cmp(pk.N) >= 0 {
		return nil, errors.New("damgardjurik: nonce out of range")
	}
	if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) != 0 {
		return nil, errors.New("damgardjurik: nonce not a unit mod n")
	}
	mm := new(big.Int).Mod(m, pk.ns)
	gm := pk.powOnePlusN(mm)
	rn := new(big.Int).Exp(r, pk.ns, pk.ns1)
	c := gm.Mul(gm, rn)
	return c.Mod(c, pk.ns1), nil
}

// EncryptInt64 is a convenience wrapper around Encrypt.
func (pk *PublicKey) EncryptInt64(rnd io.Reader, m int64) (*big.Int, error) {
	return pk.Encrypt(rnd, big.NewInt(m))
}

// Add homomorphically adds two ciphertexts: E(a)·E(b) = E(a+b mod n^s).
// The double-width product lives in pooled scratch; only the reduced
// result is freshly allocated (callers retain it).
func (pk *PublicKey) Add(c1, c2 *big.Int) (*big.Int, error) {
	if err := pk.checkCiphertext(c1); err != nil {
		return nil, err
	}
	if err := pk.checkCiphertext(c2); err != nil {
		return nil, err
	}
	prod := getInt()
	prod.Mul(c1, c2)
	out := new(big.Int).Mod(prod, pk.ns1)
	putInt(prod)
	return out, nil
}

// ScalarMul homomorphically multiplies the plaintext by integer k:
// E(a)^k = E(k·a mod n^s). Negative k uses the modular inverse of the
// ciphertext (always a unit).
func (pk *PublicKey) ScalarMul(c, k *big.Int) (*big.Int, error) {
	if err := pk.checkCiphertext(c); err != nil {
		return nil, err
	}
	kk := getInt()
	kk.Mod(k, pk.ns) // exponent arithmetic is mod n^s on plaintexts
	out := new(big.Int).Exp(c, kk, pk.ns1)
	putInt(kk)
	return out, nil
}

// Sub homomorphically subtracts: E(a)·E(b)^{-1} = E(a-b mod n^s).
func (pk *PublicKey) Sub(c1, c2 *big.Int) (*big.Int, error) {
	if err := pk.checkCiphertext(c1); err != nil {
		return nil, err
	}
	if err := pk.checkCiphertext(c2); err != nil {
		return nil, err
	}
	inv := new(big.Int).ModInverse(c2, pk.ns1)
	if inv == nil {
		return nil, fmt.Errorf("%w: not a unit", ErrInvalidCiphertext)
	}
	out := inv.Mul(c1, inv)
	return out.Mod(out, pk.ns1), nil
}

// Rerandomize refreshes a ciphertext's randomness without changing the
// plaintext: c · r^{n^s} mod n^{s+1}. Used by gossip exchanges to prevent
// ciphertext-equality tracing.
func (pk *PublicKey) Rerandomize(rnd io.Reader, c *big.Int) (*big.Int, error) {
	if err := pk.checkCiphertext(c); err != nil {
		return nil, err
	}
	r, err := pk.randomUnit(rnd)
	if err != nil {
		return nil, err
	}
	rn := new(big.Int).Exp(r, pk.ns, pk.ns1)
	out := rn.Mul(c, rn)
	return out.Mod(out, pk.ns1), nil
}

// checkCiphertext validates that c lies in the ciphertext ring.
func (pk *PublicKey) checkCiphertext(c *big.Int) error {
	if c == nil || c.Sign() <= 0 || c.Cmp(pk.ns1) >= 0 {
		return ErrInvalidCiphertext
	}
	return nil
}

// randomUnit draws a uniformly random element of Z*_n.
func (pk *PublicKey) randomUnit(rnd io.Reader) (*big.Int, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	for i := 0; i < 128; i++ {
		r, err := rand.Int(rnd, pk.N)
		if err != nil {
			return nil, fmt.Errorf("damgardjurik: randomness: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			return r, nil
		}
	}
	return nil, errors.New("damgardjurik: could not sample a unit mod n")
}

// powOnePlusN computes (1+n)^m mod n^{s+1} via the binomial expansion
// (1+n)^m = Σ_{k=0}^{s} C(m,k)·n^k mod n^{s+1}, which is much faster than
// modular exponentiation because all higher terms vanish. The returned
// value is always fresh; loop temporaries come from the scratch pool.
func (pk *PublicKey) powOnePlusN(m *big.Int) *big.Int {
	out := big.NewInt(1)
	if m.Sign() == 0 {
		return out
	}
	if pk.S == 1 {
		// Paillier (s=1, the default degree): the expansion collapses to
		// 1 + m·n mod n², one pooled product instead of the general
		// binomial loop with its factorial inverses.
		term := getInt()
		term.Mul(m, pk.N)
		term.Add(term, one)
		out.Mod(term, pk.ns1)
		putInt(term)
		return out
	}
	// term_k = C(m,k)·n^k mod n^{s+1}, computed incrementally:
	// C(m,k) = C(m,k-1)·(m-k+1)/k.
	num := getInt().SetInt64(1)  // running product m(m-1)...(m-k+1)
	nk := getInt().SetInt64(1)   // n^k
	fact := getInt().SetInt64(1) // k!
	tmp := getInt()
	term := getInt()
	invFact := getInt()
	for k := 1; k <= pk.S; k++ {
		tmp.SetInt64(int64(k - 1))
		tmp.Sub(m, tmp)
		num.Mul(num, tmp)
		num.Mod(num, pk.ns1)
		nk.Mul(nk, pk.N)
		fact.MulRange(1, int64(k))
		if invFact.ModInverse(fact, pk.ns1) == nil {
			// Unreachable for k ≤ s < the prime factors of n; guarded so
			// a misuse cannot silently corrupt the expansion.
			panic("damgardjurik: k! not invertible mod n^{s+1}")
		}
		term.Mul(num, invFact)
		term.Mod(term, pk.ns1)
		term.Mul(term, nk)
		term.Mod(term, pk.ns1)
		out.Add(out, term)
		out.Mod(out, pk.ns1)
	}
	putInt(num)
	putInt(nk)
	putInt(fact)
	putInt(tmp)
	putInt(term)
	putInt(invFact)
	return out
}

// dLog recovers i from a = (1+n)^i mod n^{s+1}, 0 <= i < n^s, using the
// recursive extraction algorithm of Damgård–Jurik (proof of Theorem 1).
func (pk *PublicKey) dLog(a *big.Int) (*big.Int, error) {
	n := pk.N
	i := new(big.Int)
	njs := make([]*big.Int, pk.S+2) // njs[j] = n^j
	njs[0] = big.NewInt(1)
	for j := 1; j <= pk.S+1; j++ {
		njs[j] = new(big.Int).Mul(njs[j-1], n)
	}
	// Precompute inverse factorials mod n^s (valid mod any n^j, j<=s).
	invFact := make([]*big.Int, pk.S+1)
	fact := big.NewInt(1)
	for k := 2; k <= pk.S; k++ {
		fact.Mul(fact, big.NewInt(int64(k)))
		inv := new(big.Int).ModInverse(fact, pk.ns)
		if inv == nil {
			return nil, fmt.Errorf("damgardjurik: %d! not invertible mod n^s", k)
		}
		invFact[k] = inv
	}
	t1 := new(big.Int)
	t2 := new(big.Int)
	tmp := new(big.Int)
	for j := 1; j <= pk.S; j++ {
		// t1 = L(a mod n^{j+1}) = ((a mod n^{j+1}) - 1)/n
		t1.Mod(a, njs[j+1])
		t1.Sub(t1, one)
		if new(big.Int).Mod(t1, n).Sign() != 0 {
			return nil, fmt.Errorf("%w: not a power of (1+n)", ErrInvalidCiphertext)
		}
		t1.Div(t1, n)
		t2.Set(i)
		for k := 2; k <= j; k++ {
			i.Sub(i, one)
			t2.Mul(t2, i)
			t2.Mod(t2, njs[j])
			// t1 -= t2 * n^{k-1} / k!   (mod n^j)
			tmp.Mul(t2, njs[k-1])
			tmp.Mod(tmp, njs[j])
			tmp.Mul(tmp, invFact[k])
			tmp.Mod(tmp, njs[j])
			t1.Sub(t1, tmp)
			t1.Mod(t1, njs[j])
		}
		i.Set(t1)
	}
	return i, nil
}

// pow computes base^exp for small non-negative integer exponents.
func pow(base *big.Int, exp int) *big.Int {
	out := big.NewInt(1)
	for i := 0; i < exp; i++ {
		out.Mul(out, base)
	}
	return out
}
