package damgardjurik

import (
	"fmt"
	"math/big"
)

// Pregenerated safe primes for benchmark and demonstration keys. The demo
// paper itself relies on crypto cost figures "performed beforehand"
// (Sec. III.B); these fixtures play the same role: they let the cost
// experiments instantiate 512/1024/2048-bit threshold keys instantly
// instead of spending minutes in safe-prime search. They were produced by
// this package's own SafePrime and re-verified by isSafePrime on load.
//
// SECURITY: fixtures are PUBLIC values. Never use them outside tests,
// benchmarks and demos.
var fixturePrimes = map[int][2]string{
	// modulus bits -> decimal safe primes of bits/2 each
	64:  {"3624965327", "3775143767"},
	96:  {"273041997193319", "220086009798947"},
	128: {"17598298396088497859", "14570696182576194239"},
	256: {
		"309470572217147385533377749378692813267",
		"281702636440544938540878552928668758447",
	},
	512: {
		"103765872005689763686402689321443800380167778653154969902026669130881340868467",
		"95393116781933583393108932488254483720564613189396670645194608740875441531403",
	},
	1024: {
		"12235845168852598720828893958093910417894860986405077309771730889461236254127657438241431821083225555720552174532392601462206768618164348816294036572740107",
		"11890217182897054784482884839686829096791486125557386488340252611416037809462380050480490465220043130553836275194700592571923241391858936679118765993744339",
	},
	2048: {
		"173954906076756479252623422942554838336641890330856710597257983585974916272786167205186496522824422704708586741767341987845415985848658787595382147435531146844153208466185907437265643001545487817634764991802039463574454140860455133402163174772540707646517033480326197642874354956794472599382267080410656282159",
		"177275656679165577084181834489730181876705722551916717191959007593922351354295678272375230396194382019949602928398592977582567730601848145731842093663889897517672540275422302973433151437365018531946661374758218009541569855648797249028487897537090726818627197102748309364937083224673464259758266911449888920627",
	},
}

// FixtureModulusBits lists the modulus sizes with available fixtures, in
// ascending order.
func FixtureModulusBits() []int {
	return []int{64, 96, 128, 256, 512, 1024, 2048}
}

// FixturePrimes returns the pregenerated safe-prime pair for the given
// modulus bit length. For demos/benchmarks only.
func FixturePrimes(modulusBits int) (p, q *big.Int, err error) {
	pair, ok := fixturePrimes[modulusBits]
	if !ok {
		return nil, nil, fmt.Errorf("damgardjurik: no fixture for %d-bit modulus (have %v)", modulusBits, FixtureModulusBits())
	}
	p, ok1 := new(big.Int).SetString(pair[0], 10)
	q, ok2 := new(big.Int).SetString(pair[1], 10)
	if !ok1 || !ok2 {
		return nil, nil, fmt.Errorf("damgardjurik: corrupt fixture for %d bits", modulusBits)
	}
	return p, q, nil
}

// FixtureThresholdKey deals a threshold key over the fixture primes. The
// polynomial coefficients still come from rnd (crypto/rand if nil), so
// only the modulus is fixed. For demos/benchmarks only.
func FixtureThresholdKey(modulusBits, s, parties, threshold int) (*ThresholdKey, []KeyShare, error) {
	p, q, err := FixturePrimes(modulusBits)
	if err != nil {
		return nil, nil, err
	}
	return NewThresholdKeyFromPrimes(nil, p, q, s, parties, threshold)
}

// FixturePrivateKey assembles a non-threshold key over the fixture
// primes. For demos/benchmarks only.
func FixturePrivateKey(modulusBits, s int) (*PrivateKey, error) {
	p, q, err := FixturePrimes(modulusBits)
	if err != nil {
		return nil, err
	}
	return NewPrivateKeyFromPrimes(p, q, s)
}
