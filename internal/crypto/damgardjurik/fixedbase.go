package damgardjurik

import (
	"math/big"
	"sync"
)

// fixedBaseTable implements fixed-base windowed exponentiation
// (Brickell–Gordon–McCurley–Wilson; Menezes et al., Handbook of Applied
// Cryptography §14.6.3): for a base g that is known in advance, precompute
//
//	rows[i][j] = g^(j · 2^(i·w)) mod m,   0 <= j < 2^w,
//
// so that g^e for e = Σ e_i·2^(i·w) (the base-2^w digits of e) is the
// product Π rows[i][e_i] — one modular multiplication per non-zero digit
// and zero squarings, versus ~1.5 squarings/multiplications per exponent
// bit for the generic square-and-multiply in big.Int.Exp.
//
// The table is immutable after construction and safe for concurrent use;
// per-call scratch accumulators come from a sync.Pool so parallel shard
// workers do not contend on allocations.
type fixedBaseTable struct {
	mod     *big.Int
	window  uint
	maxBits int
	rows    [][]*big.Int

	scratch sync.Pool // *big.Int accumulators, reused across Exp calls
}

// fixedBaseWindow is the digit width w. 2^w table entries per row; w=6
// keeps the table around a few MB at 2048-bit moduli while cutting the
// per-exponentiation multiplication count to ceil(bits/6).
const fixedBaseWindow = 6

// newFixedBaseTable precomputes the windowed table for base^e mod mod,
// for exponents of up to maxBits bits.
func newFixedBaseTable(base, mod *big.Int, maxBits int) *fixedBaseTable {
	w := uint(fixedBaseWindow)
	numRows := (maxBits + fixedBaseWindow - 1) / fixedBaseWindow
	if numRows < 1 {
		numRows = 1
	}
	t := &fixedBaseTable{
		mod:     new(big.Int).Set(mod),
		window:  w,
		maxBits: numRows * fixedBaseWindow,
		rows:    make([][]*big.Int, numRows),
	}
	t.scratch.New = func() interface{} { return new(big.Int) }
	entries := 1 << w
	rowBase := new(big.Int).Mod(base, mod) // g^(2^(i·w)) for the current row
	for i := 0; i < numRows; i++ {
		row := make([]*big.Int, entries)
		row[0] = one
		for j := 1; j < entries; j++ {
			row[j] = new(big.Int).Mul(row[j-1], rowBase)
			row[j].Mod(row[j], mod)
		}
		t.rows[i] = row
		if i < numRows-1 {
			next := new(big.Int).Mul(row[entries-1], rowBase)
			rowBase = next.Mod(next, mod)
		}
	}
	return t
}

// Exp returns base^e mod mod using the precomputed table. Exponents wider
// than the table fall back to big.Int.Exp (correct, just slow); negative
// exponents are not supported and return nil.
func (t *fixedBaseTable) Exp(e *big.Int) *big.Int {
	if e.Sign() < 0 {
		return nil
	}
	if e.BitLen() > t.maxBits {
		return new(big.Int).Exp(t.rows[0][1], e, t.mod)
	}
	acc := t.scratch.Get().(*big.Int)
	defer t.scratch.Put(acc)
	acc.SetInt64(1)
	mask := uint((1 << t.window) - 1)
	words := e.Bits()
	bits := e.BitLen()
	for i, off := 0, 0; off < bits; i, off = i+1, off+fixedBaseWindow {
		digit := extractWindow(words, uint(off), fixedBaseWindow, mask)
		if digit == 0 {
			continue
		}
		acc.Mul(acc, t.rows[i][digit])
		acc.Mod(acc, t.mod)
	}
	return new(big.Int).Set(acc)
}

// extractWindow reads the w-bit digit (mask = 2^w − 1) of the
// little-endian word slice starting at bit offset off.
func extractWindow(words []big.Word, off, w, mask uint) uint {
	const wordBits = uint(32 << (^big.Word(0) >> 63)) // 32 or 64
	wi := off / wordBits
	if wi >= uint(len(words)) {
		return 0
	}
	shift := off % wordBits
	d := uint(words[wi] >> shift)
	if shift+w > wordBits && wi+1 < uint(len(words)) {
		d |= uint(words[wi+1]) << (wordBits - shift)
	}
	return d & mask
}
