package damgardjurik

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"
	"strconv"
	"sync"
)

// The threshold variant follows Damgård–Jurik (PKC 2001, Sec. 4.1), which
// adapts Shoup's threshold RSA technique:
//
//   - n = p·q with p = 2p'+1, q = 2q'+1 safe primes, m' = p'·q';
//   - the decryption exponent d satisfies d ≡ 0 mod m' and d ≡ 1 mod n^s;
//   - d is Shamir-shared with a degree-(w-1) polynomial over Z_{n^s·m'};
//     party i (1-based) holds s_i = f(i);
//   - a partial decryption of c by party i is c_i = c^{2Δ·s_i} mod n^{s+1},
//     with Δ = l! (l = number of parties);
//   - any w partials combine to c' = Π c_i^{2·λ_{0,i}} = c^{4Δ²·d} =
//     (1+n)^{4Δ²·m}, from which m is extracted and rescaled by
//     (4Δ²)^{-1} mod n^s.
//
// In Chiaroscuro this is the "collaborative decryption performed by any
// sufficiently large subset of participants" (demo paper, Sec. II.A).

// Threshold-specific errors.
var (
	ErrNotEnoughShares = errors.New("damgardjurik: not enough partial decryptions")
	ErrDuplicateShare  = errors.New("damgardjurik: duplicate partial decryption index")
	ErrShareOutOfRange = errors.New("damgardjurik: share index out of range")
	ErrCombineMismatch = errors.New("damgardjurik: partial decryptions do not combine to a plaintext")
)

// ThresholdKey is the public material of a threshold deployment. Every
// participant holds a copy; it contains no secrets — except that keys
// dealt by NewThresholdKeyFromPrimes additionally carry the dealer-side
// CRT acceleration context (crt.go), which embeds the factorization and
// is deliberately dropped by a key rebuilt from transported public
// parameters.
type ThresholdKey struct {
	PublicKey
	Parties   int // l: total number of key-share holders
	Threshold int // w: partials needed to decrypt

	delta      *big.Int // Δ = l!
	scale      *big.Int // σ: public scale of the shared secret (1 for dealt keys)
	invCombine *big.Int // (4Δ²σ)^{-1} mod n^s

	crt *crtContext // dealer-side fast path; nil on share-holder copies

	lagMu    sync.Mutex
	lagCache map[string][]*big.Int // combine-subset -> Lagrange coefficients

	ctxMu    sync.Mutex
	ctxCache map[string]*CombineCtx // combine-subset -> cached combine plan
	ctxHits  int64
}

// KeyShare is the secret share of one party. Index is 1-based.
//
// Dealt shares are residues in [0, n^s·m'). DKG-derived shares
// (internal/crypto/dkg) are unreduced — and after a reshare possibly
// negative — integers: a share holder without the factorization cannot
// reduce mod n^s·m'. Partial decryption is invariant to shifting a
// share by any multiple of the ciphertext group order, and the exponent
// 2Δ·s_i makes every c^{2Δ·s_i} land in the squares, so both kinds of
// share combine to bit-identical plaintexts.
type KeyShare struct {
	Index int
	Value *big.Int
}

// PartialDecryption is one party's contribution to a decryption.
type PartialDecryption struct {
	Index int
	Value *big.Int
}

// GenerateThresholdKey creates a threshold deployment from scratch:
// safe-prime modulus of the given bit length, degree s, l parties,
// threshold w. Safe-prime search is expensive at large bit sizes; see
// Fixture for pregenerated demo moduli.
func GenerateThresholdKey(rnd io.Reader, bits, s, parties, threshold int) (*ThresholdKey, []KeyShare, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	if bits < 16 {
		return nil, nil, fmt.Errorf("%w: modulus of %d bits is too small", ErrKeyGeneration, bits)
	}
	for attempt := 0; attempt < 64; attempt++ {
		p, err := SafePrime(rnd, bits/2)
		if err != nil {
			return nil, nil, err
		}
		q, err := SafePrime(rnd, bits-bits/2)
		if err != nil {
			return nil, nil, err
		}
		tk, shares, err := NewThresholdKeyFromPrimes(rnd, p, q, s, parties, threshold)
		if err != nil {
			continue
		}
		return tk, shares, nil
	}
	return nil, nil, fmt.Errorf("%w: no suitable safe primes after 64 attempts", ErrKeyGeneration)
}

// NewThresholdKeyFromPrimes performs the dealer's work for the given safe
// primes: derives d, shares it, and returns the public threshold key plus
// the l secret shares. rnd supplies the polynomial coefficients.
func NewThresholdKeyFromPrimes(rnd io.Reader, p, q *big.Int, s, parties, threshold int) (*ThresholdKey, []KeyShare, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	if parties < 1 || threshold < 1 || threshold > parties {
		return nil, nil, fmt.Errorf("%w: invalid (parties=%d, threshold=%d)", ErrKeyGeneration, parties, threshold)
	}
	if !isSafePrime(p) || !isSafePrime(q) || p.Cmp(q) == 0 {
		return nil, nil, fmt.Errorf("%w: arguments must be distinct safe primes", ErrKeyGeneration)
	}
	n := new(big.Int).Mul(p, q)
	pk, err := newPublicKey(n, s)
	if err != nil {
		return nil, nil, err
	}
	pPrime := new(big.Int).Rsh(new(big.Int).Sub(p, one), 1)
	qPrime := new(big.Int).Rsh(new(big.Int).Sub(q, one), 1)
	mPrime := new(big.Int).Mul(pPrime, qPrime)
	if new(big.Int).GCD(nil, nil, pk.ns, mPrime).Cmp(one) != 0 {
		return nil, nil, fmt.Errorf("%w: gcd(n^s, m') != 1", ErrKeyGeneration)
	}
	// d ≡ 0 mod m', d ≡ 1 mod n^s: d = m'·(m'^{-1} mod n^s).
	invM := new(big.Int).ModInverse(mPrime, pk.ns)
	if invM == nil {
		return nil, nil, fmt.Errorf("%w: m' not invertible mod n^s", ErrKeyGeneration)
	}
	d := new(big.Int).Mul(mPrime, invM)

	// Shamir-share d over Z_{n^s·m'} with a degree-(w-1) polynomial.
	shareMod := new(big.Int).Mul(pk.ns, mPrime)
	coeffs := make([]*big.Int, threshold)
	coeffs[0] = d
	for i := 1; i < threshold; i++ {
		c, err := rand.Int(rnd, shareMod)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrKeyGeneration, err)
		}
		coeffs[i] = c
	}
	shares := make([]KeyShare, parties)
	x := new(big.Int)
	for i := 1; i <= parties; i++ {
		x.SetInt64(int64(i))
		shares[i-1] = KeyShare{Index: i, Value: evalPoly(coeffs, x, shareMod)}
	}

	tk := &ThresholdKey{
		PublicKey: *pk,
		Parties:   parties,
		Threshold: threshold,
	}
	if crt, err := newCRTContext(p, q, s); err == nil {
		tk.crt = crt
	}
	tk.delta = factorial(parties)
	tk.scale = big.NewInt(1)
	if err := tk.initCombine(); err != nil {
		return nil, nil, err
	}
	return tk, shares, nil
}

// NewThresholdKeyPublic rebuilds a share holder's threshold key from
// transported public parameters alone: modulus, degree, deployment
// shape, and the public scale σ of the shared secret. This is the
// constructor the DKG ceremony (internal/crypto/dkg) finishes with —
// no factorization, hence crt == nil and every partial decryption
// takes the naive route.
//
// scale is 1 for a fresh DKG (the dealt constant terms sum to d
// exactly); each reshare multiplies it by the Δ of the deployment
// being reshared, because integer Lagrange recombination of the old
// shares yields Δ_old·d rather than d. The scale is folded into the
// combine rescaling, so decryptions stay bit-identical to a dealer key.
func NewThresholdKeyPublic(n *big.Int, s, parties, threshold int, scale *big.Int) (*ThresholdKey, error) {
	if parties < 1 || threshold < 1 || threshold > parties {
		return nil, fmt.Errorf("%w: invalid (parties=%d, threshold=%d)", ErrKeyGeneration, parties, threshold)
	}
	if scale == nil || scale.Sign() <= 0 {
		return nil, fmt.Errorf("%w: scale must be a positive integer", ErrKeyGeneration)
	}
	pk, err := newPublicKey(n, s)
	if err != nil {
		return nil, err
	}
	tk := &ThresholdKey{
		PublicKey: *pk,
		Parties:   parties,
		Threshold: threshold,
	}
	tk.delta = factorial(parties)
	tk.scale = new(big.Int).Set(scale)
	if err := tk.initCombine(); err != nil {
		return nil, err
	}
	return tk, nil
}

// initCombine derives invCombine = (4Δ²σ)^{-1} mod n^s from the key's
// delta and scale.
func (tk *ThresholdKey) initCombine() error {
	comb := new(big.Int).Mul(tk.delta, tk.delta)
	comb.Mul(comb, big.NewInt(4))
	comb.Mul(comb, tk.scale)
	tk.invCombine = new(big.Int).ModInverse(comb, tk.ns)
	if tk.invCombine == nil {
		return fmt.Errorf("%w: 4Δ²σ not invertible mod n^s", ErrKeyGeneration)
	}
	return nil
}

// PartialDecrypt computes party share.Index's contribution for ciphertext
// c: c^{2Δ·s_i} mod n^{s+1}. Keys dealt from known primes route the
// exponentiation through the CRT fast path (crt.go) — bit-identical to
// the naive route, ~4× faster at 1024-bit moduli; keys rebuilt from
// public parameters fall back to PartialDecryptNaive.
func (tk *ThresholdKey) PartialDecrypt(share KeyShare, c *big.Int) (PartialDecryption, error) {
	if tk.crt == nil {
		return tk.PartialDecryptNaive(share, c)
	}
	if share.Index < 1 || share.Index > tk.Parties {
		return PartialDecryption{}, ErrShareOutOfRange
	}
	if err := tk.checkCiphertext(c); err != nil {
		return PartialDecryption{}, err
	}
	e := new(big.Int).Mul(two, tk.delta)
	e.Mul(e, share.Value)
	return PartialDecryption{Index: share.Index, Value: tk.crt.exp(c, e)}, nil
}

// PartialDecryptNaive is the retained reference implementation of
// PartialDecrypt: one full-width exponentiation modulo n^{s+1}. It is
// the route share holders without the factorization take, the baseline
// of the fast-path benchmarks, and the oracle of the bit-identity
// property tests.
//
// Negative shares (resharing applies signed Lagrange weights to old
// shares) are handled explicitly — invert c mod n^{s+1}, exponentiate
// by |2Δ·s_i| — rather than through big.Int.Exp's negative-exponent
// path, so the route stays deterministic and mirrors what the CRT path
// would have to do.
func (tk *ThresholdKey) PartialDecryptNaive(share KeyShare, c *big.Int) (PartialDecryption, error) {
	if share.Index < 1 || share.Index > tk.Parties {
		return PartialDecryption{}, ErrShareOutOfRange
	}
	if err := tk.checkCiphertext(c); err != nil {
		return PartialDecryption{}, err
	}
	e := new(big.Int).Mul(two, tk.delta)
	e.Mul(e, share.Value)
	base := c
	if e.Sign() < 0 {
		base = new(big.Int).ModInverse(c, tk.ns1)
		if base == nil {
			return PartialDecryption{}, fmt.Errorf("%w: not a unit mod n^{s+1}", ErrInvalidCiphertext)
		}
		e.Neg(e)
	}
	v := new(big.Int).Exp(base, e, tk.ns1)
	return PartialDecryption{Index: share.Index, Value: v}, nil
}

// Combine merges at least Threshold distinct partial decryptions of the
// same ciphertext into the plaintext. Extra partials beyond the threshold
// are ignored (the lowest indices are used, for determinism).
//
// This is the batched fast path: the w exponentiations
// Π_i v_i^{2·λ_{0,i}} are fused into one simultaneous multi-
// exponentiation (multiexp.go) that walks a single squaring chain, and
// the integer Lagrange coefficients — which depend only on the index
// subset, not the ciphertext — are cached across calls, because the
// protocol decrypts whole centroid vectors against the same quorum. The
// result is bit-identical to CombineNaive.
func (tk *ThresholdKey) Combine(parts []PartialDecryption) (*big.Int, error) {
	use, err := tk.selectPartials(parts)
	if err != nil {
		return nil, err
	}
	indices := make([]int, len(use))
	for i, p := range use {
		indices[i] = p.Index
	}
	ctx, err := tk.CombineContext(indices)
	if err != nil {
		return nil, err
	}
	return tk.CombineWith(ctx, use)
}

// CombineCtx is the cached, responder-set-keyed half of a Combine: the
// integer Lagrange coefficients, their sign-split multiexp exponents,
// and the precomputed window-digit schedule of the batched
// multi-exponentiation. All of it depends only on the index subset, not
// the ciphertext, so one context serves every ciphertext a quorum opens
// — and, through the key's cache, every participant decrypting against
// the same quorum. A CombineCtx is immutable after construction and
// safe for concurrent use.
type CombineCtx struct {
	indices []int  // ascending distinct share indices, len == Threshold
	invert  []bool // partial i must be inverted mod n^{s+1} (negative λ)
	plan    *multiExpPlan
}

// CombineContext returns the combine plan for the given responder
// subset — exactly Threshold ascending distinct share indices — memoized
// on the key like the Lagrange cache it builds on.
func (tk *ThresholdKey) CombineContext(indices []int) (*CombineCtx, error) {
	if len(indices) != tk.Threshold {
		return nil, fmt.Errorf("%w: have %d indices, need exactly %d", ErrNotEnoughShares, len(indices), tk.Threshold)
	}
	prev := 0
	for _, id := range indices {
		if id < 1 || id > tk.Parties {
			return nil, fmt.Errorf("%w: index %d", ErrShareOutOfRange, id)
		}
		if id <= prev {
			return nil, fmt.Errorf("%w: index %d (indices must be ascending and distinct)", ErrDuplicateShare, id)
		}
		prev = id
	}
	key := make([]byte, 0, 4*len(indices))
	for _, id := range indices {
		key = strconv.AppendInt(key, int64(id), 10)
		key = append(key, ',')
	}
	tk.ctxMu.Lock()
	cached, ok := tk.ctxCache[string(key)]
	if ok {
		tk.ctxHits++
	}
	tk.ctxMu.Unlock()
	if ok {
		return cached, nil
	}
	lams, err := tk.lagrangeFor(indices)
	if err != nil {
		return nil, err
	}
	ctx := &CombineCtx{
		indices: append([]int(nil), indices...),
		invert:  make([]bool, len(indices)),
	}
	exps := make([]*big.Int, len(indices))
	for i, lam := range lams {
		e := new(big.Int).Mul(two, lam)
		if e.Sign() < 0 {
			ctx.invert[i] = true
			e.Neg(e)
		}
		exps[i] = e
	}
	ctx.plan = newMultiExpPlan(exps)
	tk.ctxMu.Lock()
	if tk.ctxCache == nil {
		tk.ctxCache = make(map[string]*CombineCtx)
	}
	tk.ctxCache[string(key)] = ctx
	tk.ctxMu.Unlock()
	return ctx, nil
}

// CombineContextHits reports how many CombineContext lookups were served
// from the cache — the figure behind OpCounts.CombineCtxHits.
func (tk *ThresholdKey) CombineContextHits() int64 {
	tk.ctxMu.Lock()
	defer tk.ctxMu.Unlock()
	return tk.ctxHits
}

// CombineWith opens one ciphertext from partial decryptions aligned with
// ctx: parts[i].Index must equal the context's i-th index. Bit-identical
// to Combine (and CombineNaive) over the same responder subset.
func (tk *ThresholdKey) CombineWith(ctx *CombineCtx, parts []PartialDecryption) (*big.Int, error) {
	if len(parts) != len(ctx.indices) {
		return nil, fmt.Errorf("%w: have %d partials, context wants %d", ErrNotEnoughShares, len(parts), len(ctx.indices))
	}
	bases := make([]*big.Int, len(parts))
	for i, p := range parts {
		if p.Index != ctx.indices[i] {
			return nil, fmt.Errorf("%w: partial %d at position %d, context wants %d", ErrShareOutOfRange, p.Index, i, ctx.indices[i])
		}
		if ctx.invert[i] {
			inv := new(big.Int).ModInverse(p.Value, tk.ns1)
			if inv == nil {
				return nil, fmt.Errorf("%w: partial %d not a unit", ErrCombineMismatch, p.Index)
			}
			bases[i] = inv
		} else {
			bases[i] = p.Value
		}
	}
	acc := ctx.plan.exec(bases, tk.ns1)
	return tk.finishCombine(acc)
}

// CombineNaive is the retained reference implementation of Combine: one
// independent full-width exponentiation per partial, Lagrange
// coefficients recomputed every call. Kept as the benchmark baseline and
// the oracle of the bit-identity property tests.
func (tk *ThresholdKey) CombineNaive(parts []PartialDecryption) (*big.Int, error) {
	use, err := tk.selectPartials(parts)
	if err != nil {
		return nil, err
	}
	// c' = Π_i use[i].Value ^ (2·λ_{0,i}) mod n^{s+1}, with integer
	// Lagrange coefficients λ_{0,i} = Δ·Π_{j≠i} j/(j-i).
	indices := make([]int, len(use))
	for i, p := range use {
		indices[i] = p.Index
	}
	acc := big.NewInt(1)
	for i, p := range use {
		lam, err := lagrangeAtZero(tk.delta, indices, i)
		if err != nil {
			return nil, err
		}
		e := new(big.Int).Mul(two, lam)
		base := p.Value
		if e.Sign() < 0 {
			base = new(big.Int).ModInverse(p.Value, tk.ns1)
			if base == nil {
				return nil, fmt.Errorf("%w: partial %d not a unit", ErrCombineMismatch, p.Index)
			}
			e.Neg(e)
		}
		t := new(big.Int).Exp(base, e, tk.ns1)
		acc.Mul(acc, t)
		acc.Mod(acc, tk.ns1)
	}
	return tk.finishCombine(acc)
}

// selectPartials validates parts and picks the Threshold lowest distinct
// indices (the deterministic subset both Combine variants share).
func (tk *ThresholdKey) selectPartials(parts []PartialDecryption) ([]PartialDecryption, error) {
	if len(parts) < tk.Threshold {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrNotEnoughShares, len(parts), tk.Threshold)
	}
	sorted := make([]PartialDecryption, len(parts))
	copy(sorted, parts)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Index < sorted[b].Index })
	seen := make(map[int]bool, len(sorted))
	use := make([]PartialDecryption, 0, tk.Threshold)
	for _, p := range sorted {
		if p.Index < 1 || p.Index > tk.Parties {
			return nil, fmt.Errorf("%w: index %d", ErrShareOutOfRange, p.Index)
		}
		if seen[p.Index] {
			return nil, fmt.Errorf("%w: index %d", ErrDuplicateShare, p.Index)
		}
		seen[p.Index] = true
		use = append(use, p)
		if len(use) == tk.Threshold {
			break
		}
	}
	if len(use) < tk.Threshold {
		return nil, fmt.Errorf("%w: only %d distinct", ErrNotEnoughShares, len(use))
	}
	return use, nil
}

// finishCombine extracts m from acc = (1+n)^{4Δ²·m} and rescales.
func (tk *ThresholdKey) finishCombine(acc *big.Int) (*big.Int, error) {
	val, err := tk.dLog(acc)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCombineMismatch, err)
	}
	val.Mul(val, tk.invCombine)
	return val.Mod(val, tk.ns), nil
}

// lagrangeFor returns the integer Lagrange coefficients λ_{0,i} for the
// given (ascending, distinct) index subset, memoized per subset.
func (tk *ThresholdKey) lagrangeFor(indices []int) ([]*big.Int, error) {
	key := make([]byte, 0, 4*len(indices))
	for _, id := range indices {
		key = strconv.AppendInt(key, int64(id), 10)
		key = append(key, ',')
	}
	tk.lagMu.Lock()
	cached, ok := tk.lagCache[string(key)]
	tk.lagMu.Unlock()
	if ok {
		return cached, nil
	}
	lams := make([]*big.Int, len(indices))
	for i := range indices {
		lam, err := lagrangeAtZero(tk.delta, indices, i)
		if err != nil {
			return nil, err
		}
		lams[i] = lam
	}
	tk.lagMu.Lock()
	if tk.lagCache == nil {
		tk.lagCache = make(map[string][]*big.Int)
	}
	tk.lagCache[string(key)] = lams
	tk.lagMu.Unlock()
	return lams, nil
}

// Delta returns Δ = parties! (a fresh copy); exposed for diagnostics.
func (tk *ThresholdKey) Delta() *big.Int { return new(big.Int).Set(tk.delta) }

// Scale returns the public scale σ of the shared secret (a fresh
// copy): 1 for dealt and freshly DKG'd keys, multiplied by the old
// deployment's Δ at each reshare.
func (tk *ThresholdKey) Scale() *big.Int { return new(big.Int).Set(tk.scale) }

// lagrangeAtZero computes λ_{0,indices[i]} = Δ·Π_{j≠i} x_j/(x_j - x_i),
// guaranteed integral because Δ = l! absorbs every denominator.
func lagrangeAtZero(delta *big.Int, indices []int, i int) (*big.Int, error) {
	num := new(big.Int).Set(delta)
	den := big.NewInt(1)
	xi := int64(indices[i])
	for j, xj := range indices {
		if j == i {
			continue
		}
		num.Mul(num, big.NewInt(int64(xj)))
		den.Mul(den, big.NewInt(int64(xj)-xi))
	}
	q, r := new(big.Int).QuoRem(num, den, new(big.Int))
	if r.Sign() != 0 {
		return nil, fmt.Errorf("damgardjurik: non-integral Lagrange coefficient for indices %v", indices)
	}
	return q, nil
}

// evalPoly evaluates the polynomial with the given coefficients (constant
// term first) at x, mod m, via Horner's rule.
func evalPoly(coeffs []*big.Int, x, m *big.Int) *big.Int {
	out := new(big.Int)
	for i := len(coeffs) - 1; i >= 0; i-- {
		out.Mul(out, x)
		out.Add(out, coeffs[i])
		out.Mod(out, m)
	}
	return out
}

func factorial(n int) *big.Int {
	return new(big.Int).MulRange(1, int64(n))
}
