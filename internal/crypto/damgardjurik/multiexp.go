package damgardjurik

import "math/big"

// multiExpWindow is the per-base digit width for simultaneous
// exponentiation; 2^w − 1 precomputed odd-and-even powers per base.
const multiExpWindow = 4

// multiExp computes Π bases[i]^exps[i] mod m in one interleaved pass
// (Straus' algorithm, a.k.a. Shamir's trick generalized to k bases):
// the squaring chain — the dominant cost of square-and-multiply — is
// walked once for all bases together instead of once per base, so
// combining w partial decryptions costs ~|e| squarings + w·|e|/4
// multiplications instead of w·1.5·|e| operations.
//
// All exponents must be non-negative (Combine inverts negative-exponent
// bases before calling). The result is bit-identical to the sequential
// Π new(big.Int).Exp(...) product.
func multiExp(bases, exps []*big.Int, m *big.Int) *big.Int {
	if len(bases) == 0 {
		return big.NewInt(1)
	}
	if len(bases) == 1 {
		return new(big.Int).Exp(bases[0], exps[0], m)
	}
	// Per-base tables: tables[i][d] = bases[i]^d mod m, d in [1, 2^w).
	entries := 1 << multiExpWindow
	tables := make([][]*big.Int, len(bases))
	maxBits := 0
	for i, b := range bases {
		row := make([]*big.Int, entries)
		row[1] = new(big.Int).Mod(b, m)
		for d := 2; d < entries; d++ {
			row[d] = new(big.Int).Mul(row[d-1], row[1])
			row[d].Mod(row[d], m)
		}
		tables[i] = row
		if bl := exps[i].BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	numWindows := (maxBits + multiExpWindow - 1) / multiExpWindow
	mask := uint(entries - 1)
	acc := big.NewInt(1)
	started := false
	for wi := numWindows - 1; wi >= 0; wi-- {
		if started {
			for s := 0; s < multiExpWindow; s++ {
				acc.Mul(acc, acc)
				acc.Mod(acc, m)
			}
		}
		off := uint(wi * multiExpWindow)
		for i := range bases {
			d := extractWindow(exps[i].Bits(), off, multiExpWindow, mask)
			if d == 0 {
				continue
			}
			acc.Mul(acc, tables[i][d])
			acc.Mod(acc, m)
			started = true
		}
	}
	return acc
}

// multiExpPlan is the exponent-only half of a multiExp call, precomputed
// once and replayed against many base vectors: the per-base window
// digits, the window count, and the largest digit each base ever
// contributes (so the replay builds only the table entries it will
// read). The protocol opens whole centroid vectors against one quorum,
// whose Lagrange-derived exponents are fixed per responder set — the
// digit extraction and bit-length scans multiExp redoes per ciphertext
// are pure waste there.
//
// A plan's exec is bit-identical to multiExp(bases, exps, m) for the
// exponents the plan was built from: same table values, same squaring
// chain, same skip-leading-zero-windows start.
type multiExpPlan struct {
	exps       []*big.Int // the (non-negative) exponents, for the 0/1-base fallback
	digits     [][]uint8  // digits[i][wi]: base i's digit at window wi
	numWindows int
	maxDigit   []uint8 // highest digit base i contributes (table size needed)
}

// newMultiExpPlan extracts the window-digit schedule of the given
// non-negative exponents.
func newMultiExpPlan(exps []*big.Int) *multiExpPlan {
	pl := &multiExpPlan{exps: exps}
	maxBits := 0
	for _, e := range exps {
		if bl := e.BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	pl.numWindows = (maxBits + multiExpWindow - 1) / multiExpWindow
	mask := uint(1<<multiExpWindow - 1)
	pl.digits = make([][]uint8, len(exps))
	pl.maxDigit = make([]uint8, len(exps))
	for i, e := range exps {
		row := make([]uint8, pl.numWindows)
		words := e.Bits()
		for wi := 0; wi < pl.numWindows; wi++ {
			d := uint8(extractWindow(words, uint(wi*multiExpWindow), multiExpWindow, mask))
			row[wi] = d
			if d > pl.maxDigit[i] {
				pl.maxDigit[i] = d
			}
		}
		pl.digits[i] = row
	}
	return pl
}

// exec computes Π bases[i]^exps[i] mod m using the precomputed digit
// schedule. len(bases) must equal the plan's exponent count.
func (pl *multiExpPlan) exec(bases []*big.Int, m *big.Int) *big.Int {
	if len(bases) == 0 {
		return big.NewInt(1)
	}
	if len(bases) == 1 {
		return new(big.Int).Exp(bases[0], pl.exps[0], m)
	}
	// Per-base tables, truncated at the largest digit the schedule reads.
	tables := make([][]*big.Int, len(bases))
	for i, b := range bases {
		row := make([]*big.Int, int(pl.maxDigit[i])+1)
		if pl.maxDigit[i] >= 1 {
			row[1] = new(big.Int).Mod(b, m)
			for d := 2; d < len(row); d++ {
				row[d] = new(big.Int).Mul(row[d-1], row[1])
				row[d].Mod(row[d], m)
			}
		}
		tables[i] = row
	}
	acc := big.NewInt(1)
	started := false
	for wi := pl.numWindows - 1; wi >= 0; wi-- {
		if started {
			for s := 0; s < multiExpWindow; s++ {
				acc.Mul(acc, acc)
				acc.Mod(acc, m)
			}
		}
		for i := range bases {
			d := pl.digits[i][wi]
			if d == 0 {
				continue
			}
			acc.Mul(acc, tables[i][d])
			acc.Mod(acc, m)
			started = true
		}
	}
	return acc
}
