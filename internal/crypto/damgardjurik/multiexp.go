package damgardjurik

import "math/big"

// multiExpWindow is the per-base digit width for simultaneous
// exponentiation; 2^w − 1 precomputed odd-and-even powers per base.
const multiExpWindow = 4

// multiExp computes Π bases[i]^exps[i] mod m in one interleaved pass
// (Straus' algorithm, a.k.a. Shamir's trick generalized to k bases):
// the squaring chain — the dominant cost of square-and-multiply — is
// walked once for all bases together instead of once per base, so
// combining w partial decryptions costs ~|e| squarings + w·|e|/4
// multiplications instead of w·1.5·|e| operations.
//
// All exponents must be non-negative (Combine inverts negative-exponent
// bases before calling). The result is bit-identical to the sequential
// Π new(big.Int).Exp(...) product.
func multiExp(bases, exps []*big.Int, m *big.Int) *big.Int {
	if len(bases) == 0 {
		return big.NewInt(1)
	}
	if len(bases) == 1 {
		return new(big.Int).Exp(bases[0], exps[0], m)
	}
	// Per-base tables: tables[i][d] = bases[i]^d mod m, d in [1, 2^w).
	entries := 1 << multiExpWindow
	tables := make([][]*big.Int, len(bases))
	maxBits := 0
	for i, b := range bases {
		row := make([]*big.Int, entries)
		row[1] = new(big.Int).Mod(b, m)
		for d := 2; d < entries; d++ {
			row[d] = new(big.Int).Mul(row[d-1], row[1])
			row[d].Mod(row[d], m)
		}
		tables[i] = row
		if bl := exps[i].BitLen(); bl > maxBits {
			maxBits = bl
		}
	}
	numWindows := (maxBits + multiExpWindow - 1) / multiExpWindow
	mask := uint(entries - 1)
	acc := big.NewInt(1)
	started := false
	for wi := numWindows - 1; wi >= 0; wi-- {
		if started {
			for s := 0; s < multiExpWindow; s++ {
				acc.Mul(acc, acc)
				acc.Mod(acc, m)
			}
		}
		off := uint(wi * multiExpWindow)
		for i := range bases {
			d := extractWindow(exps[i].Bits(), off, multiExpWindow, mask)
			if d == 0 {
				continue
			}
			acc.Mul(acc, tables[i][d])
			acc.Mod(acc, m)
			started = true
		}
	}
	return acc
}
