package damgardjurik

import (
	"math/big"
	"sync"
)

// scratch.go pools the short-lived big.Int temporaries of the
// homomorphic hot path (Add products, exponent reductions, binomial
// terms). A packed protocol run performs millions of these operations;
// without pooling, every Add and Halve leaves one or two dead
// multi-limb integers behind and the garbage collector ends up
// dominating real-crypto wall-clock. The pool follows the same pattern
// as the fixed-base table's accumulator pool (fixedbase.go): values
// handed out retain their grown limb storage, so steady-state
// operations recycle warm buffers instead of allocating fresh ones.
//
// Discipline: pooled integers are strictly call-local — anything
// returned to a caller (ciphertexts, plaintexts, partials) is always a
// fresh big.Int, never a pooled one, because callers retain results
// indefinitely.

// intPool recycles big.Int temporaries across operations and
// goroutines (shard workers share it contention-free via sync.Pool's
// per-P caches).
var intPool = sync.Pool{New: func() any { return new(big.Int) }}

// getInt fetches a scratch integer (arbitrary prior value).
func getInt() *big.Int { return intPool.Get().(*big.Int) }

// putInt returns a scratch integer to the pool. The value is kept as-is
// (its limb storage is the point of recycling); callers must not retain
// the pointer after putting it.
func putInt(v *big.Int) { intPool.Put(v) }
