package damgardjurik

import (
	"errors"
	"math/big"
)

// crtContext accelerates exponentiations modulo n^{s+1} for holders of
// the factorization n = p·q (the single-holder key, and the trusted
// dealer of the threshold variant — in Chiaroscuro's simulation the
// dealer hands every simulated party its share, so the suite can carry
// the context). Two classic savings compose:
//
//  1. work modulo the half-size prime powers p^{s+1} and q^{s+1}
//     separately and recombine by Garner's CRT formula — modular
//     multiplication being superlinear in operand size, two half-size
//     exponentiations beat one full-size one by ~3–4×;
//  2. reduce the exponent modulo the group exponent λ(p^{s+1}) =
//     p^s·(p−1) (valid whenever the base is a unit mod p, i.e. always
//     for well-formed ciphertexts) — threshold exponents 2Δ·s_i are
//     ~|n^s·m'| bits, roughly (s+1)·|n| wide, so the reduction alone
//     halves the work again.
//
// The result is bit-identical to the direct computation (verified by
// TestCRTExpMatchesNaive); only the route differs.
//
// SECURITY: a crtContext embeds the factorization. It must never travel
// to simulated adversarial parties; see docs/CRYPTO.md ("dealer-side
// state").
type crtContext struct {
	p, q     *big.Int // the primes
	pS1, qS1 *big.Int // p^{s+1}, q^{s+1}
	lamP     *big.Int // λ(p^{s+1}) = p^s·(p−1)
	lamQ     *big.Int // λ(q^{s+1}) = q^s·(q−1)
	qS1Inv   *big.Int // (q^{s+1})^{-1} mod p^{s+1}, for Garner recombination
}

// newCRTContext derives the context for degree s from the primes.
func newCRTContext(p, q *big.Int, s int) (*crtContext, error) {
	if p == nil || q == nil || p.Cmp(q) == 0 {
		return nil, errors.New("damgardjurik: crt needs two distinct primes")
	}
	c := &crtContext{
		p:   new(big.Int).Set(p),
		q:   new(big.Int).Set(q),
		pS1: pow(p, s+1),
		qS1: pow(q, s+1),
	}
	pm1 := new(big.Int).Sub(p, one)
	qm1 := new(big.Int).Sub(q, one)
	c.lamP = new(big.Int).Mul(pow(p, s), pm1)
	c.lamQ = new(big.Int).Mul(pow(q, s), qm1)
	c.qS1Inv = new(big.Int).ModInverse(c.qS1, c.pS1)
	if c.qS1Inv == nil {
		return nil, errors.New("damgardjurik: q^{s+1} not invertible mod p^{s+1}")
	}
	return c, nil
}

// exp computes base^e mod n^{s+1} (e >= 0) through the CRT split.
func (c *crtContext) exp(base, e *big.Int) *big.Int {
	xp := c.halfExp(base, e, c.pS1, c.p, c.lamP)
	xq := c.halfExp(base, e, c.qS1, c.q, c.lamQ)
	// Garner: x = xq + q^{s+1} · ((xp − xq) · (q^{s+1})^{-1} mod p^{s+1}).
	t := new(big.Int).Sub(xp, xq)
	t.Mul(t, c.qS1Inv)
	t.Mod(t, c.pS1)
	t.Mul(t, c.qS1)
	return t.Add(t, xq)
}

// halfExp computes base^e mod prime^{s+1}, reducing the exponent by the
// group order when the base is a unit there (always, except for the
// negligible-probability ciphertexts sharing a factor with n).
func (c *crtContext) halfExp(base, e, primeS1, prime, lambda *big.Int) *big.Int {
	b := new(big.Int).Mod(base, primeS1)
	ee := e
	if new(big.Int).Mod(b, prime).Sign() != 0 {
		ee = new(big.Int).Mod(e, lambda)
	}
	return b.Exp(b, ee, primeS1)
}
