package damgardjurik

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func TestSafePrimeSmall(t *testing.T) {
	p, err := SafePrime(rand.Reader, 32)
	if err != nil {
		t.Fatal(err)
	}
	if p.BitLen() != 32 {
		t.Fatalf("bit length = %d, want 32", p.BitLen())
	}
	if !isSafePrime(p) {
		t.Fatalf("%v is not a safe prime", p)
	}
}

func TestSafePrimeRejectsTinyBits(t *testing.T) {
	if _, err := SafePrime(rand.Reader, 3); err == nil {
		t.Fatal("3-bit request should error")
	}
}

func TestIsSafePrime(t *testing.T) {
	cases := []struct {
		v    int64
		want bool
	}{
		{5, true},   // (5-1)/2 = 2 prime
		{7, true},   // 3 prime
		{11, true},  // 5 prime
		{13, false}, // 6 composite
		{23, true},  // 11 prime
		{29, false}, // 14 composite
		{4, false},  // composite
		{0, false},
	}
	for _, tc := range cases {
		if got := isSafePrime(big.NewInt(tc.v)); got != tc.want {
			t.Errorf("isSafePrime(%d) = %v, want %v", tc.v, got, tc.want)
		}
	}
	if isSafePrime(nil) {
		t.Error("isSafePrime(nil) = true")
	}
}

func TestFixturesAreSafePrimes(t *testing.T) {
	for _, bits := range FixtureModulusBits() {
		p, q, err := FixturePrimes(bits)
		if err != nil {
			t.Fatal(err)
		}
		if p.Cmp(q) == 0 {
			t.Errorf("%d-bit fixture primes are equal", bits)
		}
		wantBits := bits / 2
		if p.BitLen() != wantBits || q.BitLen() != wantBits {
			t.Errorf("%d-bit fixture: prime sizes %d/%d, want %d", bits, p.BitLen(), q.BitLen(), wantBits)
		}
		// Full safe-primality for small fixtures; probabilistic checks
		// are expensive at 1024 bits, still fast enough at <=512.
		if bits <= 512 {
			if !isSafePrime(p) || !isSafePrime(q) {
				t.Errorf("%d-bit fixture primes are not safe primes", bits)
			}
		}
	}
}

func TestFixtureUnknownSize(t *testing.T) {
	if _, _, err := FixturePrimes(333); err == nil {
		t.Fatal("unknown fixture size should error")
	}
}

func TestFixturePrivateKeyWorks(t *testing.T) {
	sk, err := FixturePrivateKey(96, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Validate(); err != nil {
		t.Fatal(err)
	}
	m := big.NewInt(808)
	c, err := sk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(m) != 0 {
		t.Fatalf("fixture key roundtrip = %v", got)
	}
}

func TestPassesSmallPrimeFilter(t *testing.T) {
	if passesSmallPrimeFilter(big.NewInt(3 * 1000003)) {
		t.Error("multiple of 3 passed the filter")
	}
	if !passesSmallPrimeFilter(big.NewInt(1000003)) {
		t.Error("prime rejected by the filter")
	}
	// The small primes themselves must pass (p == sp case).
	if !passesSmallPrimeFilter(big.NewInt(47)) {
		t.Error("47 rejected by the filter")
	}
}
