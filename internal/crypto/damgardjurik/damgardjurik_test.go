package damgardjurik

import (
	"crypto/rand"
	"errors"
	"math/big"
	mrand "math/rand"
	"testing"
	"testing/quick"
)

// testKey returns a small fixture-backed key for fast tests.
func testKey(t *testing.T, bits, s int) *PrivateKey {
	t.Helper()
	sk, err := FixturePrivateKey(bits, s)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestGenerateKeyRoundTrip(t *testing.T) {
	sk, err := GenerateKey(rand.Reader, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sk.Validate(); err != nil {
		t.Fatal(err)
	}
	m := big.NewInt(424242)
	c, err := sk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(m) != 0 {
		t.Fatalf("decrypt = %v, want %v", got, m)
	}
}

func TestGenerateKeyRejectsTinyModulus(t *testing.T) {
	if _, err := GenerateKey(rand.Reader, 8, 1); !errors.Is(err, ErrKeyGeneration) {
		t.Fatalf("err = %v", err)
	}
}

func TestRoundTripAllDegrees(t *testing.T) {
	for _, s := range []int{1, 2, 3} {
		sk := testKey(t, 128, s)
		ns := sk.PlaintextModulus()
		for _, m := range []*big.Int{
			big.NewInt(0),
			big.NewInt(1),
			big.NewInt(987654321),
			new(big.Int).Sub(ns, big.NewInt(1)), // max plaintext
		} {
			c, err := sk.Encrypt(rand.Reader, m)
			if err != nil {
				t.Fatalf("s=%d: %v", s, err)
			}
			got, err := sk.Decrypt(c)
			if err != nil {
				t.Fatalf("s=%d: %v", s, err)
			}
			if got.Cmp(m) != 0 {
				t.Fatalf("s=%d: decrypt = %v, want %v", s, got, m)
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	sk := testKey(t, 128, 2)
	ns := sk.PlaintextModulus()
	rng := mrand.New(mrand.NewSource(11))
	f := func() bool {
		m := new(big.Int).Rand(rng, ns)
		c, err := sk.Encrypt(rand.Reader, m)
		if err != nil {
			return false
		}
		got, err := sk.Decrypt(c)
		return err == nil && got.Cmp(m) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHomomorphicAddition(t *testing.T) {
	sk := testKey(t, 128, 1)
	pk := sk.Public()
	a, b := big.NewInt(123456), big.NewInt(654321)
	ca, _ := pk.Encrypt(rand.Reader, a)
	cb, _ := pk.Encrypt(rand.Reader, b)
	sum, err := pk.Add(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 777777 {
		t.Fatalf("E(a)·E(b) decrypts to %v", got)
	}
}

func TestHomomorphicAdditionWrapsModNs(t *testing.T) {
	sk := testKey(t, 64, 1)
	pk := sk.Public()
	ns := pk.PlaintextModulus()
	a := new(big.Int).Sub(ns, big.NewInt(1))
	ca, _ := pk.Encrypt(rand.Reader, a)
	cb, _ := pk.Encrypt(rand.Reader, big.NewInt(5))
	sum, _ := pk.Add(ca, cb)
	got, err := sk.Decrypt(sum)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 4 {
		t.Fatalf("(n^s - 1) + 5 mod n^s = %v, want 4", got)
	}
}

func TestHomomorphicScalarMul(t *testing.T) {
	sk := testKey(t, 128, 1)
	pk := sk.Public()
	c, _ := pk.Encrypt(rand.Reader, big.NewInt(1111))
	for _, k := range []int64{0, 1, 2, 77} {
		ck, err := pk.ScalarMul(c, big.NewInt(k))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(ck)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != 1111*k {
			t.Fatalf("E(m)^%d decrypts to %v", k, got)
		}
	}
}

func TestHomomorphicScalarMulNegative(t *testing.T) {
	sk := testKey(t, 128, 1)
	pk := sk.Public()
	ns := pk.PlaintextModulus()
	c, _ := pk.Encrypt(rand.Reader, big.NewInt(10))
	ck, err := pk.ScalarMul(c, big.NewInt(-3))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(ck)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Sub(ns, big.NewInt(30))
	if got.Cmp(want) != 0 {
		t.Fatalf("E(10)^-3 decrypts to %v, want n^s - 30", got)
	}
}

func TestHomomorphicSub(t *testing.T) {
	sk := testKey(t, 128, 1)
	pk := sk.Public()
	ca, _ := pk.Encrypt(rand.Reader, big.NewInt(500))
	cb, _ := pk.Encrypt(rand.Reader, big.NewInt(123))
	diff, err := pk.Sub(ca, cb)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(diff)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 377 {
		t.Fatalf("sub = %v", got)
	}
}

func TestHomomorphicLawsProperty(t *testing.T) {
	// E(a)·E(b) ~ E(a+b) and E(a)^k ~ E(ka), over random inputs, s=2.
	sk := testKey(t, 96, 2)
	pk := sk.Public()
	ns := pk.PlaintextModulus()
	rng := mrand.New(mrand.NewSource(13))
	for i := 0; i < 25; i++ {
		a := new(big.Int).Rand(rng, ns)
		b := new(big.Int).Rand(rng, ns)
		k := new(big.Int).Rand(rng, big.NewInt(1<<30))
		ca, _ := pk.Encrypt(rand.Reader, a)
		cb, _ := pk.Encrypt(rand.Reader, b)
		sum, _ := pk.Add(ca, cb)
		wantSum := new(big.Int).Add(a, b)
		wantSum.Mod(wantSum, ns)
		if got, _ := sk.Decrypt(sum); got.Cmp(wantSum) != 0 {
			t.Fatalf("add law failed: %v != %v", got, wantSum)
		}
		ck, _ := pk.ScalarMul(ca, k)
		wantK := new(big.Int).Mul(a, k)
		wantK.Mod(wantK, ns)
		if got, _ := sk.Decrypt(ck); got.Cmp(wantK) != 0 {
			t.Fatalf("scalar law failed: %v != %v", got, wantK)
		}
	}
}

func TestEncryptIsRandomized(t *testing.T) {
	sk := testKey(t, 128, 1)
	pk := sk.Public()
	m := big.NewInt(42)
	c1, _ := pk.Encrypt(rand.Reader, m)
	c2, _ := pk.Encrypt(rand.Reader, m)
	if c1.Cmp(c2) == 0 {
		t.Fatal("two encryptions of the same plaintext must differ (semantic security)")
	}
}

func TestEncryptWithNonceDeterministic(t *testing.T) {
	sk := testKey(t, 128, 1)
	pk := sk.Public()
	r := big.NewInt(12345)
	c1, err := pk.EncryptWithNonce(big.NewInt(7), r)
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := pk.EncryptWithNonce(big.NewInt(7), r)
	if c1.Cmp(c2) != 0 {
		t.Fatal("same nonce must give identical ciphertexts")
	}
}

func TestEncryptWithNonceValidation(t *testing.T) {
	sk := testKey(t, 128, 1)
	pk := sk.Public()
	if _, err := pk.EncryptWithNonce(big.NewInt(1), big.NewInt(0)); err == nil {
		t.Fatal("zero nonce should error")
	}
	if _, err := pk.EncryptWithNonce(big.NewInt(1), pk.N); err == nil {
		t.Fatal("nonce >= n should error")
	}
	if _, err := pk.EncryptWithNonce(nil, big.NewInt(3)); !errors.Is(err, ErrInvalidPlaintext) {
		t.Fatal("nil plaintext should error")
	}
	// Non-unit nonce (multiple of p).
	p, _, _ := FixturePrimes(128)
	if _, err := pk.EncryptWithNonce(big.NewInt(1), p); err == nil {
		t.Fatal("non-unit nonce should error")
	}
}

func TestRerandomizePreservesPlaintext(t *testing.T) {
	sk := testKey(t, 128, 1)
	pk := sk.Public()
	m := big.NewInt(31337)
	c, _ := pk.Encrypt(rand.Reader, m)
	c2, err := pk.Rerandomize(rand.Reader, c)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cmp(c2) == 0 {
		t.Fatal("rerandomize should change the ciphertext")
	}
	got, err := sk.Decrypt(c2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(m) != 0 {
		t.Fatalf("rerandomized decrypt = %v", got)
	}
}

func TestCiphertextValidation(t *testing.T) {
	sk := testKey(t, 128, 1)
	pk := sk.Public()
	bad := []*big.Int{nil, big.NewInt(0), big.NewInt(-5), pk.CiphertextModulus()}
	for _, c := range bad {
		if _, err := pk.Add(c, c); !errors.Is(err, ErrInvalidCiphertext) {
			t.Fatalf("Add(%v): err = %v", c, err)
		}
		if _, err := pk.ScalarMul(c, big.NewInt(2)); !errors.Is(err, ErrInvalidCiphertext) {
			t.Fatalf("ScalarMul(%v): err = %v", c, err)
		}
		if _, err := sk.Decrypt(c); !errors.Is(err, ErrInvalidCiphertext) {
			t.Fatalf("Decrypt(%v): err = %v", c, err)
		}
	}
}

func TestNegativePlaintextReducedModNs(t *testing.T) {
	sk := testKey(t, 128, 1)
	pk := sk.Public()
	ns := pk.PlaintextModulus()
	c, err := pk.Encrypt(rand.Reader, big.NewInt(-1))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(c)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Sub(ns, big.NewInt(1))
	if got.Cmp(want) != 0 {
		t.Fatalf("E(-1) decrypts to %v, want n^s - 1", got)
	}
}

func TestNewPrivateKeyFromPrimesValidation(t *testing.T) {
	p, q, _ := FixturePrimes(128)
	if _, err := NewPrivateKeyFromPrimes(p, p, 1); !errors.Is(err, ErrKeyGeneration) {
		t.Fatal("p == q should error")
	}
	if _, err := NewPrivateKeyFromPrimes(big.NewInt(100), q, 1); !errors.Is(err, ErrKeyGeneration) {
		t.Fatal("composite p should error")
	}
	if _, err := NewPrivateKeyFromPrimes(p, q, 0); err == nil {
		t.Fatal("s=0 should error")
	}
}

func TestCiphertextBytes(t *testing.T) {
	sk := testKey(t, 128, 1)
	// n^{s+1} for a 128-bit n with s=1 is ~256 bits = 32 bytes.
	if got := sk.CiphertextBytes(); got != 32 {
		t.Fatalf("CiphertextBytes = %d, want 32", got)
	}
	sk3 := testKey(t, 128, 3)
	if got := sk3.CiphertextBytes(); got != 64 {
		t.Fatalf("s=3 CiphertextBytes = %d, want 64", got)
	}
}

func TestPowOnePlusNMatchesExp(t *testing.T) {
	// The binomial shortcut must agree with naive modular exponentiation.
	sk := testKey(t, 96, 2)
	pk := sk.Public()
	onePlusN := new(big.Int).Add(pk.N, big.NewInt(1))
	rng := mrand.New(mrand.NewSource(17))
	for i := 0; i < 20; i++ {
		m := new(big.Int).Rand(rng, pk.PlaintextModulus())
		fast := pk.powOnePlusN(m)
		slow := new(big.Int).Exp(onePlusN, m, pk.CiphertextModulus())
		if fast.Cmp(slow) != 0 {
			t.Fatalf("powOnePlusN(%v) = %v, want %v", m, fast, slow)
		}
	}
}

func TestDLogInverseOfPow(t *testing.T) {
	sk := testKey(t, 96, 3)
	pk := sk.Public()
	rng := mrand.New(mrand.NewSource(19))
	for i := 0; i < 20; i++ {
		m := new(big.Int).Rand(rng, pk.PlaintextModulus())
		a := pk.powOnePlusN(m)
		got, err := pk.dLog(a)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(m) != 0 {
			t.Fatalf("dLog(pow(%v)) = %v", m, got)
		}
	}
}
