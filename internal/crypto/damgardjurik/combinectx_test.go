package damgardjurik

import (
	"crypto/rand"
	"errors"
	"math/big"
	mrand "math/rand"
	"testing"
)

// TestCombineContextReuseBitIdentical is the cached-responder Combine
// property: one context, built once for a responder subset, opens many
// ciphertexts bit-identically to the naive per-call oracle.
func TestCombineContextReuseBitIdentical(t *testing.T) {
	tk, shares := testThresholdKey(t, 128, 1, 6, 3)
	ns := tk.PlaintextModulus()
	rng := mrand.New(mrand.NewSource(17))
	indices := []int{2, 4, 5}
	ctx, err := tk.CombineContext(indices)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 8; trial++ {
		m := new(big.Int).Rand(rng, ns)
		c, err := tk.Encrypt(rand.Reader, m)
		if err != nil {
			t.Fatal(err)
		}
		parts := make([]PartialDecryption, len(indices))
		for i, id := range indices {
			parts[i], err = tk.PartialDecrypt(shares[id-1], c)
			if err != nil {
				t.Fatal(err)
			}
		}
		got, err := tk.CombineWith(ctx, parts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tk.CombineNaive(parts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("trial %d: CombineWith = %v, CombineNaive = %v", trial, got, want)
		}
		if got.Cmp(m) != 0 {
			t.Fatalf("trial %d: decrypt = %v, want %v", trial, got, m)
		}
	}
}

// TestCombineContextMemoized pins the cache discipline: the first lookup
// of a subset builds the context (no hit), repeats return the same
// pointer and count as hits, and a different subset misses again.
func TestCombineContextMemoized(t *testing.T) {
	tk, _ := testThresholdKey(t, 128, 1, 6, 3)
	if tk.CombineContextHits() != 0 {
		t.Fatalf("fresh key reports %d hits", tk.CombineContextHits())
	}
	a1, err := tk.CombineContext([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if tk.CombineContextHits() != 0 {
		t.Fatal("first lookup must be a miss")
	}
	a2, err := tk.CombineContext([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("repeat lookup returned a different context")
	}
	if tk.CombineContextHits() != 1 {
		t.Fatalf("hits = %d after repeat lookup, want 1", tk.CombineContextHits())
	}
	if _, err := tk.CombineContext([]int{2, 3, 6}); err != nil {
		t.Fatal(err)
	}
	if tk.CombineContextHits() != 1 {
		t.Fatalf("different subset must miss; hits = %d", tk.CombineContextHits())
	}
}

// TestCombineUsesContextCache proves the public Combine path shares the
// cache: decrypting several ciphertexts against the same quorum misses
// once and hits thereafter.
func TestCombineUsesContextCache(t *testing.T) {
	tk, shares := testThresholdKey(t, 128, 1, 5, 3)
	for trial := 0; trial < 3; trial++ {
		m := big.NewInt(int64(1000 + trial))
		c, _ := tk.Encrypt(rand.Reader, m)
		if got := decryptWith(t, tk, shares, c, []int{1, 3, 4}); got.Cmp(m) != 0 {
			t.Fatalf("trial %d: decrypt = %v", trial, got)
		}
	}
	if hits := tk.CombineContextHits(); hits != 2 {
		t.Fatalf("3 Combines against one quorum: hits = %d, want 2", hits)
	}
}

// TestCombineContextValidation rejects malformed responder subsets.
func TestCombineContextValidation(t *testing.T) {
	tk, _ := testThresholdKey(t, 128, 1, 5, 3)
	if _, err := tk.CombineContext([]int{1, 2}); !errors.Is(err, ErrNotEnoughShares) {
		t.Fatalf("short subset: err = %v", err)
	}
	if _, err := tk.CombineContext([]int{1, 2, 3, 4}); !errors.Is(err, ErrNotEnoughShares) {
		t.Fatalf("long subset: err = %v", err)
	}
	if _, err := tk.CombineContext([]int{0, 1, 2}); !errors.Is(err, ErrShareOutOfRange) {
		t.Fatalf("index 0: err = %v", err)
	}
	if _, err := tk.CombineContext([]int{1, 2, 6}); !errors.Is(err, ErrShareOutOfRange) {
		t.Fatalf("index > parties: err = %v", err)
	}
	if _, err := tk.CombineContext([]int{1, 2, 2}); !errors.Is(err, ErrDuplicateShare) {
		t.Fatalf("duplicate: err = %v", err)
	}
	if _, err := tk.CombineContext([]int{3, 2, 1}); !errors.Is(err, ErrDuplicateShare) {
		t.Fatalf("descending: err = %v", err)
	}
}

// TestCombineWithMisalignedPartials rejects partials that do not line up
// with the context's responder subset, position by position.
func TestCombineWithMisalignedPartials(t *testing.T) {
	tk, shares := testThresholdKey(t, 128, 1, 5, 3)
	c, _ := tk.Encrypt(rand.Reader, big.NewInt(9))
	ctx, err := tk.CombineContext([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]PartialDecryption, 3)
	for i := 0; i < 3; i++ {
		parts[i], _ = tk.PartialDecrypt(shares[i], c)
	}
	if _, err := tk.CombineWith(ctx, parts[:2]); !errors.Is(err, ErrNotEnoughShares) {
		t.Fatalf("short partials: err = %v", err)
	}
	swapped := []PartialDecryption{parts[1], parts[0], parts[2]}
	if _, err := tk.CombineWith(ctx, swapped); !errors.Is(err, ErrShareOutOfRange) {
		t.Fatalf("swapped partials: err = %v", err)
	}
	other, _ := tk.PartialDecrypt(shares[4], c)
	wrong := []PartialDecryption{parts[0], parts[1], other}
	if _, err := tk.CombineWith(ctx, wrong); !errors.Is(err, ErrShareOutOfRange) {
		t.Fatalf("wrong responder: err = %v", err)
	}
}

// TestMultiExpPlanMatchesMultiExp pins the precomputed window-digit
// schedule against the ad-hoc multiExp over random bases and exponents,
// including the small-input special cases.
func TestMultiExpPlanMatchesMultiExp(t *testing.T) {
	rng := mrand.New(mrand.NewSource(41))
	mod := new(big.Int).SetInt64(0)
	mod.SetString("68719476767", 10) // prime
	for trial := 0; trial < 20; trial++ {
		k := 1 + rng.Intn(5)
		bases := make([]*big.Int, k)
		exps := make([]*big.Int, k)
		for i := 0; i < k; i++ {
			bases[i] = new(big.Int).Rand(rng, mod)
			exps[i] = new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(8+rng.Intn(120))))
		}
		want := multiExp(bases, exps, mod)
		got := newMultiExpPlan(exps).exec(bases, mod)
		if got.Cmp(want) != 0 {
			t.Fatalf("trial %d (k=%d): plan exec = %v, multiExp = %v", trial, k, got, want)
		}
	}
	// Degenerate: no terms.
	if got := newMultiExpPlan(nil).exec(nil, mod); got.Cmp(big.NewInt(1)) != 0 {
		t.Fatalf("empty plan = %v, want 1", got)
	}
}
