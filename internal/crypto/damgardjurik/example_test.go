package damgardjurik_test

import (
	"fmt"
	"log"
	"math/big"

	"chiaroscuro/internal/crypto/damgardjurik"
)

// Example walks the scheme end to end the way Chiaroscuro uses it: a
// trusted dealer shares a threshold key among 5 parties (any 3 can
// decrypt), values are encrypted and aggregated homomorphically, and a
// quorum opens only the aggregate — never an individual contribution.
func Example() {
	// Fixture safe primes keep the example instant; never use them for
	// real secrets.
	tk, shares, err := damgardjurik.FixtureThresholdKey(128, 1, 5, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Three parties encrypt their private values...
	contributions := []int64{120, 250, 30}
	var sum *big.Int
	for _, v := range contributions {
		c, err := tk.Encrypt(nil, big.NewInt(v))
		if err != nil {
			log.Fatal(err)
		}
		if sum == nil {
			sum = c
		} else if sum, err = tk.Add(sum, c); err != nil {
			log.Fatal(err)
		}
	}

	// ...and any 3 of the 5 share holders decrypt the aggregate.
	parts := make([]damgardjurik.PartialDecryption, 0, 3)
	for _, idx := range []int{1, 3, 5} {
		pd, err := tk.PartialDecrypt(shares[idx-1], sum)
		if err != nil {
			log.Fatal(err)
		}
		parts = append(parts, pd)
	}
	m, err := tk.Combine(parts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("aggregate:", m)
	// Output:
	// aggregate: 400
}

// ExamplePublicKey_ScalarMul shows the homomorphic operations the gossip
// layer relies on: E(a)·E(b) = E(a+b) and E(a)^k = E(k·a).
func ExamplePublicKey_ScalarMul() {
	sk, err := damgardjurik.FixturePrivateKey(128, 1)
	if err != nil {
		log.Fatal(err)
	}
	pk := sk.Public()
	c, _ := pk.Encrypt(nil, big.NewInt(21))
	doubled, err := pk.ScalarMul(c, big.NewInt(2))
	if err != nil {
		log.Fatal(err)
	}
	m, _ := sk.Decrypt(doubled)
	fmt.Println("2 × 21 =", m)
	// Output:
	// 2 × 21 = 42
}

// ExamplePublicKey_NewEncContext demonstrates the precomputed fast
// path: ciphertexts produced through an EncContext (fixed-base windowed
// table, short exponent) are drop-in compatible with naive ones — they
// decrypt identically and mix homomorphically.
func ExamplePublicKey_NewEncContext() {
	sk, err := damgardjurik.FixturePrivateKey(128, 1)
	if err != nil {
		log.Fatal(err)
	}
	pk := sk.Public()
	ec, err := pk.NewEncContext(nil)
	if err != nil {
		log.Fatal(err)
	}
	fast, _ := ec.Encrypt(nil, big.NewInt(19))
	naive, _ := pk.Encrypt(nil, big.NewInt(23))
	sum, err := pk.Add(fast, naive)
	if err != nil {
		log.Fatal(err)
	}
	m, _ := sk.Decrypt(sum)
	fmt.Println("fast + naive =", m)
	// Output:
	// fast + naive = 42
}

// ExampleRandomizerPool shows pooled rerandomization — the hot-path
// refresh the gossip exchange applies so ciphertexts cannot be traced
// across hops.
func ExampleRandomizerPool() {
	sk, err := damgardjurik.FixturePrivateKey(128, 1)
	if err != nil {
		log.Fatal(err)
	}
	pk := sk.Public()
	ec, err := pk.NewEncContext(nil)
	if err != nil {
		log.Fatal(err)
	}
	pool := damgardjurik.NewRandomizerPool(ec, 16, nil)
	defer pool.Close()

	c, _ := pk.Encrypt(nil, big.NewInt(7))
	refreshed, err := pool.Rerandomize(c)
	if err != nil {
		log.Fatal(err)
	}
	m, _ := sk.Decrypt(refreshed)
	fmt.Println("ciphertext changed:", refreshed.Cmp(c) != 0)
	fmt.Println("plaintext preserved:", m)
	// Output:
	// ciphertext changed: true
	// plaintext preserved: 7
}
