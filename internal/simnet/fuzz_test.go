package simnet

import (
	"reflect"
	"testing"
)

// FuzzParsePlan hammers the scenario decoder with arbitrary input — the
// fault-plan analogue of the internal/wire unmarshal fuzzers. Whatever
// parses must satisfy three properties:
//
//   - the canonical form round-trips losslessly (String → ParsePlan →
//     identical plan), so a logged scenario always replays;
//   - the parsed plan passes Validate for some population (node ids and
//     magnitudes are bounded by the grammar, never attacker-chosen
//     beyond maxSpecCycles);
//   - nothing panics.
func FuzzParsePlan(f *testing.F) {
	f.Add("")
	f.Add("drop=0.05")
	f.Add("seed=42;drop=0.1;dup=0.02;delay=0.25x3")
	f.Add("crash@10=3;outage@5+8=1,2:reset;lag@0+4=7")
	f.Add("garble=0;malform=1;replay=2;noise*50=3")
	f.Add("noise*1e-3=0")
	f.Add("badshare=1;equivocate=2;silentdealer=3")
	f.Add("drop=1;dup=1;delay=1x1")
	f.Add("outage@0+1=0:reset;outage@0+1=0")
	f.Add(";;;drop=0.5;;")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParsePlan(spec)
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		canon := p.String()
		p2, err := ParsePlan(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, spec, err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("round trip of %q via %q changed the plan:\n%+v\nvs\n%+v", spec, canon, p, p2)
		}
		// A plan whose node ids all fit must validate; one is the
		// smallest population the engines accept faults for.
		maxNode := 0
		for _, nf := range p.Nodes {
			if nf.Node > maxNode {
				maxNode = nf.Node
			}
		}
		if err := p.Validate(maxNode + 1); err != nil {
			t.Fatalf("parsed plan %q fails validation: %v", spec, err)
		}
		// Binding and exercising the hooks must not panic either.
		net, err := NewNet(p, maxNode+1, 1)
		if err != nil {
			t.Fatalf("NewNet on parsed plan %q: %v", spec, err)
		}
		for cycle := 0; cycle < 4; cycle++ {
			net.Directive(0, cycle)
			net.Condition(0, 0, cycle, 64)
		}
	})
}
