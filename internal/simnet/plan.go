package simnet

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// plan.go implements the textual scenario grammar behind the public
// Config.Faults field and the -faults CLI flag, so every discovered
// failure can be replayed from one copy-pastable string.
//
// A scenario is a semicolon-separated list of clauses (whitespace
// ignored, clause order preserved):
//
//	seed=S              pin the fault seed (default: derived from the run seed)
//	drop=P              drop each message with probability P
//	dup=P               duplicate each message with probability P
//	delay=PxD           delay each delivered copy with probability P by
//	                    a uniform 1..D extra cycles
//	crash@C=ids         crash-stop the listed nodes at cycle C
//	outage@C+D=ids[:reset]
//	                    take the listed nodes down for D cycles starting
//	                    at C; ":reset" wipes their state on recovery
//	lag@C+D=ids         stall the listed nodes for D cycles starting at C
//	garble=ids          byzantine: garbage-but-valid ciphertexts
//	malform=ids         byzantine: malformed vectors/ciphers/weights
//	replay=ids          byzantine: replay the first emitted gossip message
//	noise*F=ids         byzantine: scale noise shares by F
//	badshare=ids        byzantine dealer: corrupt one dealt DKG share,
//	                    withhold the justification (DKG runs only)
//	equivocate=ids      byzantine dealer: conflicting DKG commitments
//	silentdealer=ids    byzantine dealer: deal to nobody
//
// where ids is a comma-separated list of node ids. Example:
//
//	drop=0.05;delay=0.2x3;outage@10+8=1,2:reset;garble=7
//
// ParsePlan and (*Plan).String round-trip: parsing the String of a
// parsed plan yields an identical plan (the fuzz target's invariant).

// ParsePlan parses a scenario spec. The empty string parses to an empty
// plan. Node ids are validated against the population later, by
// Plan.Validate / NewNet.
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{}
	seenLink := map[string]bool{}
	for _, raw := range strings.Split(spec, ";") {
		clause := strings.TrimSpace(raw)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("simnet: clause %q is not key=value", clause)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		switch {
		case key == "seed":
			s, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("simnet: bad seed %q", val)
			}
			p.Seed = s
		case key == "drop" || key == "dup":
			if seenLink[key] {
				return nil, fmt.Errorf("simnet: duplicate %s clause", key)
			}
			seenLink[key] = true
			pr, err := parseProb(val)
			if err != nil {
				return nil, err
			}
			if key == "drop" {
				p.Links.DropProb = pr
			} else {
				p.Links.DupProb = pr
			}
		case key == "delay":
			if seenLink[key] {
				return nil, fmt.Errorf("simnet: duplicate delay clause")
			}
			seenLink[key] = true
			probStr, maxStr, ok := strings.Cut(val, "x")
			if !ok {
				return nil, fmt.Errorf("simnet: delay wants PROBxMAX, got %q", val)
			}
			pr, err := parseProb(probStr)
			if err != nil {
				return nil, err
			}
			max, err := parseSmallInt(maxStr)
			if err != nil || max < 1 {
				return nil, fmt.Errorf("simnet: bad max delay %q", maxStr)
			}
			p.Links.DelayProb = pr
			if pr > 0 { // normalize: a zero-probability delay carries no bound
				p.Links.MaxDelay = max
			}
		case strings.HasPrefix(key, "crash@"):
			at, err := parseSmallInt(key[len("crash@"):])
			if err != nil {
				return nil, fmt.Errorf("simnet: bad crash cycle in %q", key)
			}
			if err := appendNodeFaults(p, val, NodeFault{Kind: FaultCrashStop, AtCycle: at}); err != nil {
				return nil, err
			}
		case strings.HasPrefix(key, "outage@"):
			at, dur, err := parseWindow(key[len("outage@"):])
			if err != nil {
				return nil, err
			}
			ids, reset := strings.CutSuffix(val, ":reset")
			if err := appendNodeFaults(p, ids, NodeFault{Kind: FaultOutage, AtCycle: at, Duration: dur, Reset: reset}); err != nil {
				return nil, err
			}
		case strings.HasPrefix(key, "lag@"):
			at, dur, err := parseWindow(key[len("lag@"):])
			if err != nil {
				return nil, err
			}
			if err := appendNodeFaults(p, val, NodeFault{Kind: FaultLaggard, AtCycle: at, Duration: dur}); err != nil {
				return nil, err
			}
		case key == "garble":
			if err := appendNodeFaults(p, val, NodeFault{Kind: FaultGarble}); err != nil {
				return nil, err
			}
		case key == "malform":
			if err := appendNodeFaults(p, val, NodeFault{Kind: FaultMalform}); err != nil {
				return nil, err
			}
		case key == "replay":
			if err := appendNodeFaults(p, val, NodeFault{Kind: FaultReplay}); err != nil {
				return nil, err
			}
		case key == "badshare":
			if err := appendNodeFaults(p, val, NodeFault{Kind: FaultDealerBadShare}); err != nil {
				return nil, err
			}
		case key == "equivocate":
			if err := appendNodeFaults(p, val, NodeFault{Kind: FaultDealerEquivocate}); err != nil {
				return nil, err
			}
		case key == "silentdealer":
			if err := appendNodeFaults(p, val, NodeFault{Kind: FaultDealerSilent}); err != nil {
				return nil, err
			}
		case strings.HasPrefix(key, "noise*"):
			f, err := strconv.ParseFloat(key[len("noise*"):], 64)
			if err != nil || f < 0 || math.IsInf(f, 0) || math.IsNaN(f) {
				return nil, fmt.Errorf("simnet: bad noise factor in %q", key)
			}
			if err := appendNodeFaults(p, val, NodeFault{Kind: FaultSkewNoise, Factor: f}); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("simnet: unknown clause %q", clause)
		}
	}
	return p, nil
}

// maxSpecCycles bounds cycle, duration and delay literals so an
// adversarial spec cannot smuggle pathological magnitudes into the
// schedule arithmetic (no realistic scenario comes near it).
const maxSpecCycles = 1 << 30

func parseProb(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || v < 0 || v > 1 || math.IsNaN(v) {
		return 0, fmt.Errorf("simnet: bad probability %q", s)
	}
	return v, nil
}

func parseSmallInt(s string) (int, error) {
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || v < 0 || v > maxSpecCycles {
		return 0, fmt.Errorf("simnet: bad integer %q", s)
	}
	return v, nil
}

// parseWindow parses "CYCLE+DURATION".
func parseWindow(s string) (at, dur int, err error) {
	atStr, durStr, ok := strings.Cut(s, "+")
	if !ok {
		return 0, 0, fmt.Errorf("simnet: window wants CYCLE+DURATION, got %q", s)
	}
	if at, err = parseSmallInt(atStr); err != nil {
		return 0, 0, err
	}
	if dur, err = parseSmallInt(durStr); err != nil || dur < 1 {
		return 0, 0, fmt.Errorf("simnet: bad duration %q", durStr)
	}
	return at, dur, nil
}

// appendNodeFaults expands a comma-separated id list into one NodeFault
// per node, all sharing the template.
func appendNodeFaults(p *Plan, ids string, tpl NodeFault) error {
	if strings.TrimSpace(ids) == "" {
		return fmt.Errorf("simnet: %s clause with empty node list", tpl.Kind)
	}
	for _, idStr := range strings.Split(ids, ",") {
		id, err := parseSmallInt(idStr)
		if err != nil {
			return fmt.Errorf("simnet: bad node id %q", idStr)
		}
		f := tpl
		f.Node = id
		p.Nodes = append(p.Nodes, f)
	}
	return nil
}

// String renders the plan in the scenario grammar. Parsing the result
// yields an identical plan.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	if p.Links.DropProb > 0 {
		parts = append(parts, "drop="+formatProb(p.Links.DropProb))
	}
	if p.Links.DupProb > 0 {
		parts = append(parts, "dup="+formatProb(p.Links.DupProb))
	}
	if p.Links.DelayProb > 0 {
		max := p.Links.MaxDelay
		if max < 1 {
			max = 1
		}
		parts = append(parts, fmt.Sprintf("delay=%sx%d", formatProb(p.Links.DelayProb), max))
	}
	for _, f := range p.Nodes {
		switch f.Kind {
		case FaultCrashStop:
			parts = append(parts, fmt.Sprintf("crash@%d=%d", f.AtCycle, f.Node))
		case FaultOutage:
			c := fmt.Sprintf("outage@%d+%d=%d", f.AtCycle, f.Duration, f.Node)
			if f.Reset {
				c += ":reset"
			}
			parts = append(parts, c)
		case FaultLaggard:
			parts = append(parts, fmt.Sprintf("lag@%d+%d=%d", f.AtCycle, f.Duration, f.Node))
		case FaultGarble:
			parts = append(parts, fmt.Sprintf("garble=%d", f.Node))
		case FaultMalform:
			parts = append(parts, fmt.Sprintf("malform=%d", f.Node))
		case FaultReplay:
			parts = append(parts, fmt.Sprintf("replay=%d", f.Node))
		case FaultDealerBadShare:
			parts = append(parts, fmt.Sprintf("badshare=%d", f.Node))
		case FaultDealerEquivocate:
			parts = append(parts, fmt.Sprintf("equivocate=%d", f.Node))
		case FaultDealerSilent:
			parts = append(parts, fmt.Sprintf("silentdealer=%d", f.Node))
		case FaultSkewNoise:
			parts = append(parts, fmt.Sprintf("noise*%s=%d", formatProb(f.Factor), f.Node))
		}
	}
	return strings.Join(parts, ";")
}

// formatProb prints a float with full round-trip precision and no
// exponent surprises for the common hand-written values.
func formatProb(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
