package simnet

import (
	"reflect"
	"testing"

	"chiaroscuro/internal/p2p"
)

func TestParsePlanRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"drop=0.05",
		"seed=42;drop=0.1;dup=0.02;delay=0.25x3",
		"crash@10=3",
		"outage@5+8=1:reset",
		"outage@5+8=2",
		"lag@0+4=7",
		"garble=0;malform=1;replay=2;noise*50=3",
		"drop=0.05;delay=0.2x3;outage@10+8=1:reset;outage@10+8=2:reset;garble=7",
		"badshare=1",
		"equivocate=2;silentdealer=3",
		"badshare=0,4;crash@9=2",
	}
	for _, spec := range specs {
		p1, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		p2, err := ParsePlan(p1.String())
		if err != nil {
			t.Fatalf("%q: reparse of %q: %v", spec, p1.String(), err)
		}
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("%q: round trip %q changed the plan: %+v vs %+v", spec, p1.String(), p1, p2)
		}
	}
}

func TestParsePlanMultiIDExpansion(t *testing.T) {
	p, err := ParsePlan("crash@4=1,2,5")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != 3 {
		t.Fatalf("want 3 node faults, got %d", len(p.Nodes))
	}
	for i, want := range []int{1, 2, 5} {
		f := p.Nodes[i]
		if f.Node != want || f.Kind != FaultCrashStop || f.AtCycle != 4 {
			t.Fatalf("fault %d: %+v", i, f)
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	bad := []string{
		"nope",
		"frobnicate=1",
		"drop=1.5",
		"drop=-0.1",
		"drop=NaN",
		"delay=0.5",   // missing xMAX
		"delay=0.5x0", // zero max delay
		"crash@-1=0",  // negative cycle
		"crash@notnum=0",
		"outage@3=1",        // missing duration
		"outage@3+0=1",      // zero duration
		"lag@1+2=",          // empty id list
		"noise*-1=0",        // negative factor
		"noise*Inf=0",       // non-finite factor
		"drop=0.1;drop=0.2", // duplicate link clause
		"seed=abc",
	}
	for _, spec := range bad {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("%q: expected parse error", spec)
		}
	}
}

func TestPlanValidatePopulationBounds(t *testing.T) {
	p, err := ParsePlan("crash@1=9")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(10); err != nil {
		t.Fatalf("node 9 valid in population 10: %v", err)
	}
	if err := p.Validate(9); err == nil {
		t.Fatal("node 9 must be rejected in population 9")
	}
}

func TestPlanEmptyAndClassification(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() || nilPlan.HasByzantine() || nilPlan.ByzantineOf(0) != nil {
		t.Fatal("nil plan must behave as empty")
	}
	p, _ := ParsePlan("")
	if !p.Empty() {
		t.Fatal("parsed empty spec must be empty")
	}
	p, _ = ParsePlan("garble=3")
	if p.Empty() || !p.HasByzantine() || p.hasSchedule() {
		t.Fatalf("byzantine-only plan misclassified: %+v", p)
	}
	if f := p.ByzantineOf(3); f == nil || f.Kind != FaultGarble {
		t.Fatalf("ByzantineOf(3) = %+v", p.ByzantineOf(3))
	}
	if p.ByzantineOf(2) != nil {
		t.Fatal("node 2 is honest")
	}
	p, _ = ParsePlan("lag@1+2=0")
	if p.HasByzantine() || !p.hasSchedule() {
		t.Fatalf("lifecycle-only plan misclassified: %+v", p)
	}
	p, _ = ParsePlan("badshare=2")
	if p.Empty() || p.HasByzantine() || p.hasSchedule() || !p.HasDealerFaults() {
		t.Fatalf("dealer-fault plan misclassified: %+v", p)
	}
	if f := p.DealerFaultOf(2); f == nil || f.Kind != FaultDealerBadShare {
		t.Fatalf("DealerFaultOf(2) = %+v", p.DealerFaultOf(2))
	}
	if p.DealerFaultOf(1) != nil {
		t.Fatal("node 1 deals honestly")
	}
}

// TestConditionDeterministicPerSequence pins the conditioner's replay
// property: two Nets bound to the same plan produce identical verdict
// sequences, and the verdicts depend on the per-sender sequence number
// (so repeated sends on one link are conditioned independently).
func TestConditionDeterministicPerSequence(t *testing.T) {
	plan, err := ParsePlan("seed=7;drop=0.3;dup=0.2;delay=0.5x4")
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewNet(plan, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewNet(plan, 8, 99)
	var drops, dups, delays int
	distinct := false
	var prev p2p.Verdict
	for i := 0; i < 2000; i++ {
		va := a.Condition(1, 2, 5, 100)
		vb := b.Condition(1, 2, 5, 100)
		if va != vb {
			t.Fatalf("send %d: verdicts diverge: %+v vs %+v", i, va, vb)
		}
		if i > 0 && va != prev {
			distinct = true
		}
		prev = va
		if va.Drop {
			drops++
		}
		if va.Duplicate {
			dups++
		}
		if va.Delay > 0 {
			if va.Delay > 4 {
				t.Fatalf("delay %d beyond max 4", va.Delay)
			}
			delays++
		}
	}
	if !distinct {
		t.Fatal("verdicts never varied across the sequence")
	}
	// Loose frequency sanity (2000 draws, generous margins).
	if drops < 400 || drops > 800 {
		t.Fatalf("drop rate off: %d/2000 at p=0.3", drops)
	}
	if dups == 0 || delays == 0 {
		t.Fatalf("expected some dups (%d) and delays (%d)", dups, delays)
	}
}

// TestDirectiveSchedules pins the lifecycle schedule semantics.
func TestDirectiveSchedules(t *testing.T) {
	plan, err := ParsePlan("crash@5=0;outage@3+4=1:reset;lag@2+3=2;outage@2+2=3;outage@10+2=3:reset")
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNet(plan, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	type row struct {
		id    p2p.NodeID
		cycle int
		want  p2p.NodeDirective
	}
	rows := []row{
		{0, 4, p2p.NodeDirective{}},
		{0, 5, p2p.NodeDirective{Down: true}},
		{0, 500, p2p.NodeDirective{Down: true}},
		{1, 2, p2p.NodeDirective{}}, // Reset is scoped to the outage window
		{1, 3, p2p.NodeDirective{Down: true, Reset: true}},
		{1, 6, p2p.NodeDirective{Down: true, Reset: true}},
		{1, 7, p2p.NodeDirective{Reset: true}}, // recovery boundary
		{1, 8, p2p.NodeDirective{}},
		{2, 1, p2p.NodeDirective{}},
		{2, 2, p2p.NodeDirective{Stall: true}},
		{2, 4, p2p.NodeDirective{Stall: true}},
		{2, 5, p2p.NodeDirective{}},
		// Node 3 mixes a state-kept outage (cycles 2-3) with a :reset
		// outage (cycles 10-11): recovery from the first must not reset.
		{3, 2, p2p.NodeDirective{Down: true}},
		{3, 4, p2p.NodeDirective{}},
		{3, 10, p2p.NodeDirective{Down: true, Reset: true}},
		{3, 12, p2p.NodeDirective{Reset: true}},
		{3, 13, p2p.NodeDirective{}},
	}
	for _, r := range rows {
		if got := net.Directive(r.id, r.cycle); got != r.want {
			t.Errorf("Directive(%d, %d) = %+v, want %+v", r.id, r.cycle, got, r.want)
		}
	}
}
