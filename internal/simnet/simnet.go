// Package simnet is the deterministic fault-injection layer of the
// simulation: a programmable, seeded network and participant fault model
// that sits between the p2p scheduler and the protocol code. It supplies
// the two hooks internal/p2p exposes:
//
//   - a Conditioner on the message path — per-message drop, duplicate
//     and delay decisions drawn from a hash of (seed, sender, receiver,
//     cycle, per-sender sequence number), never from shared RNG state,
//     so the same plan produces the same verdicts at any worker count;
//   - a FaultScheduler on the node lifecycle — crash-stop, crash-recovery
//     (with or without state loss), and laggards that stall for a window
//     of cycles, all triggered at fixed cycles rather than by coin flips.
//
// Byzantine participant behaviours (garbled or malformed ciphertexts,
// replayed gossip messages, skewed noise shares) are declared here as
// part of the Plan but executed by internal/core, which owns the
// protocol state they corrupt.
//
// # Determinism contract
//
// Every fault decision is a pure function of the plan and the message's
// coordinates. Link verdicts key on the sender's private send counter,
// which advances only inside the sender's own activation — exactly the
// isolation the p2p determinism contract already guarantees for node
// RNGs — so a run with a given (seed, plan) pair reproduces bit-identical
// trajectories under the sequential and sharded schedulers at any worker
// count. Every discovered failure is therefore a replayable regression
// test: re-running the same scenario spec replays the same faults.
package simnet

import (
	"errors"
	"fmt"
	"math"

	"chiaroscuro/internal/p2p"
)

// FaultKind enumerates the participant fault behaviours of a Plan.
type FaultKind int

const (
	// FaultCrashStop takes the node down at AtCycle, permanently.
	FaultCrashStop FaultKind = iota + 1
	// FaultOutage takes the node down for Duration cycles starting at
	// AtCycle; Reset additionally wipes its protocol state on recovery
	// (permanent loss), otherwise it resumes where it stopped.
	FaultOutage
	// FaultLaggard keeps the node alive but skips its activations for
	// Duration cycles starting at AtCycle: it keeps receiving messages
	// and processes the backlog when it wakes up.
	FaultLaggard
	// FaultGarble makes the node a byzantine sender of structurally valid
	// but semantically garbage ciphertexts (fresh encryptions of random
	// residues) under its true push-sum weight.
	FaultGarble
	// FaultMalform makes the node a byzantine sender of malformed gossip
	// messages: wrong-length vectors, foreign or out-of-range cipher
	// values, and non-finite push-sum weights — the inputs the wire
	// hardening must reject.
	FaultMalform
	// FaultReplay makes the node capture its first gossip emission and
	// re-send it verbatim forever after (stale iteration tags and
	// duplicated push-sum mass).
	FaultReplay
	// FaultSkewNoise scales the node's differential-privacy noise shares
	// by Factor (0 = privacy freerider, large = poisoner). The shares
	// stay inside the protocol's clamp bound, so honest receivers cannot
	// detect the skew.
	FaultSkewNoise
	// FaultDealerBadShare makes the node a byzantine DEALER in the DKG
	// key ceremony: it corrupts the share dealt to one victim and
	// withholds its justification, so the unanswered complaint
	// disqualifies it deterministically. Executed by internal/core's
	// ceremony driver; requires a DKG-backed run.
	FaultDealerBadShare
	// FaultDealerEquivocate makes the node a byzantine dealer that sends
	// different commitment vectors to different receivers; the digest
	// disagreement in the Response phase disqualifies it.
	FaultDealerEquivocate
	// FaultDealerSilent makes the node a byzantine dealer that deals to
	// nobody; the unanimous missing-deal verdict disqualifies it.
	FaultDealerSilent
)

// String names the kind as the scenario grammar spells it.
func (k FaultKind) String() string {
	switch k {
	case FaultCrashStop:
		return "crash"
	case FaultOutage:
		return "outage"
	case FaultLaggard:
		return "lag"
	case FaultGarble:
		return "garble"
	case FaultMalform:
		return "malform"
	case FaultReplay:
		return "replay"
	case FaultSkewNoise:
		return "noise"
	case FaultDealerBadShare:
		return "badshare"
	case FaultDealerEquivocate:
		return "equivocate"
	case FaultDealerSilent:
		return "silentdealer"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Byzantine reports whether the kind is a sender-side protocol
// corruption (executed by internal/core) rather than a lifecycle fault
// (executed by internal/p2p). Dealer faults are neither: they fire
// once, during the key ceremony, before the run proper starts.
func (k FaultKind) Byzantine() bool {
	switch k {
	case FaultGarble, FaultMalform, FaultReplay, FaultSkewNoise:
		return true
	}
	return false
}

// DealerFault reports whether the kind is a byzantine-dealer
// behaviour of the DKG key ceremony (executed by internal/core's
// ceremony driver before any protocol cycle runs).
func (k FaultKind) DealerFault() bool {
	switch k {
	case FaultDealerBadShare, FaultDealerEquivocate, FaultDealerSilent:
		return true
	}
	return false
}

// Lifecycle reports whether the kind is scheduled by the p2p fault
// scheduler (crash/outage/laggard) rather than executed by core.
func (k FaultKind) Lifecycle() bool {
	return !k.Byzantine() && !k.DealerFault()
}

// NodeFault schedules one fault behaviour on one node.
type NodeFault struct {
	// Node is the participant/node id the fault applies to.
	Node int
	Kind FaultKind
	// AtCycle is when the fault triggers (lifecycle kinds only;
	// byzantine kinds are active for the whole run).
	AtCycle int
	// Duration is the length in cycles of an outage or laggard stall.
	Duration int
	// Reset makes an outage lose the node's protocol state on recovery.
	Reset bool
	// Factor is the noise-share multiplier of FaultSkewNoise.
	Factor float64
}

// LinkFaults is the probabilistic per-message fault model applied
// uniformly to every link.
type LinkFaults struct {
	// DropProb is the probability a message is silently lost.
	DropProb float64
	// DupProb is the probability a message is delivered twice.
	DupProb float64
	// DelayProb is the probability a delivered copy is delayed by a
	// uniform 1..MaxDelay extra cycles (messages overtaking each other is
	// how reordering arises).
	DelayProb float64
	// MaxDelay is the maximum extra delay in cycles (default 1 when
	// DelayProb > 0).
	MaxDelay int
}

func (l LinkFaults) active() bool {
	return l.DropProb > 0 || l.DupProb > 0 || l.DelayProb > 0
}

// Plan is a complete fault scenario: link-level probabilistic faults
// plus scheduled and byzantine node faults. The zero Plan (and a nil
// *Plan) injects nothing.
type Plan struct {
	// Seed drives the per-message fault hashes. 0 means "derive from the
	// run seed" (the engines pass their own fallback).
	Seed  int64
	Links LinkFaults
	Nodes []NodeFault
}

// Empty reports whether the plan (possibly nil) injects no fault at all.
func (p *Plan) Empty() bool {
	return p == nil || (!p.Links.active() && len(p.Nodes) == 0)
}

// HasByzantine reports whether any node fault is a byzantine sender
// behaviour (which makes internal/core enable wire validation of
// incoming gossip).
func (p *Plan) HasByzantine() bool {
	if p == nil {
		return false
	}
	for _, f := range p.Nodes {
		if f.Kind.Byzantine() {
			return true
		}
	}
	return false
}

// hasSchedule reports whether any node fault is a lifecycle fault.
func (p *Plan) hasSchedule() bool {
	if p == nil {
		return false
	}
	for _, f := range p.Nodes {
		if f.Kind.Lifecycle() {
			return true
		}
	}
	return false
}

// HasDealerFaults reports whether any node fault is a byzantine-dealer
// ceremony behaviour (which requires a DKG-backed run to execute).
func (p *Plan) HasDealerFaults() bool {
	if p == nil {
		return false
	}
	for _, f := range p.Nodes {
		if f.Kind.DealerFault() {
			return true
		}
	}
	return false
}

// DealerFaultOf returns the dealer-ceremony behaviour of a node, or
// nil. When a node carries several, the first declared wins.
func (p *Plan) DealerFaultOf(node int) *NodeFault {
	if p == nil {
		return nil
	}
	for i := range p.Nodes {
		if p.Nodes[i].Node == node && p.Nodes[i].Kind.DealerFault() {
			return &p.Nodes[i]
		}
	}
	return nil
}

// ByzantineOf returns the byzantine behaviour of a node, or nil. When a
// node carries several byzantine faults the first declared wins.
func (p *Plan) ByzantineOf(node int) *NodeFault {
	if p == nil {
		return nil
	}
	for i := range p.Nodes {
		if p.Nodes[i].Node == node && p.Nodes[i].Kind.Byzantine() {
			return &p.Nodes[i]
		}
	}
	return nil
}

// Validate checks the plan against a population of n nodes.
func (p *Plan) Validate(n int) error {
	if p == nil {
		return nil
	}
	l := p.Links
	for _, pr := range []struct {
		name string
		v    float64
	}{{"drop", l.DropProb}, {"dup", l.DupProb}, {"delay", l.DelayProb}} {
		if pr.v < 0 || pr.v > 1 || math.IsNaN(pr.v) {
			return fmt.Errorf("simnet: %s probability %v outside [0,1]", pr.name, pr.v)
		}
	}
	if l.MaxDelay < 0 {
		return fmt.Errorf("simnet: negative max delay %d", l.MaxDelay)
	}
	for i, f := range p.Nodes {
		if f.Node < 0 || f.Node >= n {
			return fmt.Errorf("simnet: fault %d targets node %d outside [0,%d)", i, f.Node, n)
		}
		switch f.Kind {
		case FaultCrashStop:
			if f.AtCycle < 0 {
				return fmt.Errorf("simnet: fault %d: negative cycle %d", i, f.AtCycle)
			}
		case FaultOutage, FaultLaggard:
			if f.AtCycle < 0 || f.Duration < 1 {
				return fmt.Errorf("simnet: fault %d: need cycle >= 0 and duration >= 1", i)
			}
		case FaultGarble, FaultMalform, FaultReplay,
			FaultDealerBadShare, FaultDealerEquivocate, FaultDealerSilent:
			// No parameters.
		case FaultSkewNoise:
			if f.Factor < 0 || math.IsNaN(f.Factor) || math.IsInf(f.Factor, 0) {
				return fmt.Errorf("simnet: fault %d: noise factor %v must be finite and >= 0", i, f.Factor)
			}
		default:
			return fmt.Errorf("simnet: fault %d: unknown kind %d", i, int(f.Kind))
		}
	}
	return nil
}

// Net binds a validated Plan to a population: it implements both
// p2p.Conditioner and p2p.FaultScheduler. One Net serves exactly one
// run — its per-sender sequence counters are part of the deterministic
// replay state.
type Net struct {
	plan *Plan
	seed int64
	// seq[i] counts node i's sends. Only node i's own activation
	// advances it (one goroutine at a time under every scheduler), so no
	// synchronization is needed — the same isolation argument as the
	// per-node RNGs of internal/p2p.
	seq []uint64
	// perNode[i] indexes the lifecycle faults of node i.
	perNode [][]*NodeFault
}

// NewNet validates plan for a population of n and binds it. fallbackSeed
// is used when the plan does not pin its own seed.
func NewNet(plan *Plan, n int, fallbackSeed int64) (*Net, error) {
	if plan == nil {
		return nil, errors.New("simnet: nil plan")
	}
	if err := plan.Validate(n); err != nil {
		return nil, err
	}
	seed := plan.Seed
	if seed == 0 {
		seed = fallbackSeed
	}
	net := &Net{
		plan:    plan,
		seed:    seed,
		seq:     make([]uint64, n),
		perNode: make([][]*NodeFault, n),
	}
	for i := range plan.Nodes {
		f := &plan.Nodes[i]
		if f.Kind.Lifecycle() {
			net.perNode[f.Node] = append(net.perNode[f.Node], f)
		}
	}
	return net, nil
}

// HasLinkFaults reports whether the bound plan conditions messages at
// all (engines skip the Conditioner hook entirely otherwise).
func (net *Net) HasLinkFaults() bool { return net.plan.Links.active() }

// HasSchedule reports whether the bound plan schedules lifecycle faults.
func (net *Net) HasSchedule() bool { return net.plan.hasSchedule() }

// splitmix64 is the finalizer behind every per-message fault draw.
func splitmix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// msgStream is a tiny stateless PRNG over one message's coordinates:
// successive draws are successive splitmix64 outputs of the mixed key.
type msgStream struct{ state uint64 }

func (s *msgStream) next() uint64 {
	s.state = splitmix64(s.state)
	return s.state
}

// unit draws a uniform float64 in [0,1).
func (s *msgStream) unit() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// Condition implements p2p.Conditioner: the verdict is a pure function
// of (seed, from, to, cycle, sender-sequence). Invoked on the sender's
// goroutine; see the Net.seq comment for why the counter is unsynced.
func (net *Net) Condition(from, to p2p.NodeID, cycle, bytes int) p2p.Verdict {
	s := net.seq[from]
	net.seq[from]++
	key := splitmix64(uint64(net.seed) ^ splitmix64(uint64(from)+1))
	key ^= splitmix64(uint64(to)+1) + splitmix64(uint64(cycle)+1) + s
	st := msgStream{state: key}
	l := net.plan.Links
	var v p2p.Verdict
	if l.DropProb > 0 && st.unit() < l.DropProb {
		v.Drop = true
		return v
	}
	maxDelay := l.MaxDelay
	if maxDelay < 1 {
		maxDelay = 1
	}
	if l.DelayProb > 0 && st.unit() < l.DelayProb {
		v.Delay = 1 + int(st.next()%uint64(maxDelay))
	}
	if l.DupProb > 0 && st.unit() < l.DupProb {
		v.Duplicate = true
		if l.DelayProb > 0 && st.unit() < l.DelayProb {
			v.DupDelay = 1 + int(st.next()%uint64(maxDelay))
		}
	}
	return v
}

// Directive implements p2p.FaultScheduler: the scheduled lifecycle state
// of a node at a cycle.
func (net *Net) Directive(id p2p.NodeID, cycle int) p2p.NodeDirective {
	var d p2p.NodeDirective
	for _, f := range net.perNode[id] {
		switch f.Kind {
		case FaultCrashStop:
			if cycle >= f.AtCycle {
				d.Down = true
			}
		case FaultOutage:
			if cycle >= f.AtCycle && cycle < f.AtCycle+f.Duration {
				d.Down = true
			}
			// Reset is scoped to this outage's own window (including its
			// recovery boundary): a node that also has a state-kept
			// outage must not lose state when *that* window ends. The
			// p2p layer latches Reset seen while down, so a :reset
			// window swallowed by a longer overlapping outage still
			// wipes state at the eventual recovery.
			if f.Reset && cycle >= f.AtCycle && cycle <= f.AtCycle+f.Duration {
				d.Reset = true
			}
		case FaultLaggard:
			if cycle >= f.AtCycle && cycle < f.AtCycle+f.Duration {
				d.Stall = true
			}
		}
	}
	return d
}

var (
	_ p2p.Conditioner    = (*Net)(nil)
	_ p2p.FaultScheduler = (*Net)(nil)
)
