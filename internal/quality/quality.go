// Package quality provides the clustering-quality metrics displayed by the
// demonstration: intra-cluster inertia (the paper's example objective
// function, Sec. II.A), distances between centroid sets (the noise-impact
// graphs of Fig. 3 panel 5), and partition-agreement scores (Adjusted Rand
// Index, Normalized Mutual Information) used to compare Chiaroscuro's
// result against the centralized baseline and the ground-truth archetypes.
package quality

import (
	"errors"
	"fmt"
	"math"
)

// ErrMismatch is returned when inputs have incompatible shapes.
var ErrMismatch = errors.New("quality: input shape mismatch")

// Inertia computes the within-cluster sum of squared distances of data to
// its closest centroid (the "intra-cluster inertia" objective).
func Inertia(data, centroids [][]float64) (float64, error) {
	if len(data) == 0 || len(centroids) == 0 {
		return 0, fmt.Errorf("%w: empty data or centroids", ErrMismatch)
	}
	var total float64
	for i, p := range data {
		best := math.Inf(1)
		for _, c := range centroids {
			if len(c) != len(p) {
				return 0, fmt.Errorf("%w: point %d dim %d vs centroid dim %d", ErrMismatch, i, len(p), len(c))
			}
			if sq := sqDist(p, c); sq < best {
				best = sq
			}
		}
		total += best
	}
	return total, nil
}

// MatchCentroids returns, for each centroid in a, the index of the
// centroid of b it is matched to, minimizing the total squared distance.
// For k <= 8 the optimal assignment is found by exhaustive permutation
// search; beyond that a greedy matching is used (adequate for the
// experiment sizes of the paper, k ≈ 4–10).
func MatchCentroids(a, b [][]float64) ([]int, error) {
	if len(a) != len(b) || len(a) == 0 {
		return nil, fmt.Errorf("%w: %d vs %d centroids", ErrMismatch, len(a), len(b))
	}
	k := len(a)
	cost := make([][]float64, k)
	for i := range cost {
		cost[i] = make([]float64, k)
		for j := range cost[i] {
			if len(a[i]) != len(b[j]) {
				return nil, fmt.Errorf("%w: centroid dims", ErrMismatch)
			}
			cost[i][j] = sqDist(a[i], b[j])
		}
	}
	if k <= 8 {
		return optimalAssignment(cost), nil
	}
	return greedyAssignment(cost), nil
}

func optimalAssignment(cost [][]float64) []int {
	k := len(cost)
	best := make([]int, k)
	cur := make([]int, k)
	used := make([]bool, k)
	bestCost := math.Inf(1)
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if acc >= bestCost {
			return
		}
		if i == k {
			bestCost = acc
			copy(best, cur)
			return
		}
		for j := 0; j < k; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			cur[i] = j
			rec(i+1, acc+cost[i][j])
			used[j] = false
		}
	}
	rec(0, 0)
	return best
}

func greedyAssignment(cost [][]float64) []int {
	k := len(cost)
	out := make([]int, k)
	usedA := make([]bool, k)
	usedB := make([]bool, k)
	for step := 0; step < k; step++ {
		bi, bj, bc := -1, -1, math.Inf(1)
		for i := 0; i < k; i++ {
			if usedA[i] {
				continue
			}
			for j := 0; j < k; j++ {
				if usedB[j] {
					continue
				}
				if cost[i][j] < bc {
					bi, bj, bc = i, j, cost[i][j]
				}
			}
		}
		usedA[bi], usedB[bj] = true, true
		out[bi] = bj
	}
	return out
}

// CentroidRMSE matches the two centroid sets and returns the root mean
// squared per-coordinate error across all matched pairs — the scalar shown
// by the demo's noise-impact graphs.
func CentroidRMSE(a, b [][]float64) (float64, error) {
	match, err := MatchCentroids(a, b)
	if err != nil {
		return 0, err
	}
	var acc float64
	var count int
	for i, j := range match {
		acc += sqDist(a[i], b[j])
		count += len(a[i])
	}
	if count == 0 {
		return 0, fmt.Errorf("%w: zero-dimensional centroids", ErrMismatch)
	}
	return math.Sqrt(acc / float64(count)), nil
}

// ARI computes the Adjusted Rand Index between two partitions given as
// per-point labels. 1 means identical partitions, ~0 means chance-level
// agreement.
func ARI(x, y []int) (float64, error) {
	ct, nx, ny, n, err := contingency(x, y)
	if err != nil {
		return 0, err
	}
	var sumComb, sumA, sumB float64
	for _, row := range ct {
		for _, v := range row {
			sumComb += comb2(v)
		}
	}
	for _, v := range nx {
		sumA += comb2(v)
	}
	for _, v := range ny {
		sumB += comb2(v)
	}
	total := comb2(n)
	if total == 0 {
		return 1, nil
	}
	expected := sumA * sumB / total
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 1, nil
	}
	return (sumComb - expected) / (maxIdx - expected), nil
}

// NMI computes the Normalized Mutual Information (arithmetic-mean
// normalization) between two partitions.
func NMI(x, y []int) (float64, error) {
	ct, nx, ny, n, err := contingency(x, y)
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 1, nil
	}
	fn := float64(n)
	var mi float64
	for i, row := range ct {
		for j, v := range row {
			if v == 0 {
				continue
			}
			p := float64(v) / fn
			mi += p * math.Log(p*fn*fn/(float64(nx[i])*float64(ny[j])))
		}
	}
	hx := entropy(nx, fn)
	hy := entropy(ny, fn)
	if hx == 0 && hy == 0 {
		return 1, nil
	}
	denom := (hx + hy) / 2
	if denom == 0 {
		return 0, nil
	}
	v := mi / denom
	// Clamp tiny negative values from floating point.
	if v < 0 && v > -1e-12 {
		v = 0
	}
	return v, nil
}

func entropy(counts []int, n float64) float64 {
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log(p)
	}
	return h
}

func contingency(x, y []int) (ct [][]int, nx, ny []int, n int, err error) {
	if len(x) != len(y) {
		return nil, nil, nil, 0, fmt.Errorf("%w: %d vs %d labels", ErrMismatch, len(x), len(y))
	}
	kx, ky := 0, 0
	for i := range x {
		if x[i] < 0 || y[i] < 0 {
			return nil, nil, nil, 0, fmt.Errorf("quality: negative label at %d", i)
		}
		if x[i]+1 > kx {
			kx = x[i] + 1
		}
		if y[i]+1 > ky {
			ky = y[i] + 1
		}
	}
	ct = make([][]int, kx)
	for i := range ct {
		ct[i] = make([]int, ky)
	}
	nx = make([]int, kx)
	ny = make([]int, ky)
	for i := range x {
		ct[x[i]][y[i]]++
		nx[x[i]]++
		ny[y[i]]++
	}
	return ct, nx, ny, len(x), nil
}

func comb2(v int) float64 {
	return float64(v) * float64(v-1) / 2
}

func sqDist(a, b []float64) float64 {
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return acc
}
