package quality

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInertiaBasic(t *testing.T) {
	data := [][]float64{{0}, {2}, {10}}
	centroids := [][]float64{{1}, {10}}
	got, err := Inertia(data, centroids)
	if err != nil {
		t.Fatal(err)
	}
	// (0-1)² + (2-1)² + 0 = 2.
	if got != 2 {
		t.Fatalf("inertia = %v, want 2", got)
	}
}

func TestInertiaErrors(t *testing.T) {
	if _, err := Inertia(nil, [][]float64{{1}}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Inertia([][]float64{{1}}, nil); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Inertia([][]float64{{1, 2}}, [][]float64{{1}}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestInertiaZeroWhenCentroidsCoverData(t *testing.T) {
	data := [][]float64{{1, 2}, {3, 4}}
	got, err := Inertia(data, data)
	if err != nil || got != 0 {
		t.Fatalf("inertia = %v, err = %v", got, err)
	}
}

func TestMatchCentroidsIdentity(t *testing.T) {
	a := [][]float64{{0, 0}, {1, 1}, {2, 2}}
	m, err := MatchCentroids(a, a)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range m {
		if i != j {
			t.Fatalf("identity match = %v", m)
		}
	}
}

func TestMatchCentroidsPermutation(t *testing.T) {
	a := [][]float64{{0, 0}, {5, 5}, {9, 9}}
	b := [][]float64{{9.1, 9}, {0.1, 0}, {5.1, 5}} // a[0]->b[1], a[1]->b[2], a[2]->b[0]
	m, err := MatchCentroids(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 0}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("match = %v, want %v", m, want)
		}
	}
}

func TestMatchCentroidsOptimalBeatsIdentityWhenSwapped(t *testing.T) {
	// Random centroid sets under random permutations: matching must
	// recover the permutation.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(6)
		a := make([][]float64, k)
		for i := range a {
			a[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
		}
		perm := rng.Perm(k)
		b := make([][]float64, k)
		for i, p := range perm {
			b[p] = []float64{a[i][0] + 0.001, a[i][1]}
		}
		m, err := MatchCentroids(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range m {
			if m[i] != perm[i] {
				t.Fatalf("trial %d: match %v, want %v", trial, m, perm)
			}
		}
	}
}

func TestMatchCentroidsGreedyPath(t *testing.T) {
	// k > 8 exercises the greedy matcher.
	k := 10
	a := make([][]float64, k)
	b := make([][]float64, k)
	for i := 0; i < k; i++ {
		a[i] = []float64{float64(10 * i)}
		b[i] = []float64{float64(10*i) + 0.5}
	}
	m, err := MatchCentroids(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		if m[i] != i {
			t.Fatalf("greedy match = %v", m)
		}
	}
}

func TestMatchCentroidsErrors(t *testing.T) {
	if _, err := MatchCentroids(nil, nil); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v", err)
	}
	if _, err := MatchCentroids([][]float64{{1}}, [][]float64{{1}, {2}}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v", err)
	}
	if _, err := MatchCentroids([][]float64{{1}}, [][]float64{{1, 2}}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestCentroidRMSE(t *testing.T) {
	a := [][]float64{{0, 0}, {10, 10}}
	b := [][]float64{{10, 10}, {1, 0}} // permuted, one unit off in one coord
	got, err := CentroidRMSE(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Total squared error 1 over 4 coordinates -> rmse = 0.5.
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("rmse = %v, want 0.5", got)
	}
}

func TestCentroidRMSEZeroForIdentical(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}}
	got, err := CentroidRMSE(a, a)
	if err != nil || got != 0 {
		t.Fatalf("rmse = %v, err = %v", got, err)
	}
}

func TestARIPerfectAgreement(t *testing.T) {
	x := []int{0, 0, 1, 1, 2, 2}
	got, err := ARI(x, x)
	if err != nil || got != 1 {
		t.Fatalf("ARI(x,x) = %v, err = %v", got, err)
	}
	// Label permutation does not matter.
	y := []int{2, 2, 0, 0, 1, 1}
	got, err = ARI(x, y)
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Fatalf("ARI under relabeling = %v", got)
	}
}

func TestARIRandomNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 3000
	x := make([]int, n)
	y := make([]int, n)
	for i := range x {
		x[i] = rng.Intn(4)
		y[i] = rng.Intn(4)
	}
	got, err := ARI(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 0.03 {
		t.Fatalf("ARI of independent labelings = %v, want ~0", got)
	}
}

func TestARIKnownValue(t *testing.T) {
	// Example verified against sklearn.metrics.adjusted_rand_score:
	// x = [0,0,1,1], y = [0,0,1,2] -> ARI = 0.5714285714...
	x := []int{0, 0, 1, 1}
	y := []int{0, 0, 1, 2}
	got, err := ARI(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4.0/7.0) > 1e-9 {
		t.Fatalf("ARI = %v, want 4/7", got)
	}
}

func TestNMIPerfectAndIndependent(t *testing.T) {
	x := []int{0, 0, 1, 1, 2, 2}
	got, err := NMI(x, x)
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI(x,x) = %v", got)
	}
	rng := rand.New(rand.NewSource(33))
	n := 5000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(3)
		b[i] = rng.Intn(3)
	}
	got, err = NMI(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.01 {
		t.Fatalf("NMI of independent labelings = %v, want ~0", got)
	}
}

func TestNMISingleClusterEdgeCases(t *testing.T) {
	// Both partitions trivial: defined as 1 (identical information).
	x := []int{0, 0, 0}
	got, err := NMI(x, x)
	if err != nil || got != 1 {
		t.Fatalf("NMI trivial = %v", got)
	}
	// One trivial, one informative: zero shared information.
	y := []int{0, 1, 2}
	got, err = NMI(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("NMI(trivial, informative) = %v, want 0", got)
	}
}

func TestPartitionMetricErrors(t *testing.T) {
	if _, err := ARI([]int{0}, []int{0, 1}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("ARI length: %v", err)
	}
	if _, err := NMI([]int{0}, []int{0, 1}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("NMI length: %v", err)
	}
	if _, err := ARI([]int{-1}, []int{0}); err == nil {
		t.Fatal("negative label should error")
	}
}

func TestARISymmetryProperty(t *testing.T) {
	f := func(rawX, rawY []uint8) bool {
		n := len(rawX)
		if len(rawY) < n {
			n = len(rawY)
		}
		if n < 2 {
			return true
		}
		x := make([]int, n)
		y := make([]int, n)
		for i := 0; i < n; i++ {
			x[i] = int(rawX[i] % 5)
			y[i] = int(rawY[i] % 5)
		}
		axy, err1 := ARI(x, y)
		ayx, err2 := ARI(y, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(axy-ayx) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionMetricsSingletonAndDegenerate is the table-driven edge
// battery over empty and singleton clusterings: one point, one cluster,
// all-singletons — every metric must return a finite, well-defined
// value (degenerate agreement is defined as perfect, matching the
// standard convention) instead of NaN from a zero denominator.
func TestPartitionMetricsSingletonAndDegenerate(t *testing.T) {
	cases := []struct {
		name    string
		x, y    []int
		wantARI float64
		wantNMI float64
	}{
		{name: "single point", x: []int{0}, y: []int{0}, wantARI: 1, wantNMI: 1},
		{name: "two points one cluster", x: []int{0, 0}, y: []int{0, 0}, wantARI: 1, wantNMI: 1},
		{name: "all singletons agree", x: []int{0, 1, 2}, y: []int{2, 0, 1}, wantARI: 1, wantNMI: 1},
		{name: "one cluster vs singletons", x: []int{0, 0, 0}, y: []int{0, 1, 2}, wantARI: 0, wantNMI: 0},
		{name: "single point distinct labels", x: []int{0}, y: []int{3}, wantARI: 1, wantNMI: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ari, err := ARI(tc.x, tc.y)
			if err != nil {
				t.Fatalf("ARI: %v", err)
			}
			if math.IsNaN(ari) || math.Abs(ari-tc.wantARI) > 1e-12 {
				t.Fatalf("ARI = %v, want %v", ari, tc.wantARI)
			}
			nmi, err := NMI(tc.x, tc.y)
			if err != nil {
				t.Fatalf("NMI: %v", err)
			}
			if math.IsNaN(nmi) || math.Abs(nmi-tc.wantNMI) > 1e-12 {
				t.Fatalf("NMI = %v, want %v", nmi, tc.wantNMI)
			}
		})
	}
}

// TestInertiaAndRMSEEmptySingletonClusters pins the empty/singleton
// centroid-set behaviour of the distance metrics.
func TestInertiaAndRMSEEmptySingletonClusters(t *testing.T) {
	// Empty inputs are shape errors, not zeros.
	if _, err := Inertia(nil, [][]float64{{0}}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("empty data: %v", err)
	}
	if _, err := Inertia([][]float64{{0}}, nil); !errors.Is(err, ErrMismatch) {
		t.Fatalf("empty centroids: %v", err)
	}
	// A singleton cluster set: inertia is the distance to that centroid.
	got, err := Inertia([][]float64{{0, 0}, {2, 0}}, [][]float64{{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("singleton-centroid inertia = %v, want 2", got)
	}
	// Singleton centroid sets through matching + RMSE.
	rmse, err := CentroidRMSE([][]float64{{1, 2}}, [][]float64{{1, 2}})
	if err != nil || rmse != 0 {
		t.Fatalf("identical singleton RMSE = %v, %v", rmse, err)
	}
	// Zero-dimensional centroids are a shape error, not RMSE 0.
	if _, err := CentroidRMSE([][]float64{{}}, [][]float64{{}}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("zero-dim: %v", err)
	}
	// Mismatched set sizes (one empty) stay errors.
	if _, err := CentroidRMSE([][]float64{}, [][]float64{{1}}); !errors.Is(err, ErrMismatch) {
		t.Fatalf("empty set: %v", err)
	}
}
