package cohort

import (
	"errors"
	"math"
	"strings"
	"testing"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/dp"
)

// feed builds a deterministic drifting population plus per-window slide
// batches (the cohort-package twin of core's streaming test feed).
func feed(n, dim, windows, slide int) (initial [][]float64, steps [][][]float64) {
	total := dim + windows*slide
	full := make([][]float64, n)
	for i := range full {
		base := 0.15 + 0.7*float64(i%3)/3
		s := make([]float64, total)
		for t := range s {
			v := base + 0.06*math.Sin(2*math.Pi*(float64(t)/float64(total)+float64(i%7)/7)) +
				0.02*float64((i*7+t*3)%5-2)/5
			s[t] = math.Min(1, math.Max(0, v))
		}
		full[i] = s
	}
	initial = make([][]float64, n)
	for i := range initial {
		initial[i] = append([]float64(nil), full[i][:dim]...)
	}
	steps = make([][][]float64, windows)
	for w := range steps {
		steps[w] = make([][]float64, n)
		for i := range steps[w] {
			steps[w][i] = append([]float64(nil), full[i][dim+w*slide:dim+(w+1)*slide]...)
		}
	}
	return initial, steps
}

func bits(v float64) uint64 { return math.Float64bits(v) }

// assertOutcomeIdentical compares two outcomes of the same cohort bit
// for bit — headers, drawn budget, ledger position, every disclosed
// per-iteration centroid/count, finals, ops, privacy.
func assertOutcomeIdentical(t *testing.T, a, b Outcome, label string) {
	t.Helper()
	if a.Cohort != b.Cohort {
		t.Fatalf("%s: cohort %q vs %q", label, a.Cohort, b.Cohort)
	}
	if (a.Err == nil) != (b.Err == nil) {
		t.Fatalf("%s: err %v vs %v", label, a.Err, b.Err)
	}
	if a.Err != nil {
		if a.Err.Error() != b.Err.Error() {
			t.Fatalf("%s: err %q vs %q", label, a.Err, b.Err)
		}
		return
	}
	ra, rb := a.Result, b.Result
	if ra.Window != rb.Window || ra.Skipped != rb.Skipped || ra.WarmStarted != rb.WarmStarted {
		t.Fatalf("%s: header mismatch: %+v vs %+v", label, ra, rb)
	}
	if bits(ra.EpsilonDrawn) != bits(rb.EpsilonDrawn) {
		t.Fatalf("%s: drawn %v vs %v", label, ra.EpsilonDrawn, rb.EpsilonDrawn)
	}
	if ra.Ledger != rb.Ledger {
		t.Fatalf("%s: ledger %+v vs %+v", label, ra.Ledger, rb.Ledger)
	}
	for j := range ra.Centroids {
		for tt := range ra.Centroids[j] {
			if bits(ra.Centroids[j][tt]) != bits(rb.Centroids[j][tt]) {
				t.Fatalf("%s: centroid %d[%d]: %v vs %v", label, j, tt, ra.Centroids[j][tt], rb.Centroids[j][tt])
			}
		}
	}
	if (ra.Trace == nil) != (rb.Trace == nil) {
		t.Fatalf("%s: trace presence mismatch", label)
	}
	if ra.Trace == nil {
		return
	}
	ta, tb := ra.Trace, rb.Trace
	if len(ta.Iterations) != len(tb.Iterations) {
		t.Fatalf("%s: %d vs %d iterations", label, len(ta.Iterations), len(tb.Iterations))
	}
	for i := range ta.Iterations {
		ia, ib := ta.Iterations[i], tb.Iterations[i]
		for j := range ia.PerturbedCentroids {
			for tt := range ia.PerturbedCentroids[j] {
				if bits(ia.PerturbedCentroids[j][tt]) != bits(ib.PerturbedCentroids[j][tt]) {
					t.Fatalf("%s: iter %d centroid %d[%d] differs", label, i, j, tt)
				}
			}
		}
		for j := range ia.PerturbedCounts {
			if bits(ia.PerturbedCounts[j]) != bits(ib.PerturbedCounts[j]) {
				t.Fatalf("%s: iter %d count %d differs", label, i, j)
			}
		}
	}
	for j := range ta.FinalCentroids {
		for tt := range ta.FinalCentroids[j] {
			if bits(ta.FinalCentroids[j][tt]) != bits(tb.FinalCentroids[j][tt]) {
				t.Fatalf("%s: final centroid %d[%d] differs", label, j, tt)
			}
		}
	}
	if bits(ta.Inertia) != bits(tb.Inertia) || ta.ConvergedAtIteration != tb.ConvergedAtIteration {
		t.Fatalf("%s: inertia/convergence differ", label)
	}
	if ta.Ops != tb.Ops {
		t.Fatalf("%s: ops %+v vs %+v", label, ta.Ops, tb.Ops)
	}
	if ta.Privacy != tb.Privacy {
		t.Fatalf("%s: privacy %+v vs %+v", label, ta.Privacy, tb.Privacy)
	}
	if ta.NetStats != tb.NetStats {
		t.Fatalf("%s: netstats %+v vs %+v", label, ta.NetStats, tb.NetStats)
	}
}

func specA() Spec {
	return Spec{ID: "study-a", Session: core.SessionParams{
		Base:            core.Params{K: 2, Iterations: 2, Seed: 11, GossipRounds: 8, DecryptThreshold: 3},
		LifetimeEpsilon: 80,
		Windows:         4,
		WarmStart:       true,
	}}
}

func specB() Spec {
	return Spec{ID: "study-b", Session: core.SessionParams{
		Base:            core.Params{K: 3, Iterations: 2, Seed: 23, GossipRounds: 10, DecryptThreshold: 4},
		LifetimeEpsilon: 120,
		Windows:         4,
		Spend:           dp.SpendDecaying{Factor: 0.5},
		Engine:          core.SessionSharded,
	}}
}

func drive(t *testing.T, specs []Spec, opts Options, windows int, initial [][]float64, steps [][][]float64) map[string][]Outcome {
	t.Helper()
	sched, err := NewScheduler(initial, specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	byCohort := make(map[string][]Outcome)
	for w := 0; w < windows; w++ {
		var pts [][]float64
		if w > 0 {
			pts = steps[w-1]
		}
		outs, err := sched.Advance(pts)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		for _, o := range outs {
			byCohort[o.Cohort] = append(byCohort[o.Cohort], o)
		}
	}
	return byCohort
}

// TestCohortIsolation is the package's reason to exist: cohort A's
// full trajectory is bit-identical whether it runs alone, beside
// cohort B, or after B in the spec order. Nothing but the shared
// (read-only) population crosses cohort boundaries.
func TestCohortIsolation(t *testing.T) {
	const windows = 3
	initial, steps := feed(30, 5, windows, 1)

	alone := drive(t, []Spec{specA()}, Options{}, windows, initial, steps)
	beside := drive(t, []Spec{specA(), specB()}, Options{}, windows, initial, steps)
	reordered := drive(t, []Spec{specB(), specA()}, Options{}, windows, initial, steps)

	for w := 0; w < windows; w++ {
		assertOutcomeIdentical(t, alone["study-a"][w], beside["study-a"][w], "alone vs beside")
		assertOutcomeIdentical(t, alone["study-a"][w], reordered["study-a"][w], "alone vs reordered")
		assertOutcomeIdentical(t, beside["study-b"][w], reordered["study-b"][w], "b beside vs reordered")
	}
}

// TestCohortParallelMatchesSerial pins that the concurrent schedule
// discloses exactly what the serial one does, cohort by cohort and
// window by window. CI runs this under -race: any hidden write sharing
// between cohort sessions would trip the detector here.
func TestCohortParallelMatchesSerial(t *testing.T) {
	const windows = 3
	initial, steps := feed(30, 5, windows, 1)
	specs := []Spec{specA(), specB()}

	serial := drive(t, specs, Options{}, windows, initial, steps)
	parallel := drive(t, specs, Options{Parallel: true}, windows, initial, steps)
	for id, outs := range serial {
		for w := range outs {
			assertOutcomeIdentical(t, outs[w], parallel[id][w], "serial vs parallel "+id)
		}
	}
}

// TestCohortBudgetIsolation exhausts one cohort's lifetime budget and
// checks the other keeps running: per-cohort failures stay per-cohort.
func TestCohortBudgetIsolation(t *testing.T) {
	const windows = 3
	initial, steps := feed(24, 4, windows, 1)
	tiny := Spec{ID: "tiny", Session: core.SessionParams{
		Base:            core.Params{K: 2, Iterations: 2, Seed: 5, GossipRounds: 8, DecryptThreshold: 3},
		LifetimeEpsilon: 20,
		Windows:         1, // uniform spends everything on window 0
	}}
	ample := specA()

	sched, err := NewScheduler(initial, []Spec{tiny, ample}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	for w := 0; w < windows; w++ {
		var pts [][]float64
		if w > 0 {
			pts = steps[w-1]
		}
		outs, err := sched.Advance(pts)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		if w == 0 {
			if outs[0].Err != nil || outs[1].Err != nil {
				t.Fatalf("window 0 outcomes: %+v", outs)
			}
			continue
		}
		if !errors.Is(outs[0].Err, dp.ErrBudgetExhausted) {
			t.Fatalf("window %d: tiny cohort err = %v, want ErrBudgetExhausted", w, outs[0].Err)
		}
		if outs[1].Err != nil {
			t.Fatalf("window %d: ample cohort failed alongside: %v", w, outs[1].Err)
		}
	}
	if rep := sched.Session("tiny").Ledger().Report(); rep.Windows != 1 {
		t.Fatalf("tiny ledger = %+v, want exactly 1 window", rep)
	}
	if rep := sched.Session("study-a").Ledger().Report(); rep.Windows != windows {
		t.Fatalf("ample ledger = %+v, want %d windows", rep, windows)
	}
}

// TestCohortValidationErrors pins the scheduler's configuration and
// advance-time refusals.
func TestCohortValidationErrors(t *testing.T) {
	initial, steps := feed(10, 4, 2, 1)

	if _, err := NewScheduler(initial, nil, Options{}); err == nil ||
		err.Error() != "cohort: need at least one cohort spec" {
		t.Fatalf("no specs: err = %v", err)
	}
	anon := specA()
	anon.ID = ""
	if _, err := NewScheduler(initial, []Spec{anon}, Options{}); err == nil ||
		err.Error() != "cohort: cohort id must be non-empty" {
		t.Fatalf("empty id: err = %v", err)
	}
	if _, err := NewScheduler(initial, []Spec{specA(), specA()}, Options{}); err == nil ||
		err.Error() != `cohort: duplicate cohort id "study-a"` {
		t.Fatalf("dup id: err = %v", err)
	}
	scaled := specB()
	scaled.Session.Base.MaxValue = 2
	if _, err := NewScheduler(initial, []Spec{specA(), scaled}, Options{}); err == nil ||
		err.Error() != `cohort: cohort "study-b" MaxValue 2 differs from cohort "study-a"'s 1 — all cohorts share one population` {
		t.Fatalf("max-value mismatch: err = %v", err)
	}
	bad := specA()
	bad.Session.LifetimeEpsilon = 0
	if _, err := NewScheduler(initial, []Spec{bad}, Options{}); err == nil ||
		!strings.HasPrefix(err.Error(), `cohort "study-a": `) {
		t.Fatalf("session error must carry the cohort id: err = %v", err)
	}

	sched, err := NewScheduler(initial, []Spec{specA()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Advance(steps[0][:3]); err == nil ||
		err.Error() != "cohort: window advance has 3 series, population is 10" {
		t.Fatalf("wrong series count: err = %v", err)
	}
	wide := make([][]float64, 10)
	for i := range wide {
		wide[i] = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	if _, err := sched.Advance(wide); err == nil ||
		err.Error() != "cohort: window advance width 5 outside [1, 4]" {
		t.Fatalf("over-wide: err = %v", err)
	}
	ragged := make([][]float64, 10)
	for i := range ragged {
		ragged[i] = []float64{0.5}
	}
	ragged[4] = []float64{0.5, 0.5}
	if _, err := sched.Advance(ragged); err == nil || !strings.Contains(err.Error(), "ragged") {
		t.Fatalf("ragged: err = %v", err)
	}
	ragged[4] = []float64{7}
	if _, err := sched.Advance(ragged); err == nil || !strings.Contains(err.Error(), "normalize first") {
		t.Fatalf("out of range: err = %v", err)
	}
	// A cohort session is arena-shared: sliding through it is refused —
	// the scheduler owns the window advance.
	if err := sched.Session("study-a").AdvanceWindow(steps[0]); err == nil ||
		err.Error() != "core: shared-population session — the cohort scheduler advances the window" {
		t.Fatalf("shared advance: err = %v", err)
	}
	sched.Close()
	if _, err := sched.Advance(nil); err == nil || err.Error() != "cohort: scheduler is closed" {
		t.Fatalf("closed: err = %v", err)
	}
	sched.Close() // idempotent
}
