// Package cohort multiplexes many independent streaming clustering
// sessions — different k, different budgets, different tenants — over
// ONE shared population. The operational shape this serves is a curator
// running several longitudinal studies on the same panel of
// participants: each study (a "cohort") has its own clustering
// configuration and, critically, its own longitudinal privacy ledger,
// but the underlying time-series arena is a single flat
// vecpool.Matrix that a window advance slides exactly once.
//
// Isolation is the design invariant: a cohort's disclosed trajectory is
// a pure function of the shared population and its own SessionParams.
// Cohorts never share cipher suites, ledgers, RNG state, or warm-start
// centroids — only the read-only series arena — so adding, removing, or
// reordering other cohorts cannot perturb a cohort's results bit for
// bit. The package's tests pin exactly that.
package cohort

import (
	"errors"
	"fmt"
	"sync"

	"chiaroscuro/internal/core"
	"chiaroscuro/internal/vecpool"
)

// Spec names one cohort and its per-window clustering configuration.
type Spec struct {
	// ID is the cohort's unique, non-empty name (a tenant or study id).
	ID string
	// Session is the cohort's full streaming configuration: per-window
	// protocol parameters, lifetime budget, spend strategy, warm-start.
	// All specs of one scheduler must agree on Base.MaxValue — the
	// shared population is range-checked once against it.
	Session core.SessionParams
}

// Outcome is one cohort's result for one shared window advance.
type Outcome struct {
	// Cohort is the Spec.ID this outcome belongs to.
	Cohort string
	// Result is the cohort's window result (nil when Err is set).
	Result *core.WindowResult
	// Err is the cohort's per-window failure — most commonly
	// dp.ErrBudgetExhausted once that cohort's lifetime budget is
	// spent. One cohort's error never stops the others.
	Err error
}

// Options tunes scheduler execution.
type Options struct {
	// Parallel runs the cohorts of each window concurrently (one
	// goroutine per cohort). Outcomes are still delivered in spec
	// order, and each cohort's trajectory is bit-identical to a serial
	// schedule — sessions share only the read-only series arena.
	Parallel bool
}

// Scheduler drives a set of cohort sessions over one shared population.
type Scheduler struct {
	series   *vecpool.Matrix
	specs    []Spec
	sessions []*core.RunSession
	parallel bool
	maxValue float64
	window   int
	closed   bool
}

// NewScheduler range-checks and flattens the population once, then
// builds one shared-arena RunSession per spec. Close the scheduler to
// release all of them.
func NewScheduler(data [][]float64, specs []Spec, opts Options) (*Scheduler, error) {
	if len(specs) == 0 {
		return nil, errors.New("cohort: need at least one cohort spec")
	}
	seen := make(map[string]bool, len(specs))
	for _, sp := range specs {
		if sp.ID == "" {
			return nil, errors.New("cohort: cohort id must be non-empty")
		}
		if seen[sp.ID] {
			return nil, fmt.Errorf("cohort: duplicate cohort id %q", sp.ID)
		}
		seen[sp.ID] = true
	}
	// One population, one value range: the arena is range-checked
	// against a single MaxValue, so all cohorts must agree on it.
	maxValue := specs[0].Session.Base.MaxValue
	if maxValue == 0 {
		maxValue = 1
	}
	for _, sp := range specs[1:] {
		mv := sp.Session.Base.MaxValue
		if mv == 0 {
			mv = 1
		}
		if mv != maxValue {
			return nil, fmt.Errorf("cohort: cohort %q MaxValue %v differs from cohort %q's %v — all cohorts share one population",
				sp.ID, mv, specs[0].ID, maxValue)
		}
	}
	mat, err := vecpool.FromRows(data)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{
		series:   mat,
		specs:    append([]Spec(nil), specs...),
		parallel: opts.Parallel,
		maxValue: maxValue,
	}
	for _, sp := range s.specs {
		sess, err := core.NewSharedRunSession(mat, sp.Session)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("cohort %q: %w", sp.ID, err)
		}
		s.sessions = append(s.sessions, sess)
	}
	return s, nil
}

// Window returns the index of the next shared window Advance would run.
func (s *Scheduler) Window() int { return s.window }

// Session returns the live session of the named cohort (nil if
// unknown) — the handle for per-cohort ledger inspection or a
// mid-stream strategy switch.
func (s *Scheduler) Session(id string) *core.RunSession {
	for i, sp := range s.specs {
		if sp.ID == id {
			return s.sessions[i]
		}
	}
	return nil
}

// Advance slides the shared population once (newPoints may be nil for
// the first window) and then runs every cohort's window. Outcomes come
// back in spec order; per-cohort failures are recorded in their Outcome
// and never abort the other cohorts. The slide itself failing aborts
// the whole advance — no cohort ran, the arena is unchanged.
func (s *Scheduler) Advance(newPoints [][]float64) ([]Outcome, error) {
	if s.closed {
		return nil, errors.New("cohort: scheduler is closed")
	}
	if newPoints != nil {
		if err := s.slide(newPoints); err != nil {
			return nil, err
		}
	}
	out := make([]Outcome, len(s.specs))
	if s.parallel {
		var wg sync.WaitGroup
		for i := range s.sessions {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := s.sessions[i].Advance(nil)
				out[i] = Outcome{Cohort: s.specs[i].ID, Result: res, Err: err}
			}(i)
		}
		wg.Wait()
	} else {
		for i := range s.sessions {
			res, err := s.sessions[i].Advance(nil)
			out[i] = Outcome{Cohort: s.specs[i].ID, Result: res, Err: err}
		}
	}
	s.window++
	return out, nil
}

// slide validates and applies a window advance to the shared arena.
// Sessions opened on a shared arena never re-validate (the scheduler is
// the arena's owner), so the full shape and range check lives here.
func (s *Scheduler) slide(newPoints [][]float64) error {
	n, cols := s.series.NumRows(), s.series.Cols()
	if len(newPoints) != n {
		return fmt.Errorf("cohort: window advance has %d series, population is %d", len(newPoints), n)
	}
	w := len(newPoints[0])
	if w < 1 || w > cols {
		return fmt.Errorf("cohort: window advance width %d outside [1, %d]", w, cols)
	}
	for i, row := range newPoints {
		if len(row) != w {
			return fmt.Errorf("cohort: ragged window advance — series %d has %d samples, want %d", i, len(row), w)
		}
		for t, v := range row {
			if v < -1e-9 || v > s.maxValue+1e-9 {
				return fmt.Errorf("cohort: participant %d value %v at %d outside [0, %v] — normalize first", i, v, t, s.maxValue)
			}
		}
	}
	for i, row := range newPoints {
		if err := s.series.SlideRow(i, row); err != nil {
			return err
		}
	}
	return nil
}

// Close releases every cohort session. Idempotent.
func (s *Scheduler) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, sess := range s.sessions {
		if sess != nil {
			sess.Close()
		}
	}
}
