package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// frame.go is the streaming layer of the wire format: artifacts move
// between daemon processes over byte streams (net.Conn), which deliver
// arbitrary partial reads, so every message travels inside a
// length-prefixed frame:
//
//	[4-byte big-endian payload length] [payload]
//
// ReadFrame and WriteFrame are the only I/O primitives the transport
// uses; everything above them works on whole []byte messages exactly
// like the in-process code does.

// MaxFrameBytes bounds the payload length accepted from a stream. A
// frame carries one protocol message — a gossip vector, a decryption
// exchange or a handshake — whose size is a few ciphertext widths times
// the fused vector length; even a packed 2048-bit run at large K stays
// orders of magnitude below this. Without the bound, four adversarial
// header bytes could demand a 4 GiB allocation.
const MaxFrameBytes = 16 << 20

// Framing errors.
var (
	// ErrFrameTooBig reports a length prefix above MaxFrameBytes. The
	// stream is unrecoverable after it: the reader cannot know where the
	// next frame starts.
	ErrFrameTooBig = errors.New("wire: frame exceeds size bound")
)

// WriteFrame writes one length-prefixed frame. Short writes are handled
// by the io.Writer contract (Write returns an error unless all bytes
// are consumed).
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return fmt.Errorf("%w: %d > %d", ErrFrameTooBig, len(payload), MaxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	// Two writes, not one concatenated buffer: the header array lives on
	// the stack and the payload is written as-is, so framing never
	// copies the message. Buffered writers coalesce the pair.
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// AppendFrame appends one length-prefixed frame to buf — the
// allocation-conscious form for callers that batch several frames into
// one write.
func AppendFrame(buf, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrameBytes {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooBig, len(payload), MaxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...), nil
}

// ReadFrame reads one length-prefixed frame, tolerating arbitrarily
// fragmented reads (io.ReadFull under the hood — a net.Conn may deliver
// the header one byte at a time). A clean end of stream between frames
// returns io.EOF; a stream that ends inside a frame returns
// io.ErrUnexpectedEOF; a length prefix above MaxFrameBytes returns
// ErrFrameTooBig before any payload allocation.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			// Part of a header arrived, then the stream died: that is a
			// truncated frame, not a clean close.
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooBig, n, MaxFrameBytes)
	}
	if n == 0 {
		return []byte{}, nil
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}
