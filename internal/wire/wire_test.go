package wire

import (
	"bytes"
	"crypto/rand"
	"errors"
	"math/big"
	"testing"

	"chiaroscuro/internal/crypto/damgardjurik"
)

func testKey(t *testing.T) (*damgardjurik.ThresholdKey, []damgardjurik.KeyShare) {
	t.Helper()
	tk, shares, err := damgardjurik.FixtureThresholdKey(128, 1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tk, shares
}

func TestPublicKeyRoundTrip(t *testing.T) {
	tk, _ := testKey(t)
	pk := &tk.PublicKey
	buf, err := MarshalPublicKey(pk)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPublicKey(buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N.Cmp(pk.N) != 0 || back.S != pk.S {
		t.Fatal("public key round trip mismatch")
	}
	// The rebuilt key must be fully functional.
	c, err := back.Encrypt(rand.Reader, big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := back.Add(c, c); err != nil {
		t.Fatal(err)
	}
}

func TestKeyShareRoundTrip(t *testing.T) {
	_, shares := testKey(t)
	for _, ks := range shares {
		buf, err := MarshalKeyShare(ks)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalKeyShare(buf)
		if err != nil {
			t.Fatal(err)
		}
		if back.Index != ks.Index || back.Value.Cmp(ks.Value) != 0 {
			t.Fatal("key share round trip mismatch")
		}
	}
}

func TestPartialRoundTripAndUse(t *testing.T) {
	tk, shares := testKey(t)
	m := big.NewInt(31337)
	c, err := tk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	// Serialize both partials, deserialize, and combine the copies.
	var parts []damgardjurik.PartialDecryption
	for _, ks := range shares[:2] {
		p, err := tk.PartialDecrypt(ks, c)
		if err != nil {
			t.Fatal(err)
		}
		buf, err := MarshalPartial(p)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalPartial(buf)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, back)
	}
	got, err := tk.Combine(parts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(m) != 0 {
		t.Fatalf("combined deserialized partials = %v", got)
	}
}

func TestCiphertextRoundTrip(t *testing.T) {
	tk, _ := testKey(t)
	pk := &tk.PublicKey
	c, err := pk.Encrypt(rand.Reader, big.NewInt(424242))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := MarshalCiphertext(pk, c)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed width: every ciphertext serializes to the same size.
	if len(buf) != 2+4+pk.CiphertextBytes() {
		t.Fatalf("serialized size %d", len(buf))
	}
	back, err := UnmarshalCiphertext(pk, buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cmp(c) != 0 {
		t.Fatal("ciphertext round trip mismatch")
	}
}

func TestCiphertextVectorRoundTrip(t *testing.T) {
	tk, shares := testKey(t)
	pk := &tk.PublicKey
	var cs []*big.Int
	for i := int64(0); i < 5; i++ {
		c, err := pk.Encrypt(rand.Reader, big.NewInt(100+i))
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
	}
	buf, err := MarshalCiphertextVector(pk, cs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCiphertextVector(pk, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 {
		t.Fatalf("vector length %d", len(back))
	}
	for i := range back {
		if back[i].Cmp(cs[i]) != 0 {
			t.Fatalf("element %d mismatch", i)
		}
	}
	// The deserialized ciphertexts decrypt correctly.
	p1, _ := tk.PartialDecrypt(shares[0], back[3])
	p2, _ := tk.PartialDecrypt(shares[2], back[3])
	got, err := tk.Combine([]damgardjurik.PartialDecryption{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 103 {
		t.Fatalf("decrypted deserialized ciphertext = %v", got)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	tk, _ := testKey(t)
	pk := &tk.PublicKey
	cases := [][]byte{
		nil,
		{},
		{0x01},
		{0xFF, 0x01, 0, 0, 0, 0}, // wrong kind
		{0x01, 0x99},             // wrong version
		{0x01, 0x01, 0, 0, 0, 9}, // truncated field
	}
	for i, buf := range cases {
		if _, err := UnmarshalPublicKey(buf); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	if _, err := UnmarshalCiphertext(pk, []byte{0x04, 0x01, 0, 0, 0, 1, 0x00}); err == nil {
		t.Error("undersized ciphertext accepted")
	}
}

func TestUnmarshalKindMismatch(t *testing.T) {
	_, shares := testKey(t)
	buf, err := MarshalKeyShare(shares[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalPublicKey(buf); !errors.Is(err, ErrBadKind) {
		t.Fatalf("kind confusion not detected: %v", err)
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	tk, _ := testKey(t)
	buf, err := MarshalPublicKey(&tk.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, 0xAB)
	if _, err := UnmarshalPublicKey(buf); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestMarshalValidation(t *testing.T) {
	tk, _ := testKey(t)
	pk := &tk.PublicKey
	if _, err := MarshalPublicKey(nil); err == nil {
		t.Error("nil public key accepted")
	}
	if _, err := MarshalKeyShare(damgardjurik.KeyShare{Index: 0, Value: big.NewInt(1)}); err == nil {
		t.Error("index-0 share accepted")
	}
	if _, err := MarshalPartial(damgardjurik.PartialDecryption{Index: 1}); err == nil {
		t.Error("nil-value partial accepted")
	}
	if _, err := MarshalCiphertext(pk, big.NewInt(0)); err == nil {
		t.Error("zero ciphertext accepted")
	}
	if _, err := MarshalCiphertext(pk, pk.CiphertextModulus()); err == nil {
		t.Error("out-of-range ciphertext accepted")
	}
	if _, err := MarshalCiphertextVector(pk, []*big.Int{nil}); err == nil {
		t.Error("nil element accepted")
	}
}

func TestVectorOutOfRangeElementRejected(t *testing.T) {
	tk, _ := testKey(t)
	pk := &tk.PublicKey
	c, _ := pk.Encrypt(rand.Reader, big.NewInt(1))
	buf, err := MarshalCiphertextVector(pk, []*big.Int{c})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the body to all 0xFF: >= n^{s+1} must be rejected.
	body := buf[len(buf)-pk.CiphertextBytes():]
	for i := range body {
		body[i] = 0xFF
	}
	if _, err := UnmarshalCiphertextVector(pk, buf); err == nil {
		t.Fatal("out-of-range vector element accepted")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	tk, _ := testKey(t)
	a, _ := MarshalPublicKey(&tk.PublicKey)
	b, _ := MarshalPublicKey(&tk.PublicKey)
	if !bytes.Equal(a, b) {
		t.Fatal("encoding is not deterministic")
	}
}
