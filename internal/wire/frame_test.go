package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/big"
	"testing"
)

// oneByteReader delivers at most one byte per Read call — the worst
// legal fragmentation a net.Conn can produce. The original decoder
// assumed whole-message byte slices; ReadFrame must reassemble.
type oneByteReader struct {
	r io.Reader
}

func (o oneByteReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0x42},
		bytes.Repeat([]byte{0xAB}, 3),
		bytes.Repeat([]byte{0x00}, 1<<16),
	}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame(%d bytes): %v", len(p), err)
		}
	}
	for i, p := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame #%d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(p))
		}
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("drained stream: want io.EOF, got %v", err)
	}
}

// TestFrameOneByteAtATime is the partial-read regression test: a stream
// of frames delivered a single byte per Read must decode identically to
// a whole-buffer delivery.
func TestFrameOneByteAtATime(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{
		{1, 2, 3},
		{},
		bytes.Repeat([]byte{0x5A}, 257),
	}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	r := oneByteReader{r: &buf}
	for i, p := range payloads {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("one-byte ReadFrame #%d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("one-byte frame %d mismatch", i)
		}
	}
	if _, err := ReadFrame(r); !errors.Is(err, io.EOF) {
		t.Fatalf("drained one-byte stream: want io.EOF, got %v", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	var full bytes.Buffer
	if err := WriteFrame(&full, []byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	raw := full.Bytes()
	// Every proper prefix that contains at least one byte must fail with
	// ErrUnexpectedEOF (truncated header or truncated payload).
	for cut := 1; cut < len(raw); cut++ {
		_, err := ReadFrame(bytes.NewReader(raw[:cut]))
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("prefix of %d bytes: want ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

func TestFrameOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameBytes+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized header: want ErrFrameTooBig, got %v", err)
	}
	big := make([]byte, MaxFrameBytes+1)
	if err := WriteFrame(io.Discard, big); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized write: want ErrFrameTooBig, got %v", err)
	}
	if _, err := AppendFrame(nil, big); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("oversized append: want ErrFrameTooBig, got %v", err)
	}
}

func TestAppendFrameMatchesWriteFrame(t *testing.T) {
	payload := []byte("chiaroscuro")
	var w bytes.Buffer
	if err := WriteFrame(&w, payload); err != nil {
		t.Fatal(err)
	}
	appended, err := AppendFrame(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w.Bytes(), appended) {
		t.Fatalf("AppendFrame bytes differ from WriteFrame")
	}
}

func TestResidueVectorRoundTrip(t *testing.T) {
	m := new(big.Int).Lsh(big.NewInt(1), 320)
	m.Sub(m, big.NewInt(1))
	vs := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		new(big.Int).Sub(m, big.NewInt(1)),
		big.NewInt(424242),
	}
	buf, err := MarshalResidueVector(m, vs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalResidueVector(m, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vs) {
		t.Fatalf("got %d residues, want %d", len(got), len(vs))
	}
	for i := range vs {
		if got[i].Cmp(vs[i]) != 0 {
			t.Fatalf("residue %d: got %v, want %v", i, got[i], vs[i])
		}
	}
}

func TestResidueVectorRejectsOutOfRing(t *testing.T) {
	m := big.NewInt(97)
	if _, err := MarshalResidueVector(m, []*big.Int{big.NewInt(97)}); err == nil {
		t.Fatal("marshal accepted residue == modulus")
	}
	if _, err := MarshalResidueVector(m, []*big.Int{big.NewInt(-1)}); err == nil {
		t.Fatal("marshal accepted negative residue")
	}
	// A crafted body with an out-of-ring residue must fail decode.
	buf, err := MarshalResidueVector(m, []*big.Int{big.NewInt(3)})
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] = 98
	if _, err := UnmarshalResidueVector(m, buf); err == nil {
		t.Fatal("unmarshal accepted out-of-ring residue")
	}
}

func TestResidueVectorRejectsBadShape(t *testing.T) {
	m := big.NewInt(251)
	buf, err := MarshalResidueVector(m, []*big.Int{big.NewInt(1), big.NewInt(2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalResidueVector(m, buf[:len(buf)-1]); err == nil {
		t.Fatal("unmarshal accepted truncated body")
	}
	if _, err := UnmarshalResidueVector(big.NewInt(1<<20), buf); err == nil {
		t.Fatal("unmarshal accepted width mismatch")
	}
}
