package wire

import (
	"errors"
	"fmt"
	"math/big"
)

// residue.go encodes vectors of plaintext-ring residues — the accounted
// backend's "ciphertexts" and partial decryptions. The demonstration
// platform disables homomorphic operations but still moves the ring
// values between participants; a networked accounted deployment needs a
// stable encoding for them just like the real backend's artifacts. The
// layout mirrors MarshalCiphertextVector: header, count, then
// fixed-width big-endian bodies against the ring modulus, so message
// sizes stay predictable.

// kindResidueVec tags an accounted-backend residue vector.
const kindResidueVec byte = 0x05

// residueWidth is the fixed body width of one residue of the ring Z_m.
func residueWidth(m *big.Int) int { return (m.BitLen() + 7) / 8 }

// MarshalResidueVector encodes a vector of residues of Z_m (each in
// [0, m)), fixed-width against the modulus. Unlike real ciphertexts,
// zero is a valid residue.
func MarshalResidueVector(m *big.Int, vs []*big.Int) ([]byte, error) {
	if m == nil || m.Sign() <= 0 {
		return nil, errors.New("wire: invalid residue modulus")
	}
	width := residueWidth(m)
	buf := make([]byte, 0, 2+4+4+len(vs)*width)
	buf = append(buf, header(kindResidueVec)...)
	buf = appendUint32(buf, uint32(len(vs)))
	body := make([]byte, width)
	for i, v := range vs {
		if v == nil || v.Sign() < 0 || v.Cmp(m) >= 0 {
			return nil, fmt.Errorf("wire: residue %d outside ring", i)
		}
		v.FillBytes(body)
		buf = append(buf, body...)
	}
	return buf, nil
}

// UnmarshalResidueVector decodes a residue vector and validates every
// element against the modulus.
func UnmarshalResidueVector(m *big.Int, buf []byte) ([]*big.Int, error) {
	if m == nil || m.Sign() <= 0 {
		return nil, errors.New("wire: invalid residue modulus")
	}
	r, err := checkHeader(buf, kindResidueVec)
	if err != nil {
		return nil, err
	}
	count, err := r.uint32()
	if err != nil {
		return nil, err
	}
	width := residueWidth(m)
	if uint64(len(r.buf)) != uint64(count)*uint64(width) {
		return nil, fmt.Errorf("wire: residue vector body %d bytes, want %d", len(r.buf), int(count)*width)
	}
	out := make([]*big.Int, count)
	for i := range out {
		v := new(big.Int).SetBytes(r.buf[:width])
		r.buf = r.buf[width:]
		if v.Cmp(m) >= 0 {
			return nil, fmt.Errorf("wire: residue %d outside ring", i)
		}
		out[i] = v
	}
	return out, nil
}

// AppendUint32 appends a length-prefixed 4-byte big-endian scalar — the
// exported form of the internal field builder, for composite messages
// (the transport envelope) that embed scalars next to wire artifacts.
func AppendUint32(buf []byte, v uint32) []byte { return appendUint32(buf, v) }

// AppendBytes appends one length-prefixed opaque field.
func AppendBytes(buf, payload []byte) []byte { return appendField(buf, payload) }

// FieldReader walks the length-prefixed fields of a composite message.
type FieldReader struct {
	r reader
}

// NewFieldReader wraps buf (no artifact header expected).
func NewFieldReader(buf []byte) *FieldReader { return &FieldReader{r: reader{buf: buf}} }

// Uint32 reads one length-prefixed 4-byte scalar field.
func (fr *FieldReader) Uint32() (uint32, error) { return fr.r.uint32() }

// Bytes reads one length-prefixed opaque field. The returned slice
// aliases the input buffer.
func (fr *FieldReader) Bytes() ([]byte, error) { return fr.r.field() }

// Rest returns the unread remainder of the buffer.
func (fr *FieldReader) Rest() []byte { return fr.r.buf }

// Done errors if any bytes remain unread.
func (fr *FieldReader) Done() error { return fr.r.done() }
