package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/big"
	"testing"
)

// FuzzFrame feeds adversarial byte streams to the framing layer:
// oversized length prefixes, truncations, garbage headers, multiple
// concatenated frames. ReadFrame must never panic, never allocate past
// MaxFrameBytes, and every frame it does accept must round-trip through
// WriteFrame to the identical stream position.
func FuzzFrame(f *testing.F) {
	// Seeds: a clean two-frame stream, an empty frame, truncations, an
	// oversized length prefix and plain garbage.
	var clean bytes.Buffer
	if err := WriteFrame(&clean, []byte("diptych")); err != nil {
		f.Fatal(err)
	}
	if err := WriteFrame(&clean, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(clean.Bytes())
	f.Add(clean.Bytes()[:3])
	f.Add(clean.Bytes()[:5])
	var over [8]byte
	binary.BigEndian.PutUint32(over[:4], MaxFrameBytes+1)
	f.Add(over[:])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0x41}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var reassembled bytes.Buffer
		frames := 0
		for {
			payload, err := ReadFrame(r)
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, ErrFrameTooBig) {
					break
				}
				t.Fatalf("unexpected ReadFrame error class: %v", err)
			}
			frames++
			if err := WriteFrame(&reassembled, payload); err != nil {
				t.Fatalf("re-encode of accepted frame failed: %v", err)
			}
		}
		// Every accepted frame re-encodes to the exact bytes it was
		// decoded from: the accepted prefix of the stream is canonical.
		if got := reassembled.Bytes(); !bytes.Equal(got, data[:len(got)]) {
			t.Fatalf("re-encoded stream diverges after %d frames", frames)
		}
	})
}

// FuzzUnmarshalResidueVector hardens the accounted-backend artifact the
// same way the ciphertext targets harden the real one.
func FuzzUnmarshalResidueVector(f *testing.F) {
	m := new(big.Int).Lsh(big.NewInt(1), 320)
	m.Sub(m, big.NewInt(1))
	buf, err := MarshalResidueVector(m, []*big.Int{big.NewInt(7), big.NewInt(0), big.NewInt(1 << 30)})
	if err != nil {
		f.Fatal(err)
	}
	seedMutations(f, buf)
	f.Fuzz(func(t *testing.T, data []byte) {
		vs, err := UnmarshalResidueVector(m, data)
		if err != nil {
			return
		}
		out, err := MarshalResidueVector(m, vs)
		if err != nil {
			t.Fatalf("re-marshal of accepted residue vector failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("residue vector round-trip not canonical")
		}
	})
}
