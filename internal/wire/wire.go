// Package wire provides stable binary encodings for the protocol's
// transportable artifacts: public keys, threshold key material, key
// shares, ciphertexts and partial decryptions. A real Chiaroscuro
// deployment moves these between devices; the demonstration platform
// stores them. The format is deliberately simple and self-describing:
//
//	[1 byte kind] [1 byte version] { [4-byte big-endian length] [payload] }*
//
// where each payload is the minimal big-endian two's-complement-free
// magnitude of a non-negative big.Int, or a 4-byte big-endian integer for
// scalar fields. All values in the protocol are non-negative residues, so
// no sign bytes are needed.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"chiaroscuro/internal/crypto/damgardjurik"
)

// Artifact kind tags.
const (
	kindPublicKey byte = 0x01
	kindKeyShare  byte = 0x02
	kindPartial   byte = 0x03
	kindCipher    byte = 0x04
)

const version byte = 1

// Encoding errors.
var (
	ErrTruncated = errors.New("wire: truncated input")
	ErrBadKind   = errors.New("wire: unexpected artifact kind")
	ErrBadVer    = errors.New("wire: unsupported version")
)

// maxDegree bounds the Damgård–Jurik degree accepted from the wire.
// Building a public key materializes n^{s+1}, so an adversarial s would
// otherwise turn a few input bytes into unbounded computation; no
// supported protocol configuration comes near this bound.
const maxDegree = 16

// appendField appends a length-prefixed big-endian field.
func appendField(buf []byte, payload []byte) []byte {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(len(payload)))
	buf = append(buf, l[:]...)
	return append(buf, payload...)
}

func appendInt(buf []byte, v *big.Int) []byte {
	if v == nil || v.Sign() < 0 {
		// Negative values never occur in valid artifacts; encode as
		// empty, which round-trips to zero and fails validation later.
		return appendField(buf, nil)
	}
	return appendField(buf, v.Bytes())
}

func appendUint32(buf []byte, v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return appendField(buf, b[:])
}

// reader walks length-prefixed fields.
type reader struct {
	buf []byte
}

func (r *reader) field() ([]byte, error) {
	if len(r.buf) < 4 {
		return nil, ErrTruncated
	}
	n := binary.BigEndian.Uint32(r.buf[:4])
	r.buf = r.buf[4:]
	if uint32(len(r.buf)) < n {
		return nil, ErrTruncated
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out, nil
}

func (r *reader) bigInt() (*big.Int, error) {
	f, err := r.field()
	if err != nil {
		return nil, err
	}
	return new(big.Int).SetBytes(f), nil
}

func (r *reader) uint32() (uint32, error) {
	f, err := r.field()
	if err != nil {
		return 0, err
	}
	if len(f) != 4 {
		return 0, fmt.Errorf("wire: scalar field of %d bytes", len(f))
	}
	return binary.BigEndian.Uint32(f), nil
}

func (r *reader) done() error {
	if len(r.buf) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf))
	}
	return nil
}

func header(kind byte) []byte { return []byte{kind, version} }

func checkHeader(buf []byte, kind byte) (*reader, error) {
	if len(buf) < 2 {
		return nil, ErrTruncated
	}
	if buf[0] != kind {
		return nil, fmt.Errorf("%w: got 0x%02x, want 0x%02x", ErrBadKind, buf[0], kind)
	}
	if buf[1] != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVer, buf[1])
	}
	return &reader{buf: buf[2:]}, nil
}

// MarshalPublicKey encodes (n, s).
func MarshalPublicKey(pk *damgardjurik.PublicKey) ([]byte, error) {
	if pk == nil || pk.N == nil {
		return nil, errors.New("wire: nil public key")
	}
	buf := header(kindPublicKey)
	buf = appendInt(buf, pk.N)
	buf = appendUint32(buf, uint32(pk.S))
	return buf, nil
}

// UnmarshalPublicKey decodes a public key and rebuilds its caches.
func UnmarshalPublicKey(buf []byte) (*damgardjurik.PublicKey, error) {
	r, err := checkHeader(buf, kindPublicKey)
	if err != nil {
		return nil, err
	}
	n, err := r.bigInt()
	if err != nil {
		return nil, err
	}
	s, err := r.uint32()
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if s < 1 || s > maxDegree {
		return nil, fmt.Errorf("wire: degree %d outside [1, %d]", s, maxDegree)
	}
	return damgardjurik.NewPublicKey(n, int(s))
}

// MarshalKeyShare encodes a secret key share. Treat the output as secret
// material.
func MarshalKeyShare(ks damgardjurik.KeyShare) ([]byte, error) {
	if ks.Value == nil || ks.Index < 1 {
		return nil, errors.New("wire: invalid key share")
	}
	buf := header(kindKeyShare)
	buf = appendUint32(buf, uint32(ks.Index))
	buf = appendInt(buf, ks.Value)
	return buf, nil
}

// UnmarshalKeyShare decodes a key share.
func UnmarshalKeyShare(buf []byte) (damgardjurik.KeyShare, error) {
	r, err := checkHeader(buf, kindKeyShare)
	if err != nil {
		return damgardjurik.KeyShare{}, err
	}
	idx, err := r.uint32()
	if err != nil {
		return damgardjurik.KeyShare{}, err
	}
	v, err := r.bigInt()
	if err != nil {
		return damgardjurik.KeyShare{}, err
	}
	if err := r.done(); err != nil {
		return damgardjurik.KeyShare{}, err
	}
	if idx < 1 {
		return damgardjurik.KeyShare{}, errors.New("wire: key share index 0")
	}
	return damgardjurik.KeyShare{Index: int(idx), Value: v}, nil
}

// MarshalPartial encodes a partial decryption.
func MarshalPartial(p damgardjurik.PartialDecryption) ([]byte, error) {
	if p.Value == nil || p.Index < 1 {
		return nil, errors.New("wire: invalid partial decryption")
	}
	buf := header(kindPartial)
	buf = appendUint32(buf, uint32(p.Index))
	buf = appendInt(buf, p.Value)
	return buf, nil
}

// UnmarshalPartial decodes a partial decryption.
func UnmarshalPartial(buf []byte) (damgardjurik.PartialDecryption, error) {
	r, err := checkHeader(buf, kindPartial)
	if err != nil {
		return damgardjurik.PartialDecryption{}, err
	}
	idx, err := r.uint32()
	if err != nil {
		return damgardjurik.PartialDecryption{}, err
	}
	v, err := r.bigInt()
	if err != nil {
		return damgardjurik.PartialDecryption{}, err
	}
	if err := r.done(); err != nil {
		return damgardjurik.PartialDecryption{}, err
	}
	if idx < 1 {
		return damgardjurik.PartialDecryption{}, errors.New("wire: partial index 0")
	}
	return damgardjurik.PartialDecryption{Index: int(idx), Value: v}, nil
}

// MarshalCiphertext encodes one ciphertext, fixed-width against the given
// public key so message sizes are predictable (the basis of the cost
// accounting).
func MarshalCiphertext(pk *damgardjurik.PublicKey, c *big.Int) ([]byte, error) {
	if pk == nil {
		return nil, errors.New("wire: nil public key")
	}
	if c == nil || c.Sign() <= 0 || c.Cmp(pk.CiphertextModulus()) >= 0 {
		return nil, errors.New("wire: ciphertext out of range")
	}
	width := pk.CiphertextBytes()
	buf := make([]byte, 0, 2+4+width)
	buf = append(buf, header(kindCipher)...)
	payload := make([]byte, width)
	c.FillBytes(payload)
	return appendField(buf, payload), nil
}

// UnmarshalCiphertext decodes a ciphertext and validates it against the
// public key.
func UnmarshalCiphertext(pk *damgardjurik.PublicKey, buf []byte) (*big.Int, error) {
	r, err := checkHeader(buf, kindCipher)
	if err != nil {
		return nil, err
	}
	f, err := r.field()
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if len(f) != pk.CiphertextBytes() {
		return nil, fmt.Errorf("wire: ciphertext width %d, want %d", len(f), pk.CiphertextBytes())
	}
	c := new(big.Int).SetBytes(f)
	if c.Sign() <= 0 || c.Cmp(pk.CiphertextModulus()) >= 0 {
		return nil, errors.New("wire: ciphertext out of range")
	}
	return c, nil
}

// MarshalCiphertextVector encodes a vector of ciphertexts (one gossip
// message's payload) compactly: header, count, then fixed-width bodies.
func MarshalCiphertextVector(pk *damgardjurik.PublicKey, cs []*big.Int) ([]byte, error) {
	if pk == nil {
		return nil, errors.New("wire: nil public key")
	}
	width := pk.CiphertextBytes()
	buf := make([]byte, 0, 2+4+len(cs)*width)
	buf = append(buf, header(kindCipher)...)
	buf = appendUint32(buf, uint32(len(cs)))
	body := make([]byte, width)
	for i, c := range cs {
		if c == nil || c.Sign() <= 0 || c.Cmp(pk.CiphertextModulus()) >= 0 {
			return nil, fmt.Errorf("wire: ciphertext %d out of range", i)
		}
		c.FillBytes(body)
		buf = append(buf, body...)
	}
	return buf, nil
}

// UnmarshalCiphertextVector decodes a ciphertext vector.
func UnmarshalCiphertextVector(pk *damgardjurik.PublicKey, buf []byte) ([]*big.Int, error) {
	r, err := checkHeader(buf, kindCipher)
	if err != nil {
		return nil, err
	}
	count, err := r.uint32()
	if err != nil {
		return nil, err
	}
	width := pk.CiphertextBytes()
	if uint64(len(r.buf)) != uint64(count)*uint64(width) {
		return nil, fmt.Errorf("wire: vector body %d bytes, want %d", len(r.buf), int(count)*width)
	}
	out := make([]*big.Int, count)
	for i := range out {
		c := new(big.Int).SetBytes(r.buf[:width])
		r.buf = r.buf[width:]
		if c.Sign() <= 0 || c.Cmp(pk.CiphertextModulus()) >= 0 {
			return nil, fmt.Errorf("wire: ciphertext %d out of range", i)
		}
		out[i] = c
	}
	return out, nil
}
