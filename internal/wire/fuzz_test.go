// Fuzz targets for the artifact decode paths: a real deployment feeds
// these bytes straight off the network, so every Unmarshal must survive
// adversarial input without panicking, and anything it does accept must
// re-encode to a semantically identical artifact.
//
//	go test -fuzz FuzzUnmarshalCiphertext ./internal/wire
//
// Under plain `go test` each target runs its seed corpus only.
package wire

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"

	"chiaroscuro/internal/crypto/damgardjurik"
)

// fuzzKey is the fixture key every target validates against (decoding is
// key-relative for ciphertexts: range checks depend on n^{s+1}).
func fuzzKey(f *testing.F) *damgardjurik.ThresholdKey {
	f.Helper()
	tk, _, err := damgardjurik.FixtureThresholdKey(128, 1, 4, 2)
	if err != nil {
		f.Fatal(err)
	}
	return tk
}

// seedMutations adds buf plus a few structured corruptions of it —
// truncations, a flipped kind byte, a bumped version and a length-prefix
// lie — so the corpus starts on the interesting edges even before the
// fuzzer mutates.
func seedMutations(f *testing.F, buf []byte) {
	f.Helper()
	f.Add(buf)
	for _, cut := range []int{0, 1, 2, len(buf) / 2, len(buf) - 1} {
		if cut >= 0 && cut < len(buf) {
			f.Add(buf[:cut])
		}
	}
	if len(buf) > 0 {
		kind := append([]byte(nil), buf...)
		kind[0] ^= 0xFF
		f.Add(kind)
	}
	if len(buf) > 1 {
		ver := append([]byte(nil), buf...)
		ver[1]++
		f.Add(ver)
	}
	if len(buf) > 5 {
		lie := append([]byte(nil), buf...)
		lie[5] ^= 0x80 // corrupt the first length prefix
		f.Add(lie)
	}
}

func FuzzUnmarshalCiphertext(f *testing.F) {
	tk := fuzzKey(f)
	ct, err := tk.Encrypt(rand.Reader, big.NewInt(123456789))
	if err != nil {
		f.Fatal(err)
	}
	buf, err := MarshalCiphertext(&tk.PublicKey, ct)
	if err != nil {
		f.Fatal(err)
	}
	seedMutations(f, buf)
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := UnmarshalCiphertext(&tk.PublicKey, data)
		if err != nil {
			return
		}
		// Accepted ciphertexts are fixed-width, so the encoding is
		// canonical: re-marshaling must reproduce the input exactly.
		back, err := MarshalCiphertext(&tk.PublicKey, c)
		if err != nil {
			t.Fatalf("accepted ciphertext does not re-marshal: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("ciphertext re-encoding differs from accepted input")
		}
	})
}

func FuzzUnmarshalCiphertextVector(f *testing.F) {
	tk := fuzzKey(f)
	cs := make([]*big.Int, 3)
	for i := range cs {
		c, err := tk.Encrypt(rand.Reader, big.NewInt(int64(i+1)))
		if err != nil {
			f.Fatal(err)
		}
		cs[i] = c
	}
	buf, err := MarshalCiphertextVector(&tk.PublicKey, cs)
	if err != nil {
		f.Fatal(err)
	}
	seedMutations(f, buf)
	f.Fuzz(func(t *testing.T, data []byte) {
		vs, err := UnmarshalCiphertextVector(&tk.PublicKey, data)
		if err != nil {
			return
		}
		back, err := MarshalCiphertextVector(&tk.PublicKey, vs)
		if err != nil {
			t.Fatalf("accepted vector does not re-marshal: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("vector re-encoding differs from accepted input")
		}
	})
}

func FuzzUnmarshalPartial(f *testing.F) {
	tk := fuzzKey(f)
	_, shares, err := damgardjurik.FixtureThresholdKey(128, 1, 4, 2)
	if err != nil {
		f.Fatal(err)
	}
	ct, err := tk.Encrypt(rand.Reader, big.NewInt(42))
	if err != nil {
		f.Fatal(err)
	}
	pd, err := tk.PartialDecrypt(shares[0], ct)
	if err != nil {
		f.Fatal(err)
	}
	buf, err := MarshalPartial(pd)
	if err != nil {
		f.Fatal(err)
	}
	seedMutations(f, buf)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalPartial(data)
		if err != nil {
			return
		}
		// big.Int fields are minimal-magnitude, so leading zeros make the
		// encoding non-canonical; the contract is semantic round-trip.
		back, err := MarshalPartial(p)
		if err != nil {
			t.Fatalf("accepted partial does not re-marshal: %v", err)
		}
		again, err := UnmarshalPartial(back)
		if err != nil {
			t.Fatalf("re-marshaled partial does not decode: %v", err)
		}
		if again.Index != p.Index || again.Value.Cmp(p.Value) != 0 {
			t.Fatalf("partial round trip drifted")
		}
	})
}

func FuzzUnmarshalKeyShare(f *testing.F) {
	_, shares, err := damgardjurik.FixtureThresholdKey(128, 1, 4, 2)
	if err != nil {
		f.Fatal(err)
	}
	buf, err := MarshalKeyShare(shares[1])
	if err != nil {
		f.Fatal(err)
	}
	seedMutations(f, buf)
	f.Fuzz(func(t *testing.T, data []byte) {
		ks, err := UnmarshalKeyShare(data)
		if err != nil {
			return
		}
		back, err := MarshalKeyShare(ks)
		if err != nil {
			t.Fatalf("accepted key share does not re-marshal: %v", err)
		}
		again, err := UnmarshalKeyShare(back)
		if err != nil {
			t.Fatalf("re-marshaled key share does not decode: %v", err)
		}
		if again.Index != ks.Index || again.Value.Cmp(ks.Value) != 0 {
			t.Fatalf("key share round trip drifted")
		}
	})
}

func FuzzUnmarshalPublicKey(f *testing.F) {
	tk := fuzzKey(f)
	buf, err := MarshalPublicKey(&tk.PublicKey)
	if err != nil {
		f.Fatal(err)
	}
	seedMutations(f, buf)
	f.Fuzz(func(t *testing.T, data []byte) {
		pk, err := UnmarshalPublicKey(data)
		if err != nil {
			return
		}
		if pk.S < 1 || pk.S > 16 {
			t.Fatalf("accepted degree %d outside the wire bound", pk.S)
		}
		back, err := MarshalPublicKey(pk)
		if err != nil {
			t.Fatalf("accepted public key does not re-marshal: %v", err)
		}
		again, err := UnmarshalPublicKey(back)
		if err != nil {
			t.Fatalf("re-marshaled public key does not decode: %v", err)
		}
		if again.N.Cmp(pk.N) != 0 || again.S != pk.S {
			t.Fatalf("public key round trip drifted")
		}
	})
}
