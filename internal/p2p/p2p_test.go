package p2p

import (
	"testing"
)

// echoProto records activations and counts received messages; on its
// first activation it sends a ping to node 0.
type echoProto struct {
	id          NodeID
	activations int
	received    []Message
	resets      int
}

func (e *echoProto) NextCycle(ctx *Context) {
	e.activations++
	e.received = append(e.received, ctx.Inbox()...)
	if e.activations == 1 && e.id != 0 {
		_ = ctx.Send(0, "ping", 10)
	}
}

func (e *echoProto) Reset() { e.resets++ }

func newEchoNet(t *testing.T, n int, opts Options) (*Network, []*echoProto) {
	t.Helper()
	protos := make([]*echoProto, n)
	nw, err := New(n, func(id NodeID) Protocol {
		p := &echoProto{id: id}
		protos[id] = p
		return p
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return nw, protos
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, func(NodeID) Protocol { return &echoProto{} }, Options{}); err == nil {
		t.Fatal("n=1 should error")
	}
	if _, err := New(3, nil, Options{}); err == nil {
		t.Fatal("nil factory should error")
	}
	if _, err := New(3, func(NodeID) Protocol { return nil }, Options{}); err == nil {
		t.Fatal("factory returning nil should error")
	}
	if _, err := New(3, func(NodeID) Protocol { return &echoProto{} }, Options{Churn: ChurnModel{CrashProb: 2}}); err == nil {
		t.Fatal("invalid churn should error")
	}
}

func TestEveryAliveNodeActivatedOncePerCycle(t *testing.T) {
	nw, protos := newEchoNet(t, 10, Options{Seed: 1})
	nw.Run(5)
	for i, p := range protos {
		if p.activations != 5 {
			t.Fatalf("node %d activated %d times, want 5", i, p.activations)
		}
	}
	if nw.Cycle() != 5 {
		t.Fatalf("cycle = %d", nw.Cycle())
	}
}

func TestMessagesDeliveredNextCycle(t *testing.T) {
	nw, protos := newEchoNet(t, 4, Options{Seed: 2})
	nw.RunCycle()
	// Pings sent during cycle 0 must not be seen during cycle 0.
	if len(protos[0].received) != 0 {
		t.Fatalf("node 0 received %d messages in the sending cycle", len(protos[0].received))
	}
	nw.RunCycle()
	if len(protos[0].received) != 3 {
		t.Fatalf("node 0 received %d messages after cycle 2, want 3", len(protos[0].received))
	}
	for _, m := range protos[0].received {
		if m.Payload != "ping" || m.Bytes != 10 {
			t.Fatalf("unexpected message %+v", m)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	nw, _ := newEchoNet(t, 5, Options{Seed: 3})
	nw.Run(2)
	st := nw.Stats()
	if st.MessagesSent != 4 {
		t.Fatalf("messages sent = %d, want 4", st.MessagesSent)
	}
	if st.BytesSent != 40 {
		t.Fatalf("bytes sent = %d, want 40", st.BytesSent)
	}
	if st.Cycles != 2 {
		t.Fatalf("cycles = %d", st.Cycles)
	}
}

func TestSendValidation(t *testing.T) {
	var sendErrTo, sendErrBytes error
	nw, err := New(3, func(id NodeID) Protocol {
		return protoFunc(func(ctx *Context) {
			if ctx.ID() == 0 && ctx.Cycle() == 0 {
				sendErrTo = ctx.Send(99, "x", 1)
				sendErrBytes = ctx.Send(1, "x", -1)
			}
		})
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nw.RunCycle()
	if sendErrTo == nil {
		t.Fatal("out-of-range destination should error")
	}
	if sendErrBytes == nil {
		t.Fatal("negative bytes should error")
	}
}

// protoFunc adapts a function to Protocol.
type protoFunc func(*Context)

func (f protoFunc) NextCycle(ctx *Context) { f(ctx) }

func TestRandomPeerNeverSelfAlwaysAlive(t *testing.T) {
	seen := map[NodeID]bool{}
	nw, err := New(6, func(id NodeID) Protocol {
		return protoFunc(func(ctx *Context) {
			if ctx.ID() != 2 {
				return
			}
			for i := 0; i < 50; i++ {
				p, ok := ctx.RandomPeer()
				if !ok {
					t.Error("no peer found")
					return
				}
				if p == 2 {
					t.Error("sampled self")
				}
				seen[p] = true
			}
		})
	}, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(3)
	if len(seen) != 5 {
		t.Fatalf("expected all 5 peers sampled eventually, got %d", len(seen))
	}
}

func TestRandomPeersDistinct(t *testing.T) {
	nw, err := New(10, func(id NodeID) Protocol {
		return protoFunc(func(ctx *Context) {
			if ctx.ID() != 0 || ctx.Cycle() != 0 {
				return
			}
			peers := ctx.RandomPeers(5)
			if len(peers) != 5 {
				t.Errorf("got %d peers, want 5", len(peers))
			}
			seen := map[NodeID]bool{0: true}
			for _, p := range peers {
				if seen[p] {
					t.Errorf("duplicate or self peer %d", p)
				}
				seen[p] = true
			}
		})
	}, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	nw.RunCycle()
}

func TestRandomPeersMoreThanPopulation(t *testing.T) {
	nw, err := New(3, func(id NodeID) Protocol {
		return protoFunc(func(ctx *Context) {
			if ctx.ID() != 0 || ctx.Cycle() != 0 {
				return
			}
			peers := ctx.RandomPeers(10)
			if len(peers) != 2 {
				t.Errorf("got %d peers, want 2 (everyone else)", len(peers))
			}
		})
	}, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	nw.RunCycle()
}

func TestChurnCrashesAndRejoins(t *testing.T) {
	nw, _ := newEchoNet(t, 50, Options{
		Seed:  7,
		Churn: ChurnModel{CrashProb: 0.2, RejoinProb: 0.5},
	})
	nw.Run(20)
	st := nw.Stats()
	if st.Crashes == 0 {
		t.Fatal("no crashes with 20% crash probability")
	}
	if st.Rejoins == 0 {
		t.Fatal("no rejoins with 50% rejoin probability")
	}
	if nw.AliveCount() == 50 || nw.AliveCount() == 0 {
		// Statistically all-alive or all-dead after 20 cycles of this
		// churn is (almost) impossible; treat as failure signal.
		t.Fatalf("suspicious alive count %d", nw.AliveCount())
	}
}

func TestCrashedNodesNotActivatedAndDropMessages(t *testing.T) {
	// CrashProb=1: everyone dies at cycle start; nobody is activated.
	nw, protos := newEchoNet(t, 4, Options{
		Seed:  8,
		Churn: ChurnModel{CrashProb: 1},
	})
	nw.Run(3)
	for i, p := range protos {
		if p.activations != 0 {
			t.Fatalf("dead node %d was activated %d times", i, p.activations)
		}
	}
	if nw.AliveCount() != 0 {
		t.Fatalf("alive = %d, want 0", nw.AliveCount())
	}
}

func TestMessagesToDeadNodesDropped(t *testing.T) {
	// Nodes continuously message node 0; node 0 crashes under heavy
	// churn at some point, and sends during its dead cycles must be
	// counted as dropped.
	nw, err := New(20, func(id NodeID) Protocol {
		return protoFunc(func(ctx *Context) {
			if ctx.ID() != 0 {
				_ = ctx.Send(0, "x", 5)
			}
		})
	}, Options{Seed: 10, Churn: ChurnModel{CrashProb: 0.3, RejoinProb: 0}})
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(25)
	st := nw.Stats()
	if st.MessagesDropped == 0 {
		t.Fatalf("no drops despite crashes: %+v", st)
	}
	if st.MessagesDropped > st.MessagesSent {
		t.Fatalf("dropped > sent: %+v", st)
	}
}

func TestResetOnRejoin(t *testing.T) {
	nw, protos := newEchoNet(t, 30, Options{
		Seed:  11,
		Churn: ChurnModel{CrashProb: 0.3, RejoinProb: 0.9, ResetOnRejoin: true},
	})
	nw.Run(20)
	st := nw.Stats()
	if st.Rejoins == 0 {
		t.Fatal("expected rejoins")
	}
	resets := 0
	for _, p := range protos {
		resets += p.resets
	}
	if resets != st.Rejoins {
		t.Fatalf("resets = %d, rejoins = %d — must match", resets, st.Rejoins)
	}
}

func TestKeepStateOnRejoinByDefault(t *testing.T) {
	nw, protos := newEchoNet(t, 30, Options{
		Seed:  12,
		Churn: ChurnModel{CrashProb: 0.3, RejoinProb: 0.9},
	})
	nw.Run(20)
	for _, p := range protos {
		if p.resets != 0 {
			t.Fatal("Reset called despite ResetOnRejoin=false")
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() Stats {
		nw, _ := newEchoNet(t, 20, Options{
			Seed:  13,
			Churn: ChurnModel{CrashProb: 0.1, RejoinProb: 0.3},
		})
		nw.Run(15)
		return nw.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different stats: %+v vs %+v", a, b)
	}
}

func TestForEachAliveAndProtocolAccess(t *testing.T) {
	nw, protos := newEchoNet(t, 5, Options{Seed: 14})
	count := 0
	nw.ForEachAlive(func(id NodeID, p Protocol) {
		if p != protos[id] {
			t.Fatalf("protocol mismatch for %d", id)
		}
		count++
	})
	if count != 5 {
		t.Fatalf("visited %d nodes", count)
	}
	if nw.Size() != 5 {
		t.Fatalf("size = %d", nw.Size())
	}
	if !nw.Alive(0) || nw.Alive(-1) || nw.Alive(99) {
		t.Fatal("Alive bounds checks failed")
	}
}
