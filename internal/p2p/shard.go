package p2p

import "sync"

// shard.go implements the parallel cycle scheduler: the node id space is
// partitioned into contiguous shards, one worker goroutine activates each
// shard's alive nodes in ascending id order, and the messages they send
// are buffered in per-(source shard, destination shard) buckets. After
// the barrier, buckets are merged into the destination pending queues in
// stable (source-shard, send-order) order — which, because shards are
// contiguous and activations within a shard run in id order, is exactly
// the ascending-sender-id delivery order the sequential scheduler
// produces. Combined with the per-node RNGs (see the package determinism
// contract in p2p.go), a sharded cycle is bit-identical to a sequential
// one.
//
// All buffers are retained and reused across cycles (truncated, never
// reallocated), so a steady-state cycle allocates nothing on the
// messaging path.

// routed is a buffered message together with its destination.
type routed struct {
	to  NodeID
	msg Message
}

// delayedRouted is a Conditioner-delayed buffered message together with
// its destination and delivery cycle.
type delayedRouted struct {
	to  NodeID
	due int
	msg Message
}

// shardRunner is one worker's slice of the population plus its private
// outbox buckets and cost counters for the cycle in flight.
type shardRunner struct {
	lo, hi int // node id range [lo, hi)
	// out[d] buffers the messages this shard's nodes sent to nodes of
	// destination shard d during the current cycle, in send order.
	out [][]routed
	// delayedOut[d] buffers Conditioner-delayed messages the same way;
	// merged into the destinations' delayed queues at the barrier.
	delayedOut [][]delayedRouted
	// Per-cycle cost counters, folded into Network.stats at the barrier.
	sent       int
	dropped    int
	bytes      int64
	faultDrops int
	duplicates int
	delayed    int

	// pad keeps hot per-shard counters on distinct cache lines so the
	// workers do not false-share while counting.
	_ [64]byte
}

// makeShards partitions n nodes into p contiguous shards of near-equal
// size.
func makeShards(n, p int) []shardRunner {
	q := (n + p - 1) / p
	shards := make([]shardRunner, p)
	for s := range shards {
		lo := s * q
		hi := lo + q
		if hi > n {
			hi = n
		}
		if lo > n {
			lo = n
		}
		shards[s] = shardRunner{lo: lo, hi: hi, out: make([][]routed, p), delayedOut: make([][]delayedRouted, p)}
	}
	return shards
}

// shardOf maps a node id to its shard index for the given shard layout.
func (nw *Network) shardOf(id NodeID) int {
	q := nw.shards[0].hi - nw.shards[0].lo
	if q <= 0 {
		return 0
	}
	s := int(id) / q
	if s >= len(nw.shards) {
		s = len(nw.shards) - 1
	}
	return s
}

// send buffers a message in the shard's outbox. Destination validation
// already happened in Network.send; liveness is stable for the whole
// cycle (churn applies only at cycle start), so dropping here is
// equivalent to dropping at merge time.
func (sh *shardRunner) send(nw *Network, from, to NodeID, payload any, bytes int) error {
	sh.sent++
	sh.bytes += int64(bytes)
	if !nw.nodes[to].alive {
		sh.dropped++
		return nil
	}
	m := Message{From: from, Payload: payload, Bytes: bytes}
	if nw.cond != nil {
		// Safe from a worker: the Conditioner contract confines its
		// mutable state to the sender, like the node RNGs.
		v := nw.cond.Condition(from, to, nw.cycle, bytes)
		if v.Drop {
			sh.faultDrops++
			sh.dropped++
			return nil
		}
		sh.enqueue(nw, to, m, v.Delay)
		if v.Duplicate {
			sh.duplicates++
			sh.enqueue(nw, to, m, v.DupDelay)
		}
		return nil
	}
	d := nw.shardOf(to)
	sh.out[d] = append(sh.out[d], routed{to: to, msg: m})
	return nil
}

// enqueue buffers one delivered copy in the regular or delayed bucket
// for its destination shard.
func (sh *shardRunner) enqueue(nw *Network, to NodeID, m Message, delay int) {
	d := nw.shardOf(to)
	if delay <= 0 {
		sh.out[d] = append(sh.out[d], routed{to: to, msg: m})
		return
	}
	sh.delayed++
	sh.delayedOut[d] = append(sh.delayedOut[d], delayedRouted{to: to, due: nw.cycle + 1 + delay, msg: m})
}

// runCycleSharded activates all alive nodes across the shard workers and
// then performs the deterministic reduction: stats and outboxes are
// folded in ascending shard order.
func (nw *Network) runCycleSharded() {
	var wg sync.WaitGroup
	for s := range nw.shards {
		wg.Add(1)
		go func(sh *shardRunner) {
			defer wg.Done()
			for id := sh.lo; id < sh.hi; id++ {
				slot := &nw.nodes[id]
				if !slot.alive || slot.stalled {
					continue
				}
				// The slot's reusable context (see nodeSlot.ctx): each
				// node belongs to exactly one shard, so no other worker
				// touches it.
				slot.ctx = Context{nw: nw, id: NodeID(id), shard: sh}
				slot.proto.NextCycle(&slot.ctx)
				slot.ctx = Context{}
			}
		}(&nw.shards[s])
	}
	wg.Wait()

	// Deterministic merge. The destination loop can run in parallel
	// (distinct d touch disjoint pending queues), but the source loop
	// order is what defines the canonical ascending-sender-id delivery
	// order and must stay ascending.
	if len(nw.shards) >= 4 {
		var mg sync.WaitGroup
		for d := range nw.shards {
			mg.Add(1)
			go func(d int) {
				defer mg.Done()
				nw.mergeInto(d)
			}(d)
		}
		mg.Wait()
	} else {
		for d := range nw.shards {
			nw.mergeInto(d)
		}
	}
	for s := range nw.shards {
		sh := &nw.shards[s]
		nw.stats.MessagesSent += sh.sent
		nw.stats.MessagesDropped += sh.dropped
		nw.stats.BytesSent += sh.bytes
		nw.stats.FaultDrops += sh.faultDrops
		nw.stats.Duplicates += sh.duplicates
		nw.stats.Delayed += sh.delayed
		sh.sent, sh.dropped, sh.bytes = 0, 0, 0
		sh.faultDrops, sh.duplicates, sh.delayed = 0, 0, 0
	}
}

// mergeInto appends, in ascending source-shard order, every message
// destined to shard d onto its destination's pending (or delayed)
// queue, then resets the buckets for reuse.
func (nw *Network) mergeInto(d int) {
	for s := range nw.shards {
		bucket := nw.shards[s].out[d]
		for i := range bucket {
			r := &bucket[i]
			slot := &nw.nodes[r.to]
			slot.pending = append(slot.pending, r.msg)
		}
		// Clear payload references so pooled buckets do not pin large
		// gossip payloads across cycles, then truncate for reuse.
		for i := range bucket {
			bucket[i] = routed{}
		}
		nw.shards[s].out[d] = bucket[:0]

		dBucket := nw.shards[s].delayedOut[d]
		for i := range dBucket {
			r := &dBucket[i]
			slot := &nw.nodes[r.to]
			slot.delayed = append(slot.delayed, delayedMessage{due: r.due, msg: r.msg})
		}
		for i := range dBucket {
			dBucket[i] = delayedRouted{}
		}
		nw.shards[s].delayedOut[d] = dBucket[:0]
	}
}
