package p2p

import (
	"math/rand"

	"chiaroscuro/internal/compactrng"
)

// Sampler reproduces one node's peer-sampling randomness outside the
// simulation engine — the daemon-side half of the determinism contract.
// A networked participant (internal/transport) that samples its gossip
// and decryption peers through a Sampler seeded like the engine seeds
// its node slots draws the exact same peer sequence the simulated
// participant draws, which is what lets the multi-process conformance
// harness demand bit-identical trajectories across the network
// boundary.
//
// The Sampler models the engine's idealized membership view: a fully
// connected population of n nodes, all alive. (A simulation with churn
// or a fault plan filters dead peers inside the draw loop, which makes
// the stream depend on global liveness state no single daemon can see;
// the conformance contract therefore covers fault-free runs, and the
// transport layer handles departed peers by dropping sends, not by
// re-sampling.)
type Sampler struct {
	rng *rand.Rand
	src *compactrng.Source
	id  NodeID
	n   int
}

// NewSampler builds the sampler for node id of a population of n, from
// the same run seed the engine was (or would be) given: the per-node
// stream derivation is identical to the engine's.
func NewSampler(seed int64, id NodeID, n int) *Sampler {
	src := compactrng.New(nodeSeed(seed, int(id)))
	return &Sampler{
		rng: rand.New(src),
		src: src,
		id:  id,
		n:   n,
	}
}

// State returns the sampler's complete RNG state (one splitmix64 word).
// The rand.Rand draw paths the sampler uses (Intn over a Source64)
// buffer nothing, so the source state alone determines every future
// draw — the property the daemon's crash checkpoints rely on.
func (s *Sampler) State() uint64 { return s.src.State() }

// SetState restores a state obtained from State: the sampler continues
// the exact peer-draw sequence the checkpointed one would have drawn.
func (s *Sampler) SetState(v uint64) { s.src.SetState(v) }

// RandomPeer draws a uniform peer, excluding the node itself — the same
// rejection loop (and therefore the same RNG consumption) as the
// engine's all-alive draw.
func (s *Sampler) RandomPeer() (NodeID, bool) {
	if s.n < 2 {
		return -1, false
	}
	for {
		j := NodeID(s.rng.Intn(s.n))
		if j != s.id {
			return j, true
		}
	}
}

// RandomPeers draws up to k distinct peers, mirroring Context.
// RandomPeers draw for draw: repeated RandomPeer calls with a seen-set
// and the same bounded attempt budget.
func (s *Sampler) RandomPeers(k int) []NodeID {
	out := make([]NodeID, 0, k)
	seen := map[NodeID]bool{s.id: true}
	for attempts := 0; len(out) < k && attempts < 16*(k+1); attempts++ {
		p, ok := s.RandomPeer()
		if !ok {
			break
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
