// Package p2p is a cycle-driven peer-to-peer network simulator modeled on
// Peersim's cycle-driven mode (Montresor & Jelasity, P2P 2009), which is
// the execution substrate of the Chiaroscuro demonstration. Protocols
// implement a NextCycle method — the exact entry point the paper
// describes ("Chiaroscuro ... implements Peersim's nextCycle method by
// the core of its execution sequence") — and the engine calls it for
// every alive node once per cycle.
//
// The engine provides:
//
//   - a uniform peer-sampling oracle (optionally restricted by a
//     Topology), as Peersim's idealized membership service;
//   - asynchronous point-to-point messages with per-message byte
//     accounting (delivered into the destination's inbox, drained at its
//     next activation — there is no global synchronization, matching
//     Sec. II.B);
//   - a churn model: per-cycle crash and rejoin probabilities, with
//     messages to crashed nodes dropped (the "possibly faulty computing
//     nodes" of the paper's challenge statement);
//   - deterministic execution given a seed, at ANY worker count.
//
// # Determinism contract
//
// The simulation is a bulk-synchronous-parallel system: messages sent
// during cycle c become visible in the destination's inbox at cycle c+1
// (the double-buffered pending/inbox discipline below). Within a cycle,
// activations therefore cannot observe each other; the only cross-node
// effects are the order in which sent messages land in a destination's
// queue and the consumption of randomness. The engine pins both down:
//
//   - every node owns a private peer-sampling RNG derived from
//     (Options.Seed, node id), so the random choices a node makes depend
//     only on its own activation history, never on scheduling;
//   - churn is applied sequentially in node-id order at the start of each
//     cycle from a dedicated RNG;
//   - nodes are activated in ascending id order, and each destination's
//     queue receives messages in ascending sender-id order (per-sender
//     send order preserved).
//
// Because the per-destination delivery order is defined by sender id and
// not by scheduling, the sharded parallel scheduler (shard.go) reproduces
// the sequential execution bit for bit: it partitions the id space into
// contiguous shards, buffers sends in per-(source,destination)-shard
// buckets, and merges them in stable shard order after a barrier.
package p2p

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"

	"chiaroscuro/internal/compactrng"
)

// clearMessages zeroes a message slice so recycled backing arrays do
// not keep payloads reachable.
func clearMessages(ms []Message) {
	for i := range ms {
		ms[i] = Message{}
	}
}

// NodeID identifies a simulated node (dense, 0-based).
type NodeID int

// Protocol is the per-node behaviour, Peersim-style.
type Protocol interface {
	// NextCycle runs one activation of the node. All interaction with
	// the network happens through ctx, which is only valid during the
	// call.
	NextCycle(ctx *Context)
}

// Resetter is optionally implemented by protocols whose state must be
// cleared when a node rejoins after a crash with ResetOnRejoin set.
type Resetter interface {
	Reset()
}

// Message is an in-flight or delivered point-to-point message.
type Message struct {
	From    NodeID
	Payload any
	// Bytes is the caller-declared serialized size, used for cost
	// accounting only.
	Bytes int
}

// ChurnModel configures per-cycle failures.
type ChurnModel struct {
	// CrashProb is the probability that an alive node crashes at the
	// start of a cycle (losing its inbox).
	CrashProb float64
	// RejoinProb is the probability that a crashed node comes back at
	// the start of a cycle.
	RejoinProb float64
	// ResetOnRejoin clears protocol state on rejoin (permanent loss);
	// otherwise the node resumes with its pre-crash state (transient
	// outage).
	ResetOnRejoin bool
}

func (c ChurnModel) validate() error {
	if c.CrashProb < 0 || c.CrashProb > 1 {
		return fmt.Errorf("p2p: crash probability %v outside [0,1]", c.CrashProb)
	}
	if c.RejoinProb < 0 || c.RejoinProb > 1 {
		return fmt.Errorf("p2p: rejoin probability %v outside [0,1]", c.RejoinProb)
	}
	return nil
}

// Verdict is a Conditioner's decision about one message: whether it is
// lost, how many extra cycles its delivery is delayed beyond the normal
// next-cycle visibility, and whether the network delivers a second copy
// (with its own delay). Reordering arises from unequal delays.
type Verdict struct {
	Drop      bool
	Delay     int
	Duplicate bool
	DupDelay  int
}

// Conditioner is the programmable fault layer on the message path (see
// internal/simnet). Condition is invoked on the sender's goroutine for
// every message whose destination is alive; to preserve the engine's
// determinism contract an implementation must derive its verdict only
// from the arguments and from per-sender state (a node's sends are
// serialized within its activation, like its RNG), never from state
// shared across senders.
type Conditioner interface {
	Condition(from, to NodeID, cycle, bytes int) Verdict
}

// NodeDirective is a FaultScheduler's instruction for one node at one
// cycle: Down takes (or keeps) the node crashed, Stall keeps it alive
// but skips its activation (messages still accumulate in its inbox),
// and Reset wipes protocol state when the node recovers from Down.
type NodeDirective struct {
	Down  bool
	Reset bool
	Stall bool
}

// FaultScheduler drives scheduled (non-probabilistic) node lifecycle
// faults: crash-stop, crash-recovery and laggard stalls at fixed cycles.
// Directive is called sequentially at cycle start, node-id order.
type FaultScheduler interface {
	Directive(id NodeID, cycle int) NodeDirective
}

// Topology restricts which peers a node may sample. A nil Topology means
// the complete graph (Peersim's idealized oracle).
type Topology interface {
	// Neighbors returns the candidate peer set of id in a population of
	// size n. The returned slice must not be mutated by callers.
	Neighbors(id NodeID, n int) []NodeID
}

// Stats aggregates the cost counters of a run — the quantities behind the
// demo's network-cost displays.
type Stats struct {
	Cycles          int
	MessagesSent    int
	MessagesDropped int
	BytesSent       int64
	Crashes         int
	Rejoins         int
	// FaultDrops, Duplicates and Delayed count Conditioner-injected
	// message faults (FaultDrops is also included in MessagesDropped).
	FaultDrops int
	Duplicates int
	Delayed    int
}

// Options configures a Network.
type Options struct {
	Seed     int64
	Churn    ChurnModel
	Topology Topology
	// Workers is the number of shard workers activating nodes in
	// parallel each cycle. 0 or 1 selects the sequential scheduler. Any
	// value yields bit-identical results (see the package determinism
	// contract); Workers only trades wall-clock time for cores. The
	// effective count is capped at the population size and at
	// maxWorkers = max(64, 4·GOMAXPROCS) — the outbox bucketing is
	// O(workers²), so uncapped worker counts would cost memory without
	// buying parallelism (the 64 floor keeps many-shard configurations
	// testable on small machines).
	Workers int
	// Conditioner, when non-nil, conditions every message to an alive
	// destination (drop/duplicate/delay). Deterministic implementations
	// keep the engine's bit-identity contract (see internal/simnet).
	Conditioner Conditioner
	// Faults, when non-nil, schedules node lifecycle faults at cycle
	// start (applied before probabilistic churn; churn never rejoins a
	// scheduler-downed node).
	Faults FaultScheduler
	// QueueHint preallocates every node's inbox and pending queues for
	// this many messages (0 grows them on demand). Ordinary runs leave
	// it 0 — queues converge to their working capacity within a few
	// cycles and stay there. Allocation-measurement harnesses set it to
	// the population size so that no in-degree spike can ever grow a
	// queue, making steady-state cycles provably allocation-free rather
	// than amortized-allocation-free. The preallocation is O(n·hint),
	// which is why it is opt-in.
	QueueHint int
}

// maxWorkers bounds the effective shard-worker count: beyond a few
// times the core count extra shards add scheduling and O(workers²)
// bucket overhead with no parallelism gain. Results are unaffected
// (any worker count is bit-identical).
func maxWorkers() int {
	if m := 4 * runtime.GOMAXPROCS(0); m > 64 {
		return m
	}
	return 64
}

type nodeSlot struct {
	proto Protocol
	alive bool
	// rng is the node's private peer-sampling randomness (derived from
	// the run seed and the node id), making random choices independent
	// of scheduling.
	rng *rand.Rand
	// inbox holds the messages delivered for the current cycle; pending
	// holds messages sent during the current cycle, which become visible
	// in inbox at the start of the next cycle. This synchronous delivery
	// discipline bounds the number of gossip halvings a contribution can
	// undergo per cycle to one, which is what lets the fixed-point
	// pre-scaling budget equal the number of gossip rounds (see
	// internal/gossip package docs). The two buffers are swapped, not
	// reallocated, so a steady-state cycle performs no queue allocations.
	inbox   []Message
	pending []Message
	// delayed holds Conditioner-delayed messages with their delivery
	// cycle; deliver moves due entries into the inbox. Queue order is
	// ascending sender id (same discipline as pending), which keeps
	// sequential and sharded execution bit-identical.
	delayed []delayedMessage
	// stalled marks a laggard for the current cycle: alive, receiving,
	// but not activated.
	stalled bool
	// schedDown records that the current crash was ordered by the
	// FaultScheduler, so probabilistic churn does not rejoin the node
	// mid-outage; schedReset latches a Reset directive seen while down,
	// applied at the eventual revival.
	schedDown  bool
	schedReset bool
	// ctx is the node's reusable activation context. Handing the
	// protocol a pointer into the slot instead of a stack value keeps
	// the per-activation context off the heap (the pointer escapes
	// through the Protocol interface, which would otherwise cost one
	// allocation per activation per cycle — the last allocator touch on
	// the steady-state path). It is re-armed before and invalidated
	// after every NextCycle call, preserving the "only valid during the
	// call" contract for escaped contexts.
	ctx Context
}

// delayedMessage is a conditioned message waiting for its delivery
// cycle.
type delayedMessage struct {
	due int
	msg Message
}

// Network is the simulation engine.
type Network struct {
	nodes    []nodeSlot
	cycle    int
	churnRng *rand.Rand
	churn    ChurnModel
	topo     Topology
	cond     Conditioner
	sched    FaultScheduler
	stats    Stats
	alive    int // cached count, fixed between churn applications
	workers  int
	shards   []shardRunner
}

// nodeSeed derives a node-private RNG seed from the run seed via a
// splitmix64 finalizer, so streams of distinct nodes are uncorrelated.
func nodeSeed(seed int64, id int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(id+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// New builds a network of n nodes whose protocols come from factory.
func New(n int, factory func(NodeID) Protocol, opts Options) (*Network, error) {
	if n < 2 {
		return nil, errors.New("p2p: need at least 2 nodes")
	}
	if factory == nil {
		return nil, errors.New("p2p: nil protocol factory")
	}
	if err := opts.Churn.validate(); err != nil {
		return nil, err
	}
	if opts.Workers < 0 {
		return nil, fmt.Errorf("p2p: negative worker count %d", opts.Workers)
	}
	nw := &Network{
		nodes:    make([]nodeSlot, n),
		churnRng: rand.New(rand.NewSource(opts.Seed)),
		churn:    opts.Churn,
		topo:     opts.Topology,
		cond:     opts.Conditioner,
		sched:    opts.Faults,
		alive:    n,
		workers:  opts.Workers,
	}
	if opts.QueueHint < 0 {
		return nil, fmt.Errorf("p2p: negative queue hint %d", opts.QueueHint)
	}
	for i := range nw.nodes {
		p := factory(NodeID(i))
		if p == nil {
			return nil, fmt.Errorf("p2p: factory returned nil protocol for node %d", i)
		}
		nw.nodes[i] = nodeSlot{
			proto: p,
			alive: true,
			// Compact per-node sampling source (16 B vs ~5 KB): at large
			// populations the standard source's state would dwarf the
			// queues it feeds.
			rng: compactrng.NewRand(nodeSeed(opts.Seed, i)),
		}
		if opts.QueueHint > 0 {
			nw.nodes[i].inbox = make([]Message, 0, opts.QueueHint)
			nw.nodes[i].pending = make([]Message, 0, opts.QueueHint)
		}
	}
	if nw.workers > n {
		nw.workers = n
	}
	if m := maxWorkers(); nw.workers > m {
		nw.workers = m
	}
	if nw.workers > 1 {
		nw.shards = makeShards(n, nw.workers)
	}
	if nw.topo != nil {
		// Warm any lazy per-node neighbor caches sequentially, so that
		// Neighbors calls from concurrent shard workers are pure reads.
		for i := 0; i < n; i++ {
			nw.topo.Neighbors(NodeID(i), n)
		}
	}
	return nw, nil
}

// Size returns the population size (alive or not).
func (nw *Network) Size() int { return len(nw.nodes) }

// Cycle returns the number of completed cycles.
func (nw *Network) Cycle() int { return nw.cycle }

// Stats returns a copy of the accumulated counters.
func (nw *Network) Stats() Stats { return nw.stats }

// Workers returns the effective worker count of the scheduler (1 for the
// sequential engine).
func (nw *Network) Workers() int {
	if nw.workers > 1 {
		return nw.workers
	}
	return 1
}

// Alive reports whether a node is currently up.
func (nw *Network) Alive(id NodeID) bool {
	return id >= 0 && int(id) < len(nw.nodes) && nw.nodes[id].alive
}

// AliveCount returns the number of alive nodes.
func (nw *Network) AliveCount() int { return nw.alive }

// Protocol exposes a node's protocol instance for inspection by
// harnesses. It panics on an out-of-range id (programmer error).
func (nw *Network) Protocol(id NodeID) Protocol {
	return nw.nodes[id].proto
}

// ForEachAlive invokes f for every alive node.
func (nw *Network) ForEachAlive(f func(NodeID, Protocol)) {
	for i := range nw.nodes {
		if nw.nodes[i].alive {
			f(NodeID(i), nw.nodes[i].proto)
		}
	}
}

// RunCycle advances the simulation by one cycle: delivers the previous
// cycle's messages, applies churn, then activates each alive node once in
// ascending id order — sequentially, or across shard workers when the
// network was built with Options.Workers > 1 (bit-identical either way).
func (nw *Network) RunCycle() {
	nw.deliver()
	nw.applyScheduledFaults()
	nw.applyChurn()
	if nw.workers > 1 {
		nw.runCycleSharded()
	} else {
		for idx := range nw.nodes {
			slot := &nw.nodes[idx]
			if !slot.alive || slot.stalled {
				continue
			}
			slot.ctx = Context{nw: nw, id: NodeID(idx)}
			slot.proto.NextCycle(&slot.ctx)
			slot.ctx = Context{} // invalidate escaped contexts
		}
	}
	nw.cycle++
	nw.stats.Cycles = nw.cycle
}

// deliver moves every node's pending queue into its inbox. The common
// case (inbox fully drained last cycle) is a buffer swap; leftover
// undrained messages are preserved by falling back to an append. The
// slice a protocol obtained from Context.Inbox is invalidated here — it
// must not be retained across activations.
func (nw *Network) deliver() {
	for i := range nw.nodes {
		slot := &nw.nodes[i]
		if len(slot.delayed) > 0 {
			// Due delayed messages land before this cycle's pending batch;
			// the queue keeps ascending-sender order for the survivors.
			keep := slot.delayed[:0]
			for _, dm := range slot.delayed {
				if dm.due <= nw.cycle {
					slot.inbox = append(slot.inbox, dm.msg)
				} else {
					keep = append(keep, dm)
				}
			}
			for j := len(keep); j < len(slot.delayed); j++ {
				slot.delayed[j] = delayedMessage{}
			}
			slot.delayed = keep
		}
		if len(slot.pending) == 0 {
			continue
		}
		if len(slot.inbox) == 0 {
			slot.inbox, slot.pending = slot.pending, slot.inbox[:0]
		} else {
			slot.inbox = append(slot.inbox, slot.pending...)
			slot.pending = slot.pending[:0]
		}
	}
}

// Run advances the simulation by the given number of cycles.
func (nw *Network) Run(cycles int) {
	for i := 0; i < cycles; i++ {
		nw.RunCycle()
	}
}

// crashSlot takes a node down, dropping every queued and in-flight
// message it holds (cleared before truncation so the recycled arrays do
// not pin the dropped payloads for the rest of the run).
func (nw *Network) crashSlot(slot *nodeSlot) {
	slot.alive = false
	slot.stalled = false
	clearMessages(slot.inbox)
	clearMessages(slot.pending)
	slot.inbox = slot.inbox[:0]
	slot.pending = slot.pending[:0]
	for j := range slot.delayed {
		slot.delayed[j] = delayedMessage{}
	}
	slot.delayed = slot.delayed[:0]
	nw.stats.Crashes++
	nw.alive--
}

// applyScheduledFaults executes the FaultScheduler's directives for the
// cycle about to run: deterministic crash/outage transitions and laggard
// stalls, sequentially in node-id order.
func (nw *Network) applyScheduledFaults() {
	if nw.sched == nil {
		return
	}
	for i := range nw.nodes {
		slot := &nw.nodes[i]
		d := nw.sched.Directive(NodeID(i), nw.cycle)
		if d.Down {
			if slot.alive {
				nw.crashSlot(slot)
			}
			slot.schedDown = true
			if d.Reset {
				slot.schedReset = true
			}
		} else if slot.schedDown {
			slot.schedDown = false
			if !slot.alive {
				slot.alive = true
				nw.stats.Rejoins++
				nw.alive++
				if d.Reset || slot.schedReset {
					if r, ok := slot.proto.(Resetter); ok {
						r.Reset()
					}
				}
			}
			slot.schedReset = false
		}
		// After the lifecycle transition, so a laggard window starting
		// on the revival cycle is honored.
		slot.stalled = slot.alive && d.Stall
	}
}

func (nw *Network) applyChurn() {
	if nw.churn.CrashProb == 0 && nw.churn.RejoinProb == 0 {
		return
	}
	for i := range nw.nodes {
		slot := &nw.nodes[i]
		if slot.alive {
			if nw.churnRng.Float64() < nw.churn.CrashProb {
				nw.crashSlot(slot)
			}
		} else if nw.churnRng.Float64() < nw.churn.RejoinProb && !slot.schedDown {
			// A scheduler-downed node still consumes its churn draw (the
			// stream stays aligned) but only the scheduler may revive it.
			slot.alive = true
			nw.stats.Rejoins++
			nw.alive++
			if nw.churn.ResetOnRejoin {
				if r, ok := slot.proto.(Resetter); ok {
					r.Reset()
				}
			}
		}
	}
}

// send delivers a message, dropping it if the destination is down. When
// the sender is being activated by a shard worker, the message is
// buffered in the shard's outbox and merged deterministically after the
// cycle barrier (see shard.go).
func (nw *Network) send(sh *shardRunner, from, to NodeID, payload any, bytes int) error {
	if to < 0 || int(to) >= len(nw.nodes) {
		return fmt.Errorf("p2p: destination %d out of range", to)
	}
	if bytes < 0 {
		return fmt.Errorf("p2p: negative message size %d", bytes)
	}
	if sh != nil {
		return sh.send(nw, from, to, payload, bytes)
	}
	nw.stats.MessagesSent++
	nw.stats.BytesSent += int64(bytes)
	slot := &nw.nodes[to]
	if !slot.alive {
		nw.stats.MessagesDropped++
		return nil
	}
	m := Message{From: from, Payload: payload, Bytes: bytes}
	if nw.cond != nil {
		v := nw.cond.Condition(from, to, nw.cycle, bytes)
		if v.Drop {
			nw.stats.FaultDrops++
			nw.stats.MessagesDropped++
			return nil
		}
		nw.enqueue(slot, m, v.Delay)
		if v.Duplicate {
			nw.stats.Duplicates++
			nw.enqueue(slot, m, v.DupDelay)
		}
		return nil
	}
	slot.pending = append(slot.pending, m)
	return nil
}

// enqueue places one delivered copy: the pending queue for next-cycle
// visibility, or the delayed queue when the Conditioner added latency.
func (nw *Network) enqueue(slot *nodeSlot, m Message, delay int) {
	if delay <= 0 {
		slot.pending = append(slot.pending, m)
		return
	}
	nw.stats.Delayed++
	slot.delayed = append(slot.delayed, delayedMessage{due: nw.cycle + 1 + delay, msg: m})
}

// randomPeer samples a uniform alive peer of id (excluding id itself),
// respecting the topology, from the node's private RNG. ok is false when
// no candidate is alive.
func (nw *Network) randomPeer(id NodeID) (NodeID, bool) {
	rng := nw.nodes[id].rng
	if nw.topo != nil {
		cands := nw.topo.Neighbors(id, len(nw.nodes))
		// Reservoir-sample an alive candidate.
		picked, count := NodeID(-1), 0
		for _, c := range cands {
			if c == id || !nw.Alive(c) {
				continue
			}
			count++
			if rng.Intn(count) == 0 {
				picked = c
			}
		}
		return picked, picked >= 0
	}
	if nw.alive < 2 {
		return -1, false
	}
	for {
		j := NodeID(rng.Intn(len(nw.nodes)))
		if j != id && nw.nodes[j].alive {
			return j, true
		}
	}
}

// Context is the per-activation handle a protocol uses to interact with
// the network.
type Context struct {
	nw    *Network
	id    NodeID
	shard *shardRunner // nil under the sequential scheduler
}

// ID returns the node being activated.
func (c *Context) ID() NodeID { return c.id }

// Cycle returns the current cycle number (0-based).
func (c *Context) Cycle() int { return c.nw.cycle }

// PopulationSize returns the total number of nodes.
func (c *Context) PopulationSize() int { return len(c.nw.nodes) }

// AliveCount returns the number of currently alive nodes.
func (c *Context) AliveCount() int { return c.nw.alive }

// Inbox drains and returns the node's pending messages. The returned
// slice is only valid until the activation returns: the engine recycles
// its backing array (copy out any messages that must outlive the call).
func (c *Context) Inbox() []Message {
	slot := &c.nw.nodes[c.id]
	out := slot.inbox
	slot.inbox = slot.inbox[:0]
	return out
}

// Send queues a message to another node; bytes is the serialized size
// used for cost accounting. Messages to crashed nodes are silently
// dropped (but counted).
func (c *Context) Send(to NodeID, payload any, bytes int) error {
	return c.nw.send(c.shard, c.id, to, payload, bytes)
}

// RandomPeer samples a uniform alive peer, excluding the node itself.
func (c *Context) RandomPeer() (NodeID, bool) {
	return c.nw.randomPeer(c.id)
}

// RandomPeers samples up to k distinct alive peers (excluding the node).
// Fewer are returned when the alive population is small.
func (c *Context) RandomPeers(k int) []NodeID {
	out := make([]NodeID, 0, k)
	seen := map[NodeID]bool{c.id: true}
	// Bounded attempts so a mostly-dead network terminates.
	for attempts := 0; len(out) < k && attempts < 16*(k+1); attempts++ {
		p, ok := c.nw.randomPeer(c.id)
		if !ok {
			break
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// Rand exposes the node's private deterministic RNG (e.g. for protocols
// that need extra coin flips while staying reproducible at any worker
// count).
func (c *Context) Rand() *rand.Rand { return c.nw.nodes[c.id].rng }
