package p2p

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// traceProto is a randomness- and messaging-heavy protocol whose full
// observable behaviour is recorded, so scheduler equivalence can be
// asserted event for event: each activation it drains its inbox into a
// trace, samples peers with its private RNG and sends tagged payloads.
type traceProto struct {
	id    NodeID
	trace []string
}

func (p *traceProto) NextCycle(ctx *Context) {
	for _, m := range ctx.Inbox() {
		p.trace = append(p.trace, fmt.Sprintf("c%d recv %d:%v", ctx.Cycle(), m.From, m.Payload))
	}
	if peer, ok := ctx.RandomPeer(); ok {
		_ = ctx.Send(peer, fmt.Sprintf("g%d-%d", ctx.Cycle(), p.id), 7)
	}
	for _, peer := range ctx.RandomPeers(2) {
		_ = ctx.Send(peer, ctx.Rand().Intn(1000), 3)
	}
}

func (p *traceProto) Reset() {
	p.trace = append(p.trace, "reset")
}

// runTraced runs a traceProto network and returns the per-node traces
// plus the final stats.
func runTraced(t *testing.T, n, workers, cycles int, churn ChurnModel) ([][]string, Stats) {
	t.Helper()
	protos := make([]*traceProto, n)
	nw, err := New(n, func(id NodeID) Protocol {
		p := &traceProto{id: id}
		protos[id] = p
		return p
	}, Options{Seed: 42, Churn: churn, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(cycles)
	out := make([][]string, n)
	for i, p := range protos {
		out[i] = p.trace
	}
	return out, nw.Stats()
}

func assertTracesEqual(t *testing.T, a, b [][]string, label string) {
	t.Helper()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("%s: node %d trace length %d vs %d", label, i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("%s: node %d event %d: %q vs %q", label, i, j, a[i][j], b[i][j])
			}
		}
	}
}

// TestShardedBitIdenticalToSequential is the scheduler-level determinism
// contract: any worker count must reproduce the sequential execution
// event for event — same deliveries in the same order, same RNG draws,
// same stats.
func TestShardedBitIdenticalToSequential(t *testing.T) {
	seqTraces, seqStats := runTraced(t, 23, 1, 12, ChurnModel{})
	for _, workers := range []int{2, 3, 4, 8, 23, 64} {
		traces, stats := runTraced(t, 23, workers, 12, ChurnModel{})
		label := fmt.Sprintf("workers=%d", workers)
		assertTracesEqual(t, seqTraces, traces, label)
		if stats != seqStats {
			t.Fatalf("%s: stats %+v vs sequential %+v", label, stats, seqStats)
		}
	}
}

// TestShardedBitIdenticalUnderChurn repeats the contract with crashes,
// rejoins and protocol resets in play (churn is applied sequentially at
// cycle start, so it must not depend on the worker count either).
func TestShardedBitIdenticalUnderChurn(t *testing.T) {
	churn := ChurnModel{CrashProb: 0.15, RejoinProb: 0.5, ResetOnRejoin: true}
	seqTraces, seqStats := runTraced(t, 30, 1, 20, churn)
	if seqStats.Crashes == 0 || seqStats.Rejoins == 0 {
		t.Fatalf("churn ineffective: %+v", seqStats)
	}
	for _, workers := range []int{2, 5, 16} {
		traces, stats := runTraced(t, 30, workers, 20, churn)
		label := fmt.Sprintf("workers=%d churn", workers)
		assertTracesEqual(t, seqTraces, traces, label)
		if stats != seqStats {
			t.Fatalf("%s: stats %+v vs sequential %+v", label, stats, seqStats)
		}
	}
}

// TestShardedRespectsTopology checks the restricted-membership path under
// the parallel scheduler.
func TestShardedRespectsTopology(t *testing.T) {
	ring := &Ring{K: 2}
	n := 12
	var bad atomic.Bool
	nw, err := New(n, func(id NodeID) Protocol {
		return protoFunc(func(ctx *Context) {
			for i := 0; i < 5; i++ {
				p, ok := ctx.RandomPeer()
				if !ok {
					continue
				}
				d := int(p) - int(ctx.ID())
				if d < 0 {
					d = -d
				}
				if dd := n - d; dd < d {
					d = dd
				}
				if d > 2 {
					bad.Store(true)
				}
			}
		})
	}, Options{Seed: 9, Topology: ring, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(4)
	if bad.Load() {
		t.Fatal("topology violated under sharded scheduler")
	}
}

// TestWorkerValidationAndClamp pins the Workers option edge cases.
func TestWorkerValidationAndClamp(t *testing.T) {
	if _, err := New(4, func(NodeID) Protocol { return &echoProto{} }, Options{Workers: -1}); err == nil {
		t.Fatal("negative workers should error")
	}
	nw, err := New(4, func(NodeID) Protocol { return &echoProto{} }, Options{Workers: 99})
	if err != nil {
		t.Fatal(err)
	}
	if nw.Workers() != 4 {
		t.Fatalf("workers clamped to %d, want 4", nw.Workers())
	}
	nw.Run(3) // must not panic with more shards than messages
}
