package p2p

import (
	"testing"
)

// chatterProto sends one message to a fixed peer every cycle and records
// everything it receives, in order.
type chatterProto struct {
	peer     NodeID
	received []Message
	sent     int
}

func (c *chatterProto) NextCycle(ctx *Context) {
	c.received = append(c.received, ctx.Inbox()...)
	_ = ctx.Send(c.peer, ctx.Cycle(), 8)
	c.sent++
}

// scriptCond replays a fixed per-(from,sequence) verdict script.
type scriptCond struct {
	verdicts map[NodeID][]Verdict
	seq      map[NodeID]int
}

func (s *scriptCond) Condition(from, to NodeID, cycle, bytes int) Verdict {
	if s.seq == nil {
		s.seq = map[NodeID]int{}
	}
	i := s.seq[from]
	s.seq[from]++
	vs := s.verdicts[from]
	if i < len(vs) {
		return vs[i]
	}
	return Verdict{}
}

func buildChatter(t *testing.T, n int, opts Options) (*Network, []*chatterProto) {
	t.Helper()
	protos := make([]*chatterProto, n)
	nw, err := New(n, func(id NodeID) Protocol {
		p := &chatterProto{peer: (id + 1) % NodeID(n)}
		protos[id] = p
		return p
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return nw, protos
}

// TestConditionerZeroVerdictIsPassThrough: a conditioner that never
// faults anything must leave delivery, ordering and stats identical to
// running without one.
func TestConditionerZeroVerdictIsPassThrough(t *testing.T) {
	plain, plainProtos := buildChatter(t, 6, Options{Seed: 3})
	cond, condProtos := buildChatter(t, 6, Options{Seed: 3, Conditioner: &scriptCond{}})
	plain.Run(10)
	cond.Run(10)
	a, b := plain.Stats(), cond.Stats()
	if a != b {
		t.Fatalf("stats diverge: %+v vs %+v", a, b)
	}
	for i := range plainProtos {
		pa, pb := plainProtos[i].received, condProtos[i].received
		if len(pa) != len(pb) {
			t.Fatalf("node %d: %d vs %d messages", i, len(pa), len(pb))
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("node %d message %d: %+v vs %+v", i, j, pa[j], pb[j])
			}
		}
	}
}

// TestConditionerDropDupDelay checks each verdict field end to end:
// message counts, duplicate delivery, and the delivery cycle of a
// delayed message.
func TestConditionerDropDupDelay(t *testing.T) {
	// Node 0's first three sends: dropped, duplicated, delayed 2 cycles.
	cond := &scriptCond{verdicts: map[NodeID][]Verdict{
		0: {
			{Drop: true},
			{Duplicate: true},
			{Delay: 2},
		},
	}}
	nw, protos := buildChatter(t, 3, Options{Seed: 1, Conditioner: cond})
	nw.Run(6)
	st := nw.Stats()
	if st.FaultDrops != 1 || st.Duplicates != 1 || st.Delayed != 1 {
		t.Fatalf("fault stats %+v", st)
	}
	// Node 1 receives from node 0: cycle-0 send dropped; cycle-1 send
	// duplicated (two copies at cycle 2); cycle-2 send delayed to cycle
	// 5; cycles 3..5 sends normal (arriving 4, 5, 6 — the last after our
	// horizon). Plus nothing from node 2 (it sends to node 0).
	var fromZero []int
	for _, m := range protos[1].received {
		if m.From == 0 {
			fromZero = append(fromZero, m.Payload.(int))
		}
	}
	want := []int{1, 1, 3, 2, 4} // payload = send cycle; delayed "2" lands between "3" and "4"
	if len(fromZero) != len(want) {
		t.Fatalf("node 1 got payloads %v, want %v", fromZero, want)
	}
	for i := range want {
		if fromZero[i] != want[i] {
			t.Fatalf("node 1 got payloads %v, want %v", fromZero, want)
		}
	}
}

// stallSched stalls node 1 on cycles [1,3) and crashes node 2 from
// cycle 2 through 3 with reset.
type stallSched struct{ resets *int }

func (s *stallSched) Directive(id NodeID, cycle int) NodeDirective {
	var d NodeDirective
	if id == 1 && cycle >= 1 && cycle < 3 {
		d.Stall = true
	}
	if id == 2 {
		d.Reset = true
		if cycle >= 2 && cycle < 4 {
			d.Down = true
		}
	}
	return d
}

type resettable struct {
	chatterProto
	resets int
}

func (r *resettable) Reset() { r.resets++ }

// TestFaultSchedulerStallAndOutage: a stalled node skips activations
// but keeps its inbox; a scheduled outage crashes and then revives the
// node with a Reset.
func TestFaultSchedulerStallAndOutage(t *testing.T) {
	n := 4
	protos := make([]*resettable, n)
	nw, err := New(n, func(id NodeID) Protocol {
		p := &resettable{chatterProto: chatterProto{peer: (id + 1) % NodeID(n)}}
		protos[id] = p
		return p
	}, Options{Seed: 5, Faults: &stallSched{}})
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(6)
	// Node 1 was stalled for 2 of 6 cycles.
	if protos[1].sent != 4 {
		t.Fatalf("stalled node sent %d times, want 4", protos[1].sent)
	}
	// Stall keeps the inbox: node 1 still saw every message node 0
	// successfully delivered (node 0 sent 6; the sends of cycles 4 and 5
	// arrive at cycles 5 and 6 — the latter after the horizon).
	if got := len(protos[1].received); got != 5 {
		t.Fatalf("stalled node received %d messages, want 5", got)
	}
	// Node 2 crashed once, rejoined once, and was reset on recovery.
	st := nw.Stats()
	if st.Crashes != 1 || st.Rejoins != 1 {
		t.Fatalf("lifecycle stats %+v", st)
	}
	if protos[2].resets != 1 {
		t.Fatalf("node 2 reset %d times, want 1", protos[2].resets)
	}
	// Node 2 skipped activations on cycles 2 and 3.
	if protos[2].sent != 4 {
		t.Fatalf("outage node sent %d times, want 4", protos[2].sent)
	}
}

// TestConditionerShardedBitIdentical runs a deterministic hash
// conditioner (per-sender sequence keyed, like simnet's) under the
// sequential and sharded schedulers and demands identical stats and
// per-node delivery sequences.
func TestConditionerShardedBitIdentical(t *testing.T) {
	mkCond := func() Conditioner { return &hashCond{} }
	run := func(workers int) (Stats, [][]Message) {
		nw, protos := buildChatter(t, 40, Options{Seed: 11, Workers: workers, Conditioner: mkCond()})
		nw.Run(12)
		got := make([][]Message, len(protos))
		for i, p := range protos {
			got[i] = p.received
		}
		return nw.Stats(), got
	}
	seqStats, seqMsgs := run(1)
	if seqStats.FaultDrops == 0 || seqStats.Duplicates == 0 || seqStats.Delayed == 0 {
		t.Fatalf("conditioner inert: %+v", seqStats)
	}
	for _, workers := range []int{2, 7, 40} {
		st, msgs := run(workers)
		if st != seqStats {
			t.Fatalf("workers=%d: stats %+v vs %+v", workers, st, seqStats)
		}
		for i := range msgs {
			if len(msgs[i]) != len(seqMsgs[i]) {
				t.Fatalf("workers=%d node %d: %d vs %d messages", workers, i, len(msgs[i]), len(seqMsgs[i]))
			}
			for j := range msgs[i] {
				if msgs[i][j] != seqMsgs[i][j] {
					t.Fatalf("workers=%d node %d msg %d: %+v vs %+v", workers, i, j, msgs[i][j], seqMsgs[i][j])
				}
			}
		}
	}
}

// hashCond is a self-contained deterministic conditioner keyed on
// (from, per-sender sequence) — the same isolation discipline simnet
// uses, reimplemented here so the p2p test has no import cycle.
type hashCond struct {
	seq [64]uint64
}

func (h *hashCond) Condition(from, to NodeID, cycle, bytes int) Verdict {
	s := h.seq[from]
	h.seq[from]++
	z := uint64(from+1)*0x9E3779B97F4A7C15 + uint64(to+1)*0xBF58476D1CE4E5B9 + uint64(cycle+1) + s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	switch z % 10 {
	case 0:
		return Verdict{Drop: true}
	case 1:
		return Verdict{Duplicate: true, DupDelay: int(z>>8) % 3}
	case 2, 3:
		return Verdict{Delay: 1 + int(z>>16)%3}
	}
	return Verdict{}
}

// windowSched emits Down for cycles [2,6) where only cycles [2,4) carry
// Reset (a :reset window swallowed by a longer outage), and stalls the
// node exactly on its revival cycle 6.
type windowSched struct{}

func (windowSched) Directive(id NodeID, cycle int) NodeDirective {
	var d NodeDirective
	if id != 2 {
		return d
	}
	if cycle >= 2 && cycle < 6 {
		d.Down = true
		if cycle < 4 {
			d.Reset = true
		}
	}
	if cycle == 6 {
		d.Stall = true
	}
	return d
}

// TestFaultSchedulerResetLatchAndStallOnRevival: a Reset directive seen
// mid-outage is latched and applied at the eventual revival even if the
// revival-cycle directive no longer carries it, and a Stall directive
// on the revival cycle itself is honored (the node revives but does not
// activate).
func TestFaultSchedulerResetLatchAndStallOnRevival(t *testing.T) {
	n := 4
	protos := make([]*resettable, n)
	nw, err := New(n, func(id NodeID) Protocol {
		p := &resettable{chatterProto: chatterProto{peer: (id + 1) % NodeID(n)}}
		protos[id] = p
		return p
	}, Options{Seed: 9, Faults: windowSched{}})
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(8)
	if protos[2].resets != 1 {
		t.Fatalf("latched reset applied %d times, want 1", protos[2].resets)
	}
	// Down cycles 2..5, stalled on 6: active cycles are 0, 1, 7.
	if protos[2].sent != 3 {
		t.Fatalf("node 2 sent %d times, want 3 (down 4 cycles + stalled on revival)", protos[2].sent)
	}
	st := nw.Stats()
	if st.Crashes != 1 || st.Rejoins != 1 {
		t.Fatalf("lifecycle stats %+v", st)
	}
}
