package p2p

import (
	"testing"
)

func TestCompleteTopology(t *testing.T) {
	topo := &Complete{}
	nb := topo.Neighbors(3, 6)
	if len(nb) != 6 {
		t.Fatalf("complete neighbors = %d, want 6 (self filtered by sampler)", len(nb))
	}
	// Cache reuse across calls.
	nb2 := topo.Neighbors(1, 6)
	if &nb[0] != &nb2[0] {
		t.Fatal("complete topology should reuse its cache")
	}
}

func TestRingTopology(t *testing.T) {
	topo := &Ring{K: 2}
	nb := topo.Neighbors(0, 10)
	want := map[NodeID]bool{1: true, 9: true, 2: true, 8: true}
	if len(nb) != 4 {
		t.Fatalf("ring neighbors = %v", nb)
	}
	for _, id := range nb {
		if !want[id] {
			t.Fatalf("unexpected ring neighbor %d in %v", id, nb)
		}
	}
}

func TestRingTopologyDefaultK(t *testing.T) {
	topo := &Ring{}
	nb := topo.Neighbors(5, 10)
	if len(nb) != 2 {
		t.Fatalf("default ring should have 2 neighbors, got %v", nb)
	}
}

func TestRandomRegularTopology(t *testing.T) {
	topo := &RandomRegular{K: 4, Seed: 1}
	for id := NodeID(0); id < 10; id++ {
		nb := topo.Neighbors(id, 10)
		if len(nb) != 4 {
			t.Fatalf("node %d: %d neighbors, want 4", id, len(nb))
		}
		seen := map[NodeID]bool{id: true}
		for _, p := range nb {
			if seen[p] {
				t.Fatalf("node %d: duplicate/self neighbor %d", id, p)
			}
			seen[p] = true
		}
	}
}

func TestRandomRegularKClamped(t *testing.T) {
	topo := &RandomRegular{K: 99, Seed: 2}
	nb := topo.Neighbors(0, 5)
	if len(nb) != 4 {
		t.Fatalf("clamped k: %d neighbors, want 4", len(nb))
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	a := &RandomRegular{K: 3, Seed: 7}
	b := &RandomRegular{K: 3, Seed: 7}
	for id := NodeID(0); id < 8; id++ {
		na, nb := a.Neighbors(id, 8), b.Neighbors(id, 8)
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("node %d: %v vs %v", id, na, nb)
			}
		}
	}
}

func TestTopologyByName(t *testing.T) {
	for _, name := range []string{"", "complete", "ring", "random"} {
		if _, err := TopologyByName(name, 3, 1); err != nil {
			t.Errorf("%q: %v", name, err)
		}
	}
	if _, err := TopologyByName("hypercube", 3, 1); err == nil {
		t.Error("unknown topology should error")
	}
}

func TestNetworkWithRingTopologySamplesOnlyNeighbors(t *testing.T) {
	sampled := map[NodeID]bool{}
	nw, err := New(10, func(id NodeID) Protocol {
		return protoFunc(func(ctx *Context) {
			if ctx.ID() != 0 {
				return
			}
			for i := 0; i < 30; i++ {
				if p, ok := ctx.RandomPeer(); ok {
					sampled[p] = true
				}
			}
		})
	}, Options{Seed: 15, Topology: &Ring{K: 1}})
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(2)
	for p := range sampled {
		if p != 1 && p != 9 {
			t.Fatalf("sampled non-neighbor %d", p)
		}
	}
	if len(sampled) != 2 {
		t.Fatalf("sampled set = %v, want both ring neighbors", sampled)
	}
}
