package p2p

import (
	"testing"
)

// samplerProbe is a protocol that records the peer draws the engine
// hands it — the reference stream the Sampler must reproduce.
type samplerProbe struct {
	singles []NodeID
	batches [][]NodeID
}

func (p *samplerProbe) NextCycle(ctx *Context) {
	if peer, ok := ctx.RandomPeer(); ok {
		p.singles = append(p.singles, peer)
	}
	p.batches = append(p.batches, ctx.RandomPeers(3))
}

// TestSamplerMatchesEngineStream pins the daemon-side determinism
// contract: for a fault-free, churn-free population, NewSampler(seed,
// id, n) draws exactly the peers the engine's node id draws, call for
// call. The conformance harness (internal/transport) relies on this to
// reproduce simulated trajectories over real connections.
func TestSamplerMatchesEngineStream(t *testing.T) {
	const (
		n      = 17
		seed   = int64(991)
		cycles = 25
	)
	probes := make([]*samplerProbe, n)
	nw, err := New(n, func(id NodeID) Protocol {
		probes[id] = &samplerProbe{}
		return probes[id]
	}, Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	nw.Run(cycles)

	for id := 0; id < n; id++ {
		s := NewSampler(seed, NodeID(id), n)
		probe := probes[id]
		var singles []NodeID
		var batches [][]NodeID
		for c := 0; c < cycles; c++ {
			if peer, ok := s.RandomPeer(); ok {
				singles = append(singles, peer)
			}
			batches = append(batches, s.RandomPeers(3))
		}
		if len(singles) != len(probe.singles) {
			t.Fatalf("node %d: %d singles, engine drew %d", id, len(singles), len(probe.singles))
		}
		for i := range singles {
			if singles[i] != probe.singles[i] {
				t.Fatalf("node %d single draw %d: sampler %d, engine %d", id, i, singles[i], probe.singles[i])
			}
		}
		if len(batches) != len(probe.batches) {
			t.Fatalf("node %d: batch count mismatch", id)
		}
		for i := range batches {
			if len(batches[i]) != len(probe.batches[i]) {
				t.Fatalf("node %d batch %d: len %d vs engine %d", id, i, len(batches[i]), len(probe.batches[i]))
			}
			for j := range batches[i] {
				if batches[i][j] != probe.batches[i][j] {
					t.Fatalf("node %d batch %d draw %d: sampler %d, engine %d", id, i, j, batches[i][j], probe.batches[i][j])
				}
			}
		}
	}
}
