package p2p

import (
	"fmt"
	"math/rand"
)

// Complete is the fully connected topology (the default when a Network is
// built with a nil Topology). Provided explicitly so experiments can name
// it.
type Complete struct {
	cache []NodeID
}

// Neighbors implements Topology.
func (t *Complete) Neighbors(id NodeID, n int) []NodeID {
	if len(t.cache) != n {
		t.cache = make([]NodeID, n)
		for i := range t.cache {
			t.cache[i] = NodeID(i)
		}
	}
	return t.cache
}

// Ring connects each node to its k successors and k predecessors on a
// cycle.
type Ring struct {
	K     int
	cache map[NodeID][]NodeID
}

// Neighbors implements Topology.
func (t *Ring) Neighbors(id NodeID, n int) []NodeID {
	k := t.K
	if k < 1 {
		k = 1
	}
	if t.cache == nil {
		t.cache = make(map[NodeID][]NodeID)
	}
	if nb, ok := t.cache[id]; ok {
		return nb
	}
	nb := make([]NodeID, 0, 2*k)
	for d := 1; d <= k; d++ {
		nb = append(nb, NodeID((int(id)+d)%n), NodeID((int(id)-d+n*d)%n))
	}
	t.cache[id] = nb
	return nb
}

// RandomRegular gives every node K random out-neighbors chosen once at
// construction (a static random overlay, as Peersim's wire-k-out
// initializers build).
type RandomRegular struct {
	K    int
	Seed int64

	adj [][]NodeID
}

// Neighbors implements Topology.
func (t *RandomRegular) Neighbors(id NodeID, n int) []NodeID {
	if t.adj == nil {
		t.build(n)
	}
	if int(id) >= len(t.adj) {
		return nil
	}
	return t.adj[id]
}

func (t *RandomRegular) build(n int) {
	k := t.K
	if k < 1 {
		k = 1
	}
	if k > n-1 {
		k = n - 1
	}
	rng := rand.New(rand.NewSource(t.Seed))
	t.adj = make([][]NodeID, n)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < n; i++ {
		rng.Shuffle(n, func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
		nb := make([]NodeID, 0, k)
		for _, p := range perm {
			if p == i {
				continue
			}
			nb = append(nb, NodeID(p))
			if len(nb) == k {
				break
			}
		}
		t.adj[i] = nb
	}
}

// TopologyByName resolves the topology names used by CLI flags.
func TopologyByName(name string, k int, seed int64) (Topology, error) {
	switch name {
	case "", "complete":
		return &Complete{}, nil
	case "ring":
		return &Ring{K: k}, nil
	case "random":
		return &RandomRegular{K: k, Seed: seed}, nil
	default:
		return nil, fmt.Errorf("p2p: unknown topology %q", name)
	}
}
