package timeseries

import (
	"errors"
	"math/rand"
	"testing"
)

func TestBestAlignmentExactMatch(t *testing.T) {
	s := Series{0, 0, 1, 2, 3, 0, 0}
	q := Series{1, 2, 3}
	off, d, err := BestAlignment(s, q)
	if err != nil {
		t.Fatal(err)
	}
	if off != 2 || d != 0 {
		t.Fatalf("off=%d d=%v, want off=2 d=0", off, d)
	}
}

func TestBestAlignmentFullLength(t *testing.T) {
	s := Series{1, 2, 3}
	off, d, err := BestAlignment(s, s.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if off != 0 || d != 0 {
		t.Fatalf("off=%d d=%v", off, d)
	}
}

func TestBestAlignmentErrors(t *testing.T) {
	if _, _, err := BestAlignment(Series{1, 2}, nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty query: %v", err)
	}
	if _, _, err := BestAlignment(Series{1}, Series{1, 2}); err == nil {
		t.Fatal("query longer than series should error")
	}
}

func TestBestAlignmentIsGlobalMinimum(t *testing.T) {
	// Brute-force cross-check on random inputs (validates the early-
	// abandon optimization).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		s := make(Series, 20)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		q := make(Series, 5)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		off, d, err := BestAlignment(s, q)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force.
		bestOff, bestD := -1, 0.0
		for o := 0; o+len(q) <= len(s); o++ {
			var acc float64
			for i := range q {
				dd := s[o+i] - q[i]
				acc += dd * dd
			}
			if bestOff < 0 || acc < bestD {
				bestOff, bestD = o, acc
			}
		}
		if off != bestOff {
			t.Fatalf("trial %d: offset %d != brute-force %d", trial, off, bestOff)
		}
		if !almostEq(d*d, bestD, 1e-9) {
			t.Fatalf("trial %d: distance² %v != %v", trial, d*d, bestD)
		}
	}
}

func TestClosestProfilesRanking(t *testing.T) {
	profiles := []Series{
		{0, 0, 0, 0}, // distance 2 from query at best
		{5, 1, 1, 5}, // contains the query exactly
		{9, 9, 9, 9}, // far
	}
	query := Series{1, 1}
	matches, err := ClosestProfiles(profiles, query, 3)
	if err != nil {
		t.Fatal(err)
	}
	if matches[0].Profile != 1 || matches[0].Distance != 0 || matches[0].Offset != 1 {
		t.Fatalf("best match = %+v", matches[0])
	}
	if matches[1].Profile != 0 {
		t.Fatalf("second match = %+v", matches[1])
	}
	if matches[2].Profile != 2 {
		t.Fatalf("third match = %+v", matches[2])
	}
	// Distances sorted ascending.
	for i := 1; i < len(matches); i++ {
		if matches[i].Distance < matches[i-1].Distance {
			t.Fatalf("matches not sorted: %+v", matches)
		}
	}
}

func TestClosestProfilesTopM(t *testing.T) {
	profiles := []Series{{0, 0}, {1, 1}, {2, 2}}
	matches, err := ClosestProfiles(profiles, Series{0, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("len = %d, want 2", len(matches))
	}
	// Asking for more matches than profiles returns all of them.
	all, err := ClosestProfiles(profiles, Series{0, 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("len = %d, want 3", len(all))
	}
}

func TestClosestProfilesTieBreak(t *testing.T) {
	profiles := []Series{{1, 1}, {1, 1}}
	matches, err := ClosestProfiles(profiles, Series{1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if matches[0].Profile != 0 || matches[1].Profile != 1 {
		t.Fatalf("tie break not by index: %+v", matches)
	}
}

func TestClosestProfilesErrors(t *testing.T) {
	if _, err := ClosestProfiles(nil, Series{1}, 1); !errors.Is(err, ErrEmpty) {
		t.Fatalf("no profiles: %v", err)
	}
	if _, err := ClosestProfiles([]Series{{1}}, Series{1}, 0); err == nil {
		t.Fatal("m=0 should error")
	}
	if _, err := ClosestProfiles([]Series{{1}}, Series{1, 2}, 1); err == nil {
		t.Fatal("query longer than profile should error")
	}
}

func TestNearestSeries(t *testing.T) {
	set := []Series{{0, 0}, {5, 5}, {1, 1}}
	idx, sq, err := NearestSeries(set, Series{0.9, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("idx = %d, want 2", idx)
	}
	if !almostEq(sq, 0.02, 1e-9) {
		t.Fatalf("sq = %v", sq)
	}
}

func TestNearestSeriesErrors(t *testing.T) {
	if _, _, err := NearestSeries(nil, Series{1}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty set: %v", err)
	}
	if _, _, err := NearestSeries([]Series{{1, 2}}, Series{1}); err == nil {
		t.Fatal("dim mismatch should error")
	}
}
