// Package timeseries provides the time-series kernel used throughout the
// Chiaroscuro reproduction: a Series value type, distance functions,
// normalization, resampling, and subsequence matching (the "Bob finds the
// closest profiles" use case of the demonstration, Fig. 3 panel 6).
//
// A Series is a plain []float64: one value per time step, uniformly
// sampled. All functions treat series as immutable unless their name says
// otherwise (InPlace suffix).
package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// Series is a uniformly sampled time-series.
type Series []float64

// ErrLengthMismatch is returned when two series of different lengths are
// combined by an operation that requires equal lengths.
var ErrLengthMismatch = errors.New("timeseries: length mismatch")

// ErrEmpty is returned when an operation needs a non-empty series.
var ErrEmpty = errors.New("timeseries: empty series")

// Clone returns a deep copy of s.
func (s Series) Clone() Series {
	out := make(Series, len(s))
	copy(out, s)
	return out
}

// Zero returns a series of n zeros.
func Zero(n int) Series {
	return make(Series, n)
}

// AddInPlace adds t to s element-wise, modifying s.
func (s Series) AddInPlace(t Series) error {
	if len(s) != len(t) {
		return fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(s), len(t))
	}
	for i := range s {
		s[i] += t[i]
	}
	return nil
}

// SubInPlace subtracts t from s element-wise, modifying s.
func (s Series) SubInPlace(t Series) error {
	if len(s) != len(t) {
		return fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(s), len(t))
	}
	for i := range s {
		s[i] -= t[i]
	}
	return nil
}

// ScaleInPlace multiplies every element of s by f.
func (s Series) ScaleInPlace(f float64) {
	for i := range s {
		s[i] *= f
	}
}

// Sum returns the sum of the elements of s.
func (s Series) Sum() float64 {
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum
}

// Mean returns the arithmetic mean of s. It returns 0 for an empty series.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s))
}

// Std returns the population standard deviation of s.
func (s Series) Std() float64 {
	if len(s) == 0 {
		return 0
	}
	m := s.Mean()
	var acc float64
	for _, v := range s {
		d := v - m
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(s)))
}

// Min returns the smallest element of s, or +Inf for an empty series.
func (s Series) Min() float64 {
	min := math.Inf(1)
	for _, v := range s {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest element of s, or -Inf for an empty series.
func (s Series) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s {
		if v > max {
			max = v
		}
	}
	return max
}

// SquaredL2 returns the squared Euclidean distance between a and b.
func SquaredL2(a, b Series) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(a), len(b))
	}
	var acc float64
	for i := range a {
		d := a[i] - b[i]
		acc += d * d
	}
	return acc, nil
}

// L2 returns the Euclidean distance between a and b.
func L2(a, b Series) (float64, error) {
	sq, err := SquaredL2(a, b)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(sq), nil
}

// L1 returns the Manhattan distance between a and b.
func L1(a, b Series) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(a), len(b))
	}
	var acc float64
	for i := range a {
		acc += math.Abs(a[i] - b[i])
	}
	return acc, nil
}

// LInf returns the Chebyshev distance between a and b.
func LInf(a, b Series) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(a), len(b))
	}
	var max float64
	for i := range a {
		d := math.Abs(a[i] - b[i])
		if d > max {
			max = d
		}
	}
	return max, nil
}

// Resample linearly interpolates s onto m uniformly spaced points covering
// the same time span. m must be >= 1 and s non-empty.
func Resample(s Series, m int) (Series, error) {
	if len(s) == 0 {
		return nil, ErrEmpty
	}
	if m < 1 {
		return nil, fmt.Errorf("timeseries: resample target %d < 1", m)
	}
	if m == 1 {
		return Series{s.Mean()}, nil
	}
	if len(s) == 1 {
		out := make(Series, m)
		for i := range out {
			out[i] = s[0]
		}
		return out, nil
	}
	out := make(Series, m)
	scale := float64(len(s)-1) / float64(m-1)
	for i := range out {
		pos := float64(i) * scale
		lo := int(math.Floor(pos))
		if lo >= len(s)-1 {
			out[i] = s[len(s)-1]
			continue
		}
		frac := pos - float64(lo)
		out[i] = s[lo]*(1-frac) + s[lo+1]*frac
	}
	return out, nil
}

// MovingAverage returns s smoothed with a centered moving-average window of
// the given (odd or even) width. Width <= 1 returns a copy of s. Edges use
// a truncated window. This is the "smoothing of the perturbed means"
// quality-enhancing heuristic of the paper (Sec. II.B).
func MovingAverage(s Series, width int) Series {
	out := make(Series, len(s))
	if width <= 1 {
		copy(out, s)
		return out
	}
	half := width / 2
	for i := range s {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi > len(s)-1 {
			hi = len(s) - 1
		}
		var acc float64
		for j := lo; j <= hi; j++ {
			acc += s[j]
		}
		out[i] = acc / float64(hi-lo+1)
	}
	return out
}

// ExponentialSmoothing returns the exponentially smoothed version of s with
// factor alpha in (0, 1]: out[0]=s[0], out[i]=alpha*s[i]+(1-alpha)*out[i-1].
func ExponentialSmoothing(s Series, alpha float64) (Series, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("timeseries: smoothing factor %v outside (0,1]", alpha)
	}
	out := make(Series, len(s))
	if len(s) == 0 {
		return out, nil
	}
	out[0] = s[0]
	for i := 1; i < len(s); i++ {
		out[i] = alpha*s[i] + (1-alpha)*out[i-1]
	}
	return out, nil
}

// Clamp limits every element of s into [lo, hi], returning a new series.
func Clamp(s Series, lo, hi float64) Series {
	out := make(Series, len(s))
	for i, v := range s {
		switch {
		case v < lo:
			out[i] = lo
		case v > hi:
			out[i] = hi
		default:
			out[i] = v
		}
	}
	return out
}
