package timeseries

import (
	"fmt"
	"math"
	"sort"
)

// Match is one result of a profile search: the profile index, the offset at
// which the query subsequence aligns best, and the (Euclidean) distance at
// that alignment.
type Match struct {
	Profile  int
	Offset   int
	Distance float64
}

// BestAlignment slides query over s and returns the offset minimizing the
// Euclidean distance between query and the aligned window of s, together
// with that distance. The query must be non-empty and no longer than s.
func BestAlignment(s, query Series) (offset int, dist float64, err error) {
	if len(query) == 0 {
		return 0, 0, ErrEmpty
	}
	if len(query) > len(s) {
		return 0, 0, fmt.Errorf("timeseries: query length %d exceeds series length %d", len(query), len(s))
	}
	best := -1
	bestSq := 0.0
	for off := 0; off+len(query) <= len(s); off++ {
		var acc float64
		for i, q := range query {
			d := s[off+i] - q
			acc += d * d
			if best >= 0 && acc >= bestSq {
				break // early abandon: cannot improve
			}
		}
		if best < 0 || acc < bestSq {
			best, bestSq = off, acc
		}
	}
	return best, sqrt(bestSq), nil
}

// ClosestProfiles implements the demonstration's interactive use case
// (Fig. 3 panel 6): given the set of cluster profiles (centroids) and a
// subsequence of an individual's own series, it returns the m profiles
// whose best-aligned window is closest to the subsequence, most similar
// first. Ties are broken by profile index for determinism.
func ClosestProfiles(profiles []Series, query Series, m int) ([]Match, error) {
	if len(profiles) == 0 {
		return nil, ErrEmpty
	}
	if m <= 0 {
		return nil, fmt.Errorf("timeseries: requested %d matches", m)
	}
	matches := make([]Match, 0, len(profiles))
	for i, p := range profiles {
		off, d, err := BestAlignment(p, query)
		if err != nil {
			return nil, fmt.Errorf("timeseries: profile %d: %w", i, err)
		}
		matches = append(matches, Match{Profile: i, Offset: off, Distance: d})
	}
	sort.Slice(matches, func(a, b int) bool {
		if matches[a].Distance != matches[b].Distance {
			return matches[a].Distance < matches[b].Distance
		}
		return matches[a].Profile < matches[b].Profile
	})
	if m > len(matches) {
		m = len(matches)
	}
	return matches[:m], nil
}

// NearestSeries returns the index of the series in set closest to target
// under squared Euclidean distance, together with the squared distance.
// All series must share target's length.
func NearestSeries(set []Series, target Series) (int, float64, error) {
	if len(set) == 0 {
		return 0, 0, ErrEmpty
	}
	best, bestSq := -1, 0.0
	for i, s := range set {
		sq, err := SquaredL2(s, target)
		if err != nil {
			return 0, 0, fmt.Errorf("timeseries: series %d: %w", i, err)
		}
		if best < 0 || sq < bestSq {
			best, bestSq = i, sq
		}
	}
	return best, bestSq, nil
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
