package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestNormalizeMinMaxBounds(t *testing.T) {
	set := []Series{{-2, 0, 4}, {1, 3, 6}}
	n, err := NormalizeMinMax(set)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range set {
		if v := s.Min(); v < lo {
			lo = v
		}
		if v := s.Max(); v > hi {
			hi = v
		}
	}
	if !almostEq(lo, 0, 1e-12) || !almostEq(hi, 1, 1e-12) {
		t.Fatalf("normalized bounds [%v, %v], want [0, 1]", lo, hi)
	}
	if n.Offset != -2 {
		t.Fatalf("offset = %v, want -2", n.Offset)
	}
}

func TestNormalizeInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	orig := make([]Series, 5)
	set := make([]Series, 5)
	for i := range set {
		s := make(Series, 8)
		for j := range s {
			s[j] = rng.NormFloat64() * 100
		}
		orig[i] = s.Clone()
		set[i] = s
	}
	n, err := NormalizeMinMax(set)
	if err != nil {
		t.Fatal(err)
	}
	for i := range set {
		back := n.InvertSeries(set[i])
		for j := range back {
			if !almostEq(back[j], orig[i][j], 1e-9) {
				t.Fatalf("roundtrip mismatch at [%d][%d]: %v vs %v", i, j, back[j], orig[i][j])
			}
		}
	}
}

func TestNormalizeApplyInvertScalar(t *testing.T) {
	n := Normalization{Offset: 10, Scale: 0.5}
	if got := n.Apply(12); !almostEq(got, 1, 1e-12) {
		t.Fatalf("apply = %v", got)
	}
	if got := n.Invert(1); !almostEq(got, 12, 1e-12) {
		t.Fatalf("invert = %v", got)
	}
	z := Normalization{Offset: 3, Scale: 0}
	if got := z.Invert(0.7); got != 3 {
		t.Fatalf("zero-scale invert = %v, want offset", got)
	}
}

func TestNormalizeConstantDataset(t *testing.T) {
	set := []Series{{5, 5}, {5, 5}}
	n, err := NormalizeMinMax(set)
	if err != nil {
		t.Fatal(err)
	}
	if n.Scale != 1 {
		t.Fatalf("constant dataset scale = %v, want 1", n.Scale)
	}
	for _, s := range set {
		for _, v := range s {
			if v != 0 {
				t.Fatalf("constant dataset should map to 0, got %v", v)
			}
		}
	}
}

func TestNormalizeErrors(t *testing.T) {
	if _, err := NormalizeMinMax(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("nil set: err = %v", err)
	}
	if _, err := NormalizeMinMax([]Series{{}}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty series: err = %v", err)
	}
}

// TestNormalizeMinMaxEdgeCases is the table-driven battery over the
// degenerate inputs the fault experiments surfaced as worth pinning:
// constant datasets, length-1 series, mixed lengths, and non-finite
// values (which must be rejected up front — a NaN slips through every
// min/max comparison and would poison the whole normalized dataset).
func TestNormalizeMinMaxEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		set     []Series
		wantErr bool
		// want is the expected normalized dataset (checked only when
		// non-nil and the call succeeds).
		want []Series
	}{
		{
			name: "length-1 series",
			set:  []Series{{2}, {4}},
			want: []Series{{0}, {1}},
		},
		{
			name: "single length-1 constant",
			set:  []Series{{7}},
			want: []Series{{0}},
		},
		{
			name: "constant across series",
			set:  []Series{{3, 3}, {3}},
			want: []Series{{0, 0}, {0}},
		},
		{
			name: "negative-only domain",
			set:  []Series{{-8, -6}, {-4}},
			want: []Series{{0, 0.5}, {1}},
		},
		{name: "NaN value", set: []Series{{1, math.NaN()}, {2, 3}}, wantErr: true},
		{name: "+Inf value", set: []Series{{1, 2}, {math.Inf(1), 3}}, wantErr: true},
		{name: "-Inf value", set: []Series{{math.Inf(-1)}}, wantErr: true},
		{name: "NaN in later series", set: []Series{{0, 1}, {math.NaN()}}, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Copy so failed calls can assert non-mutation semantics are
			// irrelevant (rejected sets may be partially scanned, never
			// partially scaled).
			set := make([]Series, len(tc.set))
			for i, s := range tc.set {
				set[i] = s.Clone()
			}
			n, err := NormalizeMinMax(set)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got %+v with %v", n, set)
				}
				for i := range set {
					for j := range set[i] {
						if !(math.IsNaN(tc.set[i][j]) && math.IsNaN(set[i][j])) && set[i][j] != tc.set[i][j] {
							t.Fatalf("rejected input was mutated: %v", set)
						}
					}
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if n.Scale == 0 || math.IsNaN(n.Scale) || math.IsInf(n.Scale, 0) {
				t.Fatalf("degenerate scale %v", n.Scale)
			}
			for i := range tc.want {
				for j := range tc.want[i] {
					if !almostEq(set[i][j], tc.want[i][j], 1e-12) {
						t.Fatalf("set[%d][%d] = %v, want %v", i, j, set[i][j], tc.want[i][j])
					}
				}
			}
		})
	}
}

func TestApplySeriesDoesNotMutate(t *testing.T) {
	n := Normalization{Offset: 1, Scale: 2}
	s := Series{1, 2}
	out := n.ApplySeries(s)
	if s[0] != 1 || s[1] != 2 {
		t.Fatalf("ApplySeries mutated input: %v", s)
	}
	if out[0] != 0 || out[1] != 2 {
		t.Fatalf("ApplySeries = %v", out)
	}
}

func TestZScoreEach(t *testing.T) {
	set := []Series{{1, 2, 3}, {10, 10, 10}}
	means, stds, err := ZScoreEach(set)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(means[0], 2, 1e-12) || !almostEq(means[1], 10, 1e-12) {
		t.Fatalf("means = %v", means)
	}
	if !almostEq(set[0].Mean(), 0, 1e-12) || !almostEq(set[0].Std(), 1, 1e-12) {
		t.Fatalf("standardized series 0: mean=%v std=%v", set[0].Mean(), set[0].Std())
	}
	// Constant series maps to zeros, std reported as 0.
	if stds[1] != 0 {
		t.Fatalf("constant std = %v", stds[1])
	}
	for _, v := range set[1] {
		if v != 0 {
			t.Fatalf("constant series should map to zeros: %v", set[1])
		}
	}
}

func TestZScoreEachErrors(t *testing.T) {
	if _, _, err := ZScoreEach(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("nil: %v", err)
	}
	if _, _, err := ZScoreEach([]Series{{1}, {}}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("one empty: %v", err)
	}
}
