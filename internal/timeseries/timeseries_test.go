package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestCloneIndependence(t *testing.T) {
	s := Series{1, 2, 3}
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Fatalf("clone aliases the original")
	}
}

func TestZero(t *testing.T) {
	z := Zero(4)
	if len(z) != 4 {
		t.Fatalf("len = %d, want 4", len(z))
	}
	for i, v := range z {
		if v != 0 {
			t.Fatalf("z[%d] = %v, want 0", i, v)
		}
	}
}

func TestAddSubScaleInPlace(t *testing.T) {
	s := Series{1, 2, 3}
	if err := s.AddInPlace(Series{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if s[0] != 2 || s[1] != 3 || s[2] != 4 {
		t.Fatalf("after add: %v", s)
	}
	if err := s.SubInPlace(Series{2, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if s[0] != 0 || s[1] != 1 || s[2] != 2 {
		t.Fatalf("after sub: %v", s)
	}
	s.ScaleInPlace(3)
	if s[0] != 0 || s[1] != 3 || s[2] != 6 {
		t.Fatalf("after scale: %v", s)
	}
}

func TestAddInPlaceLengthMismatch(t *testing.T) {
	s := Series{1}
	if err := s.AddInPlace(Series{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
	if err := s.SubInPlace(Series{1, 2}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestSumMeanStd(t *testing.T) {
	s := Series{2, 4, 4, 4, 5, 5, 7, 9}
	if s.Sum() != 40 {
		t.Fatalf("sum = %v", s.Sum())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if !almostEq(s.Std(), 2, 1e-12) {
		t.Fatalf("std = %v, want 2", s.Std())
	}
}

func TestEmptyStats(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Std() != 0 || s.Sum() != 0 {
		t.Fatalf("empty series stats should be zero")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Fatalf("empty min/max should be infinities")
	}
}

func TestMinMax(t *testing.T) {
	s := Series{3, -1, 7, 0}
	if s.Min() != -1 || s.Max() != 7 {
		t.Fatalf("min=%v max=%v", s.Min(), s.Max())
	}
}

func TestDistances(t *testing.T) {
	a := Series{0, 0, 0}
	b := Series{1, 2, 2}
	if d, _ := L2(a, b); !almostEq(d, 3, 1e-12) {
		t.Fatalf("L2 = %v, want 3", d)
	}
	if d, _ := SquaredL2(a, b); !almostEq(d, 9, 1e-12) {
		t.Fatalf("SquaredL2 = %v, want 9", d)
	}
	if d, _ := L1(a, b); !almostEq(d, 5, 1e-12) {
		t.Fatalf("L1 = %v, want 5", d)
	}
	if d, _ := LInf(a, b); !almostEq(d, 2, 1e-12) {
		t.Fatalf("LInf = %v, want 2", d)
	}
}

func TestDistanceMismatch(t *testing.T) {
	a := Series{1}
	b := Series{1, 2}
	for name, f := range map[string]func(Series, Series) (float64, error){
		"L2": L2, "SquaredL2": SquaredL2, "L1": L1, "LInf": LInf,
	} {
		if _, err := f(a, b); !errors.Is(err, ErrLengthMismatch) {
			t.Errorf("%s: err = %v, want ErrLengthMismatch", name, err)
		}
	}
}

func TestDistanceMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randSeries := func() Series {
		s := make(Series, 6)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		return s
	}
	for i := 0; i < 200; i++ {
		a, b, c := randSeries(), randSeries(), randSeries()
		dab, _ := L2(a, b)
		dba, _ := L2(b, a)
		if !almostEq(dab, dba, 1e-12) {
			t.Fatalf("symmetry violated: %v vs %v", dab, dba)
		}
		daa, _ := L2(a, a)
		if daa != 0 {
			t.Fatalf("identity violated: %v", daa)
		}
		dac, _ := L2(a, c)
		dcb, _ := L2(c, b)
		if dab > dac+dcb+1e-9 {
			t.Fatalf("triangle inequality violated: %v > %v + %v", dab, dac, dcb)
		}
	}
}

func TestL1DominatesL2DominatesLInf(t *testing.T) {
	// Property: LInf <= L2 <= L1 for any pair.
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		half := len(raw) / 2
		a, b := Series(raw[:half]), Series(raw[half:2*half])
		for _, v := range append(a.Clone(), b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		linf, _ := LInf(a, b)
		l2, _ := L2(a, b)
		l1, _ := L1(a, b)
		return linf <= l2+1e-9 && l2 <= l1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestResampleIdentity(t *testing.T) {
	s := Series{1, 2, 3, 4}
	out, err := Resample(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if !almostEq(out[i], s[i], 1e-12) {
			t.Fatalf("resample to same length changed values: %v", out)
		}
	}
}

func TestResampleUpDown(t *testing.T) {
	s := Series{0, 1}
	up, err := Resample(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := Series{0, 0.5, 1}
	for i := range want {
		if !almostEq(up[i], want[i], 1e-12) {
			t.Fatalf("upsample = %v, want %v", up, want)
		}
	}
	down, err := Resample(Series{0, 1, 2, 3, 4, 5, 6}, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantDown := Series{0, 2, 4, 6}
	for i := range wantDown {
		if !almostEq(down[i], wantDown[i], 1e-12) {
			t.Fatalf("downsample = %v, want %v", down, wantDown)
		}
	}
}

func TestResampleEdgeCases(t *testing.T) {
	if _, err := Resample(nil, 3); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty: err = %v", err)
	}
	if _, err := Resample(Series{1}, 0); err == nil {
		t.Fatalf("m=0 should error")
	}
	one, err := Resample(Series{2, 4}, 1)
	if err != nil || !almostEq(one[0], 3, 1e-12) {
		t.Fatalf("m=1 should give the mean: %v, %v", one, err)
	}
	constant, err := Resample(Series{5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range constant {
		if v != 5 {
			t.Fatalf("single-point resample = %v", constant)
		}
	}
}

func TestMovingAveragePreservesConstant(t *testing.T) {
	s := Series{3, 3, 3, 3, 3}
	out := MovingAverage(s, 3)
	for i, v := range out {
		if !almostEq(v, 3, 1e-12) {
			t.Fatalf("out[%d] = %v", i, v)
		}
	}
}

func TestMovingAverageWidthOne(t *testing.T) {
	s := Series{1, 5, 2}
	out := MovingAverage(s, 1)
	for i := range s {
		if out[i] != s[i] {
			t.Fatalf("width 1 must copy: %v", out)
		}
	}
}

func TestMovingAverageSmooths(t *testing.T) {
	// Alternating spikes should flatten: variance must strictly drop.
	s := make(Series, 32)
	for i := range s {
		if i%2 == 0 {
			s[i] = 1
		}
	}
	out := MovingAverage(s, 5)
	if out.Std() >= s.Std() {
		t.Fatalf("smoothing did not reduce variance: %v >= %v", out.Std(), s.Std())
	}
	// Mean approximately preserved.
	if !almostEq(out.Mean(), s.Mean(), 0.06) {
		t.Fatalf("mean drifted: %v vs %v", out.Mean(), s.Mean())
	}
}

func TestExponentialSmoothing(t *testing.T) {
	s := Series{0, 1, 1, 1}
	out, err := ExponentialSmoothing(s, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := Series{0, 0.5, 0.75, 0.875}
	for i := range want {
		if !almostEq(out[i], want[i], 1e-12) {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
	if _, err := ExponentialSmoothing(s, 0); err == nil {
		t.Fatal("alpha=0 should error")
	}
	if _, err := ExponentialSmoothing(s, 1.5); err == nil {
		t.Fatal("alpha>1 should error")
	}
	if out, err := ExponentialSmoothing(nil, 0.5); err != nil || len(out) != 0 {
		t.Fatalf("empty input should be fine: %v, %v", out, err)
	}
}

func TestClamp(t *testing.T) {
	out := Clamp(Series{-1, 0.5, 2}, 0, 1)
	want := Series{0, 0.5, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("clamp = %v, want %v", out, want)
		}
	}
}
