package timeseries

import (
	"fmt"
	"math"
)

// Normalization captures a reversible affine transform applied uniformly to
// a dataset so that values fall into [0, 1]. Chiaroscuro requires a bounded
// value domain: the differential-privacy sensitivity of the per-cluster
// sums is derived from the bound (see internal/dp).
type Normalization struct {
	// Offset and Scale satisfy normalized = (raw - Offset) * Scale.
	Offset float64
	Scale  float64
}

// NormalizeMinMax rescales all series jointly to [0, 1] using the global
// min and max of the dataset, returning the transform used. The series are
// modified in place. A constant dataset maps to all zeros with Scale 1.
// Non-finite values (NaN, ±Inf) are rejected: a NaN would silently slip
// past the min/max scan (every comparison with it is false) and poison
// the normalized dataset, surfacing only later as a confusing
// domain-violation error in the protocol.
func NormalizeMinMax(set []Series) (Normalization, error) {
	if len(set) == 0 {
		return Normalization{}, ErrEmpty
	}
	min, max := math.Inf(1), math.Inf(-1)
	for i, s := range set {
		if len(s) == 0 {
			return Normalization{}, ErrEmpty
		}
		for j, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return Normalization{}, fmt.Errorf("timeseries: series %d has non-finite value %v at %d", i, v, j)
			}
		}
		if v := s.Min(); v < min {
			min = v
		}
		if v := s.Max(); v > max {
			max = v
		}
	}
	n := Normalization{Offset: min, Scale: 1}
	if max > min {
		n.Scale = 1 / (max - min)
	}
	for _, s := range set {
		for i := range s {
			s[i] = (s[i] - n.Offset) * n.Scale
		}
	}
	return n, nil
}

// Apply maps a raw value into the normalized domain.
func (n Normalization) Apply(v float64) float64 {
	return (v - n.Offset) * n.Scale
}

// Invert maps a normalized value back to the raw domain.
func (n Normalization) Invert(v float64) float64 {
	if n.Scale == 0 {
		return n.Offset
	}
	return v/n.Scale + n.Offset
}

// ApplySeries maps a whole raw series into the normalized domain,
// returning a new series.
func (n Normalization) ApplySeries(s Series) Series {
	out := make(Series, len(s))
	for i, v := range s {
		out[i] = n.Apply(v)
	}
	return out
}

// InvertSeries maps a normalized series back to the raw domain, returning
// a new series.
func (n Normalization) InvertSeries(s Series) Series {
	out := make(Series, len(s))
	for i, v := range s {
		out[i] = n.Invert(v)
	}
	return out
}

// ZScoreEach standardizes each series independently to zero mean and unit
// variance (constant series become all-zero). It returns the per-series
// (mean, std) pairs so callers can invert the transform.
func ZScoreEach(set []Series) (means, stds []float64, err error) {
	if len(set) == 0 {
		return nil, nil, ErrEmpty
	}
	means = make([]float64, len(set))
	stds = make([]float64, len(set))
	for i, s := range set {
		if len(s) == 0 {
			return nil, nil, fmt.Errorf("timeseries: series %d: %w", i, ErrEmpty)
		}
		m, sd := s.Mean(), s.Std()
		means[i], stds[i] = m, sd
		if sd == 0 {
			for j := range s {
				s[j] = 0
			}
			continue
		}
		for j := range s {
			s[j] = (s[j] - m) / sd
		}
	}
	return means, stds, nil
}
