package core

import (
	"testing"
)

// TestDecryptQuorumFailureDegradesGracefully injects a hostile
// configuration — a large decryption threshold, a tight retry window and
// aggressive churn — and verifies the protocol's documented degradation:
// iterations that cannot assemble a quorum keep the previous centroids,
// are counted in DecryptFailures, and the run still produces a trace.
func TestDecryptQuorumFailureDegradesGracefully(t *testing.T) {
	data := blobs(60, 3, 2)
	var sawFailure bool
	for seed := int64(0); seed < 6 && !sawFailure; seed++ {
		tr, err := Run(data, Params{
			K: 2, Epsilon: 50, Iterations: 3, Seed: seed,
			DecryptThreshold: 40, // needs 40 of 59 peers
			DecryptWindow:    1,  // nearly no retries
			GossipRounds:     6,
			ChurnCrashProb:   0.08,
			ChurnRejoinProb:  0.5,
		})
		if err != nil {
			// A fully hostile network may legitimately abort; that is
			// also a documented outcome.
			continue
		}
		if tr.DecryptFailures > 0 {
			sawFailure = true
			if len(tr.Iterations) == 0 {
				t.Fatal("failures but no trace at all")
			}
		}
	}
	if !sawFailure {
		t.Fatal("no decryption failure induced across 6 hostile seeds — injection ineffective")
	}
}

// TestPermanentFailuresWithReset exercises the ChurnResetOnRejoin path:
// rejoining nodes restart from scratch and resynchronize via gossip (the
// paper's "late participants" rule). The run must complete and the reset
// nodes must not corrupt the observer's trace.
func TestPermanentFailuresWithReset(t *testing.T) {
	data := blobs(120, 3, 2)
	tr, err := Run(data, Params{
		K: 2, Epsilon: 200, Iterations: 3, Seed: 3,
		ChurnCrashProb:     0.03,
		ChurnRejoinProb:    0.5,
		ChurnResetOnRejoin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NetStats.Rejoins == 0 {
		t.Skip("no rejoin happened on this seed; churn too mild")
	}
	if len(tr.Iterations) != 3 {
		t.Fatalf("iterations = %d", len(tr.Iterations))
	}
	// Reset nodes drop mass, so distortion grows — but the trace must
	// stay within sane bounds.
	if tr.Iterations[len(tr.Iterations)-1].NoiseRMSE > 0.5 {
		t.Fatalf("noise RMSE = %v", tr.Iterations[len(tr.Iterations)-1].NoiseRMSE)
	}
}

// TestLateSyncPullsLaggardsForward checks the late-synchronization rule
// directly: even when many nodes crash mid-iteration and rejoin with
// state kept, everyone that survives ends on the final iteration.
func TestLateSyncPullsLaggardsForward(t *testing.T) {
	data := blobs(100, 3, 2)
	tr, err := Run(data, Params{
		K: 2, Epsilon: 200, Iterations: 4, Seed: 9,
		ChurnCrashProb:  0.05,
		ChurnRejoinProb: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The observer must have completed all iterations despite churn.
	if len(tr.Iterations) != 4 {
		t.Fatalf("observer completed %d iterations", len(tr.Iterations))
	}
	if tr.CyclesRun == 0 || tr.NetStats.Crashes == 0 {
		t.Fatalf("suspicious run: %+v", tr.NetStats)
	}
}

// TestZeroChurnHasNoFailures pins the baseline: without churn there must
// be no decrypt failures, drops, or stale messages beyond the frozen-
// estimate window.
func TestZeroChurnHasNoFailures(t *testing.T) {
	data := blobs(80, 3, 2)
	tr, err := Run(data, Params{K: 2, Epsilon: 100, Iterations: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.DecryptFailures != 0 {
		t.Fatalf("decrypt failures without churn: %d", tr.DecryptFailures)
	}
	if tr.NetStats.MessagesDropped != 0 {
		t.Fatalf("drops without churn: %d", tr.NetStats.MessagesDropped)
	}
	if tr.NetStats.Crashes != 0 || tr.NetStats.Rejoins != 0 {
		t.Fatalf("phantom churn: %+v", tr.NetStats)
	}
}
