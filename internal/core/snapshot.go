package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"sort"

	"chiaroscuro/internal/gossip"
	"chiaroscuro/internal/p2p"
	"chiaroscuro/internal/wire"
)

// snapshot.go makes a networked participant's complete mutable state
// explicitly serializable, so a crashed daemon can restart from an
// epoch checkpoint and replay its run bit-identically. A snapshot
// captures everything a Node mutates while stepping: the protocol
// phase machine, the diptych (public centroids and, mid-gossip, the
// encrypted push-sum state), the decryption collection buffers, the
// disclosed history, and the one-word splitmix64 state of the noise
// RNG. The run-wide immutable configuration (params, data, suite) is
// NOT in the snapshot — the restarting daemon reconstructs it from the
// same (data, params) every process derives — with one exception: the
// Damgård–Jurik ceremony key material (this process's own share only),
// which cannot be re-derived because the ceremony entropy came from
// crypto/rand and the mesh has moved past the ceremony.
//
// The hot-path scratch buffers (emit double-buffers, arena vectors,
// inbox classification slices) are deliberately absent: they are
// rebuilt lazily on the next activation and hold no trajectory state.

const (
	snapMagic uint32 = 0xC1A85A9B
	// snapVersion 2 added the decrypt-phase outstanding-request window
	// (sorted (peer, ttl) pairs after the asked block). v1 snapshots are
	// rejected — a pre-window checkpoint cannot resume the windowed
	// trajectory bit-identically anyway.
	snapVersion uint32 = 2
)

// errSnapshot wraps every malformed-snapshot condition so callers can
// distinguish corruption from config mismatch if they care to.
var errSnapshot = errors.New("core: malformed snapshot")

func snapErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errSnapshot, fmt.Sprintf(format, args...))
}

// appendU64Field appends one 8-byte big-endian scalar field.
func appendU64Field(buf []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return wire.AppendBytes(buf, b[:])
}

func readU64Field(fr *wire.FieldReader) (uint64, error) {
	b, err := fr.Bytes()
	if err != nil {
		return 0, err
	}
	if len(b) != 8 {
		return 0, snapErr("scalar field %d bytes, want 8", len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}

// Snapshot serializes the node's complete mutable state. The intended
// call point is an epoch boundary (the transport checkpoints after a
// barrier completes), but any quiescent moment between Step calls is
// valid. The encoding is the wire package's length-prefixed field
// format; floats travel as IEEE-754 bit patterns so a restore is
// bit-exact, NaNs included.
func (nd *Node) Snapshot() ([]byte, error) {
	p := nd.pt

	buf := wire.AppendUint32(nil, snapMagic)
	buf = wire.AppendUint32(buf, snapVersion)

	// Header blob: everything RestoreNode needs BEFORE it can build the
	// run setup — identity, RNG state, and the ceremony key material.
	var hdr []byte
	hdr = appendU64Field(hdr, nd.Fingerprint())
	hdr = wire.AppendUint32(hdr, uint32(p.id))
	hdr = appendU64Field(hdr, p.rngSrc.State())
	if m := nd.rs.p.DJMaterial; m != nil {
		var gb bytes.Buffer
		if err := gob.NewEncoder(&gb).Encode(m); err != nil {
			return nil, fmt.Errorf("core: snapshot key material: %w", err)
		}
		hdr = wire.AppendUint32(hdr, 1)
		hdr = wire.AppendBytes(hdr, gb.Bytes())
	} else {
		hdr = wire.AppendUint32(hdr, 0)
	}
	buf = wire.AppendBytes(buf, hdr)

	// State blob: the participant's mutable protocol state.
	var st []byte
	st = wire.AppendUint32(st, uint32(p.phase))
	st = wire.AppendUint32(st, uint32(p.iter))
	st = wire.AppendUint32(st, uint32(p.roundsDone))
	st = wire.AppendUint32(st, uint32(p.assignment))
	st = wire.AppendUint32(st, uint32(p.waitCycles))
	st = wire.AppendUint32(st, uint32(p.staleDrops))
	st = wire.AppendUint32(st, uint32(p.decryptFail))
	st = wire.AppendUint32(st, uint32(p.diptych.Iteration))
	st = appendFloats(st, p.diptych.Centroids)

	// The encrypted push-sum state only matters in the phases that read
	// it before stepAssign rebuilds it (gossip and decrypt); elsewhere a
	// stale Means is dead weight, so it is dropped.
	if p.diptych.Means != nil && (p.phase == phaseGossip || p.phase == phaseDecrypt) {
		st = wire.AppendUint32(st, 1)
		st = appendU64Field(st, math.Float64bits(p.diptych.Means.Weight()))
		cv, err := nd.codec.MarshalCipherVector(p.diptych.Means.Values())
		if err != nil {
			return nil, fmt.Errorf("core: snapshot push-sum state: %w", err)
		}
		st = wire.AppendBytes(st, cv)
	} else {
		st = wire.AppendUint32(st, 0)
	}

	// pendingCT's nil-ness is protocol state: stepDecrypt runs step 2c
	// exactly when it is nil, so the flag must round-trip even though an
	// empty vector never occurs.
	if p.pendingCT != nil {
		st = wire.AppendUint32(st, 1)
		cv, err := nd.codec.MarshalCipherVector(p.pendingCT)
		if err != nil {
			return nil, fmt.Errorf("core: snapshot pending ciphertexts: %w", err)
		}
		st = wire.AppendBytes(st, cv)
	} else {
		st = wire.AppendUint32(st, 0)
	}

	// Partials and asked-peers are sets keyed by index/id; sorted so the
	// snapshot bytes are deterministic (map order is not).
	idxs := make([]int, 0, len(p.partials))
	for idx := range p.partials {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	st = wire.AppendUint32(st, uint32(len(idxs)))
	for _, idx := range idxs {
		st = wire.AppendUint32(st, uint32(idx))
		pv, err := nd.codec.MarshalPartialValues(p.partials[idx])
		if err != nil {
			return nil, fmt.Errorf("core: snapshot partials: %w", err)
		}
		st = wire.AppendBytes(st, pv)
	}
	asked := make([]int, 0, len(p.asked))
	for id := range p.asked {
		asked = append(asked, int(id))
	}
	sort.Ints(asked)
	st = wire.AppendUint32(st, uint32(len(asked)))
	for _, id := range asked {
		st = wire.AppendUint32(st, uint32(id))
	}
	outIDs := make([]int, 0, len(p.outstanding))
	for id := range p.outstanding {
		outIDs = append(outIDs, int(id))
	}
	sort.Ints(outIDs)
	st = wire.AppendUint32(st, uint32(len(outIDs)))
	for _, id := range outIDs {
		st = wire.AppendUint32(st, uint32(id))
		st = wire.AppendUint32(st, uint32(p.outstanding[p2p.NodeID(id)]))
	}

	st = wire.AppendUint32(st, uint32(len(p.history)))
	for _, h := range p.history {
		st = wire.AppendUint32(st, uint32(h.Iteration))
		st = appendU64Field(st, math.Float64bits(h.Epsilon))
		st = appendFloats(st, h.PerturbedCentroids)
		st = appendFloats(st, [][]float64{h.PerturbedCounts})
		st = appendU64Field(st, math.Float64bits(h.PerturbedInertia))
		st = wire.AppendUint32(st, uint32(h.Assignment))
		st = appendU64Field(st, math.Float64bits(h.Displacement))
		failed := uint32(0)
		if h.DecryptFailed {
			failed = 1
		}
		st = wire.AppendUint32(st, failed)
		st = wire.AppendUint32(st, uint32(h.CompletedAtCycle))
	}
	buf = wire.AppendBytes(buf, st)
	return buf, nil
}

// snapshotHeader is the pre-construction part of a snapshot.
type snapshotHeader struct {
	fingerprint uint64
	id          int
	rngState    uint64
	material    *DJKeyMaterial
}

// parseSnapshotHeader splits a snapshot into its header (decoded) and
// its still-encoded state blob.
func parseSnapshotHeader(snap []byte) (*snapshotHeader, []byte, error) {
	fr := wire.NewFieldReader(snap)
	magic, err := fr.Uint32()
	if err != nil {
		return nil, nil, snapErr("truncated: %v", err)
	}
	if magic != snapMagic {
		return nil, nil, snapErr("bad magic 0x%08x", magic)
	}
	version, err := fr.Uint32()
	if err != nil {
		return nil, nil, snapErr("truncated: %v", err)
	}
	if version != snapVersion {
		return nil, nil, snapErr("version %d, want %d", version, snapVersion)
	}
	hdrBytes, err := fr.Bytes()
	if err != nil {
		return nil, nil, snapErr("header: %v", err)
	}
	stBytes, err := fr.Bytes()
	if err != nil {
		return nil, nil, snapErr("state: %v", err)
	}
	if err := fr.Done(); err != nil {
		return nil, nil, snapErr("trailing bytes: %v", err)
	}

	h := &snapshotHeader{}
	hr := wire.NewFieldReader(hdrBytes)
	if h.fingerprint, err = readU64Field(hr); err != nil {
		return nil, nil, err
	}
	idU, err := hr.Uint32()
	if err != nil {
		return nil, nil, snapErr("id: %v", err)
	}
	h.id = int(idU)
	if h.rngState, err = readU64Field(hr); err != nil {
		return nil, nil, err
	}
	hasMat, err := hr.Uint32()
	if err != nil {
		return nil, nil, snapErr("material flag: %v", err)
	}
	switch hasMat {
	case 0:
	case 1:
		mb, err := hr.Bytes()
		if err != nil {
			return nil, nil, snapErr("material: %v", err)
		}
		var m DJKeyMaterial
		if err := gob.NewDecoder(bytes.NewReader(mb)).Decode(&m); err != nil {
			return nil, nil, snapErr("material: %v", err)
		}
		h.material = &m
	default:
		return nil, nil, snapErr("material flag %d", hasMat)
	}
	if err := hr.Done(); err != nil {
		return nil, nil, snapErr("header trailing bytes: %v", err)
	}
	return h, stBytes, nil
}

// RestoreNode rebuilds a Node from the shared run configuration and a
// snapshot taken by Node.Snapshot. The (data, params) must be the same
// configuration the snapshotted node was built from — the snapshot's
// fingerprint is checked against it, so a restart launched with
// different flags fails loudly instead of diverging. Ceremony key
// material embedded in the snapshot takes the place of re-running the
// key ceremony.
func RestoreNode(data [][]float64, params Params, id int, snap []byte) (*Node, error) {
	h, stBytes, err := parseSnapshotHeader(snap)
	if err != nil {
		return nil, err
	}
	if h.id != id {
		return nil, snapErr("snapshot is node %d's, not node %d's", h.id, id)
	}
	if h.material != nil {
		params.DJMaterial = h.material
	}
	fp, err := ConfigFingerprint(data, params)
	if err != nil {
		return nil, err
	}
	if h.fingerprint != fp {
		return nil, fmt.Errorf("core: snapshot fingerprint %016x does not match run configuration %016x", h.fingerprint, fp)
	}
	nd, err := NewNode(data, params, id)
	if err != nil {
		return nil, err
	}
	if err := nd.restoreState(h, stBytes); err != nil {
		nd.Close()
		return nil, err
	}
	return nd, nil
}

// restoreState decodes the participant state blob into the freshly
// constructed node, validating every field against the run
// configuration so a corrupted checkpoint is rejected instead of
// desynchronizing (or crashing) the participant.
func (nd *Node) restoreState(h *snapshotHeader, st []byte) error {
	p := nd.pt
	r := p.run
	fr := wire.NewFieldReader(st)

	u32 := func(name string) (int, error) {
		v, err := fr.Uint32()
		if err != nil {
			return 0, snapErr("%s: %v", name, err)
		}
		return int(v), nil
	}
	phaseV, err := u32("phase")
	if err != nil {
		return err
	}
	if phaseV > int(phaseDone) {
		return snapErr("phase %d out of range", phaseV)
	}
	iter, err := u32("iter")
	if err != nil {
		return err
	}
	if iter >= len(r.epsSched) {
		return snapErr("iteration %d outside schedule of %d", iter, len(r.epsSched))
	}
	roundsDone, err := u32("roundsDone")
	if err != nil {
		return err
	}
	assignment, err := u32("assignment")
	if err != nil {
		return err
	}
	if assignment >= r.params.K {
		return snapErr("assignment %d outside K=%d", assignment, r.params.K)
	}
	waitCycles, err := u32("waitCycles")
	if err != nil {
		return err
	}
	staleDrops, err := u32("staleDrops")
	if err != nil {
		return err
	}
	decryptFail, err := u32("decryptFail")
	if err != nil {
		return err
	}
	dipIter, err := u32("diptych iteration")
	if err != nil {
		return err
	}
	centroids, err := readFloats(fr, r.params.K, r.dim)
	if err != nil {
		return snapErr("centroids: %v", err)
	}

	hasMeans, err := u32("means flag")
	if err != nil {
		return err
	}
	var means *gossip.State[Cipher]
	switch hasMeans {
	case 0:
	case 1:
		wBits, err := readU64Field(fr)
		if err != nil {
			return err
		}
		w := math.Float64frombits(wBits)
		if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 || w > float64(r.population) {
			return snapErr("implausible push-sum weight %g", w)
		}
		cv, err := fr.Bytes()
		if err != nil {
			return snapErr("push-sum vector: %v", err)
		}
		cs, err := nd.codec.UnmarshalCipherVector(cv)
		if err != nil {
			return snapErr("push-sum vector: %v", err)
		}
		if len(cs) != 2*r.sideCiphers {
			return snapErr("push-sum vector of %d ciphers, want %d", len(cs), 2*r.sideCiphers)
		}
		means, err = gossip.NewState[Cipher](r.ring, cs, w)
		if err != nil {
			return snapErr("push-sum state: %v", err)
		}
		// Mirror stepAssign's construction: the restored values are
		// freshly cloned and exclusively owned, so the in-place hot path
		// stays sound under the same conditions.
		if r.mut != nil {
			means.SetMutable()
		}
		if r.batchHint > 0 {
			means.ReserveBatch(r.batchHint)
		}
	default:
		return snapErr("means flag %d", hasMeans)
	}

	hasPending, err := u32("pending flag")
	if err != nil {
		return err
	}
	var pendingCT []Cipher
	switch hasPending {
	case 0:
	case 1:
		cv, err := fr.Bytes()
		if err != nil {
			return snapErr("pending ciphertexts: %v", err)
		}
		cs, err := nd.codec.UnmarshalCipherVector(cv)
		if err != nil {
			return snapErr("pending ciphertexts: %v", err)
		}
		if len(cs) != r.sideCiphers {
			return snapErr("pending vector of %d ciphers, want %d", len(cs), r.sideCiphers)
		}
		pendingCT = cs
	default:
		return snapErr("pending flag %d", hasPending)
	}
	if pendingCT != nil && means == nil {
		return snapErr("pending ciphertexts without push-sum state")
	}

	nPartials, err := u32("partials count")
	if err != nil {
		return err
	}
	if nPartials > nd.rs.suite.Parties() {
		return snapErr("%d partial sets for %d parties", nPartials, nd.rs.suite.Parties())
	}
	var partials map[int][]Partial
	if phase(phaseV) == phaseDecrypt {
		partials = make(map[int][]Partial, nPartials)
	} else if nPartials > 0 {
		return snapErr("partials outside decrypt phase")
	}
	for i := 0; i < nPartials; i++ {
		idx, err := u32("partial index")
		if err != nil {
			return err
		}
		if idx < 1 || idx > nd.rs.suite.Parties() {
			return snapErr("partial index %d outside [1, %d]", idx, nd.rs.suite.Parties())
		}
		pv, err := fr.Bytes()
		if err != nil {
			return snapErr("partial values: %v", err)
		}
		ps, err := nd.codec.UnmarshalPartialValues(idx, pv)
		if err != nil {
			return snapErr("partial values: %v", err)
		}
		if len(ps) != r.sideCiphers {
			return snapErr("partial set of %d values, want %d", len(ps), r.sideCiphers)
		}
		if _, dup := partials[idx]; dup {
			return snapErr("duplicate partial index %d", idx)
		}
		partials[idx] = ps
	}

	nAsked, err := u32("asked count")
	if err != nil {
		return err
	}
	if nAsked > r.population {
		return snapErr("%d asked peers in population %d", nAsked, r.population)
	}
	var asked map[p2p.NodeID]bool
	if phase(phaseV) == phaseDecrypt {
		asked = make(map[p2p.NodeID]bool, nAsked)
	} else if nAsked > 0 {
		return snapErr("asked peers outside decrypt phase")
	}
	for i := 0; i < nAsked; i++ {
		id, err := u32("asked id")
		if err != nil {
			return err
		}
		if id >= r.population {
			return snapErr("asked id %d outside population %d", id, r.population)
		}
		asked[p2p.NodeID(id)] = true
	}

	nOut, err := u32("outstanding count")
	if err != nil {
		return err
	}
	if nOut > nAsked {
		return snapErr("%d outstanding asks for %d asked peers", nOut, nAsked)
	}
	var outstanding map[p2p.NodeID]int
	if phase(phaseV) == phaseDecrypt {
		outstanding = make(map[p2p.NodeID]int, nOut)
	} else if nOut > 0 {
		return snapErr("outstanding asks outside decrypt phase")
	}
	for i := 0; i < nOut; i++ {
		id, err := u32("outstanding id")
		if err != nil {
			return err
		}
		if id >= r.population {
			return snapErr("outstanding id %d outside population %d", id, r.population)
		}
		ttl, err := u32("outstanding ttl")
		if err != nil {
			return err
		}
		if ttl < 1 || ttl > askTTL {
			return snapErr("outstanding ttl %d outside [1, %d]", ttl, askTTL)
		}
		if !asked[p2p.NodeID(id)] {
			return snapErr("outstanding ask for un-asked peer %d", id)
		}
		if _, dup := outstanding[p2p.NodeID(id)]; dup {
			return snapErr("duplicate outstanding id %d", id)
		}
		outstanding[p2p.NodeID(id)] = ttl
	}

	nHistory, err := u32("history count")
	if err != nil {
		return err
	}
	if nHistory > r.params.Iterations {
		return snapErr("%d history entries for %d iterations", nHistory, r.params.Iterations)
	}
	history := make([]IterationResult, 0, nHistory)
	for i := 0; i < nHistory; i++ {
		var rec IterationResult
		if rec.Iteration, err = u32("history iteration"); err != nil {
			return err
		}
		epsBits, err := readU64Field(fr)
		if err != nil {
			return err
		}
		rec.Epsilon = math.Float64frombits(epsBits)
		if rec.PerturbedCentroids, err = readFloats(fr, r.params.K, r.dim); err != nil {
			return snapErr("history centroids: %v", err)
		}
		counts, err := readFloats(fr, 1, r.params.K)
		if err != nil {
			return snapErr("history counts: %v", err)
		}
		rec.PerturbedCounts = counts[0]
		inBits, err := readU64Field(fr)
		if err != nil {
			return err
		}
		rec.PerturbedInertia = math.Float64frombits(inBits)
		if rec.Assignment, err = u32("history assignment"); err != nil {
			return err
		}
		if rec.Assignment >= r.params.K {
			return snapErr("history assignment %d outside K=%d", rec.Assignment, r.params.K)
		}
		dBits, err := readU64Field(fr)
		if err != nil {
			return err
		}
		rec.Displacement = math.Float64frombits(dBits)
		failed, err := u32("history failed flag")
		if err != nil {
			return err
		}
		if failed > 1 {
			return snapErr("history failed flag %d", failed)
		}
		rec.DecryptFailed = failed == 1
		if rec.CompletedAtCycle, err = u32("history cycle"); err != nil {
			return err
		}
		history = append(history, rec)
	}
	if err := fr.Done(); err != nil {
		return snapErr("trailing state bytes: %v", err)
	}

	// Everything validated — commit.
	p.rngSrc.SetState(h.rngState)
	p.phase = phase(phaseV)
	p.iter = iter
	p.roundsDone = roundsDone
	p.assignment = assignment
	p.waitCycles = waitCycles
	p.staleDrops = staleDrops
	p.decryptFail = decryptFail
	p.diptych.Iteration = dipIter
	p.diptych.Centroids = centroids
	p.diptych.Means = means
	p.pendingCT = pendingCT
	p.partials = partials
	p.asked = asked
	p.outstanding = outstanding
	p.history = history
	return nil
}
