package core

import (
	"math"
	"testing"
)

// oracleMeanSq computes the true mean squared distance of the data to the
// closest of the given centroids.
func oracleMeanSq(data, centroids [][]float64) float64 {
	var total float64
	for _, s := range data {
		best := math.Inf(1)
		for _, c := range centroids {
			var acc float64
			for t := range s {
				d := s[t] - c[t]
				acc += d * d
			}
			if acc < best {
				best = acc
			}
		}
		total += best
	}
	return total / float64(len(data))
}

func TestTrackedInertiaMatchesOracle(t *testing.T) {
	data := blobs(200, 4, 2)
	tr, err := Run(data, Params{
		K: 2, Epsilon: 5000, Iterations: 3, Seed: 13,
		TrackInertia: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Compare the last iteration's disclosed inertia to the oracle value
	// under the centroids the assignment used (the previous iteration's
	// centroids, i.e. the ones in effect at assignment time).
	last := tr.Iterations[len(tr.Iterations)-1]
	if math.IsNaN(last.PerturbedInertia) {
		t.Fatal("tracked inertia is NaN")
	}
	// The assignment in the final iteration used the previous disclosed
	// centroids; with ε≈∞ and converged blobs both are ≈ the blob means,
	// so the oracle from the final centroids is a valid reference.
	want := oracleMeanSq(data, last.PerturbedCentroids)
	if math.Abs(last.PerturbedInertia-want) > 0.02+0.2*want {
		t.Fatalf("tracked inertia %v, oracle %v", last.PerturbedInertia, want)
	}
}

func TestInertiaNotTrackedIsNaN(t *testing.T) {
	data := blobs(60, 3, 2)
	tr, err := Run(data, Params{K: 2, Epsilon: 100, Iterations: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range tr.Iterations {
		if !math.IsNaN(it.PerturbedInertia) {
			t.Fatalf("inertia reported without tracking: %v", it.PerturbedInertia)
		}
	}
}

func TestInertiaStopTerminatesEarly(t *testing.T) {
	// Tight blobs: inertia plateaus immediately after the first
	// iteration, so a 5% improvement threshold must stop the run well
	// before the 10-iteration cap.
	data := blobs(200, 3, 2)
	tr, err := Run(data, Params{
		K: 2, Epsilon: 5000, Iterations: 10, Seed: 21,
		TrackInertia:         true,
		InertiaStopThreshold: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Iterations) >= 10 {
		t.Fatalf("ran all %d iterations despite quality plateau", len(tr.Iterations))
	}
	if tr.ConvergedAtIteration < 0 {
		t.Fatal("early stop not reported as convergence")
	}
	// Unused budget preserved.
	if tr.Privacy.SpentEpsilon >= tr.Privacy.TotalEpsilon-1e-9 {
		t.Fatalf("no budget saved: %+v", tr.Privacy)
	}
}

func TestInertiaStopRequiresTracking(t *testing.T) {
	data := blobs(20, 3, 2)
	if _, err := Run(data, Params{
		K: 2, Epsilon: 1, InertiaStopThreshold: 0.05,
	}); err == nil {
		t.Fatal("InertiaStopThreshold without TrackInertia should error")
	}
	if _, err := Run(data, Params{
		K: 2, Epsilon: 1, TrackInertia: true, InertiaStopThreshold: -1,
	}); err == nil {
		t.Fatal("negative threshold should error")
	}
}

func TestTrackingRaisesNoiseScale(t *testing.T) {
	// Same ε: the run with tracking must show at least as much centroid
	// noise (its sensitivity is strictly larger), and its per-iteration
	// disclosure includes one more aggregate.
	data := blobs(150, 6, 2)
	base := Params{K: 2, Epsilon: 3, Iterations: 3, Seed: 31}
	plain, err := Run(data, base)
	if err != nil {
		t.Fatal(err)
	}
	tracked := base
	tracked.TrackInertia = true
	withTrack, err := Run(data, tracked)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(tr *Trace) float64 {
		var s float64
		for _, it := range tr.Iterations {
			s += it.NoiseRMSE
		}
		return s / float64(len(tr.Iterations))
	}
	if avg(withTrack) < avg(plain)*0.9 {
		t.Fatalf("tracking reduced noise?! %v vs %v", avg(withTrack), avg(plain))
	}
}

func TestTrackingWorksWithRealCrypto(t *testing.T) {
	data := blobs(12, 3, 2)
	tr, err := Run(data, Params{
		K: 2, Epsilon: 500, Iterations: 2, Seed: 7,
		TrackInertia: true,
		Backend:      BackendDamgardJurik, ModulusBits: 128,
		DecryptThreshold: 3, GossipRounds: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(tr.Iterations[len(tr.Iterations)-1].PerturbedInertia) {
		t.Fatal("no inertia under real crypto")
	}
}
