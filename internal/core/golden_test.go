package core

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// golden_test.go pins the disclosed trajectories of seeded small runs as
// committed fixtures, so a refactor anywhere in the stack — engines,
// gossip, fixed point, packing, crypto fast paths — cannot silently
// change what the protocol discloses. Floats are stored as IEEE-754 bit
// patterns (hex), compared exactly.
//
// Regenerate after an *intentional* disclosure change with:
//
//	go test ./internal/core -run Golden -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden trajectory fixtures")

const goldenPath = "testdata/golden_trajectories.json"

// goldenRun is one pinned configuration's disclosed outcome.
type goldenRun struct {
	Name string
	// Iterations[i][j] is iteration i's disclosed centroid j, each
	// coordinate an IEEE-754 bit pattern in hex.
	Iterations [][][]string
	// Counts[i] are iteration i's disclosed relative cluster sizes.
	Counts [][]string
	// Final are the final centroids.
	Final [][]string
}

// goldenConfigs are the pinned runs: both backends, packed and
// unpacked, plus the inertia-tracking disclosure variant. Populations
// and key sizes are small enough for CI but exercise the full protocol.
func goldenConfigs() []struct {
	name   string
	data   [][]float64
	params Params
} {
	plain := blobs(48, 4, 3)
	dj := blobs(16, 3, 2)
	base := Params{K: 3, Epsilon: 20, Iterations: 3, Seed: 41, GossipRounds: 10, DecryptThreshold: 4}
	packed := base
	packed.Packed = true
	inertia := base
	inertia.TrackInertia = true
	djBase := Params{
		K: 2, Epsilon: 100, Iterations: 2, Seed: 17,
		GossipRounds: 8, DecryptThreshold: 4,
		Backend: BackendDamgardJurik, ModulusBits: 128,
	}
	djPacked := djBase
	djPacked.Packed = true
	return []struct {
		name   string
		data   [][]float64
		params Params
	}{
		{"plain-unpacked", plain, base},
		{"plain-packed", plain, packed},
		{"plain-inertia", plain, inertia},
		{"dj-unpacked", dj, djBase},
		{"dj-packed", dj, djPacked},
	}
}

func hexFloat(v float64) string {
	return strconv.FormatUint(math.Float64bits(v), 16)
}

func hexMatrix(m [][]float64) [][]string {
	out := make([][]string, len(m))
	for i, row := range m {
		out[i] = make([]string, len(row))
		for j, v := range row {
			out[i][j] = hexFloat(v)
		}
	}
	return out
}

func hexVector(v []float64) []string {
	out := make([]string, len(v))
	for i, x := range v {
		out[i] = hexFloat(x)
	}
	return out
}

func goldenFromTrace(name string, tr *Trace) goldenRun {
	g := goldenRun{Name: name, Final: hexMatrix(tr.FinalCentroids)}
	for _, it := range tr.Iterations {
		g.Iterations = append(g.Iterations, hexMatrix(it.PerturbedCentroids))
		g.Counts = append(g.Counts, hexVector(it.PerturbedCounts))
	}
	return g
}

// TestGoldenTrajectories compares every pinned configuration — run under
// both the sequential and the sharded engine — against the committed
// fixture, bit for bit.
func TestGoldenTrajectories(t *testing.T) {
	var got []goldenRun
	for _, cfg := range goldenConfigs() {
		seq, err := Run(cfg.data, cfg.params)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		shParams := cfg.params
		shParams.Workers = 5
		sh, err := RunSharded(cfg.data, shParams)
		if err != nil {
			t.Fatalf("%s sharded: %v", cfg.name, err)
		}
		assertTracesBitIdentical(t, seq, sh, cfg.name+" sharded-vs-seq")
		got = append(got, goldenFromTrace(cfg.name, seq))
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d runs", goldenPath, len(got))
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing fixture (run with -update-golden to create): %v", err)
	}
	var want []goldenRun
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("fixture has %d runs, produced %d (regenerate with -update-golden)", len(want), len(got))
	}
	for i := range want {
		if err := diffGolden(want[i], got[i]); err != nil {
			t.Errorf("%s: disclosed trajectory changed: %v\n(if intentional, regenerate with -update-golden)", want[i].Name, err)
		}
	}
}

func diffGolden(want, got goldenRun) error {
	if want.Name != got.Name {
		return fmt.Errorf("name %q vs %q", want.Name, got.Name)
	}
	if len(want.Iterations) != len(got.Iterations) {
		return fmt.Errorf("%d vs %d iterations", len(want.Iterations), len(got.Iterations))
	}
	for i := range want.Iterations {
		if err := diffHexMatrix(want.Iterations[i], got.Iterations[i]); err != nil {
			return fmt.Errorf("iteration %d centroids: %w", i, err)
		}
		if err := diffHexMatrix([][]string{want.Counts[i]}, [][]string{got.Counts[i]}); err != nil {
			return fmt.Errorf("iteration %d counts: %w", i, err)
		}
	}
	if err := diffHexMatrix(want.Final, got.Final); err != nil {
		return fmt.Errorf("final centroids: %w", err)
	}
	return nil
}

func diffHexMatrix(want, got [][]string) error {
	if len(want) != len(got) {
		return fmt.Errorf("%d vs %d rows", len(want), len(got))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			return fmt.Errorf("row %d: %d vs %d cols", i, len(want[i]), len(got[i]))
		}
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				wb, _ := strconv.ParseUint(want[i][j], 16, 64)
				gb, _ := strconv.ParseUint(got[i][j], 16, 64)
				return fmt.Errorf("[%d][%d]: %v (%s) vs %v (%s)",
					i, j, math.Float64frombits(wb), want[i][j], math.Float64frombits(gb), got[i][j])
			}
		}
	}
	return nil
}
