package core

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"runtime"

	"chiaroscuro/internal/compactrng"
	"chiaroscuro/internal/dp"
	"chiaroscuro/internal/fixedpoint"
	"chiaroscuro/internal/gossip"
	"chiaroscuro/internal/p2p"
	"chiaroscuro/internal/vecpool"
)

// poolSizer is the optional CipherSuite extension for backends that keep
// a precomputed-randomizer pool: prepareRun resizes it to the run's real
// burst before any participant touches the suite.
type poolSizer interface {
	SizePool(capacity int)
}

// poolBurst sizes the randomizer pool from the run's concurrency and the
// fused encrypted-vector length: each in-flight activation consumes up to
// vectorLen randomizers (one rerandomization per halved ciphertext), and
// up to the effective worker count of activations run concurrently in
// the sharded engine (the sequential and async engines are bounded by
// GOMAXPROCS). The requested Workers is clamped by the same rule the
// p2p scheduler applies — population size and max(64, 4·GOMAXPROCS) —
// so an oversized Workers request cannot balloon the pool past the true
// concurrency. Doubled so the background refill has a cycle of slack.
// Even the sequential engine warrants the full buffer: all n
// participants share the suite, so the single-threaded consumer drains
// vectorLen randomizers per activation while the filler pipelines ahead.
func poolBurst(p Params, population, vectorLen int) int {
	workers := p.Workers
	if workers <= 0 || p.asyncEngine {
		workers = runtime.GOMAXPROCS(0)
	}
	lim := 4 * runtime.GOMAXPROCS(0)
	if lim < 64 {
		lim = 64
	}
	if workers > lim {
		workers = lim
	}
	if workers > population {
		workers = population
	}
	return 2 * workers * vectorLen
}

// TraceIteration is the per-iteration record of a run, pairing what was
// actually disclosed (perturbed centroids/counts) with oracle quantities
// the harness computes outside the protocol (exact means given the same
// assignments) — the data behind the demo's Fig. 3 panels 4 and 5.
type TraceIteration struct {
	Iteration          int
	Epsilon            float64
	PerturbedCentroids [][]float64
	PerturbedCounts    []float64
	// ExactCentroids are the noise-free means the same assignments would
	// have produced (oracle; never computed inside the protocol).
	ExactCentroids [][]float64
	ExactCounts    []int
	// NoiseRMSE is the RMS difference perturbed-vs-exact across all
	// centroid coordinates (index-matched: same clusters).
	NoiseRMSE float64
	// PerturbedInertia is the disclosed quality estimate (mean squared
	// distance to closest centroid) when Params.TrackInertia is set;
	// NaN otherwise.
	PerturbedInertia float64
	CompletedAtCycle int
}

// Trace is the complete observable outcome of a run.
type Trace struct {
	Params     Params
	Iterations []TraceIteration

	FinalCentroids [][]float64
	// Assignments[i] is participant i's cluster under the final
	// centroids (computed by the harness over the cleartext data; inside
	// the protocol each participant only knows its own).
	Assignments []int
	// Inertia is the within-cluster sum of squared distances of the data
	// to FinalCentroids.
	Inertia float64

	// ConvergedAtIteration is the 0-based iteration after which the
	// observer converged, or -1 if it ran all iterations.
	ConvergedAtIteration int

	Privacy  dp.Report
	NetStats p2p.Stats
	Ops      OpCounts

	CyclesRun       int
	DecryptFailures int
	StaleDrops      int
	// DecryptRequests and DecryptBytes account the decrypt phase's wire
	// traffic across the population: requests sent, and request plus
	// response bytes — the figure the outstanding-request window shrinks.
	DecryptRequests int
	DecryptBytes    int64
	// Phases breaks the cycle-driven engines' wall clock down by
	// protocol phase (zero for RunAsync, which has no global cycles to
	// classify).
	Phases PhaseProfile
	// Completed counts participants that finished their full iteration
	// schedule — the quorum-liveness measure of the fault experiments
	// (E11): faults can only lower it from the population size.
	Completed int
}

// runSetup bundles everything prepareRun validates and constructs; both
// execution engines (the cycle-driven Run and the goroutine-based
// RunAsync) start from it.
type runSetup struct {
	p          Params
	epsSched   []float64
	accountant *dp.Accountant
	suite      CipherSuite
	shared     *runShared
	initial    [][]float64
	// series is the population's data in one flat arena (row i is
	// participant i's series): at large N the contiguous layout replaces
	// N separate slice objects with two slabs, which both the garbage
	// collector and the assignment step's linear scans prefer.
	series *vecpool.Matrix
	// ownsSuite is false when the suite was handed in by a RunSession
	// (which keeps it — and its randomizer pool — alive across windows);
	// close then leaves it alone.
	ownsSuite bool
}

// close releases suite-held resources — today the Damgård–Jurik
// backend's randomizer-pool background refill. Each engine defers it
// once its prepareRun succeeds. Session-owned suites outlive the setup:
// the session closes them once, at session close.
func (rs *runSetup) close() {
	if !rs.ownsSuite {
		return
	}
	if c, ok := rs.suite.(interface{ Close() }); ok {
		c.Close()
	}
}

// newParticipant builds one participant over the shared run state (its
// series is the participant's row of the flat series arena). A node the
// fault plan marks byzantine carries its corruption behaviour.
func (rs *runSetup) newParticipant(id p2p.NodeID) *participant {
	// A compact splitmix64 source: 16 bytes instead of the standard
	// source's ~5 KB, which at large N made per-participant RNG state
	// the single biggest heap consumer. Retained beside the rand.Rand
	// so Snapshot can read it.
	src := compactrng.New(rs.p.Seed ^ (int64(id)+1)*0x5851F42D4C957F2D)
	pt := &participant{
		id:     id,
		series: rs.series.Row(int(id)),
		run:    rs.shared,
		rng:    rand.New(src),
		rngSrc: src,
		byz:    rs.p.Faults.ByzantineOf(int(id)),
		diptych: Diptych{
			Centroids: deepCopyMatrix(rs.initial),
		},
	}
	if h := rs.shared.batchHint; h > 0 {
		// Allocation-measurement mode: pre-size the per-activation
		// scratch so no in-degree spike can ever grow it (the per-
		// iteration push-sum column is reserved in stepAssign).
		pt.absorbBatch = make([]*gossip.Message[Cipher], 0, h)
		pt.gossipScratch = make([]*gossipPayload, 0, h)
		pt.respScratch = make([]*decryptResponse, 0, h)
	}
	return pt
}

// Run executes the full Chiaroscuro protocol over the given cleartext
// series (one per participant, all in [0, MaxValue]^dim) on the simulated
// network, sequentially, and returns the trace. Everything is
// deterministic given Params.Seed. RunSharded executes the identical
// simulation across shard workers and produces a bit-identical trace;
// RunAsync trades determinism for real unsynchronized concurrency.
func Run(data [][]float64, params Params) (*Trace, error) {
	rs, err := prepareRun(data, params)
	if err != nil {
		return nil, err
	}
	defer rs.close()
	d, err := newCycleDriver(data, rs, 1, 0)
	if err != nil {
		return nil, err
	}
	return d.run()
}

// initialCentroids returns the run's public iteration-1 centroids for a
// defaulted Params: the caller-supplied matrix, or K data-independent
// uniform random vectors drawn from Seed. Factored out of prepareRun so
// ConfigFingerprint can digest the identical matrix without building a
// suite.
func initialCentroids(p Params, dim int) [][]float64 {
	if p.InitialCentroids != nil {
		return p.InitialCentroids
	}
	rng := rand.New(rand.NewSource(p.Seed))
	initial := make([][]float64, p.K)
	for j := range initial {
		c := make([]float64, dim)
		for t := range c {
			c[t] = rng.Float64() * p.MaxValue
		}
		initial[j] = c
	}
	return initial
}

// prepareRun validates the inputs and constructs the run-wide state for
// a one-shot run: data checks, then a fresh flat series arena, then the
// suite-and-shared-state construction of prepareRunOn.
func prepareRun(data [][]float64, params Params) (*runSetup, error) {
	n := len(data)
	if n < 2 {
		return nil, errors.New("core: need at least 2 participants")
	}
	dim := len(data[0])
	p := params.withDefaults(n)
	if err := p.validate(n, dim); err != nil {
		return nil, err
	}
	for i, s := range data {
		if len(s) != dim {
			return nil, fmt.Errorf("core: participant %d has dim %d, want %d", i, len(s), dim)
		}
		for t, v := range s {
			if v < -1e-9 || v > p.MaxValue+1e-9 {
				return nil, fmt.Errorf("core: participant %d value %v at %d outside [0, %v] — normalize first", i, v, t, p.MaxValue)
			}
		}
	}
	// Flatten the population's series into one contiguous arena; every
	// participant gets a row view (values unchanged, so trajectories
	// are too).
	seriesMat, err := vecpool.FromRows(data)
	if err != nil {
		return nil, err
	}
	return prepareRunOn(seriesMat, p, nil)
}

// prepareRunOn constructs the run-wide state over an existing series
// arena — the reusable half of prepareRun. p must already be defaulted
// and validated, and the series values already range-checked (prepareRun
// does both for one-shot runs; a RunSession does them at open and on
// every window advance). reuseSuite, when non-nil, is re-bound instead
// of building a fresh suite — the session path, which keeps one suite
// (key material, randomizer pool, operation counters) alive across
// windows; the returned setup then does not own it and close leaves it
// running.
func prepareRunOn(seriesMat *vecpool.Matrix, p Params, reuseSuite CipherSuite) (*runSetup, error) {
	n := seriesMat.NumRows()
	dim := seriesMat.Cols()

	// Privacy schedule and accounting. The full schedule is validated
	// against the budget up front (a misbehaving strategy must fail fast)
	// but actual spending is recorded per completed iteration, so early
	// convergence leaves budget unspent.
	accountant, err := dp.NewAccountant(p.Epsilon)
	if err != nil {
		return nil, err
	}
	epsSched, err := p.Strategy.Allocate(p.Epsilon, p.Iterations)
	if err != nil {
		return nil, err
	}
	{
		dryRun, err := dp.NewAccountant(p.Epsilon)
		if err != nil {
			return nil, err
		}
		for i, e := range epsSched {
			if err := dryRun.Spend(fmt.Sprintf("iteration-%d", i), e); err != nil {
				return nil, fmt.Errorf("core: budget strategy overruns: %w", err)
			}
		}
	}

	// Cipher suite. The Damgård–Jurik backend takes its key from (in
	// precedence order) pre-computed ceremony material (networked
	// daemons), an in-process key ceremony (Params.DKG), or the trusted
	// dealer — kept as the oracle the ceremony paths are tested against.
	suite := reuseSuite
	ownsSuite := suite == nil
	if suite == nil {
		switch {
		case p.Backend == BackendDamgardJurik && p.DJMaterial != nil:
			suite, err = NewDamgardJurikSuiteFromMaterial(p.DJMaterial)
		case p.Backend == BackendDamgardJurik && p.DKG:
			suite, err = NewDamgardJurikDKGSuite(p.ModulusBits, p.Degree, n, p.DecryptThreshold, p.Seed, p.Faults)
		case p.Backend == BackendDamgardJurik:
			suite, err = NewDamgardJurikSuite(p.ModulusBits, p.Degree, n, p.DecryptThreshold)
		default:
			suite, err = NewPlainSuite(p.ModulusBits, p.Degree, n, p.DecryptThreshold)
		}
		if err != nil {
			return nil, err
		}
	}
	// From here on a freshly built suite owns background resources (the
	// DJ randomizer pool); release them on every failed setup path —
	// notably the recoverable ErrPackingInfeasible return, after which
	// callers are expected to retry unpacked. A reused (session-owned)
	// suite stays alive regardless: the session closes it once.
	setupOK := false
	defer func() {
		if !setupOK && ownsSuite {
			if c, ok := suite.(interface{ Close() }); ok {
				c.Close()
			}
		}
	}()

	// Fixed-point layout and headroom.
	codec, err := fixedpoint.New(p.FracBits)
	if err != nil {
		return nil, err
	}
	preScale := p.preScaleBits()
	coordBound, noiseBound := p.noiseEnvelope(dim, epsSched)
	plainMod := suite.PlainModulus()
	if err := checkHeadroom(plainMod, n, dim, coordBound, noiseBound, p.FracBits, preScale); err != nil {
		return nil, err
	}

	sideLen := p.K * (dim + 1)
	if p.TrackInertia {
		sideLen++
	}
	// Slot packing: the encrypted side carries ⌈sideLen/slots⌉ packed
	// ciphertexts per side instead of sideLen, with the layout derived
	// from the same magnitude budget checkHeadroom just validated.
	sideCiphers := sideLen
	var layout *fixedpoint.SlotLayout
	if p.Packed {
		layout, err = packedLayout(plainMod.BitLen()-1, n, coordBound+noiseBound, p.FracBits, preScale)
		if err != nil {
			return nil, err
		}
		sideCiphers = layout.Groups(sideLen)
	}
	// Size the Damgård–Jurik randomizer pool for the run's actual burst
	// before the suite performs its first encryption: every activation in
	// the gossip phase halves-and-rerandomizes the full fused vector,
	// concurrently across shard workers, so the default capacity starves
	// wide runs and over-provisions packed ones.
	if ps, ok := suite.(poolSizer); ok {
		ps.SizePool(poolBurst(p, n, 2*sideCiphers))
	}
	ring, err := newCipherRing(suite)
	if err != nil {
		return nil, err
	}

	// Public, data-independent initial centroids.
	initial := initialCentroids(p, dim)
	// Decoded per-coordinate magnitudes are relative aggregates: bounded
	// by the largest coordinate bound plus noise, with slack. Anything
	// beyond signals a broken gossip invariant and fails the decode.
	decodeBound := 4 * (coordBound + noiseBound)
	// Byzantine fault plans turn on wire validation of incoming gossip:
	// every absorbed message's weight and ciphertexts are checked before
	// they can touch the push-sum state. The honest-run hot path stays
	// validation-free (trajectory and cost unchanged).
	var validator cipherValidator
	if p.Faults.HasByzantine() {
		validator, _ = suite.(cipherValidator)
	}
	// The zero-allocation gossip hot path (arena residues mutated in
	// place, double-buffered emit messages) requires the bulk-synchronous
	// delivery guarantee that every message is consumed within one cycle
	// of delivery: true for the cycle-driven engines with no fault plan
	// (no delayed queues, no laggard stalls, no replaying byzantines;
	// churn is fine — crashes clear queues). The async engine's channel
	// fabric holds messages arbitrarily long, and only the accounted
	// suite can mutate ciphers, so everything else keeps the classic
	// allocating path. Either path computes bit-identical trajectories
	// and operation counts.
	var mut mutCipherSuite
	if ms, ok := suite.(mutCipherSuite); ok && !p.asyncEngine && p.Faults.Empty() {
		mut = ms
	}
	shared := &runShared{
		params:        p,
		dim:           dim,
		population:    n,
		suite:         suite,
		ring:          ring,
		codec:         codec,
		plainMod:      plainMod,
		halfMod:       new(big.Int).Rsh(plainMod, 1),
		preScale:      preScale,
		epsSched:      epsSched,
		noiseBound:    noiseBound,
		vecLen:        p.K * (dim + 1),
		sideLen:       sideLen,
		sideCiphers:   sideCiphers,
		layout:        layout,
		decodeBound:   decodeBound,
		centroidBytes: p.K * dim * 8,
		validator:     validator,
		mut:           mut,
	}

	setupOK = true
	return &runSetup{
		p:          p,
		epsSched:   epsSched,
		accountant: accountant,
		suite:      suite,
		shared:     shared,
		initial:    initial,
		series:     seriesMat,
		ownsSuite:  ownsSuite,
	}, nil
}

func buildTrace(data [][]float64, p Params, participants []*participant, cycles int, stats p2p.Stats, suite CipherSuite, accountant *dp.Accountant) (*Trace, error) {
	n := len(data)
	dim := len(data[0])

	// Observer: the participant with the longest completed history.
	observer := participants[0]
	for _, pt := range participants {
		if len(pt.history) > len(observer.history) {
			observer = pt
		}
	}
	if len(observer.history) == 0 {
		return nil, errors.New("core: no participant completed any iteration (network too hostile?)")
	}

	tr := &Trace{
		Params:               p,
		ConvergedAtIteration: -1,
		CyclesRun:            cycles,
		NetStats:             stats,
	}

	for i, rec := range observer.history {
		if err := accountant.Spend(fmt.Sprintf("iteration-%d", rec.Iteration), rec.Epsilon); err != nil {
			return nil, fmt.Errorf("core: accounting: %w", err)
		}
		ti := TraceIteration{
			Iteration:          rec.Iteration,
			Epsilon:            rec.Epsilon,
			PerturbedCentroids: rec.PerturbedCentroids,
			PerturbedCounts:    rec.PerturbedCounts,
			PerturbedInertia:   rec.PerturbedInertia,
			CompletedAtCycle:   rec.CompletedAtCycle,
		}
		// Oracle: exact means under the participants' actual iteration-i
		// assignments.
		sums := make([][]float64, p.K)
		for j := range sums {
			sums[j] = make([]float64, dim)
		}
		counts := make([]int, p.K)
		for _, pt := range participants {
			if i >= len(pt.history) || pt.history[i].Iteration != rec.Iteration {
				continue
			}
			a := pt.history[i].Assignment
			counts[a]++
			for t, v := range pt.series {
				sums[a][t] += v
			}
		}
		exact := make([][]float64, p.K)
		var sq float64
		var coords int
		for j := range sums {
			exact[j] = make([]float64, dim)
			if counts[j] > 0 {
				for t := range sums[j] {
					exact[j][t] = sums[j][t] / float64(counts[j])
				}
			} else {
				// Empty exact cluster: compare against the kept centroid.
				copy(exact[j], rec.PerturbedCentroids[j])
			}
			for t := range exact[j] {
				d := rec.PerturbedCentroids[j][t] - exact[j][t]
				sq += d * d
				coords++
			}
		}
		ti.ExactCentroids = exact
		ti.ExactCounts = counts
		if coords > 0 {
			ti.NoiseRMSE = math.Sqrt(sq / float64(coords))
		}
		tr.Iterations = append(tr.Iterations, ti)
		if i == len(observer.history)-1 && observer.phase == phaseDone && rec.Iteration+1 < p.Iterations {
			tr.ConvergedAtIteration = rec.Iteration
		}
	}

	// Disclosure-distortion indicator: the perturbed relative counts of
	// the last iteration should sum to ~1 (each is N_j/N plus scaled
	// noise). Note the deviation mixes gossip error with realized count
	// noise — it is an observable sanity bound, not a pure gossip error
	// (E10 isolates the latter with a noise-free run).
	last := tr.Iterations[len(tr.Iterations)-1]
	var countSum float64
	for _, c := range last.PerturbedCounts {
		countSum += c
	}
	accountant.RecordGossipError(math.Abs(countSum - 1))

	// Final clustering quality over the cleartext data (harness-side).
	tr.FinalCentroids = deepCopyMatrix(last.PerturbedCentroids)
	tr.Assignments = make([]int, n)
	var inertia float64
	for i, s := range data {
		best, bestSq := 0, math.Inf(1)
		for j, c := range tr.FinalCentroids {
			var acc float64
			for t := range s {
				d := s[t] - c[t]
				acc += d * d
			}
			if acc < bestSq {
				best, bestSq = j, acc
			}
		}
		tr.Assignments[i] = best
		inertia += bestSq
	}
	tr.Inertia = inertia
	tr.Privacy = accountant.Report()
	tr.Ops = suite.Counts()
	for _, pt := range participants {
		tr.DecryptFailures += pt.decryptFail
		tr.StaleDrops += pt.staleDrops
		tr.Ops.PartialCacheHits += pt.servedHits
		tr.DecryptRequests += pt.decryptReqs
		tr.DecryptBytes += pt.decryptReqBytes + pt.decryptRespBytes
		if pt.phase == phaseDone {
			tr.Completed++
		}
	}
	return tr, nil
}
