package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/big"

	"chiaroscuro/internal/gossip"
	"chiaroscuro/internal/wire"
)

// netcodec.go serializes the participant's message payloads for a real
// network transport (internal/transport): the gossip exchange, the
// decryption request and the decryption response. The in-process
// engines pass these payloads by pointer; a daemon moves the identical
// information as wire artifacts inside length-prefixed frames. Every
// decode validates shape and range against the node's own run
// configuration, so a malformed or hostile remote peer can be rejected
// before its bytes touch the push-sum state.

// Payload kind tags (first byte of an encoded payload).
const (
	netGossip          byte = 0x01
	netDecryptRequest  byte = 0x02
	netDecryptResponse byte = 0x03
)

// suiteWireCodec is the optional CipherSuite extension a networked run
// requires: stable byte encodings for cipher vectors and for
// partial-decryption values. The accounted plain suite implements it
// over the wire residue-vector artifact; the Damgård–Jurik suite over
// the ciphertext-vector artifact (suite_dj.go) — its processes share a
// key via the pre-epoch distributed key ceremony, each holding only its
// own share (Params.DJMaterial).
type suiteWireCodec interface {
	// MarshalCipherVector encodes a vector of this suite's ciphers.
	MarshalCipherVector(cs []Cipher) ([]byte, error)
	// UnmarshalCipherVector decodes and validates a cipher vector.
	UnmarshalCipherVector(buf []byte) ([]Cipher, error)
	// MarshalPartialValues encodes the values of a partial-decryption
	// vector (the shared responder index travels separately).
	MarshalPartialValues(ps []Partial) ([]byte, error)
	// UnmarshalPartialValues decodes partial values, stamping each with
	// the responder's key-share index.
	UnmarshalPartialValues(index int, buf []byte) ([]Partial, error)
}

// MarshalCipherVector implements suiteWireCodec: accounted ciphers are
// ring residues, encoded fixed-width against the plaintext modulus.
func (s *plainSuite) MarshalCipherVector(cs []Cipher) ([]byte, error) {
	vs := make([]*big.Int, len(cs))
	for i, c := range cs {
		cc, ok := c.(plainCipher)
		if !ok {
			return nil, errors.New("core: foreign cipher type in plain suite")
		}
		vs[i] = cc.v
	}
	return wire.MarshalResidueVector(s.m, vs)
}

// UnmarshalCipherVector implements suiteWireCodec. Every decoded
// residue is ring-validated by the wire layer; the returned ciphers are
// freshly allocated, never aliasing arena scratch.
func (s *plainSuite) UnmarshalCipherVector(buf []byte) ([]Cipher, error) {
	vs, err := wire.UnmarshalResidueVector(s.m, buf)
	if err != nil {
		return nil, err
	}
	out := make([]Cipher, len(vs))
	for i, v := range vs {
		out[i] = plainCipher{v: v}
	}
	return out, nil
}

// MarshalPartialValues implements suiteWireCodec: accounted partials
// are ring residues too (the shared plaintext under threshold
// semantics).
func (s *plainSuite) MarshalPartialValues(ps []Partial) ([]byte, error) {
	vs := make([]*big.Int, len(ps))
	for i, p := range ps {
		if p.Value == nil {
			return nil, errors.New("core: partial with nil value")
		}
		vs[i] = p.Value
	}
	return wire.MarshalResidueVector(s.m, vs)
}

// UnmarshalPartialValues implements suiteWireCodec.
func (s *plainSuite) UnmarshalPartialValues(index int, buf []byte) ([]Partial, error) {
	vs, err := wire.UnmarshalResidueVector(s.m, buf)
	if err != nil {
		return nil, err
	}
	out := make([]Partial, len(vs))
	for i, v := range vs {
		out[i] = Partial{Index: index, Value: v}
	}
	return out, nil
}

// appendFloats appends one length-prefixed field of IEEE-754 bit
// patterns (big-endian), one per coordinate, row-major.
func appendFloats(buf []byte, rows [][]float64) []byte {
	body := make([]byte, 0, 8*len(rows)*len(rows[0]))
	for _, row := range rows {
		for _, v := range row {
			body = binary.BigEndian.AppendUint64(body, math.Float64bits(v))
		}
	}
	return wire.AppendBytes(buf, body)
}

// readFloats reads one floats field of exactly rows×cols coordinates.
func readFloats(fr *wire.FieldReader, rows, cols int) ([][]float64, error) {
	body, err := fr.Bytes()
	if err != nil {
		return nil, err
	}
	if len(body) != 8*rows*cols {
		return nil, fmt.Errorf("core: centroid field %d bytes, want %d", len(body), 8*rows*cols)
	}
	out := make([][]float64, rows)
	for j := range out {
		row := make([]float64, cols)
		for t := range row {
			row[t] = math.Float64frombits(binary.BigEndian.Uint64(body))
			body = body[8:]
		}
		out[j] = row
	}
	return out, nil
}

// EncodePayload serializes one protocol payload (as passed to
// Env.Send) for the network transport. It accepts exactly the payload
// types the participant emits.
func (nd *Node) EncodePayload(payload any) ([]byte, error) {
	switch pl := payload.(type) {
	case *gossipPayload:
		if pl.Msg == nil {
			return nil, errors.New("core: gossip payload without message")
		}
		buf := []byte{netGossip}
		buf = wire.AppendUint32(buf, uint32(pl.Iter))
		buf = appendFloats(buf, pl.Centroids)
		var wb [8]byte
		binary.BigEndian.PutUint64(wb[:], math.Float64bits(pl.Msg.W))
		buf = wire.AppendBytes(buf, wb[:])
		cv, err := nd.codec.MarshalCipherVector(pl.Msg.V)
		if err != nil {
			return nil, err
		}
		return wire.AppendBytes(buf, cv), nil
	case *decryptRequest:
		buf := []byte{netDecryptRequest}
		buf = wire.AppendUint32(buf, uint32(pl.Iter))
		cv, err := nd.codec.MarshalCipherVector(pl.Ciphers)
		if err != nil {
			return nil, err
		}
		return wire.AppendBytes(buf, cv), nil
	case *decryptResponse:
		if len(pl.Partials) == 0 {
			return nil, errors.New("core: empty decrypt response")
		}
		buf := []byte{netDecryptResponse}
		buf = wire.AppendUint32(buf, uint32(pl.Iter))
		buf = wire.AppendUint32(buf, uint32(pl.Partials[0].Index))
		pv, err := nd.codec.MarshalPartialValues(pl.Partials)
		if err != nil {
			return nil, err
		}
		return wire.AppendBytes(buf, pv), nil
	default:
		return nil, fmt.Errorf("core: unencodable payload type %T", payload)
	}
}

// DecodePayload parses and validates one payload received from a peer.
// Shape and range checks are strict against this node's run
// configuration — iteration tags inside the schedule, centroid matrices
// exactly K×dim of finite values, cipher vectors exactly the fused
// length, push-sum weights finite and population-bounded — so a peer
// that violates the protocol is rejected here with an error instead of
// desynchronizing the participant state machine.
func (nd *Node) DecodePayload(buf []byte) (any, error) {
	if len(buf) < 1 {
		return nil, errors.New("core: empty payload")
	}
	r := nd.pt.run
	fr := wire.NewFieldReader(buf[1:])
	iterU, err := fr.Uint32()
	if err != nil {
		return nil, err
	}
	iter := int(iterU)
	if iter >= r.params.Iterations {
		return nil, fmt.Errorf("core: payload iteration %d outside schedule of %d", iter, r.params.Iterations)
	}
	switch buf[0] {
	case netGossip:
		centroids, err := readFloats(fr, r.params.K, r.dim)
		if err != nil {
			return nil, err
		}
		for _, row := range centroids {
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return nil, errors.New("core: non-finite centroid coordinate")
				}
			}
		}
		wb, err := fr.Bytes()
		if err != nil {
			return nil, err
		}
		if len(wb) != 8 {
			return nil, fmt.Errorf("core: weight field %d bytes, want 8", len(wb))
		}
		w := math.Float64frombits(binary.BigEndian.Uint64(wb))
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 || w > float64(r.population) {
			return nil, fmt.Errorf("core: implausible push-sum weight %g", w)
		}
		cv, err := fr.Bytes()
		if err != nil {
			return nil, err
		}
		if err := fr.Done(); err != nil {
			return nil, err
		}
		cs, err := nd.codec.UnmarshalCipherVector(cv)
		if err != nil {
			return nil, err
		}
		if len(cs) != 2*r.sideCiphers {
			return nil, fmt.Errorf("core: gossip vector of %d ciphers, want %d", len(cs), 2*r.sideCiphers)
		}
		return &gossipPayload{
			Iter:      iter,
			Centroids: centroids,
			Msg:       &gossip.Message[Cipher]{V: cs, W: w},
		}, nil
	case netDecryptRequest:
		cv, err := fr.Bytes()
		if err != nil {
			return nil, err
		}
		if err := fr.Done(); err != nil {
			return nil, err
		}
		cs, err := nd.codec.UnmarshalCipherVector(cv)
		if err != nil {
			return nil, err
		}
		if len(cs) != r.sideCiphers {
			return nil, fmt.Errorf("core: decrypt request of %d ciphers, want %d", len(cs), r.sideCiphers)
		}
		return &decryptRequest{Iter: iter, Ciphers: cs}, nil
	case netDecryptResponse:
		idxU, err := fr.Uint32()
		if err != nil {
			return nil, err
		}
		idx := int(idxU)
		if idx < 1 || idx > r.suite.Parties() {
			return nil, fmt.Errorf("core: partial index %d outside [1, %d]", idx, r.suite.Parties())
		}
		pv, err := fr.Bytes()
		if err != nil {
			return nil, err
		}
		if err := fr.Done(); err != nil {
			return nil, err
		}
		ps, err := nd.codec.UnmarshalPartialValues(idx, pv)
		if err != nil {
			return nil, err
		}
		if len(ps) != r.sideCiphers {
			return nil, fmt.Errorf("core: decrypt response of %d partials, want %d", len(ps), r.sideCiphers)
		}
		return &decryptResponse{Iter: iter, Partials: ps}, nil
	default:
		return nil, fmt.Errorf("core: unknown payload kind 0x%02x", buf[0])
	}
}
