package core

import (
	"errors"
	"fmt"
	"math/big"
	"sync/atomic"

	"chiaroscuro/internal/vecpool"
)

// plainSuite is the accounted backend: values are plaintext residues of
// the same ring Z_M the real backend would use, every operation performs
// the identical ring arithmetic (so gossip trajectories are bit-identical
// to the encrypted run), and counters record what the encrypted run would
// have cost. This is precisely the demonstration's configuration: the
// distributed algorithms are unchanged whether homomorphic operations are
// enabled or not (Sec. III.B, point 1).
type plainSuite struct {
	m         *big.Int
	inv2      *big.Int
	parties   int
	threshold int
	// cipherBytes mimics the real backend's ciphertext size for the
	// declared key size, so network accounting matches an encrypted run.
	cipherBytes int

	encrypts        atomic.Int64
	adds            atomic.Int64
	halvings        atomic.Int64
	partialDecrypts atomic.Int64
	combines        atomic.Int64
}

// plainCipher wraps a residue so foreign types are still detected.
type plainCipher struct {
	v *big.Int
}

// NewPlainSuite builds the accounted backend. modulusBits drives the
// cost accounting only (the simulated ciphertext size is
// modulusBits·(degree+1) bits, matching a real Damgård–Jurik key of that
// size); the actual plaintext ring is a fixed 320-bit odd modulus —
// plenty of headroom for any supported protocol configuration (validated
// by checkHeadroom) while keeping the plaintext big.Int arithmetic cheap,
// since no cryptographic hardness is needed when the values are not
// actually encrypted. modulusBits of at least the ring size select a
// ring as wide as a real key's plaintext space (used by the
// backend-equivalence tests, which need identical wraparound behaviour).
func NewPlainSuite(modulusBits, degree, parties, threshold int) (CipherSuite, error) {
	if modulusBits < 8 {
		return nil, fmt.Errorf("core: modulus of %d bits is too small", modulusBits)
	}
	if parties < 1 || threshold < 1 || threshold > parties {
		return nil, fmt.Errorf("core: invalid (parties=%d, threshold=%d)", parties, threshold)
	}
	ringBits := 320
	if modulusBits*degree < ringBits {
		ringBits = modulusBits * degree
	}
	// An odd modulus: 2^ringBits - 1.
	m := new(big.Int).Lsh(big.NewInt(1), uint(ringBits))
	m.Sub(m, big.NewInt(1))
	inv2 := new(big.Int).ModInverse(big.NewInt(2), m)
	if inv2 == nil {
		return nil, errors.New("core: 2 not invertible in plaintext ring")
	}
	return &plainSuite{
		m:           m,
		inv2:        inv2,
		parties:     parties,
		threshold:   threshold,
		cipherBytes: modulusBits * (degree + 1) / 8,
	}, nil
}

// Name implements CipherSuite.
func (s *plainSuite) Name() string { return "plain-accounted" }

// PlainModulus implements CipherSuite.
func (s *plainSuite) PlainModulus() *big.Int { return new(big.Int).Set(s.m) }

// CipherBytes implements CipherSuite.
func (s *plainSuite) CipherBytes() int { return s.cipherBytes }

// Encrypt implements CipherSuite.
func (s *plainSuite) Encrypt(m *big.Int) (Cipher, error) {
	if m == nil {
		return nil, errors.New("core: nil plaintext")
	}
	s.encrypts.Add(1)
	if m.Sign() >= 0 && m.Cmp(s.m) < 0 {
		return plainCipher{v: new(big.Int).Set(m)}, nil
	}
	return plainCipher{v: new(big.Int).Mod(m, s.m)}, nil
}

// Add implements CipherSuite. Operands are reduced residues, so the mod
// is a single conditional subtraction — no division.
func (s *plainSuite) Add(a, b Cipher) (Cipher, error) {
	ca, ok1 := a.(plainCipher)
	cb, ok2 := b.(plainCipher)
	if !ok1 || !ok2 {
		return nil, errors.New("core: foreign cipher type in plain suite")
	}
	s.adds.Add(1)
	out := new(big.Int).Add(ca.v, cb.v)
	if out.Cmp(s.m) >= 0 {
		out.Sub(out, s.m)
	}
	return plainCipher{v: out}, nil
}

// AddAll implements the optional batch extension (see cipherRing): it
// folds all addends into one freshly allocated accumulator with a
// conditional subtraction per step — value-identical to a chain of Add
// calls (operands are reduced residues), but without the intermediate
// allocations, and it accounts the same number of homomorphic additions.
func (s *plainSuite) AddAll(acc Cipher, vs []Cipher) (Cipher, error) {
	ca, ok := acc.(plainCipher)
	if !ok {
		return nil, errors.New("core: foreign cipher type in plain suite")
	}
	out := new(big.Int).Set(ca.v)
	for _, v := range vs {
		cv, ok := v.(plainCipher)
		if !ok {
			return nil, errors.New("core: foreign cipher type in plain suite")
		}
		out.Add(out, cv.v)
		if out.Cmp(s.m) >= 0 {
			out.Sub(out, s.m)
		}
	}
	s.adds.Add(int64(len(vs)))
	return plainCipher{v: out}, nil
}

// Halve implements CipherSuite: multiplication by 2^{-1} mod M. For odd
// M this has a division-free form — even residues shift right, odd
// residues become (v+M)/2 (exact, since v+M is even) — which is
// arithmetically identical to out = v·inv2 mod M but an order of
// magnitude cheaper on the gossip hot path.
func (s *plainSuite) Halve(c Cipher) (Cipher, error) {
	cc, ok := c.(plainCipher)
	if !ok {
		return nil, errors.New("core: foreign cipher type in plain suite")
	}
	s.halvings.Add(1)
	out := new(big.Int)
	if cc.v.Bit(0) == 0 {
		out.Rsh(cc.v, 1)
	} else {
		out.Add(cc.v, s.m)
		out.Rsh(out, 1)
	}
	return plainCipher{v: out}, nil
}

// ValidateCipher implements the cipherValidator extension: a plain
// "ciphertext" is valid iff it is this suite's residue type, reduced
// into the ring.
func (s *plainSuite) ValidateCipher(c Cipher) error {
	cc, ok := c.(plainCipher)
	if !ok {
		return errors.New("core: foreign cipher type in plain suite")
	}
	if cc.v == nil || cc.v.Sign() < 0 || cc.v.Cmp(s.m) >= 0 {
		return errors.New("core: plain cipher residue outside ring")
	}
	return nil
}

// Parties implements CipherSuite.
func (s *plainSuite) Parties() int { return s.parties }

// Threshold implements CipherSuite.
func (s *plainSuite) Threshold() int { return s.threshold }

// PartialDecrypt implements CipherSuite.
func (s *plainSuite) PartialDecrypt(party int, c Cipher) (Partial, error) {
	cc, ok := c.(plainCipher)
	if !ok {
		return Partial{}, errors.New("core: foreign cipher type in plain suite")
	}
	if party < 1 || party > s.parties {
		return Partial{}, fmt.Errorf("core: party %d has no key share", party)
	}
	s.partialDecrypts.Add(1)
	// Cipher values are immutable by convention across the suite, so the
	// partial can share the residue instead of copying it.
	return Partial{Index: party, Value: cc.v}, nil
}

// Combine implements CipherSuite. It enforces the same threshold
// semantics as the real backend (count and distinctness of partials).
// Distinctness runs as a quadratic scan for the common partial-set
// sizes (the defaulted threshold caps at 16) — a map per Combine was
// one of the dominant allocation sources of large-population decrypt
// phases — and falls back to a map above the cutoff, since
// DecryptThreshold is an uncapped public knob and O(k²) would bite a
// deliberately huge quorum.
func (s *plainSuite) Combine(parts []Partial) (*big.Int, error) {
	if len(parts) < s.threshold {
		return nil, fmt.Errorf("core: have %d partial decryptions, need %d", len(parts), s.threshold)
	}
	const scanCutoff = 64
	var seen map[int]bool
	if len(parts) > scanCutoff {
		seen = make(map[int]bool, len(parts))
	}
	distinct := 0
	for i, p := range parts {
		if p.Index < 1 || p.Index > s.parties {
			return nil, fmt.Errorf("core: partial with invalid index %d", p.Index)
		}
		if p.Value == nil {
			return nil, errors.New("core: partial with nil value")
		}
		dup := false
		if seen != nil {
			dup = seen[p.Index]
			seen[p.Index] = true
		} else {
			for j := 0; j < i; j++ {
				if parts[j].Index == p.Index {
					dup = true
					break
				}
			}
		}
		if !dup {
			distinct++
		}
	}
	if distinct < s.threshold {
		return nil, fmt.Errorf("core: only %d distinct partials, need %d", distinct, s.threshold)
	}
	for _, p := range parts {
		if p.Value.Cmp(parts[0].Value) != 0 {
			return nil, errors.New("core: partial decryptions disagree")
		}
	}
	s.combines.Add(1)
	return new(big.Int).Set(parts[0].Value), nil
}

// CombineColumns implements columnCombiner: the accounted equivalent of
// count Combine calls over per-cipher columns of the given responder
// sets. Validation matches Combine — index range, distinctness (here:
// strictly ascending set order), nil values, and per-column agreement
// across every responder — and it accounts the same count combines.
func (s *plainSuite) CombineColumns(sets [][]Partial, count int) ([]*big.Int, error) {
	if count < 1 {
		return nil, errors.New("core: empty cipher column")
	}
	if len(sets) < s.threshold {
		return nil, fmt.Errorf("core: have %d partial decryptions, need %d", len(sets), s.threshold)
	}
	prev := 0
	for j, set := range sets {
		if len(set) != count {
			return nil, fmt.Errorf("core: responder set %d has %d partials, want %d", j, len(set), count)
		}
		idx := set[0].Index
		if idx < 1 || idx > s.parties {
			return nil, fmt.Errorf("core: partial with invalid index %d", idx)
		}
		if idx <= prev {
			return nil, fmt.Errorf("core: responder sets not ascending at index %d", idx)
		}
		prev = idx
		for _, p := range set {
			if p.Index != idx {
				return nil, fmt.Errorf("core: mixed indices in responder set %d", j)
			}
			if p.Value == nil {
				return nil, errors.New("core: partial with nil value")
			}
		}
	}
	out := make([]*big.Int, count)
	for i := 0; i < count; i++ {
		ref := sets[0][i].Value
		for _, set := range sets {
			if set[i].Value.Cmp(ref) != 0 {
				return nil, errors.New("core: partial decryptions disagree")
			}
		}
		out[i] = new(big.Int).Set(ref)
	}
	s.combines.Add(int64(count))
	return out, nil
}

// Counts implements CipherSuite.
func (s *plainSuite) Counts() OpCounts {
	return OpCounts{
		Encrypts:        s.encrypts.Load(),
		Adds:            s.adds.Load(),
		Halvings:        s.halvings.Load(),
		PartialDecrypts: s.partialDecrypts.Load(),
		Combines:        s.combines.Load(),
	}
}

// --- In-place extension (the zero-allocation gossip hot path) --------------
//
// The methods below implement mutCipherSuite: value-identical variants
// of Encrypt/Add/AddAll/Halve that write into caller-owned scratch
// ciphers from NewScratchVector instead of allocating results. They
// count operations exactly like their immutable counterparts, so
// OpCounts (and every trajectory) is unchanged whichever path runs.
// Only this suite implements the extension — real ciphertexts cannot be
// mutated in place (rerandomization mints fresh group elements) — which
// is what confines the in-place gossip path to the accounted backend.

// NewScratchVector implements mutCipherSuite: n mutable zero ciphers
// whose residues live in one vecpool arena slab, pre-sized for the
// ring's reduced values plus the carry of an in-place modular add.
func (s *plainSuite) NewScratchVector(n int) ([]Cipher, error) {
	arena, err := vecpool.NewResidueArena(n, s.m.BitLen())
	if err != nil {
		return nil, err
	}
	out := make([]Cipher, n)
	for i := range out {
		out[i] = plainCipher{v: arena.Int(i)}
	}
	return out, nil
}

// EncryptInto implements mutCipherSuite: Encrypt writing its residue
// into dst's storage.
func (s *plainSuite) EncryptInto(dst Cipher, m *big.Int) error {
	cd, ok := dst.(plainCipher)
	if !ok {
		return errors.New("core: foreign cipher type in plain suite")
	}
	if m == nil {
		return errors.New("core: nil plaintext")
	}
	s.encrypts.Add(1)
	if m.Sign() >= 0 && m.Cmp(s.m) < 0 {
		cd.v.Set(m)
		return nil
	}
	cd.v.Mod(m, s.m)
	return nil
}

// HalveCipherInPlace implements mutCipherSuite: Halve's division-free
// form mutating c's residue.
func (s *plainSuite) HalveCipherInPlace(c Cipher) error {
	cc, ok := c.(plainCipher)
	if !ok {
		return errors.New("core: foreign cipher type in plain suite")
	}
	s.halvings.Add(1)
	if cc.v.Bit(0) != 0 {
		cc.v.Add(cc.v, s.m)
	}
	cc.v.Rsh(cc.v, 1)
	return nil
}

// AddCipherInPlace implements mutCipherSuite: acc += v with the reduced-
// residue conditional subtraction, mutating only acc.
func (s *plainSuite) AddCipherInPlace(acc, v Cipher) error {
	ca, ok1 := acc.(plainCipher)
	cv, ok2 := v.(plainCipher)
	if !ok1 || !ok2 {
		return errors.New("core: foreign cipher type in plain suite")
	}
	s.adds.Add(1)
	ca.v.Add(ca.v, cv.v)
	if ca.v.Cmp(s.m) >= 0 {
		ca.v.Sub(ca.v, s.m)
	}
	return nil
}

// AddAllCipherInPlace implements mutCipherSuite: AddAll folded into
// acc's storage.
func (s *plainSuite) AddAllCipherInPlace(acc Cipher, vs []Cipher) error {
	ca, ok := acc.(plainCipher)
	if !ok {
		return errors.New("core: foreign cipher type in plain suite")
	}
	for _, v := range vs {
		cv, ok := v.(plainCipher)
		if !ok {
			return errors.New("core: foreign cipher type in plain suite")
		}
		ca.v.Add(ca.v, cv.v)
		if ca.v.Cmp(s.m) >= 0 {
			ca.v.Sub(ca.v, s.m)
		}
	}
	s.adds.Add(int64(len(vs)))
	return nil
}

// SetCipher implements mutCipherSuite: dst's residue becomes a copy of
// src's, reusing dst's storage. Not an accounted operation (the
// immutable path's Clone shares, which costs nothing either).
func (s *plainSuite) SetCipher(dst, src Cipher) error {
	cd, ok1 := dst.(plainCipher)
	cs, ok2 := src.(plainCipher)
	if !ok1 || !ok2 {
		return errors.New("core: foreign cipher type in plain suite")
	}
	cd.v.Set(cs.v)
	return nil
}
