package core

import (
	"math"
	"testing"
)

func TestRunAsyncRecoversClusters(t *testing.T) {
	data := blobs(120, 4, 3)
	init := [][]float64{
		{0.12, 0.12, 0.12, 0.12},
		{0.4, 0.4, 0.4, 0.4},
		{0.65, 0.65, 0.65, 0.65},
	}
	tr, err := RunAsync(data, Params{
		K: 3, Epsilon: 2000, Iterations: 4, Seed: 7,
		InitialCentroids: init, GossipRounds: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Iterations) == 0 {
		t.Fatal("no iterations completed")
	}
	// Asynchronous gossip mixes less evenly than the synchronous engine,
	// so allow a looser but still meaningful accuracy bound.
	last := tr.Iterations[len(tr.Iterations)-1]
	if last.NoiseRMSE > 0.1 {
		t.Fatalf("noise RMSE = %v", last.NoiseRMSE)
	}
	// The three blobs (levels 0.1, 0.3667, 0.6333) must be separated:
	// inertia far below the single-cluster baseline.
	if tr.Inertia > 5 {
		t.Fatalf("inertia = %v", tr.Inertia)
	}
}

func TestRunAsyncMatchesSyncQualitatively(t *testing.T) {
	data := blobs(80, 3, 2)
	p := Params{K: 2, Epsilon: 1000, Iterations: 3, Seed: 11, GossipRounds: 12}
	sync, err := Run(data, p)
	if err != nil {
		t.Fatal(err)
	}
	async, err := RunAsync(data, p)
	if err != nil {
		t.Fatal(err)
	}
	// Same data, same protocol: final inertia within a factor of 4
	// (async mixing is noisier but must find the same structure).
	lo, hi := sync.Inertia, async.Inertia
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo <= 0 {
		lo = 1e-9
	}
	if hi/lo > 4 && hi > 0.5 {
		t.Fatalf("engines disagree: sync inertia %v, async %v", sync.Inertia, async.Inertia)
	}
}

func TestRunAsyncStatsPopulated(t *testing.T) {
	data := blobs(40, 3, 2)
	tr, err := RunAsync(data, Params{K: 2, Epsilon: 100, Iterations: 2, Seed: 3, GossipRounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NetStats.MessagesSent == 0 || tr.NetStats.BytesSent == 0 {
		t.Fatalf("no traffic recorded: %+v", tr.NetStats)
	}
	if tr.Ops.Encrypts == 0 {
		t.Fatalf("no crypto ops recorded: %+v", tr.Ops)
	}
	if tr.Privacy.SpentEpsilon <= 0 {
		t.Fatalf("no budget spent: %+v", tr.Privacy)
	}
}

func TestRunAsyncRejectsChurn(t *testing.T) {
	data := blobs(20, 3, 2)
	if _, err := RunAsync(data, Params{K: 2, Epsilon: 1, ChurnCrashProb: 0.1}); err == nil {
		t.Fatal("churn must be rejected by the async engine")
	}
}

func TestRunAsyncValidation(t *testing.T) {
	if _, err := RunAsync(nil, Params{K: 1, Epsilon: 1}); err == nil {
		t.Fatal("empty data should error")
	}
	data := blobs(10, 3, 2)
	if _, err := RunAsync(data, Params{K: 0, Epsilon: 1}); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestRunAsyncTrackedInertia(t *testing.T) {
	data := blobs(60, 3, 2)
	tr, err := RunAsync(data, Params{
		K: 2, Epsilon: 2000, Iterations: 3, Seed: 5,
		TrackInertia: true, GossipRounds: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	last := tr.Iterations[len(tr.Iterations)-1]
	if math.IsNaN(last.PerturbedInertia) {
		t.Fatal("tracked inertia missing under async engine")
	}
	if last.PerturbedInertia < 0 || last.PerturbedInertia > 1 {
		t.Fatalf("implausible inertia estimate %v", last.PerturbedInertia)
	}
}
