package core

import (
	"math/big"
	"testing"
)

// TestDJHalveRerandomizes pins the traffic-analysis defence: halving the
// same ciphertext twice must yield different ciphertexts (fresh
// randomness per hop) that still decrypt to the same plaintext.
func TestDJHalveRerandomizes(t *testing.T) {
	s, err := NewDamgardJurikSuite(128, 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Encrypt(big.NewInt(10))
	if err != nil {
		t.Fatal(err)
	}
	h1, err := s.Halve(c)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := s.Halve(c)
	if err != nil {
		t.Fatal(err)
	}
	if h1.(*big.Int).Cmp(h2.(*big.Int)) == 0 {
		t.Fatal("two halvings of the same ciphertext are identical — hops are traceable")
	}
	for _, h := range []Cipher{h1, h2} {
		if got := decryptVia(t, s, h, []int{1, 3}); got.Int64() != 5 {
			t.Fatalf("rerandomized halve decrypts to %v, want 5", got)
		}
	}
}
