package core

import (
	"time"

	"chiaroscuro/internal/p2p"
	"chiaroscuro/internal/simnet"
)

// engine.go is the per-cycle step API shared by the execution engines.
// The protocol itself lives in participant.step (one activation against
// any Env); what distinguishes the engines is only the scheduler that
// drives those steps:
//
//   - Run        — the cycle-driven simulator, one sequential pass per
//     cycle (Peersim semantics; deterministic);
//   - RunSharded — the same cycle-driven simulation executed by P shard
//     workers per cycle with a deterministic reduction
//     (bit-identical to Run at any worker count; see
//     sharded.go and the internal/p2p determinism contract);
//   - RunAsync   — one goroutine per participant, channel messaging, no
//     global synchronization (the paper's deployment model;
//     not deterministic).
//
// cycleDriver is the shared harness for the two cycle-driven schedulers:
// it owns the simulated network, steps it until every alive participant
// has terminated, and assembles the trace.
type cycleDriver struct {
	rs           *runSetup
	data         [][]float64
	nw           *p2p.Network
	participants []*participant
}

// newCycleDriver builds the simulated network around one participant per
// series. workers selects the p2p scheduler: 1 for the sequential
// engine, >1 for the sharded engine. queueHint, when positive,
// preallocates the per-node message queues (allocation-measurement
// harnesses only; ordinary runs pass 0).
func newCycleDriver(data [][]float64, rs *runSetup, workers, queueHint int) (*cycleDriver, error) {
	n := len(data)
	participants := make([]*participant, n)
	factory := func(id p2p.NodeID) p2p.Protocol {
		pt := rs.newParticipant(id)
		participants[id] = pt
		return pt
	}
	opts := p2p.Options{
		Seed:      rs.p.Seed + 1,
		Workers:   workers,
		QueueHint: queueHint,
		Churn: p2p.ChurnModel{
			CrashProb:     rs.p.ChurnCrashProb,
			RejoinProb:    rs.p.ChurnRejoinProb,
			ResetOnRejoin: rs.p.ChurnResetOnRejoin,
		},
	}
	var err error
	opts.Conditioner, opts.Faults, err = bindFaults(rs.p, n)
	if err != nil {
		return nil, err
	}
	nw, err := p2p.New(n, factory, opts)
	if err != nil {
		return nil, err
	}
	return &cycleDriver{rs: rs, data: data, nw: nw, participants: participants}, nil
}

// faultSeedOffset derives the fault-hash seed from the run seed (the
// p2p simulation uses Seed+1; the plan may override with its own Seed).
const faultSeedOffset = 2

// bindFaults binds the run's fault plan for a population of n,
// returning the message-path and lifecycle hooks (shared by the
// cycle-driven drivers and RunAsync). Hooks stay nil — and the hot
// paths untouched — for the fault classes the plan does not use; an
// empty plan binds nothing at all.
func bindFaults(p Params, n int) (p2p.Conditioner, p2p.FaultScheduler, error) {
	if p.Faults.Empty() {
		return nil, nil, nil
	}
	net, err := simnet.NewNet(p.Faults, n, p.Seed+faultSeedOffset)
	if err != nil {
		return nil, nil, err
	}
	var cond p2p.Conditioner
	var sched p2p.FaultScheduler
	if net.HasLinkFaults() {
		cond = net
	}
	if net.HasSchedule() {
		sched = net
	}
	return cond, sched, nil
}

// maxCycles bounds the simulation: the protocol schedule length per
// iteration (assignment + gossip rounds + decryption window) with a 2x
// slack for churn-induced retries, plus a fixed tail.
func (d *cycleDriver) maxCycles() int {
	p := d.rs.p
	return 2*p.Iterations*(3+p.GossipRounds+p.DecryptWindow) + 100
}

// PhaseProfile is the per-phase breakdown of a cycle-driven run's wall
// clock: each cycle is classified by the dominant phase of the alive,
// unterminated participants before it runs, then its elapsed time lands
// in that bucket. The timings are wall-clock observations (not part of
// the deterministic trajectory); the cycle counts are deterministic.
type PhaseProfile struct {
	AssignCycles  int
	GossipCycles  int
	DecryptCycles int
	AssignTime    time.Duration
	GossipTime    time.Duration
	DecryptTime   time.Duration
}

// run steps the network cycle by cycle until every alive participant has
// terminated (or the cycle bound is hit), then builds the trace.
func (d *cycleDriver) run() (*Trace, error) {
	limit := d.maxCycles()
	var prof PhaseProfile
	for cycle := 0; cycle < limit; cycle++ {
		ph := d.dominantPhase()
		start := time.Now()
		d.nw.RunCycle()
		elapsed := time.Since(start)
		switch ph {
		case phaseAssign:
			prof.AssignCycles++
			prof.AssignTime += elapsed
		case phaseGossip:
			prof.GossipCycles++
			prof.GossipTime += elapsed
		case phaseDecrypt:
			prof.DecryptCycles++
			prof.DecryptTime += elapsed
		}
		if d.allAliveDone() {
			break
		}
	}
	tr, err := buildTrace(d.data, d.rs.p, d.participants, d.nw.Cycle(), d.nw.Stats(), d.rs.suite, d.rs.accountant)
	if err != nil {
		return nil, err
	}
	tr.Phases = prof
	return tr, nil
}

// dominantPhase classifies the upcoming cycle by the most common phase
// among alive, unterminated participants. Ties prefer decrypt, then
// gossip — the expensive phases — so a mixed cycle's cost is charged to
// the bucket doing the heavy work.
func (d *cycleDriver) dominantPhase() phase {
	var counts [3]int
	for i := range d.participants {
		if !d.nw.Alive(p2p.NodeID(i)) {
			continue
		}
		if ph := d.participants[i].phase; ph != phaseDone {
			counts[ph]++
		}
	}
	best := phaseDecrypt
	if counts[phaseGossip] > counts[best] {
		best = phaseGossip
	}
	if counts[phaseAssign] > counts[best] {
		best = phaseAssign
	}
	return best
}

// allAliveDone reports whether every alive participant has terminated.
// A direct loop (no ForEachAlive closure) keeps the per-cycle
// termination check allocation-free.
func (d *cycleDriver) allAliveDone() bool {
	for i := range d.participants {
		if d.nw.Alive(p2p.NodeID(i)) && d.participants[i].phase != phaseDone {
			return false
		}
	}
	return true
}
