package core

import (
	"fmt"
	"runtime"
)

// GossipAllocReport is the outcome of MeasureGossipAllocs: the observed
// allocation profile of steady-state gossip cycles on a live run.
type GossipAllocReport struct {
	// AllocsPerCycle is the average number of heap objects allocated per
	// network cycle across the measured window (0 on the in-place hot
	// path once warm).
	AllocsPerCycle float64
	// BytesPerCycle is the average number of heap bytes allocated per
	// network cycle across the measured window.
	BytesPerCycle float64
	// Cycles is the number of measured cycles.
	Cycles int
	// Population is the run's participant count (the per-cycle figures
	// cover ALL participants' activations, not one).
	Population int
}

// DecryptAllocReport is the outcome of MeasureDecryptAllocs: the
// observed allocation profile of decrypt-classified cycles across a
// complete run.
type DecryptAllocReport struct {
	// AllocsPerCycle is the average number of heap objects allocated per
	// decrypt-classified network cycle.
	AllocsPerCycle float64
	// BytesPerCycle is the average number of heap bytes allocated per
	// decrypt-classified network cycle.
	BytesPerCycle float64
	// DecryptCycles is the number of measured (decrypt-classified)
	// cycles.
	DecryptCycles int
	// Population is the run's participant count.
	Population int
}

// MeasureDecryptAllocs builds a sequential cycle-driven run over data
// and executes it to completion, classifying every cycle by its
// dominant phase (the same classification Trace.Phases uses) and
// accumulating runtime.MemStats deltas for the decrypt-classified
// cycles only. Unlike the gossip measurement it cannot prove zero —
// the decrypt phase's big.Int arithmetic allocates by nature — so it
// reports the per-cycle average for the CI regression gate instead.
func MeasureDecryptAllocs(data [][]float64, params Params) (*DecryptAllocReport, error) {
	rs, err := prepareRun(data, params)
	if err != nil {
		return nil, err
	}
	defer rs.close()
	rs.shared.batchHint = len(data)
	d, err := newCycleDriver(data, rs, 1, len(data))
	if err != nil {
		return nil, err
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var before, after runtime.MemStats
	var allocs, bytes uint64
	cycles := 0
	limit := d.maxCycles()
	for cycle := 0; cycle < limit; cycle++ {
		decrypt := d.dominantPhase() == phaseDecrypt
		if decrypt {
			runtime.ReadMemStats(&before)
		}
		d.nw.RunCycle()
		if decrypt {
			runtime.ReadMemStats(&after)
			allocs += after.Mallocs - before.Mallocs
			bytes += after.TotalAlloc - before.TotalAlloc
			cycles++
		}
		if d.allAliveDone() {
			break
		}
	}
	if cycles == 0 {
		return nil, fmt.Errorf("core: run finished without any decrypt-classified cycles")
	}
	return &DecryptAllocReport{
		AllocsPerCycle: float64(allocs) / float64(cycles),
		BytesPerCycle:  float64(bytes) / float64(cycles),
		DecryptCycles:  cycles,
		Population:     len(data),
	}, nil
}

// MeasureGossipAllocs builds a sequential cycle-driven run over data,
// warms it into gossip steady state, and measures the heap allocations
// of whole network cycles — every participant's emit and absorb — via
// runtime.MemStats deltas. It is the measurement behind the
// -bench-scale CLI mode and the CI allocation-regression gate; the
// in-core test suite proves the same property with testing.AllocsPerRun.
//
// params.GossipRounds must exceed warm+measure+1 so the whole window
// stays inside the first iteration's gossip phase; the run is abandoned
// after measuring (no trace is built).
func MeasureGossipAllocs(data [][]float64, params Params, warm, measure int) (*GossipAllocReport, error) {
	if warm < 1 || measure < 1 {
		return nil, fmt.Errorf("core: invalid measurement window (warm=%d, measure=%d)", warm, measure)
	}
	rs, err := prepareRun(data, params)
	if err != nil {
		return nil, err
	}
	defer rs.close()
	if rs.p.GossipRounds <= warm+measure+1 {
		return nil, fmt.Errorf("core: GossipRounds=%d too short for a warm=%d measure=%d window", rs.p.GossipRounds, warm, measure)
	}
	// Full-population queue and batch hints: no in-degree spike can grow
	// a buffer, so the measurement proves zero rather than amortized
	//-zero (the preallocation is O(n²) — measurement scales only).
	rs.shared.batchHint = len(data)
	d, err := newCycleDriver(data, rs, 1, len(data))
	if err != nil {
		return nil, err
	}
	// Cycle 0 runs the assignment step; the warm cycles that follow let
	// every amortized buffer (inboxes, batch scratch, emit arenas) reach
	// its steady capacity.
	for i := 0; i < warm+1; i++ {
		d.nw.RunCycle()
	}
	// Pin to one P, flush the heap, and run one more warmed cycle after
	// the collection so GC-dropped caches are re-primed outside the
	// window (the same discipline as testing.AllocsPerRun, which runs f
	// once before measuring).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	runtime.GC()
	d.nw.RunCycle()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < measure; i++ {
		d.nw.RunCycle()
	}
	runtime.ReadMemStats(&after)
	return &GossipAllocReport{
		AllocsPerCycle: float64(after.Mallocs-before.Mallocs) / float64(measure),
		BytesPerCycle:  float64(after.TotalAlloc-before.TotalAlloc) / float64(measure),
		Cycles:         measure,
		Population:     len(data),
	}, nil
}
