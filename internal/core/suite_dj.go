package core

import (
	"errors"
	"fmt"
	"math/big"
	"sync/atomic"

	"chiaroscuro/internal/crypto/damgardjurik"
	"chiaroscuro/internal/wire"
)

// djSuite is the real homomorphic backend over a threshold Damgård–Jurik
// key. Key material arrives one of two ways: the dealer path
// (NewDamgardJurikSuite) mints all shares from the fixture private key —
// kept as the oracle the DKG is property-tested against — and the
// ceremony path (NewDamgardJurikSuiteFromMaterial, keyceremony.go)
// reconstructs the key from public parameters plus whichever shares the
// ceremony handed this process (share index = participant id + 1; a
// networked process holds only its own).
//
// The suite runs entirely on the package's precomputed fast paths
// (docs/CRYPTO.md): encryption and noise-share encryption draw
// randomizers from a shared RandomizerPool over a fixed-base table,
// gossip halving rerandomizes from the same pool, partial decryptions
// go through the dealer-side CRT context the threshold key carries, and
// share combination is one batched multi-exponentiation. The
// EncContext's table is immutable and the pool is channel-based, so all
// of it is shared safely by the sharded engine's parallel workers;
// per-worker scratch state lives in sync.Pools inside the crypto
// package, keeping workers contention-free. Close releases the pool's
// background refill (Run/RunSharded/RunAsync call it on completion).
type djSuite struct {
	tk      *damgardjurik.ThresholdKey
	shares  []damgardjurik.KeyShare
	inv2    *big.Int
	ctMod   *big.Int // cached n^{s+1} for ValidateCipher range checks
	enc     *damgardjurik.EncContext
	pool    *damgardjurik.RandomizerPool
	poolCap int

	encrypts        atomic.Int64
	adds            atomic.Int64
	halvings        atomic.Int64
	partialDecrypts atomic.Int64
	combines        atomic.Int64
}

// djPoolCapacity is the default randomizer-pool size for standalone
// suite construction. It is only a starting point: prepareRun resizes
// the pool via SizePool to the run's actual burst — shard workers times
// the fused-vector length — so wide sharded runs don't starve the pool
// and packed runs don't over-provision it.
const djPoolCapacity = 256

// djPoolCapacityMax caps SizePool requests: beyond this the background
// refill stops paying for itself (memory plus fill latency) and misses
// degrade gracefully to synchronous randomizers anyway.
const djPoolCapacityMax = 8192

// NewDamgardJurikSuite deals a fresh threshold key over fixture safe
// primes of the given modulus size and wraps it as a CipherSuite for a
// population of `parties` share holders with the given decryption
// threshold.
func NewDamgardJurikSuite(modulusBits, degree, parties, threshold int) (CipherSuite, error) {
	tk, shares, err := damgardjurik.FixtureThresholdKey(modulusBits, degree, parties, threshold)
	if err != nil {
		return nil, err
	}
	return newDJSuite(tk, shares)
}

// NewDamgardJurikSuiteFreshKey is NewDamgardJurikSuite with a freshly
// generated (non-fixture) safe-prime modulus; slow at large bit sizes.
func NewDamgardJurikSuiteFreshKey(modulusBits, degree, parties, threshold int) (CipherSuite, error) {
	tk, shares, err := damgardjurik.GenerateThresholdKey(nil, modulusBits, degree, parties, threshold)
	if err != nil {
		return nil, err
	}
	return newDJSuite(tk, shares)
}

func newDJSuite(tk *damgardjurik.ThresholdKey, shares []damgardjurik.KeyShare) (CipherSuite, error) {
	inv2 := new(big.Int).ModInverse(big.NewInt(2), tk.PlaintextModulus())
	if inv2 == nil {
		return nil, errors.New("core: 2 not invertible in plaintext ring")
	}
	enc, err := tk.NewEncContext(nil)
	if err != nil {
		return nil, err
	}
	pool := damgardjurik.NewRandomizerPool(enc, djPoolCapacity, nil)
	return &djSuite{
		tk: tk, shares: shares, inv2: inv2, ctMod: tk.CiphertextModulus(),
		enc: enc, pool: pool, poolCap: djPoolCapacity,
	}, nil
}

// ValidateCipher implements the cipherValidator extension: the value
// must be a big.Int in the multiplicative ciphertext range (0, n^{s+1})
// — the same bound the homomorphic operations enforce, checked here
// without counting as an operation.
func (s *djSuite) ValidateCipher(c Cipher) error {
	cc, ok := c.(*big.Int)
	if !ok {
		return errors.New("core: foreign cipher type in damgard-jurik suite")
	}
	if cc == nil || cc.Sign() <= 0 || cc.Cmp(s.ctMod) >= 0 {
		return errors.New("core: damgard-jurik ciphertext out of range")
	}
	return nil
}

// SizePool implements the poolSizer extension: it replaces the
// randomizer pool with one sized for the caller's burst (clamped to
// [djPoolCapacity, djPoolCapacityMax]). Only safe before the suite is
// shared across goroutines — prepareRun calls it during construction,
// before any participant exists.
func (s *djSuite) SizePool(capacity int) {
	if capacity < djPoolCapacity {
		capacity = djPoolCapacity
	}
	if capacity > djPoolCapacityMax {
		capacity = djPoolCapacityMax
	}
	if capacity == s.poolCap {
		return
	}
	s.pool.Close()
	s.pool = damgardjurik.NewRandomizerPool(s.enc, capacity, nil)
	s.poolCap = capacity
}

// Close stops the randomizer pool's background refill. The suite remains
// usable afterwards (randomizers are then computed synchronously).
func (s *djSuite) Close() { s.pool.Close() }

// Name implements CipherSuite.
func (s *djSuite) Name() string { return "damgard-jurik" }

// PlainModulus implements CipherSuite.
func (s *djSuite) PlainModulus() *big.Int { return s.tk.PlaintextModulus() }

// CipherBytes implements CipherSuite.
func (s *djSuite) CipherBytes() int { return s.tk.CiphertextBytes() }

// Encrypt implements CipherSuite: fixed-base fast-path encryption with a
// pooled randomizer (decrypt-identical to the naive ciphertexts).
func (s *djSuite) Encrypt(m *big.Int) (Cipher, error) {
	s.encrypts.Add(1)
	return s.pool.Encrypt(m)
}

// Add implements CipherSuite.
func (s *djSuite) Add(a, b Cipher) (Cipher, error) {
	ca, ok1 := a.(*big.Int)
	cb, ok2 := b.(*big.Int)
	if !ok1 || !ok2 {
		return nil, errors.New("core: foreign cipher type in damgard-jurik suite")
	}
	s.adds.Add(1)
	return s.tk.Add(ca, cb)
}

// Halve implements CipherSuite: homomorphic multiplication by 2^{-1}
// mod n^s, followed by re-randomization. The refresh matters because
// halved shares travel to random peers: without it, an observer could
// trace a contribution across gossip hops by recognizing the
// deterministic c^(2^-1) relation between ciphertexts.
func (s *djSuite) Halve(c Cipher) (Cipher, error) {
	cc, ok := c.(*big.Int)
	if !ok {
		return nil, errors.New("core: foreign cipher type in damgard-jurik suite")
	}
	s.halvings.Add(1)
	h, err := s.tk.ScalarMul(cc, s.inv2)
	if err != nil {
		return nil, err
	}
	return s.pool.Rerandomize(h)
}

// Parties implements CipherSuite.
func (s *djSuite) Parties() int { return s.tk.Parties }

// Threshold implements CipherSuite.
func (s *djSuite) Threshold() int { return s.tk.Threshold }

// PartialDecrypt implements CipherSuite.
func (s *djSuite) PartialDecrypt(party int, c Cipher) (Partial, error) {
	cc, ok := c.(*big.Int)
	if !ok {
		return Partial{}, errors.New("core: foreign cipher type in damgard-jurik suite")
	}
	if party < 1 || party > len(s.shares) || s.shares[party-1].Value == nil {
		return Partial{}, fmt.Errorf("core: party %d has no key share", party)
	}
	s.partialDecrypts.Add(1)
	pd, err := s.tk.PartialDecrypt(s.shares[party-1], cc)
	if err != nil {
		return Partial{}, err
	}
	return Partial{Index: pd.Index, Value: pd.Value}, nil
}

// Combine implements CipherSuite.
func (s *djSuite) Combine(parts []Partial) (*big.Int, error) {
	s.combines.Add(1)
	djParts := make([]damgardjurik.PartialDecryption, len(parts))
	for i, p := range parts {
		djParts[i] = damgardjurik.PartialDecryption{Index: p.Index, Value: p.Value}
	}
	return s.tk.Combine(djParts)
}

// CombineColumns implements columnCombiner: it opens count ciphertexts
// against one responder set, resolving the set's combine plan (Lagrange
// coefficients, sign split, multiexp digit schedule) once via
// CombineContext and replaying it per ciphertext. sets beyond the
// threshold are ignored — ascending order means the lowest indices win,
// exactly the subset Combine's selectPartials would pick.
func (s *djSuite) CombineColumns(sets [][]Partial, count int) ([]*big.Int, error) {
	if count < 1 {
		return nil, errors.New("core: empty cipher column")
	}
	if len(sets) < s.tk.Threshold {
		return nil, fmt.Errorf("core: have %d responder sets, need %d", len(sets), s.tk.Threshold)
	}
	use := sets[:s.tk.Threshold]
	indices := make([]int, len(use))
	for j, set := range use {
		if len(set) != count {
			return nil, fmt.Errorf("core: responder set %d has %d partials, want %d", j, len(set), count)
		}
		indices[j] = set[0].Index
	}
	// CombineContext validates ascending/distinct/in-range indices.
	ctx, err := s.tk.CombineContext(indices)
	if err != nil {
		return nil, err
	}
	out := make([]*big.Int, count)
	col := make([]damgardjurik.PartialDecryption, len(use))
	for i := 0; i < count; i++ {
		for j, set := range use {
			p := set[i]
			if p.Value == nil {
				return nil, errors.New("core: partial with nil value")
			}
			col[j] = damgardjurik.PartialDecryption{Index: p.Index, Value: p.Value}
		}
		v, err := s.tk.CombineWith(ctx, col)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	s.combines.Add(int64(count))
	return out, nil
}

// MarshalCipherVector implements suiteWireCodec: Damgård–Jurik ciphers
// are units mod n^{s+1}, encoded fixed-width via the wire
// ciphertext-vector artifact.
func (s *djSuite) MarshalCipherVector(cs []Cipher) ([]byte, error) {
	vs := make([]*big.Int, len(cs))
	for i, c := range cs {
		cc, ok := c.(*big.Int)
		if !ok {
			return nil, errors.New("core: foreign cipher type in damgard-jurik suite")
		}
		vs[i] = cc
	}
	return wire.MarshalCiphertextVector(&s.tk.PublicKey, vs)
}

// UnmarshalCipherVector implements suiteWireCodec. Every decoded value
// is range-checked against the ciphertext modulus by the wire layer.
func (s *djSuite) UnmarshalCipherVector(buf []byte) ([]Cipher, error) {
	vs, err := wire.UnmarshalCiphertextVector(&s.tk.PublicKey, buf)
	if err != nil {
		return nil, err
	}
	out := make([]Cipher, len(vs))
	for i, v := range vs {
		out[i] = v
	}
	return out, nil
}

// MarshalPartialValues implements suiteWireCodec: partial decryptions
// c^{2Δ·s_i} live in the same group as ciphertexts, so they share the
// ciphertext-vector artifact and its range validation.
func (s *djSuite) MarshalPartialValues(ps []Partial) ([]byte, error) {
	vs := make([]*big.Int, len(ps))
	for i, p := range ps {
		if p.Value == nil {
			return nil, errors.New("core: partial with nil value")
		}
		vs[i] = p.Value
	}
	return wire.MarshalCiphertextVector(&s.tk.PublicKey, vs)
}

// UnmarshalPartialValues implements suiteWireCodec.
func (s *djSuite) UnmarshalPartialValues(index int, buf []byte) ([]Partial, error) {
	vs, err := wire.UnmarshalCiphertextVector(&s.tk.PublicKey, buf)
	if err != nil {
		return nil, err
	}
	out := make([]Partial, len(vs))
	for i, v := range vs {
		out[i] = Partial{Index: index, Value: v}
	}
	return out, nil
}

// Counts implements CipherSuite.
func (s *djSuite) Counts() OpCounts {
	return OpCounts{
		Encrypts:        s.encrypts.Load(),
		Adds:            s.adds.Load(),
		Halvings:        s.halvings.Load(),
		PartialDecrypts: s.partialDecrypts.Load(),
		Combines:        s.combines.Load(),
		CombineCtxHits:  s.tk.CombineContextHits(),
	}
}
