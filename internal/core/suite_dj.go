package core

import (
	"errors"
	"fmt"
	"math/big"
	"sync/atomic"

	"chiaroscuro/internal/crypto/damgardjurik"
)

// djSuite is the real homomorphic backend over a threshold Damgård–Jurik
// key. The simulation's trusted dealer holds all key shares and hands
// each participant its own (share index = participant id + 1).
type djSuite struct {
	tk     *damgardjurik.ThresholdKey
	shares []damgardjurik.KeyShare
	inv2   *big.Int

	encrypts        atomic.Int64
	adds            atomic.Int64
	halvings        atomic.Int64
	partialDecrypts atomic.Int64
	combines        atomic.Int64
}

// NewDamgardJurikSuite deals a fresh threshold key over fixture safe
// primes of the given modulus size and wraps it as a CipherSuite for a
// population of `parties` share holders with the given decryption
// threshold.
func NewDamgardJurikSuite(modulusBits, degree, parties, threshold int) (CipherSuite, error) {
	tk, shares, err := damgardjurik.FixtureThresholdKey(modulusBits, degree, parties, threshold)
	if err != nil {
		return nil, err
	}
	return newDJSuite(tk, shares)
}

// NewDamgardJurikSuiteFreshKey is NewDamgardJurikSuite with a freshly
// generated (non-fixture) safe-prime modulus; slow at large bit sizes.
func NewDamgardJurikSuiteFreshKey(modulusBits, degree, parties, threshold int) (CipherSuite, error) {
	tk, shares, err := damgardjurik.GenerateThresholdKey(nil, modulusBits, degree, parties, threshold)
	if err != nil {
		return nil, err
	}
	return newDJSuite(tk, shares)
}

func newDJSuite(tk *damgardjurik.ThresholdKey, shares []damgardjurik.KeyShare) (CipherSuite, error) {
	inv2 := new(big.Int).ModInverse(big.NewInt(2), tk.PlaintextModulus())
	if inv2 == nil {
		return nil, errors.New("core: 2 not invertible in plaintext ring")
	}
	return &djSuite{tk: tk, shares: shares, inv2: inv2}, nil
}

// Name implements CipherSuite.
func (s *djSuite) Name() string { return "damgard-jurik" }

// PlainModulus implements CipherSuite.
func (s *djSuite) PlainModulus() *big.Int { return s.tk.PlaintextModulus() }

// CipherBytes implements CipherSuite.
func (s *djSuite) CipherBytes() int { return s.tk.CiphertextBytes() }

// Encrypt implements CipherSuite.
func (s *djSuite) Encrypt(m *big.Int) (Cipher, error) {
	s.encrypts.Add(1)
	return s.tk.Encrypt(nil, m)
}

// Add implements CipherSuite.
func (s *djSuite) Add(a, b Cipher) (Cipher, error) {
	ca, ok1 := a.(*big.Int)
	cb, ok2 := b.(*big.Int)
	if !ok1 || !ok2 {
		return nil, errors.New("core: foreign cipher type in damgard-jurik suite")
	}
	s.adds.Add(1)
	return s.tk.Add(ca, cb)
}

// Halve implements CipherSuite: homomorphic multiplication by 2^{-1}
// mod n^s, followed by re-randomization. The refresh matters because
// halved shares travel to random peers: without it, an observer could
// trace a contribution across gossip hops by recognizing the
// deterministic c^(2^-1) relation between ciphertexts.
func (s *djSuite) Halve(c Cipher) (Cipher, error) {
	cc, ok := c.(*big.Int)
	if !ok {
		return nil, errors.New("core: foreign cipher type in damgard-jurik suite")
	}
	s.halvings.Add(1)
	h, err := s.tk.ScalarMul(cc, s.inv2)
	if err != nil {
		return nil, err
	}
	return s.tk.Rerandomize(nil, h)
}

// Parties implements CipherSuite.
func (s *djSuite) Parties() int { return s.tk.Parties }

// Threshold implements CipherSuite.
func (s *djSuite) Threshold() int { return s.tk.Threshold }

// PartialDecrypt implements CipherSuite.
func (s *djSuite) PartialDecrypt(party int, c Cipher) (Partial, error) {
	cc, ok := c.(*big.Int)
	if !ok {
		return Partial{}, errors.New("core: foreign cipher type in damgard-jurik suite")
	}
	if party < 1 || party > len(s.shares) {
		return Partial{}, fmt.Errorf("core: party %d has no key share", party)
	}
	s.partialDecrypts.Add(1)
	pd, err := s.tk.PartialDecrypt(s.shares[party-1], cc)
	if err != nil {
		return Partial{}, err
	}
	return Partial{Index: pd.Index, Value: pd.Value}, nil
}

// Combine implements CipherSuite.
func (s *djSuite) Combine(parts []Partial) (*big.Int, error) {
	s.combines.Add(1)
	djParts := make([]damgardjurik.PartialDecryption, len(parts))
	for i, p := range parts {
		djParts[i] = damgardjurik.PartialDecryption{Index: p.Index, Value: p.Value}
	}
	return s.tk.Combine(djParts)
}

// Counts implements CipherSuite.
func (s *djSuite) Counts() OpCounts {
	return OpCounts{
		Encrypts:        s.encrypts.Load(),
		Adds:            s.adds.Load(),
		Halvings:        s.halvings.Load(),
		PartialDecrypts: s.partialDecrypts.Load(),
		Combines:        s.combines.Load(),
	}
}
