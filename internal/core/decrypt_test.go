package core

import (
	"math/big"
	"reflect"
	"testing"

	"chiaroscuro/internal/p2p"
)

// scriptedEnv is a minimal Env for driving participant decrypt methods
// directly: RandomPeer replays a scripted draw sequence and Send records
// deliveries.
type scriptedEnv struct {
	id    p2p.NodeID
	n     int
	peers []p2p.NodeID // scripted RandomPeer draws, in order
	next  int
	sent  []scriptedSend
}

type scriptedSend struct {
	to      p2p.NodeID
	payload any
	bytes   int
}

func (e *scriptedEnv) ID() p2p.NodeID      { return e.id }
func (e *scriptedEnv) Cycle() int          { return 0 }
func (e *scriptedEnv) PopulationSize() int { return e.n }
func (e *scriptedEnv) AliveCount() int     { return e.n }
func (e *scriptedEnv) Inbox() []p2p.Message {
	return nil
}
func (e *scriptedEnv) Send(to p2p.NodeID, payload any, bytes int) error {
	e.sent = append(e.sent, scriptedSend{to: to, payload: payload, bytes: bytes})
	return nil
}
func (e *scriptedEnv) RandomPeer() (p2p.NodeID, bool) {
	if e.next >= len(e.peers) {
		return -1, false
	}
	p := e.peers[e.next]
	e.next++
	return p, true
}
func (e *scriptedEnv) RandomPeers(k int) []p2p.NodeID {
	out := make([]p2p.NodeID, 0, k)
	seen := map[p2p.NodeID]bool{e.id: true}
	for len(out) < k {
		p, ok := e.RandomPeer()
		if !ok {
			break
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

var _ Env = (*scriptedEnv)(nil)

func decryptTestParticipant(t *testing.T, n int) (*runSetup, *participant) {
	t.Helper()
	data := blobs(n, 2, 2)
	rs, err := prepareRun(data, Params{
		K: 2, Epsilon: 50, Iterations: 1, Seed: 1,
		GossipRounds: 4, DecryptThreshold: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rs.close)
	return rs, rs.newParticipant(0)
}

// TestTopUpAsksRedrawsPastAskedPeers is the satellite-1 regression: a
// draw landing on an already-asked peer must be redrawn, not silently
// dropped from the wave. The scripted sequence interleaves stale draws
// with fresh peers; the window must still reach `missing` asks.
func TestTopUpAsksRedrawsPastAskedPeers(t *testing.T) {
	_, pt := decryptTestParticipant(t, 12)
	pt.asked = map[p2p.NodeID]bool{1: true, 2: true}
	pt.outstanding = nil // also exercises the lazy re-init (restored snapshots)
	env := &scriptedEnv{id: 0, n: 12, peers: []p2p.NodeID{1, 2, 1, 3, 2, 2, 4, 5}}
	req := &decryptRequest{Iter: 0}
	pt.topUpAsks(env, 2, req, 10)
	if len(env.sent) != 2 {
		t.Fatalf("sent %d asks, want 2 (stale draws must be redrawn)", len(env.sent))
	}
	if env.sent[0].to != 3 || env.sent[1].to != 4 {
		t.Fatalf("asked %v and %v, want the first two un-asked draws 3 and 4", env.sent[0].to, env.sent[1].to)
	}
	if len(pt.outstanding) != 2 || pt.outstanding[3] != askTTL || pt.outstanding[4] != askTTL {
		t.Fatalf("outstanding = %v, want {3:%d 4:%d}", pt.outstanding, askTTL, askTTL)
	}
	if !pt.asked[3] || !pt.asked[4] {
		t.Fatal("fresh asks must be recorded in asked")
	}
	if pt.decryptReqs != 2 || pt.decryptReqBytes != 20 {
		t.Fatalf("request accounting = (%d, %d), want (2, 20)", pt.decryptReqs, pt.decryptReqBytes)
	}
}

// TestTopUpAsksWindowDiscipline pins the window semantics: a full window
// sends nothing, TTLs age per activation, expired asks are re-provisioned
// to new peers, and a slow quorum escalates the target by one.
func TestTopUpAsksWindowDiscipline(t *testing.T) {
	_, pt := decryptTestParticipant(t, 12)
	pt.asked = make(map[p2p.NodeID]bool)
	req := &decryptRequest{Iter: 0}

	// First activation fills the window.
	env := &scriptedEnv{id: 0, n: 12, peers: []p2p.NodeID{3, 4, 5, 6, 7, 8, 9, 10, 11}}
	pt.topUpAsks(env, 2, req, 10)
	if len(env.sent) != 2 {
		t.Fatalf("initial fill sent %d, want 2", len(env.sent))
	}
	// Second and third activations: window full, only TTL aging.
	pt.topUpAsks(env, 2, req, 10)
	if len(env.sent) != 2 {
		t.Fatalf("full window must not send; sent %d", len(env.sent))
	}
	if pt.outstanding[3] != askTTL-1 || pt.outstanding[4] != askTTL-1 {
		t.Fatalf("TTLs not aged: %v", pt.outstanding)
	}
	pt.topUpAsks(env, 2, req, 10)
	// Fourth activation: both initial asks expire and are re-provisioned.
	pt.topUpAsks(env, 2, req, 10)
	if len(env.sent) != 4 {
		t.Fatalf("expired asks must be re-provisioned; sent %d, want 4", len(env.sent))
	}
	if _, stale := pt.outstanding[3]; stale {
		t.Fatal("expired ask still outstanding")
	}

	// Escalation: with waitCycles at the TTL, the target is missing+1.
	pt2 := pt
	pt2.outstanding = make(map[p2p.NodeID]int)
	pt2.asked = make(map[p2p.NodeID]bool)
	pt2.waitCycles = askTTL
	env2 := &scriptedEnv{id: 0, n: 12, peers: []p2p.NodeID{1, 2, 3, 4, 5}}
	pt2.topUpAsks(env2, 2, req, 10)
	if len(env2.sent) != 3 {
		t.Fatalf("slow quorum must over-provision by one; sent %d, want 3", len(env2.sent))
	}

	// Pool exhaustion terminates cleanly: every scripted draw is already
	// asked, so nothing is sent and the loop ends with the pool.
	env3 := &scriptedEnv{id: 0, n: 12, peers: []p2p.NodeID{1, 1, 1}}
	pt2.topUpAsks(env3, 5, req, 10)
	if got := len(env3.sent); got != 0 {
		t.Fatalf("exhausted pool still sent %d asks", got)
	}
}

// TestServeDecryptMemoizesPartials is the satellite-3 property: replays
// of the same (iteration, cipher-set) request are served from the memo
// without recomputing the per-cipher partial decryptions, and anything
// else misses.
func TestServeDecryptMemoizesPartials(t *testing.T) {
	rs, pt := decryptTestParticipant(t, 12)
	c1, err := rs.suite.Encrypt(big.NewInt(5))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := rs.suite.Encrypt(big.NewInt(9))
	if err != nil {
		t.Fatal(err)
	}
	env := &scriptedEnv{id: 0, n: 12}
	req := &decryptRequest{Iter: 0, Ciphers: []Cipher{c1, c2}}

	pt.serveDecrypt(env, 7, req)
	if pt.servedHits != 0 {
		t.Fatalf("first request hit the memo (%d hits)", pt.servedHits)
	}
	pt.serveDecrypt(env, 8, req) // replay: same iteration, same cipher slice
	if pt.servedHits != 1 {
		t.Fatalf("replay missed the memo (%d hits)", pt.servedHits)
	}
	r1 := env.sent[0].payload.(*decryptResponse)
	r2 := env.sent[1].payload.(*decryptResponse)
	if &r1.Partials[0] != &r2.Partials[0] {
		t.Fatal("memo hit must reuse the cached partials")
	}
	if !reflect.DeepEqual(r1.Partials, r2.Partials) {
		t.Fatal("cached partials differ from the originals")
	}

	// A different cipher slice (even with equal contents) misses: the memo
	// key is the slice identity, the only cheap guarantee the partials
	// belong to exactly these ciphertexts.
	other := &decryptRequest{Iter: 0, Ciphers: []Cipher{c1, c2}}
	pt.serveDecrypt(env, 9, other)
	if pt.servedHits != 1 {
		t.Fatalf("different slice must miss (%d hits)", pt.servedHits)
	}
	// A different iteration over the same slice misses too.
	stale := &decryptRequest{Iter: 1, Ciphers: other.Ciphers}
	pt.serveDecrypt(env, 9, stale)
	if pt.servedHits != 1 {
		t.Fatalf("different iteration must miss (%d hits)", pt.servedHits)
	}
	if pt.decryptRespBytes == 0 {
		t.Fatal("response bytes not accounted")
	}
}

// TestDecryptChurnSmallPopulation is the satellite-1 end-to-end
// regression. The scenario is chosen where the old discipline's silent
// wave shrinkage bites hardest: the quorum needs nearly the whole small
// pool (9 of 11 peers) under crash/rejoin churn, so the legacy path
// exhausts `asked` in its first waves and — unable to ever re-ask a
// crashed-then-rejoined peer — burns the rest of the window drawing
// already-asked peers. The window's redraws and expiry-release re-asks
// must assemble quorums strictly more reliably here.
func TestDecryptChurnSmallPopulation(t *testing.T) {
	data := blobs(12, 2, 2)
	failures := func(legacy bool) int {
		total := 0
		for seed := int64(0); seed < 10; seed++ {
			p := Params{
				K: 2, Epsilon: 50, Iterations: 3, Seed: seed,
				GossipRounds: 5, DecryptThreshold: 9, DecryptWindow: 14,
				ChurnCrashProb: 0.08, ChurnRejoinProb: 0.5,
				legacyDecryptAsk: legacy,
			}
			tr, err := Run(data, p)
			if err != nil {
				total += 3 // an aborted run failed every iteration
				continue
			}
			total += tr.DecryptFailures
		}
		return total
	}
	legacy, windowed := failures(true), failures(false)
	t.Logf("decrypt failures across 10 churn seeds: legacy=%d windowed=%d", legacy, windowed)
	if windowed >= legacy {
		t.Fatalf("windowed asks must out-assemble legacy in the near-full-quorum churn scenario: windowed=%d, legacy=%d", windowed, legacy)
	}
}

// TestDecryptDeterministicResponderOrder is the satellite-2 regression:
// two identical runs on the real backend must produce bit-identical
// traces AND identical operation counts — the map-ordered combine input
// this pins down used to leak nondeterminism into the responder-set
// cache profile even when the decrypted values agreed.
func TestDecryptDeterministicResponderOrder(t *testing.T) {
	data := blobs(16, 2, 2)
	// DecryptThreshold n-1 makes every participant's responder set
	// all-shares-but-its-own, so iteration 2 must hit the responder-set
	// cache (same subset, same run-level key).
	p := Params{
		K: 2, Epsilon: 50, Iterations: 2, Seed: 7,
		GossipRounds: 5, DecryptThreshold: len(data) - 1,
		Backend: BackendDamgardJurik, ModulusBits: 256,
	}
	run := func() *Trace {
		tr, err := Run(data, p)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.FinalCentroids, b.FinalCentroids) {
		t.Fatal("final centroids differ between identical runs")
	}
	if a.Ops != b.Ops {
		t.Fatalf("operation counts differ between identical runs:\n  %+v\n  %+v", a.Ops, b.Ops)
	}
	if a.DecryptRequests != b.DecryptRequests || a.DecryptBytes != b.DecryptBytes {
		t.Fatal("decrypt accounting differs between identical runs")
	}
	if a.Ops.CombineCtxHits == 0 {
		t.Fatal("no combine-context cache hits in a multi-cipher decrypt run")
	}
}

// TestDecryptWindowStressTable is the satellite-4 A/B: quorum assembly
// across the DecryptThreshold edges (tiny quorum, and quorum == n-1 where
// every peer must answer), legacy vs windowed asks, fault-free. The
// windowed path must never complete later and never send more decrypt
// bytes.
func TestDecryptWindowStressTable(t *testing.T) {
	data := blobs(24, 2, 2)
	type row struct {
		threshold int
		legacy    bool
		cycles    int
		requests  int
		bytes     int64
		fails     int
	}
	var rows []row
	for _, threshold := range []int{3, len(data) - 1} {
		for _, legacy := range []bool{true, false} {
			p := Params{
				K: 2, Epsilon: 50, Iterations: 2, Seed: 3,
				GossipRounds: 5, DecryptThreshold: threshold, DecryptWindow: 12,
				legacyDecryptAsk: legacy,
			}
			tr, err := Run(data, p)
			if err != nil {
				t.Fatalf("threshold=%d legacy=%v: %v", threshold, legacy, err)
			}
			rows = append(rows, row{threshold, legacy, tr.CyclesRun, tr.DecryptRequests, tr.DecryptBytes, tr.DecryptFailures})
		}
	}
	t.Log("threshold  discipline  cycles  requests  decryptBytes  fails")
	for _, r := range rows {
		name := "windowed"
		if r.legacy {
			name = "legacy"
		}
		t.Logf("%9d  %-10s  %6d  %8d  %12d  %5d", r.threshold, name, r.cycles, r.requests, r.bytes, r.fails)
	}
	for i := 0; i < len(rows); i += 2 {
		legacy, windowed := rows[i], rows[i+1]
		if legacy.fails != 0 || windowed.fails != 0 {
			t.Fatalf("fault-free run reported decrypt failures: %+v / %+v", legacy, windowed)
		}
		if windowed.cycles > legacy.cycles {
			t.Errorf("threshold=%d: windowed completes later (%d > %d cycles)", windowed.threshold, windowed.cycles, legacy.cycles)
		}
		if windowed.bytes > legacy.bytes {
			t.Errorf("threshold=%d: windowed sends more decrypt bytes (%d > %d)", windowed.threshold, windowed.bytes, legacy.bytes)
		}
		if windowed.requests > legacy.requests {
			t.Errorf("threshold=%d: windowed sends more requests (%d > %d)", windowed.threshold, windowed.requests, legacy.requests)
		}
	}
}

// TestDecryptPhaseAccounting pins the new trace fields: a fault-free run
// classifies cycles into every phase, and the decrypt wire accounting is
// non-zero and consistent with the network totals.
func TestDecryptPhaseAccounting(t *testing.T) {
	data := blobs(24, 2, 2)
	tr, err := Run(data, Params{K: 2, Epsilon: 50, Iterations: 2, Seed: 5, GossipRounds: 5, DecryptThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	ph := tr.Phases
	if ph.AssignCycles == 0 || ph.GossipCycles == 0 || ph.DecryptCycles == 0 {
		t.Fatalf("phase profile missing cycles: %+v", ph)
	}
	if got := ph.AssignCycles + ph.GossipCycles + ph.DecryptCycles; got != tr.CyclesRun {
		t.Fatalf("phase cycles sum to %d, run had %d", got, tr.CyclesRun)
	}
	if tr.DecryptRequests == 0 || tr.DecryptBytes == 0 {
		t.Fatalf("decrypt accounting empty: %d requests, %d bytes", tr.DecryptRequests, tr.DecryptBytes)
	}
	if tr.DecryptBytes >= tr.NetStats.BytesSent {
		t.Fatalf("decrypt bytes (%d) exceed total wire bytes (%d)", tr.DecryptBytes, tr.NetStats.BytesSent)
	}
}
