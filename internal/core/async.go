package core

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"chiaroscuro/internal/compactrng"
	"chiaroscuro/internal/p2p"
)

// RunAsync executes the protocol with one goroutine per participant and
// channel-based message passing — genuine concurrency with no global
// synchronization, which is the deployment model the paper targets
// ("identical for all participants, and proceeds without any global
// synchronization", Sec. II.B). Each participant advances through its
// own activations at its own pace; stragglers resynchronize through the
// iteration tags on gossip messages exactly as in the cycle-driven
// engine, because both engines run the same participant code (Env
// abstracts the runtime).
//
// Unlike Run, RunAsync is NOT deterministic: goroutine scheduling decides
// message interleavings. Protocol correctness (and the probabilistic-DP
// accounting) hold regardless; tests assert quality bounds, not exact
// values. Churn options are not supported here (use Run for fault
// experiments; this engine models the healthy concurrent deployment).
func RunAsync(data [][]float64, params Params) (*Trace, error) {
	if params.ChurnCrashProb != 0 || params.ChurnRejoinProb != 0 {
		return nil, errors.New("core: RunAsync does not support churn; use Run")
	}
	params.asyncEngine = true
	rs, err := prepareRun(data, params)
	if err != nil {
		return nil, err
	}
	defer rs.close()
	p := rs.p
	n := len(data)
	// Gossip protocols are built on *periodical* exchanges (Sec. II.A);
	// each participant activates on its own timer with ±20% jitter. The
	// jittered timers are what keeps the engine asynchronous while still
	// letting messages propagate between activations.
	interval := p.AsyncInterval
	if interval <= 0 {
		interval = 200 * time.Microsecond
	}

	net := &asyncNet{
		inboxes: make([]*asyncInbox, n),
	}
	// Bind the fault plan. The async engine has no global clock, so the
	// Conditioner and scheduler run against each participant's private
	// activation counter: link faults drop/duplicate probabilistically
	// (delays are meaningless here — channel scheduling already reorders)
	// and lifecycle faults trigger on the node's own step count.
	// Byzantine behaviours live in the participant and need no wiring.
	cond, sched, err := bindFaults(p, n)
	if err != nil {
		return nil, err
	}
	net.cond = cond
	// Generous buffering: a full iteration's worth of traffic per node.
	// Overflow is dropped and counted, like a saturated link.
	inboxCap := 4*(p.GossipRounds+2*p.DecryptThreshold) + 64
	for i := range net.inboxes {
		net.inboxes[i] = newAsyncInbox(inboxCap)
	}

	participants := make([]*participant, n)
	for i := 0; i < n; i++ {
		participants[i] = rs.newParticipant(p2p.NodeID(i))
	}

	maxSteps := 4*p.Iterations*(3+p.GossipRounds+p.DecryptWindow) + 400
	var done atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(pt *participant) {
			defer wg.Done()
			env := &asyncEnv{
				net: net,
				id:  pt.id,
				rng: compactrng.NewRand(p.Seed ^ (int64(pt.id)+7)*0x2545F4914F6CDD1D),
				// Sized to the ring: a full drain can never grow it, so
				// steady-state activations reuse this one buffer.
				drain: make([]p2p.Message, 0, inboxCap),
			}
			notified := false
			wasDown := false
			pendingReset := false
			for step := 0; ; step++ {
				select {
				case <-stop:
					return
				default:
				}
				env.step = step
				activate := true
				if sched != nil {
					d := sched.Directive(pt.id, step)
					if d.Down {
						// Crashed: discard whatever arrives, initiate
						// nothing. The activation cadence keeps ticking so
						// outage windows measured in activations elapse.
						wasDown = true
						if d.Reset {
							pendingReset = true // latched until revival
						}
						for range env.Inbox() {
						}
						activate = false
					} else {
						if wasDown {
							wasDown = false
							if d.Reset || pendingReset {
								pt.Reset()
							}
							pendingReset = false
						}
						if d.Stall {
							// Laggard: the inbox accumulates in the channel.
							activate = false
						}
					}
				}
				if activate {
					pt.step(env)
				}
				if pt.phase == phaseDone && !notified {
					notified = true
					done.Add(1)
				}
				if step >= maxSteps && !notified {
					// Hostile stall (or a scheduled permanent crash): give
					// up initiating, keep serving what the plan allows.
					notified = true
					done.Add(1)
				}
				// Periodic activation with jitter; finished participants
				// keep serving at the same cadence. Gosched first so the
				// sleep does not round up tiny intervals on coarse
				// timers.
				runtime.Gosched()
				time.Sleep(time.Duration(float64(interval) * (0.8 + 0.4*env.rng.Float64())))
			}
		}(participants[i])
	}

	// Wait for all participants to finish their iterations, with a
	// generous wall-clock safety net.
	deadline := time.After(5 * time.Minute)
	tick := time.NewTicker(200 * time.Microsecond)
	defer tick.Stop()
waitLoop:
	for {
		select {
		case <-tick.C:
			if done.Load() == int64(n) {
				break waitLoop
			}
		case <-deadline:
			break waitLoop
		}
	}
	close(stop)
	wg.Wait()

	stats := p2p.Stats{
		MessagesSent:    int(net.sent.Load()),
		MessagesDropped: int(net.dropped.Load()),
		BytesSent:       net.bytes.Load(),
		FaultDrops:      int(net.fdrops.Load()),
		Duplicates:      int(net.dups.Load()),
	}
	// "Cycles" in the async engine: the maximum number of activations any
	// participant performed is not tracked per-node; report the protocol
	// schedule length instead.
	cycles := p.Iterations * (1 + p.GossipRounds + 2)
	return buildTrace(data, p, participants, cycles, stats, rs.suite, rs.accountant)
}

// asyncInbox is one participant's fixed-capacity mailbox: a mutex-guarded
// ring of messages. It replaces the earlier per-node buffered channel —
// the channel's per-receive element churn (and the fresh slice every
// drain grew) was the async fabric's last allocation source. Capacity is
// fixed at construction; a full ring drops the incoming message, which
// the sender counts exactly like the saturated channel did.
type asyncInbox struct {
	mu   sync.Mutex
	buf  []p2p.Message
	head int // index of the oldest queued message
	n    int // queued message count
}

func newAsyncInbox(capacity int) *asyncInbox {
	return &asyncInbox{buf: make([]p2p.Message, capacity)}
}

// push enqueues m, reporting false when the ring is full.
func (ib *asyncInbox) push(m p2p.Message) bool {
	ib.mu.Lock()
	if ib.n == len(ib.buf) {
		ib.mu.Unlock()
		return false
	}
	i := ib.head + ib.n
	if i >= len(ib.buf) {
		i -= len(ib.buf)
	}
	ib.buf[i] = m
	ib.n++
	ib.mu.Unlock()
	return true
}

// drainInto appends every queued message to dst in arrival order and
// clears the vacated slots, so recycled ring capacity never pins dead
// payloads. With dst's capacity at least the ring's, it allocates
// nothing.
func (ib *asyncInbox) drainInto(dst []p2p.Message) []p2p.Message {
	ib.mu.Lock()
	for ; ib.n > 0; ib.n-- {
		dst = append(dst, ib.buf[ib.head])
		ib.buf[ib.head] = p2p.Message{}
		ib.head++
		if ib.head == len(ib.buf) {
			ib.head = 0
		}
	}
	ib.mu.Unlock()
	return dst
}

// asyncNet is the ring-buffer message fabric.
type asyncNet struct {
	inboxes []*asyncInbox
	cond    p2p.Conditioner // nil unless the fault plan conditions links
	sent    atomic.Int64
	dropped atomic.Int64
	bytes   atomic.Int64
	fdrops  atomic.Int64
	dups    atomic.Int64
}

// asyncEnv implements Env for one participant goroutine.
type asyncEnv struct {
	net  *asyncNet
	id   p2p.NodeID
	rng  *rand.Rand
	step int
	// drain is the reusable Inbox buffer, pre-sized to the ring capacity.
	drain []p2p.Message
}

// ID implements Env.
func (e *asyncEnv) ID() p2p.NodeID { return e.id }

// Cycle implements Env: the participant's own activation counter (there
// is no global clock).
func (e *asyncEnv) Cycle() int { return e.step }

// PopulationSize implements Env.
func (e *asyncEnv) PopulationSize() int { return len(e.net.inboxes) }

// AliveCount implements Env: everyone is alive in this engine.
func (e *asyncEnv) AliveCount() int { return len(e.net.inboxes) }

// Inbox implements Env: drains whatever has arrived so far into the
// env's reusable buffer (valid until the next Inbox call — exactly the
// lifetime participant.step needs).
func (e *asyncEnv) Inbox() []p2p.Message {
	e.drain = e.net.inboxes[e.id].drainInto(e.drain[:0])
	return e.drain
}

// Send implements Env: non-blocking delivery; a full inbox drops the
// message (a saturated peer), which push-sum absorbs as mass loss. A
// bound fault plan additionally drops or duplicates messages (delays
// are left to the channel scheduling this engine already has).
func (e *asyncEnv) Send(to p2p.NodeID, payload any, bytes int) error {
	if to < 0 || int(to) >= len(e.net.inboxes) {
		return errors.New("core: async send out of range")
	}
	e.net.sent.Add(1)
	e.net.bytes.Add(int64(bytes))
	copies := 1
	if e.net.cond != nil {
		v := e.net.cond.Condition(e.id, to, e.step, bytes)
		if v.Drop {
			e.net.fdrops.Add(1)
			e.net.dropped.Add(1)
			return nil
		}
		if v.Duplicate {
			e.net.dups.Add(1)
			copies = 2
		}
	}
	for c := 0; c < copies; c++ {
		if !e.net.inboxes[to].push(p2p.Message{From: e.id, Payload: payload, Bytes: bytes}) {
			e.net.dropped.Add(1)
		}
	}
	return nil
}

// RandomPeer implements Env.
func (e *asyncEnv) RandomPeer() (p2p.NodeID, bool) {
	n := len(e.net.inboxes)
	if n < 2 {
		return -1, false
	}
	j := e.rng.Intn(n - 1)
	if j >= int(e.id) {
		j++
	}
	return p2p.NodeID(j), true
}

// RandomPeers implements Env.
func (e *asyncEnv) RandomPeers(k int) []p2p.NodeID {
	out := make([]p2p.NodeID, 0, k)
	seen := map[p2p.NodeID]bool{e.id: true}
	for attempts := 0; len(out) < k && attempts < 16*(k+1); attempts++ {
		p, ok := e.RandomPeer()
		if !ok {
			break
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

var _ Env = (*asyncEnv)(nil)
