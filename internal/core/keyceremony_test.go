package core

import (
	"math/big"
	"reflect"
	"strings"
	"testing"

	"chiaroscuro/internal/crypto/damgardjurik"
	"chiaroscuro/internal/simnet"
)

// TestDKGRunMatchesDealerRun is the engine-level oracle check: a run
// keyed by the distributed ceremony must disclose a trajectory
// bit-identical to the dealer-keyed run at the same seed — decryptions
// are exact, so the key's provenance cannot leak into the plaintexts.
func TestDKGRunMatchesDealerRun(t *testing.T) {
	data := blobs(12, 4, 2)
	base := Params{
		K: 2, Epsilon: 10, Iterations: 2, Seed: 9,
		GossipRounds: 6, DecryptThreshold: 3,
		Backend: BackendDamgardJurik, ModulusBits: 128,
	}
	dealer, err := Run(data, base)
	if err != nil {
		t.Fatal(err)
	}
	viaDKG := base
	viaDKG.DKG = true
	ceremony, err := Run(data, viaDKG)
	if err != nil {
		t.Fatal(err)
	}
	if len(dealer.Iterations) != len(ceremony.Iterations) {
		t.Fatalf("iteration counts differ: %d vs %d", len(dealer.Iterations), len(ceremony.Iterations))
	}
	for i := range dealer.Iterations {
		a, b := dealer.Iterations[i], ceremony.Iterations[i]
		if !reflect.DeepEqual(a.PerturbedCentroids, b.PerturbedCentroids) ||
			!reflect.DeepEqual(a.PerturbedCounts, b.PerturbedCounts) {
			t.Fatalf("iteration %d: DKG-keyed disclosure diverges from dealer-keyed", i)
		}
	}
	if !reflect.DeepEqual(dealer.FinalCentroids, ceremony.FinalCentroids) {
		t.Fatal("final centroids diverge")
	}
}

// TestDealerFaultVerdictsAndLiveness pins the byzantine-dealer scenario
// semantics end to end: the scripted faults produce the expected
// deterministic disqualification verdicts, the ceremony restarts with
// the qualified founders, and the clustering run over the re-keyed
// deployment completes for every participant with the same disclosures
// as a fault-free run (the key never touches the plaintexts).
func TestDealerFaultVerdictsAndLiveness(t *testing.T) {
	const parties, threshold, seed = 12, 3, 9
	plan, err := simnet.ParsePlan("badshare=1;equivocate=3;silentdealer=5")
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunDJKeyCeremony(128, 1, parties, threshold, seed, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.Disqualified, []int{2, 4, 6}; !reflect.DeepEqual(got, want) {
		t.Fatalf("disqualified %v, want %v (dealer id = node+1)", got, want)
	}
	if len(m.Qualified) != parties-3 {
		t.Fatalf("qualified %v, want the %d honest founders", m.Qualified, parties-3)
	}
	for _, d := range m.Disqualified {
		for _, q := range m.Qualified {
			if d == q {
				t.Fatalf("dealer %d both qualified and disqualified", d)
			}
		}
	}
	// Deterministic replay: the same (config, seed, plan) yields the
	// same shares, including across the restart.
	m2, err := RunDJKeyCeremony(128, 1, parties, threshold, seed, plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Shares {
		if m.Shares[i].Value.Cmp(m2.Shares[i].Value) != 0 {
			t.Fatalf("share %d not replayed identically", i+1)
		}
	}

	data := blobs(parties, 4, 2)
	base := Params{
		K: 2, Epsilon: 10, Iterations: 2, Seed: seed,
		GossipRounds: 6, DecryptThreshold: threshold,
		Backend: BackendDamgardJurik, ModulusBits: 128, DKG: true,
	}
	clean, err := Run(data, base)
	if err != nil {
		t.Fatal(err)
	}
	faulty := base
	faulty.Faults = plan
	tr, err := Run(data, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Completed != parties {
		t.Fatalf("liveness: %d of %d participants completed under dealer faults", tr.Completed, parties)
	}
	if !reflect.DeepEqual(clean.FinalCentroids, tr.FinalCentroids) {
		t.Fatal("dealer faults changed the disclosed trajectory")
	}
}

// TestDealerFaultsRequireDKG pins the validation seam: a plan with
// dealer clauses is meaningless without a ceremony to corrupt.
func TestDealerFaultsRequireDKG(t *testing.T) {
	plan, err := simnet.ParsePlan("badshare=0")
	if err != nil {
		t.Fatal(err)
	}
	data := blobs(8, 3, 2)
	_, err = Run(data, Params{
		K: 2, Epsilon: 5, Iterations: 1, Seed: 1,
		Backend: BackendDamgardJurik, ModulusBits: 128, Faults: plan,
	})
	if err == nil || !strings.Contains(err.Error(), "dealer faults require") {
		t.Fatalf("dealer faults without DKG accepted: %v", err)
	}
	if _, err := Run(data, Params{
		K: 2, Epsilon: 5, Iterations: 1, Seed: 1, DKG: true,
	}); err == nil || !strings.Contains(err.Error(), "Damgård–Jurik backend") {
		t.Fatalf("DKG on the plain backend accepted: %v", err)
	}
}

// TestDJMaterialSparseShares pins the networked-daemon share model: a
// suite built from material holding only one share answers partial
// decryption for that party alone, while the full pipeline (encrypt,
// marshal, partials from a quorum, combine) still opens ciphertexts.
func TestDJMaterialSparseShares(t *testing.T) {
	const parties, threshold = 5, 2
	dense, err := RunDJKeyCeremony(96, 1, parties, threshold, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	sparse := *dense
	sparse.Shares = make([]damgardjurik.KeyShare, parties)
	for i := range sparse.Shares {
		sparse.Shares[i] = damgardjurik.KeyShare{Index: i + 1}
	}
	sparse.Shares[2] = dense.Shares[2] // party 3's share only
	cs, err := NewDamgardJurikSuiteFromMaterial(&sparse)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.(interface{ Close() }).Close()
	c, err := cs.Encrypt(big.NewInt(777))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.PartialDecrypt(3, c); err != nil {
		t.Fatalf("own share refused: %v", err)
	}
	if _, err := cs.PartialDecrypt(1, c); err == nil || !strings.Contains(err.Error(), "no key share") {
		t.Fatalf("foreign share answered locally: %v", err)
	}
	if _, err := cs.PartialDecrypt(parties+1, c); err == nil {
		t.Fatal("out-of-range party accepted")
	}

	full, err := NewDamgardJurikSuiteFromMaterial(dense)
	if err != nil {
		t.Fatal(err)
	}
	defer full.(interface{ Close() }).Close()
	codec := full.(suiteWireCodec)
	want := []int64{0, 1, 424242}
	ciphers := make([]Cipher, len(want))
	for i, v := range want {
		if ciphers[i], err = full.Encrypt(big.NewInt(v)); err != nil {
			t.Fatal(err)
		}
	}
	buf, err := codec.MarshalCipherVector(ciphers)
	if err != nil {
		t.Fatal(err)
	}
	back, err := codec.UnmarshalCipherVector(buf)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([][]Partial, threshold)
	for p := 1; p <= threshold; p++ {
		row := make([]Partial, len(back))
		for i, c := range back {
			if row[i], err = full.PartialDecrypt(p, c); err != nil {
				t.Fatal(err)
			}
		}
		pbuf, err := codec.MarshalPartialValues(row)
		if err != nil {
			t.Fatal(err)
		}
		if parts[p-1], err = codec.UnmarshalPartialValues(p, pbuf); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range want {
		got, err := full.Combine([]Partial{parts[0][i], parts[1][i]})
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != v {
			t.Fatalf("wire round trip decrypts %v, want %v", got, v)
		}
	}
}

// TestConfigFingerprintMatchesNode pins the pre-ceremony handshake
// digest: ConfigFingerprint over raw (data, params) must equal the
// Fingerprint of a Node built from the identical configuration.
func TestConfigFingerprintMatchesNode(t *testing.T) {
	data := blobs(8, 3, 2)
	p := Params{K: 2, Epsilon: 5, Iterations: 2, Seed: 3}
	want, err := ConfigFingerprint(data, p)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := NewNode(data, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if got := nd.Fingerprint(); got != want {
		t.Fatalf("ConfigFingerprint %#x != Node.Fingerprint %#x", want, got)
	}
	p2 := p
	p2.Seed = 4
	other, err := ConfigFingerprint(data, p2)
	if err != nil {
		t.Fatal(err)
	}
	if other == want {
		t.Fatal("fingerprint insensitive to seed")
	}
}
