package core

import (
	"math/big"
	"testing"
)

func suites(t *testing.T) map[string]CipherSuite {
	t.Helper()
	plain, err := NewPlainSuite(1024, 1, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	dj, err := NewDamgardJurikSuite(128, 1, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]CipherSuite{"plain": plain, "dj": dj}
}

// decryptVia opens a cipher with partials from the given parties.
func decryptVia(t *testing.T, s CipherSuite, c Cipher, parties []int) *big.Int {
	t.Helper()
	parts := make([]Partial, len(parties))
	for i, p := range parties {
		pd, err := s.PartialDecrypt(p, c)
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = pd
	}
	m, err := s.Combine(parts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSuitesEncryptDecryptRoundTrip(t *testing.T) {
	for name, s := range suites(t) {
		m := big.NewInt(987654)
		c, err := s.Encrypt(m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := decryptVia(t, s, c, []int{1, 3, 5})
		if got.Cmp(m) != 0 {
			t.Fatalf("%s: roundtrip = %v, want %v", name, got, m)
		}
	}
}

func TestSuitesHomomorphicAdd(t *testing.T) {
	for name, s := range suites(t) {
		a, _ := s.Encrypt(big.NewInt(1000))
		b, _ := s.Encrypt(big.NewInt(234))
		sum, err := s.Add(a, b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := decryptVia(t, s, sum, []int{2, 4, 5}); got.Int64() != 1234 {
			t.Fatalf("%s: sum = %v", name, got)
		}
	}
}

func TestSuitesHalveIsExactRingHalf(t *testing.T) {
	for name, s := range suites(t) {
		for _, v := range []int64{8, 7, 0, 1} {
			c, _ := s.Encrypt(big.NewInt(v))
			h, err := s.Halve(c)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			// 2·halve(v) must equal v in the ring.
			doubled, err := s.Add(h, h)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if got := decryptVia(t, s, doubled, []int{1, 2, 3}); got.Int64() != v {
				t.Fatalf("%s: 2·halve(%d) = %v", name, v, got)
			}
		}
	}
}

func TestSuitesThresholdEnforced(t *testing.T) {
	for name, s := range suites(t) {
		c, _ := s.Encrypt(big.NewInt(5))
		p1, _ := s.PartialDecrypt(1, c)
		p2, _ := s.PartialDecrypt(2, c)
		if _, err := s.Combine([]Partial{p1, p2}); err == nil {
			t.Fatalf("%s: 2 partials combined despite threshold 3", name)
		}
		// Duplicates don't count toward the threshold.
		if _, err := s.Combine([]Partial{p1, p1, p2}); err == nil {
			t.Fatalf("%s: duplicate partials accepted", name)
		}
	}
}

func TestSuitesPartyValidation(t *testing.T) {
	for name, s := range suites(t) {
		c, _ := s.Encrypt(big.NewInt(5))
		if _, err := s.PartialDecrypt(0, c); err == nil {
			t.Fatalf("%s: party 0 accepted", name)
		}
		if _, err := s.PartialDecrypt(6, c); err == nil {
			t.Fatalf("%s: party 6 accepted (only 5 shares)", name)
		}
	}
}

func TestSuitesForeignCipherRejected(t *testing.T) {
	all := suites(t)
	plain, dj := all["plain"], all["dj"]
	cp, _ := plain.Encrypt(big.NewInt(1))
	cd, _ := dj.Encrypt(big.NewInt(1))
	if _, err := plain.Add(cd, cd); err == nil {
		t.Fatal("plain suite accepted a DJ cipher")
	}
	if _, err := dj.Add(cp, cp); err == nil {
		t.Fatal("dj suite accepted a plain cipher")
	}
	if _, err := plain.Halve(cd); err == nil {
		t.Fatal("plain halve accepted a DJ cipher")
	}
	if _, err := dj.PartialDecrypt(1, cp); err == nil {
		t.Fatal("dj partial decrypt accepted a plain cipher")
	}
}

func TestSuitesOpCounting(t *testing.T) {
	for name, s := range suites(t) {
		before := s.Counts()
		c, _ := s.Encrypt(big.NewInt(9))
		_, _ = s.Add(c, c)
		_, _ = s.Halve(c)
		p, _ := s.PartialDecrypt(1, c)
		p2, _ := s.PartialDecrypt(2, c)
		p3, _ := s.PartialDecrypt(3, c)
		_, _ = s.Combine([]Partial{p, p2, p3})
		after := s.Counts()
		if after.Encrypts != before.Encrypts+1 ||
			after.Adds != before.Adds+1 ||
			after.Halvings != before.Halvings+1 ||
			after.PartialDecrypts != before.PartialDecrypts+3 ||
			after.Combines != before.Combines+1 {
			t.Fatalf("%s: counts before %+v after %+v", name, before, after)
		}
	}
}

func TestSuitesMetadata(t *testing.T) {
	for name, s := range suites(t) {
		if s.Parties() != 5 || s.Threshold() != 3 {
			t.Fatalf("%s: parties/threshold = %d/%d", name, s.Parties(), s.Threshold())
		}
		if s.CipherBytes() <= 0 {
			t.Fatalf("%s: cipher bytes = %d", name, s.CipherBytes())
		}
		if s.PlainModulus().Sign() <= 0 || s.PlainModulus().Bit(0) != 1 {
			t.Fatalf("%s: plain modulus must be positive and odd", name)
		}
		if s.Name() == "" {
			t.Fatalf("%s: empty name", name)
		}
	}
}

func TestPlainSuiteValidation(t *testing.T) {
	if _, err := NewPlainSuite(4, 1, 3, 2); err == nil {
		t.Fatal("tiny modulus accepted")
	}
	if _, err := NewPlainSuite(64, 1, 0, 1); err == nil {
		t.Fatal("0 parties accepted")
	}
	if _, err := NewPlainSuite(64, 1, 3, 4); err == nil {
		t.Fatal("threshold > parties accepted")
	}
}

func TestPlainSuiteDisagreeingPartialsRejected(t *testing.T) {
	s, err := NewPlainSuite(1024, 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Encrypt(big.NewInt(1))
	b, _ := s.Encrypt(big.NewInt(2))
	pa, _ := s.PartialDecrypt(1, a)
	pb, _ := s.PartialDecrypt(2, b)
	if _, err := s.Combine([]Partial{pa, pb}); err == nil {
		t.Fatal("partials of different ciphertexts combined")
	}
}

func TestCipherRingAdapter(t *testing.T) {
	s, err := NewPlainSuite(1024, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := newCipherRing(s)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Encrypt(big.NewInt(6))
	sum := ring.Add(a, ring.Zero())
	if got := decryptVia(t, s, sum, []int{1}); got.Int64() != 6 {
		t.Fatalf("ring add with zero = %v", got)
	}
	h := ring.Halve(a)
	if got := decryptVia(t, s, h, []int{2}); got.Int64() != 3 {
		t.Fatalf("ring halve(6) = %v", got)
	}
	if ring.Clone(a) == nil {
		t.Fatal("clone returned nil")
	}
}
