package core

import (
	"errors"
	"testing"
)

// assertDisclosuresIdentical compares everything a packed and an unpacked
// run disclose — per-iteration centroids, counts, inertia estimates,
// final centroids, convergence and failure accounting — with exact
// float comparison. Network bytes and operation counts are excluded on
// purpose: shrinking those is the whole point of packing.
func assertDisclosuresIdentical(t *testing.T, a, b *Trace, label string) {
	t.Helper()
	netA, netB := a.NetStats, b.NetStats
	opsA, opsB := a.Ops, b.Ops
	a.NetStats, b.NetStats = netB, netB
	a.Ops, b.Ops = opsB, opsB
	assertTracesBitIdentical(t, a, b, label)
	a.NetStats, b.NetStats = netA, netB
	a.Ops, b.Ops = opsA, opsB
}

// TestPackedPlainBitIdenticalToUnpacked is the packing correctness
// contract on the accounted backend: a packed slot evolves through the
// very same integer additions and exact halvings as its unpacked
// counterpart residue, and the bias bookkeeping is exact, so the decoded
// centroids must match bit for bit — on the sequential engine and, with
// the full determinism contract, on the sharded engine at any worker
// count.
func TestPackedPlainBitIdenticalToUnpacked(t *testing.T) {
	data := blobs(150, 4, 3)
	base := Params{K: 3, Epsilon: 5, Iterations: 3, Seed: 7}
	packed := base
	packed.Packed = true

	seq, err := Run(data, base)
	if err != nil {
		t.Fatal(err)
	}
	seqPacked, err := Run(data, packed)
	if err != nil {
		t.Fatal(err)
	}
	assertDisclosuresIdentical(t, seq, seqPacked, "cycles packed-vs-unpacked")
	if seqPacked.NetStats.BytesSent >= seq.NetStats.BytesSent {
		t.Fatalf("packing did not shrink wire bytes: %d vs %d",
			seqPacked.NetStats.BytesSent, seq.NetStats.BytesSent)
	}
	if seqPacked.Ops.Halvings >= seq.Ops.Halvings {
		t.Fatalf("packing did not shrink halvings: %d vs %d",
			seqPacked.Ops.Halvings, seq.Ops.Halvings)
	}

	for _, workers := range []int{1, 4} {
		p := packed
		p.Workers = workers
		sh, err := RunSharded(data, p)
		if err != nil {
			t.Fatal(err)
		}
		// Packed sharded vs packed cycles: full bit-identity including
		// network and op accounting (the engine determinism contract).
		assertTracesBitIdentical(t, seqPacked, sh, "sharded packed workers="+itoa(workers))
		if seqPacked.Ops != sh.Ops {
			t.Fatalf("workers=%d: op counts %+v vs %+v", workers, seqPacked.Ops, sh.Ops)
		}
		// Packed sharded vs unpacked cycles: disclosure bit-identity.
		assertDisclosuresIdentical(t, seq, sh, "sharded packed-vs-unpacked workers="+itoa(workers))
	}
}

// TestPackedPlainBitIdenticalWithInertia repeats the contract with the
// footnote-2 inertia aggregate, which appends an odd coordinate to the
// side vector (sideLen = vecLen+1) and exercises the partial last slot
// group.
func TestPackedPlainBitIdenticalWithInertia(t *testing.T) {
	data := blobs(100, 3, 2)
	base := Params{K: 2, Epsilon: 50, Iterations: 3, Seed: 13, TrackInertia: true}
	packed := base
	packed.Packed = true
	seq, err := Run(data, base)
	if err != nil {
		t.Fatal(err)
	}
	seqPacked, err := Run(data, packed)
	if err != nil {
		t.Fatal(err)
	}
	assertDisclosuresIdentical(t, seq, seqPacked, "inertia packed-vs-unpacked")
}

// TestPackedAsyncEngine runs the packed decode path under the
// asynchronous engine. Goroutine scheduling makes async runs
// non-deterministic run to run, so unlike the cycle engines there is no
// bit-level cross-run comparison to make; the contract here is that the
// packed slot decode survives the async engine's drifting halving counts
// (larger pre-scale budget, weight-dependent bias removal) without a
// single decode failure and still finds the cluster structure.
func TestPackedAsyncEngine(t *testing.T) {
	data := blobs(60, 3, 2)
	// Blob levels are 0.1 and 0.5; seed the centroids near them so the
	// quality expectation below is about the decode path, not about a
	// random init landing badly.
	init := [][]float64{{0.12, 0.12, 0.12}, {0.48, 0.48, 0.48}}
	tr, err := RunAsync(data, Params{
		K: 2, Epsilon: 1000, Iterations: 3, Seed: 11,
		GossipRounds: 12, Packed: true, InitialCentroids: init,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Iterations) == 0 {
		t.Fatal("no iterations completed")
	}
	if tr.DecryptFailures > 0 {
		t.Fatalf("%d decode failures under packed async run", tr.DecryptFailures)
	}
	if tr.Inertia > 2 {
		t.Fatalf("packed async run lost the cluster structure: inertia %v", tr.Inertia)
	}
}

// TestPackedDamgardJurikOpReduction is the acceptance gate of ISSUE 3:
// on the real Damgård–Jurik backend at a 512-bit key, packing must
// perform at least 5× fewer Encrypt, Halve and PartialDecrypt operations
// than the unpacked run — and still disclose the identical centroids
// (threshold decryption is exact, so the packed integers decode to the
// same aggregates).
func TestPackedDamgardJurikOpReduction(t *testing.T) {
	data := blobs(16, 4, 2)
	base := Params{
		K: 2, Epsilon: 100, Iterations: 1, Seed: 5,
		GossipRounds: 6, DecryptThreshold: 3,
		Backend: BackendDamgardJurik, ModulusBits: 512,
	}
	packed := base
	packed.Packed = true

	plain, err := Run(data, base)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := Run(data, packed)
	if err != nil {
		t.Fatal(err)
	}
	assertDisclosuresIdentical(t, plain, pk, "dj packed-vs-unpacked")

	ratio := func(a, b int64) float64 { return float64(a) / float64(b) }
	if r := ratio(plain.Ops.Encrypts, pk.Ops.Encrypts); r < 5 {
		t.Fatalf("encrypt reduction %.2fx < 5x (%d vs %d)", r, plain.Ops.Encrypts, pk.Ops.Encrypts)
	}
	if r := ratio(plain.Ops.Halvings, pk.Ops.Halvings); r < 5 {
		t.Fatalf("halving reduction %.2fx < 5x (%d vs %d)", r, plain.Ops.Halvings, pk.Ops.Halvings)
	}
	if r := ratio(plain.Ops.PartialDecrypts, pk.Ops.PartialDecrypts); r < 5 {
		t.Fatalf("partial-decrypt reduction %.2fx < 5x (%d vs %d)", r, plain.Ops.PartialDecrypts, pk.Ops.PartialDecrypts)
	}
	if pk.NetStats.BytesSent >= plain.NetStats.BytesSent {
		t.Fatalf("packed wire bytes %d not below unpacked %d", pk.NetStats.BytesSent, plain.NetStats.BytesSent)
	}
}

// TestPackedSlotsEstimate pins the exported packing-factor estimator the
// cost projections use: larger plaintext spaces fit more slots, and an
// infeasible space errors.
func TestPackedSlotsEstimate(t *testing.T) {
	p := Params{K: 5, Epsilon: 10, Iterations: 8, GossipRounds: 20}
	s1023, err := PackedSlots(1023, 1000, 24, p)
	if err != nil {
		t.Fatal(err)
	}
	s2047, err := PackedSlots(2047, 1000, 24, p)
	if err != nil {
		t.Fatal(err)
	}
	if s1023 < 2 {
		t.Fatalf("1024-bit plaintext packs only %d slots", s1023)
	}
	if s2047 <= s1023 {
		t.Fatalf("slots did not grow with the plaintext: %d vs %d", s2047, s1023)
	}
	if _, err := PackedSlots(16, 1000, 24, p); err == nil {
		t.Fatal("a 16-bit plaintext cannot fit a slot")
	}
}

// TestPackedTooSmallModulus pins the failure mode: a packed run over a
// plaintext space that cannot fit one slot must fail fast at setup with
// ErrPackingInfeasible, not decode garbage. The modulus sits in the
// window between the two budgets — wide enough for the unpacked
// headroom check (proven by the unpacked run succeeding) but a few bits
// short of one slot (sign bias + aggregation guard) — so the error must
// come from packedLayout itself.
func TestPackedTooSmallModulus(t *testing.T) {
	data := blobs(20, 3, 2)
	base := Params{
		K: 2, Epsilon: 10, Iterations: 2, Seed: 1,
		GossipRounds: 15, ModulusBits: 64, // 64-bit plain ring
	}
	if _, err := Run(data, base); err != nil {
		t.Fatalf("unpacked run must clear the headroom check: %v", err)
	}
	packed := base
	packed.Packed = true
	_, err := Run(data, packed)
	if !errors.Is(err, ErrPackingInfeasible) {
		t.Fatalf("packed run over a 64-bit ring must fail with ErrPackingInfeasible, got %v", err)
	}
}
