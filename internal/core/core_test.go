package core

import (
	"math"
	"strings"
	"testing"

	"chiaroscuro/internal/dp"
)

// blobs builds n series in [0,1]^dim around nblobs well-separated levels.
func blobs(n, dim, nblobs int) [][]float64 {
	data := make([][]float64, n)
	for i := range data {
		base := 0.1 + 0.8*float64(i%nblobs)/float64(nblobs)
		s := make([]float64, dim)
		for t := range s {
			// Small deterministic within-blob spread.
			s[t] = base + 0.02*float64((i*7+t*3)%5-2)/5
		}
		data[i] = s
	}
	return data
}

func TestRunRecoversClustersWithWeakNoise(t *testing.T) {
	data := blobs(300, 4, 3)
	// Blob levels are 0.1, 0.3667, 0.6333; seed the centroids near them
	// so the structural expectations below are deterministic.
	init := [][]float64{
		{0.12, 0.12, 0.12, 0.12},
		{0.4, 0.4, 0.4, 0.4},
		{0.65, 0.65, 0.65, 0.65},
	}
	tr, err := Run(data, Params{K: 3, Epsilon: 1000, Iterations: 4, Seed: 7, InitialCentroids: init})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Iterations) != 4 {
		t.Fatalf("iterations recorded = %d", len(tr.Iterations))
	}
	last := tr.Iterations[3]
	if last.NoiseRMSE > 0.01 {
		t.Fatalf("noise RMSE with ε=1000: %v", last.NoiseRMSE)
	}
	// All three blobs found: counts roughly 1/3 each.
	for j, c := range last.PerturbedCounts {
		if math.Abs(c-1.0/3.0) > 0.05 {
			t.Fatalf("cluster %d perturbed count = %v, want ~1/3", j, c)
		}
	}
	// Inertia should be near the oracle optimum (tight blobs).
	if tr.Inertia > 1.0 {
		t.Fatalf("inertia = %v", tr.Inertia)
	}
}

func TestRunDeterministicGivenSeed(t *testing.T) {
	data := blobs(80, 3, 2)
	p := Params{K: 2, Epsilon: 2, Iterations: 3, Seed: 11}
	a, err := Run(data, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(data, p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Inertia != b.Inertia {
		t.Fatalf("same seed, different inertia: %v vs %v", a.Inertia, b.Inertia)
	}
	for j := range a.FinalCentroids {
		for tt := range a.FinalCentroids[j] {
			if a.FinalCentroids[j][tt] != b.FinalCentroids[j][tt] {
				t.Fatal("same seed, different centroids")
			}
		}
	}
	if a.NetStats != b.NetStats {
		t.Fatalf("same seed, different network stats: %+v vs %+v", a.NetStats, b.NetStats)
	}
}

func TestRunDifferentSeedsDiffer(t *testing.T) {
	data := blobs(80, 3, 2)
	a, _ := Run(data, Params{K: 2, Epsilon: 2, Iterations: 3, Seed: 1})
	b, _ := Run(data, Params{K: 2, Epsilon: 2, Iterations: 3, Seed: 2})
	same := true
	for j := range a.FinalCentroids {
		for tt := range a.FinalCentroids[j] {
			if a.FinalCentroids[j][tt] != b.FinalCentroids[j][tt] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical centroids")
	}
}

func TestBackendsAgreeExactly(t *testing.T) {
	// The plain-accounted backend must reproduce the Damgård–Jurik run
	// bit-for-bit on the decoded floats: both execute identical ring
	// arithmetic, and the simulation RNG streams are the same.
	data := blobs(16, 3, 2)
	base := Params{
		K: 2, Epsilon: 100, Iterations: 2, Seed: 5,
		GossipRounds: 8, DecryptThreshold: 4,
	}
	pPlain := base
	pPlain.Backend = BackendPlainAccounted
	pPlain.ModulusBits = 256 // plaintext ring 2^256-1
	pDJ := base
	pDJ.Backend = BackendDamgardJurik
	pDJ.ModulusBits = 256 // plaintext ring n (~2^256)

	trP, err := Run(data, pPlain)
	if err != nil {
		t.Fatal(err)
	}
	trD, err := Run(data, pDJ)
	if err != nil {
		t.Fatal(err)
	}
	for j := range trP.FinalCentroids {
		for tt := range trP.FinalCentroids[j] {
			a, b := trP.FinalCentroids[j][tt], trD.FinalCentroids[j][tt]
			if math.Abs(a-b) > 1e-9 {
				t.Fatalf("backends disagree at centroid %d[%d]: %v vs %v", j, tt, a, b)
			}
		}
	}
	if trD.Ops.PartialDecrypts == 0 || trD.Ops.Encrypts == 0 {
		t.Fatalf("real backend did no crypto: %+v", trD.Ops)
	}
}

func TestEpsilonScheduleFollowsStrategy(t *testing.T) {
	data := blobs(60, 3, 2)
	tr, err := Run(data, Params{
		K: 2, Epsilon: 1, Iterations: 4, Seed: 3,
		Strategy: dp.GeometricIncreasing{Ratio: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// ε_i ∝ 2^i with total 1: 1/15, 2/15, 4/15, 8/15.
	want := []float64{1.0 / 15, 2.0 / 15, 4.0 / 15, 8.0 / 15}
	for i, it := range tr.Iterations {
		if math.Abs(it.Epsilon-want[i]) > 1e-12 {
			t.Fatalf("iteration %d ε = %v, want %v", i, it.Epsilon, want[i])
		}
	}
	if math.Abs(tr.Privacy.SpentEpsilon-1) > 1e-9 {
		t.Fatalf("spent = %v, want full budget", tr.Privacy.SpentEpsilon)
	}
}

func TestMoreEpsilonLessNoise(t *testing.T) {
	// Across a 100x budget change the average noise impact must drop.
	data := blobs(200, 4, 2)
	noisy, err := Run(data, Params{K: 2, Epsilon: 0.5, Iterations: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(data, Params{K: 2, Epsilon: 50, Iterations: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	avg := func(tr *Trace) float64 {
		var s float64
		for _, it := range tr.Iterations {
			s += it.NoiseRMSE
		}
		return s / float64(len(tr.Iterations))
	}
	if avg(clean) >= avg(noisy) {
		t.Fatalf("ε=50 noise (%v) not below ε=0.5 noise (%v)", avg(clean), avg(noisy))
	}
}

func TestSmoothingReducesNoise(t *testing.T) {
	// With longer series (noise iid per coordinate, signal constant) the
	// moving average must cut the measured noise RMSE. Moderate noise:
	// large enough to matter, small enough not to saturate the [0,1]
	// clamp (where no linear filter can help).
	data := blobs(150, 24, 2)
	base := Params{K: 2, Epsilon: 30, Iterations: 3, Seed: 13}
	raw, err := Run(data, base)
	if err != nil {
		t.Fatal(err)
	}
	smoothed := base
	smoothed.Smoothing = SmoothingSpec{Method: SmoothingMovingAverage, Window: 5}
	sm, err := Run(data, smoothed)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(tr *Trace) float64 {
		var s float64
		for _, it := range tr.Iterations {
			s += it.NoiseRMSE
		}
		return s / float64(len(tr.Iterations))
	}
	if avg(sm) >= avg(raw) {
		t.Fatalf("smoothing did not reduce noise: %v vs %v", avg(sm), avg(raw))
	}
}

func TestConvergenceEarlyStop(t *testing.T) {
	// Huge ε + tight blobs + loose threshold: should stop before the
	// iteration cap.
	data := blobs(200, 3, 2)
	tr, err := Run(data, Params{
		K: 2, Epsilon: 5000, Iterations: 10, Seed: 17,
		ConvergeThreshold: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.ConvergedAtIteration < 0 {
		t.Fatal("expected early convergence")
	}
	if len(tr.Iterations) >= 10 {
		t.Fatalf("ran %d iterations despite convergence", len(tr.Iterations))
	}
	// Early stop keeps unspent budget.
	if tr.Privacy.SpentEpsilon >= tr.Privacy.TotalEpsilon {
		t.Fatalf("early stop should leave budget: %+v", tr.Privacy)
	}
}

func TestChurnRunCompletes(t *testing.T) {
	data := blobs(150, 3, 2)
	tr, err := Run(data, Params{
		K: 2, Epsilon: 100, Iterations: 3, Seed: 19,
		ChurnCrashProb: 0.02, ChurnRejoinProb: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NetStats.Crashes == 0 {
		t.Fatal("expected some crashes")
	}
	if len(tr.Iterations) == 0 {
		t.Fatal("no iterations completed under churn")
	}
	// Quality degrades gracefully, not catastrophically.
	if tr.Iterations[len(tr.Iterations)-1].NoiseRMSE > 0.5 {
		t.Fatalf("noise RMSE under churn = %v", tr.Iterations[len(tr.Iterations)-1].NoiseRMSE)
	}
}

func TestHeavyChurnDegradesButReports(t *testing.T) {
	data := blobs(100, 3, 2)
	tr, err := Run(data, Params{
		K: 2, Epsilon: 100, Iterations: 2, Seed: 23,
		ChurnCrashProb: 0.10, ChurnRejoinProb: 0.2, DecryptThreshold: 20,
		DecryptWindow: 2,
	})
	if err != nil {
		// Acceptable: the network can be too hostile to finish.
		if !strings.Contains(err.Error(), "hostile") {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	// If it finished, sanity: stats reflect the chaos.
	if tr.NetStats.Crashes == 0 {
		t.Fatal("no crashes under 10% churn")
	}
}

func TestValidationErrors(t *testing.T) {
	good := blobs(20, 3, 2)
	cases := []struct {
		name string
		data [][]float64
		p    Params
	}{
		{"too few participants", blobs(1, 3, 1), Params{K: 1, Epsilon: 1}},
		{"k too large", good, Params{K: 21, Epsilon: 1}},
		{"k zero", good, Params{K: 0, Epsilon: 1}},
		{"epsilon zero", good, Params{K: 2, Epsilon: 0}},
		{"bad churn", good, Params{K: 2, Epsilon: 1, ChurnCrashProb: 1.5}},
		{"bad initial count", good, Params{K: 2, Epsilon: 1, InitialCentroids: [][]float64{{0, 0, 0}}}},
		{"bad initial dim", good, Params{K: 2, Epsilon: 1, InitialCentroids: [][]float64{{0}, {0}}}},
		{"threshold too large", good, Params{K: 2, Epsilon: 1, DecryptThreshold: 20}},
	}
	for _, tc := range cases {
		if _, err := Run(tc.data, tc.p); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestDataOutsideDomainRejected(t *testing.T) {
	data := blobs(20, 3, 2)
	data[5][1] = 1.5
	if _, err := Run(data, Params{K: 2, Epsilon: 1}); err == nil {
		t.Fatal("out-of-domain value should be rejected")
	}
	data[5][1] = -0.2
	if _, err := Run(data, Params{K: 2, Epsilon: 1}); err == nil {
		t.Fatal("negative value should be rejected")
	}
}

func TestRaggedDataRejected(t *testing.T) {
	data := [][]float64{{0.1, 0.2}, {0.3}}
	if _, err := Run(data, Params{K: 1, Epsilon: 1}); err == nil {
		t.Fatal("ragged data should be rejected")
	}
}

func TestHeadroomValidation(t *testing.T) {
	// A tiny plaintext ring cannot absorb the aggregate: must error out
	// with the actionable headroom message, not corrupt silently.
	data := blobs(100, 8, 2)
	_, err := Run(data, Params{
		K: 2, Epsilon: 0.01, Iterations: 8, Seed: 1,
		Backend: BackendDamgardJurik, ModulusBits: 64, DecryptThreshold: 3,
	})
	if err == nil || !strings.Contains(err.Error(), "plaintext space too small") {
		t.Fatalf("err = %v, want headroom error", err)
	}
}

func TestProvidedInitialCentroidsUsed(t *testing.T) {
	data := blobs(60, 3, 2)
	init := [][]float64{{0.2, 0.2, 0.2}, {0.8, 0.8, 0.8}}
	tr, err := Run(data, Params{
		K: 2, Epsilon: 2000, Iterations: 1, Seed: 29,
		InitialCentroids: init,
	})
	if err != nil {
		t.Fatal(err)
	}
	// After one nearly noise-free iteration from this init, the two
	// centroids must have separated onto the two blob levels.
	c0 := tr.FinalCentroids[0][0]
	c1 := tr.FinalCentroids[1][0]
	if !(c0 < 0.5 && c1 > 0.5) {
		t.Fatalf("centroids did not split around the blobs: %v, %v", c0, c1)
	}
}

func TestEmptyClusterKeepsCentroid(t *testing.T) {
	// One centroid starts far from all data and must keep its position
	// (perturbed count ~ 0 -> EmptyKeep policy), modulo smoothing off.
	data := make([][]float64, 50)
	for i := range data {
		data[i] = []float64{0.1, 0.1}
	}
	init := [][]float64{{0.1, 0.1}, {0.95, 0.95}}
	tr, err := Run(data, Params{
		K: 2, Epsilon: 5000, Iterations: 2, Seed: 31,
		InitialCentroids: init,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.FinalCentroids[1][0]-0.95) > 1e-9 {
		t.Fatalf("empty cluster centroid moved: %v", tr.FinalCentroids[1])
	}
}

func TestOpsCountedInPlainBackend(t *testing.T) {
	data := blobs(40, 3, 2)
	tr, err := Run(data, Params{K: 2, Epsilon: 10, Iterations: 2, Seed: 37, GossipRounds: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Every participant encrypts 2·k·(dim+1) values per iteration.
	wantEnc := int64(40 * 2 * 2 * 2 * (3 + 1))
	// The cipher ring's zero cache costs one extra encryption.
	if tr.Ops.Encrypts < wantEnc || tr.Ops.Encrypts > wantEnc+8 {
		t.Fatalf("encrypts = %d, want ~%d", tr.Ops.Encrypts, wantEnc)
	}
	if tr.Ops.Halvings == 0 || tr.Ops.Adds == 0 || tr.Ops.PartialDecrypts == 0 || tr.Ops.Combines == 0 {
		t.Fatalf("ops not counted: %+v", tr.Ops)
	}
}

func TestTraceOracleConsistency(t *testing.T) {
	data := blobs(120, 4, 3)
	tr, err := Run(data, Params{K: 3, Epsilon: 500, Iterations: 3, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range tr.Iterations {
		if it.Iteration != i {
			t.Fatalf("iteration numbering: %d at %d", it.Iteration, i)
		}
		total := 0
		for _, c := range it.ExactCounts {
			total += c
		}
		if total != 120 {
			t.Fatalf("iteration %d exact counts sum to %d", i, total)
		}
		if len(it.PerturbedCentroids) != 3 || len(it.ExactCentroids) != 3 {
			t.Fatalf("iteration %d centroid counts", i)
		}
		if it.NoiseRMSE < 0 {
			t.Fatalf("negative noise RMSE")
		}
	}
}

func TestGossipErrorRecorded(t *testing.T) {
	data := blobs(60, 3, 2)
	tr, err := Run(data, Params{K: 2, Epsilon: 100, Iterations: 2, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Privacy.MaxGossipRelErr <= 0 {
		t.Fatalf("gossip error not recorded: %+v", tr.Privacy)
	}
	if tr.Privacy.MaxGossipRelErr > 0.2 {
		t.Fatalf("gossip error suspiciously large: %v", tr.Privacy.MaxGossipRelErr)
	}
}
