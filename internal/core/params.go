package core

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"time"

	"chiaroscuro/internal/dp"
	"chiaroscuro/internal/fixedpoint"
	"chiaroscuro/internal/gossip"
	"chiaroscuro/internal/simnet"
)

// SmoothingMethod selects the perturbed-mean smoothing heuristic.
type SmoothingMethod int

const (
	// SmoothingNone disables smoothing.
	SmoothingNone SmoothingMethod = iota
	// SmoothingMovingAverage applies a centered moving average of width
	// Window along the time axis.
	SmoothingMovingAverage
	// SmoothingExponential applies exponential smoothing with factor
	// Alpha.
	SmoothingExponential
)

// SmoothingSpec configures the second quality-enhancing heuristic family
// ("smoothing the perturbed means", Sec. II.B). Laplace noise is
// independent across time steps while genuine centroids are smooth, so a
// low-pass filter removes noise faster than signal.
type SmoothingSpec struct {
	Method SmoothingMethod
	Window int     // moving-average width (default 3)
	Alpha  float64 // exponential factor in (0,1] (default 0.35)
}

// Backend selects the cipher suite implementation.
type Backend int

const (
	// BackendPlainAccounted runs plaintext ring arithmetic with cost
	// accounting — the demonstration's configuration.
	BackendPlainAccounted Backend = iota
	// BackendDamgardJurik runs real threshold homomorphic encryption.
	BackendDamgardJurik
)

// Params configures a Chiaroscuro run. Zero values take the documented
// defaults in Validate.
type Params struct {
	// K is the number of clusters.
	K int
	// Epsilon is the global differential-privacy budget.
	Epsilon float64
	// Iterations is the number of k-means iterations (the paper's
	// "given number of iterations" termination criterion; the budget is
	// split across exactly this many disclosures).
	Iterations int
	// ConvergeThreshold stops early when the max centroid displacement
	// falls below it (0 disables early stopping).
	ConvergeThreshold float64

	// GossipRounds is the number of gossip exchanges per participant per
	// aggregation phase.
	GossipRounds int
	// DecryptThreshold is the number of distinct partial decryptions
	// needed to open a ciphertext. Default: max(3, population/10).
	DecryptThreshold int
	// DecryptWindow is how many cycles a participant waits (re-asking
	// fresh peers every cycle) before an iteration fails. Default 8.
	DecryptWindow int

	// Backend selects real or accounted encryption.
	Backend Backend
	// ModulusBits is the key size (fixture sizes: 64..2048). Default 256
	// for the real backend, 1024 (accounting only) for the plain one.
	ModulusBits int
	// Degree is the Damgård–Jurik s. Default 1 (Paillier).
	Degree int

	// FracBits is the fixed-point fractional precision. Default 30.
	FracBits uint

	// Strategy distributes Epsilon across iterations. Default
	// dp.Uniform{}.
	Strategy dp.Strategy
	// Smoothing configures perturbed-mean smoothing.
	Smoothing SmoothingSpec

	// TrackInertia adds one aggregate to the per-iteration disclosure:
	// the (perturbed) mean squared distance of the participants' series
	// to their closest centroid — the clustering objective itself. This
	// implements the paper's footnote 2: "Chiaroscuro supports the
	// addition of other termination criteria ... (e.g., monitoring
	// centroids quality)". The extra aggregate raises the per-iteration
	// L1 sensitivity by dim·MaxValue², which the noise scale accounts
	// for automatically.
	TrackInertia bool
	// InertiaStopThreshold (requires TrackInertia) terminates the run
	// when the tracked inertia's relative improvement over the previous
	// iteration falls below the threshold (quality plateaued). 0
	// disables.
	InertiaStopThreshold float64

	// InitialCentroids, when non-nil, are used as the public iteration-1
	// centroids. When nil, K data-independent uniform random vectors in
	// [0,1]^dim are drawn from Seed.
	InitialCentroids [][]float64

	// Seed drives every random choice (simulation, noise, init).
	Seed int64

	// Workers is the shard-worker count of RunSharded (ignored by Run
	// and RunAsync). 0 defaults to GOMAXPROCS. Any value produces
	// bit-identical results; Workers only trades wall-clock for cores.
	// The effective count is capped at the population size and at
	// max(64, 4·GOMAXPROCS) (see internal/p2p).
	Workers int

	// Packed packs multiple coordinates of the encrypted Diptych side
	// into each ciphertext (slot packing): the fused gossip vector
	// shrinks from 2·K·(dim+1) ciphertexts to ⌈K·(dim+1)/slots⌉ groups
	// per side, and encrypts, halvings, partial decryptions, combines
	// and gossip bytes all shrink by the packing factor. The slot width
	// is derived from the same headroom budget checkHeadroom charges the
	// unpacked ring, so a configuration that fits unpacked fits packed;
	// on the accounted backend packed and unpacked runs disclose
	// bit-identical centroids. See docs/CRYPTO.md ("Slot packing").
	Packed bool

	// MaxValue bounds the (normalized) data domain; inputs must lie in
	// [0, MaxValue]. Default 1. The DP sensitivity derives from it.
	MaxValue float64

	// AsyncInterval is the period between a participant's activations in
	// RunAsync (the paper's "periodical point-to-point exchanges").
	// Default 200µs of simulated device cadence; ignored by Run.
	AsyncInterval time.Duration

	// Churn configures per-cycle crash/rejoin probabilities (see
	// internal/p2p).
	ChurnCrashProb  float64
	ChurnRejoinProb float64
	// ChurnResetOnRejoin makes failures permanent-loss: a rejoining node
	// restarts from scratch and late-syncs on the next gossip message
	// (the paper's "late participants" path). Default false = transient
	// outage, state kept.
	ChurnResetOnRejoin bool

	// Faults is the deterministic fault-injection plan (see
	// internal/simnet): per-link drop/duplicate/delay probabilities plus
	// scheduled participant faults — crash-stop, crash-recovery with
	// optional state loss, laggards, and byzantine senders (garbled,
	// malformed or replayed ciphertexts, skewed noise shares). All three
	// engines accept it; the cycle-driven engines replay the identical
	// fault trajectory for the same (Seed, Faults) pair at any worker
	// count, while RunAsync applies link and lifecycle faults against
	// its own per-participant activation clocks (byzantine behaviours
	// are engine-independent). A byzantine plan additionally enables
	// wire validation of incoming gossip messages. Nil injects nothing.
	Faults *simnet.Plan

	// DKG replaces the Damgård–Jurik backend's trusted dealer with the
	// in-process distributed key ceremony (internal/crypto/dkg): every
	// participant is a founder dealer, the Faults plan's dealer clauses
	// (badshare/equivocate/silentdealer) script byzantine dealers, and a
	// disqualification re-splits the genesis exponent among the
	// qualified founders and re-runs — so faulty ceremonies still
	// converge on a working key, deterministically in Seed. Requires
	// BackendDamgardJurik. Decryptions are exact, so DKG-backed runs
	// disclose trajectories bit-identical to dealer-backed ones.
	DKG bool

	// DJMaterial supplies pre-computed key-ceremony output instead of
	// running a ceremony (or a dealer) inside prepareRun — the networked
	// daemon path: internal/transport runs the wire ceremony before the
	// first epoch and hands each process material holding only its own
	// share. Requires BackendDamgardJurik; Parties/Threshold must match
	// the run's population and DecryptThreshold.
	DJMaterial *DJKeyMaterial

	// asyncEngine is set internally by RunAsync: the asynchronous engine
	// cannot bound a contribution's halving count by the round budget
	// (peers drift), so it gets a much larger pre-scaling allowance plus
	// decode-time overflow detection.
	asyncEngine bool

	// legacyDecryptAsk restores the pre-window decrypt request
	// discipline (threshold+1 fresh peers every waiting cycle, drawn
	// without replacement). Only the package's A/B stress tests set it —
	// it exists to keep the old discipline measurable next to the
	// outstanding-request window.
	legacyDecryptAsk bool
}

// withDefaults returns a copy with defaults applied for a population of n
// participants with series of the given dimension.
func (p Params) withDefaults(n int) Params {
	if p.Iterations == 0 {
		p.Iterations = 8
	}
	if p.GossipRounds == 0 {
		// Push-sum error decays exponentially; ~log2(n)+10 rounds give
		// sub-percent error at the demo's population scale.
		p.GossipRounds = int(math.Ceil(math.Log2(float64(n)))) + 10
	}
	if p.DecryptThreshold == 0 {
		// Enough parties that collusion below the threshold is unlikely,
		// capped so decryption traffic stays proportionate (the demo
		// exposes this as a mutable parameter for exactly this
		// trade-off).
		p.DecryptThreshold = n / 20
		if p.DecryptThreshold < 3 {
			p.DecryptThreshold = 3
		}
		if p.DecryptThreshold > 16 {
			p.DecryptThreshold = 16
		}
		if p.DecryptThreshold > n-1 {
			p.DecryptThreshold = n - 1
		}
		if p.DecryptThreshold < 1 {
			p.DecryptThreshold = 1
		}
	}
	if p.DecryptWindow == 0 {
		p.DecryptWindow = 8
	}
	if p.ModulusBits == 0 {
		if p.Backend == BackendDamgardJurik {
			p.ModulusBits = 256
		} else {
			p.ModulusBits = 1024
		}
	}
	if p.Degree == 0 {
		p.Degree = 1
	}
	if p.FracBits == 0 {
		p.FracBits = 30
	}
	if p.Strategy == nil {
		p.Strategy = dp.Uniform{}
	}
	if p.Smoothing.Method == SmoothingMovingAverage && p.Smoothing.Window == 0 {
		p.Smoothing.Window = 3
	}
	if p.Smoothing.Method == SmoothingExponential && p.Smoothing.Alpha == 0 {
		p.Smoothing.Alpha = 0.35
	}
	if p.MaxValue == 0 {
		p.MaxValue = 1
	}
	return p
}

// Defaulted returns the params with the population-dependent defaults
// applied — the configuration every process of a networked run must
// agree on. Exported for internal/transport, whose key ceremony needs
// the defaulted modulus size and decryption threshold before any Node
// exists.
func (p Params) Defaulted(n int) Params { return p.withDefaults(n) }

// validate checks a defaulted Params against the population size n and
// dimension dim.
func (p Params) validate(n, dim int) error {
	if n < 2 {
		return errors.New("core: need at least 2 participants")
	}
	if dim < 1 {
		return errors.New("core: need at least 1 time step")
	}
	if p.K < 1 || p.K > n {
		return fmt.Errorf("core: k=%d outside [1, %d]", p.K, n)
	}
	if p.Epsilon <= 0 {
		return fmt.Errorf("core: epsilon %v must be positive", p.Epsilon)
	}
	if p.Iterations < 1 {
		return fmt.Errorf("core: iterations %d < 1", p.Iterations)
	}
	if p.GossipRounds < 1 {
		return fmt.Errorf("core: gossip rounds %d < 1", p.GossipRounds)
	}
	if p.DecryptThreshold < 1 || p.DecryptThreshold >= n {
		return fmt.Errorf("core: decrypt threshold %d outside [1, %d)", p.DecryptThreshold, n)
	}
	if p.MaxValue <= 0 {
		return fmt.Errorf("core: max value %v must be positive", p.MaxValue)
	}
	if p.InitialCentroids != nil {
		if len(p.InitialCentroids) != p.K {
			return fmt.Errorf("core: %d initial centroids, want %d", len(p.InitialCentroids), p.K)
		}
		for i, c := range p.InitialCentroids {
			if len(c) != dim {
				return fmt.Errorf("core: initial centroid %d has dim %d, want %d", i, len(c), dim)
			}
		}
	}
	if p.ChurnCrashProb < 0 || p.ChurnCrashProb > 1 || p.ChurnRejoinProb < 0 || p.ChurnRejoinProb > 1 {
		return errors.New("core: churn probabilities outside [0,1]")
	}
	if err := p.Faults.Validate(n); err != nil {
		return fmt.Errorf("core: fault plan: %w", err)
	}
	if p.DKG && p.Backend != BackendDamgardJurik {
		return errors.New("core: DKG requires the Damgård–Jurik backend")
	}
	if p.Faults.HasDealerFaults() && !p.DKG && p.DJMaterial == nil {
		return errors.New("core: dealer faults require a DKG run (set Params.DKG)")
	}
	if p.DJMaterial != nil {
		if p.Backend != BackendDamgardJurik {
			return errors.New("core: DJMaterial requires the Damgård–Jurik backend")
		}
		if p.DJMaterial.Parties != n || p.DJMaterial.Threshold != p.DecryptThreshold {
			return fmt.Errorf("core: key material for %d parties / threshold %d, run wants %d / %d",
				p.DJMaterial.Parties, p.DJMaterial.Threshold, n, p.DecryptThreshold)
		}
	}
	if p.InertiaStopThreshold < 0 {
		return fmt.Errorf("core: inertia stop threshold %v negative", p.InertiaStopThreshold)
	}
	if p.InertiaStopThreshold > 0 && !p.TrackInertia {
		return errors.New("core: InertiaStopThreshold requires TrackInertia")
	}
	return nil
}

// preScaleBits is the power-of-two budget every contribution carries for
// gossip halvings: enough factors of two that the final decode is exact
// (see internal/gossip). The asynchronous engine cannot bound a
// contribution's halving count by the round budget (peers drift), so it
// gets a much larger allowance plus decode-time overflow detection.
func (p Params) preScaleBits() uint {
	if p.asyncEngine {
		return uint(4*p.GossipRounds + 16)
	}
	return uint(p.GossipRounds + 2)
}

// noiseEnvelope derives the per-coordinate magnitude bounds of a
// defaulted Params at dimension dim under the given epsilon schedule:
// coordBound bounds any disclosed-aggregate coordinate contribution and
// noiseBound is the clamp applied to noise shares (64 Laplace scales at
// the stingiest iteration: P(|share| > 64b) < 2e-28 per the Laplace tail
// bound, so clamping is statistically invisible while making the
// headroom finite).
func (p Params) noiseEnvelope(dim int, epsSched []float64) (coordBound, noiseBound float64) {
	minEps := epsSched[0]
	for _, e := range epsSched {
		if e < minEps {
			minEps = e
		}
	}
	sens := dp.SumSensitivity(dim, p.MaxValue)
	coordBound = p.MaxValue
	if p.TrackInertia {
		inertiaBound := float64(dim) * p.MaxValue * p.MaxValue
		sens += inertiaBound
		if inertiaBound > coordBound {
			coordBound = inertiaBound
		}
	}
	return coordBound, 64 * sens / minEps
}

// ErrPackingInfeasible reports that the plaintext space cannot fit even
// one slot at the configuration's headroom budget — the expected,
// recoverable failure mode of packing at small moduli, as opposed to a
// misconfiguration error. Callers projecting costs fall back to the
// unpacked protocol on it.
var ErrPackingInfeasible = errors.New("core: packing infeasible — increase ModulusBits or Degree, or reduce GossipRounds/FracBits")

// packedLayout derives the slot packing of the encrypted side for a
// plaintext space of plainBits usable bits: per-slot magnitude bits from
// the same value/noise/fixed-point/pre-scale budget checkHeadroom
// charges the unpacked ring, plus a sign-bias bit, plus aggregation
// headroom (population bits — all n contributions can land on one
// holder — the slot-wise means+noise addition of step 2c, and guard
// bits).
func packedLayout(plainBits, n int, bound float64, fracBits, preScale uint) (*fixedpoint.SlotLayout, error) {
	magBits := boundBits(bound) + fracBits + preScale
	headBits := boundBits(float64(n)) + 3
	l, err := fixedpoint.NewSlotLayout(plainBits, magBits, headBits)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPackingInfeasible, err)
	}
	return l, nil
}

// boundBits is the number of bits needed to hold magnitudes up to bound,
// with round-up slack (at least 1).
func boundBits(bound float64) uint {
	b := int(math.Ceil(math.Log2(bound))) + 1
	if b < 1 {
		b = 1
	}
	return uint(b)
}

// PackedSlots reports the slots-per-ciphertext a packed run
// (Params.Packed) would use over a plaintext space of plainBits usable
// bits, for a population of n participants with series of the given
// dimension — the packing factor, exported for the cost projections
// (internal/costmodel, experiment E5). prepareRun derives the actual
// layout from the identical rule.
func PackedSlots(plainBits, n, dim int, params Params) (int, error) {
	p := params.withDefaults(n)
	if err := p.validate(n, dim); err != nil {
		return 0, err
	}
	epsSched, err := p.Strategy.Allocate(p.Epsilon, p.Iterations)
	if err != nil {
		return 0, err
	}
	coordBound, noiseBound := p.noiseEnvelope(dim, epsSched)
	l, err := packedLayout(plainBits, n, coordBound+noiseBound, p.FracBits, p.preScaleBits())
	if err != nil {
		return 0, err
	}
	return l.Slots(), nil
}

// checkHeadroom verifies the plaintext space can absorb the worst-case
// aggregate: population · (bound + clamped noise share) · 2^frac · 2^T
// must stay below M/2. noiseBound is the clamp applied to noise shares.
func checkHeadroom(M *big.Int, n, dim int, maxValue, noiseBound float64, fracBits, preScaleBits uint) error {
	worst := float64(n) * (maxValue + noiseBound)
	worstBits := int(math.Ceil(math.Log2(worst))) + 1
	need := worstBits + int(fracBits) + int(preScaleBits) + 2
	if M.BitLen()-1 < need {
		return fmt.Errorf("core: plaintext space too small: need %d bits, modulus has %d — increase ModulusBits or Degree, or reduce GossipRounds/FracBits", need, M.BitLen()-1)
	}
	return nil
}

// cipherRing adapts a CipherSuite to the gossip.Ring interface so the
// push-sum state machine can run over ciphertexts.
type cipherRing struct {
	suite CipherSuite
	zero  Cipher
}

// newCipherRing builds the ring adapter. Suites that implement the
// mutCipherSuite extension (the accounted backend) get a ring that also
// satisfies gossip.MutRing, unlocking the in-place hot path; the
// returned static type stays gossip.Ring so the capability is carried
// by the dynamic type alone — gossip.State only enables mutation when
// the caller opts in via SetMutable.
func newCipherRing(s CipherSuite) (gossip.Ring[Cipher], error) {
	z, err := s.Encrypt(big.NewInt(0))
	if err != nil {
		return nil, err
	}
	base := &cipherRing{suite: s, zero: z}
	if ms, ok := s.(mutCipherSuite); ok {
		return &mutCipherRing{cipherRing: base, ms: ms}, nil
	}
	return base, nil
}

// Zero implements gossip.Ring. Note: reusing one encryption of zero is
// sound here because Zero is only used as an additive identity inside a
// node's own state, never transmitted alone.
func (r *cipherRing) Zero() Cipher { return r.zero }

// Add implements gossip.Ring.
func (r *cipherRing) Add(a, b Cipher) Cipher {
	out, err := r.suite.Add(a, b)
	if err != nil {
		panic(fmt.Sprintf("core: cipher add: %v", err)) // programmer error: mixed suites
	}
	return out
}

// Halve implements gossip.Ring.
func (r *cipherRing) Halve(a Cipher) Cipher {
	out, err := r.suite.Halve(a)
	if err != nil {
		panic(fmt.Sprintf("core: cipher halve: %v", err))
	}
	return out
}

// Clone implements gossip.Ring. Ciphers are immutable values in both
// backends, so sharing is safe.
func (r *cipherRing) Clone(a Cipher) Cipher { return a }

// batchAdder is the optional CipherSuite extension behind the gossip
// batch path: suites that can fold several addends into one accumulator
// without intermediate allocations implement it (the accounted plain
// suite does; the Damgård–Jurik suite falls back to chained Adds).
type batchAdder interface {
	AddAll(acc Cipher, vs []Cipher) (Cipher, error)
}

// AddAll implements gossip.BatchRing.
func (r *cipherRing) AddAll(acc Cipher, vs []Cipher) Cipher {
	if ba, ok := r.suite.(batchAdder); ok {
		out, err := ba.AddAll(acc, vs)
		if err != nil {
			panic(fmt.Sprintf("core: cipher batch add: %v", err))
		}
		return out
	}
	out := acc
	for _, v := range vs {
		out = r.Add(out, v)
	}
	return out
}

var _ gossip.BatchRing[Cipher] = (*cipherRing)(nil)

// mutCipherSuite is the optional CipherSuite extension behind the
// zero-allocation gossip hot path: in-place variants of the ring
// operations over caller-owned scratch ciphers, value-identical and
// identically accounted to their immutable counterparts. Only the
// accounted plain suite implements it (real ciphertexts mint fresh
// group elements on every operation).
type mutCipherSuite interface {
	// NewScratchVector returns n mutable zero ciphers backed by one
	// contiguous residue arena (see internal/vecpool).
	NewScratchVector(n int) ([]Cipher, error)
	// EncryptInto is Encrypt writing into dst's storage.
	EncryptInto(dst Cipher, m *big.Int) error
	// HalveCipherInPlace is Halve mutating c.
	HalveCipherInPlace(c Cipher) error
	// AddCipherInPlace sets acc += v, mutating only acc.
	AddCipherInPlace(acc, v Cipher) error
	// AddAllCipherInPlace left-folds vs into acc, mutating only acc.
	AddAllCipherInPlace(acc Cipher, vs []Cipher) error
	// SetCipher copies src's value into dst's storage.
	SetCipher(dst, src Cipher) error
}

// mutCipherRing extends cipherRing with gossip.MutRing, delegating to
// the suite's in-place extension. Errors are programmer errors (mixed
// suites), handled like the immutable adapter's: panic.
type mutCipherRing struct {
	*cipherRing
	ms mutCipherSuite
}

// HalveInPlace implements gossip.MutRing.
func (r *mutCipherRing) HalveInPlace(a Cipher) {
	if err := r.ms.HalveCipherInPlace(a); err != nil {
		panic(fmt.Sprintf("core: cipher halve in place: %v", err))
	}
}

// AddInPlace implements gossip.MutRing.
func (r *mutCipherRing) AddInPlace(acc, v Cipher) {
	if err := r.ms.AddCipherInPlace(acc, v); err != nil {
		panic(fmt.Sprintf("core: cipher add in place: %v", err))
	}
}

// AddAllInPlace implements gossip.MutRing.
func (r *mutCipherRing) AddAllInPlace(acc Cipher, vs []Cipher) {
	if err := r.ms.AddAllCipherInPlace(acc, vs); err != nil {
		panic(fmt.Sprintf("core: cipher batch add in place: %v", err))
	}
}

// SetInPlace implements gossip.MutRing.
func (r *mutCipherRing) SetInPlace(dst, src Cipher) {
	if err := r.ms.SetCipher(dst, src); err != nil {
		panic(fmt.Sprintf("core: cipher set in place: %v", err))
	}
}

var _ gossip.MutRing[Cipher] = (*mutCipherRing)(nil)
