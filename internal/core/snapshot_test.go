package core

import (
	"bytes"
	"testing"

	"chiaroscuro/internal/p2p"
)

// snapshot_test.go drives networked Nodes through an in-memory mesh —
// the transport's epoch clock without the TCP — and checks that a node
// snapshotted mid-run and restored into a fresh process image continues
// the run bit-identically. The mini-mesh routes every payload through
// EncodePayload/DecodePayload, so a snapshot round-trip is exercised
// against exactly the state a real daemon would have.

// memMesh steps a full population of Nodes under the simulator's
// message-visibility contract: payloads sent at epoch e are delivered
// at e+1, inboxes ordered by ascending sender id with per-sender FIFO.
type memMesh struct {
	nodes    []*Node
	samplers []*p2p.Sampler
	// pending[to][from] is the FIFO of encoded payloads sent this epoch.
	pending []map[int][][]byte
}

func newMemMesh(t *testing.T, data [][]float64, params Params) *memMesh {
	t.Helper()
	m := &memMesh{
		nodes:    make([]*Node, len(data)),
		samplers: make([]*p2p.Sampler, len(data)),
		pending:  make([]map[int][][]byte, len(data)),
	}
	for id := range data {
		nd, err := NewNode(data, params, id)
		if err != nil {
			t.Fatalf("NewNode(%d): %v", id, err)
		}
		m.nodes[id] = nd
		m.samplers[id] = p2p.NewSampler(nd.SamplingSeed(), p2p.NodeID(id), len(data))
		m.pending[id] = map[int][][]byte{}
	}
	return m
}

func (m *memMesh) close() {
	for _, nd := range m.nodes {
		if nd != nil {
			nd.Close()
		}
	}
}

type memEnv struct {
	m     *memMesh
	id    int
	epoch int
	inbox []p2p.Message
	next  []map[int][][]byte
	t     *testing.T
}

func (e *memEnv) ID() p2p.NodeID       { return p2p.NodeID(e.id) }
func (e *memEnv) Cycle() int           { return e.epoch }
func (e *memEnv) PopulationSize() int  { return len(e.m.nodes) }
func (e *memEnv) AliveCount() int      { return len(e.m.nodes) }
func (e *memEnv) Inbox() []p2p.Message { return e.inbox }
func (e *memEnv) RandomPeer() (p2p.NodeID, bool) {
	return e.m.samplers[e.id].RandomPeer()
}
func (e *memEnv) RandomPeers(k int) []p2p.NodeID {
	return e.m.samplers[e.id].RandomPeers(k)
}
func (e *memEnv) Send(to p2p.NodeID, payload any, bytes int) error {
	raw, err := e.m.nodes[e.id].EncodePayload(payload)
	if err != nil {
		e.t.Fatalf("node %d encode at epoch %d: %v", e.id, e.epoch, err)
	}
	e.next[int(to)][e.id] = append(e.next[int(to)][e.id], raw)
	return nil
}

// stepEpoch advances the whole mesh one epoch, returning whether every
// node is done.
func (m *memMesh) stepEpoch(t *testing.T, epoch int) bool {
	t.Helper()
	next := make([]map[int][][]byte, len(m.nodes))
	for id := range next {
		next[id] = map[int][][]byte{}
	}
	allDone := true
	for id, nd := range m.nodes {
		var inbox []p2p.Message
		for from := 0; from < len(m.nodes); from++ {
			for _, raw := range m.pending[id][from] {
				payload, err := nd.DecodePayload(raw)
				if err != nil {
					t.Fatalf("node %d decode from %d at epoch %d: %v", id, from, epoch, err)
				}
				inbox = append(inbox, p2p.Message{From: p2p.NodeID(from), Payload: payload, Bytes: len(raw)})
			}
		}
		env := &memEnv{m: m, id: id, epoch: epoch, inbox: inbox, next: next, t: t}
		nd.Step(env)
		if !nd.Done() {
			allDone = false
		}
	}
	m.pending = next
	return allDone
}

// run steps until the whole population terminates.
func (m *memMesh) run(t *testing.T, from int) {
	t.Helper()
	limit := m.nodes[0].MaxCycles()
	for epoch := from; epoch < limit; epoch++ {
		if m.stepEpoch(t, epoch) {
			return
		}
	}
	t.Fatalf("mesh did not terminate within %d epochs", limit)
}

func requireEqualHistories(t *testing.T, got, want [][]IterationResult, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d histories, want %d", label, len(got), len(want))
	}
	for id := range want {
		if len(got[id]) != len(want[id]) {
			t.Fatalf("%s: node %d disclosed %d iterations, want %d", label, id, len(got[id]), len(want[id]))
		}
		for i := range want[id] {
			g, w := got[id][i], want[id][i]
			if g.Iteration != w.Iteration || g.Assignment != w.Assignment ||
				g.DecryptFailed != w.DecryptFailed || g.CompletedAtCycle != w.CompletedAtCycle ||
				g.Epsilon != w.Epsilon || g.Displacement != w.Displacement {
				t.Fatalf("%s: node %d iteration %d diverges: %+v vs %+v", label, id, i, g, w)
			}
			for j := range w.PerturbedCentroids {
				for d := range w.PerturbedCentroids[j] {
					if g.PerturbedCentroids[j][d] != w.PerturbedCentroids[j][d] {
						t.Fatalf("%s: node %d iteration %d centroid [%d][%d] diverges", label, id, i, j, d)
					}
				}
			}
		}
	}
}

func (m *memMesh) histories() [][]IterationResult {
	out := make([][]IterationResult, len(m.nodes))
	for id, nd := range m.nodes {
		out[id] = nd.History()
	}
	return out
}

func snapshotTestConfig() ([][]float64, Params) {
	data := blobs(4, 6, 2)
	params := Params{K: 2, Epsilon: 1.0, Iterations: 2, Seed: 99, Backend: BackendPlainAccounted}
	return data, params
}

// TestMemMeshMatchesSequential sanity-checks the mini-mesh itself: its
// epoch clock must reproduce the sequential engine's trajectories, or
// the snapshot tests below would be comparing against a broken oracle.
func TestMemMeshMatchesSequential(t *testing.T) {
	data, params := snapshotTestConfig()
	_, want, err := RunSequentialHistories(data, params)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	m := newMemMesh(t, data, params)
	defer m.close()
	m.run(t, 0)
	requireEqualHistories(t, m.histories(), want, "mem mesh")
}

// TestSnapshotRestoreMidRun is the core crash-recovery property: at
// every epoch of the run, snapshotting EVERY node, restoring each into
// a brand-new Node (fresh suite, fresh participant) and continuing must
// disclose trajectories bit-identical to the uninterrupted reference.
// Cycling the interruption point across all epochs covers every phase
// of the protocol state machine (assign, gossip, decrypt, done).
func TestSnapshotRestoreMidRun(t *testing.T) {
	data, params := snapshotTestConfig()
	_, want, err := RunSequentialHistories(data, params)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	// Measure the uninterrupted run length first.
	probe := newMemMesh(t, data, params)
	epochs := 0
	for !probe.stepEpoch(t, epochs) {
		epochs++
	}
	probe.close()
	if epochs < 3 {
		t.Fatalf("run too short (%d epochs) to exercise mid-run snapshots", epochs)
	}

	for cut := 1; cut <= epochs; cut++ {
		m := newMemMesh(t, data, params)
		for e := 0; e < cut; e++ {
			m.stepEpoch(t, e)
		}
		// Crash the whole population: serialize, discard, restore.
		for id, nd := range m.nodes {
			snap, err := nd.Snapshot()
			if err != nil {
				t.Fatalf("cut %d: snapshot node %d: %v", cut, id, err)
			}
			nd.Close()
			restored, err := RestoreNode(data, params, id, snap)
			if err != nil {
				t.Fatalf("cut %d: restore node %d: %v", cut, id, err)
			}
			m.nodes[id] = restored
			// The peer sampler is checkpointed alongside in the real
			// daemon; mirror that here.
			st := m.samplers[id].State()
			m.samplers[id] = p2p.NewSampler(restored.SamplingSeed(), p2p.NodeID(id), len(data))
			m.samplers[id].SetState(st)
		}
		m.run(t, cut)
		requireEqualHistories(t, m.histories(), want, "restored mesh")
		m.close()
	}
}

// TestSnapshotRejectsMismatch pins the guard rails: a snapshot must not
// restore into the wrong node id or a different run configuration.
func TestSnapshotRejectsMismatch(t *testing.T) {
	data, params := snapshotTestConfig()
	nd, err := NewNode(data, params, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	snap, err := nd.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreNode(data, params, 2, snap); err == nil {
		t.Fatal("restore accepted a snapshot belonging to another node")
	}
	other := params
	other.Seed++
	if _, err := RestoreNode(data, other, 1, snap); err == nil {
		t.Fatal("restore accepted a snapshot from a different run configuration")
	}
	for _, cut := range []int{0, 1, 4, 8, len(snap) - 1} {
		if cut >= len(snap) {
			continue
		}
		if _, err := RestoreNode(data, params, 1, snap[:cut]); err == nil {
			t.Fatalf("restore accepted a snapshot truncated to %d bytes", cut)
		}
	}
	mut := bytes.Clone(snap)
	mut[len(mut)-1] ^= 0xFF
	if _, err := RestoreNode(data, params, 1, mut); err == nil {
		t.Fatal("restore accepted a corrupted snapshot")
	}
}

// FuzzRestoreNode hardens the snapshot decoder the way the wire
// decoders are hardened: arbitrary bytes must produce an error, never a
// panic or a silently half-restored node.
func FuzzRestoreNode(f *testing.F) {
	data, params := snapshotTestConfig()
	nd, err := NewNode(data, params, 0)
	if err != nil {
		f.Fatal(err)
	}
	snap, err := nd.Snapshot()
	nd.Close()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap)
	f.Add(snap[:len(snap)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		if nd, err := RestoreNode(data, params, 0, b); err == nil {
			nd.Close()
		}
	})
}
