package core

import (
	"math"
	"testing"

	"chiaroscuro/internal/simnet"
)

// faults_test.go is the adversarial scenario suite of the simnet layer:
// every scenario is a replayable spec string (internal/simnet grammar),
// run through the invariant checker below. The acceptance bar is the
// ISSUE-4 contract: identical seed + fault plan ⇒ bit-identical
// disclosures at any worker count, and byzantine inputs are rejected or
// survived — never a panic.

func mustPlan(t *testing.T, spec string) *simnet.Plan {
	t.Helper()
	p, err := simnet.ParsePlan(spec)
	if err != nil {
		t.Fatalf("plan %q: %v", spec, err)
	}
	return p
}

// checkTraceInvariants verifies the properties every fault scenario must
// preserve, whatever the plan throws at the protocol:
//
//   - liveness: somebody completed at least one full iteration (the
//     trace exists at all), and Completed stays within the population;
//   - privacy-budget conservation: the accountant never spends beyond
//     the global ε, and disclosures match the recorded iterations —
//     faults may waste budget (failed iterations still disclose) but
//     can never mint extra;
//   - disclosure sanity: every disclosed centroid coordinate is finite
//     and inside the clamped [0, MaxValue] domain, with exactly the
//     configured shape (a byzantine sender must not be able to smuggle
//     NaN or out-of-domain values into anyone's disclosure).
func checkTraceInvariants(t *testing.T, tr *Trace, p Params, n int, label string) {
	t.Helper()
	if len(tr.Iterations) == 0 {
		t.Fatalf("%s: no iterations completed", label)
	}
	if tr.Completed < 0 || tr.Completed > n {
		t.Fatalf("%s: Completed=%d outside [0,%d]", label, tr.Completed, n)
	}
	if tr.Privacy.SpentEpsilon > p.Epsilon*(1+1e-9) {
		t.Fatalf("%s: budget overspent: %v > %v", label, tr.Privacy.SpentEpsilon, p.Epsilon)
	}
	if tr.Privacy.Disclosures != len(tr.Iterations) {
		t.Fatalf("%s: %d disclosures vs %d iterations", label, tr.Privacy.Disclosures, len(tr.Iterations))
	}
	maxV := p.MaxValue
	if maxV == 0 {
		maxV = 1
	}
	for i, it := range tr.Iterations {
		if len(it.PerturbedCentroids) != p.K || len(it.PerturbedCounts) != p.K {
			t.Fatalf("%s: iteration %d has %d centroids / %d counts, want %d",
				label, i, len(it.PerturbedCentroids), len(it.PerturbedCounts), p.K)
		}
		for j, c := range it.PerturbedCentroids {
			for tt, v := range c {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < -1e-9 || v > maxV+1e-9 {
					t.Fatalf("%s: iteration %d centroid %d[%d] = %v outside [0,%v]",
						label, i, j, tt, v, maxV)
				}
			}
		}
	}
	for j, c := range tr.FinalCentroids {
		for tt, v := range c {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: final centroid %d[%d] = %v", label, j, tt, v)
			}
		}
	}
	if tr.NetStats.FaultDrops > tr.NetStats.MessagesDropped {
		t.Fatalf("%s: fault drops %d exceed total drops %d",
			label, tr.NetStats.FaultDrops, tr.NetStats.MessagesDropped)
	}
}

// TestFaultPlanPassThroughBitIdentical: a plan whose faults never
// trigger (far-future windows) activates the scheduler machinery but
// must not perturb the trajectory at all.
func TestFaultPlanPassThroughBitIdentical(t *testing.T) {
	data := blobs(80, 4, 3)
	base := Params{K: 3, Epsilon: 5, Iterations: 3, Seed: 7}
	ref, err := Run(data, base)
	if err != nil {
		t.Fatal(err)
	}
	p := base
	p.Faults = mustPlan(t, "lag@1000000+5=0;outage@1000000+5=1")
	got, err := Run(data, p)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesBitIdentical(t, ref, got, "far-future faults")
	if got.NetStats.FaultDrops != 0 || got.NetStats.Delayed != 0 || got.NetStats.Duplicates != 0 {
		t.Fatalf("pass-through plan injected faults: %+v", got.NetStats)
	}
}

// TestFaultScenarioSuite runs the adversarial scenario battery on the
// accounted backend: every scenario must keep the invariants, and the
// scenario-specific expectations (rejections counted, liveness floors)
// must hold. Each spec string is itself the replay recipe.
func TestFaultScenarioSuite(t *testing.T) {
	const n = 60
	data := blobs(n, 4, 3)
	scenarios := []struct {
		name string
		spec string
		// minLive is the minimum fraction of participants that must
		// complete their full schedule under the scenario.
		minLive float64
		// wantRejects demands staleDrops > 0 (byzantine input rejected
		// by the wire hardening rather than absorbed).
		wantRejects bool
	}{
		{name: "message-loss-10pct", spec: "drop=0.1", minLive: 0.9},
		{name: "chaos-link", spec: "drop=0.15;dup=0.1;delay=0.3x4", minLive: 0.8},
		{name: "crash-stop-early", spec: "crash@2=0,1,2,3,4,5", minLive: 0.8},
		{name: "outage-transient", spec: "outage@4+6=6,7,8,9", minLive: 0.9},
		{name: "outage-state-loss", spec: "outage@4+6=6,7,8,9:reset", minLive: 0.8},
		{name: "laggards", spec: "lag@2+10=10,11,12,13,14", minLive: 0.9},
		{name: "byz-garble", spec: "garble=20,21", minLive: 0.8},
		{name: "byz-malform", spec: "malform=22,23", minLive: 0.8, wantRejects: true},
		{name: "byz-replay", spec: "replay=24", minLive: 0.8},
		{name: "byz-noise-freeride", spec: "noise*0=25,26", minLive: 0.9},
		{name: "byz-noise-poison", spec: "noise*40=27", minLive: 0.8},
		{name: "kitchen-sink",
			spec:    "drop=0.05;dup=0.05;delay=0.2x3;crash@6=0,1;outage@3+5=2,3:reset;lag@2+6=4,5;garble=40;malform=41;replay=42;noise*20=43",
			minLive: 0.6, wantRejects: true},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			p := Params{K: 3, Epsilon: 50, Iterations: 3, Seed: 11, Faults: mustPlan(t, sc.spec)}
			tr, err := Run(data, p)
			if err != nil {
				t.Fatalf("scenario %q: %v", sc.spec, err)
			}
			checkTraceInvariants(t, tr, p, n, sc.name)
			if live := float64(tr.Completed) / float64(n); live < sc.minLive {
				t.Fatalf("scenario %q: liveness %.2f below %.2f (completed %d/%d)",
					sc.spec, live, sc.minLive, tr.Completed, n)
			}
			if sc.wantRejects && tr.StaleDrops == 0 {
				t.Fatalf("scenario %q: expected byzantine rejections, staleDrops=0", sc.spec)
			}
		})
	}
}

// TestFaultScenariosBitIdenticalAcrossWorkers is the determinism half
// of the acceptance contract: identical seed + fault plan must yield
// bit-identical disclosed centroids across the sequential and sharded
// engines at any worker count — making every scenario above a
// replayable regression test. Repeating the sequential run also proves
// same-process replay.
func TestFaultScenariosBitIdenticalAcrossWorkers(t *testing.T) {
	data := blobs(60, 4, 3)
	spec := "drop=0.1;dup=0.05;delay=0.25x3;crash@6=0;outage@3+5=1,2:reset;lag@2+6=3,4;garble=40;malform=41;replay=42;noise*20=43"
	base := Params{K: 3, Epsilon: 50, Iterations: 3, Seed: 23, Faults: mustPlan(t, spec)}

	ref, err := Run(data, base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.NetStats.FaultDrops == 0 || ref.NetStats.Delayed == 0 || ref.NetStats.Duplicates == 0 {
		t.Fatalf("scenario injected nothing: %+v", ref.NetStats)
	}
	again, err := Run(data, base)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesBitIdentical(t, ref, again, "replay")

	for _, workers := range []int{1, 3, 16} {
		p := base
		p.Workers = workers
		sh, err := RunSharded(data, p)
		if err != nil {
			t.Fatal(err)
		}
		assertTracesBitIdentical(t, ref, sh, "faulted workers="+itoa(workers))
		if ref.Ops != sh.Ops {
			t.Fatalf("workers=%d: op counts %+v vs %+v", workers, ref.Ops, sh.Ops)
		}
	}
}

// TestFaultsComposeWithChurnDeterministically: probabilistic churn and
// a scheduled fault plan may coexist; the combination must still be
// bit-identical across worker counts, and churn must never revive a
// node mid-scheduled-outage.
func TestFaultsComposeWithChurnDeterministically(t *testing.T) {
	data := blobs(60, 3, 2)
	base := Params{
		K: 2, Epsilon: 100, Iterations: 3, Seed: 19,
		ChurnCrashProb: 0.02, ChurnRejoinProb: 0.4,
		Faults: mustPlan(t, "drop=0.05;outage@2+8=5,6;lag@3+4=7"),
	}
	ref, err := Run(data, base)
	if err != nil {
		t.Fatal(err)
	}
	p := base
	p.Workers = 5
	sh, err := RunSharded(data, p)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesBitIdentical(t, ref, sh, "churn+faults workers=5")
}

// TestByzantineRealCrypto runs garbled, malformed and replayed
// ciphertexts against genuine Damgård–Jurik arithmetic: out-of-range
// group elements and foreign types must be rejected by the wire
// validation before any homomorphic operation can panic on them.
func TestByzantineRealCrypto(t *testing.T) {
	data := blobs(16, 3, 2)
	p := Params{
		K: 2, Epsilon: 100, Iterations: 2, Seed: 5,
		GossipRounds: 8, DecryptThreshold: 4,
		Backend: BackendDamgardJurik, ModulusBits: 128,
		Faults: mustPlan(t, "garble=3;malform=4;replay=5"),
	}
	tr, err := Run(data, p)
	if err != nil {
		t.Fatal(err)
	}
	checkTraceInvariants(t, tr, p, len(data), "dj-byzantine")
	if tr.StaleDrops == 0 {
		t.Fatal("malformed DJ ciphertexts were never rejected")
	}
	// Determinism of disclosures holds on the real backend too
	// (ciphertexts differ run to run, decoded plaintexts must not).
	sh := p
	sh.Workers = 4
	tr2, err := RunSharded(data, sh)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesBitIdentical(t, tr, tr2, "dj-byzantine workers=4")
}

// TestByzantinePackedSurvives: byzantine senders against the packed
// encrypted side (slot groups) — the wrong-length and garbage paths
// must behave identically to the unpacked layout.
func TestByzantinePackedSurvives(t *testing.T) {
	data := blobs(40, 4, 2)
	p := Params{
		K: 2, Epsilon: 50, Iterations: 2, Seed: 13, Packed: true,
		Faults: mustPlan(t, "garble=1;malform=2;replay=3"),
	}
	tr, err := Run(data, p)
	if err != nil {
		t.Fatal(err)
	}
	checkTraceInvariants(t, tr, p, len(data), "packed-byzantine")
	if tr.StaleDrops == 0 {
		t.Fatal("malformed packed ciphertexts were never rejected")
	}
}

// TestAsyncEngineAcceptsFaultPlan: the asynchronous engine applies link
// faults, laggards/outages (against per-participant activation clocks)
// and byzantine behaviours without panicking or deadlocking.
func TestAsyncEngineAcceptsFaultPlan(t *testing.T) {
	data := blobs(24, 3, 2)
	p := Params{
		K: 2, Epsilon: 100, Iterations: 2, Seed: 3,
		GossipRounds: 8,
		Faults:       mustPlan(t, "drop=0.1;dup=0.05;lag@4+6=1;outage@6+10=2:reset;garble=5;malform=6"),
	}
	tr, err := RunAsync(data, p)
	if err != nil {
		t.Fatal(err)
	}
	checkTraceInvariants(t, tr, p, len(data), "async-faults")
	if tr.NetStats.FaultDrops == 0 {
		t.Fatal("async link faults never fired")
	}
}

// TestFaultPlanValidationSurfaces: an out-of-population fault plan must
// be rejected at validation, not at runtime.
func TestFaultPlanValidationSurfaces(t *testing.T) {
	data := blobs(10, 3, 2)
	p := Params{K: 2, Epsilon: 10, Iterations: 2, Seed: 1,
		Faults: mustPlan(t, "crash@1=99")}
	if _, err := Run(data, p); err == nil {
		t.Fatal("plan targeting node 99 in a population of 10 must fail validation")
	}
}
