package core

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"

	"chiaroscuro/internal/crypto/damgardjurik"
	"chiaroscuro/internal/crypto/dkg"
	"chiaroscuro/internal/simnet"
)

// keyceremony.go runs the Pedersen-style distributed key generation of
// internal/crypto/dkg for the Damgård–Jurik backend and packages its
// output as run material. The in-process engines drive the whole
// ceremony here (Params.DKG); the networked daemons run the same state
// machines over TCP (internal/transport) and hand each process its own
// share as Params.DJMaterial. Either way the resulting deployment never
// concentrates the decryption exponent in one place — the trusted
// dealer of NewDamgardJurikSuite survives only as the property-test
// oracle the DKG suite is checked against.

// DJKeyMaterial is the portable output of a Damgård–Jurik key ceremony:
// the public key parameters every participant agrees on plus the key
// shares this process holds. Shares is indexed by party (entry i is
// party i+1's share); a networked process holds only its own share and
// leaves every other entry's Value nil — partial decryption for those
// parties is answered over the wire, not locally.
type DJKeyMaterial struct {
	N         *big.Int
	S         int
	Parties   int
	Threshold int
	// Scale is the public scale σ of the shared secret (1 for a fresh
	// ceremony, multiplied by Δ_old per reshare); Combine cancels it.
	Scale  *big.Int
	Shares []damgardjurik.KeyShare

	// Qualified and Disqualified are the ceremony's dealer verdicts
	// (1-based dealer ids = participant id + 1), identical on every
	// honest node: Disqualified accumulates dealers expelled across
	// restarts, Qualified is the founder set that dealt the final key.
	Qualified    []int
	Disqualified []int
}

// behaviourOf maps a simnet dealer-fault kind to the dkg ceremony
// behaviour that scripts it.
func behaviourOf(k simnet.FaultKind) dkg.Behaviour {
	switch k {
	case simnet.FaultDealerBadShare:
		return dkg.BehaviourBadShare
	case simnet.FaultDealerEquivocate:
		return dkg.BehaviourEquivocate
	case simnet.FaultDealerSilent:
		return dkg.BehaviourSilent
	}
	return dkg.BehaviourHonest
}

// ceremonyRand derives the deterministic coefficient randomness of one
// ceremony participant, keyed so restarts after a disqualification draw
// fresh polynomials while the whole trajectory stays a pure function of
// the run seed.
func ceremonyRand(seed int64, attempt int) dkg.RandFunc {
	return func(party int) io.Reader {
		return dkg.NewDeterministicRand(fmt.Sprintf("chiaroscuro-core-dkg-a%d-p%d", attempt, party), seed)
	}
}

// RunDJKeyCeremony runs the full fresh DKG among `parties` participants
// (every participant is a founder dealer) and returns the dense key
// material. The plan's dealer faults (badshare/equivocate/silentdealer)
// are scripted onto the matching dealers; a disqualification aborts the
// attempt, the genesis exponent is re-split among the qualified
// founders only, and the ceremony re-runs with all `parties` receivers
// — the liveness path: a population with up to parties−1 byzantine
// dealers still converges on a working key, deterministically in
// (modulusBits, degree, parties, threshold, seed, plan).
func RunDJKeyCeremony(modulusBits, degree, parties, threshold int, seed int64, plan *simnet.Plan) (*DJKeyMaterial, error) {
	p, q, err := damgardjurik.FixturePrimes(modulusBits)
	if err != nil {
		return nil, err
	}
	byz := map[int]dkg.Behaviour{}
	for node := 0; node < parties; node++ {
		if f := plan.DealerFaultOf(node); f != nil {
			byz[node+1] = behaviourOf(f.Kind)
		}
	}
	dealers := make([]int, parties)
	for i := range dealers {
		dealers[i] = i + 1
	}
	var disqualified []int
	for attempt := 1; attempt <= parties; attempt++ {
		if len(dealers) == 0 {
			break
		}
		pieces, pk, err := dkg.GenesisPieces(p, q, degree, len(dealers), seed+int64(attempt-1)*0x5851F42D4C957F2D)
		if err != nil {
			return nil, err
		}
		secrets := make(map[int]*big.Int, len(dealers))
		for i, d := range dealers {
			secrets[d] = pieces[i]
		}
		res, err := dkg.RunFreshCeremony(pk, parties, threshold, dealers, secrets, ceremonyRand(seed, attempt), byz)
		if errors.Is(err, dkg.ErrDisqualified) {
			disqualified = append(disqualified, res.Disqualified...)
			dealers = res.Qualified
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("core: key ceremony: %w", err)
		}
		key := res.Results[0].Key
		m := &DJKeyMaterial{
			N: new(big.Int).Set(key.N), S: key.S,
			Parties: parties, Threshold: threshold,
			Scale:     key.Scale(),
			Shares:    make([]damgardjurik.KeyShare, parties),
			Qualified: res.Qualified,
		}
		for i, r := range res.Results {
			m.Shares[i] = r.Share
		}
		sort.Ints(disqualified)
		m.Disqualified = disqualified
		return m, nil
	}
	return nil, errors.New("core: key ceremony exhausted every founder set without qualifying")
}

// DJMaterialFromResult packages one participant's ceremony Result as
// sparse run material: only this participant's own share is populated,
// which is exactly what a networked daemon holds after the wire
// ceremony. Dealer verdicts are carried over so diagnostics agree with
// the in-process material.
func DJMaterialFromResult(res *dkg.Result) (*DJKeyMaterial, error) {
	if res == nil || res.Key == nil || res.Share.Value == nil {
		return nil, errors.New("core: ceremony result without a key")
	}
	m := &DJKeyMaterial{
		N: new(big.Int).Set(res.Key.N), S: res.Key.S,
		Parties: res.Key.Parties, Threshold: res.Key.Threshold,
		Scale:        res.Key.Scale(),
		Shares:       make([]damgardjurik.KeyShare, res.Key.Parties),
		Qualified:    res.Qualified,
		Disqualified: res.Disqualified,
	}
	for i := range m.Shares {
		m.Shares[i] = damgardjurik.KeyShare{Index: i + 1}
	}
	m.Shares[res.Share.Index-1] = res.Share
	return m, nil
}

// NewDamgardJurikSuiteFromMaterial wraps ceremony material as a
// CipherSuite. The threshold key is reconstructed from public
// parameters only (no CRT dealer state); partial decryption is
// available exactly for the parties whose shares the material holds.
func NewDamgardJurikSuiteFromMaterial(m *DJKeyMaterial) (CipherSuite, error) {
	if m == nil {
		return nil, errors.New("core: nil key material")
	}
	if len(m.Shares) != m.Parties {
		return nil, fmt.Errorf("core: key material carries %d shares for %d parties", len(m.Shares), m.Parties)
	}
	tk, err := damgardjurik.NewThresholdKeyPublic(m.N, m.S, m.Parties, m.Threshold, m.Scale)
	if err != nil {
		return nil, err
	}
	shares := make([]damgardjurik.KeyShare, len(m.Shares))
	copy(shares, m.Shares)
	return newDJSuite(tk, shares)
}

// NewDamgardJurikDKGSuite is the engine-run entry point (Params.DKG):
// it runs the whole ceremony in-process — every party's state machine,
// including any scripted dealer faults and the restart after their
// disqualification — and wraps the dense material as a CipherSuite.
func NewDamgardJurikDKGSuite(modulusBits, degree, parties, threshold int, seed int64, plan *simnet.Plan) (CipherSuite, error) {
	m, err := RunDJKeyCeremony(modulusBits, degree, parties, threshold, seed, plan)
	if err != nil {
		return nil, err
	}
	return NewDamgardJurikSuiteFromMaterial(m)
}
