package core

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sort"

	"chiaroscuro/internal/compactrng"
	"chiaroscuro/internal/dp"
	"chiaroscuro/internal/fixedpoint"
	"chiaroscuro/internal/gossip"
	"chiaroscuro/internal/p2p"
	"chiaroscuro/internal/simnet"
	"chiaroscuro/internal/timeseries"
	"chiaroscuro/internal/vecpool"
)

// phase is the participant's position inside one iteration of the
// execution sequence.
type phase int

const (
	phaseAssign  phase = iota // Step 1 (local)
	phaseGossip               // Step 2a+2b (distributed)
	phaseDecrypt              // Step 2c+2d (noise addition + collaborative decryption)
	phaseDone                 // terminated (converged or out of iterations)
)

// gossipPayload is one push-sum exchange. It carries the iteration tag and
// the perturbed centroids of that iteration so that late participants can
// synchronize (Sec. II.B: "the late participants simply synchronize on
// the latest iteration during their gossip exchanges"). The fused vector
// transports the encrypted means and the encrypted noise shares together
// under a single push-sum weight.
type gossipPayload struct {
	Iter      int
	Centroids [][]float64
	Msg       *gossip.Message[Cipher]
}

// decryptRequest asks a peer for partial decryptions of the requester's
// perturbed-mean ciphertexts.
type decryptRequest struct {
	Iter    int
	Ciphers []Cipher
}

// decryptResponse carries one partial decryption per requested cipher,
// all under the responder's key-share index.
type decryptResponse struct {
	Iter     int
	Partials []Partial
}

// Diptych is the twofold data structure of Sec. II.B: the cleartext but
// differentially-private centroids on one side, and the encrypted means
// under gossip aggregation on the other.
type Diptych struct {
	// Iteration tags the diptych; all messages carry it.
	Iteration int
	// Centroids is the perturbed, publicly disclosed side.
	Centroids [][]float64
	// Means is the encrypted side: the fused push-sum state over
	// [cluster sums+counts | noise shares], never disclosed.
	Means *gossip.State[Cipher]
}

// IterationResult is what a participant retains about one finished
// iteration (read by the experiment harness).
type IterationResult struct {
	Iteration          int
	Epsilon            float64
	PerturbedCentroids [][]float64
	PerturbedCounts    []float64
	// PerturbedInertia is the disclosed mean squared distance of the
	// series to their closest centroid (only when Params.TrackInertia;
	// the footnote-2 quality-monitoring extension). NaN when disabled.
	PerturbedInertia float64
	Assignment       int // cluster this participant chose at Step 1
	Displacement     float64
	DecryptFailed    bool
	CompletedAtCycle int
}

// Env is the execution environment a participant interacts with during
// one activation. Two implementations exist: the cycle-driven simulator's
// p2p.Context (Peersim semantics, deterministic) and the asynchronous
// goroutine runtime's env (async.go — real concurrency, no global
// synchronization, as the paper's deployment model).
type Env interface {
	ID() p2p.NodeID
	Cycle() int
	PopulationSize() int
	AliveCount() int
	Inbox() []p2p.Message
	Send(to p2p.NodeID, payload any, bytes int) error
	RandomPeer() (p2p.NodeID, bool)
	RandomPeers(k int) []p2p.NodeID
}

var _ Env = (*p2p.Context)(nil)

// participant is the per-node protocol: Chiaroscuro's "nextCycle"
// implementation.
type participant struct {
	id     p2p.NodeID
	series []float64
	run    *runShared // immutable run-wide configuration and services
	rng    *rand.Rand
	// rngSrc is the splitmix64 source behind rng, retained so Snapshot
	// can capture (and Restore reinstate) the complete RNG state: the
	// draw algorithms the participant uses buffer nothing on top of the
	// source, so one word IS the whole noise-randomness state.
	rngSrc *compactrng.Source

	// Mutable protocol state.
	phase      phase
	iter       int // current iteration, 0-based
	roundsDone int // gossip rounds completed this iteration
	diptych    Diptych
	assignment int
	waitCycles int
	partials   map[int][]Partial // responder share index -> per-cipher partials
	pendingCT  []Cipher          // perturbed ciphertexts awaiting decryption
	asked      map[p2p.NodeID]bool
	// outstanding tracks the in-flight decrypt asks of the request
	// window: peer -> remaining patience in decrypt activations. An ask
	// leaves the window when its response arrives or its TTL runs out
	// (the peer stays in asked either way — it is never re-asked).
	outstanding map[p2p.NodeID]int
	history     []IterationResult
	staleDrops  int
	decryptFail int

	// Decrypt-phase traffic accounting (summed into the trace).
	decryptReqs      int
	decryptReqBytes  int64
	decryptRespBytes int64

	// The decrypt-service memo: the last (iteration, cipher-set) this
	// participant computed partials for, keyed by the identity of the
	// request's cipher slice. servedCiphers holds a strong reference to
	// the cached request's slice so its address cannot be recycled while
	// the entry lives — without it, a freed requester slice could alias a
	// new same-iteration request and serve it stale partials.
	servedIter    int
	servedCiphers []Cipher
	servedParts   []Partial
	servedHits    int64

	// byz, when non-nil, makes this participant a byzantine sender of
	// the planned kind (internal/simnet); replayPayload caches the first
	// gossip emission of a FaultReplay sender.
	byz           *simnet.NodeFault
	replayPayload *gossipPayload

	// absorbBatch is the reusable scratch for the batched gossip
	// exchange: same-iteration messages drained from one inbox are
	// absorbed in a single AbsorbAll pass.
	absorbBatch []*gossip.Message[Cipher]

	// gossipScratch/respScratch are the inbox classification buffers,
	// reused across activations so a steady-state cycle sorts its inbox
	// without allocating (references are cleared before the activation
	// returns, so recycled capacity never pins dead payloads).
	gossipScratch []*gossipPayload
	respScratch   []*decryptResponse

	// The remaining fields exist only on the zero-allocation hot path
	// (runShared.mut non-nil). vals/noises are the per-iteration
	// cleartext fused-contribution buffers; contrib is the arena-backed
	// cipher vector each iteration's push-sum state is rebuilt over;
	// emitMsgs/emitPayloads double-buffer the outgoing gossip message by
	// cycle parity — sound because the engine is bulk-synchronous: a
	// message emitted at cycle c is consumed (absorbed, dropped and
	// counted, or cleared by a crash) by the end of cycle c+1, and the
	// same-parity buffer is not written again before cycle c+2. The
	// fault-plan features that would break that bound (delays, laggard
	// stalls, replaying byzantines) disable the hot path in prepareRun.
	vals, noises []float64
	contrib      []Cipher
	emitMsgs     [2]gossip.Message[Cipher]
	emitPayloads [2]gossipPayload
}

// runShared is configuration and services shared by all participants of
// one run (read-only after construction, except the thread-safe suite).
type runShared struct {
	params        Params
	dim           int
	population    int
	suite         CipherSuite
	ring          gossip.Ring[Cipher]
	codec         *fixedpoint.Codec
	plainMod      *big.Int
	halfMod       *big.Int // plainMod >> 1, cached for sign wrap/unwrap
	preScale      uint
	epsSched      []float64
	noiseBound    float64
	vecLen        int                    // k*(dim+1): cluster sums and counts
	sideLen       int                    // vecLen (+1 when the inertia aggregate is tracked)
	sideCiphers   int                    // ciphertexts per side: sideLen, or ⌈sideLen/slots⌉ when packed
	layout        *fixedpoint.SlotLayout // slot packing of the encrypted side (nil = unpacked)
	decodeBound   float64                // max plausible |decoded| per coordinate
	centroidBytes int
	// validator is non-nil only when the fault plan contains byzantine
	// senders: incoming gossip messages are then validated cipher by
	// cipher before absorption (the wire-hardening path).
	validator cipherValidator
	// mut is the suite's in-place extension when the run qualifies for
	// the zero-allocation gossip hot path (accounted backend,
	// cycle-driven engine, no fault plan — see prepareRun); nil keeps
	// every participant on the classic allocating path.
	mut mutCipherSuite
	// batchHint, when positive, pre-sizes every participant's inbox
	// classification and absorb-batch scratch (and the push-sum batch
	// column) for that many messages, so no in-degree spike can ever
	// grow a buffer. Zero (all ordinary runs) lets the scratch converge
	// to its working capacity instead; only the allocation-measurement
	// harnesses pay the O(population·hint) to make "zero allocations"
	// provable rather than amortized.
	batchHint int
}

// NextCycle implements p2p.Protocol — the entry point Peersim (here
// internal/p2p) calls once per cycle, identical for all participants.
func (pt *participant) NextCycle(ctx *p2p.Context) {
	pt.step(ctx)
}

// step runs one activation against any execution environment.
func (pt *participant) step(ctx Env) {
	// Serve and sort the inbox first: decryption service is stateless
	// and always on; gossip drives the state machine. The classification
	// buffers are participant-owned scratch, valid for this activation
	// only.
	gossips := pt.gossipScratch[:0]
	responses := pt.respScratch[:0]
	for _, m := range ctx.Inbox() {
		switch pl := m.Payload.(type) {
		case *gossipPayload:
			gossips = append(gossips, pl)
		case *decryptRequest:
			pt.serveDecrypt(ctx, m.From, pl)
		case *decryptResponse:
			responses = append(responses, pl)
		}
	}
	pt.handleGossips(ctx, gossips)
	switch pt.phase {
	case phaseAssign:
		pt.stepAssign(ctx)
	case phaseGossip:
		pt.stepGossip(ctx)
	case phaseDecrypt:
		pt.stepDecrypt(ctx, responses)
	case phaseDone:
	}
	// Retain the grown capacity, release the payload references.
	for i := range gossips {
		gossips[i] = nil
	}
	for i := range responses {
		responses[i] = nil
	}
	pt.gossipScratch = gossips[:0]
	pt.respScratch = responses[:0]
}

// Reset implements p2p.Resetter: a node rejoining after a permanent
// failure starts from scratch and will late-sync on the next gossip
// message it receives. A participant that had already terminated stays
// terminated — its result is final and must not be recomputed (and
// re-spending the privacy budget on a re-disclosure would be unsound).
func (pt *participant) Reset() {
	if pt.phase == phaseDone {
		return
	}
	pt.phase = phaseAssign
	pt.roundsDone = 0
	pt.diptych.Means = nil
	pt.partials = nil
	pt.pendingCT = nil
	pt.asked = nil
	pt.outstanding = nil
	pt.waitCycles = 0
	pt.servedCiphers = nil
	pt.servedParts = nil
}

// --- Step 1: assignment (local) -------------------------------------------

func (pt *participant) stepAssign(ctx Env) {
	centroids := pt.diptych.Centroids
	best, bestSq := 0, math.Inf(1)
	for j, c := range centroids {
		var acc float64
		for t := range pt.series {
			d := pt.series[t] - c[t]
			acc += d * d
		}
		if acc < bestSq {
			best, bestSq = j, acc
		}
	}
	pt.assignment = best

	// Build the fused contribution vector:
	//   [0 .. vecLen)            means side (sums then count per cluster)
	//   [vecLen .. sideLen)      optional inertia aggregate (footnote 2)
	//   [sideLen .. 2*sideLen)   noise shares for the same layout
	// The cleartext coordinates are assembled first and encrypted after —
	// per coordinate, or per slot group when the run is packed — so the
	// coordinate order (and hence the noise-share RNG consumption) is
	// identical either way, keeping packed and unpacked runs on the same
	// gossip trajectory.
	r := pt.run
	k := r.params.K
	per := r.dim + 1
	// The cleartext buffers are reusable scratch: fill() writes every
	// index (all k·per coordinates plus the optional inertia aggregate),
	// so stale values can never leak between iterations.
	if pt.vals == nil {
		pt.vals = make([]float64, r.sideLen)
		pt.noises = make([]float64, r.sideLen)
	}
	vals, noises := pt.vals, pt.noises
	scale := pt.noiseScale()
	nShares := ctx.AliveCount()
	if nShares < 2 {
		nShares = 2
	}
	fill := func(idx int, x float64) {
		vals[idx] = x
		noise := dp.NoiseShare(pt.rng, nShares, scale)
		if pt.byz != nil && pt.byz.Kind == simnet.FaultSkewNoise {
			// Byzantine noise skew: the share is scaled before the clamp,
			// so it stays wire-plausible (honest receivers cannot tell) —
			// factor 0 freerides on everyone else's noise, large factors
			// poison the disclosed aggregate.
			noise *= pt.byz.Factor
		}
		if noise > r.noiseBound {
			noise = r.noiseBound
		} else if noise < -r.noiseBound {
			noise = -r.noiseBound
		}
		noises[idx] = noise
	}
	for j := 0; j < k; j++ {
		for t := 0; t < per; t++ {
			var x float64
			if j == best {
				if t < r.dim {
					x = pt.series[t]
				} else {
					x = 1 // count coordinate
				}
			}
			fill(j*per+t, x)
		}
	}
	if r.params.TrackInertia {
		fill(r.sideLen-1, bestSq)
	}
	values, err := pt.encryptSides(vals, noises)
	if err != nil {
		// Headroom was validated up front; an error here is a
		// programming error worth failing loudly in simulation.
		panic(err)
	}
	st, err := gossip.NewState[Cipher](r.ring, values, 1)
	if err != nil {
		panic(err)
	}
	if r.mut != nil {
		// The state's values are this participant's own arena residues
		// (encryptSides wrote them in place), so the in-place hot path
		// is sound.
		st.SetMutable()
	}
	if r.batchHint > 0 {
		st.ReserveBatch(r.batchHint)
	}
	pt.diptych.Means = st
	pt.diptych.Iteration = pt.iter
	pt.roundsDone = 0
	pt.phase = phaseGossip
}

// noiseScale returns the Laplace scale b_i = sensitivity / ε_i for the
// current iteration. When the inertia aggregate is tracked, one
// individual additionally moves that aggregate by at most dim·MaxValue²,
// which enters the L1 sensitivity.
func (pt *participant) noiseScale() float64 {
	r := pt.run
	eps := r.epsSched[pt.iter]
	sens := dp.SumSensitivity(r.dim, r.params.MaxValue)
	if r.params.TrackInertia {
		sens += float64(r.dim) * r.params.MaxValue * r.params.MaxValue
	}
	return sens / eps
}

// encryptSides encrypts the fused contribution [values | noise shares]:
// one ciphertext per coordinate, or — when the run is packed — one per
// slot group, with the two sides packed under the same layout so the
// step-2c noise addition stays a slot-aligned homomorphic Add. On the
// hot path the residues are written into the participant's own arena
// vector (same values, same encryption order and count — only the
// allocation profile differs).
func (pt *participant) encryptSides(vals, noises []float64) ([]Cipher, error) {
	r := pt.run
	if r.mut != nil {
		return pt.encryptSidesInPlace(vals, noises)
	}
	out := make([]Cipher, 2*r.sideCiphers)
	if r.layout == nil {
		for i := range vals {
			ct, err := pt.encryptValue(vals[i])
			if err != nil {
				return nil, err
			}
			out[i] = ct
			nct, err := pt.encryptValue(noises[i])
			if err != nil {
				return nil, err
			}
			out[r.sideCiphers+i] = nct
		}
		return out, nil
	}
	for side, xs := range [2][]float64{vals, noises} {
		packed, err := pt.packSide(xs)
		if err != nil {
			return nil, err
		}
		for g, m := range packed {
			ct, err := r.suite.Encrypt(m)
			if err != nil {
				return nil, err
			}
			out[side*r.sideCiphers+g] = ct
		}
	}
	return out, nil
}

// encryptSidesInPlace is encryptSides writing into the participant's
// arena-backed contribution vector: the previous iteration's state
// shared these residues, but it is dropped in the same activation, and
// every in-flight message carries copies (EmitInto's anti-aliasing
// contract), so overwriting is safe.
func (pt *participant) encryptSidesInPlace(vals, noises []float64) ([]Cipher, error) {
	r := pt.run
	if pt.contrib == nil {
		v, err := r.mut.NewScratchVector(2 * r.sideCiphers)
		if err != nil {
			return nil, err
		}
		pt.contrib = v
	}
	out := pt.contrib
	if r.layout == nil {
		for i := range vals {
			m, err := pt.encodeValue(vals[i])
			if err != nil {
				return nil, err
			}
			if err := r.mut.EncryptInto(out[i], m); err != nil {
				return nil, err
			}
			m, err = pt.encodeValue(noises[i])
			if err != nil {
				return nil, err
			}
			if err := r.mut.EncryptInto(out[r.sideCiphers+i], m); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	for side, xs := range [2][]float64{vals, noises} {
		packed, err := pt.packSide(xs)
		if err != nil {
			return nil, err
		}
		for g, m := range packed {
			if err := r.mut.EncryptInto(out[side*r.sideCiphers+g], m); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// packSide fixed-point-encodes one side of the contribution (with
// pre-scaling) and packs it into biased slot groups. Unlike the unpacked
// path no modular sign wrap is needed: the per-slot bias keeps every
// field non-negative.
func (pt *participant) packSide(xs []float64) ([]*big.Int, error) {
	r := pt.run
	enc := make([]*big.Int, len(xs))
	for i, x := range xs {
		v, err := r.codec.Encode(x)
		if err != nil {
			return nil, err
		}
		enc[i] = v.Lsh(v, r.preScale)
	}
	return r.layout.Pack(enc)
}

// encodeValue fixed-point-encodes x (with pre-scaling) into the
// plaintext ring. The sign wrap runs in place against the cached M/2
// (the per-coordinate hot form of fixedpoint.WrapSigned).
func (pt *participant) encodeValue(x float64) (*big.Int, error) {
	r := pt.run
	v, err := r.codec.Encode(x)
	if err != nil {
		return nil, err
	}
	v.Lsh(v, r.preScale)
	if err := fixedpoint.WrapSignedInPlace(v, r.plainMod, r.halfMod); err != nil {
		return nil, err
	}
	return v, nil
}

// encryptValue fixed-point-encodes x (with pre-scaling) into the
// plaintext ring and encrypts it.
func (pt *participant) encryptValue(x float64) (Cipher, error) {
	w, err := pt.encodeValue(x)
	if err != nil {
		return nil, err
	}
	return pt.run.suite.Encrypt(w)
}

// --- Step 2a/2b: gossip (distributed) --------------------------------------

func (pt *participant) stepGossip(ctx Env) {
	r := pt.run
	peer, ok := ctx.RandomPeer()
	if ok {
		var payload *gossipPayload
		if r.mut != nil {
			payload = pt.emitReused(ctx)
		} else {
			payload = &gossipPayload{
				Iter:      pt.iter,
				Centroids: pt.diptych.Centroids,
				Msg:       pt.diptych.Means.Emit(),
			}
		}
		if pt.byz != nil {
			// Byzantine senders only exist under a fault plan, which
			// forces the classic path — the corrupted payload may be
			// retained (replay) and must not live in a reused buffer.
			payload = pt.byzantinePayload(payload)
		}
		// Byte accounting from the actual ciphertext count of the
		// emitted message — not a recomputed 2·sideLen — so packed and
		// inertia-tracking runs report true wire bytes.
		bytes := len(payload.Msg.V)*r.suite.CipherBytes() + r.centroidBytes + 16
		_ = ctx.Send(peer, payload, bytes)
	}
	pt.roundsDone++
	if pt.roundsDone >= r.params.GossipRounds {
		pt.phase = phaseDecrypt
		pt.waitCycles = 0
		pt.partials = make(map[int][]Partial)
		pt.asked = make(map[p2p.NodeID]bool)
		pt.outstanding = make(map[p2p.NodeID]int)
		pt.pendingCT = nil
	}
}

// emitReused emits the push-sum half-share into the double-buffered
// outgoing message selected by cycle parity — the allocation-free emit
// of the hot path. The buffer written at cycle c was last written at
// cycle c-2; its previous occupant was consumed by the end of cycle c-1
// (the BSP bound documented on the participant fields), so the
// overwrite can never race an in-flight read.
func (pt *participant) emitReused(ctx Env) *gossipPayload {
	idx := ctx.Cycle() & 1
	msg := &pt.emitMsgs[idx]
	if msg.V == nil {
		v, err := pt.run.mut.NewScratchVector(len(pt.diptych.Means.V))
		if err != nil {
			panic(err) // arena sizing is validated at prepareRun time
		}
		msg.V = v
	}
	pt.diptych.Means.EmitInto(msg)
	pl := &pt.emitPayloads[idx]
	pl.Iter = pt.iter
	pl.Centroids = pt.diptych.Centroids
	pl.Msg = msg
	return pl
}

// byzantinePayload corrupts an outgoing gossip payload according to the
// participant's planned byzantine behaviour. The honest Emit already
// happened (the sender's own state halves either way), so a byzantine
// sender injects corruption into the network without gaining a
// privileged view of anyone else's state.
func (pt *participant) byzantinePayload(honest *gossipPayload) *gossipPayload {
	r := pt.run
	switch pt.byz.Kind {
	case simnet.FaultGarble:
		// Structurally valid ciphertexts of random residues under the
		// true weight: passes every wire check, poisons the aggregate —
		// receivers survive via the decode plausibility bound.
		fake := make([]Cipher, len(honest.Msg.V))
		for i := range fake {
			v := new(big.Int).Rand(pt.rng, r.plainMod)
			ct, err := r.suite.Encrypt(v)
			if err != nil {
				ct = honest.Msg.V[i]
			}
			fake[i] = ct
		}
		return &gossipPayload{
			Iter:      honest.Iter,
			Centroids: honest.Centroids,
			Msg:       &gossip.Message[Cipher]{V: fake, W: honest.Msg.W},
		}
	case simnet.FaultMalform:
		// Malformed messages, alternating the failure mode per round:
		// wrong vector lengths (rejected by the dimension check), and
		// right-length vectors of invalid values under a non-finite
		// weight (rejected by the wire validation).
		if pt.roundsDone%2 == 0 {
			return &gossipPayload{
				Iter:      honest.Iter,
				Centroids: honest.Centroids,
				Msg:       &gossip.Message[Cipher]{V: honest.Msg.V[:len(honest.Msg.V)-1], W: honest.Msg.W},
			}
		}
		bad := make([]Cipher, len(honest.Msg.V))
		for i := range bad {
			if i%2 == 0 {
				bad[i] = byzForeignCipher{} // foreign type for every suite
			} else {
				bad[i] = big.NewInt(0) // out of range for DJ, foreign for plain
			}
		}
		return &gossipPayload{
			Iter:      honest.Iter,
			Centroids: honest.Centroids,
			Msg:       &gossip.Message[Cipher]{V: bad, W: math.NaN()},
		}
	case simnet.FaultReplay:
		// Capture the first emission, then replay it verbatim forever:
		// same-iteration replays inflate push-sum mass, later ones hit
		// the stale-iteration drop path.
		if pt.replayPayload == nil {
			pt.replayPayload = &gossipPayload{
				Iter:      honest.Iter,
				Centroids: deepCopyMatrix(honest.Centroids),
				Msg:       &gossip.Message[Cipher]{V: append([]Cipher(nil), honest.Msg.V...), W: honest.Msg.W},
			}
			return honest
		}
		return pt.replayPayload
	default: // FaultSkewNoise corrupts at assignment time, not here.
		return honest
	}
}

// byzForeignCipher is a value no cipher suite recognizes — the
// malformed-sender probe for the type-validation path.
type byzForeignCipher struct{}

// wireValid is the byzantine-hardening gate on incoming gossip: the
// push-sum weight must be finite, non-negative and population-bounded,
// and every cipher must validate under the suite. Only runs when the
// fault plan declares byzantine senders (runShared.validator non-nil).
func (pt *participant) wireValid(m *gossip.Message[Cipher]) bool {
	if math.IsNaN(m.W) || math.IsInf(m.W, 0) || m.W < 0 || m.W > float64(pt.run.population) {
		return false
	}
	for _, c := range m.V {
		if pt.run.validator.ValidateCipher(c) != nil {
			return false
		}
	}
	return true
}

// handleGossips processes one activation's gossip inflow as a batched
// exchange: runs of messages absorbable under the current state are
// validated up front and folded into the push-sum state by a single
// AbsorbAll pass (which the accounted ring turns into allocation-free
// accumulator folds); a late-synchronization message flushes the run
// first, so the observable behaviour — including staleDrops accounting —
// is identical to absorbing the messages one by one in arrival order.
func (pt *participant) handleGossips(ctx Env, gs []*gossipPayload) {
	if len(gs) == 0 || pt.phase == phaseDone {
		return
	}
	r := pt.run
	batch := pt.absorbBatch[:0]
	flush := func() {
		if len(batch) == 0 {
			return
		}
		if err := pt.diptych.Means.AbsorbAll(batch); err != nil {
			// Unreachable: the batch is validated message by message
			// below. Counted defensively rather than panicking.
			pt.staleDrops += len(batch)
		}
		for i := range batch {
			batch[i] = nil // do not pin absorbed messages until next use
		}
		batch = batch[:0]
	}
	for _, g := range gs {
		switch {
		case g.Iter == pt.iter && (pt.phase == phaseGossip || pt.phase == phaseDecrypt):
			if pt.phase == phaseDecrypt && pt.pendingCT != nil {
				// Our estimate is already frozen and under decryption;
				// absorbing now would desynchronize value and weight.
				pt.staleDrops++
				continue
			}
			if g.Msg == nil || len(g.Msg.V) != len(pt.diptych.Means.V) {
				pt.staleDrops++ // what Absorb would have rejected
				continue
			}
			if r.validator != nil && !pt.wireValid(g.Msg) {
				pt.staleDrops++ // byzantine wire input: rejected
				continue
			}
			batch = append(batch, g.Msg)
		case g.Iter > pt.iter:
			// Late synchronization: adopt the newer iteration's
			// centroids, redo the local assignment step, then absorb the
			// message. The payload is validated first — a malformed
			// iteration tag or centroid matrix must not be able to desync
			// (or panic) an honest node. Anything batched so far belongs
			// to the abandoned iteration's state and is folded in before
			// it is replaced.
			if g.Iter >= len(r.epsSched) || g.Msg == nil ||
				len(g.Msg.V) != 2*r.sideCiphers ||
				!validShape(g.Centroids, r.params.K, r.dim) ||
				(r.validator != nil && !pt.wireValid(g.Msg)) {
				// Malformed sync payloads (wrong-length vectors included)
				// must not be able to force the iteration jump — the
				// same-iteration path length-checks before absorbing, so
				// this path does too.
				pt.staleDrops++
				continue
			}
			flush()
			pt.iter = g.Iter
			pt.diptych.Centroids = deepCopyMatrix(g.Centroids)
			pt.phase = phaseAssign
			pt.stepAssign(ctx)
			if err := pt.diptych.Means.Absorb(g.Msg); err != nil {
				pt.staleDrops++
			}
		default:
			pt.staleDrops++ // stale iteration: drop
		}
	}
	flush()
	pt.absorbBatch = batch[:0]
}

// --- Step 2c/2d: noise addition + collaborative decryption ----------------

func (pt *participant) stepDecrypt(ctx Env, responses []*decryptResponse) {
	r := pt.run
	if pt.pendingCT == nil {
		// Step 2c: homomorphically add the gossiped encrypted noise to
		// the gossiped encrypted means — the aggregate that will be
		// disclosed is perturbed *before* anyone can decrypt it.
		vals := pt.diptych.Means.Values()
		cts := make([]Cipher, r.sideCiphers)
		for i := 0; i < r.sideCiphers; i++ {
			c, err := r.suite.Add(vals[i], vals[r.sideCiphers+i])
			if err != nil {
				panic(err)
			}
			cts[i] = c
		}
		pt.pendingCT = cts
	}
	for _, resp := range responses {
		if resp.Iter != pt.iter || len(resp.Partials) != len(pt.pendingCT) {
			continue
		}
		if len(resp.Partials) == 0 {
			continue
		}
		idx := resp.Partials[0].Index
		// The responder's node id is its share index - 1: its ask (if
		// still in flight) is now settled.
		delete(pt.outstanding, p2p.NodeID(idx-1))
		if _, dup := pt.partials[idx]; !dup {
			pt.partials[idx] = resp.Partials
		}
	}
	if len(pt.partials) >= r.suite.Threshold() {
		pt.finishIteration(ctx, false)
		return
	}
	// Step 2d: ask peers for partial decryptions, keeping only `missing`
	// asks in flight instead of blasting threshold+1 fresh peers every
	// cycle (the legacy discipline, kept for A/B stress tests).
	missing := r.suite.Threshold() - len(pt.partials)
	req := &decryptRequest{Iter: pt.iter, Ciphers: pt.pendingCT}
	bytes := len(pt.pendingCT)*r.suite.CipherBytes() + 8
	if r.params.legacyDecryptAsk {
		for _, peer := range ctx.RandomPeers(missing + 1) {
			if pt.asked[peer] {
				continue
			}
			pt.asked[peer] = true
			pt.decryptReqs++
			pt.decryptReqBytes += int64(bytes)
			_ = ctx.Send(peer, req, bytes)
		}
	} else {
		pt.topUpAsks(ctx, missing, req, bytes)
	}
	pt.waitCycles++
	if pt.waitCycles > r.params.DecryptWindow {
		// Could not assemble a quorum (heavy churn): degrade by keeping
		// the current centroids and moving on.
		pt.decryptFail++
		pt.finishIteration(ctx, true)
	}
}

// askTTL is the patience of one in-flight decrypt ask, in decrypt
// activations. Fault-free, a request sent at cycle c is answered by the
// response processed at c+2; one spare activation absorbs drop/laggard
// jitter before the window re-provisions the ask elsewhere.
const askTTL = 3

// topUpAsks is the outstanding-request window: it ages out expired
// in-flight asks, then draws fresh un-asked peers — with replacement
// redraws, so already-asked draws don't silently shrink the wave — until
// the window again holds `missing` asks (progressively more as the
// quorum drags) or the candidate pool is exhausted.
func (pt *participant) topUpAsks(ctx Env, missing int, req *decryptRequest, bytes int) {
	if pt.outstanding == nil {
		// Restored snapshots may re-enter the decrypt phase without a
		// window (pre-v2 snapshots carry none).
		pt.outstanding = make(map[p2p.NodeID]int)
	}
	for peer, ttl := range pt.outstanding {
		if ttl <= 1 {
			// Expired unanswered: the peer may have crashed, rejoined, or
			// the messages may have dropped. Release it for re-asking —
			// duplicate responses are idempotent (the partials map keeps
			// the first) — so a small pool under churn keeps its liveness
			// instead of exhausting permanently.
			delete(pt.outstanding, peer)
			delete(pt.asked, peer)
		} else {
			pt.outstanding[peer] = ttl - 1
		}
	}
	// Progressive escalation: each elapsed TTL without a settled quorum
	// widens the window by one, so dead or slow responders cannot
	// serialize the remaining waves — and a window burning toward its
	// deadline converges on the legacy discipline's redundancy instead
	// of failing lean.
	target := missing + pt.waitCycles/askTTL
	need := target - len(pt.outstanding)
	if need <= 0 {
		return
	}
	// Redraw budget: generous enough to find `need` fresh peers even when
	// most draws land on already-asked ones (small populations, long
	// waits), finite so an exhausted pool cannot loop forever.
	budget := 16*(need+1) + 8*len(pt.asked)
	for need > 0 && budget > 0 {
		budget--
		peer, ok := ctx.RandomPeer()
		if !ok {
			return
		}
		if pt.asked[peer] {
			continue
		}
		pt.asked[peer] = true
		pt.outstanding[peer] = askTTL
		pt.decryptReqs++
		pt.decryptReqBytes += int64(bytes)
		_ = ctx.Send(peer, req, bytes)
		need--
	}
}

// serveDecrypt is the always-on decryption service: any alive participant
// contributes its partial decryptions on request. The partials of the
// last served (iteration, cipher-set) are memoized, so duplicate
// requests for the same ciphertexts (replays, retransmissions) are
// answered without redoing the per-cipher exponentiations. The memo key
// is the identity of the request's cipher slice — servedCiphers keeps
// that slice alive, so a match guarantees the cached partials belong to
// exactly these ciphertexts.
func (pt *participant) serveDecrypt(ctx Env, from p2p.NodeID, req *decryptRequest) {
	r := pt.run
	share := int(pt.id) + 1
	if share > r.suite.Parties() {
		return
	}
	var parts []Partial
	if len(req.Ciphers) > 0 && pt.servedCiphers != nil &&
		pt.servedIter == req.Iter &&
		len(pt.servedCiphers) == len(req.Ciphers) &&
		&pt.servedCiphers[0] == &req.Ciphers[0] {
		pt.servedHits++
		parts = pt.servedParts
	} else {
		parts = make([]Partial, len(req.Ciphers))
		for i, c := range req.Ciphers {
			p, err := r.suite.PartialDecrypt(share, c)
			if err != nil {
				return
			}
			parts[i] = p
		}
		pt.servedIter = req.Iter
		pt.servedCiphers = req.Ciphers
		pt.servedParts = parts
	}
	respBytes := len(parts)*r.suite.CipherBytes() + 8
	resp := &decryptResponse{Iter: req.Iter, Partials: parts}
	if ctx.Send(from, resp, respBytes) == nil {
		pt.decryptRespBytes += int64(respBytes)
	}
}

// finishIteration completes Step 3 (convergence, local): decode the
// perturbed means, apply smoothing, decide and either iterate or stop.
func (pt *participant) finishIteration(ctx Env, failed bool) {
	r := pt.run
	k := r.params.K
	per := r.dim + 1
	newCentroids := deepCopyMatrix(pt.diptych.Centroids)
	counts := make([]float64, k)
	inertia := math.NaN()

	if !failed {
		decoded, err := pt.decodeAll()
		if err != nil {
			failed = true
			pt.decryptFail++
		} else {
			if r.params.TrackInertia {
				inertia = decoded[r.sideLen-1]
				if inertia < 0 {
					inertia = 0 // noise can push the estimate below zero
				}
			}
			// A cluster whose perturbed relative count is too small gets
			// its previous centroid kept (EmptyKeep policy): dividing by
			// a tiny count turns the Laplace noise on the sums into an
			// arbitrarily large distortion of the "mean". The guard is
			// noise-aware: the std of the noise on a relative sum
			// coordinate is √2·b/N, so requiring
			// count ≥ √2·b/(N·tol) caps the expected per-coordinate
			// noise of a disclosed mean at ~tol.
			minCount := 0.5 / float64(r.population)
			const meanNoiseTol = 0.1
			if g := math.Sqrt2 * pt.noiseScale() / (float64(r.population) * meanNoiseTol); g > minCount {
				minCount = g
			}
			// Never freeze genuinely large clusters: under extreme noise
			// a degraded update still beats never moving at all.
			if minCount > 0.25 {
				minCount = 0.25
			}
			for j := 0; j < k; j++ {
				cnt := decoded[j*per+r.dim]
				counts[j] = cnt
				if cnt < minCount {
					continue
				}
				c := make([]float64, r.dim)
				for t := 0; t < r.dim; t++ {
					c[t] = decoded[j*per+t] / cnt
				}
				newCentroids[j] = smooth(c, r.params.Smoothing)
				if r.params.MaxValue > 0 {
					newCentroids[j] = timeseries.Clamp(newCentroids[j], 0, r.params.MaxValue)
				}
			}
		}
	}

	disp := maxDisplacement(pt.diptych.Centroids, newCentroids)
	prevInertia := math.NaN()
	if n := len(pt.history); n > 0 {
		prevInertia = pt.history[n-1].PerturbedInertia
	}
	pt.history = append(pt.history, IterationResult{
		Iteration:          pt.iter,
		Epsilon:            r.epsSched[pt.iter],
		PerturbedCentroids: deepCopyMatrix(newCentroids),
		PerturbedCounts:    counts,
		PerturbedInertia:   inertia,
		Assignment:         pt.assignment,
		Displacement:       disp,
		DecryptFailed:      failed,
		CompletedAtCycle:   ctx.Cycle(),
	})

	pt.diptych.Centroids = newCentroids
	pt.pendingCT = nil
	pt.partials = nil
	pt.asked = nil
	pt.outstanding = nil

	converged := r.params.ConvergeThreshold > 0 && disp <= r.params.ConvergeThreshold && !failed
	// Footnote-2 criterion: stop when the tracked quality plateaus.
	if th := r.params.InertiaStopThreshold; th > 0 && !failed &&
		!math.IsNaN(prevInertia) && !math.IsNaN(inertia) && prevInertia > 0 &&
		(prevInertia-inertia)/prevInertia < th {
		converged = true
	}
	if pt.iter+1 >= r.params.Iterations || converged {
		pt.phase = phaseDone
		return
	}
	pt.iter++
	pt.phase = phaseAssign
}

// decodeAll combines the collected partials for every pending ciphertext
// and decodes the fixed-point plaintexts to floats, already divided by
// the push-sum weight and the pre-scaling factor. It always returns
// sideLen coordinates: unpacked ciphertexts decode one each, packed ones
// unpack into their slots first.
func (pt *participant) decodeAll() ([]float64, error) {
	r := pt.run
	w := pt.diptych.Means.Weight()
	denom := w * math.Ldexp(1, int(r.preScale))
	// Assemble the per-responder partial sets in ascending share-index
	// order — the map's iteration order must never reach Combine, or the
	// responder-set cache keys (and OpCounts profiles) go nondeterministic.
	responders := pt.sortedResponders()
	var plains []*big.Int
	if cc, ok := r.suite.(columnCombiner); ok {
		// Column fast path: the responder set is resolved once for the
		// whole pending vector instead of per ciphertext.
		var err error
		plains, err = cc.CombineColumns(responders, len(pt.pendingCT))
		if err != nil {
			return nil, err
		}
	} else {
		// Per-cipher fallback for suites without the extension. The column
		// is one reused scratch across all pending ciphers — Combine never
		// retains it.
		plains = make([]*big.Int, len(pt.pendingCT))
		parts := make([]Partial, len(responders))
		for i := range pt.pendingCT {
			for j, rp := range responders {
				parts[j] = rp[i]
			}
			m, err := r.suite.Combine(parts)
			if err != nil {
				return nil, err
			}
			plains[i] = m
		}
	}
	if r.layout != nil {
		return pt.decodePacked(plains, w, denom)
	}
	out := make([]float64, len(plains))
	for i, m := range plains {
		// In-place sign unwrap against the cached M/2 (m is this call's
		// fresh Combine output, so mutating it is safe).
		if err := fixedpoint.UnwrapSignedInPlace(m, r.plainMod, r.halfMod); err != nil {
			return nil, err
		}
		v, err := pt.decodeSigned(m, denom, i)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// sortedResponders lists the collected per-responder partial sets in
// ascending share-index order, the deterministic layout decodeAll feeds
// to the combine path.
func (pt *participant) sortedResponders() [][]Partial {
	responders := make([][]Partial, 0, len(pt.partials))
	for _, parts := range pt.partials {
		responders = append(responders, parts)
	}
	sort.Slice(responders, func(a, b int) bool {
		return responders[a][0].Index < responders[b][0].Index
	})
	return responders
}

// decodePacked unpacks the opened group plaintexts into sideLen
// coordinates. After the step-2c addition each slot holds
// trueSum + 2·bias·w: the means and noise halves travelled under the
// same push-sum coefficients (one fused state), each carrying one bias,
// so Unbias with bias weight 2w recovers exactly the signed aggregate
// the unpacked run would have decoded — which is why packed and unpacked
// accounted runs disclose bit-identical centroids.
func (pt *participant) decodePacked(plains []*big.Int, w, denom float64) ([]float64, error) {
	r := pt.run
	raw, err := r.layout.Unpack(plains, r.sideLen)
	if err != nil {
		return nil, err
	}
	out := make([]float64, r.sideLen)
	for i, f := range raw {
		signed, err := r.layout.Unbias(f, 2*w)
		if err != nil {
			return nil, err
		}
		out[i], err = pt.decodeSigned(signed, denom, i)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// decodeSigned converts an exact signed aggregate to its float64 mean
// estimate and applies the plausibility bound.
func (pt *participant) decodeSigned(signed *big.Int, denom float64, i int) (float64, error) {
	r := pt.run
	v := r.codec.Decode(signed) / denom
	if math.Abs(v) > r.decodeBound || math.IsNaN(v) {
		return 0, fmt.Errorf("core: decoded coordinate %d implausible (%g) — gossip invariant violated", i, v)
	}
	return v, nil
}

// --- helpers ---------------------------------------------------------------

func smooth(c []float64, spec SmoothingSpec) []float64 {
	switch spec.Method {
	case SmoothingMovingAverage:
		return timeseries.MovingAverage(c, spec.Window)
	case SmoothingExponential:
		out, err := timeseries.ExponentialSmoothing(c, spec.Alpha)
		if err != nil {
			return c
		}
		return out
	default:
		return c
	}
}

func maxDisplacement(a, b [][]float64) float64 {
	var max float64
	for j := range a {
		var acc float64
		for t := range a[j] {
			d := a[j][t] - b[j][t]
			acc += d * d
		}
		if d := math.Sqrt(acc); d > max {
			max = d
		}
	}
	return max
}

// validShape checks a received centroid matrix is exactly k×dim — the
// guard that keeps a corrupted late-sync payload from panicking the
// assignment step.
func validShape(m [][]float64, k, dim int) bool {
	if len(m) != k {
		return false
	}
	for _, row := range m {
		if len(row) != dim {
			return false
		}
	}
	return true
}

// deepCopyMatrix copies a centroid matrix into flat-backed row views:
// two allocations regardless of k (see internal/vecpool), down from
// k+1 with per-row copies — it runs once per iteration per participant
// (history entries, centroid adoption), which at large populations made
// it the dominant small-object source after the gossip hot path.
func deepCopyMatrix(m [][]float64) [][]float64 {
	return vecpool.CloneRows(m)
}
