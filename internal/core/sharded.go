package core

import (
	"fmt"
	"runtime"
)

// RunSharded executes the same cycle-driven simulation as Run, but each
// cycle's local phases — assignment and noise-share encryption, gossip
// push-sum emission and absorption, partial decryption service and
// quorum assembly — run in parallel across P shard workers, where P is
// Params.Workers (default GOMAXPROCS). Participants are partitioned into
// P contiguous shards; within a shard, activations run in ascending
// participant order, and the per-shard message queues and cost counters
// are merged through a deterministic reduction in stable shard order
// after a per-cycle barrier (see internal/p2p).
//
// # Determinism contract
//
// For any worker count — including counts exceeding the core count or
// the population — RunSharded produces a trace bit-identical to Run on
// the same inputs: identical centroids at every iteration, identical
// network statistics, identical operation counts. This holds because the
// simulation is bulk-synchronous (messages sent in cycle c are delivered
// in cycle c+1, so same-cycle activations are independent), every
// participant draws from RNG streams derived from (Seed, id) alone, and
// the reduction fixes the per-destination delivery order to ascending
// sender id regardless of scheduling. RunSharded is therefore the engine
// of choice for large reproducible experiments: same results as Run,
// wall-clock divided by the available cores.
func RunSharded(data [][]float64, params Params) (*Trace, error) {
	rs, err := prepareRun(data, params)
	if err != nil {
		return nil, err
	}
	defer rs.close()
	workers := rs.p.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		return nil, fmt.Errorf("core: invalid worker count %d", workers)
	}
	d, err := newCycleDriver(data, rs, workers, 0)
	if err != nil {
		return nil, err
	}
	return d.run()
}
