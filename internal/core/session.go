package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"

	"chiaroscuro/internal/dp"
	"chiaroscuro/internal/vecpool"
)

// session.go turns the one-shot run lifecycle into a resumable streaming
// session: one RunSession owns the population's series arena, the cipher
// suite (key material, randomizer pool, operation counters) and the
// longitudinal privacy ledger across many clustering windows, instead of
// rebuilding all of it per Cluster() call. Each window is still a full,
// independently seeded protocol run — prepareRunOn re-binds the reused
// resources into a fresh runSetup — so every per-window determinism
// contract of the one-shot engines carries over unchanged.

// SessionEngine selects the execution engine of a session's windows.
// Only the deterministic cycle-driven engines are eligible: streaming
// warm-starts every window from the previous disclosure, and a
// nondeterministic window would poison every window after it.
type SessionEngine int

const (
	// SessionSequential drives each window with the sequential
	// cycle-driven engine (Run's scheduler).
	SessionSequential SessionEngine = iota
	// SessionSharded drives each window with the sharded engine
	// (RunSharded's scheduler) at Base.Workers workers — bit-identical
	// to SessionSequential at any worker count, per window.
	SessionSharded
)

// SessionParams configures a streaming RunSession.
type SessionParams struct {
	// Base is the per-window protocol configuration. Base.Epsilon must
	// be zero: each window's epsilon is drawn from the lifetime budget
	// by the Spend strategy, not configured. Base.Seed seeds the whole
	// stream; every window derives its own independent seed from it
	// (fresh noise per window — re-using noise across disclosures of
	// overlapping data would correlate exactly what the Laplace
	// mechanism must decorrelate).
	Base Params
	// LifetimeEpsilon is the longitudinal privacy budget the whole
	// stream may spend. Required.
	LifetimeEpsilon float64
	// Windows is the planning horizon the spend strategy provisions
	// for (sessions may run fewer — or, budget permitting, more).
	// Default 8.
	Windows int
	// Spend draws each window's epsilon. Default dp.SpendUniform{}.
	Spend dp.SpendStrategy
	// WarmStart seeds each window's iteration-0 centroids with the
	// previous window's disclosed result instead of Base's initial
	// centroids. Only already-public data crosses the window boundary,
	// and only the starting centroids change — the per-window
	// determinism contracts are untouched.
	WarmStart bool
	// Engine selects the per-window execution engine.
	Engine SessionEngine
}

// WindowResult is the outcome of one RunSession.Advance.
type WindowResult struct {
	// Window is the 0-based window index.
	Window int
	// EpsilonDrawn is the budget reserved for this window (0 when
	// skipped); the ledger settles it down to the actually disclosed
	// amount when the window converges early.
	EpsilonDrawn float64
	// Skipped marks a window the spend strategy elected not to
	// re-cluster: Trace is nil and Centroids carry the previous
	// window's disclosure forward.
	Skipped bool
	// WarmStarted reports whether this window's iteration 0 started
	// from the previous window's disclosed centroids.
	WarmStarted bool
	// Trace is the full per-window run trace (nil when skipped). Its
	// operation counts are per-window deltas even though the session
	// reuses one suite across windows.
	Trace *Trace
	// Centroids are the window's disclosed final centroids.
	Centroids [][]float64
	// Drift is the maximum centroid displacement between this window's
	// disclosure and the previous one (NaN for the first window).
	Drift float64
	// Ledger is the longitudinal budget position after this window.
	Ledger dp.LedgerReport
}

// RunSession is a resumable clustering session over an evolving
// population: the core tentpole of the streaming refactor. It owns the
// flat series arena (advanced in place between windows), the cipher
// suite, and the longitudinal dp.Ledger; each Advance slides the window
// (optionally), draws budget, and executes one full protocol run.
//
// Determinism: window w of a session is bit-identical to a one-shot run
// over the same (slid) data with the same drawn epsilon, the derived
// window seed, and — under WarmStart — the previous window's disclosure
// as initial centroids. In particular SessionSequential and
// SessionSharded sessions disclose bit-identical trajectories at any
// worker count, window by window.
type RunSession struct {
	base    Params // defaulted; Epsilon stays zero between windows
	planned int
	warm    bool
	engine  SessionEngine
	spend   dp.SpendStrategy
	ledger  *dp.Ledger
	series  *vecpool.Matrix
	suite   CipherSuite
	n, dim  int

	// shared marks a cohort session: the series arena belongs to the
	// cohort scheduler (which advances it once for all cohorts), so
	// Advance refuses newPoints.
	shared bool

	window int
	skips  int
	prev   [][]float64 // last disclosed centroids (warm-start seed)
	drift  float64     // disclosed drift between the last two windows
	closed bool
}

// sessionSeedStride decorrelates per-window seeds: window w runs at
// Base.Seed ^ (w · stride). The odd 64-bit constant (2⁶⁴/φ) spreads
// consecutive windows across the seed space; window 0 keeps Base.Seed
// itself, so a cold session's first window is bit-identical to a
// one-shot run at the session's base configuration.
const sessionSeedStride = -0x61c8864680b583eb // 0x9E3779B97F4A7C15 as int64

func sessionWindowSeed(base int64, window int) int64 {
	return base ^ (int64(window) * sessionSeedStride)
}

// NewRunSession validates the configuration, range-checks and flattens
// the population's series into the session arena, and builds the suite
// the windows will share. Close the session to release it.
func NewRunSession(data [][]float64, sp SessionParams) (*RunSession, error) {
	if len(data) < 2 {
		return nil, errors.New("core: need at least 2 participants")
	}
	mat, err := vecpool.FromRows(data)
	if err != nil {
		return nil, err
	}
	return newRunSession(mat, sp, false)
}

// NewSharedRunSession builds a session over a series arena owned by
// someone else — the cohort scheduler, which advances one shared
// population for many sessions. The session reads the arena but never
// slides it: Advance(newPoints) with non-nil points is refused.
func NewSharedRunSession(mat *vecpool.Matrix, sp SessionParams) (*RunSession, error) {
	return newRunSession(mat, sp, true)
}

func newRunSession(mat *vecpool.Matrix, sp SessionParams, shared bool) (*RunSession, error) {
	n, dim := mat.NumRows(), mat.Cols()
	if n < 2 {
		return nil, errors.New("core: need at least 2 participants")
	}
	if sp.Base.Epsilon != 0 {
		return nil, errors.New("core: session windows draw epsilon from the lifetime budget — leave Params.Epsilon zero")
	}
	if sp.LifetimeEpsilon <= 0 {
		return nil, fmt.Errorf("core: lifetime epsilon %v must be positive", sp.LifetimeEpsilon)
	}
	if sp.Windows < 0 {
		return nil, fmt.Errorf("core: planned windows %d must be non-negative", sp.Windows)
	}
	if sp.Engine != SessionSequential && sp.Engine != SessionSharded {
		return nil, fmt.Errorf("core: unknown session engine %d", sp.Engine)
	}
	if !sp.Base.Faults.Empty() {
		return nil, errors.New("core: fault plans are not supported in streaming sessions yet")
	}
	if sp.Base.ChurnCrashProb != 0 || sp.Base.ChurnRejoinProb != 0 {
		return nil, errors.New("core: churn is not supported in streaming sessions yet")
	}
	base := sp.Base.withDefaults(n)
	// Validate the per-window shape once, with a placeholder epsilon
	// (the real one is drawn per window and is positive by the ledger's
	// construction).
	probe := base
	probe.Epsilon = 1
	if err := probe.validate(n, dim); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for t, v := range mat.Row(i) {
			if v < -1e-9 || v > base.MaxValue+1e-9 {
				return nil, fmt.Errorf("core: participant %d value %v at %d outside [0, %v] — normalize first", i, v, t, base.MaxValue)
			}
		}
	}
	planned := sp.Windows
	if planned == 0 {
		planned = 8
	}
	spend := sp.Spend
	if spend == nil {
		spend = dp.SpendUniform{}
	}
	ledger, err := dp.NewLedger(sp.LifetimeEpsilon)
	if err != nil {
		return nil, err
	}
	// Build the shared suite once, exactly as prepareRunOn would for the
	// first window: every window re-binds it instead of re-keying.
	suite, err := buildSuite(base, n)
	if err != nil {
		return nil, err
	}
	return &RunSession{
		base:    base,
		planned: planned,
		warm:    sp.WarmStart,
		engine:  sp.Engine,
		spend:   spend,
		ledger:  ledger,
		series:  mat,
		suite:   suite,
		n:       n,
		dim:     dim,
		shared:  shared,
		drift:   math.NaN(),
	}, nil
}

// buildSuite constructs the cipher suite for a defaulted Params — the
// same precedence order as prepareRunOn's fresh-suite path.
func buildSuite(p Params, n int) (CipherSuite, error) {
	switch {
	case p.Backend == BackendDamgardJurik && p.DJMaterial != nil:
		return NewDamgardJurikSuiteFromMaterial(p.DJMaterial)
	case p.Backend == BackendDamgardJurik && p.DKG:
		return NewDamgardJurikDKGSuite(p.ModulusBits, p.Degree, n, p.DecryptThreshold, p.Seed, p.Faults)
	case p.Backend == BackendDamgardJurik:
		return NewDamgardJurikSuite(p.ModulusBits, p.Degree, n, p.DecryptThreshold)
	default:
		return NewPlainSuite(p.ModulusBits, p.Degree, n, p.DecryptThreshold)
	}
}

// Window returns the index of the next window Advance would run.
func (s *RunSession) Window() int { return s.window }

// Ledger returns the session's longitudinal budget ledger.
func (s *RunSession) Ledger() *dp.Ledger { return s.ledger }

// LastCentroids returns the most recent disclosed centroids (nil before
// the first window), as a deep copy.
func (s *RunSession) LastCentroids() [][]float64 {
	if s.prev == nil {
		return nil
	}
	return deepCopyMatrix(s.prev)
}

// SetSpend switches the spend strategy mid-stream (tightening the
// budget discipline of a long-lived session is an operational need, not
// a restart). The ledger — and everything already spent — carries over.
func (s *RunSession) SetSpend(strategy dp.SpendStrategy) error {
	if strategy == nil {
		return errors.New("core: nil spend strategy")
	}
	s.spend = strategy
	return nil
}

// Close releases the session's suite resources. Further Advance calls
// are refused.
func (s *RunSession) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if c, ok := s.suite.(interface{ Close() }); ok {
		c.Close()
	}
}

// AdvanceWindow slides the population's series by one window step
// without running a clustering: each participant's oldest samples are
// evicted and newPoints[i] lands at its tail (all rows the same width,
// between 1 and the series dimension, values in [0, MaxValue]). Advance
// with non-nil points does this automatically; the separate entry point
// exists for callers that interleave several slides per clustering.
func (s *RunSession) AdvanceWindow(newPoints [][]float64) error {
	if s.closed {
		return errors.New("core: session is closed")
	}
	if s.shared {
		return errors.New("core: shared-population session — the cohort scheduler advances the window")
	}
	if len(newPoints) != s.n {
		return fmt.Errorf("core: window advance has %d series, population is %d", len(newPoints), s.n)
	}
	w := len(newPoints[0])
	if w < 1 || w > s.dim {
		return fmt.Errorf("core: window advance width %d outside [1, %d]", w, s.dim)
	}
	for i, row := range newPoints {
		if len(row) != w {
			return fmt.Errorf("core: ragged window advance — series %d has %d samples, want %d", i, len(row), w)
		}
		for t, v := range row {
			if v < -1e-9 || v > s.base.MaxValue+1e-9 {
				return fmt.Errorf("core: series %d new value %v at %d outside [0, %v] — normalize first", i, v, t, s.base.MaxValue)
			}
		}
	}
	for i, row := range newPoints {
		if err := s.series.SlideRow(i, row); err != nil {
			return err
		}
	}
	return nil
}

// Advance runs the next streaming window: slide the population by
// newPoints (nil re-clusters the current window), let the spend
// strategy draw this window's epsilon from the lifetime ledger (or
// skip), and execute one full protocol run — warm-started from the
// previous disclosure when the session is configured for it. A session
// whose lifetime budget cannot fund the window refuses with
// dp.ErrBudgetExhausted; the session stays usable (a later strategy
// switch cannot conjure budget back, but skip-capable strategies may
// still skip).
func (s *RunSession) Advance(newPoints [][]float64) (*WindowResult, error) {
	if s.closed {
		return nil, errors.New("core: session is closed")
	}
	if newPoints != nil {
		if err := s.AdvanceWindow(newPoints); err != nil {
			return nil, err
		}
	}

	dec, err := s.spend.Decide(dp.SpendState{
		Remaining:        s.ledger.Remaining(),
		Window:           s.window,
		PlannedWindows:   s.planned,
		Drift:            s.drift,
		ConsecutiveSkips: s.skips,
	})
	if err != nil {
		return nil, fmt.Errorf("core: spend strategy: %w", err)
	}
	if dec.Skip {
		if s.prev == nil {
			return nil, errors.New("core: spend strategy skipped the first window — nothing disclosed yet to carry forward")
		}
		s.ledger.RecordSkip(s.window)
		res := &WindowResult{
			Window:    s.window,
			Skipped:   true,
			Centroids: deepCopyMatrix(s.prev),
			Drift:     s.drift,
			Ledger:    s.ledger.Report(),
		}
		s.window++
		s.skips++
		return res, nil
	}
	// A draw at (or below) floating-point dust of the lifetime budget
	// means the ledger is exhausted for any useful disclosure: hard
	// refusal, in error text and in behaviour.
	if dec.Epsilon <= s.ledger.Lifetime()*1e-9 {
		return nil, fmt.Errorf("%w: window %d — lifetime budget %.6g has %.6g left",
			dp.ErrBudgetExhausted, s.window, s.ledger.Lifetime(), s.ledger.Remaining())
	}

	wp := s.base
	wp.Epsilon = dec.Epsilon
	wp.Seed = sessionWindowSeed(s.base.Seed, s.window)
	warmed := false
	if s.warm && s.prev != nil {
		wp.InitialCentroids = s.prev
		warmed = true
	}
	// Snapshot the shared suite's cumulative counters so the window's
	// trace reports per-window operation deltas — identical to what a
	// one-shot run over the same window would count. Taken before setup:
	// the cipher-ring probe encrypt inside prepareRunOn belongs to the
	// window, exactly as it does on a fresh suite.
	opsBefore := s.suite.Counts()
	rs, err := prepareRunOn(s.series, wp, s.suite)
	if err != nil {
		return nil, err
	}
	defer rs.close() // no-op for the session-owned suite, kept for symmetry
	if err := s.ledger.Draw(s.window, dec.Epsilon); err != nil {
		return nil, err
	}
	workers := 1
	if s.engine == SessionSharded {
		workers = s.base.Workers
		if workers == 0 {
			workers = runtime.GOMAXPROCS(0)
		}
	}
	d, err := newCycleDriver(s.series.Rows(), rs, workers, 0)
	if err != nil {
		return nil, err
	}
	tr, err := d.run()
	if err != nil {
		// The draw stays on the ledger: a window that failed mid-run may
		// already have disclosed iterations, so refunding would
		// under-count the longitudinal spend.
		return nil, err
	}
	tr.Ops = opCountsMinus(tr.Ops, opsBefore)
	s.ledger.Settle(s.window, tr.Privacy.SpentEpsilon)

	drift := math.NaN()
	if s.prev != nil {
		drift = maxDisplacement(s.prev, tr.FinalCentroids)
	}
	res := &WindowResult{
		Window:       s.window,
		EpsilonDrawn: dec.Epsilon,
		WarmStarted:  warmed,
		Trace:        tr,
		Centroids:    deepCopyMatrix(tr.FinalCentroids),
		Drift:        drift,
		Ledger:       s.ledger.Report(),
	}
	s.prev = deepCopyMatrix(tr.FinalCentroids)
	s.drift = drift
	s.window++
	s.skips = 0
	return res, nil
}

// opCountsMinus returns the field-wise difference a − b: the per-window
// slice of a session-cumulative counter snapshot.
func opCountsMinus(a, b OpCounts) OpCounts {
	a.Encrypts -= b.Encrypts
	a.Adds -= b.Adds
	a.Halvings -= b.Halvings
	a.PartialDecrypts -= b.PartialDecrypts
	a.Combines -= b.Combines
	a.CombineCtxHits -= b.CombineCtxHits
	a.PartialCacheHits -= b.PartialCacheHits
	return a
}
