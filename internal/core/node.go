package core

import (
	"errors"
	"fmt"
	"hash/fnv"

	"chiaroscuro/internal/p2p"
)

// Node is one Chiaroscuro participant packaged for an external
// execution environment — the seam the networked daemon
// (internal/transport) drives. Every daemon process constructs the
// identical runSetup from the shared (data, params) configuration and
// then steps only its own participant; the transport's epoch clock
// supplies the Env. Because the participant logic, the RNG derivation
// and the peer sampler are byte-for-byte the ones the in-process
// engines use, a fault-free networked run discloses the exact
// trajectory the sequential engine discloses at the same seed — the
// property the conformance harness asserts.
type Node struct {
	rs    *runSetup
	pt    *participant
	codec suiteWireCodec
}

// NewNode builds the participant with the given id for a networked run
// over the full population's data. All processes must pass identical
// (data, params); Fingerprint lets the transport handshake detect when
// they did not.
//
// Networked runs are the determinism-contract configuration: no churn
// and no fault plan (fault injection lives in the simulation engines,
// where a global scheduler exists to replay it), and a cipher suite
// whose artifacts are wire-portable — the accounted plain backend, or
// the Damgård–Jurik backend keyed by a distributed key ceremony: the
// transport runs the DKG over the mesh before the first epoch and hands
// each process its own share as Params.DJMaterial, so no daemon ever
// holds the dealer-side key.
func NewNode(data [][]float64, params Params, id int) (*Node, error) {
	if id < 0 || id >= len(data) {
		return nil, fmt.Errorf("core: node id %d outside population [0, %d)", id, len(data))
	}
	if !params.Faults.Empty() {
		return nil, errors.New("core: networked runs do not support fault plans")
	}
	if params.ChurnCrashProb != 0 || params.ChurnRejoinProb != 0 {
		return nil, errors.New("core: networked runs do not support churn")
	}
	if params.Backend == BackendDamgardJurik && params.DJMaterial == nil {
		return nil, errors.New("core: Damgård–Jurik daemons must run the key ceremony first (Params.DJMaterial)")
	}
	rs, err := prepareRun(data, params)
	if err != nil {
		return nil, err
	}
	codec, ok := rs.suite.(suiteWireCodec)
	if !ok {
		rs.close()
		return nil, fmt.Errorf("core: backend %q has no wire codec", rs.suite.Name())
	}
	return &Node{rs: rs, pt: rs.newParticipant(p2p.NodeID(id)), codec: codec}, nil
}

// ID returns the node's participant id.
func (nd *Node) ID() int { return int(nd.pt.id) }

// Population returns the run's population size.
func (nd *Node) Population() int { return nd.pt.run.population }

// Step runs one protocol activation against the given environment.
func (nd *Node) Step(env Env) { nd.pt.step(env) }

// Done reports whether the participant has terminated (converged or
// exhausted its iteration schedule). A done participant still answers
// decryption requests when stepped, so the transport keeps stepping it
// until every peer is done too.
func (nd *Node) Done() bool { return nd.pt.phase == phaseDone }

// History returns the participant's per-iteration disclosures — the
// trajectory the conformance harness compares bit-for-bit against the
// sequential engine's.
func (nd *Node) History() []IterationResult { return nd.pt.history }

// MaxCycles returns the engine's cycle bound for this configuration:
// the networked run uses the same bound as the simulation, so a wedged
// mesh terminates instead of spinning.
func (nd *Node) MaxCycles() int {
	p := nd.rs.p
	return 2*p.Iterations*(3+p.GossipRounds+p.DecryptWindow) + 100
}

// SamplingSeed returns the seed the peer sampler must use: the
// simulation engine seeds its network at Params.Seed+1, so the
// transport's p2p.NewSampler(SamplingSeed(), id, n) reproduces the
// engine's per-node draw streams.
func (nd *Node) SamplingSeed() int64 { return nd.rs.p.Seed + 1 }

// Fingerprint digests the run configuration every process must agree
// on — defaulted parameters, population and dimensionality — so the
// transport handshake can reject a peer built from a different
// configuration instead of silently diverging.
func (nd *Node) Fingerprint() uint64 {
	return fingerprint(nd.rs.p, nd.pt.run.population, nd.pt.run.dim, nd.rs.initial)
}

// fingerprint is the digest behind Node.Fingerprint and
// ConfigFingerprint, over a defaulted Params. Key material is
// deliberately absent: the ceremony runs after the handshake, derived
// from the digested (seed, backend, modulus) configuration.
func fingerprint(p Params, population, dim int, initial [][]float64) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "chiaroscuro|n=%d|dim=%d|k=%d|eps=%b|iters=%d|conv=%b|rounds=%d|thresh=%d|window=%d|backend=%d|modbits=%d|degree=%d|frac=%d|strategy=%T|smoothing=%+v|inertia=%t|istop=%b|seed=%d|packed=%t|max=%b|dkg=%t",
		population, dim, p.K, p.Epsilon, p.Iterations,
		p.ConvergeThreshold, p.GossipRounds, p.DecryptThreshold, p.DecryptWindow,
		p.Backend, p.ModulusBits, p.Degree, p.FracBits, p.Strategy, p.Smoothing,
		p.TrackInertia, p.InertiaStopThreshold, p.Seed, p.Packed, p.MaxValue, p.DKG)
	for _, row := range initial {
		for _, v := range row {
			fmt.Fprintf(h, "|%b", v)
		}
	}
	return h.Sum64()
}

// ConfigFingerprint computes Node.Fingerprint's digest from the raw
// (data, params) configuration without constructing a suite or a
// participant. The transport uses it to handshake the mesh BEFORE the
// key ceremony — so mismatched processes are rejected while the run is
// still keyless — and the digest is guaranteed equal to the one the
// Node built from the same configuration reports afterwards.
func ConfigFingerprint(data [][]float64, params Params) (uint64, error) {
	n := len(data)
	if n < 2 {
		return 0, errors.New("core: need at least 2 participants")
	}
	dim := len(data[0])
	p := params.withDefaults(n)
	if err := p.validate(n, dim); err != nil {
		return 0, err
	}
	return fingerprint(p, n, dim, initialCentroids(p, dim)), nil
}

// Close releases suite-held resources.
func (nd *Node) Close() { nd.rs.close() }

// RunSequentialHistories runs the sequential reference engine and
// returns, alongside the trace, every participant's private
// per-iteration history. The conformance harness needs the
// per-participant view (assignments, displacement readings and
// completion cycles differ node by node) — the Trace only carries the
// population-level disclosure.
func RunSequentialHistories(data [][]float64, params Params) (*Trace, [][]IterationResult, error) {
	rs, err := prepareRun(data, params)
	if err != nil {
		return nil, nil, err
	}
	defer rs.close()
	d, err := newCycleDriver(data, rs, 1, 0)
	if err != nil {
		return nil, nil, err
	}
	trace, err := d.run()
	if err != nil {
		return nil, nil, err
	}
	histories := make([][]IterationResult, len(d.participants))
	for i, pt := range d.participants {
		histories[i] = pt.history
	}
	return trace, histories, nil
}
