// Package core implements the Chiaroscuro protocol itself: the Diptych
// data structure and the iterative execution sequence of Sec. II.B —
// local assignment over perturbed cleartext centroids, distributed
// computation of the encrypted means and encrypted Laplace noise by
// gossip, collaborative (threshold) decryption of the perturbed means,
// and the local convergence step — plus the quality-enhancing heuristics
// (privacy-budget distribution and smoothing of perturbed means).
//
// The protocol code is written against the CipherSuite interface, with
// two interchangeable backends:
//
//   - the real Damgård–Jurik backend (suite_dj.go), running genuine
//     homomorphic arithmetic and threshold decryptions;
//   - the accounted plaintext backend (suite_plain.go), which executes
//     bit-identical ring arithmetic on plaintext residues while counting
//     every operation, mirroring the demonstration platform: "we disable
//     the homomorphic operations ... the performance overhead ... is
//     clearly displayed ... based on actual average measures performed
//     beforehand" (Sec. III.B).
package core

import (
	"math/big"
)

// Cipher is an opaque encrypted (or accounted-plaintext) ring element.
type Cipher interface{}

// Partial is one party's contribution to a collaborative decryption.
type Partial struct {
	// Index is the 1-based key-share index of the contributing party.
	Index int
	// Value is backend-specific.
	Value *big.Int
}

// OpCounts tallies homomorphic operations, the basis of the cost
// projection in the accounted backend.
type OpCounts struct {
	Encrypts        int64
	Adds            int64
	Halvings        int64
	PartialDecrypts int64
	Combines        int64
	// CombineCtxHits counts responder-set combine plans served from the
	// suite's cache instead of being rebuilt (Damgård–Jurik backend; the
	// accounted backend has no plan to cache).
	CombineCtxHits int64
	// PartialCacheHits counts decrypt requests a responder served from
	// its memoized per-(iteration, cipher-set) partials instead of
	// recomputing them (summed across participants by buildTrace).
	PartialCacheHits int64
}

// columnCombiner is the optional CipherSuite extension behind the
// decrypt-phase fast path: open a whole pending-cipher vector against
// one responder set, resolving the set (validation, Lagrange/multiexp
// plan on the real backend) once instead of per ciphertext. sets[j] is
// responder j's per-cipher partials — all carrying sets[j][0].Index —
// ordered ascending by share index across j; count is the common cipher
// count. Results and operation counts are identical to count separate
// Combine calls over the per-cipher columns.
type columnCombiner interface {
	CombineColumns(sets [][]Partial, count int) ([]*big.Int, error)
}

// cipherValidator is the optional CipherSuite extension behind the wire
// hardening: ValidateCipher rejects values that are not well-formed
// ciphertexts of the suite (foreign types, out-of-ring residues,
// out-of-range group elements) without touching any homomorphic state.
// Byzantine fault plans (internal/simnet) enable per-message validation
// of incoming gossip through it.
type cipherValidator interface {
	ValidateCipher(c Cipher) error
}

// CipherSuite is the encryption abstraction Chiaroscuro needs
// (Sec. II.A): semantic security is the backend's concern; additive
// homomorphism and collaborative decryption by any sufficiently large
// subset are expressed in the interface.
type CipherSuite interface {
	// Name identifies the backend in logs and experiment tables.
	Name() string
	// PlainModulus returns the plaintext ring modulus M (a fresh copy).
	PlainModulus() *big.Int
	// CipherBytes is the serialized size of one Cipher, for accounting.
	CipherBytes() int

	// Encrypt maps a plaintext residue (0 <= m < M) to a fresh Cipher.
	Encrypt(m *big.Int) (Cipher, error)
	// Add returns a Cipher of the sum of the two plaintexts.
	Add(a, b Cipher) (Cipher, error)
	// Halve returns a Cipher of the plaintext multiplied by 2^{-1} mod M
	// (the gossip halving primitive).
	Halve(c Cipher) (Cipher, error)

	// Parties and Threshold describe the key sharing: Threshold distinct
	// partial decryptions open a ciphertext.
	Parties() int
	Threshold() int
	// PartialDecrypt produces party's contribution for c. party is the
	// 1-based key-share index.
	PartialDecrypt(party int, c Cipher) (Partial, error)
	// Combine opens a ciphertext from at least Threshold distinct
	// partials (all for the same ciphertext).
	Combine(parts []Partial) (*big.Int, error)

	// Counts returns a snapshot of the operation counters.
	Counts() OpCounts
}
