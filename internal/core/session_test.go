package core

import (
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"chiaroscuro/internal/dp"
)

// streamFeed builds a deterministic drifting population for streaming
// tests: participant i's full series over dim+windows·slide samples
// follows its blob's slow sinusoidal drift, so successive windows move
// gently — the regime warm-starting is designed for. Returns the initial
// window rows plus the per-window slide batches; the window-w data is
// full[i][w·slide : w·slide+dim].
func streamFeed(n, dim, windows, slide, nblobs int) (initial [][]float64, steps [][][]float64, full [][]float64) {
	total := dim + windows*slide
	full = make([][]float64, n)
	for i := range full {
		base := 0.15 + 0.7*float64(i%nblobs)/float64(nblobs)
		phase := float64(i%7) / 7
		s := make([]float64, total)
		for t := range s {
			v := base +
				0.06*math.Sin(2*math.Pi*(float64(t)/float64(total)+phase)) +
				0.02*float64((i*7+t*3)%5-2)/5
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			s[t] = v
		}
		full[i] = s
	}
	initial = make([][]float64, n)
	for i := range initial {
		initial[i] = append([]float64(nil), full[i][:dim]...)
	}
	steps = make([][][]float64, windows)
	for w := range steps {
		steps[w] = make([][]float64, n)
		for i := range steps[w] {
			steps[w][i] = append([]float64(nil), full[i][dim+w*slide:dim+(w+1)*slide]...)
		}
	}
	return initial, steps, full
}

// streamBase is the shared per-window shape of the streaming tests.
func streamBase() Params {
	return Params{K: 3, Iterations: 2, Seed: 41, GossipRounds: 10, DecryptThreshold: 4}
}

// assertWindowsBitIdentical compares two window results field by field,
// including the per-window trace.
func assertWindowsBitIdentical(t *testing.T, a, b *WindowResult, label string) {
	t.Helper()
	if a.Window != b.Window || a.Skipped != b.Skipped || a.WarmStarted != b.WarmStarted {
		t.Fatalf("%s: header mismatch: %+v vs %+v", label, a, b)
	}
	if a.EpsilonDrawn != b.EpsilonDrawn {
		t.Fatalf("%s: drawn epsilon %v vs %v", label, a.EpsilonDrawn, b.EpsilonDrawn)
	}
	bothNaN := math.IsNaN(a.Drift) && math.IsNaN(b.Drift)
	if !bothNaN && a.Drift != b.Drift {
		t.Fatalf("%s: drift %v vs %v", label, a.Drift, b.Drift)
	}
	if a.Ledger != b.Ledger {
		t.Fatalf("%s: ledger %+v vs %+v", label, a.Ledger, b.Ledger)
	}
	for j := range a.Centroids {
		for tt := range a.Centroids[j] {
			if a.Centroids[j][tt] != b.Centroids[j][tt] {
				t.Fatalf("%s: centroid %d[%d]: %v vs %v", label, j, tt, a.Centroids[j][tt], b.Centroids[j][tt])
			}
		}
	}
	if (a.Trace == nil) != (b.Trace == nil) {
		t.Fatalf("%s: one side has a trace, the other does not", label)
	}
	if a.Trace != nil {
		assertTracesBitIdentical(t, a.Trace, b.Trace, label)
		if a.Trace.Ops != b.Trace.Ops {
			t.Fatalf("%s: ops %+v vs %+v", label, a.Trace.Ops, b.Trace.Ops)
		}
		if a.Trace.Privacy != b.Trace.Privacy {
			t.Fatalf("%s: privacy %+v vs %+v", label, a.Trace.Privacy, b.Trace.Privacy)
		}
	}
}

const streamGoldenPath = "testdata/golden_stream.json"

// TestStreamGoldenTrajectories is the streaming golden test: an 8-window
// warm-start session must (a) disclose bit-identical trajectories under
// the sequential and the sharded engine at any worker count, window by
// window — the determinism contract survives the session refactor — and
// (b) match the committed fixture bit for bit, so a refactor anywhere in
// the stack cannot silently change what a stream discloses.
//
// Regenerate the fixture after an intentional disclosure change with:
//
//	go test ./internal/core -run Golden -update-golden
func TestStreamGoldenTrajectories(t *testing.T) {
	const windows, slide = 8, 2
	initial, steps, _ := streamFeed(48, 6, windows, slide, 3)

	runStream := func(engine SessionEngine, workers int) []*WindowResult {
		t.Helper()
		base := streamBase()
		base.Workers = workers
		s, err := NewRunSession(initial, SessionParams{
			Base:            base,
			LifetimeEpsilon: 160,
			Windows:         windows,
			WarmStart:       true,
			Engine:          engine,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		out := make([]*WindowResult, 0, windows)
		for w := 0; w < windows; w++ {
			var pts [][]float64
			if w > 0 {
				pts = steps[w-1]
			}
			res, err := s.Advance(pts)
			if err != nil {
				t.Fatalf("window %d: %v", w, err)
			}
			out = append(out, res)
		}
		return out
	}

	seq := runStream(SessionSequential, 0)
	for _, workers := range []int{1, 3, 7, 16} {
		sh := runStream(SessionSharded, workers)
		for w := range seq {
			assertWindowsBitIdentical(t, seq[w], sh[w],
				"sharded("+string(rune('0'+workers))+") window "+string(rune('0'+w)))
		}
	}

	// Warm-start must actually engage: every window after the first
	// starts from the previous disclosure.
	for w, res := range seq {
		if got, want := res.WarmStarted, w > 0; got != want {
			t.Fatalf("window %d: WarmStarted = %v, want %v", w, got, want)
		}
	}

	var got []goldenRun
	for _, res := range seq {
		got = append(got, goldenFromTrace("stream-window", res.Trace))
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(streamGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(streamGoldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d windows", streamGoldenPath, len(got))
		return
	}
	buf, err := os.ReadFile(streamGoldenPath)
	if err != nil {
		t.Fatalf("missing fixture (run with -update-golden to create): %v", err)
	}
	var want []goldenRun
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("fixture has %d windows, produced %d (regenerate with -update-golden)", len(want), len(got))
	}
	for i := range want {
		if err := diffGolden(want[i], got[i]); err != nil {
			t.Errorf("window %d: disclosed trajectory changed: %v\n(if intentional, regenerate with -update-golden)", i, err)
		}
	}
}

// TestStreamWarmStartEquivalence pins the warm-start contract: window w
// of a warm-started session is bit-identical to a ONE-SHOT run over the
// same slid data whose only deviations from the session's base are the
// derived window seed, the drawn epsilon, and the previous window's
// disclosed centroids as the starting ones. Warm-start changes which
// centroids iteration 0 starts from — nothing else — and the reused
// session suite leaks no state into trajectories or accounting.
func TestStreamWarmStartEquivalence(t *testing.T) {
	const windows, slide, dim = 4, 2, 6
	initial, steps, full := streamFeed(40, dim, windows, slide, 3)

	s, err := NewRunSession(initial, SessionParams{
		Base:            streamBase(),
		LifetimeEpsilon: 80,
		Windows:         windows,
		WarmStart:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var prevDisclosed [][]float64
	for w := 0; w < windows; w++ {
		var pts [][]float64
		if w > 0 {
			pts = steps[w-1]
		}
		res, err := s.Advance(pts)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}

		// The one-shot oracle: same slid data, derived seed, drawn
		// epsilon; warm windows additionally start from the previous
		// disclosure.
		data := make([][]float64, len(full))
		for i := range data {
			data[i] = append([]float64(nil), full[i][w*slide:w*slide+dim]...)
		}
		wp := streamBase()
		wp.Epsilon = res.EpsilonDrawn
		wp.Seed = sessionWindowSeed(streamBase().Seed, w)
		if w > 0 {
			wp.InitialCentroids = prevDisclosed
		}
		oracle, err := Run(data, wp)
		if err != nil {
			t.Fatalf("oracle window %d: %v", w, err)
		}
		assertTracesBitIdentical(t, res.Trace, oracle, "window vs one-shot")
		if res.Trace.Ops != oracle.Ops {
			t.Fatalf("window %d: session ops %+v vs one-shot %+v (suite reuse leaked state)", w, res.Trace.Ops, oracle.Ops)
		}
		if res.Trace.Privacy != oracle.Privacy {
			t.Fatalf("window %d: privacy %+v vs %+v", w, res.Trace.Privacy, oracle.Privacy)
		}
		prevDisclosed = deepCopyMatrix(oracle.FinalCentroids)
	}
}

// TestStreamBudgetExhaustionRefusal is the hard refusal path: a uniform
// spend over the planning horizon exhausts the lifetime budget exactly,
// and the window after the horizon is refused with ErrBudgetExhausted.
func TestStreamBudgetExhaustionRefusal(t *testing.T) {
	initial, steps, _ := streamFeed(24, 4, 3, 1, 2)
	base := Params{K: 2, Iterations: 2, Seed: 7, GossipRounds: 8, DecryptThreshold: 3}
	s, err := NewRunSession(initial, SessionParams{
		Base:            base,
		LifetimeEpsilon: 40,
		Windows:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for w := 0; w < 2; w++ {
		var pts [][]float64
		if w > 0 {
			pts = steps[w-1]
		}
		res, err := s.Advance(pts)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		if math.Abs(res.EpsilonDrawn-20) > 1e-9 {
			t.Fatalf("window %d drew %v, want 20", w, res.EpsilonDrawn)
		}
	}
	if _, err := s.Advance(steps[1]); !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Fatalf("past-horizon window: err = %v, want ErrBudgetExhausted", err)
	}
	// The refusal is stable: the session did not wedge or spend.
	rep := s.Ledger().Report()
	if rep.Windows != 2 || rep.Remaining > 40*1e-9 {
		t.Fatalf("ledger after refusal: %+v", rep)
	}
	if _, err := s.Advance(nil); !errors.Is(err, dp.ErrBudgetExhausted) {
		t.Fatalf("repeat refusal: err = %v", err)
	}
}

// TestStreamThresholdSkipsAndForcedRecluster drives the drift-triggered
// strategy: with a drift bound far above anything the data produces,
// every window after the first is skipped (previous centroids carried
// forward, nothing spent) until MaxSkips forces a re-cluster.
func TestStreamThresholdSkipsAndForcedRecluster(t *testing.T) {
	const windows = 6
	initial, steps, _ := streamFeed(24, 4, windows, 1, 2)
	base := Params{K: 2, Iterations: 2, Seed: 7, GossipRounds: 8, DecryptThreshold: 3}
	s, err := NewRunSession(initial, SessionParams{
		Base:            base,
		LifetimeEpsilon: 120,
		Windows:         windows,
		WarmStart:       true,
		Spend:           dp.SpendThreshold{Drift: 10, MaxSkips: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var results []*WindowResult
	for w := 0; w < windows; w++ {
		var pts [][]float64
		if w > 0 {
			pts = steps[w-1]
		}
		res, err := s.Advance(pts)
		if err != nil {
			t.Fatalf("window %d: %v", w, err)
		}
		results = append(results, res)
	}
	// w0 and w1 run (the drift signal needs two disclosures), w2–w3 skip
	// under the generous bound, w4 is the MaxSkips-forced re-cluster,
	// w5 skips again.
	wantSkips := []bool{false, false, true, true, false, true}
	for w, res := range results {
		if res.Skipped != wantSkips[w] {
			t.Fatalf("window %d: skipped = %v, want %v", w, res.Skipped, wantSkips[w])
		}
	}
	// Skipped windows carry the previous disclosure forward bit for bit
	// and spend nothing.
	for j := range results[1].Centroids {
		for tt := range results[1].Centroids[j] {
			if results[2].Centroids[j][tt] != results[1].Centroids[j][tt] {
				t.Fatal("skipped window must carry the previous centroids forward")
			}
		}
	}
	rep := s.Ledger().Report()
	if rep.Windows != 3 || rep.Skips != 3 {
		t.Fatalf("ledger = %+v, want 3 windows / 3 skips", rep)
	}
	if results[2].EpsilonDrawn != 0 {
		t.Fatalf("skipped window drew %v, want 0", results[2].EpsilonDrawn)
	}
}

// TestStreamStrategySwitchMidStream covers the operational path of
// tightening the budget discipline on a live session: the switch keeps
// the ledger, and a twin session making the identical switch discloses
// bit-identical windows (strategy switching is part of the deterministic
// surface).
func TestStreamStrategySwitchMidStream(t *testing.T) {
	const windows = 4
	initial, steps, _ := streamFeed(24, 4, windows, 1, 2)
	base := Params{K: 2, Iterations: 2, Seed: 7, GossipRounds: 8, DecryptThreshold: 3}

	run := func() []*WindowResult {
		t.Helper()
		s, err := NewRunSession(initial, SessionParams{
			Base:            base,
			LifetimeEpsilon: 80,
			Windows:         8,
			WarmStart:       true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var out []*WindowResult
		for w := 0; w < windows; w++ {
			if w == 2 {
				if err := s.SetSpend(dp.SpendDecaying{Factor: 0.5}); err != nil {
					t.Fatal(err)
				}
			}
			var pts [][]float64
			if w > 0 {
				pts = steps[w-1]
			}
			res, err := s.Advance(pts)
			if err != nil {
				t.Fatalf("window %d: %v", w, err)
			}
			out = append(out, res)
		}
		return out
	}

	a, b := run(), run()
	for w := range a {
		assertWindowsBitIdentical(t, a[w], b[w], "strategy-switch twin")
	}
	// Uniform over 8 planned windows draws 10, 10; decaying then halves
	// what remains of the 80 budget.
	if math.Abs(a[0].EpsilonDrawn-10) > 1e-9 || math.Abs(a[1].EpsilonDrawn-10) > 1e-9 {
		t.Fatalf("uniform phase drew %v, %v, want 10, 10", a[0].EpsilonDrawn, a[1].EpsilonDrawn)
	}
	if math.Abs(a[2].EpsilonDrawn-30) > 1e-9 {
		t.Fatalf("decaying phase drew %v, want 30 (half of the remaining 60)", a[2].EpsilonDrawn)
	}
	if err := func() error {
		s, err := NewRunSession(initial, SessionParams{Base: base, LifetimeEpsilon: 10})
		if err != nil {
			return err
		}
		defer s.Close()
		return s.SetSpend(nil)
	}(); err == nil {
		t.Fatal("SetSpend(nil) must fail")
	}
}

// TestSessionValidationErrors pins the session-layer validation paths.
func TestSessionValidationErrors(t *testing.T) {
	initial, steps, _ := streamFeed(10, 4, 2, 1, 2)
	base := Params{K: 2, Iterations: 2, Seed: 7, GossipRounds: 6, DecryptThreshold: 3}

	cases := []struct {
		name string
		sp   SessionParams
		want string
	}{
		{
			name: "epsilon set on base",
			sp: SessionParams{Base: func() Params { p := base; p.Epsilon = 1; return p }(),
				LifetimeEpsilon: 10},
			want: "core: session windows draw epsilon from the lifetime budget — leave Params.Epsilon zero",
		},
		{
			name: "missing lifetime budget",
			sp:   SessionParams{Base: base},
			want: "core: lifetime epsilon 0 must be positive",
		},
		{
			name: "negative planned windows",
			sp:   SessionParams{Base: base, LifetimeEpsilon: 10, Windows: -3},
			want: "core: planned windows -3 must be non-negative",
		},
		{
			name: "churn rejected",
			sp: SessionParams{Base: func() Params { p := base; p.ChurnCrashProb = 0.1; return p }(),
				LifetimeEpsilon: 10},
			want: "core: churn is not supported in streaming sessions yet",
		},
		{
			name: "bad engine",
			sp:   SessionParams{Base: base, LifetimeEpsilon: 10, Engine: SessionEngine(9)},
			want: "core: unknown session engine 9",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewRunSession(initial, tc.sp)
			if err == nil {
				t.Fatalf("want error %q, got success", tc.want)
			}
			if err.Error() != tc.want {
				t.Fatalf("error text:\n  got:  %s\n  want: %s", err, tc.want)
			}
		})
	}

	s, err := NewRunSession(initial, SessionParams{Base: base, LifetimeEpsilon: 40, Windows: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Advance-time shape violations.
	if err := s.AdvanceWindow(steps[0][:3]); err == nil {
		t.Fatal("wrong series count must fail")
	}
	if err := s.AdvanceWindow(make([][]float64, 10)); err == nil {
		t.Fatal("empty rows must fail")
	}
	bad := make([][]float64, 10)
	for i := range bad {
		bad[i] = []float64{0.5}
	}
	bad[3] = []float64{0.5, 0.5}
	if err := s.AdvanceWindow(bad); err == nil {
		t.Fatal("ragged advance must fail")
	}
	bad[3] = []float64{7}
	bad[0] = []float64{0.5}
	if err := s.AdvanceWindow(bad); err == nil {
		t.Fatal("out-of-range value must fail")
	}
	wide := make([][]float64, 10)
	for i := range wide {
		wide[i] = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	if err := s.AdvanceWindow(wide); err == nil {
		t.Fatal("over-wide advance must fail")
	}
	// Skipping the very first window has nothing to carry forward.
	if err := s.SetSpend(dp.SpendThreshold{Drift: 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetSpend(alwaysSkip{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Advance(nil); err == nil {
		t.Fatal("skip of the first window must fail")
	}
	s.Close()
	if _, err := s.Advance(nil); err == nil || err.Error() != "core: session is closed" {
		t.Fatalf("closed advance: err = %v", err)
	}
	s.Close() // idempotent
}

// alwaysSkip is a test strategy that skips every window.
type alwaysSkip struct{}

func (alwaysSkip) Name() string                                 { return "always-skip" }
func (alwaysSkip) Decide(dp.SpendState) (dp.SpendDecision, error) { return dp.SpendDecision{Skip: true}, nil }
