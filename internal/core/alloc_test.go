package core

import (
	"testing"

	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/simnet"
)

// allocTestParams is a configuration whose first iteration holds every
// participant in the gossip phase long enough to warm all amortized
// buffers and then measure pure steady-state cycles.
func allocTestParams(rounds int) Params {
	return Params{
		K: 2, Epsilon: 50, Iterations: 1, Seed: 11,
		GossipRounds: rounds, DecryptThreshold: 3,
	}
}

func allocTestData(t testing.TB, n int) [][]float64 {
	t.Helper()
	d, err := datasets.CER(datasets.CEROptions{N: n, Dim: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range d.Series {
		for i, v := range s {
			s[i] = v / 8 // generator kW values into [0,1]
			if s[i] > 1 {
				s[i] = 1
			}
		}
	}
	return d.Series
}

// TestGossipCycleZeroAlloc is the ISSUE 5 acceptance gate: on the
// accounted backend, a warmed steady-state gossip cycle — all
// participants' halve-and-emit plus batched absorbs, across the whole
// simulated network — performs zero heap allocations, proven with
// testing.AllocsPerRun. The run is deterministic (fixed seed), so the
// buffer capacities the warm-up grows are the ones the measured window
// needs.
func TestGossipCycleZeroAlloc(t *testing.T) {
	const n, warm, measure = 48, 40, 40
	data := allocTestData(t, n)
	p := allocTestParams(warm + measure + 8)
	rs, err := prepareRun(data, p)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.close()
	if rs.shared.mut == nil {
		t.Fatal("accounted fault-free run must qualify for the in-place hot path")
	}
	rs.shared.batchHint = n
	d, err := newCycleDriver(data, rs, 1, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < warm+1; i++ { // cycle 0 = assignment, then gossip
		d.nw.RunCycle()
	}
	for _, pt := range d.participants {
		if pt.phase != phaseGossip {
			t.Fatalf("participant %d not in gossip phase after warm-up", pt.id)
		}
	}
	allocs := testing.AllocsPerRun(measure, func() {
		d.nw.RunCycle()
	})
	if allocs != 0 {
		t.Fatalf("steady-state gossip cycle allocates %.2f heap objects (network-wide, n=%d), want 0", allocs, n)
	}
	for _, pt := range d.participants {
		if pt.phase != phaseGossip {
			t.Fatalf("participant %d left the gossip phase during measurement", pt.id)
		}
	}
}

// TestGossipCycleZeroAllocPacked re-proves the property with slot
// packing on: the packed hot path shares the same arena machinery.
func TestGossipCycleZeroAllocPacked(t *testing.T) {
	const n, warm, measure = 48, 40, 40
	data := allocTestData(t, n)
	p := allocTestParams(warm + measure + 8)
	p.Packed = true
	rs, err := prepareRun(data, p)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.close()
	rs.shared.batchHint = n
	d, err := newCycleDriver(data, rs, 1, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < warm+1; i++ {
		d.nw.RunCycle()
	}
	allocs := testing.AllocsPerRun(measure, func() {
		d.nw.RunCycle()
	})
	if allocs != 0 {
		t.Fatalf("steady-state packed gossip cycle allocates %.2f heap objects, want 0", allocs)
	}
}

// TestMeasureGossipAllocs exercises the CLI/CI measurement helper and
// requires it to agree with the AllocsPerRun proof (zero on the hot
// path) and to reject windows that would leak out of the gossip phase.
func TestMeasureGossipAllocs(t *testing.T) {
	data := allocTestData(t, 32)
	rep, err := MeasureGossipAllocs(data, allocTestParams(64), 25, 25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AllocsPerCycle != 0 {
		t.Fatalf("MeasureGossipAllocs reports %.2f allocs/cycle on the hot path, want 0", rep.AllocsPerCycle)
	}
	if rep.Population != 32 || rep.Cycles != 25 {
		t.Fatalf("report shape = %+v", rep)
	}
	if _, err := MeasureGossipAllocs(data, allocTestParams(10), 25, 25); err == nil {
		t.Fatal("window longer than the gossip phase must be rejected")
	}
	if _, err := MeasureGossipAllocs(data, allocTestParams(64), 0, 5); err == nil {
		t.Fatal("empty warm-up must be rejected")
	}
}

// TestHotPathGateMatrix pins when the in-place hot path may engage:
// never with a fault plan (delays and stalls break the message-
// consumption bound the emit double-buffering relies on), never on the
// async engine, never on the real backend.
func TestHotPathGateMatrix(t *testing.T) {
	data := allocTestData(t, 16)
	base := allocTestParams(12)
	base.DecryptThreshold = 3

	check := func(name string, mutate func(*Params), want bool) {
		t.Helper()
		p := base
		mutate(&p)
		rs, err := prepareRun(data, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		defer rs.close()
		if got := rs.shared.mut != nil; got != want {
			t.Errorf("%s: hot path enabled = %v, want %v", name, got, want)
		}
	}
	check("plain fault-free", func(p *Params) {}, true)
	check("plain with churn", func(p *Params) { p.ChurnCrashProb = 0.01; p.ChurnRejoinProb = 0.2 }, true)
	check("async engine", func(p *Params) { p.asyncEngine = true }, false)
	check("fault plan", func(p *Params) {
		pl, err := simnet.ParsePlan("drop=0.1")
		if err != nil {
			t.Fatal(err)
		}
		p.Faults = pl
	}, false)
	check("damgard-jurik", func(p *Params) {
		p.Backend = BackendDamgardJurik
		p.ModulusBits = 256
	}, false)
}
