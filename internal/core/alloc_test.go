package core

import (
	"testing"

	"chiaroscuro/internal/compactrng"
	"chiaroscuro/internal/datasets"
	"chiaroscuro/internal/p2p"
	"chiaroscuro/internal/simnet"
)

// allocTestParams is a configuration whose first iteration holds every
// participant in the gossip phase long enough to warm all amortized
// buffers and then measure pure steady-state cycles.
func allocTestParams(rounds int) Params {
	return Params{
		K: 2, Epsilon: 50, Iterations: 1, Seed: 11,
		GossipRounds: rounds, DecryptThreshold: 3,
	}
}

func allocTestData(t testing.TB, n int) [][]float64 {
	t.Helper()
	d, err := datasets.CER(datasets.CEROptions{N: n, Dim: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range d.Series {
		for i, v := range s {
			s[i] = v / 8 // generator kW values into [0,1]
			if s[i] > 1 {
				s[i] = 1
			}
		}
	}
	return d.Series
}

// TestGossipCycleZeroAlloc is the ISSUE 5 acceptance gate: on the
// accounted backend, a warmed steady-state gossip cycle — all
// participants' halve-and-emit plus batched absorbs, across the whole
// simulated network — performs zero heap allocations, proven with
// testing.AllocsPerRun. The run is deterministic (fixed seed), so the
// buffer capacities the warm-up grows are the ones the measured window
// needs.
func TestGossipCycleZeroAlloc(t *testing.T) {
	const n, warm, measure = 48, 40, 40
	data := allocTestData(t, n)
	p := allocTestParams(warm + measure + 8)
	rs, err := prepareRun(data, p)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.close()
	if rs.shared.mut == nil {
		t.Fatal("accounted fault-free run must qualify for the in-place hot path")
	}
	rs.shared.batchHint = n
	d, err := newCycleDriver(data, rs, 1, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < warm+1; i++ { // cycle 0 = assignment, then gossip
		d.nw.RunCycle()
	}
	for _, pt := range d.participants {
		if pt.phase != phaseGossip {
			t.Fatalf("participant %d not in gossip phase after warm-up", pt.id)
		}
	}
	allocs := testing.AllocsPerRun(measure, func() {
		d.nw.RunCycle()
	})
	if allocs != 0 {
		t.Fatalf("steady-state gossip cycle allocates %.2f heap objects (network-wide, n=%d), want 0", allocs, n)
	}
	for _, pt := range d.participants {
		if pt.phase != phaseGossip {
			t.Fatalf("participant %d left the gossip phase during measurement", pt.id)
		}
	}
}

// TestGossipCycleZeroAllocPacked re-proves the property with slot
// packing on: the packed hot path shares the same arena machinery.
func TestGossipCycleZeroAllocPacked(t *testing.T) {
	const n, warm, measure = 48, 40, 40
	data := allocTestData(t, n)
	p := allocTestParams(warm + measure + 8)
	p.Packed = true
	rs, err := prepareRun(data, p)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.close()
	rs.shared.batchHint = n
	d, err := newCycleDriver(data, rs, 1, len(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < warm+1; i++ {
		d.nw.RunCycle()
	}
	allocs := testing.AllocsPerRun(measure, func() {
		d.nw.RunCycle()
	})
	if allocs != 0 {
		t.Fatalf("steady-state packed gossip cycle allocates %.2f heap objects, want 0", allocs)
	}
}

// TestMeasureGossipAllocs exercises the CLI/CI measurement helper and
// requires it to agree with the AllocsPerRun proof (zero on the hot
// path) and to reject windows that would leak out of the gossip phase.
func TestMeasureGossipAllocs(t *testing.T) {
	data := allocTestData(t, 32)
	rep, err := MeasureGossipAllocs(data, allocTestParams(64), 25, 25)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AllocsPerCycle != 0 {
		t.Fatalf("MeasureGossipAllocs reports %.2f allocs/cycle on the hot path, want 0", rep.AllocsPerCycle)
	}
	if rep.Population != 32 || rep.Cycles != 25 {
		t.Fatalf("report shape = %+v", rep)
	}
	if _, err := MeasureGossipAllocs(data, allocTestParams(10), 25, 25); err == nil {
		t.Fatal("window longer than the gossip phase must be rejected")
	}
	if _, err := MeasureGossipAllocs(data, allocTestParams(64), 0, 5); err == nil {
		t.Fatal("empty warm-up must be rejected")
	}
}

// TestAsyncInboxZeroAlloc proves the async message fabric itself is
// allocation-free once warm: sends land in the fixed ring, drains reuse
// the env's pre-sized buffer, and no channel element churn remains. The
// proof deliberately scopes to the fabric (send + drain), not whole
// async participant activations — the async engine disables the
// in-place gossip hot path by design, so its steps allocate.
func TestAsyncInboxZeroAlloc(t *testing.T) {
	const n, capEach = 8, 64
	net := &asyncNet{inboxes: make([]*asyncInbox, n)}
	for i := range net.inboxes {
		net.inboxes[i] = newAsyncInbox(capEach)
	}
	envs := make([]*asyncEnv, n)
	for i := range envs {
		envs[i] = &asyncEnv{
			net:   net,
			id:    p2p.NodeID(i),
			rng:   compactrng.NewRand(int64(i) + 5),
			drain: make([]p2p.Message, 0, capEach),
		}
	}
	payload := &gossipPayload{} // pointer payload: interface boxing is free
	cycle := func() {
		for _, e := range envs {
			for k := 0; k < 4; k++ {
				peer, ok := e.RandomPeer()
				if !ok {
					t.Fatal("no peer")
				}
				if err := e.Send(peer, payload, 16); err != nil {
					t.Fatal(err)
				}
			}
		}
		for _, e := range envs {
			for range e.Inbox() {
			}
		}
	}
	for i := 0; i < 8; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(50, cycle); allocs != 0 {
		t.Fatalf("warmed async send+drain cycle allocates %.2f heap objects (fabric-wide, n=%d), want 0", allocs, n)
	}
	if net.dropped.Load() != 0 {
		t.Fatalf("ring overflow during measurement: %d drops", net.dropped.Load())
	}
}

// TestAsyncInboxOverflow pins the saturated-peer semantics: a full ring
// rejects the push and the sender counts the drop, exactly like the
// buffered channel it replaced.
func TestAsyncInboxOverflow(t *testing.T) {
	ib := newAsyncInbox(2)
	m := p2p.Message{Bytes: 1}
	if !ib.push(m) || !ib.push(m) {
		t.Fatal("pushes under capacity must succeed")
	}
	if ib.push(m) {
		t.Fatal("push into a full ring must fail")
	}
	got := ib.drainInto(nil)
	if len(got) != 2 {
		t.Fatalf("drained %d messages, want 2", len(got))
	}
	if !ib.push(m) {
		t.Fatal("push after drain must succeed (ring wrapped)")
	}
}

// TestMeasureDecryptAllocs exercises the decrypt-phase counterpart of
// the CLI/CI measurement helper: a complete small run must classify at
// least one cycle as decrypt-dominant and report a finite per-cycle
// average.
func TestMeasureDecryptAllocs(t *testing.T) {
	data := allocTestData(t, 24)
	p := Params{K: 2, Epsilon: 50, Iterations: 1, Seed: 11, GossipRounds: 6, DecryptThreshold: 3}
	rep, err := MeasureDecryptAllocs(data, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DecryptCycles < 1 {
		t.Fatalf("no decrypt-classified cycles in report %+v", rep)
	}
	if rep.Population != 24 {
		t.Fatalf("report population = %d, want 24", rep.Population)
	}
	if rep.AllocsPerCycle < 0 || rep.BytesPerCycle < 0 {
		t.Fatalf("negative averages in report %+v", rep)
	}
}

// TestHotPathGateMatrix pins when the in-place hot path may engage:
// never with a fault plan (delays and stalls break the message-
// consumption bound the emit double-buffering relies on), never on the
// async engine, never on the real backend.
func TestHotPathGateMatrix(t *testing.T) {
	data := allocTestData(t, 16)
	base := allocTestParams(12)
	base.DecryptThreshold = 3

	check := func(name string, mutate func(*Params), want bool) {
		t.Helper()
		p := base
		mutate(&p)
		rs, err := prepareRun(data, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		defer rs.close()
		if got := rs.shared.mut != nil; got != want {
			t.Errorf("%s: hot path enabled = %v, want %v", name, got, want)
		}
	}
	check("plain fault-free", func(p *Params) {}, true)
	check("plain with churn", func(p *Params) { p.ChurnCrashProb = 0.01; p.ChurnRejoinProb = 0.2 }, true)
	check("async engine", func(p *Params) { p.asyncEngine = true }, false)
	check("fault plan", func(p *Params) {
		pl, err := simnet.ParsePlan("drop=0.1")
		if err != nil {
			t.Fatal(err)
		}
		p.Faults = pl
	}, false)
	check("damgard-jurik", func(p *Params) {
		p.Backend = BackendDamgardJurik
		p.ModulusBits = 256
	}, false)
}
