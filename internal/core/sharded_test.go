package core

import (
	"math"
	"testing"
)

// assertTracesBitIdentical compares everything observable about two
// traces: per-iteration disclosed centroids and counts, final centroids,
// inertia, network statistics and operation counts. Floats are compared
// with ==, not a tolerance — the determinism contract is bit-identity.
func assertTracesBitIdentical(t *testing.T, a, b *Trace, label string) {
	t.Helper()
	if len(a.Iterations) != len(b.Iterations) {
		t.Fatalf("%s: %d vs %d iterations", label, len(a.Iterations), len(b.Iterations))
	}
	for i := range a.Iterations {
		ia, ib := a.Iterations[i], b.Iterations[i]
		if ia.Iteration != ib.Iteration || ia.Epsilon != ib.Epsilon {
			t.Fatalf("%s: iteration %d header mismatch", label, i)
		}
		for j := range ia.PerturbedCentroids {
			for tt := range ia.PerturbedCentroids[j] {
				if ia.PerturbedCentroids[j][tt] != ib.PerturbedCentroids[j][tt] {
					t.Fatalf("%s: iteration %d centroid %d[%d]: %v vs %v",
						label, i, j, tt, ia.PerturbedCentroids[j][tt], ib.PerturbedCentroids[j][tt])
				}
			}
		}
		for j := range ia.PerturbedCounts {
			if ia.PerturbedCounts[j] != ib.PerturbedCounts[j] {
				t.Fatalf("%s: iteration %d count %d: %v vs %v",
					label, i, j, ia.PerturbedCounts[j], ib.PerturbedCounts[j])
			}
		}
		bothNaN := math.IsNaN(ia.PerturbedInertia) && math.IsNaN(ib.PerturbedInertia)
		if !bothNaN && ia.PerturbedInertia != ib.PerturbedInertia {
			t.Fatalf("%s: iteration %d inertia: %v vs %v", label, i, ia.PerturbedInertia, ib.PerturbedInertia)
		}
	}
	for j := range a.FinalCentroids {
		for tt := range a.FinalCentroids[j] {
			if a.FinalCentroids[j][tt] != b.FinalCentroids[j][tt] {
				t.Fatalf("%s: final centroid %d[%d]: %v vs %v",
					label, j, tt, a.FinalCentroids[j][tt], b.FinalCentroids[j][tt])
			}
		}
	}
	if a.Inertia != b.Inertia {
		t.Fatalf("%s: inertia %v vs %v", label, a.Inertia, b.Inertia)
	}
	if a.ConvergedAtIteration != b.ConvergedAtIteration {
		t.Fatalf("%s: convergence %d vs %d", label, a.ConvergedAtIteration, b.ConvergedAtIteration)
	}
	if a.NetStats != b.NetStats {
		t.Fatalf("%s: net stats %+v vs %+v", label, a.NetStats, b.NetStats)
	}
	if a.CyclesRun != b.CyclesRun {
		t.Fatalf("%s: cycles %d vs %d", label, a.CyclesRun, b.CyclesRun)
	}
	if a.DecryptFailures != b.DecryptFailures || a.StaleDrops != b.StaleDrops {
		t.Fatalf("%s: failures %d/%d vs %d/%d", label,
			a.DecryptFailures, a.StaleDrops, b.DecryptFailures, b.StaleDrops)
	}
}

// TestShardedEngineBitIdenticalToRun is the cross-engine determinism
// contract of RunSharded: for the same seed, Run, RunSharded(Workers=1)
// and RunSharded(Workers=8) must disclose bit-identical centroids at
// every iteration, with identical network and crypto accounting.
func TestShardedEngineBitIdenticalToRun(t *testing.T) {
	data := blobs(150, 4, 3)
	base := Params{K: 3, Epsilon: 5, Iterations: 3, Seed: 7}

	seq, err := Run(data, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8, 64} {
		p := base
		p.Workers = workers
		sh, err := RunSharded(data, p)
		if err != nil {
			t.Fatal(err)
		}
		assertTracesBitIdentical(t, seq, sh, "workers="+itoa(workers))
		if seq.Ops != sh.Ops {
			t.Fatalf("workers=%d: op counts %+v vs %+v", workers, seq.Ops, sh.Ops)
		}
	}
}

// TestShardedEngineBitIdenticalUnderChurn repeats the contract with
// crashes, rejoins and resets: churn decisions are drawn sequentially at
// cycle start and must not depend on the worker count.
func TestShardedEngineBitIdenticalUnderChurn(t *testing.T) {
	data := blobs(120, 3, 2)
	base := Params{
		K: 2, Epsilon: 100, Iterations: 3, Seed: 19,
		ChurnCrashProb: 0.03, ChurnRejoinProb: 0.4, ChurnResetOnRejoin: true,
	}
	seq, err := Run(data, base)
	if err != nil {
		t.Fatal(err)
	}
	if seq.NetStats.Crashes == 0 {
		t.Fatal("churn ineffective on this seed; pick another")
	}
	p := base
	p.Workers = 6
	sh, err := RunSharded(data, p)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesBitIdentical(t, seq, sh, "churn workers=6")
}

// TestShardedEngineBitIdenticalRealCrypto runs the contract on the
// Damgård–Jurik backend: ciphertexts differ run to run (fresh encryption
// randomness), but every decoded plaintext — and hence every disclosed
// centroid — must still match Run bit for bit.
func TestShardedEngineBitIdenticalRealCrypto(t *testing.T) {
	data := blobs(16, 3, 2)
	base := Params{
		K: 2, Epsilon: 100, Iterations: 2, Seed: 5,
		GossipRounds: 8, DecryptThreshold: 4,
		Backend: BackendDamgardJurik, ModulusBits: 128,
	}
	seq, err := Run(data, base)
	if err != nil {
		t.Fatal(err)
	}
	p := base
	p.Workers = 4
	sh, err := RunSharded(data, p)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesBitIdentical(t, seq, sh, "damgard-jurik workers=4")
}

// TestShardedDefaultsAndValidation pins the Workers defaulting and error
// paths.
func TestShardedDefaultsAndValidation(t *testing.T) {
	data := blobs(40, 3, 2)
	if _, err := RunSharded(data, Params{K: 2, Epsilon: 10, Workers: -3}); err == nil {
		t.Fatal("negative workers should error")
	}
	// Workers=0 defaults to GOMAXPROCS and must succeed.
	if _, err := RunSharded(data, Params{K: 2, Epsilon: 10, Iterations: 2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
