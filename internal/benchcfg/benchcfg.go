// Package benchcfg pins the canonical scale-benchmark workload in one
// place. BenchmarkClusterScale* (bench_test.go) and the CLI's
// -bench-scale mode (cmd/chiaroscuro) must time the *same* protocol
// shape — the committed BENCH_scale.json baseline and the Go benchmark
// are two views of one perf trajectory, and a drift between their
// configurations would silently make the recorded numbers
// non-comparable. Only the population N varies per call site.
package benchcfg

// The scale workload: accounted backend, sharded engine, CER-like
// series of ScaleDim samples. Chosen small in K and dim so a 100k-
// participant run fits CI comfortably while still exercising the full
// protocol (assignment, fused gossip, threshold decryption) each
// iteration.
const (
	ScaleK                = 2
	ScaleEpsilon          = 50
	ScaleIterations       = 2
	ScaleSeed             = 1
	ScaleGossipRounds     = 12
	ScaleDecryptThreshold = 8
	ScaleDim              = 4
	ScaleEngine           = "sharded"
)
