// Package vecpool provides the contiguous memory layouts behind the
// simulator's million-participant scale: flat strided float64 matrices
// (series, centroids, fused contributions) and preallocated big.Int
// residue arenas (the accounted backend's ciphertext values).
//
// The motivation is GC pressure, not micro-optimization. A run over N
// participants with per-node [][]float64 state and per-cycle big.Int
// churn allocates O(N·k·dim) tiny objects per iteration and O(N·vecLen)
// per gossip cycle; at N in the hundreds of thousands the garbage
// collector dominates wall-clock and the heap fragments. Arenas replace
// those object graphs with a handful of large slabs:
//
//   - Matrix backs a rows×cols float64 matrix with one flat data slab
//     plus one slab of row headers, while still exposing ordinary
//     [][]float64 views — callers keep their idiomatic signatures, the
//     allocator sees two objects instead of rows+1.
//
//   - ResidueArena backs n big.Int values with one []big.Int header slab
//     and one flat []big.Word limb slab, each value pre-sized so the
//     ring arithmetic of internal/core's accounted backend (Add with a
//     conditional subtraction, division-free halving, Set) runs without
//     growing — the storage substrate of the zero-allocation gossip hot
//     path (see internal/gossip.MutRing).
//
// Arenas are plain memory, not pools: there is no free list and no
// locking. Ownership is the caller's concern — internal/core gives each
// participant its own arena views, so the sharded engine's workers never
// share mutable arena state.
package vecpool

import (
	"errors"
	"fmt"
	"math/big"
)

// Matrix is a rows×cols float64 matrix in one contiguous slab, with
// cached [][]float64 row views for callers that speak slices-of-slices.
type Matrix struct {
	data []float64
	rows [][]float64
	cols int
}

// NewMatrix allocates a zeroed rows×cols matrix (two allocations total:
// the data slab and the row-header slab).
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("vecpool: invalid matrix shape %d×%d", rows, cols)
	}
	m := &Matrix{
		data: make([]float64, rows*cols),
		rows: make([][]float64, rows),
		cols: cols,
	}
	for i := range m.rows {
		// Three-index slices cap each row view at its own stride, so an
		// append on a row can never silently spill into its neighbour.
		m.rows[i] = m.data[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return m, nil
}

// FromRows copies a [][]float64 into a fresh Matrix. Every row must have
// the same width.
func FromRows(src [][]float64) (*Matrix, error) {
	if len(src) == 0 {
		return nil, errors.New("vecpool: empty source matrix")
	}
	cols := len(src[0])
	m, err := NewMatrix(len(src), cols)
	if err != nil {
		return nil, err
	}
	for i, row := range src {
		if len(row) != cols {
			return nil, fmt.Errorf("vecpool: ragged source — row %d has %d cols, want %d", i, len(row), cols)
		}
		copy(m.rows[i], row)
	}
	return m, nil
}

// Row returns the i-th row as a view into the slab (mutations are seen
// by every holder of the view).
func (m *Matrix) Row(i int) []float64 { return m.rows[i] }

// Rows returns the cached row views as an ordinary [][]float64. The
// returned slice and its rows alias the slab; callers must not reassign
// the row headers.
func (m *Matrix) Rows() [][]float64 { return m.rows }

// SlideRow advances row i by one streaming window step: the oldest
// len(vals) samples are evicted (the remainder shifts toward index 0)
// and vals land at the tail. The row width never changes — this is the
// append/evict primitive of a sliding-window population, run in place on
// the slab so a window advance allocates nothing. vals must have between
// 1 and Cols samples.
func (m *Matrix) SlideRow(i int, vals []float64) error {
	if i < 0 || i >= len(m.rows) {
		return fmt.Errorf("vecpool: row %d outside [0, %d)", i, len(m.rows))
	}
	if len(vals) < 1 || len(vals) > m.cols {
		return fmt.Errorf("vecpool: slide of %d samples outside [1, %d]", len(vals), m.cols)
	}
	row := m.rows[i]
	keep := m.cols - len(vals)
	copy(row, row[len(vals):])
	copy(row[keep:], vals)
	return nil
}

// NumRows and Cols report the matrix shape.
func (m *Matrix) NumRows() int { return len(m.rows) }
func (m *Matrix) Cols() int    { return m.cols }

// CloneRows deep-copies a (possibly ragged) [][]float64 into flat-backed
// row views: one data slab plus one header slab regardless of the row
// count. It is the arena replacement for the k+1 allocations of the
// naive per-row copy — the shape the protocol copies once per iteration
// per participant (centroid matrices, history entries).
func CloneRows(src [][]float64) [][]float64 {
	total := 0
	for _, row := range src {
		total += len(row)
	}
	data := make([]float64, total)
	out := make([][]float64, len(src))
	off := 0
	for i, row := range src {
		end := off + len(row)
		out[i] = data[off:end:end]
		copy(out[i], row)
		off = end
	}
	return out
}

// ResidueArena is a preallocated block of big.Int values whose limbs
// live in one flat slab. Each value starts at zero with capacity for
// wordsPer limbs; ring operations that stay within that capacity (the
// accounted backend's reduced residues plus one carry limb) never touch
// the allocator. A value that outgrows its slot falls back to an
// ordinary heap-grown big.Int — correct, just no longer arena-backed.
type ResidueArena struct {
	ints  []big.Int
	words []big.Word
}

// NewResidueArena allocates an arena of n big.Int values, each with
// capacity for maxBits-wide magnitudes plus one carry limb (the slack an
// in-place modular Add needs before its conditional subtraction).
func NewResidueArena(n int, maxBits int) (*ResidueArena, error) {
	if n < 0 || maxBits < 1 {
		return nil, fmt.Errorf("vecpool: invalid arena request (n=%d, maxBits=%d)", n, maxBits)
	}
	const wordBits = 32 << (^big.Word(0) >> 63) // 32 or 64
	wordsPer := (maxBits+wordBits-1)/wordBits + 1
	a := &ResidueArena{
		ints:  make([]big.Int, n),
		words: make([]big.Word, n*wordsPer),
	}
	for i := range a.ints {
		// A zero-length slice with private capacity: math/big's nat.make
		// reuses the backing array for any result that fits, so the value
		// grows into its slab instead of allocating.
		a.ints[i].SetBits(a.words[i*wordsPer : i*wordsPer : (i+1)*wordsPer])
	}
	return a, nil
}

// Len reports the number of values in the arena.
func (a *ResidueArena) Len() int { return len(a.ints) }

// Int returns the i-th arena value. The pointer stays valid for the
// arena's lifetime; distinct indices never share limbs.
func (a *ResidueArena) Int(i int) *big.Int { return &a.ints[i] }
