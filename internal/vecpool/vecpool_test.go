package vecpool

import (
	"math/big"
	"testing"
)

func TestMatrixShapeAndViews(t *testing.T) {
	m, err := NewMatrix(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 3 || m.Cols() != 4 {
		t.Fatalf("shape = %d×%d, want 3×4", m.NumRows(), m.Cols())
	}
	m.Row(1)[2] = 42
	if m.Rows()[1][2] != 42 {
		t.Fatal("Row and Rows must alias the same slab")
	}
	// Rows are capped at their stride: appending must not spill.
	r := m.Row(0)
	r = append(r, 99)
	if m.Row(1)[0] == 99 {
		t.Fatal("append on a row view spilled into the next row")
	}
	if _, err := NewMatrix(-1, 2); err == nil {
		t.Fatal("want error for negative shape")
	}
}

func TestFromRows(t *testing.T) {
	src := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	m, err := FromRows(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		for j := range src[i] {
			if m.Row(i)[j] != src[i][j] {
				t.Fatalf("m[%d][%d] = %v, want %v", i, j, m.Row(i)[j], src[i][j])
			}
		}
	}
	// The copy is deep: mutating the source must not leak through.
	src[0][0] = -1
	if m.Row(0)[0] == -1 {
		t.Fatal("FromRows aliased the source")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("want error for ragged source")
	}
	if _, err := FromRows(nil); err == nil {
		t.Fatal("want error for empty source")
	}
}

func TestCloneRows(t *testing.T) {
	src := [][]float64{{1, 2, 3}, {}, {4}}
	got := CloneRows(src)
	if len(got) != len(src) {
		t.Fatalf("len = %d, want %d", len(got), len(src))
	}
	for i := range src {
		if len(got[i]) != len(src[i]) {
			t.Fatalf("row %d len = %d, want %d", i, len(got[i]), len(src[i]))
		}
		for j := range src[i] {
			if got[i][j] != src[i][j] {
				t.Fatalf("got[%d][%d] = %v, want %v", i, j, got[i][j], src[i][j])
			}
		}
	}
	src[0][0] = -7
	if got[0][0] == -7 {
		t.Fatal("CloneRows aliased the source")
	}
	// Appending to one cloned row must not clobber the next (capped views).
	_ = append(got[0], 99)
	if got[2][0] == 99 {
		t.Fatal("append on a cloned row spilled into the next row")
	}
}

func TestResidueArenaIndependence(t *testing.T) {
	a, err := NewResidueArena(4, 320)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 4 {
		t.Fatalf("Len = %d, want 4", a.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Int(i).Sign() != 0 {
			t.Fatalf("arena value %d not zero", i)
		}
	}
	m := new(big.Int).Lsh(big.NewInt(1), 320)
	m.Sub(m, big.NewInt(1))
	a.Int(0).Sub(m, big.NewInt(17))
	a.Int(1).Sub(m, big.NewInt(5))
	// In-place modular-style arithmetic on one slot must not disturb its
	// neighbours (the slots' limb slabs are capped, never overlapping).
	a.Int(0).Add(a.Int(0), a.Int(1))
	a.Int(0).Sub(a.Int(0), m)
	want := new(big.Int).Sub(m, big.NewInt(22))
	if a.Int(0).Cmp(want) != 0 {
		t.Fatalf("slot 0 = %v, want %v", a.Int(0), want)
	}
	if got := new(big.Int).Sub(m, big.NewInt(5)); a.Int(1).Cmp(got) != 0 {
		t.Fatal("slot 1 was disturbed by in-place arithmetic on slot 0")
	}
}

// TestResidueArenaNoAllocSteadyState is the property the gossip hot path
// rests on: once warmed, in-place Add/conditional-subtract/Rsh/Set on
// arena values of ring width never touch the allocator.
func TestResidueArenaNoAllocSteadyState(t *testing.T) {
	const bits = 320
	a, err := NewResidueArena(3, bits)
	if err != nil {
		t.Fatal(err)
	}
	m := new(big.Int).Lsh(big.NewInt(1), bits)
	m.Sub(m, big.NewInt(1))
	acc, v, dst := a.Int(0), a.Int(1), a.Int(2)
	acc.Sub(m, big.NewInt(123456789))
	v.Sub(m, big.NewInt(987654321))
	step := func() {
		acc.Add(acc, v)
		if acc.Cmp(m) >= 0 {
			acc.Sub(acc, m)
		}
		if acc.Bit(0) == 0 {
			acc.Rsh(acc, 1)
		} else {
			acc.Add(acc, m)
			acc.Rsh(acc, 1)
		}
		dst.Set(acc)
	}
	step() // warm: first ops size the slices into their slabs
	if allocs := testing.AllocsPerRun(50, step); allocs != 0 {
		t.Fatalf("steady-state arena arithmetic allocates %.1f objects per op, want 0", allocs)
	}
}

// TestMatrixSlideRow covers the streaming window-advance primitive:
// in-place eviction of the oldest samples, appends at the tail, width
// invariance, and the rejection of out-of-range requests.
func TestMatrixSlideRow(t *testing.T) {
	m, err := FromRows([][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SlideRow(0, []float64{10, 11}); err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 4, 10, 11}
	for i, v := range m.Row(0) {
		if v != want[i] {
			t.Fatalf("row 0 = %v, want %v", m.Row(0), want)
		}
	}
	// Untouched rows stay untouched.
	if m.Row(1)[0] != 5 || m.Row(1)[3] != 8 {
		t.Fatalf("row 1 = %v, want unchanged", m.Row(1))
	}
	// Full-width slide replaces the whole row.
	if err := m.SlideRow(1, []float64{9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	for _, v := range m.Row(1) {
		if v != 9 {
			t.Fatalf("row 1 = %v, want all 9", m.Row(1))
		}
	}
	// Shape violations are rejected before any mutation.
	if err := m.SlideRow(0, nil); err == nil {
		t.Fatal("empty slide must fail")
	}
	if err := m.SlideRow(0, make([]float64, 5)); err == nil {
		t.Fatal("over-wide slide must fail")
	}
	if err := m.SlideRow(2, []float64{1}); err == nil {
		t.Fatal("out-of-range row must fail")
	}
	if err := m.SlideRow(-1, []float64{1}); err == nil {
		t.Fatal("negative row must fail")
	}
}

// TestMatrixSlideRowNoAlloc pins the zero-allocation property of the
// window advance: sliding is two copies inside the slab.
func TestMatrixSlideRowNoAlloc(t *testing.T) {
	m, err := NewMatrix(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	fresh := []float64{1, 2, 3}
	if allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 4; i++ {
			if err := m.SlideRow(i, fresh); err != nil {
				t.Fatal(err)
			}
		}
	}); allocs != 0 {
		t.Fatalf("SlideRow allocates %.1f objects per advance, want 0", allocs)
	}
}
